// IoT anomaly detection with dynamic DBSCAN — the paper's high-velocity
// motivation (§1): sensor readings stream in continuously; density-based
// clusters describe normal modes of operation, and readings that end up in
// singleton (noise) clusters are flagged as anomalies. DynamicC keeps the
// DBSCAN clustering current without re-running it from scratch, using
// core-point stability as the validation rule (§7.2.1).
//
// Build & run:  ./build/examples/iot_anomaly

#include <cmath>
#include <cstdio>
#include <memory>

#include "batch/dbscan.h"
#include "core/session.h"
#include "data/blocking.h"
#include "data/similarity_measures.h"
#include "ml/logistic_regression.h"
#include "util/rng.h"

using namespace dynamicc;

namespace {

// Three normal operating modes plus occasional outliers.
OperationBatch SensorReadings(Rng* rng, int count, double outlier_rate) {
  static const double kModes[][2] = {{20.0, 40.0}, {45.0, 60.0}, {70.0, 30.0}};
  OperationBatch ops;
  for (int i = 0; i < count; ++i) {
    DataOperation op;
    op.kind = DataOperation::Kind::kAdd;
    if (rng->Chance(outlier_rate)) {
      op.record.entity = 99;  // ground-truth anomaly
      op.record.numeric = {rng->Uniform(0.0, 100.0),
                           rng->Uniform(0.0, 100.0)};
    } else {
      size_t mode = rng->Index(3);
      op.record.entity = static_cast<uint32_t>(mode + 1);
      op.record.numeric = {kModes[mode][0] + rng->Gaussian(0.0, 1.0),
                           kModes[mode][1] + rng->Gaussian(0.0, 1.0)};
    }
    ops.push_back(op);
  }
  return ops;
}

size_t CountAnomalies(const ClusteringEngine& engine) {
  size_t anomalies = 0;
  for (ClusterId cluster : engine.clustering().ClusterIds()) {
    if (engine.clustering().ClusterSize(cluster) <= 2) ++anomalies;
  }
  return anomalies;
}

}  // namespace

int main() {
  Dataset dataset;
  EuclideanSimilarity measure(2.0);  // kernel scale for sensor units
  SimilarityGraph graph(&dataset, &measure, std::make_unique<GridBlocker>(8.0),
                        0.05);

  Dbscan::Options dbscan_options;
  dbscan_options.min_pts = 4;
  // ε = distance 3.0 under the kernel: sim = exp(-9/8).
  dbscan_options.eps_similarity = std::exp(-9.0 / 8.0);
  Dbscan dbscan(dbscan_options);
  DbscanValidator validator(&dbscan, &graph);

  DynamicCSession::Options session_options;
  DynamicCSession session(&dataset, &graph, &dbscan, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          session_options);

  Rng rng(7);

  std::printf("== training: DBSCAN serves while DynamicC observes ==\n");
  for (int round = 0; round < 2; ++round) {
    auto changed = session.ApplyOperations(SensorReadings(&rng, 120, 0.02));
    auto report = session.ObserveBatchRound(changed);
    std::printf("round %d: %zu readings, %zu evolution steps\n", round,
                dataset.alive_count(), report.step_count);
  }

  std::printf("\n== streaming: DynamicC maintains the density clusters ==\n");
  for (int round = 0; round < 6; ++round) {
    session.ApplyOperations(SensorReadings(&rng, 60, 0.05));
    auto report = session.DynamicRound();
    std::printf(
        "round %d: %zu readings, %4.1f ms, clusters=%zu, "
        "suspected anomalies (tiny clusters)=%zu\n",
        round, dataset.alive_count(), report.recluster_ms,
        session.engine().clustering().num_clusters(),
        CountAnomalies(session.engine()));
  }
  return 0;
}
