// Quickstart: wire a DynamicC session by hand on a tiny numeric stream.
//
// The flow is the paper's lifecycle in miniature:
//   1. load initial objects, let the batch algorithm cluster them while
//      DynamicC observes the evolution (training phase);
//   2. keep the stream coming and let DynamicC re-cluster each snapshot
//      (dynamic phase), verifying every predicted change against the
//      objective function.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "baseline/naive.h"
#include "batch/agglomerative.h"
#include "core/session.h"
#include "data/blocking.h"
#include "data/similarity_measures.h"
#include "eval/pair_metrics.h"
#include "eval/report.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "util/rng.h"

using namespace dynamicc;

namespace {

/// Gaussian blobs around drifting centers: a minimal dynamic workload.
OperationBatch MakeAdds(Rng* rng, int count) {
  static const double kCenters[] = {0.0, 12.0, 24.0, 36.0, 48.0};
  OperationBatch ops;
  for (int i = 0; i < count; ++i) {
    DataOperation op;
    op.kind = DataOperation::Kind::kAdd;
    size_t blob = rng->Index(5);
    op.record.entity = static_cast<uint32_t>(blob + 1);
    op.record.numeric = {kCenters[blob] + rng->Gaussian(0.0, 0.4)};
    ops.push_back(op);
  }
  return ops;
}

}  // namespace

int main() {
  // --- substrate: dataset + similarity graph (Gaussian kernel, grid block).
  Dataset dataset;
  EuclideanSimilarity measure(1.5);
  SimilarityGraph graph(&dataset, &measure, std::make_unique<GridBlocker>(4.0),
                        0.05);

  // --- the batch algorithm DynamicC learns from, and the objective that
  //     verifies its predictions.
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  GreedyAgglomerative batch(&objective);

  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          DynamicCSession::Options{});

  Rng rng(2026);

  // --- training phase: two observed batch rounds.
  std::printf("== training phase ==\n");
  for (int round = 0; round < 2; ++round) {
    auto changed = session.ApplyOperations(MakeAdds(&rng, 40));
    auto report = session.ObserveBatchRound(changed);
    std::printf("round %d: %zu evolution steps observed, "
                "theta(merge)=%.3f theta(split)=%.3f\n",
                round, report.step_count, report.merge_theta,
                report.split_theta);
  }

  // --- dynamic phase: DynamicC serves, batch only used for comparison.
  std::printf("\n== dynamic phase ==\n");
  for (int round = 0; round < 5; ++round) {
    session.ApplyOperations(MakeAdds(&rng, 20));
    auto report = session.DynamicRound();

    // Reference: what the batch algorithm would have produced.
    ClusteringEngine reference(&graph);
    batch.Run(&reference);
    double f1 = PairF1(session.engine().clustering().CanonicalClusters(),
                       reference.clustering().CanonicalClusters());

    std::printf(
        "round %d: %5.1f ms (re-cluster) + %5.1f ms (retrain), "
        "%zu merges, %zu splits, F1 vs batch = %.3f\n",
        round, report.recluster_ms, report.retrain_ms,
        report.detail.merges_applied, report.detail.splits_applied, f1);
  }

  std::printf("\nfinal clustering: %s\n",
              DescribeClustering(session.engine()).c_str());
  std::printf("objective score: %.3f\n",
              objective.Evaluate(session.engine()));
  return 0;
}
