// Command-line experiment driver: run any method on any workload/task
// combination and print per-snapshot latency + quality, or emit CSV for
// plotting. A thin veneer over the harness in src/harness.
//
//   dynamicc_cli --workload cora --task db-index --method dynamicc
//   dynamicc_cli --workload road --task kmeans --method all --scale 1500
//   dynamicc_cli --workload music --task db-index --method greedy --csv
//
// Flags:
//   --workload  cora | music | synthetic | access | road   (default cora)
//   --task      db-index | kmeans | correlation | dbscan   (default db-index)
//   --method    batch | naive | greedy | dynamicc | greedyset | all
//   --scale     initial object count override (0 = generator default)
//   --seed      stream seed override (0 = generator default)
//   --kmeans-k  cluster count for the kmeans task
//   --csv       emit CSV instead of aligned tables
//   --sim-core  seed | indexed similarity hot path (default indexed;
//               both cores produce byte-identical clusterings)
//
// Sharded serving (src/service/): --shards N partitions the stream over
// N concurrent engines instead of the single-engine harness path
// (correlation or db-index task, dynamicc method); -j N sets the worker
// thread count (0 = one per shard, capped at the hardware):
//
//   dynamicc_cli --workload cora --task correlation --shards 4 -j 2
//   dynamicc_cli --workload cora --task db-index --shards 4
//
// Durability: --save-snapshot DIR persists the full serving state
// (engines, models, id maps, placement) after serving snapshot
// --snapshot-at K; --load-snapshot DIR --resume-at K warm-restarts a
// fresh process from it and continues the same deterministic stream —
// the `final:` line on stdout is byte-equal to the never-restarted
// run's:
//
//   dynamicc_cli --task correlation --shards 2 --save-snapshot s
//                --snapshot-at 4                             (one line)
//   dynamicc_cli --task correlation --shards 2 --load-snapshot s
//                --resume-at 4                               (one line)
//
// Async pipelined ingestion: --async puts a bounded queue in front of
// every shard and snapshots are served by background round workers;
// --queue-depth N bounds each queue (pending coalesced operations) and
// --backpressure block|reject picks what a full queue does to the
// producer. Serving snapshots are enqueued and the stream ends with a
// Flush() barrier:
//
//   dynamicc_cli --workload cora --task correlation --shards 4 --async
//                --queue-depth 512 --backpressure block      (one line)
//
// Replication & failover (src/replication/): --replicate-to DIR turns
// the run into a replicated primary — after training it publishes a
// base snapshot into DIR and ships one epoch-tagged delta per serving
// snapshot (--replicate-snapshot-every K compacts the log behind a
// fresh base every K epochs). A second process tails DIR with --follow:
// it restores the base, replays the deltas, and its `final:` line is
// byte-equal to the primary's; --promote-at K instead promotes the
// follower after serving snapshot K (zero retraining) and serves the
// remaining deterministic stream itself — still byte-equal:
//
//   dynamicc_cli --task correlation --shards 2 --replicate-to R (one line)
//   dynamicc_cli --task correlation --shards 2 --follow R       (same line)
//   dynamicc_cli --task correlation --shards 2 --follow R
//                --promote-at 4                               (same line)
//
// Sharded DBSCAN: --task dbscan now serves through --shards N too (a
// validator-only environment: no objective; the DBSCAN core-stability
// validator binds to each shard's similarity graph).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "batch/agglomerative.h"
#include "batch/dbscan.h"
#include "batch/hill_climbing.h"
#include "harness/experiment.h"
#include "ml/logistic_regression.h"
#include "net/client.h"
#include "net/delta_stream.h"
#include "net/front_end.h"
#include "net/socket.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "objective/correlation.h"
#include "objective/db_index.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/query_api.h"
#include "service/service_report.h"
#include "service/sharded_service.h"
#include "service/snapshot.h"
#include "util/csv.h"
#include "util/timer.h"
#include "util/wire.h"

using namespace dynamicc;

namespace {

struct CliArgs {
  std::string workload = "cora";
  std::string task = "db-index";
  std::string method = "dynamicc";
  size_t scale = 0;
  uint64_t seed = 0;
  int kmeans_k = 24;
  bool csv = false;
  uint32_t shards = 1;
  uint32_t threads = 0;
  bool async = false;
  size_t queue_depth = 4096;
  std::string backpressure = "block";
  uint32_t rebalance_every = 0;
  bool adaptive_batch = false;
  std::string rebalance_metric = "auto";
  /// Durable snapshots: --save-snapshot DIR writes one after serving
  /// snapshot --snapshot-at K (0 = after the final barrier);
  /// --load-snapshot DIR warm-starts from one, skipping the first
  /// --resume-at K serving snapshots (the stream generator is
  /// deterministic, so the resumed run continues the exact stream).
  std::string save_snapshot;
  size_t snapshot_at = 0;
  std::string load_snapshot;
  size_t resume_at = 0;
  /// Replication: --replicate-to DIR makes this run a replicated
  /// primary (base snapshot + one delta per serving snapshot into DIR;
  /// --replicate-snapshot-every K compacts behind a fresh base every K
  /// epochs). --follow DIR makes it a follower of DIR; --promote-at K
  /// additionally promotes it after serving snapshot K and serves the
  /// rest of the deterministic stream itself.
  std::string replicate_to;
  uint32_t replicate_snapshot_every = 0;
  std::string follow;
  size_t promote_at = 0;
  /// Observability: --metrics-out FILE attaches the process-wide
  /// metrics registry to the service and exports a snapshot (JSON, or
  /// CSV when FILE ends in ".csv") at the end of the run —
  /// --metrics-every K additionally re-exports after every K stream
  /// snapshots, so a live run can be watched by tailing the file.
  /// --trace-out FILE attaches an epoch tracer and flushes its spans as
  /// Chrome-trace JSON (load in chrome://tracing or Perfetto).
  std::string metrics_out;
  uint32_t metrics_every = 0;
  std::string trace_out;
  /// Similarity core: --sim-core seed runs the scalar per-pair loop the
  /// repo started with; indexed (default) runs the batched feature-index
  /// kernels (bit-identical clustering either way). --sim-history picks
  /// the candidate-history mode: off, order (default; scoring order
  /// only, still exact) or prune (approximate, skips historically cold
  /// blocking keys).
  std::string sim_core = "indexed";
  std::string sim_history = "order";
  /// Read path: --serve-reads publishes an epoch-pinned read view at
  /// every sealed epoch and runs --read-clients concurrent reader
  /// threads through a ReadRouter while the stream is being served
  /// (point lookups, k-nearest-cluster probes and partition stats);
  /// --max-staleness-epochs K is the router's per-query admission
  /// bound. Reads are side-effect-free: the `final:` line is unchanged,
  /// a `reads:` line reports what was served.
  bool serve_reads = false;
  int read_clients = 2;
  uint64_t max_staleness_epochs = 8;
  /// Networked serving (src/net/): --listen PORT|HOST:PORT starts a
  /// TCP front end on the primary (ingest + queries + the replication
  /// stream when --replicate-to is set; port 0 picks an ephemeral
  /// port, written to --port-file). --linger keeps the server up after
  /// the stream ends until a Shutdown RPC arrives. A follower started
  /// with --replicate-over tcp --connect HOST:PORT mirrors the
  /// primary's replication stream over the wire into its --follow
  /// directory (compressed deltas, byte-identical replay);
  /// --shutdown-server sends the Shutdown RPC when it is done.
  /// --replicate-resume makes a promoted follower resume the existing
  /// delta log at its sealed epoch (chained replication) instead of
  /// serving the tail unreplicated.
  std::string listen;
  std::string port_file;
  bool linger = false;
  std::string connect;
  std::string replicate_over = "shared";
  bool shutdown_server = false;
  bool replicate_resume = false;
  /// Remote introspection (client modes — dial, print, exit; no local
  /// serving): --scrape HOST:PORT prints the server's Prometheus
  /// metrics text to stdout, --health HOST:PORT its health and active
  /// alerts (exit 3 when degraded), --trace-dump-from HOST:PORT its
  /// Chrome-trace JSON, and --rpc-shutdown HOST:PORT sends the
  /// Shutdown RPC. --watchdog attaches an SLO watchdog (replica
  /// staleness, read-path rejections, queue depth, event-loop lag) to
  /// a serving run; the Health RPC reports its active alerts.
  std::string scrape;
  std::string health;
  std::string trace_dump_from;
  std::string rpc_shutdown;
  bool watchdog = false;
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--workload") {
      const char* v = next();
      if (v == nullptr) return false;
      args->workload = v;
    } else if (flag == "--task") {
      const char* v = next();
      if (v == nullptr) return false;
      args->task = v;
    } else if (flag == "--method") {
      const char* v = next();
      if (v == nullptr) return false;
      args->method = v;
    } else if (flag == "--scale") {
      const char* v = next();
      if (v == nullptr) return false;
      args->scale = static_cast<size_t>(std::stoul(v));
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args->seed = static_cast<uint64_t>(std::stoull(v));
    } else if (flag == "--kmeans-k") {
      const char* v = next();
      if (v == nullptr) return false;
      args->kmeans_k = std::stoi(v);
    } else if (flag == "--csv") {
      args->csv = true;
    } else if (flag == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      args->shards = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "-j" || flag == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->threads = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--async") {
      args->async = true;
    } else if (flag == "--adaptive-batch") {
      args->adaptive_batch = true;
    } else if (flag == "--rebalance-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args->rebalance_every = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--rebalance-metric") {
      const char* v = next();
      if (v == nullptr) return false;
      args->rebalance_metric = v;
      if (args->rebalance_metric != "auto" &&
          args->rebalance_metric != "records" &&
          args->rebalance_metric != "ops") {
        std::fprintf(stderr,
                     "--rebalance-metric must be auto, records or ops\n");
        return false;
      }
    } else if (flag == "--save-snapshot") {
      const char* v = next();
      if (v == nullptr) return false;
      args->save_snapshot = v;
    } else if (flag == "--snapshot-at") {
      const char* v = next();
      if (v == nullptr) return false;
      args->snapshot_at = static_cast<size_t>(std::stoul(v));
    } else if (flag == "--load-snapshot") {
      const char* v = next();
      if (v == nullptr) return false;
      args->load_snapshot = v;
    } else if (flag == "--resume-at") {
      const char* v = next();
      if (v == nullptr) return false;
      args->resume_at = static_cast<size_t>(std::stoul(v));
    } else if (flag == "--replicate-to") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replicate_to = v;
    } else if (flag == "--replicate-snapshot-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replicate_snapshot_every = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--follow") {
      const char* v = next();
      if (v == nullptr) return false;
      args->follow = v;
    } else if (flag == "--promote-at") {
      const char* v = next();
      if (v == nullptr) return false;
      args->promote_at = static_cast<size_t>(std::stoul(v));
    } else if (flag == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_out = v;
    } else if (flag == "--metrics-every") {
      const char* v = next();
      if (v == nullptr) return false;
      args->metrics_every = static_cast<uint32_t>(std::stoul(v));
    } else if (flag == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_out = v;
    } else if (flag == "--sim-core") {
      const char* v = next();
      if (v == nullptr) return false;
      args->sim_core = v;
      if (args->sim_core != "seed" && args->sim_core != "indexed") {
        std::fprintf(stderr, "--sim-core must be seed or indexed\n");
        return false;
      }
    } else if (flag == "--sim-history") {
      const char* v = next();
      if (v == nullptr) return false;
      args->sim_history = v;
      if (args->sim_history != "off" && args->sim_history != "order" &&
          args->sim_history != "prune") {
        std::fprintf(stderr, "--sim-history must be off, order or prune\n");
        return false;
      }
    } else if (flag == "--serve-reads") {
      args->serve_reads = true;
    } else if (flag == "--read-clients") {
      const char* v = next();
      if (v == nullptr) return false;
      args->read_clients = std::stoi(v);
    } else if (flag == "--max-staleness-epochs") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_staleness_epochs = static_cast<uint64_t>(std::stoull(v));
    } else if (flag == "--listen") {
      const char* v = next();
      if (v == nullptr) return false;
      args->listen = v;
    } else if (flag == "--port-file") {
      const char* v = next();
      if (v == nullptr) return false;
      args->port_file = v;
    } else if (flag == "--linger") {
      args->linger = true;
    } else if (flag == "--connect") {
      const char* v = next();
      if (v == nullptr) return false;
      args->connect = v;
    } else if (flag == "--replicate-over") {
      const char* v = next();
      if (v == nullptr) return false;
      args->replicate_over = v;
      if (args->replicate_over != "shared" && args->replicate_over != "tcp") {
        std::fprintf(stderr, "--replicate-over must be shared or tcp\n");
        return false;
      }
    } else if (flag == "--shutdown-server") {
      args->shutdown_server = true;
    } else if (flag == "--replicate-resume") {
      args->replicate_resume = true;
    } else if (flag == "--scrape") {
      const char* v = next();
      if (v == nullptr) return false;
      args->scrape = v;
    } else if (flag == "--health") {
      const char* v = next();
      if (v == nullptr) return false;
      args->health = v;
    } else if (flag == "--trace-dump-from") {
      const char* v = next();
      if (v == nullptr) return false;
      args->trace_dump_from = v;
    } else if (flag == "--rpc-shutdown") {
      const char* v = next();
      if (v == nullptr) return false;
      args->rpc_shutdown = v;
    } else if (flag == "--watchdog") {
      args->watchdog = true;
    } else if (flag == "--queue-depth") {
      const char* v = next();
      if (v == nullptr) return false;
      args->queue_depth = static_cast<size_t>(std::stoul(v));
    } else if (flag == "--backpressure") {
      const char* v = next();
      if (v == nullptr) return false;
      args->backpressure = v;
      if (args->backpressure != "block" && args->backpressure != "reject") {
        std::fprintf(stderr, "--backpressure must be block or reject\n");
        return false;
      }
    } else if (flag == "--help" || flag == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: dynamicc_cli [--workload cora|music|synthetic|access|road]\n"
      "                    [--task db-index|kmeans|correlation|dbscan]\n"
      "                    [--method batch|naive|greedy|dynamicc|greedyset|"
      "all]\n"
      "                    [--scale N] [--seed N] [--kmeans-k N] [--csv]\n"
      "                    [--shards N] [-j N] [--async] [--queue-depth N]\n"
      "                    [--backpressure block|reject]\n"
      "                    [--rebalance-every K] [--adaptive-batch]\n"
      "                    [--rebalance-metric auto|records|ops]\n"
      "                    [--save-snapshot DIR] [--snapshot-at K]\n"
      "                    [--load-snapshot DIR] [--resume-at K]\n"
      "  --shards N > 1 serves with the sharded service (correlation or\n"
      "  db-index task, dynamicc method); -j N sets its worker thread\n"
      "  count (0 = auto).\n"
      "  --async pipelines ingestion through bounded per-shard queues with\n"
      "  background round workers; --queue-depth bounds each queue and\n"
      "  --backpressure picks what a full queue does to the producer.\n"
      "  --rebalance-every K migrates hot blocking groups between shards\n"
      "  every K dynamic barriers (load-aware placement) ranked by\n"
      "  --rebalance-metric (ops = applied-operation counts);\n"
      "  --adaptive-batch lets each async worker size its drain bite by\n"
      "  AIMD.\n"
      "  --save-snapshot DIR persists the full serving state after\n"
      "  serving snapshot --snapshot-at K (0 = end of stream);\n"
      "  --load-snapshot DIR warm-restarts from it and --resume-at K\n"
      "  continues the deterministic stream after the first K snapshots.\n"
      "  --replicate-to DIR ships a base snapshot plus one epoch delta\n"
      "  per serving snapshot into DIR (--replicate-snapshot-every K\n"
      "  compacts behind a fresh base every K epochs); --follow DIR\n"
      "  replays DIR as a follower, and --promote-at K fails over after\n"
      "  serving snapshot K and serves the remaining stream itself.\n"
      "  --metrics-out FILE exports service metrics (JSON; CSV if FILE\n"
      "  ends in .csv) at the end of the run, --metrics-every K also\n"
      "  after every K stream snapshots; --trace-out FILE flushes epoch\n"
      "  trace spans as Chrome-trace JSON.\n"
      "  --sim-core seed|indexed picks the similarity hot path (indexed\n"
      "  = batched feature-index kernels, the default; both produce the\n"
      "  same clustering); --sim-history off|order|prune sets the\n"
      "  candidate-history mode (prune is approximate).\n"
      "  --serve-reads publishes an epoch-pinned read view per sealed\n"
      "  epoch and serves --read-clients N concurrent reader threads\n"
      "  through a ReadRouter while the stream runs (lock-free; the\n"
      "  final: line is unchanged); --max-staleness-epochs K bounds how\n"
      "  many epochs behind the frontier an answer may be.\n"
      "  --listen PORT|HOST:PORT serves ingest, queries and the\n"
      "  replication stream over TCP (port 0 = ephemeral; --port-file\n"
      "  FILE writes the bound port for scripts); --linger keeps the\n"
      "  server up after the stream ends until a Shutdown RPC arrives.\n"
      "  A follower with --replicate-over tcp --connect HOST:PORT\n"
      "  mirrors the primary's replication stream over the wire into\n"
      "  its --follow dir (compressed deltas, byte-identical replay);\n"
      "  --shutdown-server sends the Shutdown RPC when it is done.\n"
      "  --replicate-resume makes a promoted follower resume the\n"
      "  existing delta log at its sealed epoch (chained replication)\n"
      "  instead of serving the tail unreplicated.\n"
      "  Remote introspection (client modes, run and exit): --scrape\n"
      "  HOST:PORT prints the server's Prometheus metrics text to\n"
      "  stdout, --health HOST:PORT its health + active alerts (exit 3\n"
      "  when degraded), --trace-dump-from HOST:PORT its Chrome-trace\n"
      "  JSON, --rpc-shutdown HOST:PORT sends the Shutdown RPC.\n"
      "  --watchdog attaches an SLO watchdog (staleness, read\n"
      "  rejections, queue depth, event-loop lag) to a serving run;\n"
      "  Health reports its alerts. A caught-up follower may --listen\n"
      "  too: it serves its replica state, scrape and health over TCP\n"
      "  (with --linger, until a Shutdown RPC).\n");
}

bool ToWorkload(const std::string& name, WorkloadKind* out) {
  if (name == "cora") *out = WorkloadKind::kCora;
  else if (name == "music") *out = WorkloadKind::kMusic;
  else if (name == "synthetic") *out = WorkloadKind::kSynthetic;
  else if (name == "access") *out = WorkloadKind::kAccess;
  else if (name == "road") *out = WorkloadKind::kRoad;
  else return false;
  return true;
}

bool ToTask(const std::string& name, TaskKind* out) {
  if (name == "db-index") *out = TaskKind::kDbIndex;
  else if (name == "kmeans") *out = TaskKind::kKMeans;
  else if (name == "correlation") *out = TaskKind::kCorrelation;
  else if (name == "dbscan") *out = TaskKind::kDbscan;
  else return false;
  return true;
}

void PrintSeries(const std::vector<Series>& series_list, bool csv) {
  std::vector<std::string> headers{"snapshot", "objects"};
  for (const auto& series : series_list) {
    headers.push_back(series.method + "_ms");
    headers.push_back(series.method + "_F1");
    headers.push_back(series.method + "_score");
  }
  TableWriter table(headers);
  size_t rows = series_list.front().points.size();
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{
        std::to_string(series_list.front().points[i].snapshot),
        std::to_string(series_list.front().points[i].num_objects)};
    for (const auto& series : series_list) {
      row.push_back(TableWriter::Num(series.points[i].latency_ms, 1));
      row.push_back(TableWriter::Num(series.points[i].quality.f1));
      row.push_back(TableWriter::Num(series.points[i].objective, 2));
    }
    table.AddRow(row);
  }
  if (csv) {
    std::cout << table.ToCsv();
  } else {
    table.Print(std::cout);
  }
}

/// Per-shard environment factory for the tasks the sharded path serves:
/// every shard gets the workload's Table-1 profile plus its own copy of
/// the task objective/validator/batch pipeline. The pipeline comes from
/// the harness's MakeTaskPipeline — the *same* builder the single-engine
/// path uses — so `--shards N` is comparable with it by construction
/// (correlation: greedy agglomeration + hill climbing; db-index:
/// agglomeration bootstrapped on the O(1)-delta correlation objective,
/// then hill climbing on DB-index).
ShardEnvironmentFactory MakeShardFactory(const ExperimentConfig& config) {
  return [config] {
    ShardEnvironment env;
    DatasetProfile profile = MakeProfile(config.workload);
    env.measure = std::move(profile.measure);
    env.blocker = std::move(profile.blocker);
    env.min_similarity = profile.min_similarity;
    env.sim_core = config.sim_core;
    if (config.task == TaskKind::kDbscan) {
      // Validator-only environment: DBSCAN has no objective, and its
      // core-stability validator binds to the shard's similarity graph,
      // which the service creates after this factory returns — hence
      // the deferred validator_factory.
      auto dbscan = std::make_unique<Dbscan>(config.dbscan);
      const Dbscan* core = dbscan.get();
      env.batch = std::move(dbscan);
      env.validator_factory = [core](const SimilarityGraph* graph)
          -> std::unique_ptr<ChangeValidator> {
        return std::make_unique<DbscanValidator>(core, graph);
      };
    } else {
      TaskPipeline pipeline = MakeTaskPipeline(config);
      env.objective = std::move(pipeline.objective);
      env.bootstrap_objective = std::move(pipeline.bootstrap_objective);
      env.validator = std::move(pipeline.validator);
      env.batch_stages = std::move(pipeline.stages);
      env.batch = std::move(pipeline.batch);
    }
    env.merge_model = std::make_unique<LogisticRegression>();
    env.split_model = std::make_unique<LogisticRegression>();
    return env;
  };
}

/// Deterministic end-of-run state line (stdout): everything in it is
/// reproducible across processes on the same stream, so a warm-restarted
/// run is checked for equality against the never-restarted one by
/// comparing this single line (the CI persistence step does exactly
/// that). The hash covers the full canonical partition in global ids.
/// Deliberately excluded: applied/coalesced op counts — in async mode
/// queue coalescing depends on drain-worker timing, so those counters
/// legitimately vary between equivalent runs (the flush-barrier
/// equivalence guarantee covers the *clustering*, not how much work the
/// queues managed to fold away).
void PrintFinalState(ShardedDynamicCService& service) {
  ServiceSnapshot snap = service.Snapshot();
  std::string canonical;
  for (const auto& members : snap.clusters) {
    for (ObjectId id : members) {
      canonical += std::to_string(id);
      canonical += ' ';
    }
    canonical += '\n';
  }
  std::printf(
      "final: objects=%zu clusters=%zu placement_version=%llu "
      "migrations=%llu accepted=%llu epoch=%llu state_hash=%016llx\n",
      snap.total_objects, snap.total_clusters,
      static_cast<unsigned long long>(snap.report.placement_version),
      static_cast<unsigned long long>(snap.report.groups_migrated),
      static_cast<unsigned long long>(snap.report.ingest.accepted_ops),
      static_cast<unsigned long long>(snap.report.ingest.applied_epoch),
      static_cast<unsigned long long>(SnapshotChecksum(canonical)));
}

/// Exports metrics (refreshing the registry's IngestStats mirror gauges
/// first, so file and report agree) and, when a tracer is attached, its
/// spans as Chrome-trace JSON. Export failures are reported but never
/// fail the run — observability degrades, the experiment does not.
void ExportObservability(const CliArgs& args,
                         const ShardedDynamicCService& service,
                         const obs::Tracer* tracer) {
  if (!args.metrics_out.empty() && service.metrics_registry() != nullptr) {
    service.ingest_stats();  // refresh mirror gauges before the export
    Status status =
        obs::ExportMetrics(*service.metrics_registry(), args.metrics_out);
    if (!status.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   status.ToString().c_str());
    }
  }
  if (tracer != nullptr && !args.trace_out.empty()) {
    Status status = obs::ExportTrace(*tracer, args.trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

/// Dials |target| and runs |body| on the connected client. Returns 2 on
/// a bad address, 1 on a failed dial, otherwise whatever |body| does.
int WithClient(const std::string& target,
               const std::function<int(net::NetClient&)>& body) {
  net::NetClient::Options copts;
  Status status = net::ParseHostPort(target, &copts.host, &copts.port);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", target.c_str(),
                 status.ToString().c_str());
    return 2;
  }
  net::NetClient client(copts);
  status = client.Connect();
  if (!status.ok()) {
    std::fprintf(stderr, "connect %s failed: %s\n", target.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  const int rc = body(client);
  client.Close();
  return rc;
}

/// Remote introspection client modes (--scrape / --health /
/// --trace-dump-from / --rpc-shutdown): independent of the workload
/// flags, so scripts can probe any serving process without re-stating
/// its stream configuration. Runs every requested probe in order and
/// stops at the first failure.
int RunIntrospection(const CliArgs& args) {
  if (!args.scrape.empty()) {
    const int rc = WithClient(args.scrape, [](net::NetClient& client) {
      std::string text;
      Status status = client.MetricsScrape(&text);
      if (!status.ok()) {
        std::fprintf(stderr, "scrape failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::fwrite(text.data(), 1, text.size(), stdout);
      return 0;
    });
    if (rc != 0) return rc;
  }
  if (!args.health.empty()) {
    const int rc = WithClient(args.health, [](net::NetClient& client) {
      net::HealthResponse health;
      Status status = client.Health(&health);
      if (!status.ok()) {
        std::fprintf(stderr, "health failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::printf("health: %s alerts_active=%llu\n",
                  health.ok ? "ok" : "degraded",
                  static_cast<unsigned long long>(health.alerts_active));
      for (const std::string& alert : health.alerts) {
        std::printf("alert: %s\n", alert.c_str());
      }
      return health.ok ? 0 : 3;
    });
    if (rc != 0) return rc;
  }
  if (!args.trace_dump_from.empty()) {
    const int rc =
        WithClient(args.trace_dump_from, [](net::NetClient& client) {
          std::string json;
          Status status = client.TraceDump(&json);
          if (!status.ok()) {
            std::fprintf(stderr, "trace dump failed: %s\n",
                         status.ToString().c_str());
            return 1;
          }
          std::fwrite(json.data(), 1, json.size(), stdout);
          return 0;
        });
    if (rc != 0) return rc;
  }
  if (!args.rpc_shutdown.empty()) {
    return WithClient(args.rpc_shutdown, [](net::NetClient& client) {
      Status status = client.Shutdown();
      if (!status.ok()) {
        std::fprintf(stderr, "rpc-shutdown failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
      std::fprintf(stderr, "server shut down\n");
      return 0;
    });
  }
  return 0;
}

/// Default SLO rules for --watchdog: replica staleness, read-path
/// staleness rejections, ingest queue depth, and event-loop lag. The
/// thresholds are generous on purpose — the watchdog flags sustained
/// breaches, and each rule clears well below where it fires so a value
/// oscillating around the threshold produces one alert, not a storm.
void AddDefaultSloRules(obs::Watchdog* watchdog, const CliArgs& args) {
  obs::Watchdog::Rule rule;
  rule.name = "follower-staleness";
  rule.metric = "follower.epochs_behind";
  rule.fire_above = 8.0;
  rule.clear_below = 2.0;
  watchdog->AddRule(rule);

  rule = obs::Watchdog::Rule();
  rule.name = "read-stale-rejections";
  rule.metric = "read.rejected_stale";
  rule.kind = obs::Watchdog::Rule::Kind::kCounterDelta;
  rule.fire_above = 100.0;
  rule.clear_below = 1.0;
  watchdog->AddRule(rule);

  rule = obs::Watchdog::Rule();
  rule.name = "ingest-queue-depth";
  rule.metric = "ingest.pending_ops";
  rule.fire_above = 0.9 * static_cast<double>(args.queue_depth);
  rule.clear_below = 0.5 * static_cast<double>(args.queue_depth);
  watchdog->AddRule(rule);

  rule = obs::Watchdog::Rule();
  rule.name = "event-loop-lag";
  rule.metric = "net.loop_lag_ms";
  rule.fire_above = 250.0;
  rule.clear_below = 50.0;
  watchdog->AddRule(rule);
}

/// Serves the workload stream with the sharded service instead of the
/// single-engine harness: one environment per shard, the first
/// `training_rounds` snapshots observed, the rest served dynamically
/// (correlation and db-index tasks). With --load-snapshot the service
/// warm-restarts from a saved state and continues the deterministic
/// stream at --resume-at.
ShardedDynamicCService::Options MakeServiceOptions(
    const CliArgs& args, const ExperimentConfig& config) {
  ShardedDynamicCService::Options options;
  options.num_shards = args.shards;
  options.num_threads = args.threads;
  options.async.enabled = args.async;
  options.async.queue_depth = args.queue_depth;
  options.async.backpressure = args.backpressure == "reject"
                                   ? BackpressurePolicy::kReject
                                   : BackpressurePolicy::kBlock;
  options.async.adaptive_batch = args.adaptive_batch;
  options.read.serve = args.serve_reads;
  options.rebalance.every_rounds = args.rebalance_every;
  if (args.rebalance_metric == "records") {
    options.rebalance.policy.metric = Rebalancer::LoadMetric::kRecords;
  } else if (args.rebalance_metric == "ops") {
    options.rebalance.policy.metric = Rebalancer::LoadMetric::kOps;
  }
  // Mirror the harness's session configuration so `--shards N` is
  // comparable with the single-engine path on the same stream.
  options.session.threshold = config.threshold;
  options.session.dynamicc = config.dynamicc;
  options.session.trainer = config.trainer;
  options.session.retrain_every = config.retrain_every;
  options.session.observe_every = config.observe_every;
  return options;
}

int RunSharded(const CliArgs& args, const ExperimentConfig& config) {
  WorkloadStream stream =
      MakeStream(config.workload, config.scale, config.seed);
  ShardedDynamicCService::Options options = MakeServiceOptions(args, config);
  std::unique_ptr<obs::Tracer> tracer;
  if (!args.trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>(args.shards);
    options.obs.tracer = tracer.get();
  }
  if (!args.metrics_out.empty()) {
    options.obs.metrics = &obs::MetricsRegistry::Default();
  }
  // --watchdog needs a registry to watch (and forces one on when no
  // export was requested — alerts are still scrapeable over TCP).
  std::unique_ptr<obs::Watchdog> watchdog;
  if (args.watchdog) {
    if (options.obs.metrics == nullptr) {
      options.obs.metrics = &obs::MetricsRegistry::Default();
    }
    watchdog =
        std::make_unique<obs::Watchdog>(options.obs.metrics,
                                        options.obs.tracer);
    AddDefaultSloRules(watchdog.get(), args);
    watchdog->Start(/*interval_ms=*/100);
  }
  // A --listen server is always scrapeable: MetricsScrape needs a
  // registry even when no local export was asked for.
  if (!args.listen.empty() && options.obs.metrics == nullptr) {
    options.obs.metrics = &obs::MetricsRegistry::Default();
  }
  ShardedDynamicCService service(options, /*router=*/nullptr,
                                 MakeShardFactory(config));

  // Replication: the primary publishes its base snapshot at the
  // training -> serving transition, then seals (and ships) one epoch
  // per serving snapshot.
  std::unique_ptr<ReplicationSession> repl;
  if (!args.replicate_to.empty()) {
    ReplicationSession::Options repl_options;
    repl_options.snapshot_every = args.replicate_snapshot_every;
    repl = std::make_unique<ReplicationSession>(&service, args.replicate_to,
                                                repl_options);
  }
  // Networked serving (--listen): ingest, queries and — when this run
  // replicates — the replication stream, all served over TCP while the
  // local stream runs. Started before the stream so followers and load
  // generators can dial in early (the replication RPCs answer "nothing
  // published yet" until the session starts at the serving transition).
  std::unique_ptr<net::ServerFrontEnd> front_end;
  if (!args.listen.empty()) {
    net::ServerFrontEnd::Options fe_options;
    Status status = net::ParseHostPort(args.listen, &fe_options.host,
                                       &fe_options.port);
    if (!status.ok()) {
      std::fprintf(stderr, "--listen: %s\n", status.ToString().c_str());
      return 2;
    }
    fe_options.replication_dir = args.replicate_to;
    fe_options.metrics = options.obs.metrics;
    // Share the service's tracer so one trace spans the RPC handler and
    // the shard-side work it triggered; Health reports the watchdog.
    fe_options.tracer = options.obs.tracer;
    fe_options.watchdog = watchdog.get();
    front_end = std::make_unique<net::ServerFrontEnd>(&service,
                                                      /*router=*/nullptr,
                                                      fe_options);
    status = front_end->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "--listen failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "listening on %s:%u\n", fe_options.host.c_str(),
                 front_end->port());
    if (!args.port_file.empty()) {
      status = WriteFileAtomic(args.port_file,
                               std::to_string(front_end->port()) + "\n");
      if (!status.ok()) {
        std::fprintf(stderr, "--port-file failed: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
  }

  bool repl_started = false;
  auto maybe_start_replication = [&args, &repl, &repl_started, &service] {
    if (repl == nullptr || repl_started) return;
    service.Flush();  // the trained state the base snapshot captures
    Status status = repl->Start();
    if (!status.ok()) {
      std::fprintf(stderr, "replicate-to failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    repl_started = true;
    std::fprintf(stderr, "replicating to %s: base at epoch %llu\n",
                 args.replicate_to.c_str(),
                 static_cast<unsigned long long>(repl->last_base_epoch()));
  };
  auto report_replication = [&repl, &repl_started]() -> bool {
    if (!repl_started) return true;
    if (!repl->status().ok()) {
      std::fprintf(stderr, "replication error: %s\n",
                   repl->status().ToString().c_str());
      return false;
    }
    std::fprintf(stderr,
                 "replication: %llu deltas shipped, last base at epoch "
                 "%llu\n",
                 static_cast<unsigned long long>(repl->deltas_shipped()),
                 static_cast<unsigned long long>(repl->last_base_epoch()));
    return true;
  };

  // Read path (--serve-reads): concurrent reader threads over a
  // ReadRouter while the stream is being served — point lookups,
  // k-nearest probes and partition stats against epoch-pinned views,
  // lock-free against the ingest running on the same service. Readers
  // start at the serving transition (the first published view) and are
  // joined before the final state line; reads are side-effect-free, so
  // `final:` stays byte-identical to a run without them.
  std::unique_ptr<ReadRouter> router;
  std::vector<std::thread> reader_threads;
  std::atomic<bool> readers_stop{false};
  std::atomic<uint64_t> reads_served{0};
  std::atomic<uint64_t> reads_max_staleness{0};
  Record read_probe;
  for (const DataOperation& op : stream.initial) {
    if (op.kind == DataOperation::Kind::kAdd) {
      read_probe = op.record;
      break;
    }
  }
  auto maybe_start_readers = [&] {
    if (!args.serve_reads || router != nullptr) return;
    ReadRouter::Options router_options;
    router_options.max_staleness_epochs = args.max_staleness_epochs;
    if (!args.metrics_out.empty()) {
      router_options.metrics = &obs::MetricsRegistry::Default();
    }
    router = std::make_unique<ReadRouter>(&service, router_options);
    const size_t known_objects = std::max<size_t>(1, service.total_objects());
    for (int c = 0; c < std::max(1, args.read_clients); ++c) {
      reader_threads.emplace_back([&, known_objects, c] {
        uint64_t t = static_cast<uint64_t>(c) * 7919;
        while (!readers_stop.load(std::memory_order_relaxed)) {
          QueryClient::ResultInfo info;
          switch (t % 3) {
            case 0:
              info = router->Stats().info;
              break;
            case 1:
              info = router
                         ->ClusterOfRecord(static_cast<ObjectId>(
                             (t * 2654435761ull) % known_objects))
                         .info;
              break;
            default:
              info = router->KNearestClusters(read_probe, 4).info;
          }
          if (info.served) {
            reads_served.fetch_add(1, std::memory_order_relaxed);
            uint64_t seen =
                reads_max_staleness.load(std::memory_order_relaxed);
            while (info.staleness > seen &&
                   !reads_max_staleness.compare_exchange_weak(
                       seen, info.staleness, std::memory_order_relaxed)) {
            }
          }
          ++t;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
      });
    }
    std::fprintf(stderr,
                 "serving reads: %d clients, staleness bound %llu epochs\n",
                 std::max(1, args.read_clients),
                 static_cast<unsigned long long>(args.max_staleness_epochs));
  };
  // End of stream for the TCP front end: flip stream_done so tailing
  // followers drain and stop; with --linger hold the server (and the
  // fully-served state) up until a Shutdown RPC tears it down — the CI
  // smoke queries the finished primary and shuts it down explicitly.
  auto finish_front_end = [&args, &front_end] {
    if (front_end == nullptr) return;
    front_end->SetStreamDone(true);
    if (args.linger) {
      std::fprintf(stderr, "stream done; lingering until Shutdown RPC\n");
      front_end->Join();
    }
    front_end->Stop();
  };

  auto finish_readers = [&] {
    if (router == nullptr) return;
    readers_stop.store(true, std::memory_order_relaxed);
    for (std::thread& thread : reader_threads) thread.join();
    std::printf(
        "reads: routed=%llu served=%llu rejected_stale=%llu "
        "max_staleness=%llu bound=%llu frontier=%llu\n",
        static_cast<unsigned long long>(router->queries()),
        static_cast<unsigned long long>(
            reads_served.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(router->rejected_stale()),
        static_cast<unsigned long long>(
            reads_max_staleness.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(args.max_staleness_epochs),
        static_cast<unsigned long long>(router->Frontier()));
  };

  const bool resuming = !args.load_snapshot.empty();
  size_t resume_at = 0;
  if (resuming) {
    if (args.async && args.backpressure == "reject") {
      std::fprintf(stderr,
                   "--load-snapshot cannot replay a kReject id book; use "
                   "--backpressure block\n");
      return 2;
    }
    Status status = service.LoadSnapshot(args.load_snapshot);
    if (!status.ok()) {
      std::fprintf(stderr, "load-snapshot failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    resume_at = args.resume_at;
    SnapshotInfo info;
    if (ReadSnapshotInfo(args.load_snapshot, &info).ok()) {
      std::fprintf(stderr,
                   "warm restart: snapshot at epoch %llu, placement "
                   "version %llu; resuming at serving snapshot %zu\n",
                   static_cast<unsigned long long>(info.epoch),
                   static_cast<unsigned long long>(info.placement_version),
                   resume_at);
    }
  }

  auto maybe_save = [&args, &service](size_t completed_snapshot) {
    if (args.save_snapshot.empty()) return;
    if (args.snapshot_at != completed_snapshot) return;
    Timer timer;
    Status status = service.SaveSnapshot(args.save_snapshot);
    if (!status.ok()) {
      std::fprintf(stderr, "save-snapshot failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "snapshot saved to %s after snapshot %zu "
                 "(%.1f ms)\n",
                 args.save_snapshot.c_str(), completed_snapshot,
                 timer.ElapsedMillis());
  };
  std::fprintf(stderr, "sharded service: %u shards on %zu threads%s\n",
               service.num_shards(), service.num_threads(),
               service.async() ? " (async pipelined ingestion)" : "");
  if (args.rebalance_every > 0) {
    std::fprintf(stderr, "rebalancing: every %u dynamic barriers\n",
                 args.rebalance_every);
  }

  // End-of-run placement health (printed by both serving paths): the
  // routing-table version, how many groups migrated, and where the
  // records ended up.
  auto print_placement = [&service] {
    ServiceSnapshot snap = service.Snapshot();
    std::string per_shard;
    for (const auto& stats : snap.report.dynamic_shards) {
      if (!per_shard.empty()) per_shard += ", ";
      per_shard += std::to_string(stats.objects);
    }
    std::fprintf(
        stderr,
        "placement: version %llu, %llu group migrations; record imbalance "
        "%.2fx max/mean; per-shard records [%s]\n",
        static_cast<unsigned long long>(snap.report.placement_version),
        static_cast<unsigned long long>(snap.report.groups_migrated),
        snap.report.record_imbalance, per_shard.c_str());
  };

  // Initial clustering via one observed batch round; like the harness,
  // round 0 derives its transformation without changed-object hints. A
  // warm restart skips this entirely — the snapshot carries the trained
  // state the initial load + observation produced.
  if (!resuming) {
    service.ApplyOperations(stream.initial);
    service.ObserveBatchRound({});
  }
  std::vector<ObjectId> changed;

  if (args.async) {
    // Pipelined serving: training snapshots still use explicit observe
    // barriers; afterwards every snapshot is only *enqueued* (the table
    // shows the producer-side cost — enqueue latency and backpressure),
    // the background workers apply + round it, and one Flush() barrier
    // ends the stream.
    //
    // The stream generator numbers adds in generation order; under the
    // kReject policy some batches are shed, so the client keeps its own
    // generator-id -> service-id book and drops operations whose target
    // never got admitted — exactly what a real load-shedding producer
    // does.
    std::vector<ObjectId> service_id_of;  // generator add idx -> service id
    size_t service_adds = 0;              // admitted adds == next service id
    auto translate = [&](const OperationBatch& ops) {
      OperationBatch out;
      const size_t gen_base = service_id_of.size();
      for (const DataOperation& op : ops) {
        if (op.kind == DataOperation::Kind::kAdd) {
          out.push_back(op);
          continue;
        }
        ObjectId sid;
        if (op.target < static_cast<ObjectId>(gen_base)) {
          sid = service_id_of[op.target];
        } else {
          // Intra-batch reference: adds of this batch are admitted (or
          // rejected) together, so the target's prospective service id
          // is the batch-relative add index past the admitted count.
          sid = static_cast<ObjectId>(service_adds + (op.target - gen_base));
        }
        if (sid == kInvalidObject) continue;  // target was shed earlier
        DataOperation translated = op;
        translated.target = sid;
        out.push_back(translated);
      }
      return out;
    };
    auto track = [&](const OperationBatch& ops, bool accepted) {
      for (const DataOperation& op : ops) {
        if (op.kind != DataOperation::Kind::kAdd) continue;
        service_id_of.push_back(accepted
                                    ? static_cast<ObjectId>(service_adds++)
                                    : kInvalidObject);
      }
    };
    track(stream.initial, true);  // applied (or restored), never rejected
    // A resumed run replays the id book for the snapshots the saved
    // service already served (kBlock admits everything, so "all
    // accepted" reconstructs the book exactly).
    for (size_t snapshot = 0; snapshot < resume_at; ++snapshot) {
      track(stream.snapshots[snapshot], true);
    }

    TableWriter table(
        {"snapshot", "ops", "enqueue_ms", "accepted", "queued"});
    for (size_t snapshot = resume_at; snapshot < stream.snapshots.size();
         ++snapshot) {
      OperationBatch batch = translate(stream.snapshots[snapshot]);
      bool observe = snapshot < static_cast<size_t>(config.training_rounds);
      if (!observe) {
        maybe_start_replication();
        maybe_start_readers();
      }
      Timer timer;
      bool accepted = true;
      if (observe) {
        changed = service.ApplyOperations(batch);
        service.ObserveBatchRound(changed);
        if (snapshot + 1 == static_cast<size_t>(config.training_rounds)) {
          service.Flush();  // enter the serving phase: workers round on
        }
      } else {
        accepted = service.Ingest(batch).accepted;
      }
      double ms = timer.ElapsedMillis();
      track(stream.snapshots[snapshot], accepted);
      table.AddRow({std::to_string(snapshot + 1),
                    std::to_string(batch.size()),
                    TableWriter::Num(ms, 2), accepted ? "yes" : "no",
                    std::to_string(service.ingest_stats().pending_ops)});
      // A durable snapshot is taken at a barrier: in the serving phase
      // flush the admitted prefix first so the saved state reflects
      // this snapshot (observe barriers above already flushed).
      if (!observe && !args.save_snapshot.empty() &&
          args.snapshot_at == snapshot + 1) {
        service.Flush();
      }
      maybe_save(snapshot + 1);
      if (args.metrics_every > 0 &&
          (snapshot + 1) % args.metrics_every == 0) {
        ExportObservability(args, service, /*tracer=*/nullptr);
      }
      // One sealed epoch per serving snapshot. A *replicated* async
      // primary barriers the epoch before sealing it: un-barriered
      // pipelining leaves the clustering dependent on where the drain
      // workers happened to cut their bites — schedule noise no log can
      // replay on workloads whose blocking groups interact. The barrier
      // makes the shipped stream fully determine the state, so the
      // follower's replay is byte-identical on every workload (and the
      // queues still pipeline within each snapshot).
      if (repl_started) {
        service.Flush();
        repl->SealEpoch();
      }
    }
    Timer flush_timer;
    service.Flush();
    double flush_ms = flush_timer.ElapsedMillis();
    maybe_save(0);
    if (args.csv) {
      std::cout << table.ToCsv();
    } else {
      table.Print(std::cout);
    }
    ServiceSnapshot snap = service.Snapshot();
    const IngestStats& ingest = snap.report.ingest;
    std::fprintf(stderr,
                 "flush: %.1f ms  sequence=%llu  objects=%zu clusters=%zu\n"
                 "pipeline: %llu ops accepted, %llu coalesced away, "
                 "%llu rejected batches, %llu worker rounds, "
                 "%llu producer waits, queue high-water %zu\n",
                 flush_ms, static_cast<unsigned long long>(snap.sequence),
                 snap.total_objects, snap.total_clusters,
                 static_cast<unsigned long long>(ingest.accepted_ops),
                 static_cast<unsigned long long>(ingest.coalesced_ops),
                 static_cast<unsigned long long>(ingest.rejected_batches),
                 static_cast<unsigned long long>(ingest.worker_rounds),
                 static_cast<unsigned long long>(ingest.producer_waits),
                 ingest.queue_high_water);
    if (args.adaptive_batch) {
      std::fprintf(stderr,
                   "adaptive batch: %llu grows, %llu shrinks, bites %zu-%zu\n",
                   static_cast<unsigned long long>(ingest.batch_grows),
                   static_cast<unsigned long long>(ingest.batch_shrinks),
                   ingest.adaptive_batch_min, ingest.adaptive_batch_max);
    }
    print_placement();
    if (!report_replication()) return 1;
    finish_readers();
    finish_front_end();
    ExportObservability(args, service, tracer.get());
    PrintFinalState(service);
    return 0;
  }

  TableWriter table({"snapshot", "objects", "ms", "clusters", "served",
                     "merges", "splits"});
  for (size_t snapshot = resume_at; snapshot < stream.snapshots.size();
       ++snapshot) {
    bool observe = snapshot < static_cast<size_t>(config.training_rounds);
    if (!observe) {
      maybe_start_replication();
      maybe_start_readers();
    }
    Timer timer;
    changed = service.ApplyOperations(stream.snapshots[snapshot]);
    ServiceReport report = observe ? service.ObserveBatchRound(changed)
                                   : service.DynamicRound(changed);
    double ms = timer.ElapsedMillis();
    size_t served = 0;
    for (const auto& stats : report.dynamic_shards) {
      if (stats.participated) ++served;
    }
    for (const auto& stats : report.train_shards) {
      if (stats.participated) ++served;
    }
    table.AddRow({std::to_string(snapshot + 1),
                  std::to_string(service.total_objects()),
                  TableWriter::Num(ms, 1),
                  std::to_string(service.total_clusters()),
                  std::to_string(served),
                  std::to_string(report.combined.merges_applied),
                  std::to_string(report.combined.splits_applied)});
    maybe_save(snapshot + 1);
    if (args.metrics_every > 0 && (snapshot + 1) % args.metrics_every == 0) {
      ExportObservability(args, service, /*tracer=*/nullptr);
    }
    if (repl_started) repl->SealEpoch();
  }
  maybe_save(0);
  if (args.csv) {
    std::cout << table.ToCsv();
  } else {
    table.Print(std::cout);
  }
  print_placement();
  if (!report_replication()) return 1;
  finish_readers();
  finish_front_end();
  ExportObservability(args, service, tracer.get());
  PrintFinalState(service);
  return 0;
}

/// Follower mode (--follow DIR): restores the primary's base snapshot,
/// replays the shipped epoch deltas, and either reports the replica's
/// state (byte-equal `final:` line to the primary's) or — with
/// --promote-at K — fails over after serving snapshot K and serves the
/// remaining deterministic stream itself, with zero retraining.
int RunFollower(const CliArgs& args, const ExperimentConfig& config) {
  const size_t training = static_cast<size_t>(config.training_rounds);
  if (args.promote_at > 0 && args.promote_at < training) {
    std::fprintf(stderr,
                 "--promote-at must be >= the training rounds (%zu): the "
                 "primary only seals epochs while serving\n",
                 training);
    return 2;
  }
  // --promote-at maps serving snapshot K to epoch base + (K - training),
  // which assumes one sealed epoch per serving snapshot — i.e. the
  // primary ran without --replicate-snapshot-every (each mid-stream base
  // seals an extra epoch, and compaction retires the deltas a fresh
  // process would need to stop *before* the newest base anyway). A
  // long-running tailer promotes wherever it stands instead.
  ShardedDynamicCService::Options options = MakeServiceOptions(args, config);
  options.async.enabled = false;       // replay is already batched
  options.rebalance.every_rounds = 0;  // placement arrives via the stream
  std::unique_ptr<obs::Tracer> tracer;
  if (!args.trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>(args.shards);
    options.obs.tracer = tracer.get();
  }
  if (!args.metrics_out.empty()) {
    options.obs.metrics = &obs::MetricsRegistry::Default();
  }
  std::unique_ptr<obs::Watchdog> watchdog;
  if (args.watchdog) {
    if (options.obs.metrics == nullptr) {
      options.obs.metrics = &obs::MetricsRegistry::Default();
    }
    watchdog =
        std::make_unique<obs::Watchdog>(options.obs.metrics,
                                        options.obs.tracer);
    AddDefaultSloRules(watchdog.get(), args);
  }
  if (!args.listen.empty() && options.obs.metrics == nullptr) {
    options.obs.metrics = &obs::MetricsRegistry::Default();
  }
  Follower follower(args.follow, options, MakeShardFactory(config));
  // The follower ticks the watchdog itself after every catch-up pass —
  // exactly when the staleness gauges move.
  if (watchdog != nullptr) follower.set_watchdog(watchdog.get());

  // --listen on a follower: once the replica has caught up, serve its
  // state over TCP — queries, metrics scrape, trace dump and health —
  // until (with --linger) a Shutdown RPC tears it down. Started after
  // the tail so a compaction-forced rebuild can never swap the service
  // out from under a live front end.
  auto serve_front_end = [&args, &follower, &options, &watchdog]() -> bool {
    if (args.listen.empty()) return true;
    net::ServerFrontEnd::Options fe_options;
    Status status = net::ParseHostPort(args.listen, &fe_options.host,
                                       &fe_options.port);
    if (!status.ok()) {
      std::fprintf(stderr, "--listen: %s\n", status.ToString().c_str());
      return false;
    }
    fe_options.metrics = options.obs.metrics;
    fe_options.tracer = options.obs.tracer;
    fe_options.watchdog = watchdog.get();
    net::ServerFrontEnd front_end(&follower.service(), /*router=*/nullptr,
                                  fe_options);
    status = front_end.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "--listen failed: %s\n",
                   status.ToString().c_str());
      return false;
    }
    front_end.SetStreamDone(true);  // the replica serves a finished tail
    std::fprintf(stderr, "follower listening on %s:%u\n",
                 fe_options.host.c_str(), front_end.port());
    if (!args.port_file.empty()) {
      status = WriteFileAtomic(args.port_file,
                               std::to_string(front_end.port()) + "\n");
      if (!status.ok()) {
        std::fprintf(stderr, "--port-file failed: %s\n",
                     status.ToString().c_str());
        return false;
      }
    }
    if (args.linger) {
      // Keep evaluating SLO rules on wall-clock cadence while lingering
      // (no catch-up passes tick the watchdog any more).
      if (watchdog != nullptr) watchdog->Start(/*interval_ms=*/100);
      std::fprintf(stderr, "caught up; lingering until Shutdown RPC\n");
      front_end.Join();
      if (watchdog != nullptr) watchdog->Stop();
    }
    front_end.Stop();
    return true;
  };

  // --replicate-over tcp: the --follow directory is a local mirror of
  // the primary's replication stream, filled over the wire by a
  // DeltaStreamClient instead of a shared filesystem. Replay pipelines
  // with transfer through the tail's progress hook.
  std::unique_ptr<net::DeltaStreamClient> stream_client;
  if (args.replicate_over == "tcp") {
    net::DeltaStreamClient::Options stream_options;
    Status st = net::ParseHostPort(args.connect, &stream_options.host,
                                   &stream_options.port);
    if (!st.ok()) {
      std::fprintf(stderr, "--connect: %s\n", st.ToString().c_str());
      return 2;
    }
    stream_options.mirror_dir = args.follow;
    // Start-order tolerance: the primary may still be coming up.
    stream_options.max_reconnect_attempts = 100;
    if (!args.metrics_out.empty()) {
      stream_options.metrics = &obs::MetricsRegistry::Default();
    }
    stream_client =
        std::make_unique<net::DeltaStreamClient>(std::move(stream_options));
  }

  if (stream_client != nullptr && args.promote_at == 0) {
    // Live tail over TCP: restore as soon as the first base lands in
    // the mirror, replay after every pass that mirrored something new,
    // and drain once the primary reports its stream done.
    bool restored = false;
    size_t replayed_total = 0;
    Status replay_status;
    auto replay = [&] {
      if (!replay_status.ok()) return;  // sticky: report after the tail
      if (!restored) {
        DeltaLog::State have;
        if (!DeltaLog(args.follow).List(&have).ok() || have.bases.empty()) {
          return;  // no base mirrored yet
        }
        replay_status = follower.Restore();
        if (!replay_status.ok()) return;
        restored = true;
        std::fprintf(stderr,
                     "following %s over tcp: base at epoch %llu\n",
                     args.connect.c_str(),
                     static_cast<unsigned long long>(follower.base_epoch()));
      }
      size_t replayed = 0;
      replay_status = follower.CatchUp(&replayed);
      replayed_total += replayed;
    };
    Status status = stream_client->TailUntilDone(replay);
    if (!status.ok()) {
      std::fprintf(stderr, "tcp tail failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    replay();  // the last pass may have mirrored without replaying
    if (!replay_status.ok()) {
      std::fprintf(stderr, "catch-up failed: %s\n",
                   replay_status.ToString().c_str());
      return 1;
    }
    if (!restored) {
      std::fprintf(stderr, "tcp stream ended without a base snapshot\n");
      return 1;
    }
    follower.Flush();
    std::fprintf(stderr,
                 "caught up over tcp: %zu deltas replayed, %llu reconnects, "
                 "at epoch %llu\n",
                 replayed_total,
                 static_cast<unsigned long long>(stream_client->reconnects()),
                 static_cast<unsigned long long>(follower.epoch()));
    if (args.shutdown_server) {
      status = stream_client->client()->Shutdown();
      if (!status.ok()) {
        std::fprintf(stderr, "shutdown-server failed: %s\n",
                     status.ToString().c_str());
      }
    }
    if (!serve_front_end()) return 1;
    ExportObservability(args, follower.service(), tracer.get());
    PrintFinalState(follower.service());
    return 0;
  }
  if (stream_client != nullptr) {
    // Promotion over TCP: the hand-over point must be fully mirrored,
    // so drain the whole stream first, then fail over locally.
    Status st = stream_client->TailUntilDone(nullptr);
    if (!st.ok()) {
      std::fprintf(stderr, "tcp mirror failed: %s\n", st.ToString().c_str());
      return 1;
    }
    if (args.shutdown_server) stream_client->client()->Shutdown();
  }

  Status status = follower.Restore();
  if (!status.ok()) {
    std::fprintf(stderr, "follow failed: %s\n", status.ToString().c_str());
    return 1;
  }
  const uint64_t base = follower.base_epoch();
  std::fprintf(stderr, "following %s: base at epoch %llu\n",
               args.follow.c_str(), static_cast<unsigned long long>(base));

  if (args.promote_at == 0) {
    size_t replayed = 0;
    status = follower.CatchUp(&replayed);
    if (!status.ok()) {
      std::fprintf(stderr, "catch-up failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    follower.Flush();
    std::fprintf(stderr, "caught up: %zu deltas replayed, at epoch %llu\n",
                 replayed,
                 static_cast<unsigned long long>(follower.epoch()));
    if (!serve_front_end()) return 1;
    ExportObservability(args, follower.service(), tracer.get());
    PrintFinalState(follower.service());
    return 0;
  }

  // Failover: the primary seals epoch base + (K - training) when it
  // finishes serving snapshot K (one seal per serving snapshot), so
  // that is the hand-over point.
  const uint64_t target = base + (args.promote_at - training);
  size_t replayed = 0;
  status = follower.CatchUpTo(target, &replayed);
  if (!status.ok()) {
    std::fprintf(stderr, "catch-up to epoch %llu failed: %s\n",
                 static_cast<unsigned long long>(target),
                 status.ToString().c_str());
    return 1;
  }
  follower.Flush();
  std::unique_ptr<ShardedDynamicCService> service = follower.Promote();
  std::fprintf(stderr,
               "promoted at epoch %llu after %zu deltas (zero retraining); "
               "serving the remaining stream\n",
               static_cast<unsigned long long>(target), replayed);

  // Chained replication (--replicate-resume): the promoted node takes
  // over the old primary's delta log in place. Artifacts past the
  // promotion point are the dead primary's unacknowledged suffix —
  // truncate them (standard failover log truncation), then Resume()
  // continues the numbering at the sealed frontier, so a standby
  // tailing this directory replays straight across the cut with no
  // re-bootstrap.
  std::unique_ptr<ReplicationSession> resumed;
  if (args.replicate_resume) {
    DeltaLog log(args.follow);
    DeltaLog::State state;
    status = log.List(&state);
    if (!status.ok()) {
      std::fprintf(stderr, "replicate-resume: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::error_code ec;
    for (uint64_t delta : state.deltas) {
      if (delta <= target) continue;
      std::filesystem::remove(log.DeltaPathFor(delta), ec);
      if (ec) {
        std::fprintf(stderr, "replicate-resume: cannot truncate %s: %s\n",
                     log.DeltaPathFor(delta).c_str(), ec.message().c_str());
        return 1;
      }
    }
    for (uint64_t stale_base : state.bases) {
      if (stale_base <= target) continue;
      std::filesystem::remove_all(log.BaseDirFor(stale_base), ec);
      if (ec) {
        std::fprintf(stderr, "replicate-resume: cannot truncate %s: %s\n",
                     log.BaseDirFor(stale_base).c_str(),
                     ec.message().c_str());
        return 1;
      }
    }
    ReplicationSession::Options repl_options;
    repl_options.snapshot_every = args.replicate_snapshot_every;
    resumed = std::make_unique<ReplicationSession>(service.get(), args.follow,
                                                   repl_options);
    status = resumed->Resume();
    if (!status.ok()) {
      std::fprintf(stderr, "replicate-resume failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "resumed replication log at sealed epoch %llu; next delta "
                 "continues the numbering\n",
                 static_cast<unsigned long long>(target));
  }

  // The new primary serves the rest of the deterministic stream the old
  // one would have received, mirroring its cadence: a replicated
  // primary barriers and seals one epoch per serving snapshot (sync and
  // async alike), so the promoted service does the same.
  WorkloadStream stream =
      MakeStream(config.workload, config.scale, config.seed);
  for (size_t snapshot = args.promote_at; snapshot < stream.snapshots.size();
       ++snapshot) {
    std::vector<ObjectId> changed =
        service->ApplyOperations(stream.snapshots[snapshot]);
    service->DynamicRound(changed);
    if (resumed != nullptr) {
      resumed->SealEpoch();
    } else {
      service->CloseEpoch();
    }
  }
  service->Flush();
  if (resumed != nullptr && !resumed->status().ok()) {
    std::fprintf(stderr, "replication error: %s\n",
                 resumed->status().ToString().c_str());
    return 1;
  }
  ExportObservability(args, *service, tracer.get());
  PrintFinalState(*service);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }

  // Introspection client modes dial a running server and exit; they do
  // not touch the workload configuration at all.
  if (!args.scrape.empty() || !args.health.empty() ||
      !args.trace_dump_from.empty() || !args.rpc_shutdown.empty()) {
    return RunIntrospection(args);
  }

  ExperimentConfig config;
  if (!ToWorkload(args.workload, &config.workload) ||
      !ToTask(args.task, &config.task)) {
    Usage();
    return 2;
  }
  config.scale = args.scale;
  config.seed = args.seed;
  config.kmeans_k = args.kmeans_k;
  config.sim_core.use_feature_index = args.sim_core == "indexed";
  config.sim_core.history =
      args.sim_history == "off"
          ? SimilarityGraph::HistoryMode::kOff
          : args.sim_history == "prune" ? SimilarityGraph::HistoryMode::kPrune
                                        : SimilarityGraph::HistoryMode::kOrder;
  if (config.task == TaskKind::kDbscan) {
    config.dbscan.min_pts = 4;
    config.dbscan.eps_similarity = 0.5;
  }

  std::fprintf(stderr, "workload=%s task=%s method=%s\n",
               WorkloadName(config.workload), TaskName(config.task),
               args.method.c_str());

  if (args.shards > 1 || args.async || !args.load_snapshot.empty() ||
      !args.save_snapshot.empty() || !args.replicate_to.empty() ||
      !args.follow.empty() || !args.listen.empty()) {
    if ((config.task != TaskKind::kCorrelation &&
         config.task != TaskKind::kDbIndex &&
         config.task != TaskKind::kDbscan) ||
        args.method != "dynamicc") {
      std::fprintf(stderr,
                   "--shards/--async/--*-snapshot/--replicate-to/--follow/"
                   "--listen require --task correlation|db-index|dbscan "
                   "--method dynamicc\n");
      return 2;
    }
    if (!args.follow.empty() && !args.replicate_to.empty()) {
      std::fprintf(stderr,
                   "--follow and --replicate-to are mutually exclusive\n");
      return 2;
    }
    if (args.replicate_over == "tcp" &&
        (args.follow.empty() || args.connect.empty())) {
      std::fprintf(stderr,
                   "--replicate-over tcp requires --follow DIR (the local "
                   "mirror) and --connect HOST:PORT\n");
      return 2;
    }
    if (!args.listen.empty() && !args.follow.empty() &&
        args.promote_at != 0) {
      std::fprintf(stderr,
                   "--listen on a follower serves the caught-up replica; "
                   "it cannot be combined with --promote-at\n");
      return 2;
    }
    if (args.replicate_resume &&
        (args.follow.empty() || args.promote_at == 0)) {
      std::fprintf(stderr,
                   "--replicate-resume requires --follow DIR --promote-at "
                   "K (chained replication continues a promoted log)\n");
      return 2;
    }
    if (!args.follow.empty()) return RunFollower(args, config);
    return RunSharded(args, config);
  }

  ExperimentHarness harness(config);
  std::vector<Series> results;
  // The batch reference is needed whenever quality is reported.
  Series batch = harness.RunBatch();
  if (args.method == "batch" || args.method == "all") {
    results.push_back(batch);
  }
  if (args.method == "naive" || args.method == "all") {
    results.push_back(harness.RunNaive());
  }
  if (args.method == "greedy" || args.method == "greedyset" ||
      args.method == "all") {
    Series greedy = harness.RunGreedy();
    if (args.method != "greedyset") results.push_back(greedy);
  }
  if (args.method == "dynamicc" || args.method == "all") {
    results.push_back(harness.RunDynamicC(/*greedy_set=*/false));
  }
  if (args.method == "greedyset" || args.method == "all") {
    // RunGreedy already cached the per-snapshot states above.
    results.push_back(harness.RunDynamicC(/*greedy_set=*/true));
  }
  if (results.empty()) {
    Usage();
    return 2;
  }
  PrintSeries(results, args.csv);
  return 0;
}
