// Record linkage (entity resolution) with DynamicC — the paper's flagship
// scenario: person records with duplicates stream into a database; the
// DB-index clustering groups records of the same real-world person, and
// DynamicC keeps the clustering fresh at a fraction of the batch cost.
//
// Build & run:  ./build/examples/record_linkage

#include <cstdio>
#include <iostream>
#include <string>

#include "harness/experiment.h"
#include "util/csv.h"

using namespace dynamicc;

int main() {
  ExperimentConfig config;
  config.workload = WorkloadKind::kSynthetic;  // Febrl-style person records
  config.task = TaskKind::kDbIndex;
  config.scale = 250;
  config.training_rounds = 2;

  std::printf("record linkage on a Febrl-style stream "
              "(%s similarity, DB-index objective)\n\n",
              "levenshtein+jaccard");

  ExperimentHarness harness(config);
  Series batch = harness.RunBatch();
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dynamicc = harness.RunDynamicC(/*greedy_set=*/false);

  TableWriter table({"snapshot", "objects", "batch_ms", "naive_ms",
                     "greedy_ms", "dynamicc_ms", "naive_F1", "greedy_F1",
                     "dynamicc_F1"});
  for (size_t i = 0; i < batch.points.size(); ++i) {
    table.AddRow({std::to_string(batch.points[i].snapshot),
                  std::to_string(batch.points[i].num_objects),
                  TableWriter::Num(batch.points[i].latency_ms, 1),
                  TableWriter::Num(naive.points[i].latency_ms, 1),
                  TableWriter::Num(greedy.points[i].latency_ms, 1),
                  TableWriter::Num(dynamicc.points[i].latency_ms, 1),
                  TableWriter::Num(naive.points[i].quality.f1),
                  TableWriter::Num(greedy.points[i].quality.f1),
                  TableWriter::Num(dynamicc.points[i].quality.f1)});
  }
  table.Print(std::cout);

  std::printf("\ntotals: batch %.0f ms | naive %.0f ms | greedy %.0f ms | "
              "dynamicc %.0f ms (first %d snapshots are training rounds)\n",
              batch.total_latency_ms, naive.total_latency_ms,
              greedy.total_latency_ms, dynamicc.total_latency_ms,
              config.training_rounds);
  return 0;
}
