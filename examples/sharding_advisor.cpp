// Database sharding advisor — the paper cites workload-driven database
// partitioning (Schism [17]) as a clustering application. Rows that are
// frequently co-accessed by the same transactions should live on the same
// shard; we model rows as records whose tokens are the transaction ids
// that touch them, so Jaccard similarity == co-access affinity, and a
// correlation clustering of the rows is a shard assignment. As the
// workload shifts (new rows, retired rows, access-pattern changes),
// DynamicC keeps the shard advice current.
//
// Build & run:  ./build/examples/sharding_advisor

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "batch/agglomerative.h"
#include "core/session.h"
#include "data/blocking.h"
#include "data/similarity_measures.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "util/rng.h"

using namespace dynamicc;

namespace {

/// A row touched by a few transaction families. Rows of the same "tenant"
/// share transaction tokens and should co-locate.
Record MakeRow(uint32_t tenant, Rng* rng) {
  Record row;
  row.entity = tenant + 1;
  // Each tenant owns a family of transaction ids; a row participates in a
  // random subset plus the occasional cross-tenant transaction.
  for (int t = 0; t < 4; ++t) {
    row.tokens.push_back("txn" + std::to_string(tenant) + "_" +
                         std::to_string(rng->Index(6)));
  }
  if (rng->Chance(0.1)) {
    row.tokens.push_back("global_" + std::to_string(rng->Index(3)));
  }
  return row;
}

OperationBatch NewRows(Rng* rng, int count, int tenants) {
  OperationBatch ops;
  for (int i = 0; i < count; ++i) {
    DataOperation op;
    op.kind = DataOperation::Kind::kAdd;
    op.record = MakeRow(static_cast<uint32_t>(rng->Index(tenants)), rng);
    ops.push_back(op);
  }
  return ops;
}

void PrintShardAdvice(const ClusteringEngine& engine, size_t max_shards) {
  std::vector<size_t> sizes;
  for (ClusterId cluster : engine.clustering().ClusterIds()) {
    sizes.push_back(engine.clustering().ClusterSize(cluster));
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::printf("  shard advice: %zu shards, sizes:", sizes.size());
  for (size_t i = 0; i < std::min(max_shards, sizes.size()); ++i) {
    std::printf(" %zu", sizes[i]);
  }
  if (sizes.size() > max_shards) std::printf(" ...");
  std::printf("\n");
}

}  // namespace

int main() {
  constexpr int kTenants = 8;

  Dataset dataset;
  JaccardSimilarity measure;
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<TokenBlocker>(/*prefix_len=*/0),
                        0.15);

  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  GreedyAgglomerative batch(&objective);

  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          DynamicCSession::Options{});

  Rng rng(17);

  std::printf("== observing workload, building co-access shards ==\n");
  for (int round = 0; round < 2; ++round) {
    auto changed = session.ApplyOperations(NewRows(&rng, 60, kTenants));
    session.ObserveBatchRound(changed);
    std::printf("round %d: %zu rows\n", round, dataset.alive_count());
    PrintShardAdvice(session.engine(), 10);
  }

  std::printf("\n== workload shifts; DynamicC re-shards incrementally ==\n");
  for (int round = 0; round < 5; ++round) {
    // New rows arrive and some existing rows change their access pattern.
    OperationBatch ops = NewRows(&rng, 25, kTenants);
    auto alive = dataset.AliveIds();
    for (int u = 0; u < 5 && !alive.empty(); ++u) {
      DataOperation op;
      op.kind = DataOperation::Kind::kUpdate;
      op.target = alive[rng.Index(alive.size())];
      op.record = MakeRow(static_cast<uint32_t>(rng.Index(kTenants)), &rng);
      // Keep the original identity: the row merely changed access pattern.
      op.record.entity = dataset.Get(op.target).entity;
      ops.push_back(op);
    }
    session.ApplyOperations(ops);
    auto report = session.DynamicRound();
    std::printf("round %d: %zu rows, %4.1f ms, %zu merges / %zu splits\n",
                round, dataset.alive_count(), report.recluster_ms,
                report.detail.merges_applied, report.detail.splits_applied);
    PrintShardAdvice(session.engine(), 10);
  }
  return 0;
}
