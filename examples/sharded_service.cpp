// Serving DynamicC at scale: a 4-shard ShardedDynamicCService ingesting
// a partitioned record stream, training per shard, then serving dynamic
// rounds concurrently. Demonstrates:
//   - hash-of-blocking-key routing (records of one entity co-locate),
//   - the service-level report (wall vs cost vs straggler),
//   - change-driven scheduling (clean shards skip rounds),
//   - clustering quality read back in global ids,
//   - async pipelined ingestion (bounded queues + background round
//     workers, queue coalescing, the Flush() barrier and snapshots),
//   - dynamic placement (live group migration + the load-aware
//     rebalancer spreading a colliding hot set),
//   - epoch-tagged flushes (wait for a specific ingest prefix instead
//     of full quiescence),
//   - durable snapshots + warm restart (SaveSnapshot / LoadSnapshot:
//     a fresh process resumes serving without retraining).
//
// Build: cmake --build build --target sharded_service && ./build/sharded_service

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "batch/agglomerative.h"
#include "data/blocking.h"
#include "data/operations.h"
#include "data/similarity_measures.h"
#include "eval/report.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "obs/metrics.h"
#include "service/service_report.h"
#include "service/sharded_service.h"
#include "service/snapshot.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

using namespace dynamicc;

namespace {

// One environment per shard: each shard owns its measure, blocker,
// objective, batch algorithm and models, so rounds parallelize without
// any shared mutable state.
ShardEnvironmentFactory CoraStyleFactory() {
  return [] {
    ShardEnvironment env;
    env.measure = std::make_unique<JaccardSimilarity>();
    env.blocker = std::make_unique<TokenBlocker>();
    env.min_similarity = 0.1;
    auto objective = std::make_unique<CorrelationObjective>();
    env.validator = std::make_unique<ObjectiveValidator>(objective.get());
    env.batch = std::make_unique<GreedyAgglomerative>(objective.get());
    env.objective = std::move(objective);
    env.merge_model = std::make_unique<LogisticRegression>();
    env.split_model = std::make_unique<LogisticRegression>();
    return env;
  };
}

// A noisy citation-like stream: every entity has three stable tokens
// (the smallest is its blocking key, so all its records route to one
// shard) plus one entity-local noise token that varies per record.
OperationBatch MakeBatch(int entities, int per_entity, Rng* rng) {
  OperationBatch ops;
  for (int i = 0; i < per_entity; ++i) {
    for (int e = 0; e < entities; ++e) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      op.record.entity = static_cast<uint32_t>(e);
      std::string id = std::to_string(e);
      op.record.tokens = {"entity" + id, "key" + id, "ref" + id,
                          "n" + id + "_" + std::to_string(rng->Index(4))};
      ops.push_back(op);
    }
  }
  return ops;
}

// Global ids were assigned in ingest order, so entity = id % entities.
std::vector<std::vector<ObjectId>> TruthByEntity(int entities, size_t total) {
  std::vector<std::vector<ObjectId>> truth(entities);
  for (ObjectId id = 0; id < static_cast<ObjectId>(total); ++id) {
    truth[id % entities].push_back(id);
  }
  return truth;
}

}  // namespace

int main() {
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  ShardedDynamicCService service(options, /*router=*/nullptr,
                                 CoraStyleFactory());
  std::printf("service: %u shards on %zu threads (router: %s)\n",
              service.num_shards(), service.num_threads(),
              service.router().Name());

  Rng rng(7);
  const int kEntities = 40;

  // Initial load + two observed batch rounds build per-shard history.
  for (int round = 0; round < 2; ++round) {
    auto changed = service.ApplyOperations(MakeBatch(kEntities, 3, &rng));
    ServiceReport train = service.ObserveBatchRound(changed);
    std::printf("train round %d: %zu evolution steps, %.1f ms wall "
                "(%.1f ms straggler)\n",
                round, train.evolution_steps, train.wall_ms,
                train.max_shard_ms);
  }
  std::printf("trained: %s\n", service.is_trained() ? "yes" : "no");

  // Dynamic serving: every snapshot lands on all shards here, so all
  // four serve; the report splits wall time from summed shard cost.
  for (int snapshot = 0; snapshot < 3; ++snapshot) {
    auto changed = service.ApplyOperations(MakeBatch(kEntities, 1, &rng));
    ServiceReport report = service.DynamicRound(changed);
    size_t served = 0;
    for (const auto& stats : report.dynamic_shards) {
      if (stats.participated) ++served;
    }
    std::printf(
        "snapshot %d: %zu/%u shards served, %zu merges, wall %.1f ms, "
        "cost %.1f ms\n",
        snapshot, served, service.num_shards(),
        report.combined.merges_applied, report.wall_ms,
        report.total_shard_ms);
  }

  // A quiet service does no work at all (change-driven scheduling).
  ServiceReport idle = service.DynamicRound();
  std::printf("idle round: %zu probability evaluations\n",
              idle.combined.probability_evaluations);

  // Quality in global ids against the generator's entities.
  auto clusters = service.GlobalClusters();
  auto truth = TruthByEntity(kEntities, service.total_objects());
  QualityReport quality = EvaluateQuality(clusters, truth);
  std::printf("clusters: %zu (entities: %d)  pair-F1 vs truth: %.3f\n",
              clusters.size(), kEntities, quality.f1);

  // ---- Async pipelined ingestion ------------------------------------
  // The same service, but ApplyOperations only *enqueues*: each shard
  // has a bounded queue (operations coalesce while they wait) and a
  // background worker that applies batches and runs rounds while the
  // producer keeps streaming. Flush() is the barrier that makes the
  // state readable; Snapshot() gives a sequence-numbered consistent cut.
  ShardedDynamicCService::Options async_options;
  async_options.num_shards = 4;
  async_options.async.enabled = true;
  async_options.async.queue_depth = 256;
  async_options.async.backpressure = BackpressurePolicy::kBlock;
  // Observability: hand the service a metrics registry and every layer
  // (ingest, drain workers, barriers, epoch seals, snapshots) records
  // into it; leave the pointer null and the instrumentation compiles in
  // but stays idle. The demo prints a few of the instruments below.
  async_options.obs.metrics = &obs::MetricsRegistry::Default();
  ShardedDynamicCService pipeline(async_options, /*router=*/nullptr,
                                  CoraStyleFactory());
  std::printf("\nasync pipeline: %u shards, queue depth %zu, %s policy\n",
              pipeline.num_shards(), async_options.async.queue_depth,
              async_options.async.backpressure == BackpressurePolicy::kBlock
                  ? "block"
                  : "reject");

  Rng async_rng(7);
  for (int round = 0; round < 2; ++round) {
    auto changed =
        pipeline.ApplyOperations(MakeBatch(kEntities, 3, &async_rng));
    pipeline.ObserveBatchRound(changed);  // barrier: drains, then trains
  }
  pipeline.Flush();  // enter the serving phase: workers round from here

  // Stream serving bursts without waiting for rounds; churn some of the
  // just-admitted ids so the queues get folds/annihilations to chew on.
  Timer enqueue_timer;
  for (int burst = 0; burst < 6; ++burst) {
    auto ids = pipeline.ApplyOperations(MakeBatch(kEntities, 1, &async_rng));
    OperationBatch churn;
    for (size_t i = 0; i < ids.size(); i += 3) {
      DataOperation remove;
      remove.kind = DataOperation::Kind::kRemove;
      remove.target = ids[i];
      churn.push_back(remove);
    }
    pipeline.ApplyOperations(churn);
  }
  double enqueue_ms = enqueue_timer.ElapsedMillis();
  ServiceReport flush = pipeline.Flush();
  std::printf("enqueued 6 bursts in %.1f ms; flush wall %.1f ms\n",
              enqueue_ms, flush.wall_ms);

  ServiceSnapshot snap = pipeline.Snapshot();
  const IngestStats& ingest = snap.report.ingest;
  std::printf(
      "snapshot @ sequence %llu: %zu objects in %zu clusters\n"
      "pipeline counters: %llu accepted, %llu coalesced away, %llu worker "
      "rounds, %llu producer waits, queue high-water %zu\n",
      static_cast<unsigned long long>(snap.sequence), snap.total_objects,
      snap.total_clusters,
      static_cast<unsigned long long>(ingest.accepted_ops),
      static_cast<unsigned long long>(ingest.coalesced_ops),
      static_cast<unsigned long long>(ingest.worker_rounds),
      static_cast<unsigned long long>(ingest.producer_waits),
      ingest.queue_high_water);

  // ---- Dynamic placement --------------------------------------------
  // Workloads drift: traffic concentrates on a few hot blocking groups,
  // and with static hash placement those can collide on one shard. The
  // placement layer migrates groups live — records, cluster memberships
  // and similarity aggregates move, nothing is re-clustered — and the
  // Rebalancer picks the moves from measured load.
  ShardedDynamicCService::Options skew_options;
  skew_options.num_shards = 4;
  skew_options.rebalance.policy.hysteresis = 1.1;
  skew_options.rebalance.policy.max_moves = 8;
  ShardedDynamicCService skewed(skew_options, /*router=*/nullptr,
                                CoraStyleFactory());

  // An adversarial hot set: entities whose blocking keys all hash to
  // shard 0 at 4 shards.
  std::vector<int> hot;
  for (int e = 0; static_cast<int>(hot.size()) < 6; ++e) {
    Record probe;
    probe.tokens = {"entity" + std::to_string(e)};
    if (HashShardRouter::HashKey(StableShardKey(probe)) % 4 == 0) {
      hot.push_back(e);
    }
  }
  auto hot_batch = [&hot](int per_entity, Rng* rng) {
    OperationBatch ops;
    for (int i = 0; i < per_entity; ++i) {
      for (int e : hot) {
        DataOperation op;
        op.kind = DataOperation::Kind::kAdd;
        op.record.entity = static_cast<uint32_t>(e);
        std::string id = std::to_string(e);
        op.record.tokens = {"entity" + id, "key" + id, "ref" + id,
                            "n" + id + "_" + std::to_string(rng->Index(4))};
        ops.push_back(op);
      }
    }
    return ops;
  };
  Rng skew_rng(11);
  for (int round = 0; round < 2; ++round) {
    auto changed = skewed.ApplyOperations(hot_batch(3, &skew_rng));
    skewed.ObserveBatchRound(changed);
  }
  ServiceSnapshot before = skewed.Snapshot();
  std::printf("\nskewed load: record imbalance %.2fx max/mean "
              "(every hot entity hashed to one shard)\n",
              before.report.record_imbalance);

  auto rebalance = skewed.RebalanceOnce();
  std::printf("rebalance: %zu migrations, imbalance %.2fx -> %.2fx, "
              "placement version %llu\n",
              rebalance.moves.size(), rebalance.record_imbalance_before,
              rebalance.record_imbalance_after,
              static_cast<unsigned long long>(rebalance.placement_version));
  for (const auto& move : rebalance.moves) {
    std::printf("  group %016llx: shard %u -> %u (%zu records, %zu "
                "clusters, %.2f ms)\n",
                static_cast<unsigned long long>(move.group), move.from,
                move.to, move.objects, move.clusters, move.ms);
  }
  // The clustering is untouched by the surgery — only its location
  // changed; the next rounds keep serving from the new placement.
  auto changed = skewed.ApplyOperations(hot_batch(1, &skew_rng));
  skewed.DynamicRound(changed);
  std::printf("after rebalance: %zu clusters for %d hot entities\n",
              skewed.GlobalClusters().size(), static_cast<int>(hot.size()));

  // ---- Epoch-tagged flushes -----------------------------------------
  // Flush() is a *global* barrier: it waits out everything admitted,
  // including traffic that arrived after the call began. Epoch flushes
  // wait for a specific ingest prefix instead: CloseEpoch() seals
  // everything admitted so far as epoch E, later admissions belong to
  // E+1, and Flush(E) returns once E is applied on every shard — the
  // later burst may still sit in the queues.
  auto epoch_ids =
      pipeline.ApplyOperations(MakeBatch(kEntities, 1, &async_rng));
  uint64_t sealed = pipeline.CloseEpoch();
  pipeline.ApplyOperations(MakeBatch(kEntities, 2, &async_rng));  // E+1
  ServiceReport epoch_flush = pipeline.Flush(sealed);
  std::printf(
      "\nepoch flush: epoch %llu applied in %.1f ms (%llu ops still "
      "queued from epoch %llu)\n",
      static_cast<unsigned long long>(sealed), epoch_flush.wall_ms,
      static_cast<unsigned long long>(epoch_flush.ingest.pending_ops),
      static_cast<unsigned long long>(pipeline.open_epoch()));
  (void)epoch_ids;
  pipeline.Flush();  // full barrier before the durability demo below

  // ---- Metrics registry ---------------------------------------------
  // One pull gives every counter/gauge/histogram the run recorded so
  // far; ingest_stats() refreshes the gauges that mirror IngestStats
  // (they are the same numbers by construction).
  pipeline.ingest_stats();
  obs::MetricsSnapshot obs_snap = obs::MetricsRegistry::Default().Snapshot();
  for (const auto& view : obs_snap.histograms) {
    if (view.count == 0) continue;
    std::printf("metric %-18s count=%llu p50<=%.3gms p95<=%.3gms\n",
                view.name.c_str(),
                static_cast<unsigned long long>(view.count), view.p50,
                view.p95);
  }

  // ---- Durable snapshots & warm restart -----------------------------
  // Everything above — per-shard engines, trained models, id maps, the
  // learned placement — dies with the process. SaveSnapshot serializes
  // it all at an epoch boundary; a fresh service (same topology and
  // environment factory) restored from the directory serves on without
  // retraining, and its clustering is identical to the original's.
  const std::string snapshot_dir = "/tmp/dynamicc_sharded_service_snapshot";
  Status saved = pipeline.SaveSnapshot(snapshot_dir);
  std::printf("\nsnapshot: %s -> %s\n", snapshot_dir.c_str(),
              saved.ToString().c_str());

  ShardedDynamicCService restored(async_options, /*router=*/nullptr,
                                  CoraStyleFactory());
  Status loaded = restored.LoadSnapshot(snapshot_dir);
  SnapshotInfo info;
  ReadSnapshotInfo(snapshot_dir, &info);
  std::printf("warm restart: %s (epoch %llu, placement version %llu)\n",
              loaded.ToString().c_str(),
              static_cast<unsigned long long>(info.epoch),
              static_cast<unsigned long long>(info.placement_version));
  bool identical = restored.GlobalClusters() == pipeline.GlobalClusters();
  std::printf("restored clustering identical: %s\n",
              identical ? "yes" : "NO");

  // Both services now see the same subsequent stream; they stay in
  // lockstep — same ids, same clusters, no retraining on the restart.
  Rng tail_rng(23);
  OperationBatch tail = MakeBatch(kEntities, 1, &tail_rng);
  pipeline.ApplyOperations(tail);
  restored.ApplyOperations(tail);
  pipeline.Flush();
  restored.Flush();
  std::printf("after shared tail: clusters still identical: %s\n",
              restored.GlobalClusters() == pipeline.GlobalClusters()
                  ? "yes"
                  : "NO");
  return 0;
}
