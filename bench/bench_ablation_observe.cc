// Ablation A6 (extension): periodic batch re-observation ("running the
// original batching algorithm occasionally to establish a baseline for
// accuracy", §1). Pure dynamic mode drifts slowly away from the batch
// optimum; a sparse batch cadence resets the drift at a bounded latency
// cost.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

int main() {
  bench::Banner("Ablation A6",
                "periodic batch re-observation cadence (Cora, DB-index)");

  TableWriter table({"observe_every", "F1(mean)", "F1(last)",
                     "latency_ms(total)"});
  for (int cadence : {0, 4, 2}) {
    ExperimentConfig config =
        bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
    config.observe_every = cadence;
    ExperimentHarness harness(config);
    harness.RunBatch();
    Series dynamicc = harness.RunDynamicC(false);

    double f1_total = 0.0, latency = 0.0;
    int count = 0;
    for (const auto& point : dynamicc.points) {
      if (static_cast<int>(point.snapshot) <= config.training_rounds) {
        continue;
      }
      f1_total += point.quality.f1;
      latency += point.latency_ms;
      ++count;
    }
    table.AddRow({cadence == 0 ? "never (paper setup)"
                               : ("every " + std::to_string(cadence)),
                  TableWriter::Num(count ? f1_total / count : 0.0),
                  TableWriter::Num(dynamicc.points.back().quality.f1),
                  TableWriter::Num(latency, 1)});
  }
  table.Print(std::cout);
  bench::Note("shape to check: denser batch cadence buys back F1 "
              "(approaching 1.0 at every-2) for proportionally higher "
              "latency — the knob between the paper's pure dynamic mode "
              "and pure batch.");
  return 0;
}
