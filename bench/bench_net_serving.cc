// Networked serving (src/net/) vs in-process: throughput, open-loop
// latency, and replication-transport compression on localhost.
//
// The same partition-disjoint token workload bench_sharded_throughput
// uses is served twice through identically-configured async services:
//
//  - in-process: one producer calls Ingest() directly, batch by batch,
//    ending with the Flush() barrier (enqueue-to-applied throughput).
//  - net: a ServerFrontEnd on an ephemeral localhost port, N client
//    threads sending the same batches as Ingest RPCs (one connection
//    each, closed loop), same final Flush(). The gap between the two
//    rates is the whole wire stack — framing, epoll, encode/decode.
//
// Latency is then measured open loop: each client schedules arrivals
// by a seeded Poisson process at a fixed aggregate rate (a fraction of
// the measured net capacity) and records completion-minus-*scheduled*
// time, so queueing delay is charged to the server, not silently
// absorbed by a slow closed loop (no coordinated omission). Every 4th
// arrival is a Stats query against the epoch-pinned read path; the
// rest are ingest batches.
//
// Finally the replication transport: the primary seals a handful of
// epochs into its delta log, a DeltaStreamClient mirrors the directory
// over the same TCP surface (negotiated lzb block compression), a
// Follower replays the mirror, and the JSON reports raw-vs-wire bytes
// (the compression gate), whether the mirrored bytes and the replayed
// clustering are identical, and the server's decode-error count.
//
// Output: one JSON document on stdout; the CI gates assert
//   net_vs_in_process >= 0.6, open-loop ingest p99 bounded,
//   compression ratio > 1, mirror identical, zero decode errors.
//
// Flags: --groups N --active N --per-round N --rounds N --clients N
//        --open-sends N --seal-rounds N --shards N --queue-depth N

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "batch/agglomerative.h"
#include "bench_util.h"
#include "data/operations.h"
#include "data/similarity_measures.h"
#include "data/blocking.h"
#include "ml/logistic_regression.h"
#include "net/client.h"
#include "net/delta_stream.h"
#include "net/front_end.h"
#include "objective/correlation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/sharded_service.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/wire.h"

using namespace dynamicc;

namespace {

struct BenchArgs {
  int groups = 512;     // independent blocking groups
  int active = 2;       // hot groups per serving batch
  int per_round = 8;    // adds per hot group per batch
  int rounds = 48;      // batches in the closed-loop timed region
  int clients = 4;      // concurrent TCP clients
  int open_sends = 60;  // open-loop arrivals per client
  int seal_rounds = 6;  // sealed epochs for the replication transport
  uint32_t shards = 2;
  size_t queue_depth = 4096;
};

ShardEnvironmentFactory MakeFactory() {
  return [] {
    ShardEnvironment env;
    env.measure = std::make_unique<JaccardSimilarity>();
    env.blocker = std::make_unique<TokenBlocker>();
    env.min_similarity = 0.1;
    auto objective = std::make_unique<CorrelationObjective>();
    env.validator = std::make_unique<ObjectiveValidator>(objective.get());
    env.batch = std::make_unique<GreedyAgglomerative>(objective.get());
    env.objective = std::move(objective);
    env.merge_model = std::make_unique<LogisticRegression>();
    env.split_model = std::make_unique<LogisticRegression>();
    return env;
  };
}

DataOperation GroupAdd(int group) {
  DataOperation op;
  op.kind = DataOperation::Kind::kAdd;
  op.record.entity = static_cast<uint32_t>(group);
  op.record.tokens = {"grp" + std::to_string(group),
                      "tag" + std::to_string(group)};
  return op;
}

OperationBatch GroupAdds(int groups, int per_group) {
  OperationBatch ops;
  for (int i = 0; i < per_group; ++i) {
    for (int g = 0; g < groups; ++g) ops.push_back(GroupAdd(g));
  }
  return ops;
}

OperationBatch HotRound(const BenchArgs& args, int round) {
  OperationBatch ops;
  int start = (round * args.active) % args.groups;
  for (int i = 0; i < args.per_round; ++i) {
    for (int a = 0; a < args.active; ++a) {
      ops.push_back(GroupAdd((start + a) % args.groups));
    }
  }
  return ops;
}

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t index = static_cast<size_t>(p * (values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

ShardedDynamicCService::Options ServiceOptions(const BenchArgs& args,
                                               obs::MetricsRegistry* metrics,
                                               bool serve_reads) {
  ShardedDynamicCService::Options options;
  options.num_shards = args.shards;
  options.async.enabled = true;
  options.async.queue_depth = args.queue_depth;
  options.obs.metrics = metrics;
  options.read.serve = serve_reads;
  return options;
}

void Train(ShardedDynamicCService* service, const BenchArgs& args) {
  OperationBatch initial = GroupAdds(args.groups, 2);
  auto changed = service->ApplyOperations(initial);
  service->ObserveBatchRound(changed);
  changed = service->ApplyOperations(GroupAdds(args.groups, 1));
  service->ObserveBatchRound(changed);
  service->Flush();
}

/// Two directory trees hold byte-identical regular files.
bool TreesIdentical(const std::string& a, const std::string& b) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_a, rel_b;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(a, ec)) {
    if (entry.is_regular_file()) {
      rel_a.push_back(fs::relative(entry.path(), a, ec).string());
    }
  }
  for (const auto& entry : fs::recursive_directory_iterator(b, ec)) {
    if (entry.is_regular_file()) {
      rel_b.push_back(fs::relative(entry.path(), b, ec).string());
    }
  }
  std::sort(rel_a.begin(), rel_a.end());
  std::sort(rel_b.begin(), rel_b.end());
  if (rel_a != rel_b) return false;
  for (const std::string& rel : rel_a) {
    std::string bytes_a, bytes_b;
    if (!ReadFileBytes(a + "/" + rel, &bytes_a).ok()) return false;
    if (!ReadFileBytes(b + "/" + rel, &bytes_b).ok()) return false;
    if (bytes_a != bytes_b) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const std::string flag = argv[i];
    const char* v = nullptr;
    if (flag == "--groups" && (v = next())) args.groups = std::atoi(v);
    else if (flag == "--active" && (v = next())) args.active = std::atoi(v);
    else if (flag == "--per-round" && (v = next()))
      args.per_round = std::atoi(v);
    else if (flag == "--rounds" && (v = next())) args.rounds = std::atoi(v);
    else if (flag == "--clients" && (v = next())) args.clients = std::atoi(v);
    else if (flag == "--open-sends" && (v = next()))
      args.open_sends = std::atoi(v);
    else if (flag == "--seal-rounds" && (v = next()))
      args.seal_rounds = std::atoi(v);
    else if (flag == "--shards" && (v = next()))
      args.shards = static_cast<uint32_t>(std::atoi(v));
    else if (flag == "--queue-depth" && (v = next()))
      args.queue_depth = static_cast<size_t>(std::atol(v));
  }
  args.clients = std::max(1, args.clients);

  std::vector<OperationBatch> serving;
  size_t serving_ops = 0;
  for (int round = 0; round < args.rounds; ++round) {
    serving.push_back(HotRound(args, round));
    serving_ops += serving.back().size();
  }

  // ---- In-process baseline: direct Ingest, one producer. ----
  double in_process_ms = 0.0;
  {
    ShardedDynamicCService service(ServiceOptions(args, nullptr, false),
                                   nullptr, MakeFactory());
    Train(&service, args);
    Timer timer;
    for (const OperationBatch& batch : serving) service.Ingest(batch);
    service.Flush();
    in_process_ms = timer.ElapsedMillis();
  }
  const double in_process_ops_per_sec =
      in_process_ms > 0.0 ? 1000.0 * serving_ops / in_process_ms : 0.0;

  // ---- Networked: same batches as Ingest RPCs over localhost. ----
  obs::MetricsRegistry registry;
  ShardedDynamicCService service(ServiceOptions(args, &registry, true),
                                 nullptr, MakeFactory());
  Train(&service, args);

  const std::string repl_dir = "/tmp/dynamicc_bench_net_repl";
  const std::string mirror_dir = "/tmp/dynamicc_bench_net_mirror";
  std::filesystem::remove_all(repl_dir);
  std::filesystem::remove_all(mirror_dir);
  ReplicationSession repl(&service, repl_dir, {});
  if (!repl.Start().ok()) {
    std::fprintf(stderr, "replication start failed\n");
    return 1;
  }

  net::ServerFrontEnd::Options fe_options;
  fe_options.replication_dir = repl_dir;
  fe_options.metrics = &registry;
  net::ServerFrontEnd front_end(&service, nullptr, fe_options);
  if (!front_end.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  const uint16_t port = front_end.port();

  // Closed-loop throughput: batches round-robined over the clients,
  // each pipelining request/response on its own connection.
  std::atomic<size_t> rpc_errors{0};
  double net_ms = 0.0;
  {
    std::vector<std::thread> threads;
    Timer timer;
    for (int c = 0; c < args.clients; ++c) {
      threads.emplace_back([&, c] {
        net::NetClient::Options client_options;
        client_options.port = port;
        net::NetClient client(client_options);
        if (!client.Connect().ok()) {
          rpc_errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (size_t i = static_cast<size_t>(c); i < serving.size();
             i += static_cast<size_t>(args.clients)) {
          net::IngestResponse response;
          if (!client.Ingest(serving[i], &response).ok() ||
              !response.accepted) {
            rpc_errors.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    service.Flush();
    net_ms = timer.ElapsedMillis();
  }
  const double net_ops_per_sec =
      net_ms > 0.0 ? 1000.0 * serving_ops / net_ms : 0.0;

  // One sealed epoch so the read path has a published view for the
  // open-loop query mix (and the log its first delta).
  repl.SealEpoch();

  // Open-loop latency: Poisson arrivals at a fixed aggregate rate well
  // under the measured capacity, latency charged from the *scheduled*
  // arrival time. Every 4th arrival is a Stats query.
  const double target_rate =
      std::min(4000.0, std::max(200.0, 0.25 * net_ops_per_sec));
  const double sends_per_sec_per_client =
      target_rate / (args.per_round * args.active) / args.clients;
  std::vector<std::vector<double>> ingest_lat(args.clients);
  std::vector<std::vector<double>> query_lat(args.clients);
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < args.clients; ++c) {
      threads.emplace_back([&, c] {
        net::NetClient::Options client_options;
        client_options.port = port;
        net::NetClient client(client_options);
        if (!client.Connect().ok()) {
          rpc_errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        std::mt19937_64 rng(0x9E3779B97F4A7C15ull + c);
        std::exponential_distribution<double> gap(sends_per_sec_per_client);
        auto scheduled = std::chrono::steady_clock::now();
        for (int s = 0; s < args.open_sends; ++s) {
          scheduled += std::chrono::microseconds(
              static_cast<int64_t>(gap(rng) * 1e6));
          std::this_thread::sleep_until(scheduled);
          Timer op_timer;
          bool ok;
          if (s % 4 == 3) {
            net::StatsResponse stats;
            ok = client.Stats(/*max_staleness=*/UINT64_MAX, &stats).ok();
          } else {
            net::IngestResponse response;
            ok = client.Ingest(HotRound(args, args.rounds + s), &response)
                     .ok();
          }
          if (!ok) {
            rpc_errors.fetch_add(1, std::memory_order_relaxed);
            return;
          }
          // completion - scheduled arrival = service + queueing delay
          // (the sleep_until above never truncates a late schedule, so
          // backlog shows up here instead of stretching the run).
          double ms =
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - scheduled)
                  .count();
          (s % 4 == 3 ? query_lat : ingest_lat)[c].push_back(ms);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  std::vector<double> ingest_all, query_all;
  for (auto& v : ingest_lat) {
    ingest_all.insert(ingest_all.end(), v.begin(), v.end());
  }
  for (auto& v : query_lat) {
    query_all.insert(query_all.end(), v.begin(), v.end());
  }

  // ---- Replication transport: seal a few epochs, mirror over TCP,
  // replay the mirror. ----
  for (int round = 0; round < args.seal_rounds; ++round) {
    service.Ingest(HotRound(args, 7 * round + 3));
    service.Flush();
    repl.SealEpoch();
  }
  front_end.SetStreamDone(true);

  net::DeltaStreamClient::Options stream_options;
  stream_options.port = port;
  stream_options.mirror_dir = mirror_dir;
  stream_options.metrics = &registry;
  net::DeltaStreamClient stream(stream_options);
  const bool mirrored = stream.TailUntilDone(nullptr).ok();
  const bool mirror_identical =
      mirrored && TreesIdentical(repl_dir, mirror_dir);

  bool replay_identical = false;
  if (mirrored) {
    ShardedDynamicCService::Options follower_options =
        ServiceOptions(args, nullptr, false);
    follower_options.async.enabled = false;
    Follower follower(mirror_dir, follower_options, MakeFactory());
    if (follower.Restore().ok() && follower.CatchUp().ok()) {
      follower.Flush();
      service.Flush();
      replay_identical = follower.service().GlobalClusters() ==
                         service.GlobalClusters();
    }
  }

  const uint64_t decode_errors = front_end.server()->decode_errors();
  front_end.Stop();
  repl.Stop();

  // ---- Tracing overhead: the same closed loop on fresh twin services,
  // once untraced and once with wire-propagated tracing on (server +
  // client spans, kTraced envelopes). Max of 3 repeats each, so
  // scheduler noise does not masquerade as tracing overhead; the CI
  // gate holds the ratio within 2%. ----
  auto closed_loop_ops_per_sec = [&](bool traced) {
    obs::MetricsRegistry book;
    obs::Tracer tracer(args.shards);
    ShardedDynamicCService::Options twin_options =
        ServiceOptions(args, &book, false);
    if (traced) twin_options.obs.tracer = &tracer;
    ShardedDynamicCService twin(twin_options, nullptr, MakeFactory());
    Train(&twin, args);
    net::ServerFrontEnd::Options twin_fe_options;
    twin_fe_options.metrics = &book;
    if (traced) twin_fe_options.tracer = &tracer;
    net::ServerFrontEnd twin_fe(&twin, nullptr, twin_fe_options);
    if (!twin_fe.Start().ok()) return 0.0;
    const uint16_t twin_port = twin_fe.port();
    std::vector<std::thread> threads;
    Timer timer;
    for (int c = 0; c < args.clients; ++c) {
      threads.emplace_back([&, c] {
        obs::Tracer client_tracer(1);
        net::NetClient::Options client_options;
        client_options.port = twin_port;
        if (traced) client_options.tracer = &client_tracer;
        net::NetClient client(client_options);
        if (!client.Connect().ok()) {
          rpc_errors.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        for (size_t i = static_cast<size_t>(c); i < serving.size();
             i += static_cast<size_t>(args.clients)) {
          net::IngestResponse response;
          if (!client.Ingest(serving[i], &response).ok() ||
              !response.accepted) {
            rpc_errors.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();
    twin.Flush();
    const double ms = timer.ElapsedMillis();
    twin_fe.Stop();
    return ms > 0.0 ? 1000.0 * serving_ops / ms : 0.0;
  };
  // Best paired ratio across interleaved repeats: outside load must hit
  // the traced leg of every pair the same way to fake an overhead.
  double untraced_best = 0.0, traced_best = 0.0, traced_vs_untraced = 0.0;
  for (int repeat = 0; repeat < 5; ++repeat) {
    const double untraced = closed_loop_ops_per_sec(false);
    const double traced = closed_loop_ops_per_sec(true);
    untraced_best = std::max(untraced_best, untraced);
    traced_best = std::max(traced_best, traced);
    if (untraced > 0.0) {
      traced_vs_untraced = std::max(traced_vs_untraced, traced / untraced);
    }
  }

  obs::MetricsSnapshot metrics = registry.Snapshot();
  uint64_t raw_bytes = 0, wire_bytes = 0;
  for (const auto& counter : metrics.counters) {
    if (counter.first == "net.delta_bytes_raw") raw_bytes = counter.second;
    if (counter.first == "net.delta_bytes_wire") wire_bytes = counter.second;
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("in_process")
      .BeginObject()
      .Key("ops").Value(serving_ops)
      .Key("ms").Value(in_process_ms)
      .Key("ops_per_sec").Value(in_process_ops_per_sec)
      .EndObject();
  json.Key("net")
      .BeginObject()
      .Key("ops").Value(serving_ops)
      .Key("ms").Value(net_ms)
      .Key("ops_per_sec").Value(net_ops_per_sec)
      .Key("clients").Value(args.clients)
      .Key("net_vs_in_process")
      .Value(in_process_ops_per_sec > 0.0
                 ? net_ops_per_sec / in_process_ops_per_sec
                 : 0.0)
      .Key("rpc_errors").Value(rpc_errors.load())
      .Key("decode_errors").Value(static_cast<size_t>(decode_errors))
      .EndObject();
  // Server-side view of the same traffic: the front end's per-type
  // net.rpc_ms histograms, so queueing inside the server is separable
  // from what the client-measured open-loop latencies include.
  json.Key("server_rpc").BeginObject();
  {
    const std::string prefix = "net.rpc_ms{type=";
    for (const auto& h : metrics.histograms) {
      if (h.count == 0 || h.name.rfind(prefix, 0) != 0) continue;
      std::string type = h.name.substr(prefix.size());
      if (!type.empty() && type.back() == '}') type.pop_back();
      json.Key(type)
          .BeginObject()
          .Key("count").Value(static_cast<size_t>(h.count))
          .Key("p50_ms").Value(h.p50)
          .Key("p95_ms").Value(h.p95)
          .Key("p99_ms").Value(h.p99)
          .EndObject();
    }
  }
  json.EndObject();
  json.Key("tracing")
      .BeginObject()
      .Key("untraced_ops_per_sec").Value(untraced_best)
      .Key("traced_ops_per_sec").Value(traced_best)
      .Key("traced_vs_untraced").Value(traced_vs_untraced)
      .Key("within_2pct").Value(traced_vs_untraced >= 0.98 ? 1 : 0)
      .EndObject();
  json.Key("open_loop")
      .BeginObject()
      .Key("target_ops_per_sec").Value(target_rate)
      .Key("ingest_sends").Value(ingest_all.size())
      .Key("ingest_p50_ms").Value(Percentile(&ingest_all, 0.50))
      .Key("ingest_p95_ms").Value(Percentile(&ingest_all, 0.95))
      .Key("ingest_p99_ms").Value(Percentile(&ingest_all, 0.99))
      .Key("query_sends").Value(query_all.size())
      .Key("query_p50_ms").Value(Percentile(&query_all, 0.50))
      .Key("query_p95_ms").Value(Percentile(&query_all, 0.95))
      .Key("query_p99_ms").Value(Percentile(&query_all, 0.99))
      .EndObject();
  json.Key("compression")
      .BeginObject()
      .Key("raw_bytes").Value(static_cast<size_t>(raw_bytes))
      .Key("wire_bytes").Value(static_cast<size_t>(wire_bytes))
      .Key("ratio")
      .Value(wire_bytes > 0
                 ? static_cast<double>(raw_bytes) /
                       static_cast<double>(wire_bytes)
                 : 0.0)
      .EndObject();
  json.Key("mirror")
      .BeginObject()
      .Key("mirrored").Value(mirrored)
      .Key("identical").Value(mirror_identical ? 1 : 0)
      .Key("replay_identical").Value(replay_identical ? 1 : 0)
      .Key("reconnects").Value(static_cast<size_t>(stream.reconnects()))
      .EndObject();
  json.EndObject();
  std::printf("%s\n", json.str().c_str());
  return 0;
}
