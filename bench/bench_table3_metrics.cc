// Table 3: precision / recall / purity / inverse purity of Naive, Greedy
// and DynamicC at the *last* snapshot of each DB-index workload, against
// the batch reference.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

namespace {

void RunDataset(WorkloadKind workload, TableWriter* table) {
  ExperimentConfig config =
      bench::StandardConfig(workload, TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  harness.RunBatch();
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dynamicc = harness.RunDynamicC(false);

  auto add = [&](const char* method, const Series& series) {
    const QualityReport& quality = series.points.back().quality;
    table->AddRow({WorkloadName(workload), method,
                   TableWriter::Num(quality.precision),
                   TableWriter::Num(quality.recall),
                   TableWriter::Num(quality.purity),
                   TableWriter::Num(quality.inverse_purity)});
  };
  add("Naive", naive);
  add("Greedy", greedy);
  add("DynamicC", dynamicc);
}

}  // namespace

int main() {
  bench::Banner("Table 3",
                "other quality metrics for DB-index clustering (last round)");
  TableWriter table({"dataset", "method", "precision", "recall", "purity",
                     "inverse_purity"});
  RunDataset(WorkloadKind::kCora, &table);
  RunDataset(WorkloadKind::kMusic, &table);
  RunDataset(WorkloadKind::kSynthetic, &table);
  table.Print(std::cout);
  bench::Note("shape to check: DynamicC best or tied on every column; "
              "Naive clearly worst (paper: e.g. Cora DynamicC "
              "0.996/0.972/0.997/0.988 vs Naive 0.884/0.806/0.914/0.842).");
  return 0;
}
