// Ablation A4 (§6.3 / DESIGN.md note 2): the split candidate ranking. The
// paper's text says "decreasing order with their weights" while the stated
// heuristic wants the most-different object first (ascending weight). We
// run both orders and compare applied splits, quality and latency.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

int main() {
  bench::Banner("Ablation A4", "split ranking order (Cora, DB-index)");

  TableWriter table({"order", "F1(mean)", "splits_applied",
                     "latency_ms(total)"});
  for (bool most_different_first : {true, false}) {
    ExperimentConfig config =
        bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
    config.dynamicc.split.most_different_first = most_different_first;
    ExperimentHarness harness(config);
    harness.RunBatch();
    Series dynamicc = harness.RunDynamicC(false);

    double f1_total = 0.0, latency = 0.0;
    size_t splits = 0;
    int count = 0;
    for (const auto& point : dynamicc.points) {
      if (static_cast<int>(point.snapshot) <= config.training_rounds) {
        continue;
      }
      f1_total += point.quality.f1;
      latency += point.latency_ms;
      splits += point.dynamicc.splits_applied;
      ++count;
    }
    table.AddRow({most_different_first ? "most-different-first (ours)"
                                       : "literal decreasing weight",
                  TableWriter::Num(count ? f1_total / count : 0.0),
                  std::to_string(splits), TableWriter::Num(latency, 1)});
  }
  table.Print(std::cout);
  bench::Note("shape to check: most-different-first finds the improving "
              "split earlier in the candidate queue (more splits applied / "
              "same or better F1); the literal order wastes verification "
              "checks on well-attached objects.");
  return 0;
}
