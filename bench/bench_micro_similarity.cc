// Micro-benchmarks of the similarity hot path (google-benchmark): the
// seed scalar kernels versus the PR-7 indexed batch kernels, scoring one
// probe against a 64-candidate block per iteration — the shape
// SimilarityGraph::ScoreAgainstCandidates actually runs.
//
// Benchmark names come in <Measure>_seed / <Measure>_indexed pairs over
// identical inputs, so a JSON run (--benchmark_format=json) yields the
// before/after ns-per-pair ratio by dividing the two real_time values
// (both score kBatch pairs per iteration). The `full_evals` counter is
// the distance-call count per batch: how many of the 64 pairs the
// threshold-aware kernel actually evaluated (seed always evaluates all).

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include <benchmark/benchmark.h>

#include "data/feature_index.h"
#include "data/record.h"
#include "data/similarity_measures.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

constexpr size_t kBatch = 64;
constexpr double kThreshold = 0.5;

Record MakeTextRecord(Rng* rng, size_t words) {
  Record record;
  for (size_t w = 0; w < words; ++w) {
    std::string token;
    for (size_t c = 0; c < 4 + rng->Index(6); ++c) {
      token += static_cast<char>('a' + rng->Index(26));
    }
    record.tokens.push_back(token);
    if (w > 0) record.text += " ";
    record.text += token;
  }
  return record;
}

Record MakePointRecord(Rng* rng, size_t dims) {
  Record record;
  for (size_t d = 0; d < dims; ++d) {
    record.numeric.push_back(rng->Uniform(0.0, 100.0));
  }
  return record;
}

/// Candidate block with blocking-realistic overlap: roughly half the
/// candidates share most of their content with the probe (would clear a
/// 0.5 threshold), the rest overlap only incidentally.
struct Workload {
  Record probe;
  std::vector<Record> candidates;
};

Workload TextWorkload(uint64_t seed, size_t words) {
  Rng rng(seed);
  Workload w;
  w.probe = MakeTextRecord(&rng, words);
  for (size_t i = 0; i < kBatch; ++i) {
    if (i % 2 == 0) {
      Record near = w.probe;  // same content, one token perturbed
      near.tokens[i % near.tokens.size()] = "alt" + std::to_string(i);
      near.text += "x";
      w.candidates.push_back(std::move(near));
    } else {
      w.candidates.push_back(MakeTextRecord(&rng, words));
    }
  }
  return w;
}

Workload PointWorkload(uint64_t seed, size_t dims) {
  Rng rng(seed);
  Workload w;
  w.probe = MakePointRecord(&rng, dims);
  for (size_t i = 0; i < kBatch; ++i) {
    Record candidate = w.probe;
    double spread = i % 2 == 0 ? 0.5 : 40.0;  // near vs far cluster
    for (double& v : candidate.numeric) v += rng.Uniform(-spread, spread);
    w.candidates.push_back(std::move(candidate));
  }
  return w;
}

/// Seed path: one scalar virtual Similarity call per pair, the loop
/// SimilarityGraph ran before the batch core existed.
void RunSeed(benchmark::State& state, const SimilarityMeasure& measure,
             const Workload& w) {
  for (auto _ : state) {
    for (const Record& candidate : w.candidates) {
      double s = measure.Similarity(w.probe, candidate);
      benchmark::DoNotOptimize(s);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
  state.counters["full_evals"] = static_cast<double>(kBatch);
}

/// Indexed path: features prebuilt (as the graph does at Add time), one
/// SimilarityBatch call per iteration with the graph's edge threshold.
void RunIndexed(benchmark::State& state, const SimilarityMeasure& measure,
                const Workload& w) {
  FeatureIndex index(measure.FeatureNeeds() != 0 ? measure.FeatureNeeds()
                                                 : kFeatureAll);
  RecordFeatures probe_features;
  index.Build(w.probe, &probe_features);
  std::vector<RecordFeatures> features(w.candidates.size());
  std::vector<SimCandidate> batch(w.candidates.size());
  for (size_t i = 0; i < w.candidates.size(); ++i) {
    index.Build(w.candidates[i], &features[i]);
    batch[i] = {&w.candidates[i], &features[i]};
  }
  std::vector<double> out(w.candidates.size());
  size_t full = 0;
  for (auto _ : state) {
    full = measure.SimilarityBatch(w.probe, &probe_features, batch.data(),
                                   batch.size(), kThreshold, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
  state.counters["full_evals"] = static_cast<double>(full);
}

void BM_Jaccard_seed(benchmark::State& state) {
  JaccardSimilarity measure;
  RunSeed(state, measure, TextWorkload(1, 8));
}
BENCHMARK(BM_Jaccard_seed);

void BM_Jaccard_indexed(benchmark::State& state) {
  JaccardSimilarity measure;
  RunIndexed(state, measure, TextWorkload(1, 8));
}
BENCHMARK(BM_Jaccard_indexed);

void BM_TrigramCosine_seed(benchmark::State& state) {
  TrigramCosineSimilarity measure;
  RunSeed(state, measure, TextWorkload(2, 6));
}
BENCHMARK(BM_TrigramCosine_seed);

void BM_TrigramCosine_indexed(benchmark::State& state) {
  TrigramCosineSimilarity measure;
  RunIndexed(state, measure, TextWorkload(2, 6));
}
BENCHMARK(BM_TrigramCosine_indexed);

void BM_Levenshtein_seed(benchmark::State& state) {
  LevenshteinSimilarity measure;
  RunSeed(state, measure, TextWorkload(3, 6));
}
BENCHMARK(BM_Levenshtein_seed);

void BM_Levenshtein_indexed(benchmark::State& state) {
  LevenshteinSimilarity measure;
  RunIndexed(state, measure, TextWorkload(3, 6));
}
BENCHMARK(BM_Levenshtein_indexed);

/// Scalar-merge vs dispatching trigram dot — the _scalar/_dispatch
/// real_time ratio is the AVX2 speedup gate (>= 1.0 asserted in CI:
/// dispatch must never lose to the merge it replaces). The shape is
/// the k-nearest-clusters one the read path runs: a short probe
/// against a long cluster representative — the asymmetric case where
/// the 8-wide block probe's O(small + large/8) beats the merge's
/// O(small + large). The long side clears the >= 64-id dispatch
/// floor; both kernels produce the same exact uint64 dot.
void RunTrigramDot(benchmark::State& state, bool dispatch) {
  Rng rng(7);
  const Record a = MakeTextRecord(&rng, 12);
  const Record b = MakeTextRecord(&rng, 96);
  FeatureIndex index(kFeatureTrigrams);
  RecordFeatures fa, fb;
  index.Build(a, &fa);
  index.Build(b, &fb);
  for (auto _ : state) {
    for (size_t i = 0; i < kBatch; ++i) {
      uint64_t dot = dispatch ? TrigramDotProduct(fa, fb)
                              : TrigramDotProductScalar(fa, fb);
      benchmark::DoNotOptimize(dot);
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatch));
  state.counters["trigram_ids"] =
      static_cast<double>(std::max(fa.trigram_ids.size(),
                                   fb.trigram_ids.size()));
}

void BM_TrigramDot_scalar(benchmark::State& state) {
  RunTrigramDot(state, /*dispatch=*/false);
}
BENCHMARK(BM_TrigramDot_scalar);

void BM_TrigramDot_dispatch(benchmark::State& state) {
  RunTrigramDot(state, /*dispatch=*/true);
}
BENCHMARK(BM_TrigramDot_dispatch);

void BM_Euclidean_seed(benchmark::State& state) {
  EuclideanSimilarity measure(5.0);
  RunSeed(state, measure, PointWorkload(4, state.range(0)));
}
BENCHMARK(BM_Euclidean_seed)->Arg(3)->Arg(16);

void BM_Euclidean_indexed(benchmark::State& state) {
  EuclideanSimilarity measure(5.0);
  RunIndexed(state, measure, PointWorkload(4, state.range(0)));
}
BENCHMARK(BM_Euclidean_indexed)->Arg(3)->Arg(16);

}  // namespace
}  // namespace dynamicc
