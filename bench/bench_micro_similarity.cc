// Micro-benchmarks of the similarity kernels (google-benchmark): the
// pairwise scoring cost that blocking amortizes.

#include <benchmark/benchmark.h>

#include "data/record.h"
#include "data/similarity_measures.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

Record MakeTextRecord(Rng* rng, size_t words) {
  Record record;
  for (size_t w = 0; w < words; ++w) {
    std::string token;
    for (size_t c = 0; c < 4 + rng->Index(6); ++c) {
      token += static_cast<char>('a' + rng->Index(26));
    }
    record.tokens.push_back(token);
    if (w > 0) record.text += " ";
    record.text += token;
  }
  return record;
}

Record MakePointRecord(Rng* rng, size_t dims) {
  Record record;
  for (size_t d = 0; d < dims; ++d) {
    record.numeric.push_back(rng->Uniform(0.0, 100.0));
  }
  return record;
}

void BM_Jaccard(benchmark::State& state) {
  Rng rng(1);
  Record a = MakeTextRecord(&rng, 8);
  Record b = MakeTextRecord(&rng, 8);
  JaccardSimilarity measure;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure.Similarity(a, b));
  }
}
BENCHMARK(BM_Jaccard);

void BM_TrigramCosine(benchmark::State& state) {
  Rng rng(2);
  Record a = MakeTextRecord(&rng, 6);
  Record b = MakeTextRecord(&rng, 6);
  TrigramCosineSimilarity measure;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure.Similarity(a, b));
  }
}
BENCHMARK(BM_TrigramCosine);

void BM_Levenshtein(benchmark::State& state) {
  Rng rng(3);
  Record a = MakeTextRecord(&rng, 6);
  Record b = MakeTextRecord(&rng, 6);
  LevenshteinSimilarity measure;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure.Similarity(a, b));
  }
}
BENCHMARK(BM_Levenshtein);

void BM_Euclidean(benchmark::State& state) {
  Rng rng(4);
  Record a = MakePointRecord(&rng, state.range(0));
  Record b = MakePointRecord(&rng, state.range(0));
  EuclideanSimilarity measure(5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure.Similarity(a, b));
  }
}
BENCHMARK(BM_Euclidean)->Arg(3)->Arg(16);

}  // namespace
}  // namespace dynamicc
