// Micro-benchmarks of objective evaluation: full Evaluate vs the exact
// deltas used by the algorithms — the reason incremental methods win.

#include <benchmark/benchmark.h>

#include <memory>

#include "cluster/engine.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "objective/correlation.h"
#include "objective/db_index.h"
#include "objective/kmeans.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

/// Shared scenario: 300 points in 20 loose blobs, pre-clustered per blob.
struct Scenario {
  Scenario()
      : measure(2.0),
        graph(&dataset, &measure, std::make_unique<GridBlocker>(8.0), 0.05),
        engine(&graph) {
    Rng rng(7);
    std::vector<std::vector<ObjectId>> blobs(20);
    for (int blob = 0; blob < 20; ++blob) {
      double cx = rng.Uniform(0.0, 300.0);
      double cy = rng.Uniform(0.0, 300.0);
      for (int i = 0; i < 15; ++i) {
        Record record;
        record.numeric = {cx + rng.Gaussian(0.0, 1.5),
                          cy + rng.Gaussian(0.0, 1.5)};
        ObjectId id = dataset.Add(record);
        graph.AddObject(id);
        blobs[blob].push_back(id);
      }
    }
    engine.InitSingletons();
    for (const auto& blob : blobs) {
      ClusterId cluster = engine.clustering().ClusterOf(blob[0]);
      for (size_t i = 1; i < blob.size(); ++i) {
        cluster = engine.Merge(cluster,
                               engine.clustering().ClusterOf(blob[i]));
      }
    }
  }

  Dataset dataset;
  EuclideanSimilarity measure;
  SimilarityGraph graph;
  ClusteringEngine engine;
};

Scenario& SharedScenario() {
  static Scenario* scenario = new Scenario();
  return *scenario;
}

void BM_CorrelationEvaluate(benchmark::State& state) {
  Scenario& s = SharedScenario();
  CorrelationObjective objective;
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.Evaluate(s.engine));
  }
}
BENCHMARK(BM_CorrelationEvaluate);

void BM_CorrelationMergeDelta(benchmark::State& state) {
  Scenario& s = SharedScenario();
  CorrelationObjective objective;
  auto ids = s.engine.clustering().ClusterIds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        objective.MergeDelta(s.engine, ids[0], ids[1]));
  }
}
BENCHMARK(BM_CorrelationMergeDelta);

void BM_DbIndexEvaluate(benchmark::State& state) {
  Scenario& s = SharedScenario();
  DbIndexObjective objective;
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.Evaluate(s.engine));
  }
}
BENCHMARK(BM_DbIndexEvaluate);

void BM_DbIndexMergeDelta(benchmark::State& state) {
  Scenario& s = SharedScenario();
  DbIndexObjective objective;
  auto ids = s.engine.clustering().ClusterIds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.MergeDelta(s.engine, ids[0], ids[1]));
  }
}
BENCHMARK(BM_DbIndexMergeDelta);

void BM_KMeansMergeDelta(benchmark::State& state) {
  Scenario& s = SharedScenario();
  KMeansObjective objective(&s.dataset, 20);
  auto ids = s.engine.clustering().ClusterIds();
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.MergeDelta(s.engine, ids[0], ids[1]));
  }
}
BENCHMARK(BM_KMeansMergeDelta);

}  // namespace
}  // namespace dynamicc
