// Throughput of the sharded serving layer (src/service/) vs shard count.
//
// A partition-disjoint token workload (G independent blocking groups)
// with hot-key serving traffic (each snapshot bursts adds into a
// rotating handful of groups) is streamed through
// ShardedDynamicCService configured with 1, 2, 4 and 8 shards; every
// configuration sees byte-identical operation batches. The timed region
// is the serving loop (ApplyOperations + DynamicRound per snapshot);
// the initial load and the two training rounds are setup. The win being
// measured is change-driven scheduling: a monolithic engine re-scans
// every cluster whenever anything changed, while the sharded service
// re-clusters only the shards the burst landed on.
//
// Two serving modes share the workload:
//
//  - sync:  ApplyOperations + DynamicRound per snapshot (call-and-wait;
//           the caller pays routing *and* re-clustering).
//  - async: every snapshot is enqueued into the bounded per-shard
//           queues and the background workers apply + round while the
//           producer keeps streaming; one Flush() barrier ends the run.
//           Sustained records/sec counts enqueue-to-flushed, and the
//           producer-side enqueue latency is reported as p50/p95 — the
//           ingest/round overlap the pipeline buys.
//
// Output: one JSON document on stdout (see bench_util.h JsonWriter) with
// records/sec per shard count and mode, the 4-shard-vs-1 speedup per
// mode, and the async-vs-sync ratio at 4 shards — the numbers the
// service-layer acceptance bars track.
//
// A third section measures dynamic placement: a *skewed* hot-key
// workload whose hot groups all collide on one shard under static hash
// placement (chosen adversarially by scanning group hashes). The same
// stream is served twice at 4 shards — static placement vs the
// auto-rebalancer (Options::rebalance) — and the JSON reports both
// sustained rates plus their ratio (`rebalance_vs_static_at_4`), the
// migrations executed, and the record-imbalance the rebalancer started
// from and ended at. Every measurement also carries the max/mean
// shard-cost ratio and per-shard record counts (ServiceReport's
// imbalance fields).
//
// A fourth section measures replication (src/replication/): the same
// barriered serving stream is run with delta shipping off and on
// (records/sec both ways — the delta-emit overhead is their gap), and a
// follower tails the log while the primary streams, catching up every
// few epochs; the JSON reports the epochs-behind series over time, the
// catch-up cost, and whether the replica ended byte-identical.
//
// A seventh section measures the epoch-pinned read path (PR 8): the
// replicated serving stream again, now with the primary and two
// read-serving followers publishing ReadViews, a fixed-rate open-loop
// read load routed through the ReadRouter under a staleness bound
// (the ingest-regression arm: lock-free readers must cost the writer
// <= 2% records/sec, the same bar the metrics guard set), and a
// mid-stream saturated capacity probe per serving target. Read
// scale-out is reported as aggregate capacity — each target's
// saturated throughput measured on its own and summed — because in
// deployment every follower is its own machine; measuring all targets
// concurrently in one process would only split this box's cores and
// say nothing about fleet capacity. The JSON carries the per-target
// capacities, the 2-follower-vs-primary-only scaling (the >= 1.6x CI
// bar: it fails when followers cannot publish fresh-enough views, not
// on raw CPU), the staleness ceiling observed vs the configured
// bound, and whether the final pinned views are byte-identical to the
// flushed state on primary and follower alike.
//
// Flags: --groups N --active N --per-round N --rounds N --threads N
//        --repeats N --mode sync|async|both --queue-depth N
//        --backpressure block|reject --skewed 0|1 --hot N
//        --rebalance-every K --replication 0|1 --catchup-every K
//        --metrics-overhead 0|1 --read-path 0|1 --read-clients N
//        --read-staleness-bound K

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "batch/agglomerative.h"
#include "bench_util.h"
#include "replication/backoff.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "data/blocking.h"
#include "data/operations.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "obs/metrics.h"
#include "service/query_api.h"
#include "service/service_report.h"
#include "service/sharded_service.h"
#include "util/status.h"
#include "util/timer.h"

using namespace dynamicc;

namespace {

struct BenchArgs {
  int groups = 3072;     // independent blocking groups
  int active = 2;        // hot groups receiving traffic per snapshot
  int per_round = 8;     // adds per hot group per snapshot
  int rounds = 64;       // dynamic snapshots in the timed region
  uint32_t threads = 0;  // 0 = one per shard, capped at hardware
  int repeats = 3;       // sweep repetitions; best serve time per config wins
  std::string mode = "both";  // sync | async | both
  size_t queue_depth = 4096;  // async: per-shard queue bound
  std::string backpressure = "block";  // async: block | reject
  bool skewed = true;         // run the static-vs-rebalanced section
  int hot = 8;                // skewed: colliding hot groups
  uint32_t rebalance_every = 4;  // skewed: auto-rebalance cadence
  bool replication = true;       // run the delta-shipping section
  int catchup_every = 4;         // replication: follower catch-up cadence
  bool metrics_overhead = true;  // run the metrics-overhead guard
  bool sim_core = true;          // run the seed-vs-indexed sim-core section
  bool read_path = true;         // run the epoch-pinned read-path section
  int read_clients = 2;          // fixed-rate open-loop reader threads
  int read_staleness_bound = 8;  // router max-staleness admission bound
};

ShardEnvironmentFactory MakeFactory() {
  return [] {
    ShardEnvironment env;
    env.measure = std::make_unique<JaccardSimilarity>();
    env.blocker = std::make_unique<TokenBlocker>();
    env.min_similarity = 0.1;
    auto objective = std::make_unique<CorrelationObjective>();
    env.validator = std::make_unique<ObjectiveValidator>(objective.get());
    env.batch = std::make_unique<GreedyAgglomerative>(objective.get());
    env.objective = std::move(objective);
    env.merge_model = std::make_unique<LogisticRegression>();
    env.split_model = std::make_unique<LogisticRegression>();
    return env;
  };
}

DataOperation GroupAdd(int group) {
  DataOperation op;
  op.kind = DataOperation::Kind::kAdd;
  op.record.entity = static_cast<uint32_t>(group);
  op.record.tokens = {"grp" + std::to_string(group),
                      "tag" + std::to_string(group)};
  return op;
}

/// `per_group` adds for each of `groups` blocking groups, interleaved so
/// routing sees a mixed stream. Group members share their token set, so
/// similarity never crosses groups and every shard count produces the
/// same clustering (the regime the equivalence tests pin down).
OperationBatch GroupAdds(int groups, int per_group) {
  OperationBatch ops;
  for (int i = 0; i < per_group; ++i) {
    for (int g = 0; g < groups; ++g) ops.push_back(GroupAdd(g));
  }
  return ops;
}

/// One serving snapshot with hot-key traffic: a rotating handful of
/// `active` groups each takes a burst of `per_round` adds — the
/// flash-crowd regime sharding exists for. The monolithic engine must
/// re-scan every cluster because *something* changed; the sharded
/// service re-clusters only the shards the burst landed on and skips
/// the clean ones outright (change-driven scheduling).
OperationBatch HotRound(const BenchArgs& args, int round) {
  OperationBatch ops;
  int start = (round * args.active) % args.groups;
  for (int i = 0; i < args.per_round; ++i) {
    for (int a = 0; a < args.active; ++a) {
      ops.push_back(GroupAdd((start + a) % args.groups));
    }
  }
  return ops;
}

struct Measurement {
  const char* mode = "sync";
  uint32_t shards = 0;
  size_t threads = 0;
  size_t records_served = 0;
  double serve_ms = 0.0;
  double records_per_sec = 0.0;
  size_t final_objects = 0;
  size_t final_clusters = 0;
  // Placement health at the end of the run: max/mean shard-cost ratio
  // over the serving rounds, final record skew, per-shard record
  // counts, and how many group migrations the placement layer executed.
  double cost_imbalance = 0.0;
  double record_imbalance = 0.0;
  std::vector<size_t> shard_records;
  uint64_t migrations = 0;
  uint64_t placement_version = 0;
  // Where the serving time went. The wall pair partitions serve_ms; the
  // per-shard pair is summed across shards, so it measures cost.
  double apply_wall_ms = 0.0;
  double round_wall_ms = 0.0;
  double recluster_ms = 0.0;
  double retrain_ms = 0.0;
  size_t rejected = 0;
  size_t probability_evaluations = 0;
  // Async only: producer-side enqueue latency percentiles, the final
  // flush barrier, and the pipeline counters.
  double enqueue_p50_us = 0.0;
  double enqueue_p95_us = 0.0;
  double flush_ms = 0.0;
  uint64_t coalesced_ops = 0;
  uint64_t worker_rounds = 0;
  uint64_t rejected_batches = 0;
  size_t queue_high_water = 0;
  // Epoch-flush probe (async only): a sealed burst is epoch-flushed
  // while a later-epoch backlog sits in the queues. epoch_flush_ms is
  // the prefix barrier's latency, epoch_flush_pending the backlog it
  // (correctly) did not drain, full_flush_ms the old global barrier
  // paying for everything afterwards.
  double epoch_flush_ms = 0.0;
  uint64_t epoch_flush_pending = 0;
  double full_flush_ms = 0.0;
  // Durability probe (async only): SaveSnapshot/LoadSnapshot wall time
  // and whether the restored clustering matched byte for byte.
  double snapshot_save_ms = 0.0;
  double snapshot_load_ms = 0.0;
  bool snapshot_identical = false;
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  size_t index = static_cast<size_t>(p * (values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

void FillPlacementHealth(const ShardedDynamicCService& service,
                         Measurement* m) {
  ServiceSnapshot snap = service.Snapshot();
  m->record_imbalance = snap.report.record_imbalance;
  m->migrations = snap.report.groups_migrated;
  m->placement_version = snap.report.placement_version;
  m->shard_records.clear();
  for (const ShardDynamicStats& stats : snap.report.dynamic_shards) {
    m->shard_records.push_back(stats.objects);
  }
}

Measurement RunOne(uint32_t num_shards, const BenchArgs& args,
                   const std::vector<OperationBatch>& training,
                   const std::vector<OperationBatch>& serving) {
  ShardedDynamicCService::Options options;
  options.num_shards = num_shards;
  options.num_threads = args.threads;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  for (const OperationBatch& batch : training) {
    auto changed = service.ApplyOperations(batch);
    service.ObserveBatchRound(changed);
  }

  Measurement m;
  m.shards = num_shards;
  m.threads = service.num_threads();
  double imbalance_sum = 0.0;
  size_t imbalance_rounds = 0;
  Timer timer;
  for (const OperationBatch& batch : serving) {
    Timer phase;
    auto changed = service.ApplyOperations(batch);
    m.apply_wall_ms += phase.ElapsedMillis();
    phase.Reset();
    ServiceReport report = service.DynamicRound(changed);
    m.round_wall_ms += phase.ElapsedMillis();
    m.records_served += batch.size();
    for (const ShardDynamicStats& stats : report.dynamic_shards) {
      m.recluster_ms += stats.report.recluster_ms;
      m.retrain_ms += stats.report.retrain_ms;
    }
    m.rejected += report.combined.rejected;
    m.probability_evaluations += report.combined.probability_evaluations;
    if (report.cost_imbalance > 0.0) {
      imbalance_sum += report.cost_imbalance;
      ++imbalance_rounds;
    }
  }
  m.serve_ms = timer.ElapsedMillis();
  m.records_per_sec =
      m.serve_ms > 0.0 ? 1000.0 * m.records_served / m.serve_ms : 0.0;
  m.final_objects = service.total_objects();
  m.final_clusters = service.total_clusters();
  m.cost_imbalance =
      imbalance_rounds > 0 ? imbalance_sum / imbalance_rounds : 0.0;
  FillPlacementHealth(service, &m);
  return m;
}

/// Async pipeline: identical training, then the serving snapshots are
/// only enqueued (per-call latency sampled) and one Flush() barrier ends
/// the run. serve_ms spans first enqueue to flushed state, so sustained
/// records/sec is directly comparable with the sync path.
Measurement RunOneAsync(uint32_t num_shards, const BenchArgs& args,
                        const std::vector<OperationBatch>& training,
                        const std::vector<OperationBatch>& serving) {
  ShardedDynamicCService::Options options;
  options.num_shards = num_shards;
  options.num_threads = args.threads;
  options.async.enabled = true;
  options.async.queue_depth = args.queue_depth;
  options.async.backpressure = args.backpressure == "reject"
                                   ? BackpressurePolicy::kReject
                                   : BackpressurePolicy::kBlock;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  for (const OperationBatch& batch : training) {
    auto changed = service.ApplyOperations(batch);
    service.ObserveBatchRound(changed);
  }
  // Transition into the serving phase: from here the background
  // workers round continuously (a no-op barrier — queues are empty).
  service.Flush();

  Measurement m;
  m.mode = "async";
  m.shards = num_shards;
  m.threads = service.num_threads();
  std::vector<double> enqueue_us;
  enqueue_us.reserve(serving.size());
  Timer timer;
  for (const OperationBatch& batch : serving) {
    Timer enqueue;
    auto result = service.Ingest(batch);
    enqueue_us.push_back(enqueue.ElapsedMillis() * 1000.0);
    if (result.accepted) m.records_served += batch.size();
  }
  m.apply_wall_ms = timer.ElapsedMillis();  // producer-side enqueue time
  Timer flush_timer;
  ServiceReport flush = service.Flush();
  m.flush_ms = flush_timer.ElapsedMillis();
  m.serve_ms = timer.ElapsedMillis();
  m.round_wall_ms = flush.ingest.worker_round_ms;  // overlapped, not waited
  m.records_per_sec =
      m.serve_ms > 0.0 ? 1000.0 * m.records_served / m.serve_ms : 0.0;
  m.enqueue_p50_us = Percentile(&enqueue_us, 0.50);
  m.enqueue_p95_us = Percentile(&enqueue_us, 0.95);
  m.coalesced_ops = flush.ingest.coalesced_ops;
  m.worker_rounds = flush.ingest.worker_rounds;
  m.rejected_batches = flush.ingest.rejected_batches;
  m.queue_high_water = flush.ingest.queue_high_water;
  // Cumulative over every round (background + flush barrier), so the
  // counters are comparable with the sync path's per-round sums.
  ServiceSnapshot snap = service.Snapshot();
  m.rejected = snap.report.combined.rejected;
  m.probability_evaluations = snap.report.combined.probability_evaluations;
  m.final_objects = snap.total_objects;
  m.final_clusters = snap.total_clusters;
  m.cost_imbalance = flush.cost_imbalance;
  FillPlacementHealth(service, &m);

  // Epoch-flush probe, outside the timed region, under *concurrent*
  // ingest — the regime the prefix barrier exists for. The probe seals
  // the traffic admitted so far, then a producer thread replays the
  // serving stream (pure adds) several times while the main thread
  // times Flush(sealed): it returns once the sealed prefix is applied
  // even though the producer keeps feeding the queues (the old barrier
  // would chase it). The full barrier afterwards pays for the leftover
  // backlog: epoch_flush_ms vs full_flush_ms is the wait a reader no
  // longer pays, and epoch_flush_pending the later-epoch backlog the
  // prefix barrier (correctly) left queued. Numbers are noisy on small
  // boxes — the *shape* (prefix barrier bounded, full barrier paying
  // the backlog) is what the JSON documents.
  {
    for (const OperationBatch& batch : serving) service.Ingest(batch);
    uint64_t sealed = service.CloseEpoch();
    // Bounded volume (not an open loop): the probe should measure
    // barrier mechanics, not ever-growing cluster sizes.
    std::thread producer([&service, &serving] {
      for (int pass = 0; pass < 6; ++pass) {
        for (const OperationBatch& batch : serving) service.Ingest(batch);
      }
    });
    Timer epoch_timer;
    ServiceReport epoch_flush = service.Flush(sealed);
    m.epoch_flush_ms = epoch_timer.ElapsedMillis();
    m.epoch_flush_pending = epoch_flush.ingest.pending_ops;
    producer.join();
    Timer full_timer;
    service.Flush();
    m.full_flush_ms = full_timer.ElapsedMillis();
  }

  // Durability probe: serialize the loaded service, restore it into a
  // fresh one, and verify the round trip reproduced the clustering.
  {
    const std::string dir =
        "/tmp/dynamicc_bench_snapshot_" + std::to_string(num_shards);
    Timer save_timer;
    Status saved = service.SaveSnapshot(dir);
    m.snapshot_save_ms = save_timer.ElapsedMillis();
    if (saved.ok()) {
      ShardedDynamicCService restored(options, nullptr, MakeFactory());
      Timer load_timer;
      Status loaded = restored.LoadSnapshot(dir);
      m.snapshot_load_ms = load_timer.ElapsedMillis();
      m.snapshot_identical =
          loaded.ok() &&
          restored.GlobalClusters() == service.GlobalClusters();
    }
  }
  return m;
}

/// Skewed (hot-key collision) section: async pipeline, static placement
/// vs mid-stream rebalancing. Under static placement every hot group
/// drains through ONE pinned shard worker — the whole stream is
/// serialized on a single core no matter how many shards exist. The
/// rebalanced run calls RebalanceOnce() every `rebalance_every`
/// snapshots: hot groups migrate away (queued backlog replays onto the
/// destination logs) and the remaining stream drains in parallel.
Measurement RunOneSkewed(const BenchArgs& args,
                         const std::vector<OperationBatch>& training,
                         const std::vector<OperationBatch>& serving,
                         uint32_t rebalance_every) {
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  options.num_threads = args.threads;
  options.async.enabled = true;
  // A tight queue paces the producer at drain rate (kBlock): load
  // evolves in real time, so the rebalance cadence below observes the
  // hot shard's cost while the stream flows — and migrations re-home
  // genuine queued backlog (the replay path), not an empty queue.
  options.async.queue_depth = std::min<size_t>(args.queue_depth, 256);
  options.async.adaptive_batch = true;
  options.async.min_batch = 32;
  if (rebalance_every > 0) {
    options.rebalance.policy.hysteresis = 1.3;
    options.rebalance.policy.max_moves = 8;
    // Record counts, not per-window cost: the serving stream is
    // homogeneous, and the stable metric keeps the placement from
    // thrashing once it is balanced (migrations are not free).
    options.rebalance.policy.metric = Rebalancer::LoadMetric::kRecords;
  }
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  for (const OperationBatch& batch : training) {
    auto changed = service.ApplyOperations(batch);
    service.ObserveBatchRound(changed);
  }
  service.Flush();

  Measurement m;
  m.mode = rebalance_every > 0 ? "rebalance" : "static";
  m.shards = 4;
  m.threads = service.num_threads();
  Timer timer;
  for (size_t i = 0; i < serving.size(); ++i) {
    Timer phase;
    if (service.Ingest(serving[i]).accepted) {
      m.records_served += serving[i].size();
    }
    m.apply_wall_ms += phase.ElapsedMillis();
    if (rebalance_every > 0 && (i + 1) % rebalance_every == 0) {
      service.RebalanceOnce();
    }
  }
  ServiceReport flush = service.Flush();
  m.serve_ms = timer.ElapsedMillis();
  m.round_wall_ms = flush.ingest.worker_round_ms;
  m.records_per_sec =
      m.serve_ms > 0.0 ? 1000.0 * m.records_served / m.serve_ms : 0.0;
  m.cost_imbalance = flush.cost_imbalance;
  std::fprintf(stderr,
               "  [skewed %s] enqueue %.0f ms, flush wall %.0f ms, worker "
               "apply %.0f ms, worker rounds %llu (%.0f ms), batches %llu\n",
               m.mode, m.apply_wall_ms, flush.wall_ms,
               flush.ingest.worker_apply_ms,
               static_cast<unsigned long long>(flush.ingest.worker_rounds),
               flush.ingest.worker_round_ms,
               static_cast<unsigned long long>(flush.ingest.applied_batches));
  ServiceSnapshot snap = service.Snapshot();
  m.recluster_ms = snap.report.ingest.worker_round_ms;
  m.final_objects = snap.total_objects;
  m.final_clusters = snap.total_clusters;
  FillPlacementHealth(service, &m);
  return m;
}

/// Replication section: the same barriered serving stream (ingest +
/// flush + one sealed epoch per round — the replicated-primary
/// protocol) with delta shipping off vs on, plus a follower tailing the
/// log as it grows. records/sec on-vs-off is the delta-emit overhead; a
/// lag sample (sealed epochs the follower is behind) is taken every
/// round, and the follower only catches up every `catchup_every` rounds
/// so the series actually moves.
struct ReplicationMeasurement {
  double off_records_per_sec = 0.0;
  double on_records_per_sec = 0.0;
  double seal_ms_total = 0.0;        // cumulative SealEpoch wall time
  // The session's split of that wall time: service-side bookkeeping
  // (watermarks, epoch marks) vs delta serialization + write. A slow
  // seal is attributable to the service or the replication sink.
  double seal_service_ms_total = 0.0;
  double delta_ship_ms_total = 0.0;
  uint64_t delta_bytes_total = 0;
  uint64_t deltas_shipped = 0;
  uint64_t pending_at_seals = 0;
  std::vector<uint64_t> lag_epochs;  // one sample per serving round
  uint64_t max_lag = 0;
  double catchup_ms_total = 0.0;
  uint64_t follower_epoch = 0;
  // Final values of the follower's own staleness gauges (its private
  // registry — a shared book would pool primary and replica metrics).
  double follower_epochs_behind = 0.0;
  double follower_replay_lag_ms = 0.0;
  bool identical = false;            // replica byte-equal at the end
};

ReplicationMeasurement RunReplicated(
    const BenchArgs& args, const std::vector<OperationBatch>& training,
    const std::vector<OperationBatch>& serving) {
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  options.num_threads = args.threads;
  options.async.enabled = true;
  options.async.queue_depth = args.queue_depth;

  ReplicationMeasurement m;

  // Baseline: identical barrier + seal cadence, no shipping.
  {
    ShardedDynamicCService service(options, nullptr, MakeFactory());
    for (const OperationBatch& batch : training) {
      auto changed = service.ApplyOperations(batch);
      service.ObserveBatchRound(changed);
    }
    service.Flush();
    Timer timer;
    size_t records = 0;
    for (const OperationBatch& batch : serving) {
      if (service.Ingest(batch).accepted) records += batch.size();
      service.Flush();
      service.CloseEpoch();
    }
    double ms = timer.ElapsedMillis();
    m.off_records_per_sec = ms > 0.0 ? 1000.0 * records / ms : 0.0;
  }

  // Shipping on, with a follower tailing the directory live.
  const std::string dir = "/tmp/dynamicc_bench_replication";
  std::filesystem::remove_all(dir);
  ShardedDynamicCService primary(options, nullptr, MakeFactory());
  for (const OperationBatch& batch : training) {
    auto changed = primary.ApplyOperations(batch);
    primary.ObserveBatchRound(changed);
  }
  primary.Flush();
  ReplicationSession repl(&primary, dir, {});
  Status status = repl.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "replication bench skipped: %s\n",
                 status.ToString().c_str());
    return m;
  }

  ShardedDynamicCService::Options follower_options = options;
  follower_options.async.enabled = false;
  // The follower keeps its own metrics book: both services live in this
  // process, and sharing Default() would pool their histograms.
  obs::MetricsRegistry follower_registry;
  follower_options.obs.metrics = &follower_registry;
  Follower follower(dir, follower_options, MakeFactory());
  status = follower.Restore();
  if (!status.ok()) {
    std::fprintf(stderr, "replication bench: follower restore failed: %s\n",
                 status.ToString().c_str());
    return m;
  }

  Timer timer;
  size_t records = 0;
  uint64_t last_sealed = repl.last_base_epoch();
  const int catchup_every = std::max(1, args.catchup_every);
  for (size_t round = 0; round < serving.size(); ++round) {
    if (primary.Ingest(serving[round]).accepted) {
      records += serving[round].size();
    }
    primary.Flush();
    Timer seal_timer;
    last_sealed = repl.SealEpoch();
    m.seal_ms_total += seal_timer.ElapsedMillis();
    // Lag is sampled every round; the follower only acts on its cadence.
    m.lag_epochs.push_back(last_sealed - follower.epoch());
    if ((round + 1) % static_cast<size_t>(catchup_every) == 0) {
      Timer catchup;
      if (!follower.CatchUp().ok()) break;
      m.catchup_ms_total += catchup.ElapsedMillis();
    }
  }
  // The follower replays in-process here (a real deployment tails from
  // another machine), so its catch-up time is carved out of the
  // primary's serve window: on-vs-off isolates the delta-*emit* cost.
  double ms = timer.ElapsedMillis() - m.catchup_ms_total;
  m.on_records_per_sec = ms > 0.0 ? 1000.0 * records / ms : 0.0;
  m.deltas_shipped = repl.deltas_shipped();
  m.pending_at_seals = repl.pending_at_seals();
  m.seal_service_ms_total = repl.seal_ms_total();
  m.delta_ship_ms_total = repl.delta_ship_ms_total();
  m.delta_bytes_total = repl.delta_bytes_total();
  for (uint64_t lag : m.lag_epochs) m.max_lag = std::max(m.max_lag, lag);

  Timer final_catchup;
  if (follower.CatchUp().ok()) {
    m.catchup_ms_total += final_catchup.ElapsedMillis();
    follower.Flush();
    m.follower_epoch = follower.epoch();
    m.identical =
        follower.service().GlobalClusters() == primary.GlobalClusters();
  }
  // GetGauge returns the instance CatchUp has been updating (registries
  // register on first use), so these are the live staleness gauges.
  m.follower_epochs_behind =
      follower_registry.GetGauge("follower.epochs_behind")->value();
  m.follower_replay_lag_ms =
      follower_registry.GetGauge("follower.replay_lag_ms")->value();
  return m;
}

/// Metrics-overhead guard: the same 4-shard async serving stream with
/// the registry attached vs compiled-in-but-idle (a null pointer in
/// Options::obs — exactly what a service without --metrics-out runs).
/// The arms are interleaved within each repeat so scheduler and thermal
/// drift hit both equally, and each arm keeps its best time. The bar
/// the instrumentation must clear: one relaxed striped atomic add per
/// hot-path event, ≤ 2% sustained-throughput cost.
struct MetricsOverhead {
  double idle_ms = 0.0;     // best serve time, metrics pointer null
  double enabled_ms = 0.0;  // best serve time, registry attached
  double overhead_pct = 0.0;
  bool within_2pct = false;
};

MetricsOverhead MeasureMetricsOverhead(
    const BenchArgs& args, const std::vector<OperationBatch>& training,
    const std::vector<OperationBatch>& serving) {
  auto run_once = [&](obs::MetricsRegistry* registry) {
    ShardedDynamicCService::Options options;
    options.num_shards = 4;
    options.num_threads = args.threads;
    options.async.enabled = true;
    options.async.queue_depth = args.queue_depth;
    options.obs.metrics = registry;
    ShardedDynamicCService service(options, nullptr, MakeFactory());
    for (const OperationBatch& batch : training) {
      auto changed = service.ApplyOperations(batch);
      service.ObserveBatchRound(changed);
    }
    service.Flush();
    Timer timer;
    for (const OperationBatch& batch : serving) service.Ingest(batch);
    service.Flush();
    return timer.ElapsedMillis();
  };
  MetricsOverhead m;
  obs::MetricsRegistry registry;  // reused: registration is one-time cost
  for (int rep = 0; rep < std::max(1, args.repeats); ++rep) {
    double idle = run_once(nullptr);
    double enabled = run_once(&registry);
    if (rep == 0 || idle < m.idle_ms) m.idle_ms = idle;
    if (rep == 0 || enabled < m.enabled_ms) m.enabled_ms = enabled;
  }
  m.overhead_pct = m.idle_ms > 0.0
                       ? 100.0 * (m.enabled_ms - m.idle_ms) / m.idle_ms
                       : 0.0;
  // Negative overhead is run-to-run noise in the idle arm's favor.
  m.within_2pct = m.overhead_pct <= 2.0;
  return m;
}

/// Sim-core section: the seed scalar similarity loop vs the indexed
/// batch core (and the core with history-guided pruning) on a stream
/// built to have a stop-word blocking key. Every record carries a
/// shared "common" token, so candidate lists grow with the whole
/// shard-local universe while true edges stay within groups: the
/// regime where per-pair kernel cost dominates serving (indexed wins)
/// and where the cold "common" key's history earns its pruning
/// (sim.calls collapses to the within-group candidates).
///
/// Token layout per record: "agrp<g>" (sorts before "common", so
/// within-group candidates attribute to the hot group key), "common",
/// and 6 globally-unique filler tokens. Within-group Jaccard is
/// 2/14 ≈ 0.14 (≥ the 0.1 edge threshold), cross-group 1/15 ≈ 0.07
/// (below it) — so pruning the "common" key drops no true edges and
/// the pruned run's clustering stays identical too.
constexpr int kSimCoreGroups = 48;
constexpr int kSimCoreFiller = 6;

DataOperation SimCoreAdd(int group, int* unique_counter) {
  DataOperation op;
  op.kind = DataOperation::Kind::kAdd;
  op.record.entity = static_cast<uint32_t>(group);
  op.record.tokens = {"agrp" + std::to_string(group), "common"};
  for (int u = 0; u < kSimCoreFiller; ++u) {
    op.record.tokens.push_back("u" + std::to_string((*unique_counter)++));
  }
  return op;
}

struct SimCoreRun {
  double serve_ms = 0.0;
  double records_per_sec = 0.0;
  size_t records_served = 0;
  uint64_t sim_calls = 0;
  uint64_t sim_full = 0;
  uint64_t sim_pruned = 0;
  size_t final_clusters = 0;
  std::vector<std::vector<ObjectId>> clusters;
};

SimCoreRun RunSimCore(const BenchArgs& args,
                      const SimilarityGraph::Options& core,
                      const std::vector<OperationBatch>& training,
                      const std::vector<OperationBatch>& serving) {
  obs::MetricsRegistry registry;
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  options.num_threads = args.threads;
  options.obs.metrics = &registry;
  auto factory = [&core] {
    ShardEnvironment env = MakeFactory()();
    env.sim_core = core;
    return env;
  };
  ShardedDynamicCService service(options, nullptr, factory);
  for (const OperationBatch& batch : training) {
    auto changed = service.ApplyOperations(batch);
    service.ObserveBatchRound(changed);
  }
  SimCoreRun run;
  Timer timer;
  for (const OperationBatch& batch : serving) {
    auto changed = service.ApplyOperations(batch);
    service.DynamicRound(changed);
    run.records_served += batch.size();
  }
  run.serve_ms = timer.ElapsedMillis();
  run.records_per_sec =
      run.serve_ms > 0.0 ? 1000.0 * run.records_served / run.serve_ms : 0.0;
  run.sim_calls = registry.GetCounter("sim.calls")->value();
  run.sim_full = registry.GetCounter("sim.full")->value();
  run.sim_pruned = registry.GetCounter("sim.pruned")->value();
  run.final_clusters = service.total_clusters();
  run.clusters = service.GlobalClusters();
  return run;
}

struct SimCoreMeasurement {
  SimCoreRun seed;
  SimCoreRun indexed;
  SimCoreRun pruned;
  bool indexed_identical = false;
  bool pruned_identical = false;
};

SimCoreMeasurement MeasureSimCore(const BenchArgs& args) {
  int unique = 0;
  std::vector<OperationBatch> training;
  for (int member = 0; member < 2; ++member) {
    OperationBatch batch;
    for (int g = 0; g < kSimCoreGroups; ++g) {
      batch.push_back(SimCoreAdd(g, &unique));
    }
    training.push_back(std::move(batch));
  }
  std::vector<OperationBatch> serving;
  for (int r = 0; r < args.rounds; ++r) {
    OperationBatch batch;
    for (int i = 0; i < args.per_round; ++i) {
      batch.push_back(
          SimCoreAdd((r * args.per_round + i) % kSimCoreGroups, &unique));
    }
    serving.push_back(std::move(batch));
  }

  SimilarityGraph::Options seed_core;
  seed_core.use_feature_index = false;
  SimilarityGraph::Options indexed_core;  // defaults: indexed + order
  SimilarityGraph::Options pruned_core;
  pruned_core.history = SimilarityGraph::HistoryMode::kPrune;

  SimCoreMeasurement m;
  // Interleaved arms per repeat, best serve time each — same estimator
  // as the shard sweep. Counters are deterministic across repeats.
  for (int rep = 0; rep < std::max(1, args.repeats); ++rep) {
    SimCoreRun seed = RunSimCore(args, seed_core, training, serving);
    SimCoreRun indexed = RunSimCore(args, indexed_core, training, serving);
    SimCoreRun pruned = RunSimCore(args, pruned_core, training, serving);
    if (rep == 0) {
      m.indexed_identical = indexed.clusters == seed.clusters;
      m.pruned_identical = pruned.clusters == seed.clusters;
    }
    if (rep == 0 || seed.serve_ms < m.seed.serve_ms) m.seed = seed;
    if (rep == 0 || indexed.serve_ms < m.indexed.serve_ms) {
      m.indexed = indexed;
    }
    if (rep == 0 || pruned.serve_ms < m.pruned.serve_ms) m.pruned = pruned;
  }
  // Cluster vectors served their equality check; don't keep them live.
  m.seed.clusters.clear();
  m.indexed.clusters.clear();
  m.pruned.clusters.clear();
  return m;
}

/// Read-path section (PR 8): the replicated serving protocol with the
/// primary and two followers publishing epoch-pinned ReadViews. Two
/// arms, interleaved per repeat, identical except for the readers:
///
///  - baseline: primary ingests + seals, followers tail — no readers.
///  - with readers: `read_clients` fixed-rate open-loop reader threads
///    route a ClusterOf/KNearest/Stats mix through the ReadRouter
///    under the staleness bound while the same stream flows, and at
///    the stream's midpoint each serving target takes a saturated
///    capacity burst (timed queries against that one target).
///
/// The arms' ingest records/sec difference is the cost lock-free
/// readers impose on the writer (the <= 2% bar); the capacity bursts
/// are summed into aggregate fleet capacity vs the primary alone (the
/// >= 1.6x scale-out bar — in deployment each follower is its own
/// machine, so per-target capacity adds; a follower too stale to
/// admit queries contributes zero and fails the bar).
struct ReadArmResult {
  double serve_ms = 0.0;
  double ingest_records_per_sec = 0.0;
  size_t records_served = 0;
  // Fixed-rate router load (with-readers arm only).
  uint64_t queries_served = 0;
  uint64_t router_queries = 0;
  uint64_t rejected_stale = 0;
  uint64_t max_staleness = 0;
  double staleness_gauge = 0.0;
  // Saturated capacity per target (queries/sec).
  double primary_qps = 0.0;
  double follower_qps[2] = {0.0, 0.0};
  // Final pinned views byte-equal to the flushed state.
  bool primary_view_identical = false;
  bool follower_view_identical = false;
};

ReadArmResult RunReadArm(const BenchArgs& args,
                         const std::vector<OperationBatch>& training,
                         const std::vector<OperationBatch>& serving,
                         bool with_readers) {
  ReadArmResult m;
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  options.num_threads = args.threads;
  options.async.enabled = true;
  options.async.queue_depth = args.queue_depth;
  options.read.serve = true;

  const std::string dir = "/tmp/dynamicc_bench_readpath";
  std::filesystem::remove_all(dir);
  ShardedDynamicCService primary(options, nullptr, MakeFactory());
  for (const OperationBatch& batch : training) {
    auto changed = primary.ApplyOperations(batch);
    primary.ObserveBatchRound(changed);
  }
  primary.Flush();
  ReplicationSession repl(&primary, dir, {});
  if (!repl.Start().ok()) {
    std::fprintf(stderr, "read-path bench skipped: replication failed\n");
    return m;
  }

  ShardedDynamicCService::Options follower_options = options;
  follower_options.async.enabled = false;
  std::vector<std::unique_ptr<Follower>> followers;
  for (int f = 0; f < 2; ++f) {
    followers.push_back(
        std::make_unique<Follower>(dir, follower_options, MakeFactory()));
    if (!followers.back()->Restore().ok()) {
      std::fprintf(stderr, "read-path bench: follower restore failed\n");
      return m;
    }
  }

  // Followers tail continuously — both arms carry this thread, so the
  // ingest comparison isolates the readers. Empty polls back off
  // exponentially (capped low: follower staleness feeds the capacity
  // probe) and any replay progress resets the delay, so an active
  // stream is tailed tightly without spinning on an idle one.
  std::atomic<bool> stop{false};
  std::thread catcher([&followers, &stop] {
    PollBackoff::Options backoff_options;
    backoff_options.max_ms = 32;
    PollBackoff backoff(backoff_options);
    while (!stop.load(std::memory_order_relaxed)) {
      size_t progressed = 0;
      for (auto& f : followers) {
        size_t replayed = 0;
        if (!f->CatchUp(&replayed).ok()) return;
        progressed += replayed;
      }
      if (progressed > 0) {
        backoff.Reset();
        continue;
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff.NextDelayMs()));
    }
  });

  // Query inputs: training-era global ids (always alive) and group
  // probe records, cycled deterministically.
  const size_t training_objects = static_cast<size_t>(args.groups) * 6;
  std::vector<Record> probes;
  for (int g = 0; g < 8; ++g) probes.push_back(GroupAdd(g).record);

  obs::MetricsRegistry router_registry;
  ReadRouter::Options router_options;
  router_options.max_staleness_epochs =
      static_cast<uint64_t>(std::max(0, args.read_staleness_bound));
  router_options.metrics = &router_registry;
  ReadRouter router(&primary, router_options);
  for (size_t f = 0; f < followers.size(); ++f) {
    router.AddFollower(&followers[f]->service(),
                       "follower" + std::to_string(f));
  }

  std::atomic<uint64_t> served{0};
  std::atomic<uint64_t> max_staleness{0};
  std::vector<std::thread> readers;
  if (with_readers) {
    for (int c = 0; c < std::max(1, args.read_clients); ++c) {
      readers.emplace_back([&, c] {
        uint64_t t = static_cast<uint64_t>(c) * 7919;
        while (!stop.load(std::memory_order_relaxed)) {
          QueryClient::ResultInfo info;
          switch (t % 3) {
            case 0:
              info = router.Stats().info;
              break;
            case 1:
              info = router
                         .ClusterOfRecord(static_cast<ObjectId>(
                             (t * 2654435761u) % training_objects))
                         .info;
              break;
            default:
              info = router.KNearestClusters(probes[t % probes.size()], 4)
                         .info;
          }
          if (info.served) {
            served.fetch_add(1, std::memory_order_relaxed);
            uint64_t seen = max_staleness.load(std::memory_order_relaxed);
            while (info.staleness > seen &&
                   !max_staleness.compare_exchange_weak(
                       seen, info.staleness, std::memory_order_relaxed)) {
            }
          }
          ++t;
          // Open-loop pacing: a fixed arrival rate per client, so the
          // read load is constant across repeats and its writer cost is
          // attributable (a closed loop would absorb any slack).
          std::this_thread::sleep_for(std::chrono::microseconds(2000));
        }
      });
    }
  }

  // One saturated capacity burst against a single target: direct
  // QueryClient calls (no router hop) for a fixed time box, counting
  // only served answers — a target with no published view scores zero.
  auto capacity_burst = [&](const ShardedDynamicCService* target) {
    QueryClient client(target);
    int burst_served = 0;
    int q = 0;
    Timer burst;
    double ms = 0.0;
    do {
      for (int step = 0; step < 64; ++step, ++q) {
        switch (q % 3) {
          case 0: {
            auto r = client.ClusterOfRecord(static_cast<ObjectId>(
                (static_cast<uint64_t>(q) * 2654435761u) %
                training_objects));
            burst_served += r.info.served ? 1 : 0;
            break;
          }
          case 1: {
            auto r = client.KNearestClusters(probes[q % probes.size()], 4);
            burst_served += r.info.served ? 1 : 0;
            break;
          }
          default: {
            auto r = client.Stats();
            burst_served += r.info.served ? 1 : 0;
          }
        }
      }
      ms = burst.ElapsedMillis();
    } while (ms < 25.0);
    return ms > 0.0 ? 1000.0 * burst_served / ms : 0.0;
  };

  double burst_ms = 0.0;
  Timer timer;
  for (size_t round = 0; round < serving.size(); ++round) {
    if (primary.Ingest(serving[round]).accepted) {
      m.records_served += serving[round].size();
    }
    primary.Flush();
    repl.SealEpoch();
    if (with_readers && round == serving.size() / 2) {
      // Mid-stream capacity probe, carved out of the ingest window like
      // the replication section's catch-up: one target at a time, the
      // fixed-rate load and the follower tailing still running. Wait
      // for each follower's first published view (the tailing thread
      // replays on its own schedule) — capacity of a view-less target
      // is legitimately zero, but at the probe point we measure serving
      // capacity, not restore latency.
      Timer probe_timer;
      for (auto& f : followers) {
        QueryClient probe(&f->service());
        Timer wait;
        while (probe.view_epoch() == 0 && wait.ElapsedMillis() < 2000.0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      m.primary_qps = capacity_burst(&primary);
      for (size_t f = 0; f < followers.size(); ++f) {
        m.follower_qps[f] = capacity_burst(&followers[f]->service());
      }
      burst_ms = probe_timer.ElapsedMillis();
    }
  }
  double ms = timer.ElapsedMillis() - burst_ms;
  m.serve_ms = ms;
  m.ingest_records_per_sec = ms > 0.0 ? 1000.0 * m.records_served / ms : 0.0;

  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  catcher.join();

  m.queries_served = served.load();
  m.max_staleness = max_staleness.load();
  m.router_queries = router.queries();
  m.rejected_stale = router.rejected_stale();
  m.staleness_gauge =
      router_registry.GetGauge("read.staleness_epochs")->value();

  // Byte-consistency of the final pinned views: the primary's view was
  // published at the last seal (the stream is flushed, so the sealed
  // epoch IS the state); the follower's at its last replayed barrier.
  ReadPin primary_pin = primary.AcquireReadView();
  m.primary_view_identical =
      primary_pin && primary_pin->CanonicalClusters() ==
                         primary.GlobalClusters();
  if (followers[0]->CatchUp().ok()) {
    followers[0]->Flush();
    ReadPin follower_pin = followers[0]->service().AcquireReadView();
    m.follower_view_identical =
        follower_pin && follower_pin->CanonicalClusters() ==
                            primary.GlobalClusters();
  }
  return m;
}

struct ReadPathMeasurement {
  ReadArmResult baseline;    // no readers (from the min-regression sweep)
  ReadArmResult with_reads;  // router load + bursts (same sweep as baseline)
  double ingest_regression_pct = 0.0;
  bool ingest_within_2pct = false;
  double single_node_read_qps = 0.0;  // primary capacity alone
  double fleet_read_qps = 0.0;        // + 2 followers, aggregate
  double follower_read_qps[2] = {0.0, 0.0};
  double read_scaling_2_followers = 0.0;
  uint64_t max_staleness = 0;           // worst served staleness, any sweep
  bool primary_view_identical = true;   // AND across sweeps
  bool follower_view_identical = true;  // AND across sweeps
};

ReadPathMeasurement MeasureReadPath(
    const BenchArgs& args, const std::vector<OperationBatch>& training,
    const std::vector<OperationBatch>& serving) {
  ReadPathMeasurement m;
  // At least 5 interleaved sweeps regardless of --repeats: the arms'
  // gap IS the measurement (a <= 2% bar) and a single sample per arm
  // on a shared box carries far more noise than the bar itself. Each
  // sweep runs its two arms back to back (alternating order, so
  // warmup and drift hit both sides equally) and contributes a PAIRED
  // regression; the reported regression is the minimum paired gap —
  // the sweep least polluted by outside load. Noise only ever adds
  // time, so a genuine reader cost shows up in every sweep and
  // survives the minimum; a one-sweep spike does not. Capacity
  // scaling keeps its best sweep for the same reason; the
  // byte-consistency flags and the staleness ceiling are taken
  // across ALL sweeps (one bad sweep must fail them).
  const int reps = std::max(5, args.repeats);
  for (int rep = 0; rep < reps; ++rep) {
    ReadArmResult first = RunReadArm(args, training, serving, rep % 2 == 1);
    ReadArmResult second = RunReadArm(args, training, serving, rep % 2 == 0);
    ReadArmResult& base = rep % 2 == 1 ? second : first;
    ReadArmResult& reads = rep % 2 == 1 ? first : second;
    const double pct =
        base.ingest_records_per_sec > 0.0
            ? 100.0 * (base.ingest_records_per_sec -
                       reads.ingest_records_per_sec) /
                  base.ingest_records_per_sec
            : 0.0;
    if (rep == 0 || pct < m.ingest_regression_pct) {
      m.ingest_regression_pct = pct;
      m.baseline = base;
      m.with_reads = reads;
    }
    const double fleet =
        reads.primary_qps + reads.follower_qps[0] + reads.follower_qps[1];
    const double scaling =
        reads.primary_qps > 0.0 ? fleet / reads.primary_qps : 0.0;
    if (rep == 0 || scaling > m.read_scaling_2_followers) {
      m.read_scaling_2_followers = scaling;
      m.single_node_read_qps = reads.primary_qps;
      m.fleet_read_qps = fleet;
      m.follower_read_qps[0] = reads.follower_qps[0];
      m.follower_read_qps[1] = reads.follower_qps[1];
    }
    m.max_staleness = std::max(m.max_staleness, reads.max_staleness);
    m.primary_view_identical =
        m.primary_view_identical && reads.primary_view_identical;
    m.follower_view_identical =
        m.follower_view_identical && reads.follower_view_identical;
  }
  // Negative regression is drift in the readers' favor.
  m.ingest_within_2pct = m.ingest_regression_pct <= 2.0;
  return m;
}

/// The adversarial hot set: `count` groups whose hash placement all
/// collides on shard 0 at `num_shards` — the worst case static routing
/// can be dealt, and the case the rebalancer exists for.
std::vector<int> CollidingHotGroups(int count, uint32_t num_shards) {
  std::vector<int> hot;
  for (int g = 0; static_cast<int>(hot.size()) < count; ++g) {
    Record probe = GroupAdd(g).record;
    if (HashShardRouter::HashKey(StableShardKey(probe)) % num_shards == 0) {
      hot.push_back(g);
    }
  }
  return hot;
}

/// Skewed serving snapshot: a flash crowd over the *whole* colliding
/// hot set, every round. Under static placement one shard re-clusters
/// all of it serially — the straggler that bounds every fork-join
/// round; after rebalancing the same work fans out across shards.
OperationBatch SkewedRound(const BenchArgs& args,
                           const std::vector<int>& hot) {
  OperationBatch ops;
  for (int i = 0; i < args.per_round; ++i) {
    for (int g : hot) ops.push_back(GroupAdd(g));
  }
  return ops;
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() { return i + 1 < argc ? std::atoi(argv[++i]) : 0; };
    if (std::strcmp(argv[i], "--groups") == 0) args.groups = next();
    else if (std::strcmp(argv[i], "--active") == 0) args.active = next();
    else if (std::strcmp(argv[i], "--per-round") == 0) args.per_round = next();
    else if (std::strcmp(argv[i], "--rounds") == 0) args.rounds = next();
    else if (std::strcmp(argv[i], "--repeats") == 0) args.repeats = next();
    else if (std::strcmp(argv[i], "--threads") == 0)
      args.threads = static_cast<uint32_t>(next());
    else if (std::strcmp(argv[i], "--queue-depth") == 0)
      args.queue_depth = static_cast<size_t>(next());
    else if (std::strcmp(argv[i], "--skewed") == 0)
      args.skewed = next() != 0;
    else if (std::strcmp(argv[i], "--hot") == 0)
      args.hot = next();
    else if (std::strcmp(argv[i], "--rebalance-every") == 0)
      args.rebalance_every = static_cast<uint32_t>(next());
    else if (std::strcmp(argv[i], "--replication") == 0)
      args.replication = next() != 0;
    else if (std::strcmp(argv[i], "--catchup-every") == 0)
      args.catchup_every = next();
    else if (std::strcmp(argv[i], "--metrics-overhead") == 0)
      args.metrics_overhead = next() != 0;
    else if (std::strcmp(argv[i], "--sim-core") == 0)
      args.sim_core = next() != 0;
    else if (std::strcmp(argv[i], "--read-path") == 0)
      args.read_path = next() != 0;
    else if (std::strcmp(argv[i], "--read-clients") == 0)
      args.read_clients = next();
    else if (std::strcmp(argv[i], "--read-staleness-bound") == 0)
      args.read_staleness_bound = next();
    else if (std::strcmp(argv[i], "--mode") == 0)
      args.mode = i + 1 < argc ? argv[++i] : "";
    else if (std::strcmp(argv[i], "--backpressure") == 0)
      args.backpressure = i + 1 < argc ? argv[++i] : "";
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }
  if (args.mode != "sync" && args.mode != "async" && args.mode != "both") {
    std::fprintf(stderr, "--mode must be sync, async or both\n");
    return 2;
  }
  if (args.backpressure != "block" && args.backpressure != "reject") {
    std::fprintf(stderr, "--backpressure must be block or reject\n");
    return 2;
  }

  // Banner on stderr: stdout carries exactly one JSON document so the
  // output pipes straight into jq / plotting scripts.
  std::fprintf(stderr, "service scaling — sharded throughput vs shard count\n");

  // Identical batches for every shard count.
  std::vector<OperationBatch> training = {GroupAdds(args.groups, 4),
                                          GroupAdds(args.groups, 2)};
  std::vector<OperationBatch> serving;
  for (int r = 0; r < args.rounds; ++r) {
    serving.push_back(HotRound(args, r));
  }

  // Each configuration keeps its best sweep: the minimum serve time is
  // the standard noise-robust estimator (scheduler interference and cold
  // page faults only ever add time), and the first sweep additionally
  // warms the allocator for the rest.
  std::vector<const char*> modes;
  if (args.mode == "sync" || args.mode == "both") modes.push_back("sync");
  if (args.mode == "async" || args.mode == "both") modes.push_back("async");
  std::vector<Measurement> results;
  for (int rep = 0; rep < std::max(1, args.repeats); ++rep) {
    size_t i = 0;
    for (const char* mode : modes) {
      for (uint32_t shards : {1u, 2u, 4u, 8u}) {
        Measurement m = std::strcmp(mode, "async") == 0
                            ? RunOneAsync(shards, args, training, serving)
                            : RunOne(shards, args, training, serving);
        std::fprintf(stderr,
                     "rep=%d mode=%s shards=%u threads=%zu  %.0f records/sec"
                     " (enqueue p95 %.0f us)\n",
                     rep, m.mode, m.shards, m.threads, m.records_per_sec,
                     m.enqueue_p95_us);
        if (rep == 0) {
          results.push_back(m);
        } else if (m.serve_ms < results[i].serve_ms) {
          results[i] = m;
        }
        ++i;
      }
    }
  }

  // Skewed section: static placement vs rebalanced, 4 shards, identical
  // adversarial stream. The training phase loads a *balanced* background
  // universe (every shard trained — the steady state of a long-running
  // service); then the workload drifts: all serving traffic concentrates
  // on hot groups whose hash placement collides on shard 0.
  Measurement skewed_static, skewed_rebalanced;
  if (args.skewed) {
    const int kBackground = 64;
    std::vector<int> hot = CollidingHotGroups(std::max(2, args.hot), 4);
    std::vector<OperationBatch> skew_training = {GroupAdds(kBackground, 4),
                                                 GroupAdds(kBackground, 2)};
    std::vector<OperationBatch> skew_serving;
    for (int r = 0; r < args.rounds; ++r) {
      skew_serving.push_back(SkewedRound(args, hot));
    }
    for (int rep = 0; rep < std::max(1, args.repeats); ++rep) {
      Measurement st = RunOneSkewed(args, skew_training, skew_serving, 0);
      Measurement rb = RunOneSkewed(args, skew_training, skew_serving,
                                    args.rebalance_every);
      if (rep == 0 || st.serve_ms < skewed_static.serve_ms) {
        skewed_static = st;
      }
      if (rep == 0 || rb.serve_ms < skewed_rebalanced.serve_ms) {
        skewed_rebalanced = rb;
      }
      std::fprintf(stderr,
                   "rep=%d skewed static %.0f rec/s (imb %.2f) vs "
                   "rebalanced %.0f rec/s (imb %.2f, %llu migrations)\n",
                   rep, st.records_per_sec, st.record_imbalance,
                   rb.records_per_sec, rb.record_imbalance,
                   static_cast<unsigned long long>(rb.migrations));
    }
  }

  // Replication section: delta-emit overhead + follower catch-up lag on
  // the plain (unskewed) serving stream.
  ReplicationMeasurement replication;
  if (args.replication) {
    replication = RunReplicated(args, training, serving);
    std::fprintf(stderr,
                 "replication: %.0f rec/s off vs %.0f rec/s on "
                 "(%llu deltas, seal total %.1f ms, max lag %llu epochs, "
                 "catch-up total %.1f ms, identical=%d)\n",
                 replication.off_records_per_sec,
                 replication.on_records_per_sec,
                 static_cast<unsigned long long>(replication.deltas_shipped),
                 replication.seal_ms_total,
                 static_cast<unsigned long long>(replication.max_lag),
                 replication.catchup_ms_total, replication.identical ? 1 : 0);
  }

  // Metrics-overhead guard: registry attached vs compiled-in-but-idle
  // on the plain 4-shard async stream.
  MetricsOverhead overhead;
  if (args.metrics_overhead) {
    overhead = MeasureMetricsOverhead(args, training, serving);
    std::fprintf(stderr,
                 "metrics overhead: idle %.1f ms vs enabled %.1f ms "
                 "(%+.2f%%, within 2%% bar: %s)\n",
                 overhead.idle_ms, overhead.enabled_ms, overhead.overhead_pct,
                 overhead.within_2pct ? "yes" : "no");
  }

  // Read-path section: epoch-pinned reads on primary + 2 followers —
  // ingest regression under a fixed-rate router load, and aggregate
  // read capacity vs the primary alone.
  ReadPathMeasurement read_path;
  if (args.read_path) {
    read_path = MeasureReadPath(args, training, serving);
    std::fprintf(
        stderr,
        "read path: ingest %.0f rec/s bare vs %.0f rec/s under reads "
        "(%+.2f%%); capacity %.0f q/s primary vs %.0f q/s fleet "
        "(%.2fx); %llu routed queries, max staleness %llu (bound %d)\n",
        read_path.baseline.ingest_records_per_sec,
        read_path.with_reads.ingest_records_per_sec,
        read_path.ingest_regression_pct, read_path.single_node_read_qps,
        read_path.fleet_read_qps, read_path.read_scaling_2_followers,
        static_cast<unsigned long long>(read_path.with_reads.router_queries),
        static_cast<unsigned long long>(read_path.max_staleness),
        args.read_staleness_bound);
  }

  // Sim-core section: seed scalar loop vs indexed batch core vs
  // indexed+pruned on the stop-word-key stream.
  SimCoreMeasurement sim_core;
  if (args.sim_core) {
    sim_core = MeasureSimCore(args);
    std::fprintf(stderr,
                 "sim core: seed %.0f rec/s (%llu calls) vs indexed %.0f "
                 "rec/s (identical=%d) vs pruned %.0f rec/s "
                 "(%llu calls, %llu pruned, identical=%d)\n",
                 sim_core.seed.records_per_sec,
                 static_cast<unsigned long long>(sim_core.seed.sim_calls),
                 sim_core.indexed.records_per_sec,
                 sim_core.indexed_identical ? 1 : 0,
                 sim_core.pruned.records_per_sec,
                 static_cast<unsigned long long>(sim_core.pruned.sim_calls),
                 static_cast<unsigned long long>(sim_core.pruned.sim_pruned),
                 sim_core.pruned_identical ? 1 : 0);
  }

  auto rate_of = [&results](const char* mode, uint32_t shards) {
    for (const Measurement& m : results) {
      if (std::strcmp(m.mode, mode) == 0 && m.shards == shards) {
        return m.records_per_sec;
      }
    }
    return 0.0;
  };

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("bench").Value("sharded_throughput");
  json.Key("workload").BeginObject();
  json.Key("groups").Value(args.groups);
  json.Key("active_per_round").Value(args.active);
  json.Key("per_round").Value(args.per_round);
  json.Key("rounds").Value(args.rounds);
  json.Key("queue_depth").Value(args.queue_depth);
  json.Key("backpressure").Value(args.backpressure);
  json.EndObject();
  json.Key("results").BeginArray();
  for (const Measurement& m : results) {
    double base = rate_of(m.mode, 1);
    json.BeginObject();
    json.Key("mode").Value(m.mode);
    json.Key("shards").Value(static_cast<size_t>(m.shards));
    json.Key("threads").Value(m.threads);
    json.Key("records_served").Value(m.records_served);
    json.Key("serve_ms").Value(m.serve_ms);
    json.Key("records_per_sec").Value(m.records_per_sec);
    json.Key("speedup_vs_1").Value(base > 0.0 ? m.records_per_sec / base
                                              : 0.0);
    json.Key("final_objects").Value(m.final_objects);
    json.Key("final_clusters").Value(m.final_clusters);
    json.Key("apply_wall_ms").Value(m.apply_wall_ms);
    json.Key("round_wall_ms").Value(m.round_wall_ms);
    json.Key("recluster_ms").Value(m.recluster_ms);
    json.Key("retrain_ms").Value(m.retrain_ms);
    json.Key("rejected").Value(m.rejected);
    json.Key("probability_evaluations").Value(m.probability_evaluations);
    json.Key("cost_imbalance").Value(m.cost_imbalance);
    json.Key("record_imbalance").Value(m.record_imbalance);
    json.Key("shard_records").BeginArray();
    for (size_t records : m.shard_records) json.Value(records);
    json.EndArray();
    if (std::strcmp(m.mode, "async") == 0) {
      json.Key("enqueue_p50_us").Value(m.enqueue_p50_us);
      json.Key("enqueue_p95_us").Value(m.enqueue_p95_us);
      json.Key("flush_ms").Value(m.flush_ms);
      json.Key("coalesced_ops").Value(static_cast<size_t>(m.coalesced_ops));
      json.Key("worker_rounds").Value(static_cast<size_t>(m.worker_rounds));
      json.Key("rejected_batches")
          .Value(static_cast<size_t>(m.rejected_batches));
      json.Key("queue_high_water").Value(m.queue_high_water);
      // Epoch flush (prefix barrier) next to the old full barrier, plus
      // the backlog the prefix barrier left queued — the point of the
      // feature is exactly this gap.
      json.Key("epoch_flush_ms").Value(m.epoch_flush_ms);
      json.Key("epoch_flush_pending_ops")
          .Value(static_cast<size_t>(m.epoch_flush_pending));
      json.Key("full_flush_ms").Value(m.full_flush_ms);
      json.Key("snapshot_save_ms").Value(m.snapshot_save_ms);
      json.Key("snapshot_load_ms").Value(m.snapshot_load_ms);
      json.Key("snapshot_identical").Value(m.snapshot_identical ? 1 : 0);
    }
    json.EndObject();
  }
  json.EndArray();
  double sync_base = rate_of("sync", 1);
  double sync_at4 = rate_of("sync", 4);
  double async_base = rate_of("async", 1);
  double async_at4 = rate_of("async", 4);
  json.Key("speedup_4_shards_vs_1")
      .Value(sync_base > 0.0 ? sync_at4 / sync_base : 0.0);
  json.Key("async_speedup_4_shards_vs_1")
      .Value(async_base > 0.0 ? async_at4 / async_base : 0.0);
  json.Key("async_vs_sync_at_4")
      .Value(sync_at4 > 0.0 ? async_at4 / sync_at4 : 0.0);
  if (args.skewed) {
    auto write_skewed = [&json](const char* key, const Measurement& m) {
      json.Key(key).BeginObject();
      json.Key("records_per_sec").Value(m.records_per_sec);
      json.Key("serve_ms").Value(m.serve_ms);
      json.Key("apply_wall_ms").Value(m.apply_wall_ms);
      json.Key("round_wall_ms").Value(m.round_wall_ms);
      json.Key("recluster_ms").Value(m.recluster_ms);
      json.Key("records_served").Value(m.records_served);
      json.Key("final_clusters").Value(m.final_clusters);
      json.Key("cost_imbalance").Value(m.cost_imbalance);
      json.Key("record_imbalance").Value(m.record_imbalance);
      json.Key("shard_records").BeginArray();
      for (size_t records : m.shard_records) json.Value(records);
      json.EndArray();
      json.Key("migrations").Value(static_cast<size_t>(m.migrations));
      json.Key("placement_version")
          .Value(static_cast<size_t>(m.placement_version));
      json.EndObject();
    };
    json.Key("skewed").BeginObject();
    json.Key("hot_groups").Value(std::max(2, args.hot));
    json.Key("rebalance_every").Value(static_cast<size_t>(
        args.rebalance_every));
    write_skewed("static", skewed_static);
    write_skewed("rebalanced", skewed_rebalanced);
    json.Key("rebalance_vs_static_at_4")
        .Value(skewed_static.records_per_sec > 0.0
                   ? skewed_rebalanced.records_per_sec /
                         skewed_static.records_per_sec
                   : 0.0);
    json.EndObject();
  }
  if (args.replication) {
    json.Key("replication").BeginObject();
    json.Key("off_records_per_sec").Value(replication.off_records_per_sec);
    json.Key("on_records_per_sec").Value(replication.on_records_per_sec);
    // > 1.0 means shipping cost; the gap is the delta-emit overhead.
    json.Key("emit_overhead_ratio")
        .Value(replication.on_records_per_sec > 0.0
                   ? replication.off_records_per_sec /
                         replication.on_records_per_sec
                   : 0.0);
    json.Key("seal_ms_total").Value(replication.seal_ms_total);
    // The session's attribution of that wall time (service bookkeeping
    // vs delta serialization + write) and the wire bytes shipped.
    json.Key("seal_service_ms_total")
        .Value(replication.seal_service_ms_total);
    json.Key("delta_ship_ms_total").Value(replication.delta_ship_ms_total);
    json.Key("delta_bytes_total")
        .Value(static_cast<size_t>(replication.delta_bytes_total));
    json.Key("deltas_shipped")
        .Value(static_cast<size_t>(replication.deltas_shipped));
    json.Key("pending_at_seals")
        .Value(static_cast<size_t>(replication.pending_at_seals));
    json.Key("catchup_every").Value(static_cast<size_t>(
        std::max(1, args.catchup_every)));
    json.Key("lag_epochs").BeginArray();
    for (uint64_t lag : replication.lag_epochs) {
      json.Value(static_cast<size_t>(lag));
    }
    json.EndArray();
    json.Key("max_lag_epochs")
        .Value(static_cast<size_t>(replication.max_lag));
    json.Key("catchup_ms_total").Value(replication.catchup_ms_total);
    json.Key("follower_epoch")
        .Value(static_cast<size_t>(replication.follower_epoch));
    // Staleness gauges from the follower's own registry at the end of
    // the run (0 behind after the final catch-up; the replay-lag gauge
    // keeps the cost of that last CatchUp pass).
    json.Key("follower_epochs_behind")
        .Value(replication.follower_epochs_behind);
    json.Key("follower_replay_lag_ms")
        .Value(replication.follower_replay_lag_ms);
    json.Key("follower_identical").Value(replication.identical ? 1 : 0);
    json.EndObject();
  }
  if (args.sim_core) {
    auto write_run = [&json](const char* key, const SimCoreRun& r) {
      json.Key(key).BeginObject();
      json.Key("records_per_sec").Value(r.records_per_sec);
      json.Key("serve_ms").Value(r.serve_ms);
      json.Key("records_served").Value(r.records_served);
      json.Key("sim_calls").Value(static_cast<size_t>(r.sim_calls));
      json.Key("sim_full").Value(static_cast<size_t>(r.sim_full));
      json.Key("sim_pruned").Value(static_cast<size_t>(r.sim_pruned));
      json.Key("final_clusters").Value(r.final_clusters);
      json.EndObject();
    };
    json.Key("sim_core").BeginObject();
    write_run("seed", sim_core.seed);
    write_run("indexed", sim_core.indexed);
    write_run("indexed_pruned", sim_core.pruned);
    json.Key("indexed_vs_seed")
        .Value(sim_core.seed.records_per_sec > 0.0
                   ? sim_core.indexed.records_per_sec /
                         sim_core.seed.records_per_sec
                   : 0.0);
    json.Key("pruned_vs_seed")
        .Value(sim_core.seed.records_per_sec > 0.0
                   ? sim_core.pruned.records_per_sec /
                         sim_core.seed.records_per_sec
                   : 0.0);
    // The history payoff in calls: pruning the cold "common" key drops
    // the cross-group candidates outright.
    json.Key("calls_reduction_pct")
        .Value(sim_core.seed.sim_calls > 0
                   ? 100.0 * (1.0 - static_cast<double>(
                                        sim_core.pruned.sim_calls) /
                                        static_cast<double>(
                                            sim_core.seed.sim_calls))
                   : 0.0);
    json.Key("indexed_identical").Value(sim_core.indexed_identical ? 1 : 0);
    json.Key("pruned_identical").Value(sim_core.pruned_identical ? 1 : 0);
    json.EndObject();
  }
  if (args.read_path) {
    json.Key("read_path").BeginObject();
    json.Key("read_clients").Value(std::max(1, args.read_clients));
    json.Key("staleness_bound")
        .Value(static_cast<size_t>(std::max(0, args.read_staleness_bound)));
    json.Key("ingest_baseline_records_per_sec")
        .Value(read_path.baseline.ingest_records_per_sec);
    json.Key("ingest_with_reads_records_per_sec")
        .Value(read_path.with_reads.ingest_records_per_sec);
    json.Key("ingest_regression_pct").Value(read_path.ingest_regression_pct);
    json.Key("ingest_within_2pct")
        .Value(read_path.ingest_within_2pct ? 1 : 0);
    // Aggregate capacity: per-target saturated q/s, measured one target
    // at a time mid-stream (each follower is its own machine in
    // deployment, so capacities add).
    json.Key("primary_read_qps").Value(read_path.single_node_read_qps);
    json.Key("follower_read_qps").BeginArray();
    json.Value(read_path.follower_read_qps[0]);
    json.Value(read_path.follower_read_qps[1]);
    json.EndArray();
    json.Key("single_node_read_qps").Value(read_path.single_node_read_qps);
    json.Key("fleet_read_qps").Value(read_path.fleet_read_qps);
    json.Key("read_scaling_2_followers")
        .Value(read_path.read_scaling_2_followers);
    // Fixed-rate router load: admission accounting and the staleness
    // ceiling actually observed under the bound.
    json.Key("router_queries")
        .Value(static_cast<size_t>(read_path.with_reads.router_queries));
    json.Key("queries_served")
        .Value(static_cast<size_t>(read_path.with_reads.queries_served));
    json.Key("rejected_stale")
        .Value(static_cast<size_t>(read_path.with_reads.rejected_stale));
    json.Key("max_staleness_epochs")
        .Value(static_cast<size_t>(read_path.max_staleness));
    json.Key("staleness_gauge").Value(read_path.with_reads.staleness_gauge);
    json.Key("staleness_within_bound")
        .Value(read_path.max_staleness <=
                       static_cast<uint64_t>(
                           std::max(0, args.read_staleness_bound))
                   ? 1
                   : 0);
    json.Key("primary_view_identical")
        .Value(read_path.primary_view_identical ? 1 : 0);
    json.Key("follower_view_identical")
        .Value(read_path.follower_view_identical ? 1 : 0);
    json.EndObject();
  }
  if (args.metrics_overhead) {
    json.Key("metrics_overhead").BeginObject();
    json.Key("idle_ms").Value(overhead.idle_ms);
    json.Key("enabled_ms").Value(overhead.enabled_ms);
    json.Key("metrics_overhead_pct").Value(overhead.overhead_pct);
    json.Key("within_2pct").Value(overhead.within_2pct ? 1 : 0);
    json.EndObject();
  }
  json.EndObject();
  std::printf("%s\n", json.str().c_str());
  return 0;
}
