// Table 5: Logistic Regression accuracy and recall as a function of the
// fraction of training samples used (5% - 80%) on the Cora, Music and
// Synthetic workloads; evaluation on the withheld 20%.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "eval/confusion.h"
#include "ml/logistic_regression.h"

using namespace dynamicc;

namespace {

void RunDataset(WorkloadKind workload, TableWriter* table) {
  ExperimentConfig config =
      bench::StandardConfig(workload, TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  auto harvest = harness.HarvestSamples(5);
  if (harvest.merge.size() < 50) {
    std::printf("[%s] not enough samples (%zu)\n", WorkloadName(workload),
                harvest.merge.size());
    return;
  }
  size_t test_start = harvest.merge.size() * 4 / 5;
  SampleSet test(harvest.merge.begin() + test_start, harvest.merge.end());
  SampleSet pool(harvest.merge.begin(), harvest.merge.begin() + test_start);

  for (double percent : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    size_t size = std::max<size_t>(
        4, static_cast<size_t>(pool.size() * percent / 80.0));
    size = std::min(size, pool.size());
    SampleSet train(pool.begin(), pool.begin() + size);
    LogisticRegression model;
    model.Fit(train);
    ConfusionMatrix matrix = EvaluateModel(model, test, 0.5);
    table->AddRow({WorkloadName(workload),
                   TableWriter::Num(percent, 0) + "%",
                   TableWriter::Num(matrix.Accuracy(), 2),
                   TableWriter::Num(matrix.Recall(), 2)});
  }
}

}  // namespace

int main() {
  bench::Banner("Table 5",
                "Logistic Regression vs fraction of training samples");
  TableWriter table({"dataset", "fraction", "accuracy", "recall"});
  RunDataset(WorkloadKind::kCora, &table);
  RunDataset(WorkloadKind::kMusic, &table);
  RunDataset(WorkloadKind::kSynthetic, &table);
  table.Print(std::cout);
  bench::Note("shape to check: tiny fractions give a degenerate model "
              "(paper's fails low-recall at 0.15; ours fails low-accuracy "
              "by predicting all-positive — same insufficiency, opposite "
              "bias); both metrics saturate by 40-80% (paper: recall 1.0, "
              "accuracy 0.9+).");
  return 0;
}
