// Figure 5b: re-clustering latency of DBSCAN (batch, from scratch) vs
// DynamicC on the Access workload, as the dataset grows across snapshots.
// The paper also reports an average F1 of 0.988 for DynamicC vs DBSCAN
// across parameter settings; we average over a small (minPts, ε) grid.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "workload/access_like.h"

using namespace dynamicc;

int main() {
  bench::Banner("Figure 5b",
                "DBSCAN vs DynamicC re-clustering latency (Access-like)");

  struct ParamGroup {
    int min_pts;
    double eps_distance;
  };
  std::vector<ParamGroup> grid = {{3, 5.0}, {4, 5.0}, {4, 6.5}};

  double f1_total = 0.0;
  int f1_count = 0;
  bool printed_table = false;
  for (const ParamGroup& params : grid) {
    ExperimentConfig config =
        bench::StandardConfig(WorkloadKind::kAccess, TaskKind::kDbscan);
    config.dbscan.min_pts = params.min_pts;
    config.dbscan.eps_similarity =
        AccessLikeGenerator::SimilarityAtDistance(params.eps_distance);
    ExperimentHarness harness(config);
    Series batch = harness.RunBatch();
    Series dynamicc = harness.RunDynamicC(false);
    for (const auto& point : dynamicc.points) {
      if (static_cast<int>(point.snapshot) <= config.training_rounds) {
        continue;
      }
      f1_total += point.quality.f1;
      ++f1_count;
    }
    if (!printed_table) {
      // Print the latency series for the first parameter group (the
      // figure's curve); remaining groups contribute to the F1 average.
      std::printf("\nminPts=%d, eps(distance)=%.1f:\n", params.min_pts,
                  params.eps_distance);
      bench::PrintLatencyTable({batch, dynamicc});
      printed_table = true;
    }
  }

  std::printf("\naverage F1 of DynamicC vs DBSCAN over %d param groups: "
              "%.3f (paper: 0.988)\n",
              static_cast<int>(grid.size()),
              f1_count == 0 ? 0.0 : f1_total / f1_count);
  bench::Note("shape to check: batch latency grows with dataset size; "
              "DynamicC stays well below after the training snapshots "
              "(paper: 40-60% time saved).");
  return 0;
}
