// Ablation A3 (§5.1): feature importance. Zero out each of the merge
// model's features (f1 avg intra, f2 max avg inter, f3 size, f4 partner
// size) in turn and measure the accuracy/recall drop. The paper observes
// that maximal inter similarity and the sizes carry high weights for
// merge predictions (§6.2).

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "eval/confusion.h"
#include "ml/logistic_regression.h"
#include "util/rng.h"

using namespace dynamicc;

namespace {

SampleSet ZeroFeature(const SampleSet& samples, int feature) {
  SampleSet out = samples;
  if (feature >= 0) {
    for (Sample& sample : out) sample.features[feature] = 0.0;
  }
  return out;
}

}  // namespace

int main() {
  bench::Banner("Ablation A3", "merge-model feature ablation (Cora)");

  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  auto harvest = harness.HarvestSamples(5);
  if (harvest.merge.size() < 40) {
    std::printf("not enough samples\n");
    return 1;
  }

  Rng rng(12);
  SampleSet train, test;
  for (const Sample& sample : harvest.merge) {
    (rng.Chance(0.8) ? train : test).push_back(sample);
  }

  const char* names[] = {"(all features)", "drop f1 avg-intra",
                         "drop f2 max-avg-inter", "drop f3 size",
                         "drop f4 partner-size"};
  TableWriter table({"variant", "accuracy", "recall"});
  for (int variant = -1; variant < 4; ++variant) {
    LogisticRegression model;
    model.Fit(ZeroFeature(train, variant));
    ConfusionMatrix matrix =
        EvaluateModel(model, ZeroFeature(test, variant), 0.5);
    table.AddRow({names[variant + 1], TableWriter::Num(matrix.Accuracy()),
                  TableWriter::Num(matrix.Recall())});
  }
  table.Print(std::cout);
  bench::Note("shape to check: dropping f2 (max average inter similarity) "
              "hurts most — it is the merge signal; f3/f4 matter less; "
              "f1 mostly feeds the split model.");
  return 0;
}
