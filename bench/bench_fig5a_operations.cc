// Figure 5a: the operation mix (adds / removes / updates, in percent of
// the current dataset size) per snapshot, for each of the five datasets.
// Updates appear only in the Synthetic (Febrl) workload.

#include <cstdio>

#include "bench_util.h"
#include "workload/schedule.h"

using namespace dynamicc;

int main() {
  bench::Banner("Figure 5a", "operations per snapshot for each dataset");

  for (const char* name : {"cora", "music", "access", "road", "synthetic"}) {
    std::printf("\n[%s]\n", name);
    TableWriter table({"snapshot", "add%", "remove%", "update%"});
    auto schedule = DefaultSchedule(name);
    for (size_t i = 0; i < schedule.size(); ++i) {
      table.AddRow({std::to_string(i + 1),
                    TableWriter::Num(schedule[i].add_fraction * 100, 0),
                    TableWriter::Num(schedule[i].remove_fraction * 100, 0),
                    TableWriter::Num(schedule[i].update_fraction * 100, 0)});
    }
    table.Print(std::cout);
  }
  bench::Note("shape to check: adds dominate (10-35%), removes stay small, "
              "updates only in the synthetic workload; Cora/Synthetic run 8 "
              "snapshots, the rest 10.");
  return 0;
}
