#ifndef DYNAMICC_BENCH_BENCH_UTIL_H_
#define DYNAMICC_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction binaries. Each binary
// prints (a) a banner naming the paper artifact it regenerates, (b) the
// table/series in the same orientation the paper uses, (c) a short
// "paper-reported vs measured" note where applicable.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/csv.h"

namespace dynamicc {
namespace bench {

inline void Banner(const std::string& artifact, const std::string& what) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("=====================================================\n");
}

/// Default experiment scale per workload: small enough that the whole
/// bench suite runs in minutes, large enough that the paper's shapes
/// (who wins, by what factor) are visible. EXPERIMENTS.md documents the
/// scale-down relative to the paper.
inline size_t DefaultScale(WorkloadKind workload) {
  switch (workload) {
    case WorkloadKind::kCora:
      return 200;
    case WorkloadKind::kMusic:
      return 400;
    case WorkloadKind::kSynthetic:
      return 300;
    case WorkloadKind::kAccess:
      return 400;
    case WorkloadKind::kRoad:
      return 800;
  }
  return 200;
}

inline ExperimentConfig StandardConfig(WorkloadKind workload, TaskKind task) {
  ExperimentConfig config;
  config.workload = workload;
  config.task = task;
  config.scale = DefaultScale(workload);
  config.training_rounds = 2;
  return config;
}

/// Prints one latency/quality row per snapshot for a set of method series
/// (all series must cover the same snapshots).
inline void PrintLatencyTable(const std::vector<Series>& series_list) {
  std::vector<std::string> headers{"snapshot", "objects"};
  for (const auto& series : series_list) {
    headers.push_back(series.method + "_ms");
  }
  TableWriter table(headers);
  size_t rows = series_list.front().points.size();
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{
        std::to_string(series_list.front().points[i].snapshot),
        std::to_string(series_list.front().points[i].num_objects)};
    for (const auto& series : series_list) {
      row.push_back(TableWriter::Num(series.points[i].latency_ms, 1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

/// Prints one objective-score row per snapshot.
inline void PrintObjectiveTable(const std::vector<Series>& series_list,
                                bool sqrt_scores = false) {
  std::vector<std::string> headers{"snapshot", "objects"};
  for (const auto& series : series_list) {
    headers.push_back(series.method + (sqrt_scores ? "_sqrt" : "_score"));
  }
  TableWriter table(headers);
  size_t rows = series_list.front().points.size();
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{
        std::to_string(series_list.front().points[i].snapshot),
        std::to_string(series_list.front().points[i].num_objects)};
    for (const auto& series : series_list) {
      double score = series.points[i].objective;
      row.push_back(TableWriter::Num(sqrt_scores ? std::sqrt(score) : score,
                                     2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

/// Prints one F1 row per snapshot.
inline void PrintF1Table(const std::vector<Series>& series_list) {
  std::vector<std::string> headers{"snapshot"};
  for (const auto& series : series_list) {
    headers.push_back(series.method + "_F1");
  }
  TableWriter table(headers);
  size_t rows = series_list.front().points.size();
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{
        std::to_string(series_list.front().points[i].snapshot)};
    for (const auto& series : series_list) {
      row.push_back(TableWriter::Num(series.points[i].quality.f1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

inline void Note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

/// Minimal JSON emitter for benches whose output is consumed by plotting
/// or CI scripts (throughput sweeps). Handles comma placement; callers
/// keep Begin/End calls balanced. Only the types the benches need.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& name) {
    MaybeComma();
    Append(name);
    out_ += ':';
    need_comma_ = false;
    return *this;
  }

  JsonWriter& Value(const std::string& text) {
    MaybeComma();
    Append(text);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Value(const char* text) { return Value(std::string(text)); }
  JsonWriter& Value(double number) {
    MaybeComma();
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.6g", number);
    out_ += buffer;
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Value(size_t number) {
    MaybeComma();
    out_ += std::to_string(number);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Value(int number) {
    MaybeComma();
    out_ += std::to_string(number);
    need_comma_ = true;
    return *this;
  }
  JsonWriter& Value(bool flag) {
    MaybeComma();
    out_ += flag ? "true" : "false";
    need_comma_ = true;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  JsonWriter& Open(char bracket) {
    MaybeComma();
    out_ += bracket;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& Close(char bracket) {
    out_ += bracket;
    need_comma_ = true;
    return *this;
  }
  void MaybeComma() {
    if (need_comma_) out_ += ',';
  }
  void Append(const std::string& text) {
    out_ += '"';
    for (char c : text) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
  }

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace bench
}  // namespace dynamicc

#endif  // DYNAMICC_BENCH_BENCH_UTIL_H_
