#ifndef DYNAMICC_BENCH_BENCH_UTIL_H_
#define DYNAMICC_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment-reproduction binaries. Each binary
// prints (a) a banner naming the paper artifact it regenerates, (b) the
// table/series in the same orientation the paper uses, (c) a short
// "paper-reported vs measured" note where applicable.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "util/csv.h"

namespace dynamicc {
namespace bench {

inline void Banner(const std::string& artifact, const std::string& what) {
  std::printf("=====================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), what.c_str());
  std::printf("=====================================================\n");
}

/// Default experiment scale per workload: small enough that the whole
/// bench suite runs in minutes, large enough that the paper's shapes
/// (who wins, by what factor) are visible. EXPERIMENTS.md documents the
/// scale-down relative to the paper.
inline size_t DefaultScale(WorkloadKind workload) {
  switch (workload) {
    case WorkloadKind::kCora:
      return 200;
    case WorkloadKind::kMusic:
      return 400;
    case WorkloadKind::kSynthetic:
      return 300;
    case WorkloadKind::kAccess:
      return 400;
    case WorkloadKind::kRoad:
      return 800;
  }
  return 200;
}

inline ExperimentConfig StandardConfig(WorkloadKind workload, TaskKind task) {
  ExperimentConfig config;
  config.workload = workload;
  config.task = task;
  config.scale = DefaultScale(workload);
  config.training_rounds = 2;
  return config;
}

/// Prints one latency/quality row per snapshot for a set of method series
/// (all series must cover the same snapshots).
inline void PrintLatencyTable(const std::vector<Series>& series_list) {
  std::vector<std::string> headers{"snapshot", "objects"};
  for (const auto& series : series_list) {
    headers.push_back(series.method + "_ms");
  }
  TableWriter table(headers);
  size_t rows = series_list.front().points.size();
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{
        std::to_string(series_list.front().points[i].snapshot),
        std::to_string(series_list.front().points[i].num_objects)};
    for (const auto& series : series_list) {
      row.push_back(TableWriter::Num(series.points[i].latency_ms, 1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

/// Prints one objective-score row per snapshot.
inline void PrintObjectiveTable(const std::vector<Series>& series_list,
                                bool sqrt_scores = false) {
  std::vector<std::string> headers{"snapshot", "objects"};
  for (const auto& series : series_list) {
    headers.push_back(series.method + (sqrt_scores ? "_sqrt" : "_score"));
  }
  TableWriter table(headers);
  size_t rows = series_list.front().points.size();
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{
        std::to_string(series_list.front().points[i].snapshot),
        std::to_string(series_list.front().points[i].num_objects)};
    for (const auto& series : series_list) {
      double score = series.points[i].objective;
      row.push_back(TableWriter::Num(sqrt_scores ? std::sqrt(score) : score,
                                     2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

/// Prints one F1 row per snapshot.
inline void PrintF1Table(const std::vector<Series>& series_list) {
  std::vector<std::string> headers{"snapshot"};
  for (const auto& series : series_list) {
    headers.push_back(series.method + "_F1");
  }
  TableWriter table(headers);
  size_t rows = series_list.front().points.size();
  for (size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row{
        std::to_string(series_list.front().points[i].snapshot)};
    for (const auto& series : series_list) {
      row.push_back(TableWriter::Num(series.points[i].quality.f1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

inline void Note(const std::string& text) {
  std::printf("note: %s\n", text.c_str());
}

}  // namespace bench
}  // namespace dynamicc

#endif  // DYNAMICC_BENCH_BENCH_UTIL_H_
