// Figure 5e: k-means re-clustering latency on the Road workload for
// Naive, Greedy and DynamicC. The paper omits Hill-climbing's curve
// because it exceeds 3 hours at their scale; we include the batch column
// for context at our reduced scale but the comparison of interest is
// Naive vs Greedy vs DynamicC.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

int main() {
  bench::Banner("Figure 5e", "k-means re-clustering latency (Road-like)");

  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kRoad, TaskKind::kKMeans);
  config.kmeans_k = 48;
  ExperimentHarness harness(config);

  Series batch = harness.RunBatch();
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dynamicc = harness.RunDynamicC(false);

  bench::PrintLatencyTable({naive, greedy, dynamicc, batch});

  std::printf("\ntotals (post-training snapshots): ");
  double greedy_tail = 0.0, dyn_tail = 0.0;
  for (size_t i = config.training_rounds; i < greedy.points.size(); ++i) {
    greedy_tail += greedy.points[i].latency_ms;
    dyn_tail += dynamicc.points[i].latency_ms;
  }
  std::printf("greedy %.1f ms vs dynamicc %.1f ms (%.0f%% saved)\n",
              greedy_tail, dyn_tail,
              greedy_tail > 0 ? 100.0 * (1.0 - dyn_tail / greedy_tail) : 0.0);
  bench::Note("shape to check: DynamicC significantly below Greedy "
              "(paper: up to 85% faster); Naive is fastest but its quality "
              "collapses (Fig. 5d).");
  return 0;
}
