// Micro-benchmarks of the clustering engine's mutation throughput: the
// O(degree) incremental stats maintenance that every algorithm sits on.

#include <benchmark/benchmark.h>

#include <memory>

#include "cluster/engine.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

struct Scenario {
  Scenario()
      : measure(2.0),
        graph(&dataset, &measure, std::make_unique<GridBlocker>(8.0), 0.05) {
    Rng rng(9);
    for (int blob = 0; blob < 30; ++blob) {
      double cx = rng.Uniform(0.0, 400.0);
      double cy = rng.Uniform(0.0, 400.0);
      for (int i = 0; i < 12; ++i) {
        Record record;
        record.numeric = {cx + rng.Gaussian(0.0, 1.5),
                          cy + rng.Gaussian(0.0, 1.5)};
        graph.AddObject(dataset.Add(record));
      }
    }
  }

  Dataset dataset;
  EuclideanSimilarity measure;
  SimilarityGraph graph;
};

Scenario& SharedScenario() {
  static Scenario* scenario = new Scenario();
  return *scenario;
}

void BM_InitSingletons(benchmark::State& state) {
  Scenario& s = SharedScenario();
  ClusteringEngine engine(&s.graph);
  for (auto _ : state) {
    engine.InitSingletons();
  }
}
BENCHMARK(BM_InitSingletons);

void BM_MergeSplitRoundTrip(benchmark::State& state) {
  Scenario& s = SharedScenario();
  ClusteringEngine engine(&s.graph);
  engine.InitSingletons();
  auto objects = s.graph.Objects();
  ObjectId a = objects[0];
  ObjectId b = objects[1];
  for (auto _ : state) {
    ClusterId merged = engine.Merge(engine.clustering().ClusterOf(a),
                                    engine.clustering().ClusterOf(b));
    engine.SplitOut(merged, {b});
  }
}
BENCHMARK(BM_MergeSplitRoundTrip);

void BM_GraphAddRemove(benchmark::State& state) {
  Scenario& s = SharedScenario();
  Rng rng(11);
  for (auto _ : state) {
    Record record;
    record.numeric = {rng.Uniform(0.0, 400.0), rng.Uniform(0.0, 400.0)};
    ObjectId id = s.dataset.Add(record);
    s.graph.AddObject(id);
    s.graph.RemoveObject(id);
    s.dataset.Remove(id);
  }
}
BENCHMARK(BM_GraphAddRemove);

void BM_SumToCluster(benchmark::State& state) {
  Scenario& s = SharedScenario();
  ClusteringEngine engine(&s.graph);
  engine.InitSingletons();
  // Build one 12-object cluster.
  auto objects = s.graph.Objects();
  ClusterId cluster = engine.clustering().ClusterOf(objects[0]);
  for (int i = 1; i < 12; ++i) {
    cluster = engine.Merge(cluster, engine.clustering().ClusterOf(objects[i]));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.stats().SumToCluster(objects[0], cluster));
  }
}
BENCHMARK(BM_SumToCluster);

}  // namespace
}  // namespace dynamicc
