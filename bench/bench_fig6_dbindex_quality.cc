// Figure 6: DB-index objective score (lower is better) on the Cora, Music
// and Synthetic workloads for Naive, Hill-climbing (batch), Greedy,
// DynamicC(GreedySet) and DynamicC(DynamicSet).

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

namespace {

void RunDataset(WorkloadKind workload) {
  std::printf("\n[%s]\n", WorkloadName(workload));
  ExperimentConfig config =
      bench::StandardConfig(workload, TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  Series batch = harness.RunBatch();
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dyn_greedy_set = harness.RunDynamicC(true);
  Series dyn_dynamic_set = harness.RunDynamicC(false);
  bench::PrintObjectiveTable(
      {naive, batch, greedy, dyn_greedy_set, dyn_dynamic_set});
}

}  // namespace

int main() {
  bench::Banner("Figure 6",
                "DB-index objective on Cora / Music / Synthetic, "
                "five methods (lower is better)");
  RunDataset(WorkloadKind::kCora);
  RunDataset(WorkloadKind::kMusic);
  RunDataset(WorkloadKind::kSynthetic);
  bench::Note("shape to check: Naive worst and worsening; Hill-climbing "
              "(batch) best; Greedy between Naive and DynamicC; "
              "DynamicC(DynamicSet) at or below DynamicC(GreedySet).");
  return 0;
}
