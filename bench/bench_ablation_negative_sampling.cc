// Ablation A2 (§5.3): does weighting "active" clusters higher in negative
// sampling help? Compare the paper's 0.7/0.3 weighting against uniform
// 0.5/0.5 sampling on merge-model accuracy/recall.

#include <cstdio>

#include "bench_util.h"
#include "eval/confusion.h"
#include "ml/logistic_regression.h"
#include "util/rng.h"

using namespace dynamicc;

namespace {

void Evaluate(const char* label, double active_weight,
              double inactive_weight, TableWriter* table) {
  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
  config.trainer.sampling.active_weight = active_weight;
  config.trainer.sampling.inactive_weight = inactive_weight;
  ExperimentHarness harness(config);
  auto harvest = harness.HarvestSamples(5);
  if (harvest.merge.size() < 40) return;

  Rng rng(11);
  SampleSet train, test;
  for (const Sample& sample : harvest.merge) {
    (rng.Chance(0.8) ? train : test).push_back(sample);
  }
  LogisticRegression model;
  model.Fit(train);
  ConfusionMatrix matrix = EvaluateModel(model, test, 0.5);
  table->AddRow({label, std::to_string(harvest.merge.size()),
                 TableWriter::Num(matrix.Accuracy()),
                 TableWriter::Num(matrix.Recall())});
}

}  // namespace

int main() {
  bench::Banner("Ablation A2",
                "active-cluster weighting in negative sampling (Cora)");
  TableWriter table({"weighting", "samples", "accuracy", "recall"});
  Evaluate("paper 0.7/0.3", 0.7, 0.3, &table);
  Evaluate("uniform 0.5/0.5", 0.5, 0.5, &table);
  Evaluate("inverted 0.3/0.7", 0.3, 0.7, &table);
  table.Print(std::cout);
  bench::Note("shape to check: weighting toward active clusters gives "
              "negatives that resemble the hard cases the model actually "
              "sees, typically matching or beating uniform sampling.");
  return 0;
}
