// Ablation A1 (§5.4 trade-off): sweep the decision threshold θ used at
// prediction time and measure DynamicC's latency, verification workload
// (probability evaluations + rejections) and F1. The recall-first θ* from
// training should sit near the quality/efficiency knee.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

int main() {
  bench::Banner("Ablation A1", "theta sweep: quality vs efficiency (Cora)");

  TableWriter table({"theta", "F1(mean)", "latency_ms(total)",
                     "prob_evals", "rejected"});
  for (double theta : {-1.0, 0.05, 0.2, 0.4, 0.6, 0.8}) {
    ExperimentConfig config =
        bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
    config.theta_override = theta;
    config.retrain_every = 0;  // keep the overridden theta in force
    ExperimentHarness harness(config);
    harness.RunBatch();
    Series dynamicc = harness.RunDynamicC(false);

    double f1_total = 0.0, latency = 0.0;
    size_t evals = 0, rejected = 0;
    int count = 0;
    for (const auto& point : dynamicc.points) {
      if (static_cast<int>(point.snapshot) <= config.training_rounds) {
        continue;
      }
      f1_total += point.quality.f1;
      latency += point.latency_ms;
      evals += point.dynamicc.probability_evaluations;
      rejected += point.dynamicc.rejected;
      ++count;
    }
    table.AddRow({theta < 0 ? "theta* (learned)" : TableWriter::Num(theta, 2),
                  TableWriter::Num(count ? f1_total / count : 0.0),
                  TableWriter::Num(latency, 1), std::to_string(evals),
                  std::to_string(rejected)});
  }
  table.Print(std::cout);
  bench::Note("shape to check: tiny theta = more flagged clusters, more "
              "rejected verifications, higher latency at equal F1; large "
              "theta = cheap but quality decays once real changes are "
              "missed. The learned theta* should match the best F1 at "
              "moderate cost.");
  return 0;
}
