// Ablation A5 (§6.2): the merge algorithm restricts partner candidates to
// clusters that are *also* predicted "merge" — the observation that merge
// partners are usually both flagged. Compare against searching all inter
// neighbors.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

int main() {
  bench::Banner("Ablation A5",
                "merge partner candidate restriction (Cora, DB-index)");

  TableWriter table({"candidates", "F1(mean)", "prob_evals",
                     "latency_ms(total)"});
  for (bool restrict_partners : {true, false}) {
    ExperimentConfig config =
        bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
    config.dynamicc.merge.restrict_partners_to_predicted = restrict_partners;
    ExperimentHarness harness(config);
    harness.RunBatch();
    Series dynamicc = harness.RunDynamicC(false);

    double f1_total = 0.0, latency = 0.0;
    size_t evals = 0;
    int count = 0;
    for (const auto& point : dynamicc.points) {
      if (static_cast<int>(point.snapshot) <= config.training_rounds) {
        continue;
      }
      f1_total += point.quality.f1;
      latency += point.latency_ms;
      evals += point.dynamicc.probability_evaluations;
      ++count;
    }
    table.AddRow({restrict_partners ? "predicted-only (paper)"
                                    : "all inter neighbors",
                  TableWriter::Num(count ? f1_total / count : 0.0),
                  std::to_string(evals), TableWriter::Num(latency, 1)});
  }
  table.Print(std::cout);
  bench::Note("shape to check: the restriction cuts partner probability "
              "evaluations with little or no F1 cost — the paper's "
              "search-space reduction in action.");
  return 0;
}
