// Figure 7: DB-index re-clustering latency per snapshot on Cora, Music
// and Synthetic for Naive, Greedy and DynamicC. (The paper omits
// Hill-climbing's curve: >4 hours per dataset at their scale.)

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

namespace {

void RunDataset(WorkloadKind workload) {
  std::printf("\n[%s]\n", WorkloadName(workload));
  ExperimentConfig config =
      bench::StandardConfig(workload, TaskKind::kDbIndex);
  config.compute_quality = false;  // latency-only: skip reference batch runs
  ExperimentHarness harness(config);
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dynamicc = harness.RunDynamicC(false);
  bench::PrintLatencyTable({naive, greedy, dynamicc});

  double greedy_tail = 0.0, dyn_tail = 0.0;
  for (size_t i = config.training_rounds; i < greedy.points.size(); ++i) {
    greedy_tail += greedy.points[i].latency_ms;
    dyn_tail += dynamicc.points[i].latency_ms;
  }
  std::printf("post-training totals: greedy %.1f ms, dynamicc %.1f ms "
              "(%.0f%% saved)\n",
              greedy_tail, dyn_tail,
              greedy_tail > 0 ? 100.0 * (1.0 - dyn_tail / greedy_tail) : 0.0);
}

}  // namespace

int main() {
  bench::Banner("Figure 7",
                "DB-index re-clustering latency, Naive / Greedy / DynamicC");
  RunDataset(WorkloadKind::kCora);
  RunDataset(WorkloadKind::kMusic);
  RunDataset(WorkloadKind::kSynthetic);
  bench::Note("shape to check: Greedy's latency grows fastest with dataset "
              "size; DynamicC stays closer to Naive (paper: ~85% faster "
              "than Greedy); gap widens on Synthetic (denser neighbors).");
  return 0;
}
