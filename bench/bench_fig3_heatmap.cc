// Figure 3: heat map of merge-model prediction performance on testing
// data. The paper reports, over 144 clusters: tn=8, fp=15, fn=1, tp=120,
// i.e. accuracy 0.889, precision 0.89, recall 0.992. We harvest evolution
// samples from the Cora-like workload, hold out 20% as the test set, and
// print the same 2x2 heat-map counts plus the derived metrics.

#include <cstdio>

#include "bench_util.h"
#include "eval/confusion.h"
#include "ml/logistic_regression.h"
#include "util/rng.h"

using namespace dynamicc;

int main() {
  bench::Banner("Figure 3", "merge-model confusion heat map (Cora-like)");

  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  auto harvest = harness.HarvestSamples(/*observed_rounds=*/4);
  std::printf("harvested %zu merge samples from 5 observed batch rounds\n\n",
              harvest.merge.size());

  // Deterministic 80/20 split.
  Rng rng(99);
  SampleSet train, test;
  for (const Sample& sample : harvest.merge) {
    (rng.Chance(0.8) ? train : test).push_back(sample);
  }
  if (test.empty() || train.empty()) {
    std::printf("not enough samples harvested\n");
    return 1;
  }

  LogisticRegression model;
  model.Fit(train);
  ConfusionMatrix matrix = EvaluateModel(model, test, /*theta=*/0.5);

  std::printf("%s\n", matrix.ToString().c_str());
  std::printf("test clusters: %zu\n", matrix.Total());
  std::printf("accuracy  = %.3f   (paper: 0.889)\n", matrix.Accuracy());
  std::printf("precision = %.3f   (paper: 0.890)\n", matrix.Precision());
  std::printf("recall    = %.3f   (paper: 0.992)\n", matrix.Recall());
  bench::Note("shape to check: recall well above accuracy/precision — "
              "missing positives is the rare failure mode.");
  return 0;
}
