// Figure 4 + §5.4 trade-off exploration: different decision thresholds θ
// act like the three classifiers of the figure — the accuracy-optimal one
// misses positives; lowering θ recovers all positives at the cost of
// checking more clusters. We fit the merge model once and sweep θ.

#include <cstdio>

#include "bench_util.h"
#include "eval/confusion.h"
#include "ml/logistic_regression.h"
#include "ml/threshold.h"

using namespace dynamicc;

int main() {
  bench::Banner("Figure 4", "classifier / theta trade-off (Cora-like)");

  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  auto harvest = harness.HarvestSamples(4);
  if (harvest.merge.empty()) {
    std::printf("no samples harvested\n");
    return 1;
  }

  LogisticRegression model;
  model.Fit(harvest.merge);

  ThresholdPolicy policy;
  policy.floor = 1e-4;
  double theta_star = SelectRecallFirstThreshold(model, harvest.merge, policy);

  TableWriter table({"classifier", "theta", "flagged", "recall", "accuracy"});
  auto add_row = [&](const std::string& name, double theta) {
    ConfusionMatrix matrix = EvaluateModel(model, harvest.merge, theta);
    table.AddRow({name, TableWriter::Num(theta),
                  std::to_string(matrix.true_positives +
                                 matrix.false_positives),
                  TableWriter::Num(matrix.Recall()),
                  TableWriter::Num(matrix.Accuracy())});
  };
  add_row("classifier-1 (accuracy-optimal, theta=0.5)", 0.5);
  add_row("classifier-2 (recall-first theta*)", theta_star);
  add_row("classifier-3 (overly lax)", theta_star * 0.25);
  table.Print(std::cout);

  bench::Note("shape to check: classifier-2 reaches recall 1.0 with only a "
              "few extra flagged clusters; classifier-3 also has recall 1.0 "
              "but flags many more (wasted verification).");
  return 0;
}
