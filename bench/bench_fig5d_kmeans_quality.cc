// Figure 5d: square root of the k-means objective (SSE) on the Road
// workload for Naive, Hill-climbing (batch), Greedy, DynamicC(GreedySet)
// and DynamicC(DynamicSet). The paper's shape: Naive drifts upward as
// updates accumulate; every other method stays at the batch level.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

int main() {
  bench::Banner("Figure 5d",
                "sqrt(k-means objective) on Road-like, five methods");

  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kRoad, TaskKind::kKMeans);
  config.kmeans_k = 48;  // one cluster per road at default options
  ExperimentHarness harness(config);

  Series batch = harness.RunBatch();
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dyn_greedy_set = harness.RunDynamicC(/*greedy_set=*/true);
  Series dyn_dynamic_set = harness.RunDynamicC(/*greedy_set=*/false);

  bench::PrintObjectiveTable(
      {naive, batch, greedy, dyn_greedy_set, dyn_dynamic_set},
      /*sqrt_scores=*/true);

  bench::Note("shape to check: Naive's curve rises away from the others as "
              "updates accumulate; batch/Greedy/DynamicC stay close "
              "together (paper: F1 ~1 for all but Naive).");
  return 0;
}
