// Figure 5c: DBSCAN vs DynamicC re-clustering latency on the Road
// workload (3-D road-network points). Same setup as Figure 5b at the
// larger scale; the paper runs 100K-345K points, we default to a reduced
// scale recorded in EXPERIMENTS.md.

#include <cstdio>

#include "bench_util.h"
#include "workload/road_like.h"

using namespace dynamicc;

int main() {
  bench::Banner("Figure 5c",
                "DBSCAN vs DynamicC re-clustering latency (Road-like)");

  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kRoad, TaskKind::kDbscan);
  // Larger than the default bench scale: the from-scratch cost of DBSCAN
  // (re-deriving every ε-neighborhood) needs enough points to pull ahead
  // of DynamicC's per-round overhead, as in the paper's 100K+ runs.
  config.scale = 2500;
  config.dbscan.min_pts = 4;
  // ε as a distance: links consecutive road samples at this density.
  config.dbscan.eps_similarity =
      RoadLikeGenerator::SimilarityAtDistance(10.0);
  ExperimentHarness harness(config);

  Series batch = harness.RunBatch();
  Series dynamicc = harness.RunDynamicC(false);
  bench::PrintLatencyTable({batch, dynamicc});

  double f1_total = 0.0;
  int count = 0;
  for (const auto& point : dynamicc.points) {
    if (static_cast<int>(point.snapshot) <= config.training_rounds) continue;
    f1_total += point.quality.f1;
    ++count;
  }
  std::printf("\naverage F1 of DynamicC vs DBSCAN: %.3f (paper: 0.976)\n",
              count == 0 ? 0.0 : f1_total / count);
  bench::Note("paper scale is 100K-345K points; this run is scaled down "
              "(see EXPERIMENTS.md) — the latency gap shape is what "
              "transfers.");
  return 0;
}
