// Table 2: pair-counting F1 (vs the batch result) per snapshot for Naive,
// Greedy and DynamicC under DB-index clustering on Cora, Music and
// Synthetic. The paper prints the first 5 snapshots; we do the same.

#include <cstdio>

#include "bench_util.h"

using namespace dynamicc;

namespace {

void RunDataset(WorkloadKind workload) {
  std::printf("\n[%s]\n", WorkloadName(workload));
  ExperimentConfig config =
      bench::StandardConfig(workload, TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  harness.RunBatch();  // builds references
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dynamicc = harness.RunDynamicC(false);

  TableWriter table({"snapshot", "Naive", "Greedy", "DynamicC"});
  for (size_t i = 0; i < 5 && i < naive.points.size(); ++i) {
    table.AddRow({std::to_string(i + 1),
                  TableWriter::Num(naive.points[i].quality.f1),
                  TableWriter::Num(greedy.points[i].quality.f1),
                  TableWriter::Num(dynamicc.points[i].quality.f1)});
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  bench::Banner("Table 2", "F1 measure for DB-index clustering "
                           "(first 5 snapshots, F1 vs batch result)");
  RunDataset(WorkloadKind::kCora);
  RunDataset(WorkloadKind::kMusic);
  RunDataset(WorkloadKind::kSynthetic);
  bench::Note("shape to check: Naive decays with every snapshot "
              "(paper: 0.94->0.84 on Cora); Greedy and DynamicC stay near "
              "1, DynamicC a touch above Greedy in most cells. Note the "
              "first 2 snapshots are DynamicC training rounds (batch-served,"
              " F1 = 1 by construction).");
  return 0;
}
