// Table 4: accuracy and recall of Logistic Regression, SVM and Decision
// Tree merge models on the Cora workload as the number of training samples
// grows (the paper: 97 -> 1077 samples as 200 -> 1000 new objects arrive).
// We harvest one large sample pool and train on growing prefixes,
// evaluating on a held-out suffix.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "eval/confusion.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"

using namespace dynamicc;

int main() {
  bench::Banner("Table 4",
                "ML models vs training-set size (Cora-like merge model)");

  ExperimentConfig config =
      bench::StandardConfig(WorkloadKind::kCora, TaskKind::kDbIndex);
  config.scale = 250;
  ExperimentHarness harness(config);
  auto harvest = harness.HarvestSamples(/*observed_rounds=*/6);
  std::printf("harvested %zu merge samples\n\n", harvest.merge.size());

  // Hold out the last 25% for evaluation.
  size_t test_start = harvest.merge.size() * 3 / 4;
  SampleSet test(harvest.merge.begin() + test_start, harvest.merge.end());
  SampleSet pool(harvest.merge.begin(), harvest.merge.begin() + test_start);
  if (pool.size() < 40 || test.empty()) {
    std::printf("not enough samples harvested\n");
    return 1;
  }

  std::vector<size_t> sizes;
  for (double fraction : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    sizes.push_back(std::max<size_t>(10, pool.size() * fraction));
  }

  std::vector<std::unique_ptr<BinaryClassifier>> models;
  models.push_back(std::make_unique<LogisticRegression>());
  models.push_back(std::make_unique<LinearSvm>());
  models.push_back(std::make_unique<DecisionTree>());

  TableWriter table({"model", "samples", "accuracy", "recall"});
  for (auto& model : models) {
    for (size_t size : sizes) {
      SampleSet train(pool.begin(), pool.begin() + size);
      auto fresh = model->Clone();
      fresh->Fit(train);
      ConfusionMatrix matrix = EvaluateModel(*fresh, test, 0.5);
      table.AddRow({fresh->Name(), std::to_string(size),
                    TableWriter::Num(matrix.Accuracy(), 2),
                    TableWriter::Num(matrix.Recall(), 2)});
    }
  }
  table.Print(std::cout);
  bench::Note("shape to check: all three models converge to high accuracy "
              "and recall ~1.0 once enough samples arrive (paper: LR "
              "0.77->0.93 accuracy, 0.25->1.0 recall); training time is "
              "negligible (<1 s for 20K samples).");
  return 0;
}
