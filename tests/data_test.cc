#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/blocking.h"
#include "data/dataset.h"
#include "data/operations.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

Record TokenRecord(std::vector<std::string> tokens) {
  Record record;
  record.tokens = std::move(tokens);
  return record;
}

Record TextRecord(std::string text) {
  Record record;
  record.text = std::move(text);
  return record;
}

Record PointRecord(std::vector<double> numeric) {
  Record record;
  record.numeric = std::move(numeric);
  return record;
}

// ---------------------------------------------------------------- dataset

TEST(Dataset, AssignsSequentialIds) {
  Dataset dataset;
  EXPECT_EQ(dataset.Add(TokenRecord({"a"})), 0u);
  EXPECT_EQ(dataset.Add(TokenRecord({"b"})), 1u);
  EXPECT_EQ(dataset.Add(TokenRecord({"c"})), 2u);
  EXPECT_EQ(dataset.alive_count(), 3u);
  EXPECT_EQ(dataset.total_count(), 3u);
}

TEST(Dataset, RemoveTombstones) {
  Dataset dataset;
  ObjectId id = dataset.Add(TokenRecord({"a"}));
  dataset.Add(TokenRecord({"b"}));
  dataset.Remove(id);
  EXPECT_FALSE(dataset.IsAlive(id));
  EXPECT_EQ(dataset.alive_count(), 1u);
  EXPECT_EQ(dataset.AliveIds(), std::vector<ObjectId>{1});
  // Ids are never reused.
  EXPECT_EQ(dataset.Add(TokenRecord({"c"})), 2u);
}

TEST(Dataset, UpdateKeepsIdAndEntity) {
  Dataset dataset;
  Record original = TokenRecord({"a"});
  original.entity = 42;
  ObjectId id = dataset.Add(original);
  dataset.Update(id, TokenRecord({"b"}));
  EXPECT_EQ(dataset.Get(id).tokens, std::vector<std::string>{"b"});
  EXPECT_EQ(dataset.Get(id).entity, 42u);  // preserved when unset
  EXPECT_EQ(dataset.Get(id).id, id);
}

// ------------------------------------------------------------- similarity

TEST(Jaccard, KnownValues) {
  JaccardSimilarity jaccard;
  EXPECT_DOUBLE_EQ(
      jaccard.Similarity(TokenRecord({"a", "b"}), TokenRecord({"a", "b"})),
      1.0);
  EXPECT_DOUBLE_EQ(
      jaccard.Similarity(TokenRecord({"a", "b"}), TokenRecord({"c"})), 0.0);
  EXPECT_DOUBLE_EQ(
      jaccard.Similarity(TokenRecord({"a", "b", "c"}), TokenRecord({"b", "c",
                                                                    "d"})),
      0.5);
}

TEST(Jaccard, DuplicateTokensCountOnce) {
  JaccardSimilarity jaccard;
  EXPECT_DOUBLE_EQ(
      jaccard.Similarity(TokenRecord({"a", "a"}), TokenRecord({"a"})), 1.0);
}

TEST(TrigramCosine, IdenticalTextIsOne) {
  TrigramCosineSimilarity trigram;
  EXPECT_NEAR(trigram.Similarity(TextRecord("hello world"),
                                 TextRecord("hello world")),
              1.0, 1e-12);
}

TEST(TrigramCosine, DisjointTextIsZero) {
  TrigramCosineSimilarity trigram;
  EXPECT_DOUBLE_EQ(
      trigram.Similarity(TextRecord("aaaa"), TextRecord("zzzz")), 0.0);
}

TEST(TrigramCosine, SmallEditStaysHigh) {
  TrigramCosineSimilarity trigram;
  double s = trigram.Similarity(TextRecord("the velvet sparrows"),
                                TextRecord("the velvet sparrow"));
  EXPECT_GT(s, 0.8);
  EXPECT_LT(s, 1.0);
}

TEST(LevenshteinSim, KnownValues) {
  LevenshteinSimilarity lev;
  EXPECT_DOUBLE_EQ(lev.Similarity(TextRecord("abcd"), TextRecord("abcd")),
                   1.0);
  // kitten -> sitting: distance 3, max length 7.
  EXPECT_NEAR(lev.Similarity(TextRecord("kitten"), TextRecord("sitting")),
              1.0 - 3.0 / 7.0, 1e-12);
}

TEST(EuclideanSim, GaussianKernelValues) {
  EuclideanSimilarity euclid(2.0);
  EXPECT_DOUBLE_EQ(
      euclid.Similarity(PointRecord({0, 0}), PointRecord({0, 0})), 1.0);
  // d = 2 = scale: exp(-4/8) = exp(-0.5).
  EXPECT_NEAR(euclid.Similarity(PointRecord({0, 0}), PointRecord({2, 0})),
              std::exp(-0.5), 1e-12);
  EXPECT_DOUBLE_EQ(EuclideanSimilarity::Distance(PointRecord({0, 3}),
                                                 PointRecord({4, 0})),
                   5.0);
}

TEST(CombinedSim, WeightsAreNormalized) {
  std::vector<std::unique_ptr<SimilarityMeasure>> parts;
  parts.push_back(std::make_unique<JaccardSimilarity>());
  parts.push_back(std::make_unique<JaccardSimilarity>());
  CombinedSimilarity combined(std::move(parts), {2.0, 2.0});
  Record a = TokenRecord({"x", "y"});
  Record b = TokenRecord({"y", "z"});
  JaccardSimilarity jaccard;
  EXPECT_NEAR(combined.Similarity(a, b), jaccard.Similarity(a, b), 1e-12);
}

// Property suite: similarity axioms over random records for each measure.
class SimilarityAxiomsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

std::unique_ptr<SimilarityMeasure> MakeMeasure(int which) {
  switch (which) {
    case 0:
      return std::make_unique<JaccardSimilarity>();
    case 1:
      return std::make_unique<TrigramCosineSimilarity>();
    case 2:
      return std::make_unique<LevenshteinSimilarity>();
    default:
      return std::make_unique<EuclideanSimilarity>(3.0);
  }
}

Record RandomRecord(Rng* rng) {
  Record record;
  size_t tokens = 1 + rng->Index(5);
  for (size_t i = 0; i < tokens; ++i) {
    std::string token;
    for (size_t k = 0; k < 3 + rng->Index(5); ++k) {
      token += static_cast<char>('a' + rng->Index(6));
    }
    record.tokens.push_back(token);
    if (i > 0) record.text += " ";
    record.text += token;
  }
  for (int d = 0; d < 3; ++d) record.numeric.push_back(rng->Uniform(0, 10));
  return record;
}

TEST_P(SimilarityAxiomsTest, RangeSymmetryIdentity) {
  auto [which, seed] = GetParam();
  auto measure = MakeMeasure(which);
  Rng rng(static_cast<uint64_t>(seed));
  for (int i = 0; i < 25; ++i) {
    Record a = RandomRecord(&rng);
    Record b = RandomRecord(&rng);
    double ab = measure->Similarity(a, b);
    double ba = measure->Similarity(b, a);
    EXPECT_NEAR(ab, ba, 1e-12) << measure->Name();
    EXPECT_GE(ab, 0.0) << measure->Name();
    EXPECT_LE(ab, 1.0 + 1e-12) << measure->Name();
    EXPECT_NEAR(measure->Similarity(a, a), 1.0, 1e-9) << measure->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMeasures, SimilarityAxiomsTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(1, 2, 3)));

// --------------------------------------------------------------- blocking

TEST(AllPairsBlocker, ReturnsEveryoneElse) {
  AllPairsBlocker blocker;
  Record a = TokenRecord({"x"});
  a.id = 0;
  Record b = TokenRecord({"y"});
  b.id = 1;
  blocker.Add(a);
  blocker.Add(b);
  auto candidates = blocker.Candidates(a);
  EXPECT_EQ(candidates, std::vector<ObjectId>{1});
}

TEST(TokenBlocker, SharedTokenMakesCandidates) {
  TokenBlocker blocker;
  Record a = TokenRecord({"alpha", "beta"});
  a.id = 0;
  Record b = TokenRecord({"beta", "gamma"});
  b.id = 1;
  Record c = TokenRecord({"delta"});
  c.id = 2;
  blocker.Add(a);
  blocker.Add(b);
  blocker.Add(c);
  auto candidates = blocker.Candidates(a);
  EXPECT_EQ(candidates, std::vector<ObjectId>{1});
  EXPECT_TRUE(blocker.Candidates(c).empty());
}

TEST(TokenBlocker, PrefixKeysCatchTypos) {
  TokenBlocker blocker(/*prefix_len=*/4);
  Record a = TokenRecord({"johnson"});
  a.id = 0;
  Record b = TokenRecord({"johnsen"});
  b.id = 1;
  blocker.Add(a);
  blocker.Add(b);
  EXPECT_EQ(blocker.Candidates(a), std::vector<ObjectId>{1});
}

TEST(TokenBlocker, RemoveUnindexes) {
  TokenBlocker blocker;
  Record a = TokenRecord({"alpha"});
  a.id = 0;
  Record b = TokenRecord({"alpha"});
  b.id = 1;
  blocker.Add(a);
  blocker.Add(b);
  blocker.Remove(b);
  EXPECT_TRUE(blocker.Candidates(a).empty());
}

TEST(TokenBlocker, FallsBackToTextTokens) {
  TokenBlocker blocker;
  Record a = TextRecord("hello world");
  a.id = 0;
  Record b = TextRecord("hello there");
  b.id = 1;
  blocker.Add(a);
  blocker.Add(b);
  EXPECT_EQ(blocker.Candidates(a), std::vector<ObjectId>{1});
}

TEST(GridBlocker, NeighborCellsAreCandidates) {
  GridBlocker blocker(10.0);
  Record a = PointRecord({5, 5, 5});
  a.id = 0;
  Record b = PointRecord({12, 5, 5});  // adjacent cell
  b.id = 1;
  Record c = PointRecord({95, 95, 95});  // far away
  c.id = 2;
  blocker.Add(a);
  blocker.Add(b);
  blocker.Add(c);
  auto candidates = blocker.Candidates(a);
  EXPECT_EQ(candidates, std::vector<ObjectId>{1});
}

TEST(GridBlocker, NegativeCoordinatesWork) {
  GridBlocker blocker(10.0);
  Record a = PointRecord({-5, -5, 0});
  a.id = 0;
  Record b = PointRecord({-12, -5, 0});
  b.id = 1;
  blocker.Add(a);
  blocker.Add(b);
  EXPECT_EQ(blocker.Candidates(a), std::vector<ObjectId>{1});
}

// ------------------------------------------------------- similarity graph

class GraphFixture : public ::testing::Test {
 protected:
  GraphFixture()
      : graph_(&dataset_, &jaccard_, std::make_unique<AllPairsBlocker>(),
               0.1) {}

  ObjectId AddTokens(std::vector<std::string> tokens) {
    ObjectId id = dataset_.Add(TokenRecord(std::move(tokens)));
    graph_.AddObject(id);
    return id;
  }

  Dataset dataset_;
  JaccardSimilarity jaccard_;
  SimilarityGraph graph_;
};

TEST_F(GraphFixture, EdgesAboveThresholdOnly) {
  ObjectId a = AddTokens({"x", "y"});
  ObjectId b = AddTokens({"x", "y"});
  ObjectId c = AddTokens({"z", "w", "v", "u", "t", "s", "r", "q", "p", "x"});
  EXPECT_DOUBLE_EQ(graph_.Similarity(a, b), 1.0);
  // Jaccard(a, c) = 1/11 < 0.1: no edge.
  EXPECT_DOUBLE_EQ(graph_.Similarity(a, c), 0.0);
  EXPECT_EQ(graph_.num_edges(), 1u);
}

TEST_F(GraphFixture, RemoveDropsEdges) {
  ObjectId a = AddTokens({"x", "y"});
  ObjectId b = AddTokens({"x", "y"});
  AddTokens({"x", "y"});
  EXPECT_EQ(graph_.num_edges(), 3u);
  graph_.RemoveObject(b);
  dataset_.Remove(b);
  EXPECT_EQ(graph_.num_edges(), 1u);
  EXPECT_FALSE(graph_.Contains(b));
  EXPECT_DOUBLE_EQ(graph_.Similarity(a, b), 0.0);
}

TEST_F(GraphFixture, UpdateRewiresEdges) {
  ObjectId a = AddTokens({"x", "y"});
  ObjectId b = AddTokens({"x", "y"});
  ObjectId c = AddTokens({"p", "q"});
  EXPECT_DOUBLE_EQ(graph_.Similarity(a, b), 1.0);
  Record old_record = dataset_.Get(b);
  dataset_.Update(b, TokenRecord({"p", "q"}));
  graph_.UpdateObject(b, old_record);
  EXPECT_DOUBLE_EQ(graph_.Similarity(a, b), 0.0);
  EXPECT_DOUBLE_EQ(graph_.Similarity(b, c), 1.0);
}

TEST_F(GraphFixture, SelfSimilarityIsOne) {
  ObjectId a = AddTokens({"x"});
  EXPECT_DOUBLE_EQ(graph_.Similarity(a, a), 1.0);
}

TEST_F(GraphFixture, ConnectedComponents) {
  ObjectId a = AddTokens({"x", "y"});
  ObjectId b = AddTokens({"x", "y"});
  ObjectId c = AddTokens({"p", "q"});
  ObjectId d = AddTokens({"p", "q"});
  ObjectId e = AddTokens({"lonely"});
  auto components = graph_.ConnectedComponents();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<ObjectId>{a, b}));
  EXPECT_EQ(components[1], (std::vector<ObjectId>{c, d}));
  EXPECT_EQ(components[2], (std::vector<ObjectId>{e}));
}

TEST_F(GraphFixture, SumSimilarityTo) {
  ObjectId a = AddTokens({"x", "y"});
  ObjectId b = AddTokens({"x", "y"});
  ObjectId c = AddTokens({"x", "y", "z", "w"});
  double sum = graph_.SumSimilarityTo(a, {b, c});
  EXPECT_NEAR(sum, 1.0 + 0.5, 1e-12);
}

// Property: incremental maintenance matches a graph rebuilt from scratch.
class GraphIncrementalTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphIncrementalTest, MatchesRebuiltGraph) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Dataset dataset;
  JaccardSimilarity measure;
  SimilarityGraph incremental(&dataset, &measure,
                              std::make_unique<AllPairsBlocker>(), 0.1);

  std::vector<ObjectId> alive;
  for (int step = 0; step < 120; ++step) {
    double action = rng.Uniform();
    if (action < 0.6 || alive.size() < 3) {
      std::vector<std::string> tokens;
      for (size_t k = 0; k < 1 + rng.Index(3); ++k) {
        tokens.push_back(std::string(1, static_cast<char>('a' + rng.Index(5))));
      }
      ObjectId id = dataset.Add(TokenRecord(tokens));
      incremental.AddObject(id);
      alive.push_back(id);
    } else if (action < 0.8) {
      size_t pick = rng.Index(alive.size());
      ObjectId id = alive[pick];
      incremental.RemoveObject(id);
      dataset.Remove(id);
      alive.erase(alive.begin() + pick);
    } else {
      ObjectId id = alive[rng.Index(alive.size())];
      Record old_record = dataset.Get(id);
      std::vector<std::string> tokens{
          std::string(1, static_cast<char>('a' + rng.Index(5)))};
      dataset.Update(id, TokenRecord(tokens));
      incremental.UpdateObject(id, old_record);
    }
  }

  // Rebuild from scratch and compare edges.
  SimilarityGraph rebuilt(&dataset, &measure,
                          std::make_unique<AllPairsBlocker>(), 0.1);
  for (ObjectId id : alive) rebuilt.AddObject(id);
  EXPECT_EQ(incremental.num_objects(), rebuilt.num_objects());
  EXPECT_EQ(incremental.num_edges(), rebuilt.num_edges());
  for (ObjectId a : alive) {
    for (ObjectId b : alive) {
      EXPECT_NEAR(incremental.Similarity(a, b), rebuilt.Similarity(a, b),
                  1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphIncrementalTest,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace dynamicc
