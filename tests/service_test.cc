#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "batch/agglomerative.h"
#include "core/session.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/operations.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "eval/pair_metrics.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "service/service_report.h"
#include "service/shard_router.h"
#include "service/sharded_service.h"
#include "service/thread_pool.h"
#include "service_test_util.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

// -------------------------------------------------------------- thread pool

TEST(ThreadPool, ParallelForCoversEveryIndexAcrossRounds) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  for (int round = 0; round < 3; ++round) {
    std::vector<int> hits(64, 0);
    std::atomic<int> total{0};
    pool.ParallelFor(hits.size(), [&](size_t i) {
      hits[i] += 1;
      total.fetch_add(1);
    });
    EXPECT_EQ(total.load(), 64);
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, ParallelForPropagatesTaskExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [](size_t i) {
                                  if (i == 5) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a throwing round.
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&](size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 8);
}

// ------------------------------------------------------------ shard routing

Record TokenRecord(std::vector<std::string> tokens) {
  Record record;
  record.tokens = std::move(tokens);
  return record;
}

TEST(StableShardKey, UsesSmallestLowercaseTokenOrderIndependently) {
  EXPECT_EQ(StableShardKey(TokenRecord({"Beta", "alpha"})), "alpha");
  EXPECT_EQ(StableShardKey(TokenRecord({"alpha", "Beta"})), "alpha");
  // 1-character tokens are not blocking keys (TokenBlocker drops them),
  // so they must not steer routing: these two records share their whole
  // key set {acme, corp} and have to share a shard key too.
  EXPECT_EQ(StableShardKey(TokenRecord({"x", "corp", "acme"})),
            StableShardKey(TokenRecord({"y", "corp", "acme"})));
  Record text_only;
  text_only.text = "The Quick fox";
  EXPECT_EQ(StableShardKey(text_only), "fox");
  Record numeric;
  numeric.numeric = {17.0, 99.0};
  EXPECT_EQ(StableShardKey(numeric, 8.0), "n:2");
  EXPECT_EQ(StableShardKey(Record{}), "");
}

TEST(ShardRouter, HashIsStableAcrossInstancesAndCalls) {
  HashShardRouter a, b;
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    Record record = TokenRecord({"tok" + std::to_string(rng.Index(50)),
                                 "aux" + std::to_string(rng.Index(50))});
    for (uint32_t shards : {1u, 2u, 4u, 8u}) {
      uint32_t first = a.Route(record, shards);
      EXPECT_LT(first, shards);
      EXPECT_EQ(first, a.Route(record, shards)) << "unstable across calls";
      EXPECT_EQ(first, b.Route(record, shards)) << "unstable across instances";
    }
  }
  // Pinned FNV-1a values: routing must not drift across platforms or
  // standard libraries (a drift would reshuffle every persisted shard).
  EXPECT_EQ(HashShardRouter::HashKey(""), 14695981039346656037ull);
  EXPECT_EQ(HashShardRouter::HashKey("a"), 0xaf63dc4c8601ec8cull);
}

TEST(ShardRouter, StableUnderReIngest) {
  // The same content re-ingested later (fresh Record instances, different
  // eventual ids) must land on the same shard.
  HashShardRouter router;
  std::vector<uint32_t> first_pass;
  for (int i = 0; i < 60; ++i) {
    first_pass.push_back(
        router.Route(TokenRecord({"grp" + std::to_string(i % 12)}), 4));
  }
  for (int i = 0; i < 60; ++i) {
    Record again = TokenRecord({"grp" + std::to_string(i % 12)});
    again.id = static_cast<ObjectId>(1000 + i);  // id must not matter
    EXPECT_EQ(router.Route(again, 4), first_pass[i]);
  }
}

TEST(ShardRouter, NeverSplitsABlockingGroupAcrossShards) {
  // Records sharing their blocking key (here: their single token, which
  // TokenBlocker uses as the posting key) must always co-locate.
  HashShardRouter router;
  Rng rng(11);
  for (uint32_t shards : {2u, 3u, 4u, 8u}) {
    std::vector<std::vector<uint32_t>> shard_of_group(20);
    for (int i = 0; i < 200; ++i) {
      int group = static_cast<int>(rng.Index(20));
      Record record = TokenRecord({"block" + std::to_string(group)});
      shard_of_group[group].push_back(router.Route(record, shards));
    }
    for (const auto& placements : shard_of_group) {
      for (uint32_t shard : placements) {
        EXPECT_EQ(shard, placements.front())
            << "blocking group split across shards at N=" << shards;
      }
    }
  }
}

TEST(ShardRouter, RoundRobinDealsEvenly) {
  RoundRobinShardRouter router;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40; ++i) {
    counts[router.Route(Record{}, 4)] += 1;
  }
  EXPECT_EQ(counts, (std::vector<int>{10, 10, 10, 10}));
}

// --------------------- service fixtures: shared via service_test_util.h
// (MakeFactory, GroupAdds, SingleEngineRun — one definition for every
// service suite, so the equivalence claims are pinned against the same
// configuration everywhere.)

// ---------------------------------------------------- sharded equivalence

TEST(ShardedService, MatchesSingleEngineOnPartitionDisjointWorkload) {
  // Acceptance criterion: for N in {1, 2, 4}, the sharded service must
  // produce the single engine's clustering (same cluster count, pair-F1
  // of 1) on a partition-disjoint stream with adds, updates and removes.
  const int kGroups = 12;
  std::vector<OperationBatch> batches;
  batches.push_back(GroupAdds(kGroups, 4));  // training round 1
  batches.push_back(GroupAdds(kGroups, 2));  // training round 2

  // Dynamic snapshot: more adds, plus an update and a remove against the
  // initial batch (global ids 0 .. kGroups*4-1 in ingest order for both
  // the single engine and the service, by the dense-id contract).
  OperationBatch mixed = GroupAdds(kGroups, 1);
  DataOperation update;
  update.kind = DataOperation::Kind::kUpdate;
  update.target = 0;  // first record of group 0, stays in its group
  update.record.entity = 0;
  update.record.tokens = {"grp0", "tag0"};
  mixed.push_back(update);
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = 1;  // first record of group 1
  mixed.push_back(remove);
  batches.push_back(mixed);

  std::vector<std::vector<ObjectId>> reference =
      SingleEngineRun(batches, /*training=*/2);
  ASSERT_EQ(reference.size(), static_cast<size_t>(kGroups));

  for (uint32_t shards : {1u, 2u, 4u}) {
    ShardedDynamicCService::Options options;
    options.num_shards = shards;
    ShardedDynamicCService service(options, nullptr, MakeFactory());

    auto changed = service.ApplyOperations(batches[0]);
    EXPECT_EQ(changed.size(), batches[0].size());
    service.ObserveBatchRound(changed);
    changed = service.ApplyOperations(batches[1]);
    service.ObserveBatchRound(changed);
    EXPECT_TRUE(service.is_trained());
    changed = service.ApplyOperations(batches[2]);
    ServiceReport report = service.DynamicRound(changed);

    std::vector<std::vector<ObjectId>> clusters = service.GlobalClusters();
    EXPECT_EQ(clusters.size(), reference.size()) << "N=" << shards;
    EXPECT_DOUBLE_EQ(PairF1(clusters, reference), 1.0) << "N=" << shards;
    // Identical ids on both paths make the stronger claim checkable too.
    EXPECT_EQ(clusters, reference) << "N=" << shards;

    EXPECT_EQ(report.total_objects, service.total_objects());
    EXPECT_GE(report.wall_ms, 0.0);
    EXPECT_GE(report.total_shard_ms, report.max_shard_ms);
  }
}

TEST(ShardedService, RoutesRemovesAndUpdatesToOwningShard) {
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto ids = service.ApplyOperations(GroupAdds(8, 3));
  ASSERT_EQ(ids.size(), 24u);
  // Global ids are dense and in operation order.
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<ObjectId>(i));
  }
  // Same group => same shard (content-addressed routing).
  for (int g = 0; g < 8; ++g) {
    uint32_t shard = service.ShardOfObject(ids[g]);
    EXPECT_EQ(service.ShardOfObject(ids[g + 8]), shard);
    EXPECT_EQ(service.ShardOfObject(ids[g + 16]), shard);
  }

  size_t before = service.total_objects();
  OperationBatch ops;
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = ids[5];
  ops.push_back(remove);
  DataOperation update;
  update.kind = DataOperation::Kind::kUpdate;
  update.target = ids[6];
  update.record.tokens = {"grp6", "tag6", "extra6"};
  ops.push_back(update);
  auto changed = service.ApplyOperations(ops);
  EXPECT_EQ(changed, std::vector<ObjectId>{ids[6]});
  EXPECT_EQ(service.total_objects(), before - 1);

  // The removed object is gone from its owning shard's dataset; the
  // updated one carries the new content, same global id and shard.
  uint32_t owner = service.ShardOfObject(ids[6]);
  bool found = false;
  for (ObjectId local = 0;
       local < static_cast<ObjectId>(service.dataset(owner).total_count());
       ++local) {
    if (!service.dataset(owner).IsAlive(local)) continue;
    if (service.dataset(owner).Get(local).tokens.size() == 3) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ShardedService, EmptyShardsSitRoundsOut) {
  // 8 shards but only 2 groups: most shards stay empty and must neither
  // train nor serve, while the loaded shards work normally.
  ShardedDynamicCService::Options options;
  options.num_shards = 8;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(GroupAdds(2, 6));
  ServiceReport train = service.ObserveBatchRound(changed);
  EXPECT_GT(train.evolution_steps, 0u);

  changed = service.ApplyOperations(GroupAdds(2, 1));
  ServiceReport report = service.DynamicRound(changed);
  size_t participants = 0;
  for (const auto& stats : report.dynamic_shards) {
    if (stats.participated) ++participants;
    if (stats.objects == 0) {
      EXPECT_FALSE(stats.participated);
    }
  }
  EXPECT_GE(participants, 1u);
  EXPECT_LE(participants, 2u);
  EXPECT_EQ(service.GlobalClusters().size(), 2u);
}

TEST(ShardedService, CleanShardsSkipDynamicRounds) {
  // Change-driven scheduling: only shards hit by operations since their
  // last round participate; a fully clean service does nothing at all,
  // and skipping never changes the clustering (fixpoint idempotence).
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(GroupAdds(8, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(8, 2));
  service.ObserveBatchRound(changed);
  ASSERT_TRUE(service.is_trained());

  // Traffic lands on group 0 only -> exactly its owning shard serves.
  OperationBatch hot;
  for (int i = 0; i < 3; ++i) hot.push_back(GroupAdds(1, 1)[0]);
  changed = service.ApplyOperations(hot);
  uint32_t hot_shard = service.ShardOfObject(changed[0]);
  ServiceReport report = service.DynamicRound(changed);
  for (const auto& stats : report.dynamic_shards) {
    EXPECT_EQ(stats.participated, stats.shard == hot_shard);
  }
  auto clusters = service.GlobalClusters();

  // No operations since: nobody participates, nothing moves.
  ServiceReport idle = service.DynamicRound();
  for (const auto& stats : idle.dynamic_shards) {
    EXPECT_FALSE(stats.participated);
  }
  EXPECT_EQ(idle.combined.probability_evaluations, 0u);
  EXPECT_EQ(service.GlobalClusters(), clusters);
}

TEST(ShardedService, LateArrivingGroupsAreServedViaBatchFallback) {
  // A blocking group whose first records arrive after the training
  // phase may land on a shard that never trained. The service must not
  // strand it as permanent singletons: the shard serves with an
  // observed batch round (used_batch) until it has evolution history.
  ShardedDynamicCService::Options options;
  options.num_shards = 8;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  // Train on group 0 only: at most one shard becomes trained.
  auto changed = service.ApplyOperations(GroupAdds(1, 6));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(1, 3));
  service.ObserveBatchRound(changed);

  // Groups 1..7 arrive afterwards; most land on never-trained shards.
  OperationBatch late = GroupAdds(8, 4);
  changed = service.ApplyOperations(late);
  ServiceReport report = service.DynamicRound(changed);

  bool saw_batch_fallback = false;
  for (const auto& stats : report.dynamic_shards) {
    if (stats.objects > 0) {
      EXPECT_TRUE(stats.participated) << "shard " << stats.shard;
    }
    if (stats.participated && stats.report.used_batch) {
      saw_batch_fallback = true;
    }
  }
  EXPECT_TRUE(saw_batch_fallback);
  // Every group is fully clustered — nothing stranded as singletons.
  EXPECT_EQ(service.GlobalClusters().size(), 8u);
}

TEST(ShardedService, ConcurrentRoundsAreDeterministic) {
  // Concurrency smoke test: many shards on several workers, repeated
  // rounds; two identically-fed services must agree exactly, and the
  // aggregate counters must be consistent with the per-shard reports.
  auto run = [] {
    ShardedDynamicCService::Options options;
    options.num_shards = 8;
    options.num_threads = 4;
    auto service = std::make_unique<ShardedDynamicCService>(
        options, nullptr, MakeFactory());
    auto changed = service->ApplyOperations(GroupAdds(16, 4));
    service->ObserveBatchRound(changed);
    changed = service->ApplyOperations(GroupAdds(16, 2));
    service->ObserveBatchRound(changed);
    for (int round = 0; round < 4; ++round) {
      changed = service->ApplyOperations(GroupAdds(16, 1));
      ServiceReport report = service->DynamicRound(changed);
      size_t merges = 0;
      for (const auto& stats : report.dynamic_shards) {
        merges += stats.report.detail.merges_applied;
      }
      EXPECT_EQ(report.combined.merges_applied, merges);
    }
    return service->GlobalClusters();
  };

  auto first = run();
  auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 16u);
}

}  // namespace
}  // namespace dynamicc
