#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "objective/correlation.h"
#include "objective/db_index.h"
#include "objective/kmeans.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

/// Similarity measure backed by an explicit edge table, keyed by the
/// integer stored in numeric[0]. Lets tests build the paper's worked
/// examples with exact weights.
class TableSimilarity final : public SimilarityMeasure {
 public:
  explicit TableSimilarity(std::map<std::pair<int, int>, double> edges)
      : edges_(std::move(edges)) {}

  double Similarity(const Record& a, const Record& b) const override {
    int x = static_cast<int>(a.numeric[0]);
    int y = static_cast<int>(b.numeric[0]);
    if (x > y) std::swap(x, y);
    auto it = edges_.find({x, y});
    return it == edges_.end() ? 0.0 : it->second;
  }
  const char* Name() const override { return "table"; }

 private:
  std::map<std::pair<int, int>, double> edges_;
};

/// The Figure 2 instance: objects r1..r7, edges r1-r2=0.9, r2-r3=0.9,
/// r4-r5=0.9, r1-r7=1.0, r4-r6=0.7, r5-r6=0.8 (sum 5.2, matching Example
/// 4.1's F(L1) = 5.2).
class PaperExampleFixture : public ::testing::Test {
 protected:
  PaperExampleFixture()
      : measure_({{{1, 2}, 0.9},
                  {{2, 3}, 0.9},
                  {{4, 5}, 0.9},
                  {{1, 7}, 1.0},
                  {{4, 6}, 0.7},
                  {{5, 6}, 0.8}}),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.05) {
    // Object ids 0..6 carry labels 1..7 in numeric[0].
    for (int label = 1; label <= 7; ++label) {
      Record record;
      record.numeric = {static_cast<double>(label)};
      ids_[label] = dataset_.Add(record);
      graph_.AddObject(ids_[label]);
    }
  }

  ObjectId R(int label) { return ids_.at(label); }

  Dataset dataset_;
  TableSimilarity measure_;
  SimilarityGraph graph_;
  std::map<int, ObjectId> ids_;
};

// ------------------------------------------------------------ correlation

TEST_F(PaperExampleFixture, Example41InitialScore) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  CorrelationObjective objective;
  // F(L1) = 0.9 * 3 + 0.8 + 0.7 + 1 = 5.2.
  EXPECT_NEAR(objective.Evaluate(engine), 5.2, 1e-9);
}

TEST_F(PaperExampleFixture, Example41AfterMergingR1R7) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  CorrelationObjective objective;
  double delta = objective.MergeDelta(engine, engine.clustering().ClusterOf(R(1)),
                                      engine.clustering().ClusterOf(R(7)));
  engine.Merge(engine.clustering().ClusterOf(R(1)),
               engine.clustering().ClusterOf(R(7)));
  // F(L2) = 4.2 < 5.2 = F(L1): a better clustering (Example 4.1).
  EXPECT_NEAR(objective.Evaluate(engine), 4.2, 1e-9);
  EXPECT_NEAR(delta, -1.0, 1e-9);
}

TEST_F(PaperExampleFixture, FinalClusteringScoresBest) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  CorrelationObjective objective;
  // Build {r2,r3}, {r4,r5,r6}, {r1,r7} — Figure 2's final clustering.
  engine.Merge(engine.clustering().ClusterOf(R(2)),
               engine.clustering().ClusterOf(R(3)));
  ClusterId c45 = engine.Merge(engine.clustering().ClusterOf(R(4)),
                               engine.clustering().ClusterOf(R(5)));
  engine.Merge(c45, engine.clustering().ClusterOf(R(6)));
  engine.Merge(engine.clustering().ClusterOf(R(1)),
               engine.clustering().ClusterOf(R(7)));
  double final_score = objective.Evaluate(engine);
  EXPECT_NEAR(final_score, 1.6, 1e-9);

  // Any single further change worsens the score.
  ClusterId c1 = engine.clustering().ClusterOf(R(2));
  ClusterId c2 = engine.clustering().ClusterOf(R(4));
  ClusterId c3 = engine.clustering().ClusterOf(R(1));
  EXPECT_GT(objective.MergeDelta(engine, c1, c3), 0.0);
  EXPECT_GT(objective.MergeDelta(engine, c1, c2), 0.0);
  EXPECT_GT(objective.SplitDelta(engine, c2, {R(6)}), 0.0);
  EXPECT_GT(objective.MoveDelta(engine, R(1), c1), 0.0);
}

// Property: deltas equal full re-evaluation differences, for all three
// objectives, over random graphs and random operations.
class DeltaConsistencyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DeltaConsistencyTest, DeltaMatchesRecomputation) {
  auto [objective_kind, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  Dataset dataset;
  EuclideanSimilarity measure(1.5);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.02);
  for (int i = 0; i < 24; ++i) {
    Record record;
    record.numeric = {rng.Uniform(0.0, 8.0), rng.Uniform(0.0, 8.0)};
    graph.AddObject(dataset.Add(record));
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();

  std::unique_ptr<ObjectiveFunction> objective;
  switch (objective_kind) {
    case 0:
      objective = std::make_unique<CorrelationObjective>();
      break;
    case 1:
      objective = std::make_unique<KMeansObjective>(&dataset, 4, 100.0);
      break;
    default:
      objective = std::make_unique<DbIndexObjective>();
      break;
  }

  // Random walk over clusterings, checking one delta per step.
  for (int step = 0; step < 60; ++step) {
    auto ids = engine.clustering().ClusterIds();
    double before = objective->Evaluate(engine);
    double action = rng.Uniform();
    if (action < 0.45 && ids.size() >= 2) {
      ClusterId a = ids[rng.Index(ids.size())];
      ClusterId b = ids[rng.Index(ids.size())];
      if (a == b) continue;
      double delta = objective->MergeDelta(engine, a, b);
      engine.Merge(a, b);
      EXPECT_NEAR(objective->Evaluate(engine) - before, delta, 1e-7)
          << objective->Name() << " merge at step " << step;
    } else if (action < 0.75) {
      ClusterId c = ids[rng.Index(ids.size())];
      if (engine.clustering().ClusterSize(c) < 2) continue;
      std::vector<ObjectId> members(engine.clustering().Members(c).begin(),
                                    engine.clustering().Members(c).end());
      std::vector<ObjectId> part{members[rng.Index(members.size())]};
      if (engine.clustering().ClusterSize(c) > 2 && rng.Chance(0.4)) {
        // occasionally split multi-object parts
        for (ObjectId m : members) {
          if (m != part[0] && part.size() + 1 < members.size() &&
              rng.Chance(0.3)) {
            part.push_back(m);
          }
        }
      }
      double delta = objective->SplitDelta(engine, c, part);
      engine.SplitOut(c, part);
      EXPECT_NEAR(objective->Evaluate(engine) - before, delta, 1e-7)
          << objective->Name() << " split at step " << step;
    } else if (ids.size() >= 2) {
      ClusterId from = ids[rng.Index(ids.size())];
      ClusterId to = ids[rng.Index(ids.size())];
      if (from == to) continue;
      ObjectId member = *engine.clustering().Members(from).begin();
      double delta = objective->MoveDelta(engine, member, to);
      engine.Move(member, to);
      EXPECT_NEAR(objective->Evaluate(engine) - before, delta, 1e-7)
          << objective->Name() << " move at step " << step;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Objectives, DeltaConsistencyTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(1, 2, 3, 4)));

// ----------------------------------------------------------------- kmeans

TEST(KMeansObjective, SseOfKnownClusters) {
  Dataset dataset;
  auto add = [&dataset](double x, double y) {
    Record record;
    record.numeric = {x, y};
    return dataset.Add(record);
  };
  ObjectId a = add(0, 0), b = add(2, 0), c = add(10, 0), d = add(12, 0);
  EuclideanSimilarity measure(3.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.01);
  for (ObjectId id : {a, b, c, d}) graph.AddObject(id);
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  engine.Merge(engine.clustering().ClusterOf(a),
               engine.clustering().ClusterOf(b));
  engine.Merge(engine.clustering().ClusterOf(c),
               engine.clustering().ClusterOf(d));
  KMeansObjective objective(&dataset, 2, 1000.0);
  // Each pair: centroid at midpoint, SSE = 1 + 1 = 2 per cluster.
  EXPECT_NEAR(objective.Sse(engine), 4.0, 1e-9);
  // Exactly k clusters: no penalty.
  EXPECT_NEAR(objective.Evaluate(engine), 4.0, 1e-9);
}

TEST(KMeansObjective, PenaltyDrivesSingletonsToMerge) {
  Dataset dataset;
  auto add = [&dataset](double x) {
    Record record;
    record.numeric = {x};
    return dataset.Add(record);
  };
  ObjectId a = add(0), b = add(1);
  EuclideanSimilarity measure(3.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.01);
  graph.AddObject(a);
  graph.AddObject(b);
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  KMeansObjective objective(&dataset, 1, 1000.0);
  // Two singletons vs target k=1: penalty 1000; merging removes it at the
  // cost of SSE 0.5.
  EXPECT_NEAR(objective.Evaluate(engine), 1000.0, 1e-9);
  double delta = objective.MergeDelta(engine, engine.clustering().ClusterOf(a),
                                      engine.clustering().ClusterOf(b));
  EXPECT_NEAR(delta, 0.5 - 1000.0, 1e-9);
}

// --------------------------------------------------------------- db-index

TEST_F(PaperExampleFixture, DbIndexPrefersPaperClustering) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  DbIndexObjective objective;
  double singleton_score = objective.Evaluate(engine);

  engine.Merge(engine.clustering().ClusterOf(R(2)),
               engine.clustering().ClusterOf(R(3)));
  ClusterId c45 = engine.Merge(engine.clustering().ClusterOf(R(4)),
                               engine.clustering().ClusterOf(R(5)));
  engine.Merge(c45, engine.clustering().ClusterOf(R(6)));
  engine.Merge(engine.clustering().ClusterOf(R(1)),
               engine.clustering().ClusterOf(R(7)));
  double final_score = objective.Evaluate(engine);
  EXPECT_LT(final_score, singleton_score);
}

TEST(DbIndex, MergingNearDuplicateSingletonImproves) {
  // One tight pair plus one singleton near it: merging the singleton in
  // should improve (reduce) the index — the singleton carries the scatter
  // prior and its separation to the pair is tiny.
  Dataset dataset;
  auto add = [&dataset](double x) {
    Record record;
    record.numeric = {x};
    return dataset.Add(record);
  };
  ObjectId a = add(0.0), b = add(0.1), c = add(0.2);
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.01);
  for (ObjectId id : {a, b, c}) graph.AddObject(id);
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  ClusterId ab = engine.Merge(engine.clustering().ClusterOf(a),
                              engine.clustering().ClusterOf(b));
  DbIndexObjective objective;
  double delta =
      objective.MergeDelta(engine, ab, engine.clustering().ClusterOf(c));
  EXPECT_LT(delta, 0.0);
}

TEST(KMeansObjective, CacheSurvivesSetClustering) {
  // Regression test: adopting a *different* Clustering instance (whose
  // cluster ids and versions restart) must not serve stale cached
  // centroids. Epoch tagging makes the cache instance-safe.
  Dataset dataset;
  auto add = [&dataset](double x) {
    Record record;
    record.numeric = {x};
    return dataset.Add(record);
  };
  ObjectId a = add(0), b = add(10), c = add(20), d = add(30);
  EuclideanSimilarity measure(3.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.001);
  for (ObjectId id : {a, b, c, d}) graph.AddObject(id);
  ClusteringEngine engine(&graph);
  KMeansObjective objective(&dataset, 2, 0.0);

  // First partition: {a,b}, {c,d} -> SSE = 50 + 50.
  Clustering first;
  ClusterId f1 = first.CreateCluster();
  ClusterId f2 = first.CreateCluster();
  first.Assign(a, f1);
  first.Assign(b, f1);
  first.Assign(c, f2);
  first.Assign(d, f2);
  engine.SetClustering(first);
  EXPECT_NEAR(objective.Sse(engine), 100.0, 1e-9);

  // Second partition with the same ids but different members:
  // {a,c}, {b,d} -> SSE = 200 + 200.
  Clustering second;
  ClusterId s1 = second.CreateCluster();
  ClusterId s2 = second.CreateCluster();
  second.Assign(a, s1);
  second.Assign(c, s1);
  second.Assign(b, s2);
  second.Assign(d, s2);
  ASSERT_EQ(f1, s1);  // ids collide by construction...
  ASSERT_EQ(f2, s2);
  engine.SetClustering(second);
  EXPECT_NEAR(objective.Sse(engine), 400.0, 1e-9);  // ...but cache must not
}

TEST(Clustering, EpochChangesOnCopy) {
  Clustering original;
  original.CreateSingleton(1);
  Clustering copy = original;
  EXPECT_NE(copy.epoch(), original.epoch());
  Clustering assigned;
  uint64_t before = assigned.epoch();
  assigned = original;
  EXPECT_NE(assigned.epoch(), before);
  EXPECT_NE(assigned.epoch(), original.epoch());
  // Content is still copied faithfully.
  EXPECT_EQ(assigned.ClusterOf(1), original.ClusterOf(1));
}

TEST(DbIndex, EmptyAndSingleClusterEdgeCases) {
  Dataset dataset;
  Record record;
  record.numeric = {0.0};
  ObjectId a = dataset.Add(record);
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.01);
  graph.AddObject(a);
  ClusteringEngine engine(&graph);
  DbIndexObjective objective;
  EXPECT_DOUBLE_EQ(objective.Evaluate(engine), 0.0);  // no clusters
  engine.InitSingletons();
  // One singleton: its scatter prior (default 0.5) is the whole score.
  EXPECT_DOUBLE_EQ(objective.Evaluate(engine), 0.5);
}

TEST(DbIndex, SingletonScatterPriorBalancesDegeneracies) {
  // A tight pair plus a *weakly* similar singleton: merging the stray
  // singleton should NOT improve (junk merge), while a near-duplicate
  // singleton should (see DbIndex.SingletonHasFullScatter).
  Dataset dataset;
  auto add = [&dataset](double x) {
    Record record;
    record.numeric = {x};
    return dataset.Add(record);
  };
  ObjectId a = add(0.0), b = add(0.1), stray = add(2.2);
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.01);
  for (ObjectId id : {a, b, stray}) graph.AddObject(id);
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  ClusterId ab = engine.Merge(engine.clustering().ClusterOf(a),
                              engine.clustering().ClusterOf(b));
  DbIndexObjective objective;
  EXPECT_GT(objective.MergeDelta(engine, ab,
                                 engine.clustering().ClusterOf(stray)),
            0.0);
}

}  // namespace
}  // namespace dynamicc
