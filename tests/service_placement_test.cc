// Dynamic shard placement: the versioned PlacementTable, live group
// migration (ClusteringEngine state surgery + queue replay), and the
// load-aware Rebalancer. The anchor is migration equivalence — after
// moving arbitrary groups between shards, a flush-barrier run must be
// byte-identical to the never-migrated synchronous single-engine run.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/blocking.h"
#include "data/operations.h"
#include "eval/pair_metrics.h"
#include "service/placement.h"
#include "service/rebalancer.h"
#include "service/service_report.h"
#include "service/shard_router.h"
#include "service/sharded_service.h"
#include "service_test_util.h"

namespace dynamicc {
namespace {

// ----------------------------------------------------------- PlacementTable

TEST(PlacementTable, VersionsGrowMonotonicallyAndPinnedViewsStayImmutable) {
  PlacementTable table;
  EXPECT_EQ(table.version(), 0u);
  EXPECT_EQ(table.num_overrides(), 0u);

  PlacementTable::View v0 = table.Current();
  EXPECT_EQ(table.Assign(7, 2), 1u);
  EXPECT_EQ(table.Assign(9, 0), 2u);
  EXPECT_EQ(table.Assign(7, 3), 3u);  // re-assign bumps, overrides

  // The pinned view is copy-on-write: it still sees the world at
  // version 0 even though three successors were published.
  EXPECT_EQ(v0->version, 0u);
  EXPECT_EQ(v0->Find(7), nullptr);

  PlacementTable::View v3 = table.Current();
  EXPECT_EQ(v3->version, 3u);
  ASSERT_NE(v3->Find(7), nullptr);
  EXPECT_EQ(*v3->Find(7), 3u);
  ASSERT_NE(v3->Find(9), nullptr);
  EXPECT_EQ(*v3->Find(9), 0u);
  EXPECT_EQ(v3->Find(8), nullptr);  // unseen group: hash fallback
  EXPECT_EQ(table.num_overrides(), 2u);
}

TEST(ShardRouter, GroupKeyMatchesBlockingKeyHash) {
  // The router's group identity must agree with the data layer's
  // content hash — placement overrides and fallback routing have to
  // name the same groups.
  HashShardRouter router;
  Record record;
  record.tokens = {"grp5", "tag5"};
  EXPECT_EQ(router.GroupKey(record), BlockingKeyHash("grp5"));
  EXPECT_EQ(router.GroupKey(record), StableShardKeyHash(record));
  // Fallback routing reduces exactly this key.
  for (uint32_t shards : {2u, 4u, 8u}) {
    EXPECT_EQ(router.Route(record, shards),
              static_cast<uint32_t>(router.GroupKey(record) % shards));
  }
}

// ------------------------------------------------------ migration mechanics

ShardedDynamicCService::Options SyncOptions(uint32_t shards) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  return options;
}

TEST(GroupMigration, MovesRecordsClustersAndOwnership) {
  ShardedDynamicCService service(SyncOptions(4), nullptr, MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(8, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(8, 2));
  service.ObserveBatchRound(changed);
  service.Flush();

  auto before = service.GlobalClusters();
  uint64_t group = GroupKeyOf(3);
  uint32_t source = service.ShardOfObject(3);  // global id 3 = group 3's 1st
  uint32_t dest = (source + 1) % 4;

  auto report = service.MigrateGroup(group, dest);
  EXPECT_TRUE(report.moved);
  EXPECT_EQ(report.from, source);
  EXPECT_EQ(report.to, dest);
  EXPECT_EQ(report.objects, 6u);   // 4 + 2 records of group 3
  EXPECT_EQ(report.clusters, 1u);  // they formed one cluster
  EXPECT_GT(report.placement_version, 0u);

  // Ownership flipped for every member.
  for (ObjectId id : {3u, 11u, 19u, 27u, 35u, 43u}) {
    EXPECT_EQ(service.ShardOfObject(id), dest) << "id " << id;
  }

  // The clustering is unchanged — state moved, nothing re-clustered.
  EXPECT_EQ(service.GlobalClusters(), before);

  // New adds for the moved group follow the override.
  auto ids = service.ApplyOperations(AddsForGroups({3}, 1));
  EXPECT_EQ(service.ShardOfObject(ids[0]), dest);
  service.Flush();
  EXPECT_EQ(service.GlobalClusters().size(), 8u);
}

TEST(GroupMigration, RemovesAndUpdatesFollowTheMovedGroup) {
  ShardedDynamicCService service(SyncOptions(4), nullptr, MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(6, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(6, 2));
  service.ObserveBatchRound(changed);

  uint64_t group = GroupKeyOf(0);
  uint32_t dest = (service.ShardOfObject(0) + 2) % 4;
  ASSERT_TRUE(service.MigrateGroup(group, dest).moved);

  // Mutate pre-move members after the move: the ops must route to the
  // new owner and apply cleanly.
  OperationBatch ops;
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = 0;
  ops.push_back(remove);
  DataOperation update;
  update.kind = DataOperation::Kind::kUpdate;
  update.target = 6;  // group 0's second record
  update.record.entity = 0;
  update.record.tokens = {"grp0", "tag0"};
  ops.push_back(update);
  size_t before = service.total_objects();
  service.ApplyOperations(ops);
  service.Flush();
  EXPECT_EQ(service.total_objects(), before - 1);
  EXPECT_EQ(service.GlobalClusters().size(), 6u);
}

TEST(GroupMigration, GroupShardTrackingSurvivesTombstonedFirstMembers) {
  // A group whose FIRST-admitted record died keeps migrating correctly:
  // ownership is tracked per group, not inferred from early members
  // (tombstones stay where they died).
  ShardedDynamicCService service(SyncOptions(2), nullptr, MakeFactory());
  auto ids = service.ApplyOperations(GroupAdds(2, 3));
  OperationBatch ops;
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = ids[0];  // group 0's first record
  ops.push_back(remove);
  service.ApplyOperations(ops);

  uint32_t source = service.ShardOfObject(ids[2]);  // an alive member
  uint32_t dest = 1 - source;
  auto first = service.MigrateGroup(GroupKeyOf(0), dest);
  EXPECT_TRUE(first.moved);
  EXPECT_EQ(first.objects, 2u);

  // GroupLoads must attribute the group to its new shard...
  bool found = false;
  for (const auto& load : service.GroupLoads()) {
    if (load.group == GroupKeyOf(0)) {
      EXPECT_EQ(load.shard, dest);
      EXPECT_EQ(load.records, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // ...and a second migration must resolve the source correctly (a
  // first-member lookup would still point at the tombstone's shard).
  auto back = service.MigrateGroup(GroupKeyOf(0), source);
  EXPECT_TRUE(back.moved);
  EXPECT_EQ(back.from, dest);
  EXPECT_EQ(back.objects, 2u);
}

TEST(GroupMigration, UnknownGroupJustPinsPlacement) {
  ShardedDynamicCService service(SyncOptions(4), nullptr, MakeFactory());
  uint64_t group = GroupKeyOf(42);
  auto report = service.MigrateGroup(group, 1);
  EXPECT_FALSE(report.moved);
  EXPECT_EQ(report.objects, 0u);
  EXPECT_EQ(report.placement_version, 1u);

  // The pin takes effect for the group's very first records.
  auto ids = service.ApplyOperations(AddsForGroups({42}, 3));
  for (ObjectId id : ids) EXPECT_EQ(service.ShardOfObject(id), 1u);
}

// ---------------------------------------------------- migration equivalence

std::vector<OperationBatch> EquivalenceStream(int groups) {
  std::vector<OperationBatch> batches;
  batches.push_back(GroupAdds(groups, 4));
  batches.push_back(GroupAdds(groups, 2));
  OperationBatch mixed = GroupAdds(groups, 1);
  DataOperation update;
  update.kind = DataOperation::Kind::kUpdate;
  update.target = 0;
  update.record.entity = 0;
  update.record.tokens = {"grp0", "tag0"};
  mixed.push_back(update);
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = 1;
  mixed.push_back(remove);
  batches.push_back(mixed);
  batches.push_back(GroupAdds(groups, 1));
  return batches;
}

TEST(GroupMigration, FlushAfterArbitraryMigrationsIsByteIdenticalToSync) {
  // The acceptance bar: migrate arbitrary groups around between served
  // snapshots — in sync and async mode alike — and the flush-barrier
  // state must equal the never-migrated single-engine run exactly.
  const int kGroups = 12;
  std::vector<OperationBatch> batches = EquivalenceStream(kGroups);
  std::vector<std::vector<ObjectId>> reference =
      SingleEngineRun(batches, /*training=*/2);
  ASSERT_EQ(reference.size(), static_cast<size_t>(kGroups));

  for (bool async : {false, true}) {
    ShardedDynamicCService::Options options = SyncOptions(4);
    options.async.enabled = async;
    ShardedDynamicCService service(options, nullptr, MakeFactory());

    auto changed = service.ApplyOperations(batches[0]);
    service.ObserveBatchRound(changed);
    changed = service.ApplyOperations(batches[1]);
    service.ObserveBatchRound(changed);
    ASSERT_TRUE(service.is_trained());

    // Scatter every group deterministically before serving traffic.
    for (int g = 0; g < kGroups; ++g) {
      service.MigrateGroup(GroupKeyOf(g), static_cast<uint32_t>(g) % 4);
    }
    changed = service.ApplyOperations(batches[2]);
    if (!async) service.DynamicRound(changed);

    // Move a few groups again mid-serving (possibly racing the async
    // workers), then serve the last snapshot.
    for (int g = 0; g < kGroups; g += 3) {
      service.MigrateGroup(GroupKeyOf(g), static_cast<uint32_t>(g + 1) % 4);
    }
    changed = service.ApplyOperations(batches[3]);
    service.Flush();

    auto clusters = service.GlobalClusters();
    EXPECT_EQ(clusters, reference) << "async=" << async;
    EXPECT_DOUBLE_EQ(PairF1(clusters, reference), 1.0) << "async=" << async;
  }
}

TEST(GroupMigration, ReplaysQueuedOperationsThatRacedTheMove) {
  // Async: enqueue a burst for one group and migrate it immediately —
  // whatever the worker had not yet applied must re-home to the
  // destination's log (replayed_ops) and the flushed state must be
  // complete either way. The race is real, so retry until a migration
  // actually caught a queued tail (with a 600-op burst and an instant
  // migration this happens essentially every attempt).
  bool saw_replay = false;
  for (int attempt = 0; attempt < 10 && !saw_replay; ++attempt) {
    ShardedDynamicCService::Options options = SyncOptions(2);
    options.async.enabled = true;
    options.async.queue_depth = 4096;
    ShardedDynamicCService service(options, nullptr, MakeFactory());
    auto changed = service.ApplyOperations(GroupAdds(4, 3));
    service.ObserveBatchRound(changed);
    changed = service.ApplyOperations(GroupAdds(4, 2));
    service.ObserveBatchRound(changed);

    auto ids = service.Ingest(AddsForGroups({1}, 300)).changed;
    ASSERT_EQ(ids.size(), 300u);
    OperationBatch churn;
    DataOperation remove;
    remove.kind = DataOperation::Kind::kRemove;
    remove.target = ids[0];
    churn.push_back(remove);
    service.Ingest(churn);

    uint32_t source = service.ShardOfObject(ids[0]);
    uint32_t dest = 1 - source;
    auto report = service.MigrateGroup(GroupKeyOf(1), dest);
    EXPECT_TRUE(report.moved);
    EXPECT_GT(report.source_epoch, 0u);
    saw_replay = report.replayed_ops > 0;

    // Every member of the moved group — applied or still queued — now
    // belongs to the destination.
    for (ObjectId id : ids) {
      ASSERT_EQ(service.ShardOfObject(id), dest);
    }

    service.Flush();
    // 4 groups * 5 records + 300 new - 1 removed, nothing lost or
    // double-applied across the replay. (How far the model merges a
    // 300-singleton flash crowd in one round is its own business —
    // byte-equivalence under migration is pinned by the test above at
    // ordinary burst sizes — but every cluster must stay within one
    // shard: similarity never crosses groups, groups never split.)
    EXPECT_EQ(service.total_objects(), 4u * 5u + 300u - 1u);
    auto clusters = service.GlobalClusters();
    EXPECT_GE(clusters.size(), 4u);
    for (const auto& cluster : clusters) {
      uint32_t owner = service.ShardOfObject(cluster.front());
      for (ObjectId id : cluster) {
        ASSERT_EQ(service.ShardOfObject(id), owner);
      }
    }
  }
  EXPECT_TRUE(saw_replay)
      << "no migration ever caught a queued tail in 10 attempts";
}

TEST(GroupMigration, PlacementVersionsAreDeterministic) {
  // Two identically-fed services executing the same migration sequence
  // publish identical version numbers and identical clusterings.
  auto run = [] {
    ShardedDynamicCService service(SyncOptions(4), nullptr, MakeFactory());
    auto changed = service.ApplyOperations(GroupAdds(8, 3));
    service.ObserveBatchRound(changed);
    changed = service.ApplyOperations(GroupAdds(8, 2));
    service.ObserveBatchRound(changed);
    std::vector<uint64_t> versions;
    for (int g = 0; g < 8; ++g) {
      versions.push_back(
          service.MigrateGroup(GroupKeyOf(g), static_cast<uint32_t>(7 - g) % 4)
              .placement_version);
    }
    service.Flush();
    return std::make_pair(versions, service.GlobalClusters());
  };
  auto first = run();
  auto second = run();
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
  for (size_t i = 0; i < first.first.size(); ++i) {
    EXPECT_EQ(first.first[i], static_cast<uint64_t>(i + 1));
  }
}

// --------------------------------------------------------------- rebalancer

TEST(Rebalancer, BalancedLoadYieldsNoMoves) {
  Rebalancer policy(Rebalancer::Options{});
  std::vector<Rebalancer::ShardLoad> shards = {
      {0, 0.0, 100}, {1, 0.0, 98}, {2, 0.0, 102}, {3, 0.0, 100}};
  std::vector<Rebalancer::GroupLoad> groups;
  for (int g = 0; g < 40; ++g) {
    groups.push_back({static_cast<uint64_t>(g), static_cast<uint32_t>(g % 4),
                      10});
  }
  EXPECT_TRUE(policy.PickMoves(shards, groups).empty());
}

TEST(Rebalancer, RelievesTheStragglerGreedily) {
  Rebalancer::Options options;
  options.hysteresis = 1.2;
  options.max_moves = 2;
  Rebalancer policy(options);
  // Shard 0 carries 4 groups of 25; the rest carry 1 group of 10 each.
  std::vector<Rebalancer::ShardLoad> shards = {
      {0, 0.0, 100}, {1, 0.0, 10}, {2, 0.0, 10}, {3, 0.0, 10}};
  std::vector<Rebalancer::GroupLoad> groups = {
      {101, 0, 25}, {102, 0, 25}, {103, 0, 25}, {104, 0, 25},
      {201, 1, 10}, {202, 2, 10}, {203, 3, 10}};
  auto moves = policy.PickMoves(shards, groups);
  ASSERT_EQ(moves.size(), 2u);
  EXPECT_EQ(moves[0].from, 0u);
  EXPECT_EQ(moves[1].from, 0u);
  // Destinations are the two coolest shards, heaviest groups first,
  // ties broken on group hash: fully deterministic.
  EXPECT_EQ(moves[0].group, 101u);
  EXPECT_EQ(moves[1].group, 102u);
  EXPECT_NE(moves[0].to, 0u);
  EXPECT_NE(moves[1].to, moves[0].to);
}

TEST(Rebalancer, OpsMetricRanksByActivityNotSize) {
  // Shard 0 holds few records but churns through operations (hot
  // updates); shard 1 holds many records that never move. kRecords
  // would call shard 1 the straggler — kOps must pick shard 0's hot
  // group instead.
  Rebalancer::Options options;
  options.hysteresis = 1.2;
  options.max_moves = 1;
  options.metric = Rebalancer::LoadMetric::kOps;
  Rebalancer policy(options);
  std::vector<Rebalancer::ShardLoad> shards = {
      {0, 0.0, 30, 900}, {1, 0.0, 200, 210}, {2, 0.0, 30, 30},
      {3, 0.0, 30, 30}};
  std::vector<Rebalancer::GroupLoad> groups = {
      {11, 0, 20, 800},  // small but hot: the move that relieves shard 0
      {12, 0, 10, 100},  {21, 1, 200, 210},
      {31, 2, 30, 30},   {41, 3, 30, 30}};
  auto moves = policy.PickMoves(shards, groups);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 0u);
  EXPECT_EQ(moves[0].group, 11u);
  EXPECT_EQ(moves[0].expected_gain, 800.0);
}

TEST(Rebalancer, OpsMetricStillRespectsMinGroupRecords) {
  Rebalancer::Options options;
  options.hysteresis = 1.1;
  options.metric = Rebalancer::LoadMetric::kOps;
  options.min_group_records = 5;
  Rebalancer policy(options);
  std::vector<Rebalancer::ShardLoad> shards = {{0, 0.0, 4, 1000},
                                               {1, 0.0, 4, 10}};
  // The only hot group is below the record floor: surgery overhead is
  // priced in records, however hot the group runs.
  std::vector<Rebalancer::GroupLoad> groups = {{11, 0, 4, 1000},
                                               {21, 1, 4, 10}};
  EXPECT_TRUE(policy.PickMoves(shards, groups).empty());
}

TEST(ServicePlacement, GroupLoadsCarryAppliedOpCounts) {
  ShardedDynamicCService::Options options;
  options.num_shards = 2;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(4, 2));
  service.ObserveBatchRound(changed);
  // Churn group 0 only: 2 adds + 3 updates on its first record.
  service.ApplyOperations(AddsForGroups({0}, 2));
  OperationBatch updates;
  for (int i = 0; i < 3; ++i) {
    DataOperation op;
    op.kind = DataOperation::Kind::kUpdate;
    op.target = 0;
    op.record.entity = 0;
    op.record.tokens = {"grp0", "tag0"};
    updates.push_back(op);
  }
  service.ApplyOperations(updates);
  service.Flush();

  uint64_t hot = GroupKeyOf(0);
  bool found = false;
  uint64_t total_ops = 0;
  for (const auto& load : service.GroupLoads()) {
    total_ops += load.ops;
    if (load.group == hot) {
      found = true;
      // 2 training adds + 2 churn adds + 3 updates.
      EXPECT_EQ(load.ops, 7u);
      EXPECT_EQ(load.records, 4u);
    } else {
      EXPECT_EQ(load.ops, 2u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(total_ops, service.ingest_stats().applied_ops);
}

TEST(Rebalancer, CostMeasurementsDominateWhenPresent) {
  // Shard 1 has fewer records but a pathological measured cost — the
  // policy must chase cost, not record counts.
  Rebalancer::Options options;
  options.hysteresis = 1.2;
  options.max_moves = 1;
  Rebalancer policy(options);
  std::vector<Rebalancer::ShardLoad> shards = {
      {0, 10.0, 100}, {1, 90.0, 60}, {2, 10.0, 100}, {3, 10.0, 100}};
  std::vector<Rebalancer::GroupLoad> groups = {
      {1, 0, 100}, {2, 1, 30}, {3, 1, 30}, {4, 2, 100}, {5, 3, 100}};
  auto moves = policy.PickMoves(shards, groups);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 1u);
}

TEST(Rebalancer, UnmeasuredStragglerUsesCostPerRecordScaledWeights) {
  // A shard that ingested heavily but never measured a round has
  // cost_ms == 0 while its neighbours carry measured cost. Its load is
  // records scaled by the fleet-wide cost-per-record, and its groups'
  // weights must be in the SAME unit — raw record counts would dwarf
  // millisecond loads and the relief check would reject every move.
  Rebalancer::Options options;
  options.hysteresis = 1.2;
  options.max_moves = 1;
  Rebalancer policy(options);
  std::vector<Rebalancer::ShardLoad> shards = {
      {0, 0.0, 300}, {1, 10.0, 50}, {2, 10.0, 50}, {3, 10.0, 50}};
  // loads (cpr = 30/450): [20, 10, 10, 10] ms; straggler 0 at 1.6x mean.
  std::vector<Rebalancer::GroupLoad> groups = {
      {1, 0, 150}, {2, 0, 75}, {3, 0, 75},
      {4, 1, 50}, {5, 2, 50}, {6, 3, 50}};
  auto moves = policy.PickMoves(shards, groups);
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].from, 0u);
  // Group 1 (weight 10ms) cannot strictly relieve (10 + 10 >= 20); the
  // 75-record groups (5ms) can.
  EXPECT_EQ(moves[0].group, 2u);
}

TEST(Rebalancer, TinyGroupsNeverMove) {
  Rebalancer::Options options;
  options.min_group_records = 5;
  Rebalancer policy(options);
  std::vector<Rebalancer::ShardLoad> shards = {{0, 0.0, 40}, {1, 0.0, 0}};
  std::vector<Rebalancer::GroupLoad> groups;
  for (int g = 0; g < 10; ++g) {
    groups.push_back({static_cast<uint64_t>(g), 0, 4});
  }
  EXPECT_TRUE(policy.PickMoves(shards, groups).empty());
}

// ------------------------------------------------- end-to-end rebalancing

TEST(RebalanceOnce, SpreadsACollidingHotSetAndPreservesTheClustering) {
  // An adversarial workload: 6 groups whose hash placement collides on
  // one shard of 4. RebalanceOnce must spread them and leave the
  // clustering exactly as it was.
  const uint32_t kShards = 4;
  std::vector<int> hot = CollidingGroups(6, 0, kShards, 4096);
  ASSERT_EQ(hot.size(), 6u);

  ShardedDynamicCService::Options options = SyncOptions(kShards);
  options.rebalance.policy.hysteresis = 1.1;
  options.rebalance.policy.max_moves = 8;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(AddsForGroups(hot, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(AddsForGroups(hot, 2));
  service.ObserveBatchRound(changed);
  service.Flush();

  ServiceSnapshot before = service.Snapshot();
  EXPECT_DOUBLE_EQ(before.report.record_imbalance, 4.0)
      << "everything on one shard of four";
  auto clusters_before = service.GlobalClusters();

  auto report = service.RebalanceOnce();
  EXPECT_GE(report.moves.size(), 3u);
  EXPECT_GT(report.record_imbalance_before, report.record_imbalance_after);
  EXPECT_LE(report.record_imbalance_after, 2.0);
  EXPECT_EQ(service.GlobalClusters(), clusters_before);

  // A second pass on the now-balanced placement keeps its hands still.
  auto idle = service.RebalanceOnce();
  EXPECT_TRUE(idle.moves.empty());

  ServiceSnapshot after = service.Snapshot();
  EXPECT_GT(after.report.placement_version, 0u);
  EXPECT_GE(after.report.groups_migrated, 3u);
}

TEST(RebalanceOnce, AutoRebalanceRunsOnTheBarrierCadence) {
  const uint32_t kShards = 4;
  std::vector<int> hot = CollidingGroups(6, 0, kShards, 4096);
  ASSERT_EQ(hot.size(), 6u);

  ShardedDynamicCService::Options options = SyncOptions(kShards);
  options.rebalance.every_rounds = 2;
  options.rebalance.policy.hysteresis = 1.1;
  options.rebalance.policy.max_moves = 8;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(AddsForGroups(hot, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(AddsForGroups(hot, 2));
  service.ObserveBatchRound(changed);

  // Barrier 1: no rebalance yet. Barrier 2: the cadence fires.
  changed = service.ApplyOperations(AddsForGroups(hot, 1));
  ServiceReport first = service.DynamicRound(changed);
  EXPECT_EQ(first.groups_migrated, 0u);
  changed = service.ApplyOperations(AddsForGroups(hot, 1));
  service.DynamicRound(changed);
  ServiceSnapshot snap = service.Snapshot();
  EXPECT_GT(snap.report.groups_migrated, 0u);
  EXPECT_LT(snap.report.record_imbalance, 4.0);
  EXPECT_EQ(snap.clusters.size(), hot.size());
}

// ------------------------------------------------------ adaptive batching

TEST(AdaptiveBatch, BitesGrowUnderBacklogAndStatsSurface) {
  // A single huge enqueue creates deep backlog; with a generous latency
  // target the additive-increase path must fire: the worker's bite
  // grows batch over batch while the backlog outruns it.
  ShardedDynamicCService::Options options = SyncOptions(2);
  options.async.enabled = true;
  options.async.queue_depth = 1u << 20;  // never blocks: pure growth path
  options.async.adaptive_batch = true;
  options.async.min_batch = 4;
  options.async.target_round_ms = 1e9;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(GroupAdds(6, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(6, 2));
  service.ObserveBatchRound(changed);
  service.Flush();

  service.ApplyOperations(GroupAdds(6, 150));  // 900 ops of backlog
  service.Flush();
  IngestStats stats = service.ingest_stats();
  EXPECT_GT(stats.batch_grows, 0u);
  EXPECT_EQ(stats.batch_shrinks, 0u);
  EXPECT_GE(stats.adaptive_batch_max, stats.adaptive_batch_min);
  EXPECT_GT(stats.adaptive_batch_min, options.async.min_batch);
  EXPECT_EQ(service.GlobalClusters().size(), 6u);
}

TEST(AdaptiveBatch, AimdPolicyIsDeterministic) {
  // The policy itself, without timing: additive increase under backlog,
  // multiplicative decrease past the latency target, clamped to
  // [min_batch, max_batch or queue_depth].
  ShardedDynamicCService::AsyncOptions options;
  options.adaptive_batch = true;
  options.min_batch = 8;
  options.max_batch = 64;
  options.target_round_ms = 4.0;

  // Fast round + backlog: grow by min_batch.
  auto grown = ShardedDynamicCService::NextAdaptiveBite(8, 1.0, 100, options);
  EXPECT_TRUE(grown.grew);
  EXPECT_EQ(grown.bite, 16u);
  // Fast round, backlog already covered: hold.
  auto held = ShardedDynamicCService::NextAdaptiveBite(16, 1.0, 10, options);
  EXPECT_FALSE(held.grew);
  EXPECT_FALSE(held.shrank);
  EXPECT_EQ(held.bite, 16u);
  // Slow round: halve, repeatedly, but never below the floor.
  auto shrunk = ShardedDynamicCService::NextAdaptiveBite(64, 9.0, 500, options);
  EXPECT_TRUE(shrunk.shrank);
  EXPECT_EQ(shrunk.bite, 32u);
  shrunk = ShardedDynamicCService::NextAdaptiveBite(shrunk.bite, 9.0, 500,
                                                    options);
  EXPECT_EQ(shrunk.bite, 16u);
  shrunk = ShardedDynamicCService::NextAdaptiveBite(shrunk.bite, 9.0, 500,
                                                    options);
  EXPECT_EQ(shrunk.bite, 8u);
  auto floored = ShardedDynamicCService::NextAdaptiveBite(8, 9.0, 500, options);
  EXPECT_FALSE(floored.shrank);
  EXPECT_EQ(floored.bite, 8u);
  // Growth saturates at the ceiling.
  auto capped = ShardedDynamicCService::NextAdaptiveBite(64, 1.0, 500, options);
  EXPECT_FALSE(capped.grew);
  EXPECT_EQ(capped.bite, 64u);
  // Without an explicit max_batch the queue depth is the ceiling.
  options.max_batch = 0;
  options.queue_depth = 32;
  auto by_depth = ShardedDynamicCService::NextAdaptiveBite(30, 1.0, 500,
                                                           options);
  EXPECT_TRUE(by_depth.grew);
  EXPECT_EQ(by_depth.bite, 32u);
}

// ----------------------------------------------------- report imbalance

TEST(ServiceReport, ImbalanceRatiosSurfaceSkew) {
  // All records on one of two shards: record imbalance is exactly 2.
  ShardedDynamicCService service(SyncOptions(2), nullptr, MakeFactory());
  std::vector<int> hot = CollidingGroups(3, 0, 2, 64);
  ASSERT_EQ(hot.size(), 3u);
  auto changed = service.ApplyOperations(AddsForGroups(hot, 4));
  ServiceReport train = service.ObserveBatchRound(changed);
  EXPECT_DOUBLE_EQ(train.record_imbalance, 2.0);
  EXPECT_GE(train.cost_imbalance, 1.0);
  EXPECT_EQ(train.placement_version, 0u);
  EXPECT_EQ(train.groups_migrated, 0u);
}

}  // namespace
}  // namespace dynamicc
