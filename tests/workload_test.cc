#include <cmath>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "workload/access_like.h"
#include "workload/cora_like.h"
#include "workload/distributions.h"
#include "workload/febrl.h"
#include "workload/musicbrainz_like.h"
#include "workload/road_like.h"
#include "workload/schedule.h"

namespace dynamicc {
namespace {

// ----------------------------------------------------------- distributions

TEST(ZipfSampler, RankOneIsMostFrequent) {
  Rng rng(1);
  ZipfSampler zipf(50, 1.2);
  std::unordered_map<size_t, int> counts;
  for (int i = 0; i < 5000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[1], counts[20]);
}

TEST(SampleDuplicateCount, RespectsBounds) {
  Rng rng(2);
  for (auto distribution :
       {DuplicateDistribution::kUniform, DuplicateDistribution::kPoisson,
        DuplicateDistribution::kZipf}) {
    for (int i = 0; i < 200; ++i) {
      int count = SampleDuplicateCount(distribution, 2.0, 5, &rng);
      EXPECT_GE(count, 0);
      EXPECT_LE(count, 5);
    }
  }
}

TEST(ApplyTypo, ChangesWordButNotDrastically) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string word = "johnson";
    std::string typo = ApplyTypo(word, &rng);
    EXPECT_GE(typo.size(), word.size() - 1);
    EXPECT_LE(typo.size(), word.size() + 1);
  }
}

TEST(ApplyTypo, ShortWordsUnchanged) {
  Rng rng(4);
  EXPECT_EQ(ApplyTypo("a", &rng), "a");
}

// ---------------------------------------------------------------- schedule

TEST(DefaultSchedule, MatchesPaperSnapshotCounts) {
  // Fig. 5a: Cora and Synthetic run 8 snapshots, the others 10.
  EXPECT_EQ(DefaultSchedule("cora").size(), 8u);
  EXPECT_EQ(DefaultSchedule("music").size(), 10u);
  EXPECT_EQ(DefaultSchedule("access").size(), 10u);
  EXPECT_EQ(DefaultSchedule("road").size(), 10u);
  EXPECT_EQ(DefaultSchedule("synthetic").size(), 8u);
}

TEST(DefaultSchedule, OnlySyntheticHasUpdates) {
  for (const auto& name : {"cora", "music", "access", "road"}) {
    for (const auto& spec : DefaultSchedule(name)) {
      EXPECT_DOUBLE_EQ(spec.update_fraction, 0.0) << name;
    }
  }
  bool any_update = false;
  for (const auto& spec : DefaultSchedule("synthetic")) {
    if (spec.update_fraction > 0.0) any_update = true;
  }
  EXPECT_TRUE(any_update);
}

TEST(DefaultSchedule, FractionsWithinFigure5aRange) {
  for (const auto& name : {"cora", "music", "access", "road", "synthetic"}) {
    for (const auto& spec : DefaultSchedule(name)) {
      EXPECT_GT(spec.add_fraction, 0.0) << name;
      EXPECT_LE(spec.add_fraction, 0.35) << name;
      EXPECT_LE(spec.remove_fraction, 0.35) << name;
      EXPECT_LE(spec.update_fraction, 0.35) << name;
    }
  }
}

// ------------------------------------------------------- stream invariants

/// Applies a stream to a Dataset, checking the id contract: every remove /
/// update targets an id that is alive at that point.
void ValidateStream(const WorkloadStream& stream) {
  Dataset dataset;
  auto apply = [&dataset](const OperationBatch& batch) {
    for (const DataOperation& op : batch) {
      switch (op.kind) {
        case DataOperation::Kind::kAdd:
          dataset.Add(op.record);
          break;
        case DataOperation::Kind::kRemove:
          ASSERT_TRUE(dataset.IsAlive(op.target));
          dataset.Remove(op.target);
          break;
        case DataOperation::Kind::kUpdate:
          ASSERT_TRUE(dataset.IsAlive(op.target));
          dataset.Update(op.target, op.record);
          break;
      }
    }
  };
  apply(stream.initial);
  for (const auto& batch : stream.snapshots) apply(batch);
  EXPECT_GT(dataset.alive_count(), 0u);
}

template <typename Generator>
void ExpectDeterministic() {
  Generator g1, g2;
  WorkloadStream s1 = g1.Generate();
  WorkloadStream s2 = g2.Generate();
  ASSERT_EQ(s1.initial.size(), s2.initial.size());
  ASSERT_EQ(s1.snapshots.size(), s2.snapshots.size());
  for (size_t i = 0; i < s1.initial.size(); ++i) {
    EXPECT_EQ(s1.initial[i].record.text, s2.initial[i].record.text);
    EXPECT_EQ(s1.initial[i].record.numeric, s2.initial[i].record.numeric);
  }
}

TEST(CoraLike, StreamIsValidAndDeterministic) {
  CoraLikeGenerator generator;
  ValidateStream(generator.Generate());
  ExpectDeterministic<CoraLikeGenerator>();
}

TEST(CoraLike, RecordsHaveTokensAndEntities) {
  CoraLikeGenerator generator;
  WorkloadStream stream = generator.Generate();
  size_t with_entity = 0;
  for (const auto& op : stream.initial) {
    EXPECT_FALSE(op.record.tokens.empty());
    if (op.record.entity > 0) ++with_entity;
  }
  EXPECT_EQ(with_entity, stream.initial.size());
}

TEST(CoraLike, DuplicatesShareEntities) {
  CoraLikeGenerator generator;
  WorkloadStream stream = generator.Generate();
  std::unordered_map<uint32_t, int> entity_counts;
  for (const auto& op : stream.initial) ++entity_counts[op.record.entity];
  int multi = 0;
  for (const auto& [entity, count] : entity_counts) {
    (void)entity;
    if (count >= 2) ++multi;
  }
  EXPECT_GT(multi, 5);  // zipf duplicates: several entities repeat
}

TEST(MusicLike, StreamIsValidAndDeterministic) {
  MusicBrainzLikeGenerator generator;
  ValidateStream(generator.Generate());
  ExpectDeterministic<MusicBrainzLikeGenerator>();
}

TEST(MusicLike, RecordsAreTextual) {
  MusicBrainzLikeGenerator generator;
  WorkloadStream stream = generator.Generate();
  for (const auto& op : stream.initial) {
    EXPECT_FALSE(op.record.text.empty());
    EXPECT_NE(op.record.text.find(" - "), std::string::npos);
  }
}

TEST(Febrl, StreamIsValidAndDeterministic) {
  FebrlGenerator generator;
  ValidateStream(generator.Generate());
  ExpectDeterministic<FebrlGenerator>();
}

TEST(Febrl, HasUpdateOperations) {
  FebrlGenerator generator;
  WorkloadStream stream = generator.Generate();
  size_t updates = 0;
  for (const auto& batch : stream.snapshots) {
    for (const auto& op : batch) {
      if (op.kind == DataOperation::Kind::kUpdate) ++updates;
    }
  }
  EXPECT_GT(updates, 0u);
}

TEST(Febrl, UpdatePreservesEntity) {
  FebrlGenerator generator;
  WorkloadStream stream = generator.Generate();
  // Track entity per id through the stream.
  std::unordered_map<ObjectId, uint32_t> entity_of;
  ObjectId next_id = 0;
  auto process = [&](const OperationBatch& batch) {
    for (const auto& op : batch) {
      if (op.kind == DataOperation::Kind::kAdd) {
        entity_of[next_id++] = op.record.entity;
      } else if (op.kind == DataOperation::Kind::kUpdate) {
        EXPECT_EQ(op.record.entity, entity_of.at(op.target));
      }
    }
  };
  process(stream.initial);
  for (const auto& batch : stream.snapshots) process(batch);
}

TEST(AccessLike, StreamIsValidAndNumeric) {
  AccessLikeGenerator generator;
  WorkloadStream stream = generator.Generate();
  ValidateStream(stream);
  for (const auto& op : stream.initial) {
    EXPECT_EQ(op.record.numeric.size(), 4u);
  }
}

TEST(AccessLike, PointsClusterAroundComponents) {
  AccessLikeGenerator::Options options;
  options.initial_count = 400;
  AccessLikeGenerator generator(options);
  WorkloadStream stream = generator.Generate();
  // Points of the same entity are close; different entities usually far.
  std::unordered_map<uint32_t, std::vector<const Record*>> by_entity;
  for (const auto& op : stream.initial) {
    by_entity[op.record.entity].push_back(&op.record);
  }
  double max_intra = 0.0;
  for (const auto& [entity, records] : by_entity) {
    (void)entity;
    for (size_t i = 0; i + 1 < records.size(); ++i) {
      double d = 0;
      for (size_t k = 0; k < 4; ++k) {
        double diff = records[i]->numeric[k] - records[i + 1]->numeric[k];
        d += diff * diff;
      }
      max_intra = std::max(max_intra, std::sqrt(d));
    }
  }
  EXPECT_LT(max_intra, 25.0);  // within ~6 sigma of stddev 2 in 4-D
}

TEST(AccessLike, SimilarityAtDistanceIsMonotone) {
  EXPECT_GT(AccessLikeGenerator::SimilarityAtDistance(1.0),
            AccessLikeGenerator::SimilarityAtDistance(5.0));
  EXPECT_NEAR(AccessLikeGenerator::SimilarityAtDistance(0.0), 1.0, 1e-12);
}

TEST(RoadLike, StreamIsValidAnd3D) {
  RoadLikeGenerator generator;
  WorkloadStream stream = generator.Generate();
  ValidateStream(stream);
  for (const auto& op : stream.initial) {
    if (op.kind == DataOperation::Kind::kAdd) {
      EXPECT_EQ(op.record.numeric.size(), 3u);
    }
  }
}

TEST(RoadLike, PointsFollowRoads) {
  RoadLikeGenerator generator;
  WorkloadStream stream = generator.Generate();
  // Entities (roads) should each contribute many points.
  std::unordered_map<uint32_t, int> per_road;
  for (const auto& op : stream.initial) ++per_road[op.record.entity];
  EXPECT_GT(per_road.size(), 10u);
}

TEST(Profiles, ProvideMeasureAndBlocker) {
  std::vector<DatasetProfile> profiles;
  profiles.push_back(CoraLikeGenerator::Profile());
  profiles.push_back(MusicBrainzLikeGenerator::Profile());
  profiles.push_back(FebrlGenerator::Profile());
  profiles.push_back(AccessLikeGenerator::Profile());
  profiles.push_back(RoadLikeGenerator::Profile());
  for (const auto& profile : profiles) {
    EXPECT_NE(profile.measure, nullptr);
    EXPECT_NE(profile.blocker, nullptr);
    EXPECT_GT(profile.min_similarity, 0.0);
    EXPECT_LT(profile.min_similarity, 1.0);
  }
}

TEST(StreamGrowth, ApproximatesPaperTrajectories) {
  // Initial -> final sizes should grow by roughly the paper's factors
  // (Cora 279 -> 1879 is ~6.7x over 8 snapshots at our default mixes the
  // growth lands in the same ballpark).
  CoraLikeGenerator cora;
  WorkloadStream stream = cora.Generate();
  size_t alive = stream.initial.size();
  for (const auto& batch : stream.snapshots) {
    for (const auto& op : batch) {
      if (op.kind == DataOperation::Kind::kAdd) ++alive;
      if (op.kind == DataOperation::Kind::kRemove) --alive;
    }
  }
  EXPECT_GT(alive, 3 * stream.initial.size());
  EXPECT_LT(alive, 12 * stream.initial.size());
}

}  // namespace
}  // namespace dynamicc
