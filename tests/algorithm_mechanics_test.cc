// Focused tests for the verification mechanics added around Algorithms 1-3:
// the rejection memo, the partner verification budget, confidence ordering,
// and the k-means split-as-move mode.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/engine.h"
#include "core/dynamicc.h"
#include "core/features.h"
#include "core/merge_algorithm.h"
#include "core/split_algorithm.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "objective/correlation.h"
#include "objective/kmeans.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

/// Classifier with a fixed probability (keeps the algorithms deterministic).
class ConstModel final : public BinaryClassifier {
 public:
  explicit ConstModel(double p) : p_(p) {}
  const char* Name() const override { return "const"; }
  void Fit(const SampleSet&) override {}
  bool is_fitted() const override { return true; }
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<ConstModel>(p_);
  }
  double PredictProbability(const std::vector<double>&) const override {
    return p_;
  }

 private:
  double p_;
};

/// Validator that rejects everything but counts how often it was asked.
class CountingRejector final : public ChangeValidator {
 public:
  bool MergeImproves(const ClusteringEngine&, ClusterId,
                     ClusterId) const override {
    ++merge_checks;
    return false;
  }
  bool SplitImproves(const ClusteringEngine&, ClusterId,
                     const std::vector<ObjectId>&) const override {
    ++split_checks;
    return false;
  }
  bool MoveImproves(const ClusteringEngine&, ObjectId,
                    ClusterId) const override {
    ++move_checks;
    return false;
  }

  mutable size_t merge_checks = 0;
  mutable size_t split_checks = 0;
  mutable size_t move_checks = 0;
};

class MechanicsFixture : public ::testing::Test {
 protected:
  MechanicsFixture()
      : measure_(1.0),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.05) {}

  ObjectId AddPoint(double x) {
    Record record;
    record.numeric = {x};
    ObjectId id = dataset_.Add(record);
    graph_.AddObject(id);
    return id;
  }

  Dataset dataset_;
  EuclideanSimilarity measure_;
  SimilarityGraph graph_;
};

TEST_F(MechanicsFixture, MemoSuppressesRepeatVerification) {
  // Two mutually-similar singletons; the rejector declines every merge.
  AddPoint(0.0);
  AddPoint(0.5);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();

  ConstModel model(0.9);
  CountingRejector rejector;
  MergeAlgorithm merge(&model, &rejector);

  VerificationMemo memo;
  merge.Run(&engine, 0.5, nullptr, nullptr, &memo);
  size_t first_round_checks = rejector.merge_checks;
  EXPECT_GT(first_round_checks, 0u);
  // Same engine state, same memo: nothing is re-verified.
  merge.Run(&engine, 0.5, nullptr, nullptr, &memo);
  EXPECT_EQ(rejector.merge_checks, first_round_checks);
  // Without the memo the checks repeat.
  merge.Run(&engine, 0.5, nullptr, nullptr, nullptr);
  EXPECT_GT(rejector.merge_checks, first_round_checks);
}

TEST_F(MechanicsFixture, MemoInvalidatedByMembershipChange) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.5);
  ObjectId c = AddPoint(1.0);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();

  ConstModel model(0.9);
  CountingRejector rejector;
  MergeAlgorithm merge(&model, &rejector);
  VerificationMemo memo;
  merge.Run(&engine, 0.5, nullptr, nullptr, &memo);
  size_t checks = rejector.merge_checks;

  // Changing a cluster's membership bumps its version; the memoized
  // rejections no longer apply to it.
  engine.Merge(engine.clustering().ClusterOf(a),
               engine.clustering().ClusterOf(b));
  merge.Run(&engine, 0.5, nullptr, nullptr, &memo);
  EXPECT_GT(rejector.merge_checks, checks);
  (void)c;
}

TEST_F(MechanicsFixture, SplitMemoWorksPerClusterVersion) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  engine.Merge(engine.clustering().ClusterOf(a),
               engine.clustering().ClusterOf(b));

  ConstModel model(0.9);
  CountingRejector rejector;
  SplitAlgorithm split(&model, &rejector);
  VerificationMemo memo;
  split.Run(&engine, 0.5, nullptr, nullptr, &memo);
  size_t checks = rejector.split_checks;
  EXPECT_GT(checks, 0u);
  split.Run(&engine, 0.5, nullptr, nullptr, &memo);
  EXPECT_EQ(rejector.split_checks, checks);
}

TEST_F(MechanicsFixture, VerificationBudgetTriesRunnerUpPartners) {
  // Cluster X (singleton at 1.0) has two neighbors: Y = {0.9} (closest)
  // and Z = {1.2}. A validator that only accepts merges with Z forces the
  // budgeted algorithm to get past the rejected first choice.
  ObjectId x = AddPoint(1.0);
  ObjectId y = AddPoint(0.9);
  ObjectId z = AddPoint(1.2);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId cz = engine.clustering().ClusterOf(z);

  class OnlyZValidator final : public ChangeValidator {
   public:
    explicit OnlyZValidator(ClusterId z) : z_(z) {}
    bool MergeImproves(const ClusteringEngine&, ClusterId a,
                       ClusterId b) const override {
      return a == z_ || b == z_;
    }
    bool SplitImproves(const ClusteringEngine&, ClusterId,
                       const std::vector<ObjectId>&) const override {
      return false;
    }
    bool MoveImproves(const ClusteringEngine&, ObjectId,
                      ClusterId) const override {
      return false;
    }

   private:
    ClusterId z_;
  };

  ConstModel model(0.9);
  OnlyZValidator validator(cz);

  MergeAlgorithm::Options budget1;
  budget1.verification_budget = 1;
  // Budget 1 processes x first? Ordering by probability is a tie here, so
  // instead check the contrast: with a large budget the merge always goes
  // through; with budget 1 it depends on the first-ranked partner.
  MergeAlgorithm::Options budget3;
  budget3.verification_budget = 3;
  MergeAlgorithm merge3(&model, &validator, budget3);
  PassStats stats = merge3.Run(&engine, 0.5);
  EXPECT_GE(stats.applied, 1u);
  EXPECT_EQ(engine.clustering().ClusterOf(x),
            engine.clustering().ClusterOf(z));
  (void)y;
}

TEST_F(MechanicsFixture, SplitAsMoveKeepsClusterCount) {
  // Three tight pairs plus one object glued to the wrong pair; in k-means
  // mode the fix must be a move (k stays constant), not a split.
  ObjectId a1 = AddPoint(0.0), a2 = AddPoint(0.1);
  ObjectId b1 = AddPoint(5.0), b2 = AddPoint(5.1);
  ObjectId stray = AddPoint(5.05);  // belongs with b
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId ca = engine.Merge(engine.clustering().ClusterOf(a1),
                              engine.clustering().ClusterOf(a2));
  ca = engine.Merge(ca, engine.clustering().ClusterOf(stray));
  ClusterId cb = engine.Merge(engine.clustering().ClusterOf(b1),
                              engine.clustering().ClusterOf(b2));
  size_t k_before = engine.clustering().num_clusters();

  KMeansObjective objective(&dataset_, static_cast<int>(k_before));
  ObjectiveValidator validator(&objective);
  ConstModel model(0.9);
  SplitAlgorithm::Options options;
  options.split_as_move = true;
  SplitAlgorithm split(&model, &validator, options);
  PassStats stats = split.Run(&engine, 0.5);
  EXPECT_TRUE(stats.changed);
  EXPECT_EQ(engine.clustering().num_clusters(), k_before);
  EXPECT_EQ(engine.clustering().ClusterOf(stray), cb);
}

TEST_F(MechanicsFixture, ReclusterReportAggregatesAcrossIterations) {
  Rng rng(3);
  for (int i = 0; i < 12; ++i) {
    AddPoint((i % 3) * 10.0 + rng.Uniform(0.0, 0.3));
  }
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ConstModel model(0.9);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  DynamicC dynamicc(&model, &model, &validator);
  dynamicc.SetThetas(0.5, 0.5);
  ReclusterReport report = dynamicc.Recluster(&engine);
  EXPECT_GT(report.iterations, 0u);
  EXPECT_GT(report.merges_applied, 0u);
  EXPECT_GE(report.probability_evaluations,
            report.merge_predicted + report.split_predicted);
  // 3 blobs of 4 objects each: 9 merges in total.
  EXPECT_EQ(engine.clustering().num_clusters(), 3u);
}

}  // namespace
}  // namespace dynamicc
