// Coverage for the smaller public surfaces that the module suites don't
// exercise directly: descriptions, blocker edge cases, repair helper,
// Lloyd restarts, evolution-step rendering, and logging plumbing.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "batch/kmeans_lloyd.h"
#include "cluster/engine.h"
#include "cluster/evolution.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/record.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "eval/report.h"
#include "harness/experiment.h"
#include "objective/kmeans.h"
#include "util/logging.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

// ------------------------------------------------------------ descriptions

TEST(DescribeRecord, RendersAllRepresentations) {
  Record record;
  record.id = 3;
  record.entity = 9;
  record.tokens = {"alpha", "beta"};
  record.text = "alpha beta";
  record.numeric = {1.5, 2.5};
  std::string description = DescribeRecord(record);
  EXPECT_NE(description.find("id=3"), std::string::npos);
  EXPECT_NE(description.find("entity=9"), std::string::npos);
  EXPECT_NE(description.find("alpha beta"), std::string::npos);
  EXPECT_NE(description.find("1.5"), std::string::npos);
}

TEST(DescribeClustering, ReportsShape) {
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  for (double x : {0.0, 0.1, 5.0}) {
    Record record;
    record.numeric = {x};
    graph.AddObject(dataset.Add(record));
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  engine.Merge(engine.clustering().ClusterOf(0),
               engine.clustering().ClusterOf(1));
  std::string description = DescribeClustering(engine);
  EXPECT_NE(description.find("2 clusters"), std::string::npos);
  EXPECT_NE(description.find("3 objects"), std::string::npos);
  EXPECT_NE(description.find("largest 2"), std::string::npos);
}

TEST(EvolutionStep, ToStringRendersBothKinds) {
  EvolutionStep merge;
  merge.kind = EvolutionStep::Kind::kMerge;
  merge.left = {1, 2};
  merge.right = {3};
  EXPECT_EQ(merge.ToString(), "merge {1,2} | {3}");
  EvolutionStep split;
  split.kind = EvolutionStep::Kind::kSplit;
  split.left = {4};
  split.right = {5, 6};
  EXPECT_EQ(split.ToString(), "split {4} | {5,6}");
}

// ----------------------------------------------------------- blocker edges

TEST(TokenBlocker, OversizedBucketsAreSkipped) {
  // A stop-word-like key shared by many records must not explode candidate
  // lists: buckets above max_bucket are ignored at lookup time.
  TokenBlocker blocker(/*prefix_len=*/0, /*max_bucket=*/4);
  for (ObjectId id = 0; id < 10; ++id) {
    Record record;
    record.id = id;
    record.tokens = {"the", "unique" + std::to_string(id)};
    blocker.Add(record);
  }
  Record probe;
  probe.id = 99;
  probe.tokens = {"the"};
  EXPECT_TRUE(blocker.Candidates(probe).empty());  // bucket size 10 > 4
  Record narrow;
  narrow.id = 98;
  narrow.tokens = {"unique3"};
  EXPECT_EQ(blocker.Candidates(narrow), std::vector<ObjectId>{3});
}

TEST(TokenBlocker, ShortTokensIgnored) {
  TokenBlocker blocker;
  Record a;
  a.id = 0;
  a.tokens = {"x"};  // single char: not indexed
  blocker.Add(a);
  Record b;
  b.id = 1;
  b.tokens = {"x"};
  EXPECT_TRUE(blocker.Candidates(b).empty());
}

TEST(GridBlocker, OneDimensionalRecords) {
  GridBlocker blocker(5.0);
  Record a;
  a.id = 0;
  a.numeric = {2.0};
  Record b;
  b.id = 1;
  b.numeric = {6.0};  // adjacent 1-D cell
  blocker.Add(a);
  blocker.Add(b);
  EXPECT_EQ(blocker.Candidates(a), std::vector<ObjectId>{1});
}

// ------------------------------------------------------------------ repair

TEST(RepairClusterCount, MergesSmallestIntoNearest) {
  Dataset dataset;
  EuclideanSimilarity measure(2.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.001);
  // Two blobs plus a distant straggler singleton (no graph edges needed —
  // repair works on centroids, which is its purpose).
  std::vector<double> xs = {0.0, 0.2, 0.4, 30.0, 30.2, 100.0};
  for (double x : xs) {
    Record record;
    record.numeric = {x};
    graph.AddObject(dataset.Add(record));
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  ClusterId blob_a = engine.Merge(engine.clustering().ClusterOf(0),
                                  engine.clustering().ClusterOf(1));
  blob_a = engine.Merge(blob_a, engine.clustering().ClusterOf(2));
  ClusterId blob_b = engine.Merge(engine.clustering().ClusterOf(3),
                                  engine.clustering().ClusterOf(4));
  ASSERT_EQ(engine.clustering().num_clusters(), 3u);

  RepairClusterCount(&engine, 2);
  EXPECT_EQ(engine.clustering().num_clusters(), 2u);
  // The straggler at x=100 joined blob_b (nearest centroid ~30).
  EXPECT_EQ(engine.clustering().ClusterOf(5),
            engine.clustering().ClusterOf(3));
  (void)blob_b;
}

TEST(RepairClusterCount, NoOpWhenAlreadyAtTarget) {
  Dataset dataset;
  EuclideanSimilarity measure(2.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.001);
  for (double x : {0.0, 10.0}) {
    Record record;
    record.numeric = {x};
    graph.AddObject(dataset.Add(record));
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  RepairClusterCount(&engine, 2);
  EXPECT_EQ(engine.clustering().num_clusters(), 2u);
  RepairClusterCount(&engine, 5);  // target above current: no-op
  EXPECT_EQ(engine.clustering().num_clusters(), 2u);
}

// --------------------------------------------------------- Lloyd restarts

TEST(KMeansLloyd, MoreRestartsNeverWorseSse) {
  Rng rng(21);
  Dataset dataset;
  EuclideanSimilarity measure(3.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.01);
  for (int i = 0; i < 80; ++i) {
    Record record;
    record.numeric = {rng.Uniform(0, 100), rng.Uniform(0, 100)};
    graph.AddObject(dataset.Add(record));
  }
  KMeansObjective objective(&dataset, 6, 0.0);

  auto sse_with_restarts = [&](int restarts) {
    KMeansLloyd::Options options;
    options.k = 6;
    options.seed = 4;
    options.restarts = restarts;
    ClusteringEngine engine(&graph);
    KMeansLloyd(options).Run(&engine);
    return objective.Sse(engine);
  };
  // The multi-restart result includes the single-restart run (same base
  // seed), so it can only be at least as good.
  EXPECT_LE(sse_with_restarts(4), sse_with_restarts(1) + 1e-9);
}

// ----------------------------------------------------------------- logging

TEST(Logging, CheckMacrosPassOnTrueConditions) {
  DYNAMICC_CHECK(true) << "never shown";
  DYNAMICC_CHECK_EQ(1, 1);
  DYNAMICC_CHECK_LT(1, 2);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH({ DYNAMICC_CHECK_EQ(1, 2) << "boom"; }, "Check failed");
}

TEST(Logging, MinLevelFiltersInfo) {
  auto previous = internal_logging::GetMinLogLevel();
  internal_logging::SetMinLogLevel(LogLevel::kError);
  DYNAMICC_LOG(Info) << "suppressed";
  internal_logging::SetMinLogLevel(previous);
  SUCCEED();
}

}  // namespace
}  // namespace dynamicc
