// Stress suite (ctest label: stress): live migration and rebalancing
// racing concurrent async ingestion. These tests exist to be run under
// ThreadSanitizer with a generous timeout; the default ctest job runs
// them too, at a size that stays fast.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/operations.h"
#include "service/service_report.h"
#include "service/sharded_service.h"
#include "service_test_util.h"

namespace dynamicc {
namespace {

TEST(ServiceStress, MigrateUnderConcurrentIngestKeepsStateExact) {
  // A producer streams add/remove churn into the async pipeline while
  // the main thread keeps migrating every group round-robin across the
  // shards. After the dust settles, the flush barrier must show exactly
  // the admitted stream's state: correct object count and every group
  // in one intact cluster.
  const int kGroups = 8;
  const int kBursts = 120;
  ShardedDynamicCService::Options options;
  options.num_shards = 4;
  options.async.enabled = true;
  options.async.queue_depth = 256;
  options.async.adaptive_batch = true;
  options.async.min_batch = 8;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(GroupAdds(kGroups, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(kGroups, 2));
  service.ObserveBatchRound(changed);
  ASSERT_TRUE(service.is_trained());
  service.Flush();  // serving phase: workers round continuously

  std::atomic<bool> done{false};
  std::atomic<size_t> removed{0};
  std::thread producer([&] {
    for (int burst = 0; burst < kBursts; ++burst) {
      auto ids = service.ApplyOperations(GroupAdds(kGroups, 2));
      // Remove every fourth just-admitted object — some of these race
      // queued adds (annihilation), some race a migration of the very
      // group they target (replay).
      OperationBatch churn;
      for (size_t i = 0; i < ids.size(); i += 4) {
        DataOperation remove;
        remove.kind = DataOperation::Kind::kRemove;
        remove.target = ids[i];
        churn.push_back(remove);
      }
      removed.fetch_add(churn.size());
      service.ApplyOperations(churn);
    }
    done.store(true);
  });

  uint64_t migrations = 0;
  int spin = 0;
  while (!done.load()) {
    int g = spin % kGroups;
    auto report = service.MigrateGroup(
        GroupKeyOf(g), static_cast<uint32_t>((g + spin) % 4));
    if (report.moved) ++migrations;
    ++spin;
    // An occasional snapshot in the middle of the fray must stay
    // internally consistent.
    if (spin % 8 == 0) {
      ServiceSnapshot snap = service.Snapshot();
      size_t members = 0;
      for (const auto& cluster : snap.clusters) members += cluster.size();
      EXPECT_EQ(members, snap.total_objects);
    }
  }
  producer.join();
  service.Flush();

  const size_t admitted = kGroups * (4 + 2) + kGroups * 2 * kBursts;
  EXPECT_EQ(service.total_objects(), admitted - removed.load());
  auto clusters = service.GlobalClusters();
  // At least one cluster per group; a group served right after landing
  // on a fallback-trained shard may briefly hold an unmerged singleton
  // (model behavior, interleaving-dependent), but clusters must never
  // span shards — groups move whole or not at all.
  EXPECT_GE(clusters.size(), static_cast<size_t>(kGroups));
  for (const auto& cluster : clusters) {
    uint32_t shard = service.ShardOfObject(cluster.front());
    for (ObjectId id : cluster) {
      EXPECT_EQ(service.ShardOfObject(id), shard)
          << "cluster spans shards after migration";
    }
  }
  EXPECT_GT(spin, 0);
  ServiceSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.report.groups_migrated, migrations);
  EXPECT_GT(snap.report.placement_version, 0u);
}

TEST(ServiceStress, AutoRebalanceUnderSkewedAsyncIngest) {
  // Skewed hot-key traffic into an auto-rebalancing async service: the
  // rebalancer fires on flush barriers while producers stream; the
  // final state must be complete and strictly better balanced than the
  // all-on-one-shard placement it started from.
  const uint32_t kShards = 4;
  std::vector<int> hot = CollidingGroups(8, 0, kShards, 4096);
  ASSERT_EQ(hot.size(), 8u);

  ShardedDynamicCService::Options options;
  options.num_shards = kShards;
  options.async.enabled = true;
  options.async.queue_depth = 512;
  options.rebalance.every_rounds = 2;
  options.rebalance.policy.hysteresis = 1.1;
  options.rebalance.policy.max_moves = 4;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(AddsForGroups(hot, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(AddsForGroups(hot, 2));
  service.ObserveBatchRound(changed);

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int burst = 0; burst < 60; ++burst) {
      service.ApplyOperations(AddsForGroups(hot, 1));
    }
    done.store(true);
  });
  // Flush barriers drive both serving and the rebalance cadence.
  while (!done.load()) {
    service.Flush();
  }
  producer.join();
  service.Flush();

  EXPECT_EQ(service.total_objects(), 8u * (4 + 2 + 60));
  // How far each shard's model merges a group in one round depends on
  // which migration interleaving trained it (batch fallback vs the
  // original observe rounds), so the cluster count is >= the group
  // count; what must hold regardless is that no cluster ever spans
  // shards — groups move whole or not at all.
  auto clusters = service.GlobalClusters();
  EXPECT_GE(clusters.size(), 8u);
  for (const auto& cluster : clusters) {
    uint32_t owner = service.ShardOfObject(cluster.front());
    for (ObjectId id : cluster) {
      ASSERT_EQ(service.ShardOfObject(id), owner);
    }
  }
  ServiceSnapshot snap = service.Snapshot();
  EXPECT_GT(snap.report.groups_migrated, 0u);
  EXPECT_LT(snap.report.record_imbalance, 4.0);
}

}  // namespace
}  // namespace dynamicc
