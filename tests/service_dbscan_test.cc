// Sharded DBSCAN: the validator-only ShardEnvironment (null objective +
// graph-bound validator built through validator_factory) serves DBSCAN
// through ShardedDynamicCService, equivalent to the single-engine
// session at N in {1, 2, 4} on partition-disjoint workloads — the same
// bar the correlation-task service equivalence pins down.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "batch/dbscan.h"
#include "core/session.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "ml/logistic_regression.h"
#include "service/sharded_service.h"
#include "service_test_util.h"

namespace dynamicc {
namespace {

Dbscan::Options DbscanOptions() {
  Dbscan::Options options;
  options.min_pts = 2;
  options.eps_similarity = 0.5;
  return options;
}

/// Validator-only environment: no objective; the DbscanValidator needs
/// the shard's similarity graph, so it is built via validator_factory
/// once the service has created the graph.
ShardEnvironmentFactory MakeDbscanFactory() {
  return [] {
    ShardEnvironment env;
    env.measure = std::make_unique<JaccardSimilarity>();
    env.blocker = std::make_unique<TokenBlocker>();
    env.min_similarity = 0.1;
    auto dbscan = std::make_unique<Dbscan>(DbscanOptions());
    const Dbscan* core = dbscan.get();
    env.batch = std::move(dbscan);  // owns the Dbscan the validator reads
    env.validator_factory =
        [core](const SimilarityGraph* graph) -> std::unique_ptr<ChangeValidator> {
      return std::make_unique<DbscanValidator>(core, graph);
    };
    env.merge_model = std::make_unique<LogisticRegression>();
    env.split_model = std::make_unique<LogisticRegression>();
    return env;
  };
}

/// Single-engine DBSCAN reference over the same stream of batches.
std::vector<std::vector<ObjectId>> SingleEngineDbscan(
    const std::vector<OperationBatch>& batches, int training) {
  Dataset dataset;
  JaccardSimilarity measure;
  SimilarityGraph graph(&dataset, &measure, std::make_unique<TokenBlocker>(),
                        0.1);
  Dbscan batch(DbscanOptions());
  DbscanValidator validator(&batch, &graph);
  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          DynamicCSession::Options{});
  for (size_t i = 0; i < batches.size(); ++i) {
    auto changed = session.ApplyOperations(batches[i]);
    if (static_cast<int>(i) < training) {
      session.ObserveBatchRound(changed);
    } else {
      session.DynamicRound(changed);
    }
  }
  return session.clustering().CanonicalClusters();
}

TEST(ShardedDbscan, MatchesSingleEngineAtEveryShardCount) {
  // Groups big enough to clear min_pts (density clusters) plus churn:
  // later batches grow some groups and add a brand-new one.
  std::vector<OperationBatch> batches = {GroupAdds(6, 4),
                                         GroupAdds(6, 1),
                                         AddsForGroups({0, 2, 4, 9}, 2),
                                         AddsForGroups({9, 1}, 3)};
  const int training = 1;
  std::vector<std::vector<ObjectId>> reference =
      SingleEngineDbscan(batches, training);
  ASSERT_FALSE(reference.empty());

  for (uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(shards);
    ShardedDynamicCService::Options options;
    options.num_shards = shards;
    ShardedDynamicCService service(options, nullptr, MakeDbscanFactory());
    for (size_t i = 0; i < batches.size(); ++i) {
      auto changed = service.ApplyOperations(batches[i]);
      if (static_cast<int>(i) < training) {
        service.ObserveBatchRound(changed);
      } else {
        service.DynamicRound(changed);
      }
    }
    EXPECT_EQ(service.GlobalClusters(), reference);
  }
}

TEST(ShardedDbscan, AsyncPipelineFlushMatchesSync) {
  std::vector<OperationBatch> batches = {GroupAdds(5, 4), GroupAdds(5, 2),
                                         AddsForGroups({0, 3}, 3)};
  ShardedDynamicCService::Options sync_options;
  sync_options.num_shards = 2;
  ShardedDynamicCService sync_service(sync_options, nullptr,
                                      MakeDbscanFactory());
  ShardedDynamicCService::Options async_options = sync_options;
  async_options.async.enabled = true;
  ShardedDynamicCService async_service(async_options, nullptr,
                                       MakeDbscanFactory());

  auto changed = sync_service.ApplyOperations(batches[0]);
  sync_service.ObserveBatchRound(changed);
  changed = async_service.ApplyOperations(batches[0]);
  async_service.ObserveBatchRound(changed);
  for (size_t i = 1; i < batches.size(); ++i) {
    changed = sync_service.ApplyOperations(batches[i]);
    sync_service.DynamicRound(changed);
    async_service.Ingest(batches[i]);
    async_service.Flush();
  }
  EXPECT_EQ(async_service.GlobalClusters(), sync_service.GlobalClusters());
}

TEST(ShardedDbscan, MissingValidatorAndFactoryIsFatal) {
  ShardedDynamicCService::Options options;
  options.num_shards = 1;
  auto broken_factory = [] {
    ShardEnvironment env;
    env.measure = std::make_unique<JaccardSimilarity>();
    env.blocker = std::make_unique<TokenBlocker>();
    env.batch = std::make_unique<Dbscan>(DbscanOptions());
    env.merge_model = std::make_unique<LogisticRegression>();
    env.split_model = std::make_unique<LogisticRegression>();
    return env;  // neither validator nor validator_factory
  };
  EXPECT_DEATH(ShardedDynamicCService(options, nullptr, broken_factory),
               "validator");
}

}  // namespace
}  // namespace dynamicc
