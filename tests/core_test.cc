#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "batch/agglomerative.h"
#include "cluster/engine.h"
#include "core/dynamicc.h"
#include "core/features.h"
#include "core/merge_algorithm.h"
#include "core/sampling.h"
#include "core/session.h"
#include "core/split_algorithm.h"
#include "core/trainer.h"
#include "core/transform.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

using Partition = std::vector<std::vector<ObjectId>>;

class TableSimilarity final : public SimilarityMeasure {
 public:
  explicit TableSimilarity(std::map<std::pair<int, int>, double> edges)
      : edges_(std::move(edges)) {}
  double Similarity(const Record& a, const Record& b) const override {
    int x = static_cast<int>(a.numeric[0]);
    int y = static_cast<int>(b.numeric[0]);
    if (x > y) std::swap(x, y);
    auto it = edges_.find({x, y});
    return it == edges_.end() ? 0.0 : it->second;
  }
  const char* Name() const override { return "table"; }

 private:
  std::map<std::pair<int, int>, double> edges_;
};

/// A fixed stub classifier for exercising the algorithms deterministically:
/// probability is looked up by cluster size, defaulting to `fallback`.
class StubClassifier final : public BinaryClassifier {
 public:
  explicit StubClassifier(double fallback) : fallback_(fallback) {}

  const char* Name() const override { return "stub"; }
  void Fit(const SampleSet&) override {}
  bool is_fitted() const override { return true; }
  std::unique_ptr<BinaryClassifier> Clone() const override {
    return std::make_unique<StubClassifier>(fallback_);
  }
  double PredictProbability(const std::vector<double>&) const override {
    return fallback_;
  }

 private:
  double fallback_;
};

// ---------------------------------------------------------------- features

class FeatureFixture : public ::testing::Test {
 protected:
  FeatureFixture()
      : measure_({{{1, 2}, 0.8}, {{2, 3}, 0.6}, {{3, 4}, 0.9}}),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.05) {
    for (int label = 1; label <= 4; ++label) {
      Record record;
      record.numeric = {static_cast<double>(label)};
      ids_[label] = dataset_.Add(record);
      graph_.AddObject(ids_[label]);
    }
  }

  ObjectId R(int label) { return ids_.at(label); }

  Dataset dataset_;
  TableSimilarity measure_;
  SimilarityGraph graph_;
  std::map<int, ObjectId> ids_;
};

TEST_F(FeatureFixture, MergeFeatureValues) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId c12 = engine.Merge(engine.clustering().ClusterOf(R(1)),
                               engine.clustering().ClusterOf(R(2)));
  ClusterId c34 = engine.Merge(engine.clustering().ClusterOf(R(3)),
                               engine.clustering().ClusterOf(R(4)));
  auto f = MergeFeatures(engine, c12);
  ASSERT_EQ(f.size(), kMergeFeatureCount);
  EXPECT_NEAR(f[0], 0.8, 1e-12);          // avg intra of {1,2}
  EXPECT_NEAR(f[1], 0.6 / 4.0, 1e-12);    // avg inter to {3,4}: only 2-3 edge
  EXPECT_DOUBLE_EQ(f[2], 2.0);            // size
  EXPECT_DOUBLE_EQ(f[3], 2.0);            // partner size
  (void)c34;
}

TEST_F(FeatureFixture, SplitFeatureValues) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId c123 = engine.Merge(engine.Merge(engine.clustering().ClusterOf(R(1)),
                                             engine.clustering().ClusterOf(R(2))),
                                engine.clustering().ClusterOf(R(3)));
  auto f = SplitFeatures(engine, c123);
  ASSERT_EQ(f.size(), kSplitFeatureCount);
  EXPECT_NEAR(f[0], (0.8 + 0.6 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(f[1], 0.9 / 3.0, 1e-12);  // to singleton {4}
  EXPECT_DOUBLE_EQ(f[2], 3.0);
}

TEST_F(FeatureFixture, SingletonWithNoNeighborsHasZeroInter) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  // Build a measure-island: object 1 connects only to 2.
  auto f = MergeFeatures(engine, engine.clustering().ClusterOf(R(1)));
  EXPECT_DOUBLE_EQ(f[0], 1.0);  // singleton cohesion
  EXPECT_GT(f[1], 0.0);         // has neighbor {2}
}

TEST_F(FeatureFixture, MergedClusterFeaturesMatchActualMerge) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId c12 = engine.Merge(engine.clustering().ClusterOf(R(1)),
                               engine.clustering().ClusterOf(R(2)));
  ClusterId c34 = engine.Merge(engine.clustering().ClusterOf(R(3)),
                               engine.clustering().ClusterOf(R(4)));
  auto hypothetical = MergedClusterFeatures(engine, c12, c34);
  ClusterId merged = engine.Merge(c12, c34);
  auto actual = MergeFeatures(engine, merged);
  ASSERT_EQ(hypothetical.size(), actual.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_NEAR(hypothetical[i], actual[i], 1e-9) << "feature " << i;
  }
}

// --------------------------------------------------------------- transform

TEST(Transform, PaperExample42) {
  // Old clustering (Figure 1): C1 = {r1,r2,r3}, C2 = {r4,r5}; new objects
  // r6, r7 arrive as singletons. New clustering (Figure 2):
  // C'1 = {r2,r3}, C'2 = {r4,r5,r6}, C'3 = {r1,r7}. Objects use ids 1..7.
  Partition old_clusters = {{1, 2, 3}, {4, 5}, {6}, {7}};
  Partition new_clusters = {{2, 3}, {4, 5, 6}, {1, 7}};
  EvolutionList steps = DeriveTransformation(old_clusters, new_clusters,
                                             /*changed_objects=*/{6, 7});

  // The paper derives exactly three changes:
  //   split C1 into {r1} and {r2,r3};
  //   merge {r4,r5} with {r6};
  //   merge {r1} with {r7}.
  ASSERT_EQ(steps.size(), 3u);
  std::multiset<std::string> rendered;
  for (const auto& step : steps) rendered.insert(step.ToString());
  EXPECT_TRUE(rendered.count("split {1} | {2,3}") == 1)
      << "steps: " << *rendered.begin();
  EXPECT_EQ(rendered.count("merge {4,5} | {6}"), 1u);
  EXPECT_EQ(rendered.count("merge {1} | {7}"), 1u);

  // Applying the steps to the old clustering yields the new one.
  Partition result = ApplySteps(old_clusters, steps);
  Partition expected = new_clusters;
  for (auto& c : expected) std::sort(c.begin(), c.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(result, expected);
}

TEST(Transform, IdenticalClusteringsNeedNoSteps) {
  Partition clusters = {{1, 2}, {3}};
  EXPECT_TRUE(DeriveTransformation(clusters, clusters, {}).empty());
}

TEST(Transform, FullyContainedClusterIsNotSplit) {
  // {1,2} ⊂ target {1,2,3}: only a merge is needed ("split into c' and ∅").
  Partition old_clusters = {{1, 2}, {3}};
  Partition new_clusters = {{1, 2, 3}};
  EvolutionList steps = DeriveTransformation(old_clusters, new_clusters, {3});
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].kind, EvolutionStep::Kind::kMerge);
}

TEST(Transform, PureSplitDerivation) {
  Partition old_clusters = {{1, 2, 3, 4}};
  Partition new_clusters = {{1, 2}, {3, 4}};
  EvolutionList steps = DeriveTransformation(old_clusters, new_clusters, {});
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].kind, EvolutionStep::Kind::kSplit);
  EXPECT_EQ(ApplySteps(old_clusters, steps),
            (Partition{{1, 2}, {3, 4}}));
}

// Property: derived steps always transform old into new.
class TransformPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformPropertyTest, StepsReachTargetPartition) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  // Random object universe and two random partitions of it.
  std::vector<ObjectId> objects;
  for (ObjectId id = 0; id < 40; ++id) objects.push_back(id);

  auto random_partition = [&rng](const std::vector<ObjectId>& ids) {
    Partition partition;
    for (ObjectId id : ids) {
      if (partition.empty() || rng.Chance(0.3)) {
        partition.push_back({id});
      } else {
        partition[rng.Index(partition.size())].push_back(id);
      }
    }
    for (auto& cluster : partition) std::sort(cluster.begin(), cluster.end());
    std::sort(partition.begin(), partition.end());
    return partition;
  };

  Partition old_clusters = random_partition(objects);
  Partition new_clusters = random_partition(objects);
  std::vector<ObjectId> changed;
  for (ObjectId id : objects) {
    if (rng.Chance(0.2)) changed.push_back(id);
  }
  EvolutionList steps =
      DeriveTransformation(old_clusters, new_clusters, changed);
  EXPECT_EQ(ApplySteps(old_clusters, steps), new_clusters);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformPropertyTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------- sampling

TEST(NegativeSampling, ExcludesInvolvedClusters) {
  Rng rng(3);
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  std::vector<ObjectId> objects;
  for (int i = 0; i < 20; ++i) {
    Record record;
    record.numeric = {static_cast<double>(i)};
    ObjectId id = dataset.Add(record);
    graph.AddObject(id);
    objects.push_back(id);
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  std::unordered_set<ObjectId> involved{objects[0], objects[1]};
  NegativeSamplingOptions options;
  auto chosen = SampleNegativeClusters(engine, involved, 10, options);
  EXPECT_EQ(chosen.size(), 10u);
  for (ClusterId cluster : chosen) {
    for (ObjectId member : engine.clustering().Members(cluster)) {
      EXPECT_EQ(involved.count(member), 0u);
    }
  }
}

TEST(NegativeSampling, ActiveClustersAreOverrepresented) {
  // 30 isolated singletons + 30 singletons in tight pairs (active).
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  std::vector<ObjectId> active_objects, inactive_objects;
  for (int i = 0; i < 30; ++i) {
    Record inactive;
    inactive.numeric = {1000.0 + 50.0 * i};
    ObjectId id = dataset.Add(inactive);
    graph.AddObject(id);
    inactive_objects.push_back(id);
  }
  for (int i = 0; i < 15; ++i) {
    for (int j = 0; j < 2; ++j) {
      Record record;
      record.numeric = {10.0 * i + 0.1 * j};
      ObjectId id = dataset.Add(record);
      graph.AddObject(id);
      active_objects.push_back(id);
    }
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();

  NegativeSamplingOptions options;
  size_t active_hits = 0, total = 0;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    options.seed = seed;
    for (ClusterId cluster : SampleNegativeClusters(engine, {}, 20, options)) {
      ++total;
      if (IsActiveCluster(engine, cluster)) ++active_hits;
    }
  }
  // Actives are half the population but weighted 0.7 vs 0.3.
  double active_rate = static_cast<double>(active_hits) / total;
  EXPECT_GT(active_rate, 0.55);
}

TEST(NegativeSampling, DeterministicForSeed) {
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  for (int i = 0; i < 12; ++i) {
    Record record;
    record.numeric = {static_cast<double>(5 * i)};
    graph.AddObject(dataset.Add(record));
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  NegativeSamplingOptions options;
  options.seed = 77;
  auto a = SampleNegativeClusters(engine, {}, 6, options);
  auto b = SampleNegativeClusters(engine, {}, 6, options);
  EXPECT_EQ(a, b);
}

// ----------------------------------------------------------------- trainer

TEST(Trainer, ReplayEndsAtTargetClusteringAndBalancesLabels) {
  // Two tight pairs; evolution: merge each pair.
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  std::vector<ObjectId> ids;
  for (double x : {0.0, 0.1, 10.0, 10.1, 20.0, 30.0, 40.0, 50.0}) {
    Record record;
    record.numeric = {x};
    ObjectId id = dataset.Add(record);
    graph.AddObject(id);
    ids.push_back(id);
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();
  Partition old_clusters = engine.clustering().CanonicalClusters();
  Partition target = old_clusters;
  // Merge {0,1} and {2,3} in the canonical representation.
  Partition new_clusters = {{ids[0], ids[1]}, {ids[2], ids[3]}, {ids[4]},
                            {ids[5]}, {ids[6]}, {ids[7]}};
  std::sort(new_clusters.begin(), new_clusters.end());
  EvolutionList steps = DeriveTransformation(old_clusters, new_clusters, {});
  ASSERT_EQ(steps.size(), 2u);

  EvolutionTrainer trainer;
  trainer.AccumulateRound(&engine, steps);
  EXPECT_EQ(engine.clustering().CanonicalClusters(), new_clusters);
  // 2 merges -> 4 positive merge samples + 4 negatives.
  EXPECT_EQ(trainer.merge_samples().size(), 8u);
  size_t positives = 0;
  for (const auto& sample : trainer.merge_samples()) {
    positives += sample.label;
    EXPECT_EQ(sample.features.size(), kMergeFeatureCount);
  }
  EXPECT_EQ(positives, 4u);
  EXPECT_TRUE(trainer.split_samples().empty());  // no split steps, no splits
}

TEST(Trainer, EvictsOldestSamplesBeyondCap) {
  EvolutionTrainer::Options options;
  options.max_samples = 10;
  EvolutionTrainer trainer(options);
  SampleSet batch;
  for (int i = 0; i < 25; ++i) {
    batch.push_back({{static_cast<double>(i), 0, 0, 0}, i % 2, 1.0});
  }
  trainer.AddMergeFeedback(batch);
  EXPECT_EQ(trainer.merge_samples().size(), 10u);
  // The survivors are the newest ones.
  EXPECT_DOUBLE_EQ(trainer.merge_samples().front().features[0], 15.0);
}

TEST(Trainer, FitProducesUsableModelsAndThetas) {
  EvolutionTrainer trainer;
  SampleSet merge_samples, split_samples;
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    double intra = rng.Uniform();
    int label = intra < 0.5 ? 1 : 0;  // low cohesion -> evolves
    merge_samples.push_back({{intra, rng.Uniform(), 2.0, 2.0}, label, 1.0});
    split_samples.push_back({{intra, rng.Uniform(), 3.0}, label, 1.0});
  }
  trainer.AddMergeFeedback(merge_samples);
  trainer.AddSplitFeedback(split_samples);
  LogisticRegression merge_model, split_model;
  auto report = trainer.Fit(&merge_model, &split_model, ThresholdPolicy{});
  EXPECT_TRUE(report.merge_fitted);
  EXPECT_TRUE(report.split_fitted);
  EXPECT_TRUE(merge_model.is_fitted());
  EXPECT_TRUE(split_model.is_fitted());
  EXPECT_DOUBLE_EQ(
      RecallAtThreshold(merge_model, trainer.merge_samples(),
                        report.merge_theta),
      1.0);
}

// --------------------------------------------------- merge/split algorithms

class AlgorithmFixture : public ::testing::Test {
 protected:
  AlgorithmFixture()
      : measure_(1.0),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.05) {}

  ObjectId AddPoint(double x) {
    Record record;
    record.numeric = {x};
    ObjectId id = dataset_.Add(record);
    graph_.AddObject(id);
    return id;
  }

  Dataset dataset_;
  EuclideanSimilarity measure_;
  SimilarityGraph graph_;
};

TEST_F(AlgorithmFixture, MergeAlgorithmMergesOnlyWhenObjectiveImproves) {
  // Two tight pairs far apart: merging within a pair improves, across
  // pairs does not. An always-positive model floods predictions; the
  // validator must keep results correct.
  ObjectId a = AddPoint(0.0), b = AddPoint(0.1);
  ObjectId c = AddPoint(10.0), d = AddPoint(10.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();

  StubClassifier always_positive(0.99);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  MergeAlgorithm merge(&always_positive, &validator);
  double before = objective.Evaluate(engine);
  PassStats stats = merge.Run(&engine, 0.5);
  EXPECT_TRUE(stats.changed);
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_LT(objective.Evaluate(engine), before);
  EXPECT_EQ(engine.clustering().ClusterOf(a),
            engine.clustering().ClusterOf(b));
  EXPECT_EQ(engine.clustering().ClusterOf(c),
            engine.clustering().ClusterOf(d));
  EXPECT_NE(engine.clustering().ClusterOf(a),
            engine.clustering().ClusterOf(c));
}

TEST_F(AlgorithmFixture, MergeAlgorithmIgnoresNegativePredictions) {
  AddPoint(0.0);
  AddPoint(0.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  StubClassifier always_negative(0.01);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  MergeAlgorithm merge(&always_negative, &validator);
  PassStats stats = merge.Run(&engine, 0.5);
  EXPECT_FALSE(stats.changed);
  EXPECT_EQ(engine.clustering().num_clusters(), 2u);
}

TEST_F(AlgorithmFixture, SplitAlgorithmSplitsWorstObjectOut) {
  // Tight pair + one far object glued in.
  ObjectId a = AddPoint(0.0), b = AddPoint(0.1);
  ObjectId far = AddPoint(6.0);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId bad = engine.Merge(engine.Merge(engine.clustering().ClusterOf(a),
                                            engine.clustering().ClusterOf(b)),
                               engine.clustering().ClusterOf(far));

  StubClassifier always_positive(0.99);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  SplitAlgorithm split(&always_positive, &validator);
  PassStats stats = split.Run(&engine, 0.5);
  EXPECT_TRUE(stats.changed);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_NE(engine.clustering().ClusterOf(far),
            engine.clustering().ClusterOf(a));
  EXPECT_EQ(engine.clustering().ClusterOf(a),
            engine.clustering().ClusterOf(b));
  (void)bad;
}

TEST_F(AlgorithmFixture, SplitAlgorithmRejectsGoodClusters) {
  ObjectId a = AddPoint(0.0), b = AddPoint(0.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  engine.Merge(engine.clustering().ClusterOf(a),
               engine.clustering().ClusterOf(b));
  StubClassifier always_positive(0.99);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  SplitAlgorithm split(&always_positive, &validator);
  PassStats stats = split.Run(&engine, 0.5);
  EXPECT_FALSE(stats.changed);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST_F(AlgorithmFixture, FeedbackCollectsVerifiedOutcomes) {
  ObjectId a = AddPoint(0.0), b = AddPoint(0.1);
  (void)a;
  (void)b;
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  StubClassifier always_positive(0.99);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  MergeAlgorithm merge(&always_positive, &validator);
  SampleSet feedback;
  merge.Run(&engine, 0.5, &feedback);
  ASSERT_GE(feedback.size(), 2u);
  size_t positives = 0;
  for (const auto& sample : feedback) positives += sample.label;
  EXPECT_GE(positives, 2u);  // the applied merge contributed two positives
}

TEST_F(AlgorithmFixture, DynamicCConvergesAndNeverWorsens) {
  Rng rng(31);
  std::vector<double> centers = {0.0, 8.0, 16.0, 24.0};
  for (int i = 0; i < 24; ++i) {
    AddPoint(centers[rng.Index(centers.size())] + rng.Gaussian(0.0, 0.2));
  }
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();

  StubClassifier always_positive(0.99);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  DynamicC dynamicc(&always_positive, &always_positive, &validator);
  dynamicc.SetThetas(0.5, 0.5);

  double before = objective.Evaluate(engine);
  ReclusterReport report = dynamicc.Recluster(&engine);
  double after = objective.Evaluate(engine);
  EXPECT_LE(after, before);
  EXPECT_LT(report.iterations, 25u);  // converged before the cap
  EXPECT_GT(report.merges_applied, 0u);

  // Idempotence: a second run changes nothing.
  ReclusterReport again = dynamicc.Recluster(&engine);
  EXPECT_EQ(again.merges_applied + again.splits_applied, 0u);
}

TEST_F(AlgorithmFixture, AdversarialModelsCannotCorruptClustering) {
  // Random-probability model: whatever it predicts, the validator only
  // lets improving changes through, so the objective never increases.
  Rng rng(13);
  for (int i = 0; i < 20; ++i) AddPoint(rng.Uniform(0.0, 20.0));
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);

  class RandomModel final : public BinaryClassifier {
   public:
    explicit RandomModel(uint64_t seed) : rng_(seed) {}
    const char* Name() const override { return "random"; }
    void Fit(const SampleSet&) override {}
    bool is_fitted() const override { return true; }
    std::unique_ptr<BinaryClassifier> Clone() const override {
      return std::make_unique<RandomModel>(1);
    }
    double PredictProbability(const std::vector<double>&) const override {
      return rng_.Uniform();
    }

   private:
    mutable Rng rng_;
  };

  RandomModel random_model(7);
  DynamicC dynamicc(&random_model, &random_model, &validator);
  dynamicc.SetThetas(0.3, 0.3);
  double score = objective.Evaluate(engine);
  for (int round = 0; round < 5; ++round) {
    dynamicc.Recluster(&engine);
    double next = objective.Evaluate(engine);
    EXPECT_LE(next, score + 1e-9);
    score = next;
  }
}

// ------------------------------------------------------------------ session

TEST(Session, EndToEndTrainingThenDynamicRounds) {
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  GreedyAgglomerative batch(&objective);

  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          DynamicCSession::Options{});

  Rng rng(41);
  std::vector<double> centers = {0.0, 10.0, 20.0, 30.0, 40.0};
  auto make_ops = [&rng, &centers](int count) {
    OperationBatch ops;
    for (int i = 0; i < count; ++i) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      op.record.numeric = {centers[rng.Index(centers.size())] +
                           rng.Gaussian(0.0, 0.3)};
      ops.push_back(op);
    }
    return ops;
  };

  // Two observed batch rounds to build history.
  auto changed = session.ApplyOperations(make_ops(30));
  session.ObserveBatchRound(changed);
  changed = session.ApplyOperations(make_ops(15));
  auto train_report = session.ObserveBatchRound(changed);
  EXPECT_GT(train_report.step_count, 0u);
  ASSERT_TRUE(session.is_trained());

  // Dynamic rounds keep the objective in check.
  for (int round = 0; round < 3; ++round) {
    session.ApplyOperations(make_ops(10));
    double before = objective.Evaluate(session.engine());
    auto report = session.DynamicRound();
    EXPECT_LE(objective.Evaluate(session.engine()), before);
    EXPECT_GE(report.recluster_ms, 0.0);
  }
}

TEST(Session, ObserveEveryCadenceServesWithBatch) {
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  GreedyAgglomerative batch(&objective);
  DynamicCSession::Options options;
  options.observe_every = 2;  // every 2nd dynamic round goes to the batch
  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(), options);

  Rng rng(51);
  auto make_ops = [&rng](int count) {
    OperationBatch ops;
    for (int i = 0; i < count; ++i) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      op.record.numeric = {10.0 * rng.Index(4) + rng.Gaussian(0.0, 0.2)};
      ops.push_back(op);
    }
    return ops;
  };

  auto changed = session.ApplyOperations(make_ops(30));
  session.ObserveBatchRound(changed);
  ASSERT_TRUE(session.is_trained());

  std::vector<bool> used_batch;
  for (int round = 0; round < 4; ++round) {
    changed = session.ApplyOperations(make_ops(8));
    used_batch.push_back(session.DynamicRound(changed).used_batch);
  }
  EXPECT_EQ(used_batch, (std::vector<bool>{false, true, false, true}));

  // A batch-served round leaves the engine at the exact batch clustering.
  ClusteringEngine reference(&graph);
  batch.Run(&reference);
  EXPECT_EQ(session.engine().clustering().CanonicalClusters(),
            reference.clustering().CanonicalClusters());
}

TEST(Session, UpdateOperationsFollowRemoveAddSemantics) {
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  GreedyAgglomerative batch(&objective);
  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          DynamicCSession::Options{});

  OperationBatch adds;
  for (double x : {0.0, 0.1, 0.2}) {
    DataOperation op;
    op.kind = DataOperation::Kind::kAdd;
    op.record.numeric = {x};
    adds.push_back(op);
  }
  auto ids = session.ApplyOperations(adds);
  ASSERT_EQ(ids.size(), 3u);

  // Update: object 0 moves far away; it must end up in a fresh singleton.
  OperationBatch updates;
  DataOperation update;
  update.kind = DataOperation::Kind::kUpdate;
  update.target = ids[0];
  update.record.numeric = {99.0};
  updates.push_back(update);
  auto changed = session.ApplyOperations(updates);
  EXPECT_EQ(changed, std::vector<ObjectId>{ids[0]});
  EXPECT_EQ(session.engine().clustering().ClusterSize(
                session.engine().clustering().ClusterOf(ids[0])),
            1u);
  EXPECT_DOUBLE_EQ(dataset.Get(ids[0]).numeric[0], 99.0);

  // Remove: object leaves the clustering entirely.
  OperationBatch removes;
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = ids[1];
  removes.push_back(remove);
  session.ApplyOperations(removes);
  EXPECT_EQ(session.engine().clustering().ClusterOf(ids[1]),
            kInvalidCluster);
  EXPECT_FALSE(dataset.IsAlive(ids[1]));
}

}  // namespace
}  // namespace dynamicc
