// Tests of the two-phase similarity core (PR 7): the per-record
// FeatureIndex, the batched threshold-aware kernels, candidate history,
// and — the load-bearing claim — bit-identity between the indexed core
// and the seed scalar path, from single kernels all the way up to the
// sharded service's clustering output.

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "data/blocking.h"
#include "data/candidate_history.h"
#include "data/dataset.h"
#include "data/feature_index.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "obs/metrics.h"
#include "service/sharded_service.h"
#include "service_test_util.h"
#include "util/rng.h"
#include "util/string_utils.h"

namespace dynamicc {
namespace {

Record TokenRecord(std::vector<std::string> tokens) {
  Record record;
  record.tokens = std::move(tokens);
  return record;
}

Record TextRecord(std::string text) {
  Record record;
  record.text = std::move(text);
  return record;
}

Record PointRecord(std::vector<double> numeric) {
  Record record;
  record.numeric = std::move(numeric);
  return record;
}

/// Random record exercising every representation, including empties and
/// non-ASCII ("unicode-ish") bytes in text.
Record RandomRecord(Rng& rng) {
  Record record;
  if (!rng.Chance(0.1)) {
    size_t n = rng.Index(8);
    for (size_t i = 0; i < n; ++i) {
      record.tokens.push_back("tok" + std::to_string(rng.Index(20)));
    }
  }
  if (!rng.Chance(0.1)) {
    size_t n = rng.Index(40);
    for (size_t i = 0; i < n; ++i) {
      if (rng.Chance(0.1)) {
        record.text.push_back(static_cast<char>(0x80 + rng.Index(0x80)));
      } else {
        record.text.push_back(static_cast<char>('a' + rng.Index(26)));
      }
    }
  }
  if (!rng.Chance(0.1)) {
    size_t n = 1 + rng.Index(24);
    for (size_t i = 0; i < n; ++i) {
      record.numeric.push_back(rng.Uniform(-10.0, 10.0));
    }
  }
  return record;
}

std::vector<std::unique_ptr<SimilarityMeasure>> AllMeasures() {
  std::vector<std::unique_ptr<SimilarityMeasure>> measures;
  measures.push_back(std::make_unique<JaccardSimilarity>());
  measures.push_back(std::make_unique<TrigramCosineSimilarity>());
  measures.push_back(std::make_unique<LevenshteinSimilarity>());
  measures.push_back(std::make_unique<EuclideanSimilarity>(4.0));
  {
    std::vector<std::unique_ptr<SimilarityMeasure>> parts;
    parts.push_back(std::make_unique<LevenshteinSimilarity>());
    parts.push_back(std::make_unique<JaccardSimilarity>());
    measures.push_back(std::make_unique<CombinedSimilarity>(
        std::move(parts), std::vector<double>{2.0, 3.0}));
  }
  return measures;
}

// ------------------------------------------------------- measure contract

TEST(MeasureContract, SelfSimilarityIsOneForNonEmptyContent) {
  Record token_rec = TokenRecord({"alpha", "beta", "Alpha"});
  Record text_rec = TextRecord("hello world");
  Record point_rec = PointRecord({1.5, -2.0, 3.25});
  Record full = token_rec;
  full.text = text_rec.text;
  full.numeric = point_rec.numeric;

  EXPECT_DOUBLE_EQ(JaccardSimilarity().Similarity(token_rec, token_rec), 1.0);
  // Trigram self-similarity is dot/(sqrt(n)*sqrt(n)) — within rounding
  // of 1, not bit-exactly 1, hence DOUBLE_EQ.
  EXPECT_DOUBLE_EQ(
      TrigramCosineSimilarity().Similarity(text_rec, text_rec), 1.0);
  EXPECT_DOUBLE_EQ(LevenshteinSimilarity().Similarity(text_rec, text_rec),
                   1.0);
  EXPECT_DOUBLE_EQ(EuclideanSimilarity(4.0).Similarity(point_rec, point_rec),
                   1.0);
  for (const auto& measure : AllMeasures()) {
    EXPECT_DOUBLE_EQ(measure->Similarity(full, full), 1.0) << measure->Name();
  }
}

TEST(MeasureContract, SymmetryOnRandomRecords) {
  Rng rng(11);
  auto measures = AllMeasures();
  for (int i = 0; i < 50; ++i) {
    Record a = RandomRecord(rng);
    Record b = RandomRecord(rng);
    // Euclidean CHECKs on dimension mismatch; align the vectors.
    b.numeric = a.numeric;
    std::reverse(b.numeric.begin(), b.numeric.end());
    for (const auto& measure : measures) {
      EXPECT_EQ(measure->Similarity(a, b), measure->Similarity(b, a))
          << measure->Name();
    }
  }
}

TEST(MeasureContract, EmptyContentMeansNoEvidenceNotEqual) {
  Record empty;  // empty under every measure
  Record token_rec = TokenRecord({"alpha"});
  Record text_rec = TextRecord("abc");
  Record point_rec = PointRecord({1.0});

  // The pinned fix of the historical dead ternary
  // (`a.text == b.text ? 0.0 : 0.0`): two empty texts score 0, not 1.
  EXPECT_EQ(TrigramCosineSimilarity().Similarity(empty, empty), 0.0);
  EXPECT_EQ(TrigramCosineSimilarity().Similarity(empty, text_rec), 0.0);
  EXPECT_EQ(LevenshteinSimilarity().Similarity(empty, empty), 0.0);
  EXPECT_EQ(JaccardSimilarity().Similarity(empty, empty), 0.0);
  EXPECT_EQ(JaccardSimilarity().Similarity(empty, token_rec), 0.0);
  Record empty_point;  // Euclidean: empty vs non-empty is 0 (no CHECK)
  EXPECT_EQ(EuclideanSimilarity(4.0).Similarity(empty_point, point_rec), 0.0);
  EXPECT_EQ(EuclideanSimilarity(4.0).Similarity(empty_point, empty_point),
            0.0);
}

TEST(MeasureContract, JaccardMatchesSetDefinitionWithDuplicates) {
  Rng rng(13);
  JaccardSimilarity jaccard;
  for (int i = 0; i < 100; ++i) {
    Record a = TokenRecord({});
    Record b = TokenRecord({});
    size_t na = rng.Index(10), nb = rng.Index(10);
    for (size_t k = 0; k < na; ++k) {
      a.tokens.push_back("t" + std::to_string(rng.Index(6)));
    }
    for (size_t k = 0; k < nb; ++k) {
      b.tokens.push_back("t" + std::to_string(rng.Index(6)));
    }
    std::set<std::string> sa(a.tokens.begin(), a.tokens.end());
    std::set<std::string> sb(b.tokens.begin(), b.tokens.end());
    std::vector<std::string> inter, uni;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(inter));
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::back_inserter(uni));
    double expected =
        uni.empty() ? 0.0
                    : static_cast<double>(inter.size()) /
                          static_cast<double>(uni.size());
    EXPECT_EQ(jaccard.Similarity(a, b), expected);
  }
}

// ---------------------------------------------------------- feature index

TEST(FeatureIndex, TrigramFeaturesMatchTrigramCounts) {
  Rng rng(17);
  FeatureIndex index(kFeatureTrigrams);
  for (int i = 0; i < 60; ++i) {
    Record record = RandomRecord(rng);
    RecordFeatures features;
    index.Build(record, &features);
    if (record.text.empty()) {
      // Empty text builds no trigram vector: the measure's empty-content
      // convention returns 0 before any trigram is read, so the
      // padding-only "###" grams TrigramCounts would report are dead
      // weight the index deliberately skips.
      EXPECT_TRUE(features.trigram_ids.empty());
      EXPECT_EQ(features.trigram_norm2, 0.0);
      continue;
    }
    auto grams = TrigramCounts(record.text);
    // Same number of distinct trigrams, same multiset of counts, same
    // exact integer aggregates.
    ASSERT_EQ(features.trigram_ids.size(), grams.size());
    double norm2 = 0.0;
    uint64_t l1 = 0;
    uint32_t max_count = 0;
    for (const auto& [gram, count] : grams) {
      norm2 += static_cast<double>(count) * count;
      l1 += static_cast<uint64_t>(count);
      max_count = std::max(max_count, static_cast<uint32_t>(count));
    }
    EXPECT_EQ(features.trigram_norm2, norm2);
    EXPECT_EQ(features.trigram_l1, l1);
    EXPECT_EQ(features.trigram_max, max_count);
    EXPECT_TRUE(std::is_sorted(features.trigram_ids.begin(),
                               features.trigram_ids.end()));
    EXPECT_EQ(features.text_size, record.text.size());
  }
}

TEST(FeatureIndex, InsertFindRemoveLifecycle) {
  Dataset dataset;
  FeatureIndex index(kFeatureAll);
  ObjectId a = dataset.Add(TokenRecord({"alpha", "beta", "alpha"}));
  ObjectId b = dataset.Add(TextRecord("hello"));
  index.Insert(a, dataset.Get(a));
  index.Insert(b, dataset.Get(b));
  ASSERT_NE(index.Find(a), nullptr);
  ASSERT_NE(index.Find(b), nullptr);
  EXPECT_EQ(index.size(), 2u);
  // Duplicates collapse; interned ids are sorted unique.
  EXPECT_EQ(index.Find(a)->token_ids.size(), 2u);
  index.Remove(a);
  EXPECT_EQ(index.Find(a), nullptr);
  EXPECT_EQ(index.size(), 1u);
  // Re-insert after an update rebuilds in place.
  dataset.Update(b, TextRecord("goodbye"));
  index.Insert(b, dataset.Get(b));
  EXPECT_EQ(index.Find(b)->text_size, 7u);
  EXPECT_EQ(index.size(), 1u);
}

TEST(FeatureIndex, CountSortedIntersectionMatchesStd) {
  Rng rng(19);
  for (int round = 0; round < 40; ++round) {
    // Sizes chosen to hit both the scalar merge and the AVX2 block-scan
    // dispatch gate (b >= 64 and b >= 4a).
    size_t na = rng.Index(12);
    size_t nb = rng.Chance(0.5) ? rng.Index(12) : 64 + rng.Index(200);
    std::set<uint32_t> sa, sb;
    while (sa.size() < na) sa.insert(static_cast<uint32_t>(rng.Index(500)));
    while (sb.size() < nb) sb.insert(static_cast<uint32_t>(rng.Index(500)));
    std::vector<uint32_t> va(sa.begin(), sa.end());
    std::vector<uint32_t> vb(sb.begin(), sb.end());
    std::vector<uint32_t> inter;
    std::set_intersection(va.begin(), va.end(), vb.begin(), vb.end(),
                          std::back_inserter(inter));
    EXPECT_EQ(CountSortedIntersection(va.data(), va.size(), vb.data(),
                                      vb.size()),
              inter.size());
    EXPECT_EQ(CountSortedIntersection(vb.data(), vb.size(), va.data(),
                                      va.size()),
              inter.size());
  }
}

// ----------------------------------------------------------- batch kernels

TEST(SimilarityBatch, BitIdenticalToScalarAcrossThresholds) {
  Rng rng(23);
  auto measures = AllMeasures();
  const double thresholds[] = {0.0, 0.15, 0.5, 0.9};
  for (int round = 0; round < 8; ++round) {
    // One shared numeric dimensionality per round (Euclidean CHECKs).
    size_t dims = rng.Index(12);
    auto make = [&rng, dims]() {
      Record record = RandomRecord(rng);
      record.numeric.resize(dims);
      for (double& v : record.numeric) v = rng.Uniform(-10.0, 10.0);
      return record;
    };
    Record probe = make();
    std::vector<Record> candidates;
    for (int i = 0; i < 24; ++i) candidates.push_back(make());
    candidates.push_back(Record{});           // fully empty candidate
    candidates.back().numeric.resize(dims);   // keep dimensions aligned

    for (const auto& measure : measures) {
      FeatureIndex index(measure->FeatureNeeds() != 0
                             ? measure->FeatureNeeds()
                             : kFeatureAll);
      RecordFeatures probe_features;
      index.Build(probe, &probe_features);
      std::vector<RecordFeatures> cand_features(candidates.size());
      std::vector<SimCandidate> batch(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        index.Build(candidates[i], &cand_features[i]);
        batch[i].record = &candidates[i];
        // A few candidates without features exercise the scalar
        // fallback inside the kernels.
        batch[i].features = i % 7 == 3 ? nullptr : &cand_features[i];
      }
      for (double theta : thresholds) {
        std::vector<double> out(candidates.size(), -1.0);
        size_t full = measure->SimilarityBatch(
            probe, &probe_features, batch.data(), batch.size(), theta,
            out.data());
        EXPECT_LE(full, batch.size());
        for (size_t i = 0; i < candidates.size(); ++i) {
          double exact = measure->Similarity(probe, candidates[i]);
          if (theta <= 0.0 || exact >= theta) {
            // The contract: bit-identical whenever the exact score
            // clears the threshold (or no threshold is given).
            EXPECT_EQ(out[i], exact)
                << measure->Name() << " theta=" << theta << " cand=" << i;
          } else {
            EXPECT_LT(out[i], theta)
                << measure->Name() << " theta=" << theta << " cand=" << i;
          }
        }
      }
    }
  }
}

TEST(SimilarityBatch, ThresholdSkipsReduceFullEvaluations) {
  // Disjoint token sets: the Jaccard size-ratio bound prunes everything
  // at a high threshold without touching the merge loop.
  JaccardSimilarity jaccard;
  FeatureIndex index(kFeatureTokens);
  Record probe = TokenRecord({"aa", "bb"});
  std::vector<Record> candidates;
  for (int i = 0; i < 16; ++i) {
    candidates.push_back(TokenRecord({"aa", "bb", "cc", "dd", "ee", "ff",
                                      "gg", "x" + std::to_string(i)}));
  }
  RecordFeatures probe_features;
  index.Build(probe, &probe_features);
  std::vector<RecordFeatures> cand_features(candidates.size());
  std::vector<SimCandidate> batch(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    index.Build(candidates[i], &cand_features[i]);
    batch[i] = {&candidates[i], &cand_features[i]};
  }
  std::vector<double> out(candidates.size());
  // Bound: 2/8 = 0.25 < 0.9, every pair skips.
  size_t full = jaccard.SimilarityBatch(probe, &probe_features, batch.data(),
                                        batch.size(), 0.9, out.data());
  EXPECT_EQ(full, 0u);
  // Without a threshold every pair is evaluated.
  full = jaccard.SimilarityBatch(probe, &probe_features, batch.data(),
                                 batch.size(), 0.0, out.data());
  EXPECT_EQ(full, batch.size());
}

// ------------------------------------------------------- candidate history

TEST(CandidateHistory, SmoothedRatesAndCounts) {
  CandidateHistory history;
  // Cold key reads the prior: 1/2.
  EXPECT_DOUBLE_EQ(history.HitRate(42), 0.5);
  EXPECT_EQ(history.Trials(42), 0u);
  history.RecordOutcome(42, 10, 1);
  EXPECT_EQ(history.Trials(42), 10u);
  EXPECT_DOUBLE_EQ(history.HitRate(42), (1.0 + 1.0) / (2.0 + 10.0));
  history.RecordOutcome(42, 10, 9);
  EXPECT_EQ(history.Trials(42), 20u);
  EXPECT_DOUBLE_EQ(history.HitRate(42), (1.0 + 10.0) / (2.0 + 20.0));
  // Zero-trial outcomes are ignored, unknown keys never materialize.
  history.RecordOutcome(7, 0, 0);
  EXPECT_EQ(history.Find(7), nullptr);
  EXPECT_EQ(history.size(), 1u);
}

// ------------------------------------------------------ keyed enumeration

TEST(Blocking, CandidatesWithKeysMatchesCandidatesOrder) {
  Rng rng(29);
  TokenBlocker token_blocker(/*prefix_len=*/3);
  GridBlocker grid_blocker(4.0);
  std::vector<Record> indexed;
  for (int i = 0; i < 120; ++i) {
    Record record = RandomRecord(rng);
    record.numeric.resize(2);
    record.numeric[0] = rng.Uniform(-20.0, 20.0);
    record.numeric[1] = rng.Uniform(-20.0, 20.0);
    record.id = static_cast<ObjectId>(i);
    token_blocker.Add(record);
    grid_blocker.Add(record);
    indexed.push_back(std::move(record));
  }
  for (int i = 0; i < 40; ++i) {
    const Record& probe = indexed[rng.Index(indexed.size())];
    for (const CandidateProvider* provider :
         {static_cast<const CandidateProvider*>(&token_blocker),
          static_cast<const CandidateProvider*>(&grid_blocker)}) {
      std::vector<ObjectId> plain = provider->Candidates(probe);
      KeyedCandidates keyed = provider->CandidatesWithKeys(probe);
      EXPECT_EQ(keyed.ids, plain);
      EXPECT_EQ(keyed.keys.size(), keyed.ids.size());
    }
  }
  // The default implementation (AllPairsBlocker) reports key 0.
  AllPairsBlocker all_pairs;
  all_pairs.Add(indexed[0]);
  all_pairs.Add(indexed[1]);
  KeyedCandidates keyed = all_pairs.CandidatesWithKeys(indexed[0]);
  ASSERT_EQ(keyed.ids.size(), 1u);
  EXPECT_EQ(keyed.keys[0], 0u);
}

// ----------------------------------------------------- graph equivalence

/// Drives two graphs over one dataset through an identical random
/// add/update/remove stream and requires identical adjacency — including
/// Neighbors() iteration order, which downstream FP accumulation in
/// ClusterStatsTracker depends on.
void ExpectGraphsIdentical(SimilarityGraph& a, SimilarityGraph& b) {
  ASSERT_EQ(a.num_objects(), b.num_objects());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (ObjectId id : a.Objects()) {
    ASSERT_TRUE(b.Contains(id));
    const auto& na = a.Neighbors(id);
    const auto& nb = b.Neighbors(id);
    std::vector<std::pair<ObjectId, double>> order_a(na.begin(), na.end());
    std::vector<std::pair<ObjectId, double>> order_b(nb.begin(), nb.end());
    EXPECT_EQ(order_a, order_b) << "object " << id;
  }
}

TEST(SimilarityGraphCore, IndexedMatchesSeedScalarTokenWorkload) {
  Rng rng(31);
  Dataset dataset;
  JaccardSimilarity measure;
  SimilarityGraph::Options seed_options;
  seed_options.use_feature_index = false;
  SimilarityGraph seed(&dataset, &measure, std::make_unique<TokenBlocker>(),
                      0.3, seed_options);
  SimilarityGraph indexed(&dataset, &measure,
                          std::make_unique<TokenBlocker>(), 0.3);
  ASSERT_NE(indexed.feature_index(), nullptr);
  ASSERT_NE(indexed.candidate_history(), nullptr);
  EXPECT_EQ(seed.feature_index(), nullptr);

  std::vector<ObjectId> alive;
  for (int step = 0; step < 300; ++step) {
    double dice = rng.Uniform();
    if (alive.size() < 10 || dice < 0.6) {
      Record record = TokenRecord({"g" + std::to_string(rng.Index(12)),
                                   "h" + std::to_string(rng.Index(12)),
                                   "u" + std::to_string(rng.Index(40))});
      ObjectId id = dataset.Add(std::move(record));
      seed.AddObject(id);
      indexed.AddObject(id);
      alive.push_back(id);
    } else if (dice < 0.8) {
      size_t pick = rng.Index(alive.size());
      ObjectId id = alive[pick];
      Record old_record = dataset.Get(id);  // copy before overwrite
      Record updated = TokenRecord({"g" + std::to_string(rng.Index(12)),
                                    "u" + std::to_string(rng.Index(40))});
      dataset.Update(id, std::move(updated));
      seed.UpdateObject(id, old_record);
      indexed.UpdateObject(id, old_record);
    } else {
      size_t pick = rng.Index(alive.size());
      ObjectId id = alive[pick];
      seed.RemoveObject(id);
      indexed.RemoveObject(id);
      dataset.Remove(id);
      alive.erase(alive.begin() + pick);
    }
  }
  ExpectGraphsIdentical(seed, indexed);
}

TEST(SimilarityGraphCore, IndexedMatchesSeedScalarNumericWorkload) {
  Rng rng(37);
  Dataset dataset;
  EuclideanSimilarity measure(3.0);
  SimilarityGraph::Options seed_options;
  seed_options.use_feature_index = false;
  SimilarityGraph seed(&dataset, &measure, std::make_unique<GridBlocker>(4.0),
                      0.4, seed_options);
  SimilarityGraph indexed(&dataset, &measure,
                          std::make_unique<GridBlocker>(4.0), 0.4);
  for (int i = 0; i < 200; ++i) {
    Record record = PointRecord({rng.Uniform(-16.0, 16.0),
                                 rng.Uniform(-16.0, 16.0),
                                 rng.Uniform(-16.0, 16.0)});
    ObjectId id = dataset.Add(std::move(record));
    seed.AddObject(id);
    indexed.AddObject(id);
  }
  ExpectGraphsIdentical(seed, indexed);
}

TEST(SimilarityGraphCore, PruneModeDropsColdKeysOnly) {
  // Group tokens sort before the shared cold token, so intra-group
  // candidates are attributed to their (hot) group key and the shared
  // token accumulates only cross-group misses — once its smoothed rate
  // falls below the floor, pruning skips exactly those pairs.
  auto build = [](SimilarityGraph::HistoryMode mode,
                  obs::MetricsRegistry* metrics, Dataset& dataset,
                  const JaccardSimilarity& measure) {
    SimilarityGraph::Options options;
    options.history = mode;
    options.prune_min_trials = 16;
    options.prune_below_hit_rate = 0.02;
    options.metrics = metrics;
    return std::make_unique<SimilarityGraph>(
        &dataset, &measure, std::make_unique<TokenBlocker>(), 0.6, options);
  };
  JaccardSimilarity measure;
  Dataset exact_dataset, pruned_dataset;
  obs::MetricsRegistry metrics;
  auto exact = build(SimilarityGraph::HistoryMode::kOrder, nullptr,
                     exact_dataset, measure);
  auto pruned = build(SimilarityGraph::HistoryMode::kPrune, &metrics,
                      pruned_dataset, measure);
  auto make = [](int group, int i) {
    (void)i;  // group members are identical: intra J=1 (hit), cross J=1/3
    return TokenRecord({"agrp" + std::to_string(group), "zz-shared"});
  };
  for (int i = 0; i < 40; ++i) {
    for (int g = 0; g < 4; ++g) {
      ObjectId a = exact_dataset.Add(make(g, i));
      ObjectId b = pruned_dataset.Add(make(g, i));
      ASSERT_EQ(a, b);
      exact->AddObject(a);
      pruned->AddObject(b);
    }
  }
  // Pruning must have engaged on the cold shared key...
  EXPECT_GT(metrics.GetCounter("sim.pruned")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("sim.calls")->value(), 0u);
  // ...but every surviving edge carries the exact score, and no edge
  // exists that the exact graph lacks (pruning only removes work, it
  // never invents similarity).
  EXPECT_LE(pruned->num_edges(), exact->num_edges());
  for (ObjectId id : pruned->Objects()) {
    for (const auto& [other, sim] : pruned->Neighbors(id)) {
      EXPECT_EQ(sim, exact->Similarity(id, other))
          << id << " -> " << other;
    }
  }
  // In this construction the cold key contributes no edges at all, so
  // the pruned edge set is the full exact edge set.
  EXPECT_EQ(pruned->num_edges(), exact->num_edges());
}

// ----------------------------------------------- end-to-end (service) run

ShardEnvironmentFactory FactoryWithCore(SimilarityGraph::Options sim_core) {
  return [sim_core] {
    ShardEnvironment env = MakeFactory()();
    env.sim_core = sim_core;
    return env;
  };
}

TEST(SimilarityGraphCore, ServiceClusteringByteIdenticalAcrossCores) {
  const int kGroups = 10;
  std::vector<OperationBatch> batches;
  batches.push_back(GroupAdds(kGroups, 3));
  batches.push_back(GroupAdds(kGroups, 2));
  OperationBatch mixed = GroupAdds(kGroups, 1);
  DataOperation update;
  update.kind = DataOperation::Kind::kUpdate;
  update.target = 0;
  update.record.entity = 0;
  update.record.tokens = {"grp0", "tag0"};
  mixed.push_back(update);
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = 1;
  mixed.push_back(remove);
  batches.push_back(mixed);

  auto run = [&batches](bool indexed, uint32_t shards, bool async) {
    ShardedDynamicCService::Options options;
    options.num_shards = shards;
    options.async.enabled = async;
    SimilarityGraph::Options sim_core;
    sim_core.use_feature_index = indexed;
    ShardedDynamicCService service(options, nullptr,
                                   FactoryWithCore(sim_core));
    auto changed = service.ApplyOperations(batches[0]);
    service.ObserveBatchRound(changed);
    changed = service.ApplyOperations(batches[1]);
    service.ObserveBatchRound(changed);
    changed = service.ApplyOperations(batches[2]);
    service.DynamicRound(changed);
    return service.GlobalClusters();
  };

  for (uint32_t shards : {1u, 2u, 4u}) {
    for (bool async : {false, true}) {
      auto seed_clusters = run(/*indexed=*/false, shards, async);
      auto indexed_clusters = run(/*indexed=*/true, shards, async);
      EXPECT_EQ(indexed_clusters, seed_clusters)
          << "shards=" << shards << " async=" << async;
    }
  }
}

}  // namespace
}  // namespace dynamicc
