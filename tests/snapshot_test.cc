// Durable service snapshots: serialization primitives (id-exact
// clusterings, sample sets, in-place classifier restore, placement
// restore) and the service-level SaveSnapshot/LoadSnapshot contract —
// a restored service is byte-identical to the saved one and *stays*
// identical when both are fed the same subsequent operations (sync and
// async, with and without migrations). Corrupted, truncated and
// version-mismatched snapshots are rejected via the checksummed
// manifest.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/serialization.h"
#include "data/operations.h"
#include "ml/logistic_regression.h"
#include "ml/serialization.h"
#include "service/placement.h"
#include "service/service_report.h"
#include "service/sharded_service.h"
#include "service/snapshot.h"
#include "service_test_util.h"
#include "util/rng.h"
#include "util/status.h"

namespace dynamicc {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// ------------------------------------------------ serialization primitives

TEST(ClusteringWithIds, RoundTripsIdsGapsAndCounter) {
  Clustering clustering;
  ClusterId a = clustering.CreateSingleton(10);
  ClusterId b = clustering.CreateSingleton(11);
  clustering.CreateSingleton(12);
  clustering.Assign(13, a);
  // Delete cluster b (id gap) and leave the counter past the tail.
  clustering.Unassign(11);
  (void)b;
  ClusterId tail = clustering.CreateSingleton(14);
  clustering.Unassign(14);  // tail cluster deleted: counter > max id + 1
  ASSERT_EQ(clustering.next_cluster_id(), tail + 1);

  std::ostringstream os;
  ASSERT_TRUE(SaveClusteringWithIds(clustering, os).ok());
  std::istringstream is(os.str());
  Clustering restored;
  ASSERT_TRUE(LoadClusteringWithIds(is, &restored).ok());

  EXPECT_EQ(restored.next_cluster_id(), clustering.next_cluster_id());
  EXPECT_EQ(restored.ClusterIds(), clustering.ClusterIds());
  EXPECT_EQ(restored.CanonicalClusters(), clustering.CanonicalClusters());
  EXPECT_EQ(restored.ClusterOf(13), a);
  // A fresh cluster gets the same id either side of the round trip.
  Clustering copy = clustering;
  EXPECT_EQ(restored.CreateSingleton(99), copy.CreateSingleton(99));
}

TEST(ClusteringWithIds, RejectsMalformedInput) {
  Clustering restored;
  {
    std::istringstream is("not a header");
    EXPECT_FALSE(LoadClusteringWithIds(is, &restored).ok());
  }
  {
    // Duplicate member.
    std::istringstream is("clusters 2 next 2\n0 1 7\n1 1 7\n");
    EXPECT_FALSE(LoadClusteringWithIds(is, &restored).ok());
  }
  {
    // Cluster id not below the next-id counter.
    std::istringstream is("clusters 1 next 1\n3 1 7\n");
    EXPECT_FALSE(LoadClusteringWithIds(is, &restored).ok());
  }
  {
    // Truncated member list.
    std::istringstream is("clusters 1 next 1\n0 3 7 8\n");
    EXPECT_FALSE(LoadClusteringWithIds(is, &restored).ok());
  }
  {
    // Ids in range but out of order: rejected, not a process abort.
    std::istringstream is("clusters 2 next 5\n3 1 7\n1 1 8\n");
    EXPECT_FALSE(LoadClusteringWithIds(is, &restored).ok());
  }
}

TEST(SampleSetSerialization, RoundTripsBitExactly) {
  SampleSet samples;
  samples.push_back({{0.1, -2.5e-17, 3.0}, 1, 0.12345678901234567});
  samples.push_back({{1.0 / 3.0}, 0, 1.0});
  samples.push_back({{}, 1, 2.0});

  std::ostringstream os;
  ASSERT_TRUE(SaveSampleSet(samples, os).ok());
  std::istringstream is(os.str());
  SampleSet restored;
  ASSERT_TRUE(LoadSampleSet(is, &restored).ok());

  ASSERT_EQ(restored.size(), samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(restored[i].label, samples[i].label);
    EXPECT_EQ(restored[i].weight, samples[i].weight);  // exact, not near
    EXPECT_EQ(restored[i].features, samples[i].features);
  }
}

TEST(LoadClassifierInto, RestoresInPlaceAndChecksType) {
  LogisticRegression model;
  SampleSet samples;
  for (int i = 0; i < 20; ++i) {
    double x = i / 10.0;
    samples.push_back({{x, 1.0 - x}, i % 2, 1.0});
  }
  model.Fit(samples);
  std::ostringstream os;
  ASSERT_TRUE(SaveClassifier(model, os).ok());

  LogisticRegression target;  // same address must survive the restore
  const BinaryClassifier* address = &target;
  {
    std::istringstream is(os.str());
    ASSERT_TRUE(LoadClassifierInto(is, &target).ok());
  }
  EXPECT_EQ(address, &target);
  EXPECT_TRUE(target.is_fitted());
  EXPECT_EQ(target.weights(), model.weights());
  EXPECT_EQ(target.bias(), model.bias());
  EXPECT_EQ(target.PredictProbability({0.3, 0.7}),
            model.PredictProbability({0.3, 0.7}));

  // Type mismatch is an error, not a silent cross-type restore.
  std::istringstream is("decision-tree\n1\n-1 0 0 0 0.5\n");
  LogisticRegression wrong;
  EXPECT_FALSE(LoadClassifierInto(is, &wrong).ok());
}

TEST(PlacementRestore, ResumesVersionNumbering) {
  PlacementTable table;
  table.Assign(7, 1);
  table.Assign(9, 0);
  PlacementTable restored;
  restored.Restore(table.version(), table.Current()->overrides);
  EXPECT_EQ(restored.version(), 2u);
  ASSERT_NE(restored.Current()->Find(7), nullptr);
  EXPECT_EQ(*restored.Current()->Find(7), 1u);
  // The next decision publishes the same version either side.
  EXPECT_EQ(restored.Assign(11, 2), table.Assign(11, 2));
}

// --------------------------------------------------- service round trips

/// The deterministic subset of a ServiceSnapshot two runs must agree on.
void ExpectEquivalent(ShardedDynamicCService& a, ShardedDynamicCService& b) {
  EXPECT_EQ(a.GlobalClusters(), b.GlobalClusters());
  EXPECT_EQ(a.total_objects(), b.total_objects());
  EXPECT_EQ(a.total_clusters(), b.total_clusters());
  EXPECT_EQ(a.placement().version(), b.placement().version());
  IngestStats sa = a.ingest_stats();
  IngestStats sb = b.ingest_stats();
  EXPECT_EQ(sa.accepted_ops, sb.accepted_ops);
  EXPECT_EQ(sa.applied_ops, sb.applied_ops);
  EXPECT_EQ(sa.coalesced_ops, sb.coalesced_ops);
  EXPECT_EQ(sa.pending_ops, sb.pending_ops);
}

ShardedDynamicCService::Options ServiceOptions(uint32_t shards, bool async) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = async;
  return options;
}

// Save at epoch N, restore in a fresh service, feed both the same
// subsequent operations: assignments, new ids, placement versions and
// reports must stay byte-identical — the restore-equivalence acceptance
// bar, for N in {1, 2, 4} shards, sync and async.
TEST(DurableSnapshot, RestoredServiceStaysInLockstep) {
  for (bool async : {false, true}) {
    for (uint32_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE(testing::Message() << "async=" << async
                                      << " shards=" << shards);
      ShardedDynamicCService original(ServiceOptions(shards, async), nullptr,
                                      MakeFactory());
      auto changed = original.ApplyOperations(GroupAdds(10, 3));
      original.ObserveBatchRound(changed);
      original.Flush();
      original.ApplyOperations(GroupAdds(10, 1));
      original.Flush();

      std::string dir = TempDir("lockstep_" + std::to_string(shards) +
                                (async ? "_async" : "_sync"));
      ASSERT_TRUE(original.SaveSnapshot(dir).ok());

      ShardedDynamicCService restored(ServiceOptions(shards, async), nullptr,
                                      MakeFactory());
      ASSERT_TRUE(restored.LoadSnapshot(dir).ok());
      ExpectEquivalent(original, restored);

      // Same subsequent stream, including churn on pre-snapshot ids.
      // Every batch interleaves the 10 groups, so global id g belongs to
      // group g % 10 — updates below keep each target in its group.
      Rng rng(17);
      for (int round = 0; round < 3; ++round) {
        OperationBatch tail = GroupAdds(10, 1);
        for (ObjectId target = static_cast<ObjectId>(round); target < 30;
             target += 7) {
          DataOperation update;
          update.kind = DataOperation::Kind::kUpdate;
          update.target = target;
          int g = static_cast<int>(target % 10);
          update.record.entity = static_cast<uint32_t>(g);
          update.record.tokens = {"grp" + std::to_string(g),
                                  "tag" + std::to_string(g),
                                  "v" + std::to_string(rng.Index(100))};
          tail.push_back(update);
        }
        auto ids_a = original.ApplyOperations(tail);
        auto ids_b = restored.ApplyOperations(tail);
        EXPECT_EQ(ids_a, ids_b);  // same dense global id assignment
        ServiceReport ra = original.Flush();
        ServiceReport rb = restored.Flush();
        EXPECT_EQ(ra.total_objects, rb.total_objects);
        EXPECT_EQ(ra.total_clusters, rb.total_clusters);
        EXPECT_EQ(ra.combined.merges_applied, rb.combined.merges_applied);
        EXPECT_EQ(ra.combined.splits_applied, rb.combined.splits_applied);
        EXPECT_EQ(ra.placement_version, rb.placement_version);
        ExpectEquivalent(original, restored);
      }
    }
  }
}

// Migrations before the snapshot: the moved state, the placement
// overrides and the version counter all survive, and a post-restore
// migration publishes the same version on both sides.
TEST(DurableSnapshot, SurvivesMigrationsAndKeepsPlacementVersions) {
  for (bool async : {false, true}) {
    SCOPED_TRACE(async);
    ShardedDynamicCService original(ServiceOptions(4, async), nullptr,
                                    MakeFactory());
    auto changed = original.ApplyOperations(GroupAdds(12, 3));
    original.ObserveBatchRound(changed);
    original.Flush();
    // Move two groups off their hash shard.
    for (int g : {0, 1}) {
      uint64_t group = GroupKeyOf(g);
      uint32_t from = original.ShardOfObject(static_cast<ObjectId>(g));
      original.MigrateGroup(group, (from + 1) % 4);
    }
    original.Flush();

    std::string dir = TempDir(std::string("migrated_") +
                              (async ? "async" : "sync"));
    ASSERT_TRUE(original.SaveSnapshot(dir).ok());

    ShardedDynamicCService restored(ServiceOptions(4, async), nullptr,
                                    MakeFactory());
    ASSERT_TRUE(restored.LoadSnapshot(dir).ok());
    ExpectEquivalent(original, restored);
    EXPECT_EQ(restored.ShardOfObject(0), original.ShardOfObject(0));

    // Placement versions keep advancing in lockstep after the restart.
    uint64_t group = GroupKeyOf(2);
    uint32_t from = original.ShardOfObject(2);
    auto move_a = original.MigrateGroup(group, (from + 2) % 4);
    auto move_b = restored.MigrateGroup(group, (from + 2) % 4);
    EXPECT_EQ(move_a.placement_version, move_b.placement_version);
    EXPECT_EQ(move_a.objects, move_b.objects);
    original.ApplyOperations(AddsForGroups({2}, 4));
    restored.ApplyOperations(AddsForGroups({2}, 4));
    original.Flush();
    restored.Flush();
    ExpectEquivalent(original, restored);
  }
}

// A snapshot taken before training restores an untrained service that
// can still be trained afterwards, in lockstep with the original.
TEST(DurableSnapshot, UntrainedSnapshotResumesTraining) {
  ShardedDynamicCService original(ServiceOptions(2, false), nullptr,
                                  MakeFactory());
  original.ApplyOperations(GroupAdds(8, 2));

  std::string dir = TempDir("untrained");
  ASSERT_TRUE(original.SaveSnapshot(dir).ok());
  ShardedDynamicCService restored(ServiceOptions(2, false), nullptr,
                                  MakeFactory());
  ASSERT_TRUE(restored.LoadSnapshot(dir).ok());
  EXPECT_FALSE(restored.is_trained());
  ExpectEquivalent(original, restored);

  auto more_a = original.ApplyOperations(GroupAdds(8, 1));
  auto more_b = restored.ApplyOperations(GroupAdds(8, 1));
  original.ObserveBatchRound(more_a);
  restored.ObserveBatchRound(more_b);
  EXPECT_TRUE(original.is_trained());
  EXPECT_TRUE(restored.is_trained());
  original.Flush();
  restored.Flush();
  ExpectEquivalent(original, restored);
}

TEST(DurableSnapshot, ManifestRecordsTheSealedEpoch) {
  ShardedDynamicCService service(ServiceOptions(2, true), nullptr,
                                 MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(6, 2));
  service.ObserveBatchRound(changed);
  service.Flush();
  service.CloseEpoch();  // epoch 1 sealed before the save

  std::string dir = TempDir("epoch_manifest");
  ASSERT_TRUE(service.SaveSnapshot(dir).ok());
  SnapshotInfo info;
  ASSERT_TRUE(ReadSnapshotInfo(dir, &info).ok());
  EXPECT_EQ(info.format_version, kSnapshotFormatVersion);
  EXPECT_EQ(info.num_shards, 2u);
  EXPECT_EQ(info.epoch, 2u);  // the save sealed its own epoch

  ShardedDynamicCService restored(ServiceOptions(2, true), nullptr,
                                  MakeFactory());
  ASSERT_TRUE(restored.LoadSnapshot(dir).ok());
  EXPECT_EQ(restored.open_epoch(), service.open_epoch());
}

// ------------------------------------------------------ rejection paths

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = TempDir("corruption");
    ShardedDynamicCService service(ServiceOptions(2, false), nullptr,
                                   MakeFactory());
    auto changed = service.ApplyOperations(GroupAdds(6, 2));
    service.ObserveBatchRound(changed);
    service.Flush();
    ASSERT_TRUE(service.SaveSnapshot(dir_).ok());
  }

  Status Load(uint32_t shards = 2) {
    ShardedDynamicCService fresh(ServiceOptions(shards, false), nullptr,
                                 MakeFactory());
    return fresh.LoadSnapshot(dir_);
  }

  std::string Path(const std::string& name) { return dir_ + "/" + name; }

  std::string dir_;
};

TEST_F(CorruptionTest, IntactSnapshotLoads) { EXPECT_TRUE(Load().ok()); }

TEST_F(CorruptionTest, FlippedByteIsRejected) {
  for (const char* name : {"service.dat", "shard-0.dat", "shard-1.dat"}) {
    SCOPED_TRACE(name);
    std::string path = Path(name);
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    in.close();
    ASSERT_FALSE(bytes.empty());
    std::string flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x20;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << flipped;
    }
    EXPECT_FALSE(Load().ok()) << name << " corruption not detected";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;  // restore for the next iteration
  }
}

TEST_F(CorruptionTest, TruncationIsRejected) {
  std::string path = Path("shard-1.dat");
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = buffer.str();
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();
  EXPECT_FALSE(Load().ok());
}

TEST_F(CorruptionTest, MissingFileIsRejected) {
  std::filesystem::remove(Path("shard-0.dat"));
  EXPECT_FALSE(Load().ok());
}

TEST_F(CorruptionTest, MissingManifestIsRejected) {
  std::filesystem::remove(Path("MANIFEST"));
  EXPECT_FALSE(Load().ok());
}

TEST_F(CorruptionTest, VersionMismatchIsRejected) {
  std::string path = Path("MANIFEST");
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string manifest = buffer.str();
  in.close();
  size_t pos = manifest.find("dynamicc-snapshot 1");
  ASSERT_NE(pos, std::string::npos);
  manifest.replace(pos, 19, "dynamicc-snapshot 9");
  std::ofstream out(path, std::ios::trunc);
  out << manifest;
  out.close();
  Status status = Load();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);
}

TEST_F(CorruptionTest, ShardCountMismatchIsRejected) {
  EXPECT_FALSE(Load(/*shards=*/4).ok());
}

// --------------------------------------------------- crash atomicity

// Kill-mid-save simulation: a save that died after writing some payload
// files (no manifest yet, scratch not renamed) must leave the previous
// snapshot loadable, its scratch must never load, and the next save
// must sweep the debris and succeed.
TEST_F(CorruptionTest, KilledMidSaveLeavesThePreviousSnapshotIntact) {
  // The state a killed process leaves behind: a partial "<dir>.saving"
  // scratch — some payload, no integrity root.
  const std::string scratch = dir_ + ".saving";
  std::filesystem::create_directories(scratch);
  std::filesystem::copy_file(Path("shard-0.dat"), scratch + "/shard-0.dat");
  {
    std::ofstream torn(scratch + "/service.dat", std::ios::trunc);
    torn << "service 1\ntrunca";  // mid-write
  }

  // The published snapshot is untouched by the dead save.
  EXPECT_TRUE(Load().ok());

  // Pointing a load at the scratch itself is rejected outright (no
  // manifest was written — it always goes last).
  {
    ShardedDynamicCService fresh(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
    EXPECT_FALSE(fresh.LoadSnapshot(scratch).ok());
  }

  // A later save sweeps the stale scratch and publishes atomically.
  ShardedDynamicCService service(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(5, 2));
  service.ObserveBatchRound(changed);
  service.Flush();
  ASSERT_TRUE(service.SaveSnapshot(dir_).ok());
  EXPECT_FALSE(std::filesystem::exists(scratch));
  ShardedDynamicCService restored(ServiceOptions(2, false), nullptr,
                                  MakeFactory());
  ASSERT_TRUE(restored.LoadSnapshot(dir_).ok());
  ExpectEquivalent(service, restored);
}

// Overwriting an existing snapshot is all-or-nothing: the old directory
// is replaced only after the new one is complete, so no interleaving of
// old and new files can ever be observed.
TEST_F(CorruptionTest, ResaveReplacesTheSnapshotWholesale) {
  ShardedDynamicCService bigger(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  auto changed = bigger.ApplyOperations(GroupAdds(9, 3));
  bigger.ObserveBatchRound(changed);
  bigger.Flush();
  ASSERT_TRUE(bigger.SaveSnapshot(dir_).ok());

  SnapshotInfo info;
  ASSERT_TRUE(ReadSnapshotInfo(dir_, &info).ok());
  ShardedDynamicCService restored(ServiceOptions(2, false), nullptr,
                                  MakeFactory());
  ASSERT_TRUE(restored.LoadSnapshot(dir_).ok());
  ExpectEquivalent(bigger, restored);
}

TEST_F(CorruptionTest, NonFreshServiceIsRejected) {
  ShardedDynamicCService used(ServiceOptions(2, false), nullptr,
                              MakeFactory());
  used.ApplyOperations(GroupAdds(2, 1));
  EXPECT_FALSE(used.LoadSnapshot(dir_).ok());
}

}  // namespace
}  // namespace dynamicc
