#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/scaler.h"
#include "ml/threshold.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

/// Linearly separable 2-D set: label = 1 iff x + y > 0, with margin.
SampleSet SeparableData(int n, uint64_t seed, double margin = 0.5) {
  Rng rng(seed);
  SampleSet samples;
  while (static_cast<int>(samples.size()) < n) {
    double x = rng.Uniform(-3.0, 3.0);
    double y = rng.Uniform(-3.0, 3.0);
    double score = x + y;
    if (std::abs(score) < margin) continue;  // keep a margin
    samples.push_back({{x, y}, score > 0 ? 1 : 0, 1.0});
  }
  return samples;
}

/// Data only separable by axis-aligned rectangles (XOR-ish), which linear
/// models cannot fit but trees can.
SampleSet XorData(int n, uint64_t seed) {
  Rng rng(seed);
  SampleSet samples;
  for (int i = 0; i < n; ++i) {
    double x = rng.Uniform(-1.0, 1.0);
    double y = rng.Uniform(-1.0, 1.0);
    samples.push_back({{x, y}, (x > 0) == (y > 0) ? 1 : 0, 1.0});
  }
  return samples;
}

double HardAccuracy(const BinaryClassifier& model, const SampleSet& samples) {
  return AccuracyAtThreshold(model, samples, 0.5);
}

// ----------------------------------------------------------------- scaler

TEST(StandardScaler, NormalizesToZeroMeanUnitVariance) {
  SampleSet samples;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) samples.push_back({{v}, 0, 1.0});
  StandardScaler scaler;
  scaler.Fit(samples);
  EXPECT_NEAR(scaler.means()[0], 3.0, 1e-12);
  double transformed_sum = 0.0, transformed_sq = 0.0;
  for (const auto& sample : samples) {
    double t = scaler.Transform(sample.features)[0];
    transformed_sum += t;
    transformed_sq += t * t;
  }
  EXPECT_NEAR(transformed_sum, 0.0, 1e-9);
  EXPECT_NEAR(transformed_sq / samples.size(), 1.0, 1e-9);
}

TEST(StandardScaler, ConstantFeaturePassesThrough) {
  SampleSet samples;
  samples.push_back({{7.0, 1.0}, 0, 1.0});
  samples.push_back({{7.0, 2.0}, 1, 1.0});
  StandardScaler scaler;
  scaler.Fit(samples);
  auto t = scaler.Transform({7.0, 1.5});
  EXPECT_NEAR(t[0], 0.0, 1e-12);  // (7-7)/1
}

// -------------------------------------------------------------------- fits

template <typename Model>
void ExpectLearnsSeparable() {
  SampleSet train = SeparableData(400, 1);
  SampleSet test = SeparableData(200, 2);
  Model model;
  model.Fit(train);
  EXPECT_TRUE(model.is_fitted());
  EXPECT_GT(HardAccuracy(model, train), 0.95);
  EXPECT_GT(HardAccuracy(model, test), 0.93);
}

TEST(LogisticRegression, LearnsSeparableData) {
  ExpectLearnsSeparable<LogisticRegression>();
}

TEST(LinearSvm, LearnsSeparableData) { ExpectLearnsSeparable<LinearSvm>(); }

TEST(DecisionTree, LearnsSeparableData) {
  ExpectLearnsSeparable<DecisionTree>();
}

TEST(DecisionTree, LearnsXorWhereLinearFails) {
  SampleSet train = XorData(600, 3);
  SampleSet test = XorData(300, 4);
  DecisionTree tree;
  tree.Fit(train);
  EXPECT_GT(HardAccuracy(tree, test), 0.9);

  LogisticRegression lr;
  lr.Fit(train);
  EXPECT_LT(HardAccuracy(lr, train), 0.7);  // linear model cannot fit XOR
}

TEST(LogisticRegression, ProbabilitiesOrderedByMargin) {
  SampleSet train = SeparableData(300, 5);
  LogisticRegression model;
  model.Fit(train);
  // Deeper into the positive halfplane => larger probability.
  double p1 = model.PredictProbability({0.5, 0.5});
  double p2 = model.PredictProbability({2.0, 2.0});
  double n1 = model.PredictProbability({-0.5, -0.5});
  EXPECT_GT(p2, p1);
  EXPECT_GT(p1, n1);
}

TEST(LogisticRegression, WeightsExposeFeatureImportance) {
  // Feature 0 is predictive, feature 1 is noise.
  Rng rng(6);
  SampleSet train;
  for (int i = 0; i < 400; ++i) {
    double x = rng.Uniform(-2.0, 2.0);
    double noise = rng.Uniform(-2.0, 2.0);
    train.push_back({{x, noise}, x > 0 ? 1 : 0, 1.0});
  }
  LogisticRegression model;
  model.Fit(train);
  EXPECT_GT(std::abs(model.weights()[0]), 3.0 * std::abs(model.weights()[1]));
}

TEST(LinearSvm, ProbabilityCalibrationIsMonotone) {
  SampleSet train = SeparableData(300, 7);
  LinearSvm model;
  model.Fit(train);
  EXPECT_GT(model.PredictProbability({2.0, 2.0}),
            model.PredictProbability({-2.0, -2.0}));
  double p = model.PredictProbability({0.0, 0.0});
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(DecisionTree, ExactFitOnTinyData) {
  SampleSet samples = {{{0.0}, 0, 1.0}, {{1.0}, 1, 1.0}};
  DecisionTree::Options options;
  options.min_samples_leaf = 1;  // allow the 1-sample leaves
  DecisionTree tree(options);
  tree.Fit(samples);
  EXPECT_GT(tree.PredictProbability({1.0}), 0.5);
  EXPECT_LT(tree.PredictProbability({0.0}), 0.5);
  EXPECT_EQ(tree.node_count(), 3u);
}

TEST(DecisionTree, HandlesNearlyEqualFeatureValues) {
  // Regression test: adjacent feature values whose midpoint rounds onto a
  // neighbor used to produce an empty split side and abort.
  SampleSet samples;
  double base = 1.0;
  double next = std::nextafter(base, 2.0);  // smallest representable step
  for (int i = 0; i < 8; ++i) {
    samples.push_back({{i % 2 == 0 ? base : next}, i % 2, 1.0});
  }
  DecisionTree tree;
  tree.Fit(samples);  // must not crash
  double p = tree.PredictProbability({base});
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(DecisionTree, RespectsWeights) {
  // Conflicting labels at the same point: the heavier side wins the leaf.
  SampleSet samples = {{{0.0}, 1, 10.0}, {{0.0}, 0, 1.0}};
  DecisionTree tree;
  tree.Fit(samples);
  EXPECT_GT(tree.PredictProbability({0.0}), 0.5);
}

TEST(AllModels, CloneYieldsUnfittedModelOfSameKind) {
  std::vector<std::unique_ptr<BinaryClassifier>> models;
  models.push_back(std::make_unique<LogisticRegression>());
  models.push_back(std::make_unique<LinearSvm>());
  models.push_back(std::make_unique<DecisionTree>());
  for (auto& model : models) {
    model->Fit(SeparableData(100, 8));
    auto clone = model->Clone();
    EXPECT_FALSE(clone->is_fitted());
    EXPECT_STREQ(clone->Name(), model->Name());
  }
}

// --------------------------------------------------------------- threshold

TEST(Threshold, GivesFullTrainingRecall) {
  // Noisy data: some positives score low; theta must dip below them.
  Rng rng(9);
  SampleSet train;
  for (int i = 0; i < 400; ++i) {
    double x = rng.Uniform(-3.0, 3.0);
    int label = rng.Chance(0.85) ? (x > 0 ? 1 : 0) : (x > 0 ? 0 : 1);
    train.push_back({{x}, label, 1.0});
  }
  LogisticRegression model;
  model.Fit(train);
  ThresholdPolicy policy;
  policy.floor = 1e-6;
  double theta = SelectRecallFirstThreshold(model, train, policy);
  EXPECT_DOUBLE_EQ(RecallAtThreshold(model, train, theta), 1.0);
  // The default 0.5 threshold misses some positives on this noisy set.
  EXPECT_LT(RecallAtThreshold(model, train, 0.5), 1.0);
}

TEST(Threshold, SmallerThetaNeverDecreasesRecall) {
  SampleSet train = SeparableData(300, 10, /*margin=*/0.1);
  LogisticRegression model;
  model.Fit(train);
  double last_recall = 0.0;
  for (double theta : {0.9, 0.7, 0.5, 0.3, 0.1, 0.01}) {
    double recall = RecallAtThreshold(model, train, theta);
    EXPECT_GE(recall, last_recall);
    last_recall = recall;
  }
}

TEST(Threshold, QuantilePolicyRaisesTheta) {
  Rng rng(11);
  SampleSet train;
  for (int i = 0; i < 300; ++i) {
    double x = rng.Uniform(-3.0, 3.0);
    int label = rng.Chance(0.9) ? (x > 0 ? 1 : 0) : (x > 0 ? 0 : 1);
    train.push_back({{x}, label, 1.0});
  }
  LogisticRegression model;
  model.Fit(train);
  ThresholdPolicy strict;  // quantile 0
  strict.floor = 1e-9;
  ThresholdPolicy relaxed = strict;
  relaxed.positive_quantile = 0.1;
  EXPECT_GE(SelectRecallFirstThreshold(model, train, relaxed),
            SelectRecallFirstThreshold(model, train, strict));
}

TEST(Threshold, NoPositivesFallsBackToFloor) {
  SampleSet train;
  for (int i = 0; i < 10; ++i) {
    train.push_back({{static_cast<double>(i)}, 0, 1.0});
  }
  train.front().label = 1;  // need one positive to fit meaningfully
  LogisticRegression model;
  model.Fit(train);
  SampleSet all_negative = train;
  for (auto& sample : all_negative) sample.label = 0;
  ThresholdPolicy policy;
  EXPECT_DOUBLE_EQ(
      SelectRecallFirstThreshold(model, all_negative, policy), policy.floor);
}

}  // namespace
}  // namespace dynamicc
