// Randomized end-to-end consistency checks: a DynamicC session is driven
// with random add/remove/update streams, and after every round the whole
// stack's cross-component invariants are asserted. This is the repository's
// failure-injection net — whatever the models predict and the validator
// decides, the bookkeeping must stay exact.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "batch/agglomerative.h"
#include "cluster/cluster_stats.h"
#include "core/session.h"
#include "data/blocking.h"
#include "data/similarity_measures.h"
#include "ml/decision_tree.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "service/sharded_service.h"
#include "service/snapshot.h"
#include "service_test_util.h"
#include "util/rng.h"
#include "util/status.h"

namespace dynamicc {
namespace {

/// Checks dataset/graph/engine agreement plus incremental-stats exactness.
void AssertConsistent(const Dataset& dataset, const SimilarityGraph& graph,
                      const ClusteringEngine& engine) {
  // Graph objects == alive dataset objects == clustered objects.
  std::vector<ObjectId> alive = dataset.AliveIds();
  EXPECT_EQ(graph.num_objects(), alive.size());
  EXPECT_EQ(engine.clustering().num_objects(), alive.size());
  for (ObjectId id : alive) {
    EXPECT_TRUE(graph.Contains(id));
    EXPECT_NE(engine.clustering().ClusterOf(id), kInvalidCluster);
  }
  // Every cluster member is alive, memberships are mutual.
  for (ClusterId cluster : engine.clustering().ClusterIds()) {
    for (ObjectId member : engine.clustering().Members(cluster)) {
      EXPECT_TRUE(dataset.IsAlive(member));
      EXPECT_EQ(engine.clustering().ClusterOf(member), cluster);
    }
  }
  // Incremental similarity aggregates equal a full rebuild.
  ClusterStatsTracker rebuilt(&engine.clustering(), &graph);
  rebuilt.Rebuild();
  EXPECT_NEAR(engine.stats().TotalIntraSum(), rebuilt.TotalIntraSum(), 1e-6);
  EXPECT_NEAR(engine.stats().TotalInterSum(), rebuilt.TotalInterSum(), 1e-6);
  for (ClusterId cluster : engine.clustering().ClusterIds()) {
    EXPECT_NEAR(engine.stats().IntraSum(cluster), rebuilt.IntraSum(cluster),
                1e-6);
  }
}

class SessionFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SessionFuzzTest, RandomStreamKeepsEverythingConsistent) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  Dataset dataset;
  EuclideanSimilarity measure(1.2);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  GreedyAgglomerative batch(&objective);

  DynamicCSession::Options options;
  options.observe_every = (GetParam() % 2 == 0) ? 3 : 0;
  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<DecisionTree>(), options);

  std::vector<ObjectId> alive;
  auto random_ops = [&](int adds, int removes, int updates) {
    OperationBatch ops;
    for (int i = 0; i < adds; ++i) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      op.record.numeric = {8.0 * rng.Index(5) + rng.Gaussian(0.0, 0.4)};
      ops.push_back(op);
    }
    std::unordered_set<ObjectId> touched;
    for (int i = 0; i < removes && alive.size() > touched.size() + 3; ++i) {
      ObjectId id = alive[rng.Index(alive.size())];
      if (!touched.insert(id).second) continue;
      DataOperation op;
      op.kind = DataOperation::Kind::kRemove;
      op.target = id;
      ops.push_back(op);
    }
    for (int i = 0; i < updates && !alive.empty(); ++i) {
      ObjectId id = alive[rng.Index(alive.size())];
      if (!touched.insert(id).second) continue;
      DataOperation op;
      op.kind = DataOperation::Kind::kUpdate;
      op.target = id;
      op.record.numeric = {8.0 * rng.Index(5) + rng.Gaussian(0.0, 0.4)};
      ops.push_back(op);
    }
    return ops;
  };
  ObjectId next_id = 0;  // mirrors Dataset's sequential id assignment
  auto track = [&](const OperationBatch& ops) {
    for (const auto& op : ops) {
      if (op.kind == DataOperation::Kind::kAdd) {
        alive.push_back(next_id++);
      } else if (op.kind == DataOperation::Kind::kRemove) {
        alive.erase(std::find(alive.begin(), alive.end(), op.target));
      }
    }
  };

  // Two observed rounds, then a fuzzing run of dynamic rounds.
  for (int round = 0; round < 2; ++round) {
    OperationBatch ops = random_ops(25, 2, 2);
    track(ops);
    auto changed = session.ApplyOperations(ops);
    session.ObserveBatchRound(changed);
    AssertConsistent(dataset, graph, session.engine());
  }
  ASSERT_TRUE(session.is_trained());

  double score = objective.Evaluate(session.engine());
  for (int round = 0; round < 6; ++round) {
    OperationBatch ops =
        random_ops(static_cast<int>(2 + rng.Index(10)),
                   static_cast<int>(rng.Index(4)),
                   static_cast<int>(rng.Index(4)));
    track(ops);
    auto changed = session.ApplyOperations(ops);
    double before_round = objective.Evaluate(session.engine());
    auto report = session.DynamicRound(changed);
    AssertConsistent(dataset, graph, session.engine());
    if (!report.used_batch) {
      // Dynamic rounds only apply validator-approved (improving) changes.
      EXPECT_LE(objective.Evaluate(session.engine()), before_round + 1e-9);
    }
    score = objective.Evaluate(session.engine());
  }
  EXPECT_GE(score, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionFuzzTest, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// Async-service fuzz: random add/update/remove streams enqueued into the
// pipelined service with Drain/Flush/Snapshot interleaved at random.
// Whatever the queues coalesced and whenever the background workers
// rounded, every flush barrier must leave the whole sharded stack
// consistent, with the tracked alive set exactly clustered.

class ServiceAsyncFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ServiceAsyncFuzzTest, InterleavedEnqueueAndFlushStaysConsistent) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  ShardedDynamicCService::Options options;
  options.num_shards = (GetParam() % 2 == 0) ? 4 : 2;
  options.async.enabled = true;
  options.async.queue_depth = 1 + rng.Index(32);  // exercise backpressure
  options.async.max_batch = rng.Index(8);         // 0 = drain everything
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  const int kGroups = 8;
  std::vector<ObjectId> alive;       // tracked global ids
  std::vector<ObjectId> recent;      // admitted this phase, maybe queued
  uint64_t admitted = 0;
  auto random_ops = [&](int adds, int churn) {
    OperationBatch ops;
    for (int i = 0; i < adds; ++i) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      int group = static_cast<int>(rng.Index(kGroups));
      op.record.entity = static_cast<uint32_t>(group);
      op.record.tokens = {"grp" + std::to_string(group),
                          "tag" + std::to_string(group)};
      ops.push_back(op);
    }
    // Churn against recently admitted ids: in async mode these target
    // operations that may still sit in a queue, exercising the add ->
    // update fold and add -> remove annihilation paths end to end.
    for (int i = 0; i < churn && !recent.empty(); ++i) {
      ObjectId target = recent[rng.Index(recent.size())];
      if (std::find(alive.begin(), alive.end(), target) == alive.end()) {
        continue;
      }
      DataOperation op;
      if (rng.Chance(0.5)) {
        op.kind = DataOperation::Kind::kUpdate;
        int group = static_cast<int>(target % kGroups);
        op.record.entity = static_cast<uint32_t>(group);
        op.record.tokens = {"grp" + std::to_string(group),
                            "tag" + std::to_string(group)};
      } else {
        op.kind = DataOperation::Kind::kRemove;
        alive.erase(std::find(alive.begin(), alive.end(), target));
      }
      op.target = target;
      ops.push_back(op);
    }
    return ops;
  };
  auto admit = [&](const OperationBatch& ops) {
    auto changed = service.ApplyOperations(ops);
    admitted += ops.size();
    recent.clear();
    for (size_t i = 0, c = 0; i < ops.size(); ++i) {
      if (ops[i].kind == DataOperation::Kind::kAdd) {
        alive.push_back(changed[c]);
        recent.push_back(changed[c]);
        ++c;
      } else if (ops[i].kind == DataOperation::Kind::kUpdate) {
        ++c;
      }
    }
  };
  auto check_flushed = [&] {
    // Every admitted operation reflected; alive set exactly clustered.
    ServiceSnapshot snap = service.Snapshot();
    EXPECT_EQ(snap.sequence, admitted);
    EXPECT_EQ(snap.total_objects, alive.size());
    std::vector<ObjectId> clustered;
    for (const auto& cluster : snap.clusters) {
      clustered.insert(clustered.end(), cluster.begin(), cluster.end());
    }
    std::sort(clustered.begin(), clustered.end());
    std::vector<ObjectId> expected = alive;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(clustered, expected);
  };

  // Training phase behind explicit barriers.
  for (int round = 0; round < 2; ++round) {
    admit(random_ops(20, 2));
    service.ObserveBatchRound({});
    check_flushed();
  }

  // Serving phase: enqueue bursts with random barriers in between.
  for (int step = 0; step < 12; ++step) {
    admit(random_ops(static_cast<int>(1 + rng.Index(6)),
                     static_cast<int>(rng.Index(4))));
    double dice = rng.Uniform();
    if (dice < 0.25) {
      service.Flush();
      check_flushed();
    } else if (dice < 0.45) {
      service.Drain();
    } else if (dice < 0.6) {
      ServiceSnapshot snap = service.Snapshot();  // mid-stream cut
      EXPECT_LE(snap.sequence, admitted);
    }
  }
  service.Flush();
  check_flushed();
  EXPECT_EQ(service.ingest_stats().accepted_ops, admitted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServiceAsyncFuzzTest, ::testing::Range(1, 7));

// ---------------------------------------------------------------------------
// Snapshot fuzz: random streams with a save -> load -> continue-ingesting
// pivot at a random point. The restored service must assign the same ids
// and produce the same clusters as the original for the entire remaining
// stream — under random coalescing, random barriers, sync and async —
// and randomly mutilated snapshot directories must be rejected.

class SnapshotFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotFuzzTest, SaveLoadContinueStaysByteIdentical) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 15485863 + 11);
  ShardedDynamicCService::Options options;
  options.num_shards = (GetParam() % 2 == 0) ? 4 : 2;
  options.async.enabled = GetParam() % 3 != 0;
  options.async.queue_depth = 8 + rng.Index(64);
  options.async.max_batch = rng.Index(8);
  auto make_service = [&options] {
    return std::make_unique<ShardedDynamicCService>(options, nullptr,
                                                    MakeFactory());
  };
  auto original = make_service();

  const int kGroups = 6;
  std::vector<ObjectId> alive;
  auto random_ops = [&](int adds, int churn) {
    OperationBatch ops;
    for (int i = 0; i < adds; ++i) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      int group = static_cast<int>(rng.Index(kGroups));
      op.record.entity = static_cast<uint32_t>(group);
      op.record.tokens = {"grp" + std::to_string(group),
                          "tag" + std::to_string(group),
                          "n" + std::to_string(rng.Index(50))};
      ops.push_back(op);
    }
    for (int i = 0; i < churn && !alive.empty(); ++i) {
      size_t pick = rng.Index(alive.size());
      ObjectId target = alive[pick];
      DataOperation op;
      op.target = target;
      if (rng.Chance(0.6)) {
        op.kind = DataOperation::Kind::kUpdate;
        int group = static_cast<int>(target % kGroups);
        op.record.entity = static_cast<uint32_t>(group);
        op.record.tokens = {"grp" + std::to_string(group),
                            "tag" + std::to_string(group),
                            "m" + std::to_string(rng.Index(50))};
      } else {
        op.kind = DataOperation::Kind::kRemove;
        alive.erase(alive.begin() + static_cast<long>(pick));
      }
      ops.push_back(op);
    }
    return ops;
  };
  // Drives one or two services in lockstep and asserts identical id
  // assignment (the byte-identical-assignments half of the contract).
  ShardedDynamicCService* restored = nullptr;
  std::unique_ptr<ShardedDynamicCService> restored_owner;
  auto admit = [&](const OperationBatch& ops) {
    auto changed = original->ApplyOperations(ops);
    if (restored != nullptr) {
      EXPECT_EQ(restored->ApplyOperations(ops), changed);
    }
    for (size_t i = 0, c = 0; i < ops.size(); ++i) {
      if (ops[i].kind == DataOperation::Kind::kAdd) {
        alive.push_back(changed[c++]);
      } else if (ops[i].kind == DataOperation::Kind::kUpdate) {
        ++c;
      }
    }
  };
  auto barrier_and_compare = [&] {
    original->Flush();
    if (restored != nullptr) {
      restored->Flush();
      EXPECT_EQ(original->GlobalClusters(), restored->GlobalClusters());
      EXPECT_EQ(original->placement().version(),
                restored->placement().version());
    }
  };

  for (int round = 0; round < 2; ++round) {
    auto ops = random_ops(18, 2);
    auto changed = original->ApplyOperations(ops);
    for (size_t i = 0, c = 0; i < ops.size(); ++i) {
      if (ops[i].kind == DataOperation::Kind::kAdd) {
        alive.push_back(changed[c++]);
      } else if (ops[i].kind == DataOperation::Kind::kUpdate) {
        ++c;
      }
    }
    original->ObserveBatchRound(changed);
  }
  original->Flush();

  const std::string dir = ::testing::TempDir() + "dynamicc_snapfuzz_" +
                          std::to_string(GetParam());
  std::filesystem::remove_all(dir);
  const int pivot = 2 + static_cast<int>(rng.Index(4));
  for (int step = 0; step < 10; ++step) {
    admit(random_ops(static_cast<int>(1 + rng.Index(5)),
                     static_cast<int>(rng.Index(3))));
    if (rng.Chance(0.3)) barrier_and_compare();
    if (step == pivot) {
      // Save mid-stream (SaveSnapshot quiesces by itself) and continue
      // driving the original and the restored copy in lockstep.
      ASSERT_TRUE(original->SaveSnapshot(dir).ok());
      restored_owner = make_service();
      ASSERT_TRUE(restored_owner->LoadSnapshot(dir).ok());
      restored = restored_owner.get();
      EXPECT_EQ(original->GlobalClusters(), restored->GlobalClusters());
    }
  }
  barrier_and_compare();
  ASSERT_NE(restored, nullptr);
  IngestStats sa = original->ingest_stats();
  IngestStats sb = restored->ingest_stats();
  EXPECT_EQ(sa.accepted_ops, sb.accepted_ops);
  // applied_ops is deliberately NOT compared: this stream churns
  // recently-admitted ids, so how many operations the queues coalesce
  // away — and hence how many survive to be applied — depends on each
  // service's drain-worker timing. Equivalent services can legitimately
  // disagree on it; the clustering comparison above is the contract.

  // Mutilation fuzz on the saved directory: any byte flip or truncation
  // anywhere must be caught by the manifest checksums.
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().filename() != "MANIFEST") {
      files.push_back(entry.path().string());
    }
  }
  ASSERT_FALSE(files.empty());
  for (int trial = 0; trial < 4; ++trial) {
    const std::string& victim = files[rng.Index(files.size())];
    std::ifstream in(victim, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    std::string bytes = buffer.str();
    in.close();
    ASSERT_FALSE(bytes.empty());
    std::string damaged = bytes;
    if (rng.Chance(0.5)) {
      damaged[rng.Index(damaged.size())] ^= static_cast<char>(
          1 + rng.Index(255));
    } else {
      damaged.resize(rng.Index(damaged.size()));
    }
    if (damaged == bytes) continue;
    {
      std::ofstream out(victim, std::ios::binary | std::ios::trunc);
      out << damaged;
    }
    auto fresh = make_service();
    EXPECT_FALSE(fresh->LoadSnapshot(dir).ok())
        << victim << " mutilation went undetected";
    std::ofstream out(victim, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFuzzTest, ::testing::Range(1, 7));

}  // namespace
}  // namespace dynamicc
