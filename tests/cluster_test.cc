#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster_stats.h"
#include "cluster/clustering.h"
#include "cluster/engine.h"
#include "cluster/evolution.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

// --------------------------------------------------------------- clustering

TEST(Clustering, SingletonLifecycle) {
  Clustering clustering;
  ClusterId c = clustering.CreateSingleton(7);
  EXPECT_EQ(clustering.ClusterOf(7), c);
  EXPECT_EQ(clustering.ClusterSize(c), 1u);
  EXPECT_EQ(clustering.num_clusters(), 1u);
  EXPECT_EQ(clustering.Unassign(7), c);
  EXPECT_FALSE(clustering.HasCluster(c));  // empty cluster deleted
  EXPECT_EQ(clustering.ClusterOf(7), kInvalidCluster);
}

TEST(Clustering, ClusterIdsNeverReused) {
  Clustering clustering;
  ClusterId a = clustering.CreateSingleton(1);
  clustering.Unassign(1);
  ClusterId b = clustering.CreateSingleton(1);
  EXPECT_NE(a, b);
}

TEST(Clustering, VersionBumpsOnMembershipChange) {
  Clustering clustering;
  ClusterId c = clustering.CreateCluster();
  uint64_t v0 = clustering.ClusterVersion(c);
  clustering.Assign(1, c);
  uint64_t v1 = clustering.ClusterVersion(c);
  EXPECT_GT(v1, v0);
  clustering.Assign(2, c);
  EXPECT_GT(clustering.ClusterVersion(c), v1);
}

TEST(Clustering, CanonicalClustersSortedAndStable) {
  Clustering clustering;
  ClusterId a = clustering.CreateCluster();
  ClusterId b = clustering.CreateCluster();
  clustering.Assign(5, a);
  clustering.Assign(2, a);
  clustering.Assign(9, b);
  auto canonical = clustering.CanonicalClusters();
  ASSERT_EQ(canonical.size(), 2u);
  EXPECT_EQ(canonical[0], (std::vector<ObjectId>{2, 5}));
  EXPECT_EQ(canonical[1], (std::vector<ObjectId>{9}));
}

// ------------------------------------------------------------ engine setup

/// Builds a small weighted graph from explicit edges for engine/stat tests.
class EngineFixture : public ::testing::Test {
 protected:
  EngineFixture()
      : measure_(1.0),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.05) {}

  /// Adds n objects positioned so that Similarity matches the Gaussian of
  /// their 1-D distance; we use explicit coordinates per test.
  ObjectId AddPoint(double x) {
    Record record;
    record.numeric = {x};
    ObjectId id = dataset_.Add(record);
    graph_.AddObject(id);
    return id;
  }

  Dataset dataset_;
  EuclideanSimilarity measure_;
  SimilarityGraph graph_;
};

TEST_F(EngineFixture, SingletonsAndMerge) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ObjectId c = AddPoint(10.0);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  EXPECT_EQ(engine.clustering().num_clusters(), 3u);

  ClusterId ca = engine.clustering().ClusterOf(a);
  ClusterId cb = engine.clustering().ClusterOf(b);
  ClusterId merged = engine.Merge(ca, cb);
  EXPECT_EQ(engine.clustering().num_clusters(), 2u);
  EXPECT_EQ(engine.clustering().ClusterOf(a), merged);
  EXPECT_EQ(engine.clustering().ClusterOf(b), merged);
  EXPECT_NE(engine.clustering().ClusterOf(c), merged);
  // Intra sum of the merged pair equals their similarity.
  EXPECT_NEAR(engine.stats().IntraSum(merged), graph_.Similarity(a, b),
              1e-12);
}

TEST_F(EngineFixture, SplitOutMovesMembers) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ObjectId c = AddPoint(0.2);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId cluster = engine.Merge(
      engine.Merge(engine.clustering().ClusterOf(a),
                   engine.clustering().ClusterOf(b)),
      engine.clustering().ClusterOf(c));
  ClusterId fresh = engine.SplitOut(cluster, {c});
  EXPECT_EQ(engine.clustering().ClusterOf(c), fresh);
  EXPECT_EQ(engine.clustering().ClusterSize(cluster), 2u);
  EXPECT_EQ(engine.clustering().ClusterSize(fresh), 1u);
}

TEST_F(EngineFixture, MoveObject) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ObjectId c = AddPoint(0.2);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId ab = engine.Merge(engine.clustering().ClusterOf(a),
                              engine.clustering().ClusterOf(b));
  ClusterId cc = engine.clustering().ClusterOf(c);
  engine.Move(b, cc);
  EXPECT_EQ(engine.clustering().ClusterOf(b), cc);
  EXPECT_EQ(engine.clustering().ClusterSize(ab), 1u);
}

TEST_F(EngineFixture, RemoveObjectDropsFromStats) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId merged = engine.Merge(engine.clustering().ClusterOf(a),
                                  engine.clustering().ClusterOf(b));
  engine.RemoveObject(b);
  EXPECT_EQ(engine.clustering().ClusterSize(merged), 1u);
  EXPECT_NEAR(engine.stats().IntraSum(merged), 0.0, 1e-12);
}

TEST_F(EngineFixture, SetClusteringAdoptsPartition) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  Clustering partition;
  ClusterId c = partition.CreateCluster();
  partition.Assign(a, c);
  partition.Assign(b, c);
  ClusteringEngine engine(&graph_);
  engine.SetClustering(partition);
  EXPECT_EQ(engine.clustering().num_clusters(), 1u);
  EXPECT_NEAR(engine.stats().IntraSum(engine.clustering().ClusterOf(a)),
              graph_.Similarity(a, b), 1e-12);
}

// ----------------------------------------------------------- group surgery

TEST_F(EngineFixture, ExtractGroupStateDetachesWholeClusters) {
  // Two tight pairs far apart; extracting one pair removes its cluster
  // wholesale (no split) and leaves the rest — and its stats — intact.
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.01);
  ObjectId c = AddPoint(10.0);
  ObjectId d = AddPoint(10.01);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId ab = engine.Merge(engine.clustering().ClusterOf(a),
                              engine.clustering().ClusterOf(b));
  ClusterId cd = engine.Merge(engine.clustering().ClusterOf(c),
                              engine.clustering().ClusterOf(d));
  double cd_intra = engine.stats().IntraSum(cd);

  auto extract = engine.ExtractGroupState({a, b});
  EXPECT_EQ(extract.split_sources, 0u);
  ASSERT_EQ(extract.clusters.size(), 1u);
  EXPECT_EQ(extract.clusters[0], (std::vector<ObjectId>{a, b}));
  EXPECT_FALSE(engine.clustering().HasCluster(ab));
  EXPECT_EQ(engine.clustering().ClusterOf(a), kInvalidCluster);
  EXPECT_EQ(engine.clustering().num_clusters(), 1u);
  EXPECT_NEAR(engine.stats().IntraSum(cd), cd_intra, 1e-12);
  EXPECT_NEAR(engine.stats().TotalIntraSum(), cd_intra, 1e-12);
}

TEST_F(EngineFixture, ExtractGroupStateReportsCutClusters) {
  // Extracting a strict subset of a cluster must cut it: the survivor
  // stays behind and split_sources flags the damage.
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ObjectId c = AddPoint(0.2);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId abc = engine.Merge(
      engine.Merge(engine.clustering().ClusterOf(a),
                   engine.clustering().ClusterOf(b)),
      engine.clustering().ClusterOf(c));

  auto extract = engine.ExtractGroupState({a, b});
  EXPECT_EQ(extract.split_sources, 1u);
  ASSERT_EQ(extract.clusters.size(), 1u);
  EXPECT_EQ(extract.clusters[0], (std::vector<ObjectId>{a, b}));
  EXPECT_TRUE(engine.clustering().HasCluster(abc));
  EXPECT_EQ(engine.clustering().ClusterSize(abc), 1u);
  EXPECT_NEAR(engine.stats().IntraSum(abc), 0.0, 1e-12);
}

TEST_F(EngineFixture, AdoptGroupStateRestoresStatsFromGraphEdges) {
  // Round-trip through a second engine over the same graph: adopting
  // the extracted sub-partition must reproduce membership *and*
  // aggregates exactly (verified against an independent Rebuild).
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.01);
  ObjectId c = AddPoint(0.02);
  ObjectId d = AddPoint(10.0);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  engine.Merge(engine.Merge(engine.clustering().ClusterOf(a),
                            engine.clustering().ClusterOf(b)),
               engine.clustering().ClusterOf(c));
  auto canonical = engine.clustering().CanonicalClusters();
  double total_intra = engine.stats().TotalIntraSum();

  auto extract = engine.ExtractGroupState({a, b, c, d});
  EXPECT_EQ(engine.clustering().num_clusters(), 0u);

  ClusteringEngine adopter(&graph_);
  adopter.AdoptGroupState(extract.clusters);
  EXPECT_EQ(adopter.clustering().CanonicalClusters(), canonical);
  EXPECT_NEAR(adopter.stats().TotalIntraSum(), total_intra, 1e-12);
  ClusterId abc = adopter.clustering().ClusterOf(a);
  double incremental = adopter.stats().IntraSum(abc);
  // The incremental aggregates equal a from-scratch rebuild.
  Clustering snapshot = adopter.Snapshot();
  ClusteringEngine rebuilt(&graph_);
  rebuilt.SetClustering(snapshot);
  EXPECT_NEAR(rebuilt.stats().IntraSum(rebuilt.clustering().ClusterOf(a)),
              incremental, 1e-12);
}

// ------------------------------------------------------------ stats values

TEST_F(EngineFixture, AverageIntraAndInter) {
  // Two tight pairs, far apart: intra ~ 1, inter ~ 0.
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.01);
  ObjectId c = AddPoint(1.0);
  ObjectId d = AddPoint(1.01);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId ab = engine.Merge(engine.clustering().ClusterOf(a),
                              engine.clustering().ClusterOf(b));
  ClusterId cd = engine.Merge(engine.clustering().ClusterOf(c),
                              engine.clustering().ClusterOf(d));
  EXPECT_GT(engine.stats().AverageIntraSimilarity(ab), 0.99);
  double expected_inter =
      (graph_.Similarity(a, c) + graph_.Similarity(a, d) +
       graph_.Similarity(b, c) + graph_.Similarity(b, d)) /
      4.0;
  EXPECT_NEAR(engine.stats().AverageInterSimilarity(ab, cd), expected_inter,
              1e-12);
  auto max_inter = engine.stats().MaxAverageInter(ab);
  EXPECT_EQ(max_inter.cluster, cd);
  EXPECT_NEAR(max_inter.average, expected_inter, 1e-12);
}

TEST_F(EngineFixture, SingletonAverageIntraIsOne) {
  ObjectId a = AddPoint(0.0);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  EXPECT_DOUBLE_EQ(
      engine.stats().AverageIntraSimilarity(engine.clustering().ClusterOf(a)),
      1.0);
}

TEST_F(EngineFixture, SumToClusterMatchesManualSum) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.5);
  ObjectId c = AddPoint(1.0);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId bc = engine.Merge(engine.clustering().ClusterOf(b),
                              engine.clustering().ClusterOf(c));
  double expected = graph_.Similarity(a, b) + graph_.Similarity(a, c);
  EXPECT_NEAR(engine.stats().SumToCluster(a, bc), expected, 1e-12);
}

// Property: incremental aggregates equal a full rebuild after random ops.
class StatsConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(StatsConsistencyTest, IncrementalMatchesRebuild) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  std::vector<ObjectId> objects;
  for (int i = 0; i < 30; ++i) {
    Record record;
    record.numeric = {rng.Uniform(0.0, 6.0)};
    ObjectId id = dataset.Add(record);
    graph.AddObject(id);
    objects.push_back(id);
  }
  ClusteringEngine engine(&graph);
  engine.InitSingletons();

  for (int step = 0; step < 80; ++step) {
    auto ids = engine.clustering().ClusterIds();
    double action = rng.Uniform();
    if (action < 0.5 && ids.size() >= 2) {
      ClusterId a = ids[rng.Index(ids.size())];
      ClusterId b = ids[rng.Index(ids.size())];
      if (a != b) engine.Merge(a, b);
    } else if (action < 0.75) {
      ClusterId c = ids[rng.Index(ids.size())];
      if (engine.clustering().ClusterSize(c) >= 2) {
        ObjectId member = *engine.clustering().Members(c).begin();
        engine.SplitOut(c, {member});
      }
    } else if (ids.size() >= 2) {
      ClusterId from = ids[rng.Index(ids.size())];
      ClusterId to = ids[rng.Index(ids.size())];
      if (from != to && engine.clustering().ClusterSize(from) >= 1) {
        ObjectId member = *engine.clustering().Members(from).begin();
        engine.Move(member, to);
      }
    }
  }

  // Compare every aggregate against a freshly rebuilt tracker.
  ClusterStatsTracker rebuilt(&engine.clustering(), &graph);
  rebuilt.Rebuild();
  EXPECT_NEAR(engine.stats().TotalIntraSum(), rebuilt.TotalIntraSum(), 1e-9);
  EXPECT_NEAR(engine.stats().TotalInterSum(), rebuilt.TotalInterSum(), 1e-9);
  for (ClusterId c : engine.clustering().ClusterIds()) {
    EXPECT_NEAR(engine.stats().IntraSum(c), rebuilt.IntraSum(c), 1e-9);
    for (ClusterId d : engine.clustering().ClusterIds()) {
      if (c < d) {
        EXPECT_NEAR(engine.stats().InterSum(c, d), rebuilt.InterSum(c, d),
                    1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsConsistencyTest, ::testing::Range(1, 7));

// ------------------------------------------------------ recording observer

TEST_F(EngineFixture, RecordingObserverCapturesPreChangeState) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ObjectId c = AddPoint(0.2);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  RecordingObserver observer;
  ClusterId ca = engine.clustering().ClusterOf(a);
  ClusterId cb = engine.clustering().ClusterOf(b);
  observer.OnMerge(engine, ca, cb);
  ClusterId ab = engine.Merge(ca, cb);
  observer.OnSplit(engine, ab, {a});
  engine.SplitOut(ab, {a});
  (void)c;

  ASSERT_EQ(observer.steps().size(), 2u);
  EXPECT_EQ(observer.steps()[0].kind, EvolutionStep::Kind::kMerge);
  EXPECT_EQ(observer.steps()[0].left, (std::vector<ObjectId>{a}));
  EXPECT_EQ(observer.steps()[0].right, (std::vector<ObjectId>{b}));
  EXPECT_EQ(observer.steps()[1].kind, EvolutionStep::Kind::kSplit);
  EXPECT_EQ(observer.steps()[1].left, (std::vector<ObjectId>{a}));
  EXPECT_EQ(observer.steps()[1].right, (std::vector<ObjectId>{b}));
  EXPECT_NE(observer.steps()[0].ToString().find("merge"), std::string::npos);
}

}  // namespace
}  // namespace dynamicc
