// Replication subsystem (src/replication/): delta-log wire format and
// compaction policy, primary-side ReplicationSession shipping epoch
// deltas through the service's seal hook, and the Follower contract —
// base snapshot + delta replay is byte-identical to the primary at
// every sealed epoch (clusterings, models, placement, dense id
// assignment), live tailing keeps up, and Promote() yields a service
// that stays in lockstep on the subsequent stream with zero retraining.

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ml/serialization.h"
#include "net/delta_stream.h"
#include "net/front_end.h"
#include "replication/delta_log.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/sharded_service.h"
#include "service_test_util.h"
#include "util/status.h"
#include "util/wire.h"

namespace dynamicc {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_repl_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardedDynamicCService::Options ServiceOptions(uint32_t shards, bool async) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = async;
  return options;
}

std::string ModelBytes(const BinaryClassifier& model) {
  if (!model.is_fitted()) return "unfitted";
  std::ostringstream os;
  EXPECT_TRUE(SaveClassifier(model, os).ok());
  return os.str();
}

/// The replica-equivalence bar: everything the acceptance criteria name
/// (clusterings, models, placement) plus the admission-side state that
/// makes failover seamless (dense id assignment, epochs, cadence).
/// Deliberately not compared: worker-side counters (applied batches,
/// coalescing) — an async primary and a sync replica do different
/// amounts of queue bookkeeping for the same state.
void ExpectReplica(ShardedDynamicCService& primary,
                   ShardedDynamicCService& replica) {
  EXPECT_EQ(primary.GlobalClusters(), replica.GlobalClusters());
  EXPECT_EQ(primary.total_objects(), replica.total_objects());
  EXPECT_EQ(primary.total_clusters(), replica.total_clusters());
  EXPECT_EQ(primary.open_epoch(), replica.open_epoch());
  EXPECT_EQ(primary.placement().version(), replica.placement().version());
  EXPECT_EQ(primary.placement().Current()->overrides,
            replica.placement().Current()->overrides);
  EXPECT_EQ(primary.ingest_stats().accepted_ops,
            replica.ingest_stats().accepted_ops);
  ASSERT_EQ(primary.num_shards(), replica.num_shards());
  for (uint32_t s = 0; s < primary.num_shards(); ++s) {
    SCOPED_TRACE(testing::Message() << "shard " << s);
    EXPECT_EQ(ModelBytes(primary.session(s).merge_model()),
              ModelBytes(replica.session(s).merge_model()));
    EXPECT_EQ(ModelBytes(primary.session(s).split_model()),
              ModelBytes(replica.session(s).split_model()));
    DynamicCSession::PersistentState a = primary.session(s).ExportState();
    DynamicCSession::PersistentState b = replica.session(s).ExportState();
    EXPECT_EQ(a.trained, b.trained);
    EXPECT_EQ(a.rounds_since_retrain, b.rounds_since_retrain);
    EXPECT_EQ(a.rounds_since_observe, b.rounds_since_observe);
    EXPECT_EQ(a.merge_theta, b.merge_theta);
    EXPECT_EQ(a.split_theta, b.split_theta);
  }
}

// ------------------------------------------------------------ DeltaLog

TEST(DeltaLog, RoundTripsEveryEventKind) {
  DeltaLog log(TempDir("roundtrip"));
  ASSERT_TRUE(log.Init().ok());

  std::vector<ReplicationEvent> events;
  {
    ReplicationEvent batch;
    batch.kind = ReplicationEvent::Kind::kBatch;
    DataOperation add;
    add.kind = DataOperation::Kind::kAdd;
    add.target = 7;
    add.record.entity = 3;
    add.record.tokens = {"with space", "new\nline", ""};
    add.record.text = std::string("\0binary\xff", 8);
    add.record.numeric = {1.0 / 3.0, -2.5e-17};
    batch.ops.push_back(add);
    DataOperation update;
    update.kind = DataOperation::Kind::kUpdate;
    update.target = 4;
    update.record.tokens = {"u"};
    batch.ops.push_back(update);
    DataOperation remove;
    remove.kind = DataOperation::Kind::kRemove;
    remove.target = 2;
    batch.ops.push_back(remove);
    events.push_back(batch);

    ReplicationEvent migrate;
    migrate.kind = ReplicationEvent::Kind::kMigration;
    migrate.group = 0xdeadbeefcafeULL;
    migrate.to_shard = 3;
    events.push_back(migrate);

    ReplicationEvent barrier;
    barrier.kind = ReplicationEvent::Kind::kBarrier;
    barrier.barrier = StreamObserver::Barrier::kObserve;
    barrier.hints = {1, 5, 9};
    events.push_back(barrier);
  }
  ASSERT_TRUE(log.WriteDelta(42, 17, events).ok());

  std::vector<ReplicationEvent> restored;
  DeltaInfo info;
  ASSERT_TRUE(log.ReadDelta(42, &restored, &info).ok());
  EXPECT_EQ(info.epoch, 42u);
  EXPECT_EQ(info.pending_at_seal, 17u);
  EXPECT_EQ(info.event_count, 3u);
  ASSERT_EQ(restored.size(), 3u);
  ASSERT_EQ(restored[0].ops.size(), 3u);
  EXPECT_EQ(restored[0].ops[0].target, 7u);
  EXPECT_EQ(restored[0].ops[0].record.tokens, events[0].ops[0].record.tokens);
  EXPECT_EQ(restored[0].ops[0].record.text, events[0].ops[0].record.text);
  EXPECT_EQ(restored[0].ops[0].record.numeric,
            events[0].ops[0].record.numeric);  // exact, not near
  EXPECT_EQ(restored[0].ops[2].kind, DataOperation::Kind::kRemove);
  EXPECT_EQ(restored[1].group, events[1].group);
  EXPECT_EQ(restored[1].to_shard, 3u);
  EXPECT_EQ(restored[2].barrier, StreamObserver::Barrier::kObserve);
  EXPECT_EQ(restored[2].hints, events[2].hints);
}

TEST(DeltaLog, RejectsTruncationCorruptionAndVersionSkew) {
  DeltaLog log(TempDir("mutilate"));
  ASSERT_TRUE(log.Init().ok());
  std::vector<ReplicationEvent> events(1);
  events[0].kind = ReplicationEvent::Kind::kBarrier;
  events[0].hints = {1, 2, 3};
  ASSERT_TRUE(log.WriteDelta(5, 0, events).ok());

  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(log.DeltaPathFor(5), &bytes).ok());
  std::vector<ReplicationEvent> out;

  // Truncation.
  ASSERT_TRUE(
      WriteFileBytes(log.DeltaPathFor(5), bytes.substr(0, bytes.size() / 2))
          .ok());
  EXPECT_FALSE(log.ReadDelta(5, &out).ok());

  // Flipped payload byte.
  std::string flipped = bytes;
  flipped[flipped.size() - 2] ^= 0x20;
  ASSERT_TRUE(WriteFileBytes(log.DeltaPathFor(5), flipped).ok());
  EXPECT_FALSE(log.ReadDelta(5, &out).ok());

  // Version skew.
  std::string skewed = bytes;
  size_t pos = skewed.find("dynamicc-delta 1");
  ASSERT_NE(pos, std::string::npos);
  skewed.replace(pos, 16, "dynamicc-delta 9");
  ASSERT_TRUE(WriteFileBytes(log.DeltaPathFor(5), skewed).ok());
  Status status = log.ReadDelta(5, &out);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("version"), std::string::npos);

  // Epoch/file-name mismatch.
  ASSERT_TRUE(WriteFileBytes(log.DeltaPathFor(6), bytes).ok());
  EXPECT_FALSE(log.ReadDelta(6, &out).ok());

  // Intact content still loads (the rejections above were not sticky).
  ASSERT_TRUE(WriteFileBytes(log.DeltaPathFor(5), bytes).ok());
  EXPECT_TRUE(log.ReadDelta(5, &out).ok());
}

TEST(DeltaLog, ListIgnoresUnpublishedArtifacts) {
  DeltaLog log(TempDir("listing"));
  ASSERT_TRUE(log.Init().ok());
  ASSERT_TRUE(log.WriteDelta(3, 0, {}).ok());
  ASSERT_TRUE(log.WriteDelta(4, 0, {}).ok());
  std::filesystem::create_directories(log.BaseDirFor(2));
  std::filesystem::create_directories(log.dir() + "/base-9.saving");
  ASSERT_TRUE(WriteFileBytes(log.dir() + "/delta-7.dat.tmp", "torn").ok());
  ASSERT_TRUE(WriteFileBytes(log.dir() + "/unrelated.txt", "x").ok());

  DeltaLog::State state;
  ASSERT_TRUE(log.List(&state).ok());
  EXPECT_EQ(state.bases, (std::vector<uint64_t>{2}));
  EXPECT_EQ(state.deltas, (std::vector<uint64_t>{3, 4}));
}

TEST(DeltaLog, CompactionKeepsOneIntervalForLiveTailers) {
  DeltaLog log(TempDir("compact"));
  ASSERT_TRUE(log.Init().ok());
  for (uint64_t e = 1; e <= 8; ++e) ASSERT_TRUE(log.WriteDelta(e, 0, {}).ok());
  std::filesystem::create_directories(log.BaseDirFor(4));
  std::filesystem::create_directories(log.BaseDirFor(8));

  ASSERT_TRUE(log.Compact(8).ok());
  DeltaLog::State state;
  ASSERT_TRUE(log.List(&state).ok());
  // Base 4 is gone; deltas (4, 8] stay for followers tailing past 4.
  EXPECT_EQ(state.bases, (std::vector<uint64_t>{8}));
  EXPECT_EQ(state.deltas, (std::vector<uint64_t>{5, 6, 7, 8}));

  // First-ever base (no predecessor): everything at or below it goes.
  DeltaLog first(TempDir("compact_first"));
  ASSERT_TRUE(first.Init().ok());
  for (uint64_t e = 1; e <= 3; ++e) {
    ASSERT_TRUE(first.WriteDelta(e, 0, {}).ok());
  }
  std::filesystem::create_directories(first.BaseDirFor(3));
  ASSERT_TRUE(first.Compact(3).ok());
  ASSERT_TRUE(first.List(&state).ok());
  EXPECT_EQ(state.bases, (std::vector<uint64_t>{3}));
  EXPECT_TRUE(state.deltas.empty());
}

// ------------------------------------------- primary -> follower replay

/// One replicated serving round on the primary: churn (adds + updates on
/// earlier ids), a flush barrier, then the epoch seal that ships it.
void ServeRound(ShardedDynamicCService& service, ReplicationSession& repl,
                int round) {
  OperationBatch batch = GroupAdds(10, 1);
  for (ObjectId target = static_cast<ObjectId>(round % 3); target < 30;
       target += 11) {
    DataOperation update;
    update.kind = DataOperation::Kind::kUpdate;
    update.target = target;
    int g = static_cast<int>(target % 10);
    update.record.entity = static_cast<uint32_t>(g);
    update.record.tokens = {"grp" + std::to_string(g),
                            "tag" + std::to_string(g),
                            "v" + std::to_string(round)};
    batch.push_back(update);
  }
  std::vector<ObjectId> changed = service.ApplyOperations(batch);
  if (service.async()) {
    service.Flush();
  } else {
    service.DynamicRound(changed);
  }
  repl.SealEpoch();
  ASSERT_TRUE(repl.status().ok());
}

TEST(Replication, FollowerIsByteIdenticalAtEveryEpoch) {
  for (bool async : {false, true}) {
    for (uint32_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE(testing::Message()
                   << "async=" << async << " shards=" << shards);
      ShardedDynamicCService primary(ServiceOptions(shards, async), nullptr,
                                     MakeFactory());
      auto changed = primary.ApplyOperations(GroupAdds(10, 3));
      primary.ObserveBatchRound(changed);
      primary.Flush();

      std::string dir = TempDir("lockstep_" + std::to_string(shards) +
                                (async ? "_async" : "_sync"));
      ReplicationSession repl(&primary, dir, {});
      ASSERT_TRUE(repl.Start().ok());

      Follower follower(dir, ServiceOptions(shards, false), MakeFactory());
      ASSERT_TRUE(follower.Restore().ok());
      EXPECT_EQ(follower.epoch(), follower.base_epoch());
      ExpectReplica(primary, follower.service());

      // Live tail: after every shipped epoch the replica re-converges to
      // byte identity — not only at the end of the stream.
      for (int round = 0; round < 4; ++round) {
        SCOPED_TRACE(round);
        ServeRound(primary, repl, round);
        size_t replayed = 0;
        ASSERT_TRUE(follower.CatchUp(&replayed).ok());
        EXPECT_EQ(replayed, 1u);
        follower.Flush();
        ExpectReplica(primary, follower.service());
      }
      EXPECT_EQ(repl.deltas_shipped(), 5u);  // Start's seal + 4 rounds
    }
  }
}

TEST(Replication, PromotedFollowerStaysInLockstepWithZeroRetraining) {
  for (bool async : {false, true}) {
    SCOPED_TRACE(async);
    ShardedDynamicCService primary(ServiceOptions(2, async), nullptr,
                                   MakeFactory());
    auto changed = primary.ApplyOperations(GroupAdds(8, 3));
    primary.ObserveBatchRound(changed);
    primary.Flush();

    std::string dir = TempDir(std::string("promote_") +
                              (async ? "async" : "sync"));
    ReplicationSession repl(&primary, dir, {});
    ASSERT_TRUE(repl.Start().ok());
    for (int round = 0; round < 3; ++round) {
      OperationBatch batch = GroupAdds(8, 1);
      auto ids = primary.ApplyOperations(batch);
      if (primary.async()) {
        primary.Flush();
      } else {
        primary.DynamicRound(ids);
      }
      repl.SealEpoch();
    }

    Follower follower(dir, ServiceOptions(2, false), MakeFactory());
    ASSERT_TRUE(follower.Restore().ok());
    ASSERT_TRUE(follower.CatchUp().ok());
    follower.Flush();

    // Failover: the promoted service took over with the models it
    // restored + replayed — no retraining — and serves the stream the
    // old primary would have received next, in lockstep.
    std::unique_ptr<ShardedDynamicCService> promoted = follower.Promote();
    ExpectReplica(primary, *promoted);
    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE(round);
      OperationBatch tail = GroupAdds(8, 1);
      DataOperation update;
      update.kind = DataOperation::Kind::kUpdate;
      update.target = static_cast<ObjectId>(round);
      int g = static_cast<int>(update.target % 8);
      update.record.entity = static_cast<uint32_t>(g);
      update.record.tokens = {"grp" + std::to_string(g),
                              "tag" + std::to_string(g), "post-failover"};
      tail.push_back(update);

      auto ids_a = primary.ApplyOperations(tail);
      auto ids_b = promoted->ApplyOperations(tail);
      EXPECT_EQ(ids_a, ids_b);  // dense id assignment continues unchanged
      primary.Flush();
      promoted->Flush();
      primary.CloseEpoch();
      promoted->CloseEpoch();
      ExpectReplica(primary, *promoted);
    }
  }
}

TEST(Replication, SealWithoutBarrierShipsTheBacklog) {
  // Reads at an epoch don't require the primary to barrier first: the
  // seal alone ships the admitted ops, and the *replica's* flush
  // produces the state the primary's Flush(epoch) would.
  ShardedDynamicCService primary(ServiceOptions(2, true), nullptr,
                                 MakeFactory());
  auto changed = primary.ApplyOperations(GroupAdds(6, 3));
  primary.ObserveBatchRound(changed);
  primary.Flush();

  std::string dir = TempDir("seal_no_barrier");
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());

  primary.Ingest(GroupAdds(6, 2));
  uint64_t sealed = repl.SealEpoch();

  Follower follower(dir, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUpTo(sealed).ok());
  follower.Flush();
  primary.Flush(sealed);
  EXPECT_EQ(primary.GlobalClusters(), follower.service().GlobalClusters());
}

TEST(Replication, FollowerByteIdenticalOverEitherTransport) {
  // Transport-parameterized leg of the byte-identity claim: the
  // follower consumes either the primary's directory directly (shared
  // filesystem) or a TCP mirror of it kept by DeltaStreamClient. The
  // mirror copies file bytes verbatim (compressed only in transit), so
  // both legs must converge to the same replica at every epoch.
  for (const char* transport : {"shared", "tcp"}) {
    SCOPED_TRACE(transport);
    const bool over_tcp = std::string(transport) == "tcp";
    ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                   MakeFactory());
    auto changed = primary.ApplyOperations(GroupAdds(10, 3));
    primary.ObserveBatchRound(changed);
    primary.Flush();

    std::string dir = TempDir(std::string("transport_src_") + transport);
    ReplicationSession repl(&primary, dir, {});
    ASSERT_TRUE(repl.Start().ok());

    std::unique_ptr<net::ServerFrontEnd> front_end;
    std::unique_ptr<net::DeltaStreamClient> stream;
    std::string follow_dir = dir;
    if (over_tcp) {
      follow_dir = TempDir("transport_mirror");
      net::ServerFrontEnd::Options fe_options;
      fe_options.replication_dir = dir;
      front_end = std::make_unique<net::ServerFrontEnd>(&primary, nullptr,
                                                        fe_options);
      ASSERT_TRUE(front_end->Start().ok());
      net::DeltaStreamClient::Options stream_options;
      stream_options.port = front_end->port();
      stream_options.mirror_dir = follow_dir;
      stream =
          std::make_unique<net::DeltaStreamClient>(std::move(stream_options));
      net::DeltaStreamClient::SyncResult sync;
      ASSERT_TRUE(stream->Connect().ok());
      ASSERT_TRUE(stream->SyncOnce(&sync).ok());
      ASSERT_TRUE(sync.fully_mirrored);
    }

    Follower follower(follow_dir, ServiceOptions(2, false), MakeFactory());
    ASSERT_TRUE(follower.Restore().ok());
    ExpectReplica(primary, follower.service());

    for (int round = 0; round < 3; ++round) {
      SCOPED_TRACE(round);
      ServeRound(primary, repl, round);
      if (over_tcp) {
        net::DeltaStreamClient::SyncResult sync;
        ASSERT_TRUE(stream->SyncOnce(&sync).ok());
        ASSERT_TRUE(sync.fully_mirrored);
      }
      size_t replayed = 0;
      ASSERT_TRUE(follower.CatchUp(&replayed).ok());
      EXPECT_EQ(replayed, 1u);
      follower.Flush();
      ExpectReplica(primary, follower.service());
    }
    if (front_end != nullptr) front_end->Stop();
  }
}

TEST(Replication, CatchUpToFailsUntilTheEpochShips) {
  ShardedDynamicCService primary(ServiceOptions(1, false), nullptr,
                                 MakeFactory());
  auto changed = primary.ApplyOperations(GroupAdds(4, 2));
  primary.ObserveBatchRound(changed);
  primary.Flush();
  std::string dir = TempDir("not_yet");
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());

  Follower follower(dir, ServiceOptions(1, false), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  uint64_t base = follower.base_epoch();
  EXPECT_FALSE(follower.CatchUpTo(base + 1).ok());
  primary.ApplyOperations(GroupAdds(4, 1));
  primary.Flush();
  repl.SealEpoch();
  EXPECT_TRUE(follower.CatchUpTo(base + 1).ok());
}

}  // namespace
}  // namespace dynamicc
