#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"
#include "workload/access_like.h"

namespace dynamicc {
namespace {

/// Small-scale end-to-end pipelines: every method over every snapshot of a
/// scaled-down workload. These are the repository's most important tests —
/// they assert the paper's qualitative claims (DynamicC tracks the batch
/// quality closely while the Naive baseline decays) on seeded data.

ExperimentConfig SmallConfig(WorkloadKind workload, TaskKind task) {
  ExperimentConfig config;
  config.workload = workload;
  config.task = task;
  config.scale = 120;  // keep runtimes test-friendly
  config.training_rounds = 2;
  return config;
}

double FinalF1(const Series& series) {
  return series.points.back().quality.f1;
}

double MeanF1AfterTraining(const Series& series, int training_rounds) {
  double total = 0.0;
  int count = 0;
  for (const auto& point : series.points) {
    if (static_cast<int>(point.snapshot) <= training_rounds) continue;
    total += point.quality.f1;
    ++count;
  }
  return count == 0 ? 0.0 : total / count;
}

TEST(Integration, DbIndexOnCoraLike) {
  ExperimentHarness harness(SmallConfig(WorkloadKind::kCora,
                                        TaskKind::kDbIndex));
  Series batch = harness.RunBatch();
  ASSERT_EQ(batch.points.size(), 8u);
  Series naive = harness.RunNaive();
  Series greedy = harness.RunGreedy();
  Series dynamicc = harness.RunDynamicC(/*greedy_set=*/false);

  // DynamicC stays close to the batch reference.
  EXPECT_GT(MeanF1AfterTraining(dynamicc, 2), 0.8);
  // DynamicC actually exercised its model (some dynamic rounds happened).
  bool any_dynamic = false;
  for (const auto& point : dynamicc.points) {
    if (point.dynamicc.probability_evaluations > 0) any_dynamic = true;
  }
  EXPECT_TRUE(any_dynamic);
  // Greedy also produces sane quality on this workload.
  EXPECT_GT(FinalF1(greedy), 0.5);
  (void)naive;
}

TEST(Integration, NaiveQualityDecaysBelowDynamicC) {
  ExperimentConfig config = SmallConfig(WorkloadKind::kCora,
                                        TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  harness.RunBatch();
  Series naive = harness.RunNaive();
  Series dynamicc = harness.RunDynamicC(false);
  // The paper's Table 2 shape: Naive degrades with more updates while
  // DynamicC holds.
  EXPECT_GT(MeanF1AfterTraining(dynamicc, 2),
            MeanF1AfterTraining(naive, 2) - 0.02);
  EXPECT_LT(FinalF1(naive), 1.0);
}

TEST(Integration, GreedySetScenarioRuns) {
  ExperimentHarness harness(SmallConfig(WorkloadKind::kCora,
                                        TaskKind::kDbIndex));
  harness.RunBatch();
  harness.RunGreedy();
  Series greedy_set = harness.RunDynamicC(/*greedy_set=*/true);
  EXPECT_EQ(greedy_set.points.size(), 8u);
  EXPECT_GT(MeanF1AfterTraining(greedy_set, 2), 0.7);
}

TEST(Integration, KMeansOnAccessLike) {
  ExperimentConfig config = SmallConfig(WorkloadKind::kAccess,
                                        TaskKind::kKMeans);
  // k matches the generator's component count: with k below the true
  // structure, many k-clusterings are equally good and F1 against an
  // arbitrary batch run is meaningless.
  config.kmeans_k = 32;
  ExperimentHarness harness(config);
  Series batch = harness.RunBatch();
  Series dynamicc = harness.RunDynamicC(false);
  ASSERT_EQ(batch.points.size(), 10u);
  // SSE of DynamicC stays within a modest factor of the batch SSE.
  double batch_sse = batch.points.back().objective;
  double dyn_sse = dynamicc.points.back().objective;
  EXPECT_LT(dyn_sse, batch_sse * 3.0 + 1e3);
  EXPECT_GT(MeanF1AfterTraining(dynamicc, 2), 0.6);
}

TEST(Integration, DbscanOnAccessLike) {
  ExperimentConfig config = SmallConfig(WorkloadKind::kAccess,
                                        TaskKind::kDbscan);
  config.dbscan.min_pts = 3;
  // ε as a distance of 5 under the Access profile's Gaussian kernel.
  config.dbscan.eps_similarity = AccessLikeGenerator::SimilarityAtDistance(5.0);
  ExperimentHarness harness(config);
  Series batch = harness.RunBatch();
  Series dynamicc = harness.RunDynamicC(false);
  ASSERT_EQ(batch.points.size(), 10u);
  EXPECT_GT(MeanF1AfterTraining(dynamicc, 2), 0.6);
  // DBSCAN has no objective score.
  EXPECT_TRUE(std::isnan(batch.points.back().objective));
}

TEST(Integration, SyntheticWithUpdatesEndToEnd) {
  ExperimentConfig config = SmallConfig(WorkloadKind::kSynthetic,
                                        TaskKind::kDbIndex);
  ExperimentHarness harness(config);
  harness.RunBatch();
  Series dynamicc = harness.RunDynamicC(false);
  ASSERT_EQ(dynamicc.points.size(), 8u);
  // The update-heavy Febrl stream is the hardest workload at this scale;
  // 0.7 still asserts genuine tracking of the batch result.
  EXPECT_GT(MeanF1AfterTraining(dynamicc, 2), 0.7);
}

TEST(Integration, DeterministicAcrossRuns) {
  ExperimentConfig config = SmallConfig(WorkloadKind::kCora,
                                        TaskKind::kDbIndex);
  ExperimentHarness h1(config), h2(config);
  Series b1 = h1.RunBatch();
  Series b2 = h2.RunBatch();
  ASSERT_EQ(b1.points.size(), b2.points.size());
  for (size_t i = 0; i < b1.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(b1.points[i].objective, b2.points[i].objective);
    EXPECT_EQ(b1.points[i].num_objects, b2.points[i].num_objects);
  }
  Series d1 = h1.RunDynamicC(false);
  Series d2 = h2.RunDynamicC(false);
  for (size_t i = 0; i < d1.points.size(); ++i) {
    EXPECT_DOUBLE_EQ(d1.points[i].quality.f1, d2.points[i].quality.f1);
  }
}

TEST(Integration, LatencyShapeDynamicCFasterThanBatch) {
  // On the db-index task the whole point of DynamicC is avoiding the batch
  // re-run; compare post-training per-snapshot latencies.
  ExperimentConfig config = SmallConfig(WorkloadKind::kCora,
                                        TaskKind::kDbIndex);
  config.scale = 150;
  ExperimentHarness harness(config);
  Series batch = harness.RunBatch();
  Series dynamicc = harness.RunDynamicC(false);
  double batch_tail = 0.0, dyn_tail = 0.0;
  for (size_t i = 3; i < batch.points.size(); ++i) {
    batch_tail += batch.points[i].latency_ms;
    dyn_tail += dynamicc.points[i].latency_ms;
  }
  EXPECT_LT(dyn_tail, batch_tail * 1.5);
}

}  // namespace
}  // namespace dynamicc
