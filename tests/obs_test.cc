// Observability subsystem (src/obs/): histogram bucket geometry and
// percentile math pinned on known distributions, registry behaviour
// under concurrent writers (the TSan target), trace-ring wraparound and
// ordering, exporter output (JSON parseable, CSV shaped, Chrome-trace
// loadable), ScopedTimer sink composition, log-tag propagation — and
// the service-level contracts: the registry's mirror gauges agree with
// IngestStats field by field (single source of truth), and a
// primary/follower pair keeping separate books reports identical
// logical counters at every sealed epoch.

#include <array>
#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/sharded_service.h"
#include "service_test_util.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace dynamicc {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_obs_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

double GaugeValue(const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [gauge_name, value] : snap.gauges) {
    if (gauge_name == name) return value;
  }
  ADD_FAILURE() << "gauge not in snapshot: " << name;
  return -1.0;
}

uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                      const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  ADD_FAILURE() << "counter not in snapshot: " << name;
  return 0;
}

const obs::MetricsSnapshot::HistogramView* FindHistogram(
    const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& view : snap.histograms) {
    if (view.name == name) return &view;
  }
  return nullptr;
}

/// Minimal recursive-descent JSON syntax checker — no DOM, no value
/// extraction; just enough to assert the exporters emit documents a
/// real parser would accept.
class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  bool Valid() {
    Skip();
    if (!Value()) return false;
    Skip();
    return pos_ == s_.size();
  }

 private:
  void Skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool Number() {
    size_t start = pos_;
    bool digits = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
      } else if (c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E') {
        break;
      }
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool Value() {
    Skip();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;
    Skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      Skip();
      if (!String()) return false;
      Skip();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      Skip();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') return false;
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;
    Skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      Skip();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  std::string s_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------- Histogram

TEST(Histogram, BucketGeometry) {
  EXPECT_DOUBLE_EQ(obs::Histogram::UpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(obs::Histogram::UpperBound(11), 2.048);

  // Values at or below kMinBound land in bucket 0.
  EXPECT_EQ(obs::Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(0.0005), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(0.001), 0);
  // Buckets are (lower, upper]: an exact upper bound belongs to its own
  // bucket, the next representable value above it to the next.
  for (int b = 1; b < 20; ++b) {
    SCOPED_TRACE(b);
    double bound = obs::Histogram::UpperBound(b);
    EXPECT_EQ(obs::Histogram::BucketFor(bound), b);
    EXPECT_EQ(obs::Histogram::BucketFor(bound * 1.0001), b + 1);
  }
  // The last bucket absorbs everything larger.
  EXPECT_EQ(obs::Histogram::BucketFor(1e12),
            obs::Histogram::kNumBuckets - 1);
}

TEST(Histogram, PercentilesExactOnKnownDistribution) {
  // 100 samples pinned mid-bucket: 50 in (1.024, 2.048], 45 in
  // (2.048, 4.096], 5 in (4.096, 8.192]. Rank-⌈p·count⌉ semantics make
  // every quantile land on a known bucket's upper bound exactly.
  obs::Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(1.5);
  for (int i = 0; i < 45; ++i) h.Record(3.0);
  for (int i = 0; i < 5; ++i) h.Record(6.0);

  EXPECT_EQ(h.Count(), 100u);
  // Integral micro-unit values, so the striped sum is exact.
  EXPECT_DOUBLE_EQ(h.Sum(), 50 * 1.5 + 45 * 3.0 + 5 * 6.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), obs::Histogram::UpperBound(11));
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), obs::Histogram::UpperBound(12));
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), obs::Histogram::UpperBound(13));
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), obs::Histogram::UpperBound(13));

  auto buckets = h.BucketCounts();
  EXPECT_EQ(buckets[11], 50u);
  EXPECT_EQ(buckets[12], 45u);
  EXPECT_EQ(buckets[13], 5u);
}

TEST(Histogram, EmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);

  h.Record(3.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), obs::Histogram::UpperBound(12));
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), obs::Histogram::UpperBound(12));
}

// ---------------------------------------------- registry + concurrency

TEST(MetricsRegistry, ConcurrentWritersSumExactly) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry inside the thread: registration
      // races (first-use insert vs concurrent lookup) are part of the
      // contract TSan checks here.
      obs::Counter* counter = registry.GetCounter("test.ops");
      obs::Histogram* histogram = registry.GetHistogram("test.ms");
      obs::Gauge* gauge = registry.GetGauge("test.depth");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Record(2.0);
        gauge->Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("test.ops")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetHistogram("test.ms")->Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(registry.GetGauge("test.depth")->value(),
                   static_cast<double>(kPerThread - 1));
}

TEST(MetricsRegistry, SameNameSameInstanceSeparateNamespaces) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_EQ(registry.GetGauge("x"), registry.GetGauge("x"));
  // Counters, gauges and histograms live in separate namespaces.
  registry.GetCounter("x")->Add(7);
  registry.GetGauge("x")->Set(1.5);
  registry.GetHistogram("x")->Record(2.0);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(CounterValue(snap, "x"), 7u);
  EXPECT_DOUBLE_EQ(GaugeValue(snap, "x"), 1.5);
  ASSERT_NE(FindHistogram(snap, "x"), nullptr);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zebra")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetCounter("mid")->Add(3);
  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

TEST(MetricsRegistry, ShardLabelFormat) {
  EXPECT_EQ(obs::ShardLabel("queue.depth", 3), "queue.depth{shard=3}");
  EXPECT_EQ(obs::ShardLabel("queue.depth", 0), "queue.depth{shard=0}");
}

// -------------------------------------------------------------- tracer

TEST(Tracer, RingWrapsAroundKeepingNewest) {
  obs::Tracer tracer(1, 4);
  for (uint64_t i = 0; i < 6; ++i) {
    obs::TraceSpan span;
    span.name = "t";
    span.shard = 0;
    span.start_ns = i;
    tracer.Record(span);
  }
  std::vector<obs::TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest overwritten first; survivors come back start-ordered.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_ns, i + 2);
  }
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(Tracer, SpansOrderedAcrossRings) {
  obs::Tracer tracer(2, 8);
  auto record = [&tracer](uint32_t shard, uint64_t start_ns) {
    obs::TraceSpan span;
    span.name = "t";
    span.shard = shard;
    span.start_ns = start_ns;
    tracer.Record(span);
  };
  record(1, 5);
  record(0, 3);
  record(obs::kServiceShard, 1);  // lands in the extra service ring
  std::vector<obs::TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].start_ns, 1u);
  EXPECT_EQ(spans[1].start_ns, 3u);
  EXPECT_EQ(spans[2].start_ns, 5u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ScopedSpanRecordsOnDestruction) {
  obs::Tracer tracer(2, 8);
  {
    obs::ScopedSpan span(&tracer, obs::kSpanDrainApply, 1, 7);
    span.set_range(10, 20);
  }
  std::vector<obs::TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, obs::kSpanDrainApply);
  EXPECT_EQ(spans[0].shard, 1u);
  EXPECT_EQ(spans[0].epoch, 7u);
  EXPECT_EQ(spans[0].seq_begin, 10u);
  EXPECT_EQ(spans[0].seq_end, 20u);
}

TEST(Tracer, NullTracerDisablesScopedSpan) {
  // The no-tracer idiom every call site relies on: no branches needed.
  obs::ScopedSpan span(nullptr, obs::kSpanDrainApply, 1, 7);
  span.set_epoch(9);
  span.set_range(1, 2);
}

TEST(Tracer, ScopedSpanPublishesLogTags) {
  obs::Tracer tracer(4, 8);
  testing::internal::CaptureStderr();
  {
    obs::ScopedSpan span(&tracer, obs::kSpanDrainApply, 2, 7);
    DYNAMICC_LOG(Info) << "inside span";
  }
  DYNAMICC_LOG(Info) << "outside span";
  std::string log = testing::internal::GetCapturedStderr();
  size_t inside = log.find("inside span");
  size_t outside = log.find("outside span");
  ASSERT_NE(inside, std::string::npos);
  ASSERT_NE(outside, std::string::npos);
  EXPECT_NE(log.substr(0, inside).find(" s2 e7]"), std::string::npos);
  // Tags are restored when the span ends.
  EXPECT_EQ(log.substr(inside, outside - inside).find(" s2"),
            std::string::npos);
}

// --------------------------------------------------------- ScopedTimer

TEST(ScopedTimer, SinksComposeAndFireOnDestruction) {
  struct RecordingSink {
    int calls = 0;
    double last = -1.0;
    void Record(double ms) {
      ++calls;
      last = ms;
    }
  };
  double set_target = -1.0;
  double add_target = 10.0;
  RecordingSink sink;
  {
    ScopedTimer timer;
    timer.Set(&set_target).Add(&add_target).Record(&sink);
    EXPECT_EQ(sink.calls, 0);       // nothing fires before scope exit
    EXPECT_DOUBLE_EQ(set_target, -1.0);
  }
  EXPECT_GE(set_target, 0.0);
  EXPECT_GE(add_target, 10.0);      // accumulated, not overwritten
  EXPECT_EQ(sink.calls, 1);
  EXPECT_DOUBLE_EQ(sink.last, set_target);
}

TEST(ScopedTimer, NullSinksIgnored) {
  struct RecordingSink {
    void Record(double) {}
  };
  ScopedTimer timer;
  timer.Set(nullptr).Add(nullptr).Record<RecordingSink>(nullptr);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

// ----------------------------------------------------------- exporters

TEST(Exporter, MetricsJsonParsesAndCarriesValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests")->Add(3);
  registry.GetGauge("depth")->Set(2.5);
  obs::Histogram* h = registry.GetHistogram("latency_ms");
  for (int i = 0; i < 10; ++i) h->Record(1.5);

  std::string json = obs::RenderMetricsJson(registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"requests\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 2.048"), std::string::npos);

  // Identical state renders identical bytes (snapshots are sorted).
  EXPECT_EQ(json, obs::RenderMetricsJson(registry.Snapshot()));
}

TEST(Exporter, EmptyRegistryStillValidJson) {
  obs::MetricsRegistry registry;
  std::string json = obs::RenderMetricsJson(registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(Exporter, MetricsCsvShape) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests")->Add(3);
  registry.GetGauge("depth")->Set(2.5);
  registry.GetHistogram("latency_ms")->Record(1.5);

  std::string csv = obs::RenderMetricsCsv(registry.Snapshot());
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,requests,value,3\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,depth,value,2.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,latency_ms,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,latency_ms,p95,"), std::string::npos);
}

TEST(Exporter, ChromeTraceParsesWithShardTids) {
  obs::Tracer tracer(2, 8);
  {
    obs::ScopedSpan shard_span(&tracer, obs::kSpanDrainApply, 1, 3);
  }
  {
    obs::ScopedSpan service_span(&tracer, obs::kSpanEpochSeal,
                                 obs::kServiceShard, 3);
  }
  std::string trace = obs::RenderChromeTrace(tracer);
  EXPECT_TRUE(JsonChecker(trace).Valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\": 1"), std::string::npos);
  // Service-wide spans render one past the shard range.
  EXPECT_NE(trace.find("\"tid\": 2"), std::string::npos);
  EXPECT_NE(trace.find("\"epoch\": 3"), std::string::npos);
}

TEST(Exporter, ExportMetricsPicksFormatByExtensionAtomically) {
  const std::string dir = TempDir("export");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  obs::MetricsRegistry registry;
  registry.GetCounter("requests")->Add(1);

  const std::string json_path = dir + "/metrics.json";
  const std::string csv_path = dir + "/metrics.csv";
  ASSERT_TRUE(obs::ExportMetrics(registry, json_path).ok());
  ASSERT_TRUE(obs::ExportMetrics(registry, csv_path).ok());

  auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(json_path).front(), '{');
  EXPECT_EQ(slurp(csv_path).rfind("kind,", 0), 0u);
  // Published via rename: no scratch files left behind.
  EXPECT_FALSE(std::filesystem::exists(json_path + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(csv_path + ".tmp"));
}

// ------------------------------------------------- service integration

ShardedDynamicCService::Options AsyncOptions(uint32_t shards,
                                             obs::MetricsRegistry* registry) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = true;
  options.obs.metrics = registry;
  return options;
}

TEST(ObsService, MirrorGaugesMatchIngestStats) {
  obs::MetricsRegistry registry;
  ShardedDynamicCService service(AsyncOptions(2, &registry), nullptr,
                                 MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(6, 3));
  service.ObserveBatchRound(changed);
  service.Ingest(GroupAdds(6, 2));
  service.Flush();
  service.CloseEpoch();
  service.Flush();

  // ingest_stats() publishes the mirror gauges; the struct fields stay
  // the single source of truth the registry must agree with verbatim.
  IngestStats stats = service.ingest_stats();
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(GaugeValue(snap, "ingest.accepted_ops"),
            static_cast<double>(stats.accepted_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.rejected_batches"),
            static_cast<double>(stats.rejected_batches));
  EXPECT_EQ(GaugeValue(snap, "ingest.rejected_ops"),
            static_cast<double>(stats.rejected_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.coalesced_ops"),
            static_cast<double>(stats.coalesced_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.pending_ops"),
            static_cast<double>(stats.pending_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.applied_ops"),
            static_cast<double>(stats.applied_ops));
  EXPECT_EQ(GaugeValue(snap, "epoch.open"),
            static_cast<double>(stats.open_epoch));
  EXPECT_EQ(GaugeValue(snap, "epoch.applied"),
            static_cast<double>(stats.applied_epoch));
  EXPECT_EQ(GaugeValue(snap, "ingest.applied_batches"),
            static_cast<double>(stats.applied_batches));
  EXPECT_EQ(GaugeValue(snap, "worker.rounds"),
            static_cast<double>(stats.worker_rounds));
  EXPECT_EQ(GaugeValue(snap, "ingest.producer_waits"),
            static_cast<double>(stats.producer_waits));
  EXPECT_EQ(GaugeValue(snap, "queue.high_water"),
            static_cast<double>(stats.queue_high_water));
}

TEST(ObsService, HotPathHistogramsAndShardGaugesPopulate) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer(2, 1024);
  ShardedDynamicCService::Options options = AsyncOptions(2, &registry);
  options.obs.tracer = &tracer;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  // Two observe rounds train the models; the empty Flush() transitions
  // into serving, so the background workers round on the ingest below
  // (worker.round_ms stays empty for an untrained service).
  for (int round = 0; round < 2; ++round) {
    auto changed = service.ApplyOperations(GroupAdds(6, 2));
    service.ObserveBatchRound(changed);
  }
  service.Flush();
  service.Ingest(GroupAdds(6, 2));
  service.Flush();
  service.ingest_stats();

  obs::MetricsSnapshot snap = registry.Snapshot();
  for (const char* name : {"ingest.admit_ms", "drain.apply_ms",
                           "drain.batch_ops", "worker.round_ms",
                           "barrier.round_ms"}) {
    const auto* view = FindHistogram(snap, name);
    ASSERT_NE(view, nullptr) << name;
    EXPECT_GT(view->count, 0u) << name;
  }
  // One depth gauge per shard, labelled.
  EXPECT_GE(GaugeValue(snap, "queue.depth{shard=0}"), 0.0);
  EXPECT_GE(GaugeValue(snap, "queue.depth{shard=1}"), 0.0);

  // The tracer retained the same phases as spans.
  bool saw_admit = false, saw_apply = false;
  for (const obs::TraceSpan& span : tracer.Spans()) {
    if (std::strcmp(span.name, obs::kSpanIngestAdmit) == 0) saw_admit = true;
    if (std::strcmp(span.name, obs::kSpanDrainApply) == 0) saw_apply = true;
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_apply);
}

TEST(ObsService, PrimaryFollowerLockstepBooks) {
  const std::string dir = TempDir("lockstep");
  // Separate registries: an in-process pair sharing one book would pool
  // its service-level metrics and make both sides unreadable.
  obs::MetricsRegistry primary_book;
  obs::MetricsRegistry follower_book;

  ShardedDynamicCService primary(AsyncOptions(2, &primary_book), nullptr,
                                 MakeFactory());
  auto changed = primary.ApplyOperations(GroupAdds(6, 3));
  primary.ObserveBatchRound(changed);
  primary.Flush();
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());

  ShardedDynamicCService::Options follower_options =
      AsyncOptions(2, &follower_book);
  follower_options.async.enabled = false;
  Follower follower(dir, follower_options, MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    primary.Ingest(AddsForGroups({round, round + 1}, 2));
    primary.Flush();
    repl.SealEpoch();
    ASSERT_TRUE(follower.CatchUp().ok());
    follower.Flush();

    // Refresh both mirrors, then compare the logical counters that are
    // defined to be identical at a sealed epoch (worker-side counters
    // like coalescing legitimately differ between async and sync).
    primary.ingest_stats();
    follower.service().ingest_stats();
    obs::MetricsSnapshot a = primary_book.Snapshot();
    obs::MetricsSnapshot b = follower_book.Snapshot();
    EXPECT_EQ(GaugeValue(a, "ingest.accepted_ops"),
              GaugeValue(b, "ingest.accepted_ops"));
    EXPECT_EQ(GaugeValue(a, "epoch.open"), GaugeValue(b, "epoch.open"));
    EXPECT_EQ(GaugeValue(b, "follower.epochs_behind"), 0.0);
  }

  // The seal/ship split and wire bytes are live on the session, and the
  // primary book carries the same byte counter.
  EXPECT_GE(repl.seal_ms_total(), 0.0);
  EXPECT_GT(repl.delta_ship_ms_total(), 0.0);
  EXPECT_GT(repl.delta_bytes_total(), 0u);
  obs::MetricsSnapshot a = primary_book.Snapshot();
  EXPECT_EQ(CounterValue(a, "replication.delta_bytes"),
            repl.delta_bytes_total());

  // The follower's replay histogram saw every delta it applied.
  obs::MetricsSnapshot b = follower_book.Snapshot();
  const auto* replay = FindHistogram(b, "follower.replay_ms");
  ASSERT_NE(replay, nullptr);
  EXPECT_GT(replay->count, 0u);
  EXPECT_GE(GaugeValue(b, "follower.replay_lag_ms"), 0.0);

  EXPECT_EQ(primary.GlobalClusters(), follower.service().GlobalClusters());
}

}  // namespace
}  // namespace dynamicc
