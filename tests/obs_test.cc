// Observability subsystem (src/obs/): histogram bucket geometry and
// percentile math pinned on known distributions, registry behaviour
// under concurrent writers (the TSan target), trace-ring wraparound and
// ordering, exporter output (JSON parseable, CSV shaped, Chrome-trace
// loadable), ScopedTimer sink composition, log-tag propagation — and
// the service-level contracts: the registry's mirror gauges agree with
// IngestStats field by field (single source of truth), and a
// primary/follower pair keeping separate books reports identical
// logical counters at every sealed epoch.

#include <array>
#include <atomic>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/sharded_service.h"
#include "service_test_util.h"
#include "util/logging.h"
#include "util/status.h"
#include "util/timer.h"

namespace dynamicc {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_obs_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

double GaugeValue(const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [gauge_name, value] : snap.gauges) {
    if (gauge_name == name) return value;
  }
  ADD_FAILURE() << "gauge not in snapshot: " << name;
  return -1.0;
}

uint64_t CounterValue(const obs::MetricsSnapshot& snap,
                      const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return value;
  }
  ADD_FAILURE() << "counter not in snapshot: " << name;
  return 0;
}

const obs::MetricsSnapshot::HistogramView* FindHistogram(
    const obs::MetricsSnapshot& snap, const std::string& name) {
  for (const auto& view : snap.histograms) {
    if (view.name == name) return &view;
  }
  return nullptr;
}

/// Minimal recursive-descent JSON syntax checker — no DOM, no value
/// extraction; just enough to assert the exporters emit documents a
/// real parser would accept.
class JsonChecker {
 public:
  explicit JsonChecker(std::string text) : s_(std::move(text)) {}

  bool Valid() {
    Skip();
    if (!Value()) return false;
    Skip();
    return pos_ == s_.size();
  }

 private:
  void Skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;
    return true;
  }
  bool Number() {
    size_t start = pos_;
    bool digits = false;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        digits = true;
      } else if (c != '-' && c != '+' && c != '.' && c != 'e' && c != 'E') {
        break;
      }
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool Value() {
    Skip();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;
    Skip();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      Skip();
      if (!String()) return false;
      Skip();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      Skip();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') return false;
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;
    Skip();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      Skip();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  std::string s_;
  size_t pos_ = 0;
};

// ----------------------------------------------------------- Histogram

TEST(Histogram, BucketGeometry) {
  EXPECT_DOUBLE_EQ(obs::Histogram::UpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(obs::Histogram::UpperBound(11), 2.048);

  // Values at or below kMinBound land in bucket 0.
  EXPECT_EQ(obs::Histogram::BucketFor(0.0), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(0.0005), 0);
  EXPECT_EQ(obs::Histogram::BucketFor(0.001), 0);
  // Buckets are (lower, upper]: an exact upper bound belongs to its own
  // bucket, the next representable value above it to the next.
  for (int b = 1; b < 20; ++b) {
    SCOPED_TRACE(b);
    double bound = obs::Histogram::UpperBound(b);
    EXPECT_EQ(obs::Histogram::BucketFor(bound), b);
    EXPECT_EQ(obs::Histogram::BucketFor(bound * 1.0001), b + 1);
  }
  // The last bucket absorbs everything larger.
  EXPECT_EQ(obs::Histogram::BucketFor(1e12),
            obs::Histogram::kNumBuckets - 1);
}

TEST(Histogram, PercentilesExactOnKnownDistribution) {
  // 100 samples pinned mid-bucket: 50 in (1.024, 2.048], 45 in
  // (2.048, 4.096], 5 in (4.096, 8.192]. Rank-⌈p·count⌉ semantics make
  // every quantile land on a known bucket's upper bound exactly.
  obs::Histogram h;
  for (int i = 0; i < 50; ++i) h.Record(1.5);
  for (int i = 0; i < 45; ++i) h.Record(3.0);
  for (int i = 0; i < 5; ++i) h.Record(6.0);

  EXPECT_EQ(h.Count(), 100u);
  // Integral micro-unit values, so the striped sum is exact.
  EXPECT_DOUBLE_EQ(h.Sum(), 50 * 1.5 + 45 * 3.0 + 5 * 6.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), obs::Histogram::UpperBound(11));
  EXPECT_DOUBLE_EQ(h.Percentile(0.95), obs::Histogram::UpperBound(12));
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), obs::Histogram::UpperBound(13));
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), obs::Histogram::UpperBound(13));

  auto buckets = h.BucketCounts();
  EXPECT_EQ(buckets[11], 50u);
  EXPECT_EQ(buckets[12], 45u);
  EXPECT_EQ(buckets[13], 5u);
}

TEST(Histogram, EmptyAndSingleValue) {
  obs::Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);

  h.Record(3.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), obs::Histogram::UpperBound(12));
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), obs::Histogram::UpperBound(12));
}

// ---------------------------------------------- registry + concurrency

TEST(MetricsRegistry, ConcurrentWritersSumExactly) {
  obs::MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Resolve through the registry inside the thread: registration
      // races (first-use insert vs concurrent lookup) are part of the
      // contract TSan checks here.
      obs::Counter* counter = registry.GetCounter("test.ops");
      obs::Histogram* histogram = registry.GetHistogram("test.ms");
      obs::Gauge* gauge = registry.GetGauge("test.depth");
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        histogram->Record(2.0);
        gauge->Set(static_cast<double>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(registry.GetCounter("test.ops")->value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(registry.GetHistogram("test.ms")->Count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(registry.GetGauge("test.depth")->value(),
                   static_cast<double>(kPerThread - 1));
}

TEST(MetricsRegistry, SameNameSameInstanceSeparateNamespaces) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("x"), registry.GetCounter("x"));
  EXPECT_EQ(registry.GetGauge("x"), registry.GetGauge("x"));
  // Counters, gauges and histograms live in separate namespaces.
  registry.GetCounter("x")->Add(7);
  registry.GetGauge("x")->Set(1.5);
  registry.GetHistogram("x")->Record(2.0);
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(CounterValue(snap, "x"), 7u);
  EXPECT_DOUBLE_EQ(GaugeValue(snap, "x"), 1.5);
  ASSERT_NE(FindHistogram(snap, "x"), nullptr);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetCounter("zebra")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetCounter("mid")->Add(3);
  obs::MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "mid");
  EXPECT_EQ(snap.counters[2].first, "zebra");
}

TEST(MetricsRegistry, ShardLabelFormat) {
  EXPECT_EQ(obs::ShardLabel("queue.depth", 3), "queue.depth{shard=3}");
  EXPECT_EQ(obs::ShardLabel("queue.depth", 0), "queue.depth{shard=0}");
}

// -------------------------------------------------------------- tracer

TEST(Tracer, RingWrapsAroundKeepingNewest) {
  obs::Tracer tracer(1, 4);
  for (uint64_t i = 0; i < 6; ++i) {
    obs::TraceSpan span;
    span.name = "t";
    span.shard = 0;
    span.start_ns = i;
    tracer.Record(span);
  }
  std::vector<obs::TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest overwritten first; survivors come back start-ordered.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_ns, i + 2);
  }
  EXPECT_EQ(tracer.dropped(), 2u);
}

TEST(Tracer, SpansOrderedAcrossRings) {
  obs::Tracer tracer(2, 8);
  auto record = [&tracer](uint32_t shard, uint64_t start_ns) {
    obs::TraceSpan span;
    span.name = "t";
    span.shard = shard;
    span.start_ns = start_ns;
    tracer.Record(span);
  };
  record(1, 5);
  record(0, 3);
  record(obs::kServiceShard, 1);  // lands in the extra service ring
  std::vector<obs::TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].start_ns, 1u);
  EXPECT_EQ(spans[1].start_ns, 3u);
  EXPECT_EQ(spans[2].start_ns, 5u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ScopedSpanRecordsOnDestruction) {
  obs::Tracer tracer(2, 8);
  {
    obs::ScopedSpan span(&tracer, obs::kSpanDrainApply, 1, 7);
    span.set_range(10, 20);
  }
  std::vector<obs::TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, obs::kSpanDrainApply);
  EXPECT_EQ(spans[0].shard, 1u);
  EXPECT_EQ(spans[0].epoch, 7u);
  EXPECT_EQ(spans[0].seq_begin, 10u);
  EXPECT_EQ(spans[0].seq_end, 20u);
}

TEST(Tracer, NullTracerDisablesScopedSpan) {
  // The no-tracer idiom every call site relies on: no branches needed.
  obs::ScopedSpan span(nullptr, obs::kSpanDrainApply, 1, 7);
  span.set_epoch(9);
  span.set_range(1, 2);
}

TEST(Tracer, ScopedSpanPublishesLogTags) {
  obs::Tracer tracer(4, 8);
  testing::internal::CaptureStderr();
  {
    obs::ScopedSpan span(&tracer, obs::kSpanDrainApply, 2, 7);
    DYNAMICC_LOG(Info) << "inside span";
  }
  DYNAMICC_LOG(Info) << "outside span";
  std::string log = testing::internal::GetCapturedStderr();
  size_t inside = log.find("inside span");
  size_t outside = log.find("outside span");
  ASSERT_NE(inside, std::string::npos);
  ASSERT_NE(outside, std::string::npos);
  EXPECT_NE(log.substr(0, inside).find(" s2 e7]"), std::string::npos);
  // Tags are restored when the span ends.
  EXPECT_EQ(log.substr(inside, outside - inside).find(" s2"),
            std::string::npos);
}

// --------------------------------------------------------- ScopedTimer

TEST(ScopedTimer, SinksComposeAndFireOnDestruction) {
  struct RecordingSink {
    int calls = 0;
    double last = -1.0;
    void Record(double ms) {
      ++calls;
      last = ms;
    }
  };
  double set_target = -1.0;
  double add_target = 10.0;
  RecordingSink sink;
  {
    ScopedTimer timer;
    timer.Set(&set_target).Add(&add_target).Record(&sink);
    EXPECT_EQ(sink.calls, 0);       // nothing fires before scope exit
    EXPECT_DOUBLE_EQ(set_target, -1.0);
  }
  EXPECT_GE(set_target, 0.0);
  EXPECT_GE(add_target, 10.0);      // accumulated, not overwritten
  EXPECT_EQ(sink.calls, 1);
  EXPECT_DOUBLE_EQ(sink.last, set_target);
}

TEST(ScopedTimer, NullSinksIgnored) {
  struct RecordingSink {
    void Record(double) {}
  };
  ScopedTimer timer;
  timer.Set(nullptr).Add(nullptr).Record<RecordingSink>(nullptr);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

// ----------------------------------------------------------- exporters

TEST(Exporter, MetricsJsonParsesAndCarriesValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests")->Add(3);
  registry.GetGauge("depth")->Set(2.5);
  obs::Histogram* h = registry.GetHistogram("latency_ms");
  for (int i = 0; i < 10; ++i) h->Record(1.5);

  std::string json = obs::RenderMetricsJson(registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"requests\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": 2.5"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"p50\": 2.048"), std::string::npos);

  // Identical state renders identical bytes (snapshots are sorted).
  EXPECT_EQ(json, obs::RenderMetricsJson(registry.Snapshot()));
}

TEST(Exporter, EmptyRegistryStillValidJson) {
  obs::MetricsRegistry registry;
  std::string json = obs::RenderMetricsJson(registry.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(Exporter, MetricsCsvShape) {
  obs::MetricsRegistry registry;
  registry.GetCounter("requests")->Add(3);
  registry.GetGauge("depth")->Set(2.5);
  registry.GetHistogram("latency_ms")->Record(1.5);

  std::string csv = obs::RenderMetricsCsv(registry.Snapshot());
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,requests,value,3\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,depth,value,2.5\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,latency_ms,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("histogram,latency_ms,p95,"), std::string::npos);
}

TEST(Exporter, ChromeTraceParsesWithShardTids) {
  obs::Tracer tracer(2, 8);
  {
    obs::ScopedSpan shard_span(&tracer, obs::kSpanDrainApply, 1, 3);
  }
  {
    obs::ScopedSpan service_span(&tracer, obs::kSpanEpochSeal,
                                 obs::kServiceShard, 3);
  }
  std::string trace = obs::RenderChromeTrace(tracer);
  EXPECT_TRUE(JsonChecker(trace).Valid()) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"tid\": 1"), std::string::npos);
  // Service-wide spans render one past the shard range.
  EXPECT_NE(trace.find("\"tid\": 2"), std::string::npos);
  EXPECT_NE(trace.find("\"epoch\": 3"), std::string::npos);
}

TEST(Exporter, ExportMetricsPicksFormatByExtensionAtomically) {
  const std::string dir = TempDir("export");
  ASSERT_TRUE(std::filesystem::create_directories(dir));
  obs::MetricsRegistry registry;
  registry.GetCounter("requests")->Add(1);

  const std::string json_path = dir + "/metrics.json";
  const std::string csv_path = dir + "/metrics.csv";
  ASSERT_TRUE(obs::ExportMetrics(registry, json_path).ok());
  ASSERT_TRUE(obs::ExportMetrics(registry, csv_path).ok());

  auto slurp = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is),
                       std::istreambuf_iterator<char>());
  };
  EXPECT_EQ(slurp(json_path).front(), '{');
  EXPECT_EQ(slurp(csv_path).rfind("kind,", 0), 0u);
  // Published via rename: no scratch files left behind.
  EXPECT_FALSE(std::filesystem::exists(json_path + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(csv_path + ".tmp"));
}

// ------------------------------------------------- service integration

ShardedDynamicCService::Options AsyncOptions(uint32_t shards,
                                             obs::MetricsRegistry* registry) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = true;
  options.obs.metrics = registry;
  return options;
}

TEST(ObsService, MirrorGaugesMatchIngestStats) {
  obs::MetricsRegistry registry;
  ShardedDynamicCService service(AsyncOptions(2, &registry), nullptr,
                                 MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(6, 3));
  service.ObserveBatchRound(changed);
  service.Ingest(GroupAdds(6, 2));
  service.Flush();
  service.CloseEpoch();
  service.Flush();

  // ingest_stats() publishes the mirror gauges; the struct fields stay
  // the single source of truth the registry must agree with verbatim.
  IngestStats stats = service.ingest_stats();
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(GaugeValue(snap, "ingest.accepted_ops"),
            static_cast<double>(stats.accepted_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.rejected_batches"),
            static_cast<double>(stats.rejected_batches));
  EXPECT_EQ(GaugeValue(snap, "ingest.rejected_ops"),
            static_cast<double>(stats.rejected_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.coalesced_ops"),
            static_cast<double>(stats.coalesced_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.pending_ops"),
            static_cast<double>(stats.pending_ops));
  EXPECT_EQ(GaugeValue(snap, "ingest.applied_ops"),
            static_cast<double>(stats.applied_ops));
  EXPECT_EQ(GaugeValue(snap, "epoch.open"),
            static_cast<double>(stats.open_epoch));
  EXPECT_EQ(GaugeValue(snap, "epoch.applied"),
            static_cast<double>(stats.applied_epoch));
  EXPECT_EQ(GaugeValue(snap, "ingest.applied_batches"),
            static_cast<double>(stats.applied_batches));
  EXPECT_EQ(GaugeValue(snap, "worker.rounds"),
            static_cast<double>(stats.worker_rounds));
  EXPECT_EQ(GaugeValue(snap, "ingest.producer_waits"),
            static_cast<double>(stats.producer_waits));
  EXPECT_EQ(GaugeValue(snap, "queue.high_water"),
            static_cast<double>(stats.queue_high_water));
}

TEST(ObsService, HotPathHistogramsAndShardGaugesPopulate) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer(2, 1024);
  ShardedDynamicCService::Options options = AsyncOptions(2, &registry);
  options.obs.tracer = &tracer;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  // Two observe rounds train the models; the empty Flush() transitions
  // into serving, so the background workers round on the ingest below
  // (worker.round_ms stays empty for an untrained service).
  for (int round = 0; round < 2; ++round) {
    auto changed = service.ApplyOperations(GroupAdds(6, 2));
    service.ObserveBatchRound(changed);
  }
  service.Flush();
  service.Ingest(GroupAdds(6, 2));
  service.Flush();
  service.ingest_stats();

  obs::MetricsSnapshot snap = registry.Snapshot();
  for (const char* name : {"ingest.admit_ms", "drain.apply_ms",
                           "drain.batch_ops", "worker.round_ms",
                           "barrier.round_ms"}) {
    const auto* view = FindHistogram(snap, name);
    ASSERT_NE(view, nullptr) << name;
    EXPECT_GT(view->count, 0u) << name;
  }
  // One depth gauge per shard, labelled.
  EXPECT_GE(GaugeValue(snap, "queue.depth{shard=0}"), 0.0);
  EXPECT_GE(GaugeValue(snap, "queue.depth{shard=1}"), 0.0);

  // The tracer retained the same phases as spans.
  bool saw_admit = false, saw_apply = false;
  for (const obs::TraceSpan& span : tracer.Spans()) {
    if (std::strcmp(span.name, obs::kSpanIngestAdmit) == 0) saw_admit = true;
    if (std::strcmp(span.name, obs::kSpanDrainApply) == 0) saw_apply = true;
  }
  EXPECT_TRUE(saw_admit);
  EXPECT_TRUE(saw_apply);
}

TEST(ObsService, PrimaryFollowerLockstepBooks) {
  const std::string dir = TempDir("lockstep");
  // Separate registries: an in-process pair sharing one book would pool
  // its service-level metrics and make both sides unreadable.
  obs::MetricsRegistry primary_book;
  obs::MetricsRegistry follower_book;

  ShardedDynamicCService primary(AsyncOptions(2, &primary_book), nullptr,
                                 MakeFactory());
  auto changed = primary.ApplyOperations(GroupAdds(6, 3));
  primary.ObserveBatchRound(changed);
  primary.Flush();
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());

  ShardedDynamicCService::Options follower_options =
      AsyncOptions(2, &follower_book);
  follower_options.async.enabled = false;
  Follower follower(dir, follower_options, MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());

  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE(round);
    primary.Ingest(AddsForGroups({round, round + 1}, 2));
    primary.Flush();
    repl.SealEpoch();
    ASSERT_TRUE(follower.CatchUp().ok());
    follower.Flush();

    // Refresh both mirrors, then compare the logical counters that are
    // defined to be identical at a sealed epoch (worker-side counters
    // like coalescing legitimately differ between async and sync).
    primary.ingest_stats();
    follower.service().ingest_stats();
    obs::MetricsSnapshot a = primary_book.Snapshot();
    obs::MetricsSnapshot b = follower_book.Snapshot();
    EXPECT_EQ(GaugeValue(a, "ingest.accepted_ops"),
              GaugeValue(b, "ingest.accepted_ops"));
    EXPECT_EQ(GaugeValue(a, "epoch.open"), GaugeValue(b, "epoch.open"));
    EXPECT_EQ(GaugeValue(b, "follower.epochs_behind"), 0.0);
  }

  // The seal/ship split and wire bytes are live on the session, and the
  // primary book carries the same byte counter.
  EXPECT_GE(repl.seal_ms_total(), 0.0);
  EXPECT_GT(repl.delta_ship_ms_total(), 0.0);
  EXPECT_GT(repl.delta_bytes_total(), 0u);
  obs::MetricsSnapshot a = primary_book.Snapshot();
  EXPECT_EQ(CounterValue(a, "replication.delta_bytes"),
            repl.delta_bytes_total());

  // The follower's replay histogram saw every delta it applied.
  obs::MetricsSnapshot b = follower_book.Snapshot();
  const auto* replay = FindHistogram(b, "follower.replay_ms");
  ASSERT_NE(replay, nullptr);
  EXPECT_GT(replay->count, 0u);
  EXPECT_GE(GaugeValue(b, "follower.replay_lag_ms"), 0.0);

  EXPECT_EQ(primary.GlobalClusters(), follower.service().GlobalClusters());
}

// ---- Prometheus renderer ----

TEST(Prometheus, RendersCountersGaugesAndCumulativeHistograms) {
  obs::MetricsRegistry reg;
  reg.GetCounter("net.frames_in")->Add(7);
  reg.GetGauge("epoch.open")->Set(4.5);
  obs::Histogram* h = reg.GetHistogram("net.rpc_ms{type=Ingest}");
  h->Record(0.5);
  h->Record(3.0);
  h->Record(3.1);

  const std::string text = obs::RenderMetricsPrometheus(reg.Snapshot());

  // Counters get the _total suffix; dots become underscores.
  EXPECT_NE(text.find("# TYPE net_frames_in_total counter\n"
                      "net_frames_in_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE epoch_open gauge\nepoch_open 4.5\n"),
            std::string::npos);

  // The {key=value} suffix becomes a real Prometheus label, buckets are
  // cumulative, and the series closes with le="+Inf" == count.
  EXPECT_NE(text.find("# TYPE net_rpc_ms histogram"), std::string::npos);
  EXPECT_NE(text.find("net_rpc_ms_bucket{type=\"Ingest\",le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("net_rpc_ms_count{type=\"Ingest\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("net_rpc_ms_sum{type=\"Ingest\"} 6.6\n"),
            std::string::npos);

  // Cumulative monotonicity: parse every bucket line in order.
  uint64_t prev = 0;
  size_t pos = 0, bucket_lines = 0;
  while ((pos = text.find("net_rpc_ms_bucket{", pos)) != std::string::npos) {
    const size_t space = text.find(' ', pos);
    ASSERT_NE(space, std::string::npos);
    const uint64_t cum = std::stoull(text.substr(space + 1));
    EXPECT_GE(cum, prev);
    prev = cum;
    ++bucket_lines;
    pos = space;
  }
  EXPECT_GE(bucket_lines, 3u);  // at least two live buckets + +Inf
  EXPECT_EQ(prev, 3u);
}

TEST(Prometheus, EscapesLabelValuesAndSanitizesNames) {
  obs::MetricsRegistry reg;
  reg.GetCounter("weird-name.x{tag=a\"b\\c\nd}")->Add(1);
  const std::string text = obs::RenderMetricsPrometheus(reg.Snapshot());
  // '-' is not a legal name char; the label value escapes the quote,
  // the backslash and the newline.
  EXPECT_NE(text.find("weird_name_x_total{tag=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Prometheus, IdenticalStateRendersIdenticalBytes) {
  // No timestamps, registration-order independent: two registries with
  // the same state render byte-identical text — what the remote-scrape
  // e2e equality rests on.
  obs::MetricsRegistry a, b;
  b.GetGauge("z.last")->Set(2.0);  // reversed registration order
  b.GetCounter("a.first")->Add(5);
  b.GetHistogram("m.mid")->Record(1.0);
  a.GetCounter("a.first")->Add(5);
  a.GetHistogram("m.mid")->Record(1.0);
  a.GetGauge("z.last")->Set(2.0);
  EXPECT_EQ(obs::RenderMetricsPrometheus(a.Snapshot()),
            obs::RenderMetricsPrometheus(b.Snapshot()));
  EXPECT_EQ(obs::RenderMetricsPrometheus(a.Snapshot()),
            obs::RenderMetricsPrometheus(a.Snapshot()));
}

// ---- Wire-propagated trace context ----

TEST(TraceContext, ScopedSpanJoinsAmbientContextAndAdvancesParent) {
  obs::Tracer tracer(2);
  obs::TraceContext ctx;
  ctx.trace_id = 42;
  ctx.parent_span_id = 7;
  {
    obs::ScopedTraceContext ambient(ctx);
    obs::ScopedSpan outer(&tracer, obs::kSpanIngestAdmit, 0);
    // The span joined the trace and advanced the ambient parent to
    // itself, so a nested span becomes its child.
    const obs::TraceContext inner_ctx = obs::CurrentTraceContext();
    EXPECT_EQ(inner_ctx.trace_id, 42u);
    EXPECT_NE(inner_ctx.parent_span_id, 7u);
    { obs::ScopedSpan inner(&tracer, obs::kSpanDrainApply, 1); }
  }
  EXPECT_FALSE(obs::CurrentTraceContext().active());

  std::vector<obs::TraceSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  const obs::TraceSpan* outer_span = nullptr;
  const obs::TraceSpan* inner_span = nullptr;
  for (const obs::TraceSpan& span : spans) {
    if (std::strcmp(span.name, obs::kSpanIngestAdmit) == 0) {
      outer_span = &span;
    } else {
      inner_span = &span;
    }
  }
  ASSERT_NE(outer_span, nullptr);
  ASSERT_NE(inner_span, nullptr);
  EXPECT_EQ(outer_span->trace_id, 42u);
  EXPECT_EQ(outer_span->parent_span_id, 7u);
  EXPECT_NE(outer_span->span_id, 0u);
  EXPECT_EQ(inner_span->trace_id, 42u);
  EXPECT_EQ(inner_span->parent_span_id, outer_span->span_id);

  // The Chrome-trace export carries the ids as hex strings.
  const std::string json = obs::RenderChromeTrace(tracer);
  EXPECT_NE(json.find("\"trace_id\": \"000000000000002a\""),
            std::string::npos);
  EXPECT_TRUE(JsonChecker(json).Valid());
}

TEST(TraceContext, UnsampledAmbientContextIsIgnored) {
  obs::Tracer tracer(1);
  obs::TraceContext ctx;
  ctx.trace_id = 99;
  ctx.sampled = false;
  {
    obs::ScopedTraceContext ambient(ctx);
    obs::ScopedSpan span(&tracer, obs::kSpanIngestAdmit, 0);
  }
  ASSERT_EQ(tracer.Spans().size(), 1u);
  EXPECT_EQ(tracer.Spans()[0].trace_id, 0u);
}

TEST(TraceContext, AdoptContextStitchesCrossThreadSpans) {
  // The drain-worker path: the context travels with the queued batch,
  // not the thread, and the worker's span adopts it explicitly.
  obs::Tracer tracer(1);
  obs::TraceContext ctx;
  ctx.trace_id = 1234;
  ctx.parent_span_id = 55;
  {
    obs::ScopedSpan span(&tracer, obs::kSpanDrainApply, 0);
    span.AdoptContext(ctx);
  }
  ASSERT_EQ(tracer.Spans().size(), 1u);
  EXPECT_EQ(tracer.Spans()[0].trace_id, 1234u);
  EXPECT_EQ(tracer.Spans()[0].parent_span_id, 55u);
  EXPECT_NE(tracer.Spans()[0].span_id, 0u);
}

// ---- SLO watchdog ----

TEST(Watchdog, FiresAndClearsWithHysteresis) {
  // The acceptance scenario: an injected follower-staleness breach
  // fires the alert, and only dropping below clear_below clears it —
  // the band between the thresholds holds the alert active.
  obs::MetricsRegistry reg;
  obs::Gauge* behind = reg.GetGauge("follower.epochs_behind");
  obs::Watchdog watchdog(&reg);
  obs::Watchdog::Rule rule;
  rule.name = "follower-staleness";
  rule.metric = "follower.epochs_behind";
  rule.fire_above = 5.0;
  rule.clear_below = 2.0;
  watchdog.AddRule(rule);

  watchdog.Tick();  // healthy
  EXPECT_EQ(watchdog.alerts_active(), 0u);

  behind->Set(10.0);  // inject the breach
  watchdog.Tick();
  EXPECT_EQ(watchdog.alerts_active(), 1u);
  EXPECT_EQ(watchdog.ActiveAlerts(),
            std::vector<std::string>{"follower-staleness"});
  EXPECT_EQ(watchdog.alerts_fired(), 1u);

  behind->Set(3.0);  // inside the hysteresis band: stays active
  watchdog.Tick();
  EXPECT_EQ(watchdog.alerts_active(), 1u);
  EXPECT_EQ(watchdog.alerts_fired(), 1u);  // no re-fire, no storm

  behind->Set(1.0);  // below clear_below: clears
  watchdog.Tick();
  EXPECT_EQ(watchdog.alerts_active(), 0u);
  EXPECT_TRUE(watchdog.ActiveAlerts().empty());

  // The registry mirrors the state Health reports.
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(GaugeValue(snap, "obs.alerts_active"), 0.0);
  EXPECT_EQ(CounterValue(snap, "obs.alerts_fired"), 1u);
  EXPECT_EQ(CounterValue(snap, "obs.watchdog_ticks"), 4u);
}

TEST(Watchdog, CooldownSuppressesImmediateRefire) {
  obs::MetricsRegistry reg;
  obs::Gauge* gauge = reg.GetGauge("net.loop_lag_ms");
  obs::Watchdog watchdog(&reg);
  obs::Watchdog::Rule rule;
  rule.name = "loop-lag";
  rule.metric = "net.loop_lag_ms";
  rule.fire_above = 100.0;
  rule.clear_below = 10.0;
  rule.cooldown_ticks = 3;
  watchdog.AddRule(rule);

  gauge->Set(200.0);
  watchdog.Tick();  // fires
  gauge->Set(5.0);
  watchdog.Tick();  // clears
  gauge->Set(200.0);
  watchdog.Tick();  // breach again, but cooling down
  EXPECT_EQ(watchdog.alerts_active(), 0u);
  watchdog.Tick();  // still cooling (2 ticks since clear)
  EXPECT_EQ(watchdog.alerts_active(), 0u);
  watchdog.Tick();  // 3 ticks since clear: may fire again
  EXPECT_EQ(watchdog.alerts_active(), 1u);
  EXPECT_EQ(watchdog.alerts_fired(), 2u);
}

TEST(Watchdog, CounterDeltaWatchesPerTickIncrease) {
  obs::MetricsRegistry reg;
  obs::Counter* rejected = reg.GetCounter("read.rejected_stale");
  obs::Watchdog watchdog(&reg);
  obs::Watchdog::Rule rule;
  rule.name = "stale-rejections";
  rule.metric = "read.rejected_stale";
  rule.kind = obs::Watchdog::Rule::Kind::kCounterDelta;
  rule.fire_above = 100.0;
  rule.clear_below = 10.0;
  watchdog.AddRule(rule);

  rejected->Add(100000);  // pre-existing total: first tick only baselines
  watchdog.Tick();
  EXPECT_EQ(watchdog.alerts_active(), 0u);

  rejected->Add(50);  // 50/tick: under the threshold
  watchdog.Tick();
  EXPECT_EQ(watchdog.alerts_active(), 0u);

  rejected->Add(500);  // burst
  watchdog.Tick();
  EXPECT_EQ(watchdog.alerts_active(), 1u);

  watchdog.Tick();  // no new rejections: delta 0 clears
  EXPECT_EQ(watchdog.alerts_active(), 0u);
}

TEST(Watchdog, BackgroundThreadTicksAndStops) {
  obs::MetricsRegistry reg;
  reg.GetGauge("follower.epochs_behind")->Set(50.0);
  obs::Watchdog watchdog(&reg);
  obs::Watchdog::Rule rule;
  rule.name = "behind";
  rule.metric = "follower.epochs_behind";
  rule.fire_above = 5.0;
  rule.clear_below = 2.0;
  watchdog.AddRule(rule);
  watchdog.Start(/*interval_ms=*/1);
  for (int i = 0; i < 200 && watchdog.alerts_active() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  watchdog.Stop();
  EXPECT_EQ(watchdog.alerts_active(), 1u);
  const uint64_t ticks = CounterValue(reg.Snapshot(), "obs.watchdog_ticks");
  EXPECT_GT(ticks, 0u);
  // Stopped: no further ticks.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(CounterValue(reg.Snapshot(), "obs.watchdog_ticks"), ticks);
}

TEST(Watchdog, AlertsEmitSpansOnTheServiceRing) {
  obs::MetricsRegistry reg;
  obs::Tracer tracer(1);
  obs::Gauge* gauge = reg.GetGauge("follower.epochs_behind");
  obs::Watchdog watchdog(&reg, &tracer);
  obs::Watchdog::Rule rule;
  rule.name = "behind";
  rule.metric = "follower.epochs_behind";
  rule.fire_above = 5.0;
  rule.clear_below = 2.0;
  watchdog.AddRule(rule);
  gauge->Set(10.0);
  watchdog.Tick();
  gauge->Set(0.0);
  watchdog.Tick();
  bool saw_fire = false, saw_clear = false;
  for (const obs::TraceSpan& span : tracer.Spans()) {
    if (std::strcmp(span.name, obs::kSpanAlertFire) == 0) saw_fire = true;
    if (std::strcmp(span.name, obs::kSpanAlertClear) == 0) saw_clear = true;
  }
  EXPECT_TRUE(saw_fire);
  EXPECT_TRUE(saw_clear);
}

}  // namespace
}  // namespace dynamicc
