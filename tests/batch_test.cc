#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "batch/agglomerative.h"
#include "batch/dbscan.h"
#include "batch/hill_climbing.h"
#include "batch/kmeans_lloyd.h"
#include "cluster/engine.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "objective/correlation.h"
#include "objective/kmeans.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

class TableSimilarity final : public SimilarityMeasure {
 public:
  explicit TableSimilarity(std::map<std::pair<int, int>, double> edges)
      : edges_(std::move(edges)) {}
  double Similarity(const Record& a, const Record& b) const override {
    int x = static_cast<int>(a.numeric[0]);
    int y = static_cast<int>(b.numeric[0]);
    if (x > y) std::swap(x, y);
    auto it = edges_.find({x, y});
    return it == edges_.end() ? 0.0 : it->second;
  }
  const char* Name() const override { return "table"; }

 private:
  std::map<std::pair<int, int>, double> edges_;
};

/// The Figure 2 instance (see objective_test.cc for the edge derivation).
class Figure2Fixture : public ::testing::Test {
 protected:
  Figure2Fixture()
      : measure_({{{1, 2}, 0.9},
                  {{2, 3}, 0.9},
                  {{4, 5}, 0.9},
                  {{1, 7}, 1.0},
                  {{4, 6}, 0.7},
                  {{5, 6}, 0.8}}),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.05) {
    for (int label = 1; label <= 7; ++label) {
      Record record;
      record.numeric = {static_cast<double>(label)};
      ids_[label] = dataset_.Add(record);
      graph_.AddObject(ids_[label]);
    }
  }

  ObjectId R(int label) { return ids_.at(label); }

  std::vector<std::vector<ObjectId>> PaperClustering() {
    std::vector<std::vector<ObjectId>> expected = {
        {R(1), R(7)}, {R(2), R(3)}, {R(4), R(5), R(6)}};
    for (auto& cluster : expected) std::sort(cluster.begin(), cluster.end());
    std::sort(expected.begin(), expected.end());
    return expected;
  }

  Dataset dataset_;
  TableSimilarity measure_;
  SimilarityGraph graph_;
  std::map<int, ObjectId> ids_;
};

// ----------------------------------------------------------- agglomerative

TEST_F(Figure2Fixture, AgglomerativeFindsPaperClustering) {
  ClusteringEngine engine(&graph_);
  CorrelationObjective objective;
  GreedyAgglomerative batch(&objective);
  batch.Run(&engine);
  EXPECT_EQ(engine.clustering().CanonicalClusters(), PaperClustering());
}

TEST_F(Figure2Fixture, AgglomerativeRecordsMergeSteps) {
  ClusteringEngine engine(&graph_);
  CorrelationObjective objective;
  GreedyAgglomerative batch(&objective);
  RecordingObserver observer;
  batch.Run(&engine, &observer);
  // 7 singletons -> 3 clusters takes exactly 4 merges (Figure 2's steps).
  EXPECT_EQ(observer.steps().size(), 4u);
  for (const auto& step : observer.steps()) {
    EXPECT_EQ(step.kind, EvolutionStep::Kind::kMerge);
  }
}

TEST_F(Figure2Fixture, AgglomerativeNeverWorsensObjective) {
  ClusteringEngine engine(&graph_);
  CorrelationObjective objective;
  engine.InitSingletons();
  double before = objective.Evaluate(engine);
  GreedyAgglomerative batch(&objective);
  batch.Run(&engine);
  EXPECT_LT(objective.Evaluate(engine), before);
}

// ----------------------------------------------------------- hill climbing

TEST_F(Figure2Fixture, HillClimbingFindsPaperClustering) {
  ClusteringEngine engine(&graph_);
  CorrelationObjective objective;
  HillClimbing batch(&objective);
  batch.Run(&engine);
  EXPECT_EQ(engine.clustering().CanonicalClusters(), PaperClustering());
}

TEST_F(Figure2Fixture, HillClimbingRefinesFromCurrent) {
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  // Deliberately bad start: everything in one cluster.
  auto ids = engine.clustering().ClusterIds();
  ClusterId all = ids[0];
  for (size_t i = 1; i < ids.size(); ++i) all = engine.Merge(all, ids[i]);

  CorrelationObjective objective;
  HillClimbing::Options options;
  options.from_current = true;
  HillClimbing batch(&objective, options);
  double before = objective.Evaluate(engine);
  batch.Run(&engine);
  EXPECT_LT(objective.Evaluate(engine), before);
  EXPECT_GT(batch.last_step_count(), 0u);
}

TEST(HillClimbing, MonotonicObjectiveOnRandomGraph) {
  Rng rng(17);
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  for (int i = 0; i < 40; ++i) {
    Record record;
    record.numeric = {rng.Uniform(0.0, 10.0)};
    graph.AddObject(dataset.Add(record));
  }
  ClusteringEngine engine(&graph);
  CorrelationObjective objective;
  HillClimbing batch(&objective);
  batch.Run(&engine);
  double score = objective.Evaluate(engine);
  // Local optimum: no single merge of inter-neighbors improves.
  bool any_improving = false;
  engine.stats().ForEachInter([&](ClusterId a, ClusterId b, double) {
    if (objective.MergeDelta(engine, a, b) < -1e-9) any_improving = true;
  });
  EXPECT_FALSE(any_improving);
  EXPECT_GE(score, 0.0);
}

TEST_F(Figure2Fixture, PrunedHillClimbingStillSolvesExample) {
  ClusteringEngine engine(&graph_);
  CorrelationObjective objective;
  HillClimbing::Options options;
  options.prune_top = 3;
  HillClimbing batch(&objective, options);
  batch.Run(&engine);
  EXPECT_EQ(engine.clustering().CanonicalClusters(), PaperClustering());
}

// ----------------------------------------------------------------- dbscan

class DbscanFixture : public ::testing::Test {
 protected:
  DbscanFixture()
      : measure_(2.0),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.01) {}

  ObjectId AddPoint(double x, double y) {
    Record record;
    record.numeric = {x, y};
    ObjectId id = dataset_.Add(record);
    graph_.AddObject(id);
    return id;
  }

  Dataset dataset_;
  EuclideanSimilarity measure_;
  SimilarityGraph graph_;
};

TEST_F(DbscanFixture, TwoBlobsAndNoise) {
  // Blob A: 5 points tightly packed; blob B likewise; one far noise point.
  std::vector<ObjectId> blob_a, blob_b;
  for (int i = 0; i < 5; ++i) blob_a.push_back(AddPoint(0.0 + 0.1 * i, 0.0));
  for (int i = 0; i < 5; ++i) blob_b.push_back(AddPoint(50.0 + 0.1 * i, 0.0));
  ObjectId noise = AddPoint(25.0, 25.0);

  Dbscan::Options options;
  options.min_pts = 3;
  // eps distance 1.0 under scale 2.0: sim = exp(-1/8).
  options.eps_similarity = std::exp(-1.0 / 8.0) - 1e-9;
  Dbscan dbscan(options);
  ClusteringEngine engine(&graph_);
  dbscan.Run(&engine);

  ClusterId ca = engine.clustering().ClusterOf(blob_a[0]);
  for (ObjectId id : blob_a) EXPECT_EQ(engine.clustering().ClusterOf(id), ca);
  ClusterId cb = engine.clustering().ClusterOf(blob_b[0]);
  for (ObjectId id : blob_b) EXPECT_EQ(engine.clustering().ClusterOf(id), cb);
  EXPECT_NE(ca, cb);
  // Noise is its own singleton.
  EXPECT_EQ(engine.clustering().ClusterSize(
                engine.clustering().ClusterOf(noise)),
            1u);
}

TEST_F(DbscanFixture, CorePointDetection) {
  for (int i = 0; i < 4; ++i) AddPoint(0.1 * i, 0.0);
  ObjectId lone = AddPoint(30.0, 0.0);
  Dbscan::Options options;
  options.min_pts = 3;
  options.eps_similarity = std::exp(-1.0 / 8.0) - 1e-9;
  Dbscan dbscan(options);
  EXPECT_TRUE(dbscan.IsCore(graph_, 0));
  EXPECT_FALSE(dbscan.IsCore(graph_, lone));
}

TEST_F(DbscanFixture, ValidatorAcceptsReachableMerge) {
  std::vector<ObjectId> blob;
  for (int i = 0; i < 5; ++i) blob.push_back(AddPoint(0.2 * i, 0.0));
  ObjectId border = AddPoint(1.5, 0.0);  // within eps of the blob edge

  Dbscan::Options options;
  options.min_pts = 3;
  options.eps_similarity = std::exp(-1.0 / 8.0) - 1e-9;  // eps distance 1.0
  Dbscan dbscan(options);
  DbscanValidator validator(&dbscan, &graph_);

  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId cluster = engine.clustering().ClusterOf(blob[0]);
  for (size_t i = 1; i < blob.size(); ++i) {
    cluster = engine.Merge(cluster, engine.clustering().ClusterOf(blob[i]));
  }
  ClusterId border_cluster = engine.clustering().ClusterOf(border);
  EXPECT_TRUE(validator.MergeImproves(engine, cluster, border_cluster));

  // A detached far point is not reachable.
  ObjectId far = AddPoint(40.0, 0.0);
  engine.AddObjectAsSingleton(far);
  EXPECT_FALSE(validator.MergeImproves(
      engine, cluster, engine.clustering().ClusterOf(far)));
}

TEST_F(DbscanFixture, ValidatorAcceptsDetachedSplit) {
  std::vector<ObjectId> blob;
  for (int i = 0; i < 5; ++i) blob.push_back(AddPoint(0.2 * i, 0.0));
  ObjectId outlier = AddPoint(20.0, 0.0);

  Dbscan::Options options;
  options.min_pts = 3;
  options.eps_similarity = std::exp(-1.0 / 8.0) - 1e-9;
  Dbscan dbscan(options);
  DbscanValidator validator(&dbscan, &graph_);

  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId cluster = engine.clustering().ClusterOf(blob[0]);
  for (size_t i = 1; i < blob.size(); ++i) {
    cluster = engine.Merge(cluster, engine.clustering().ClusterOf(blob[i]));
  }
  cluster = engine.Merge(cluster, engine.clustering().ClusterOf(outlier));
  // The outlier is detached: splitting it out is valid.
  EXPECT_TRUE(validator.SplitImproves(engine, cluster, {outlier}));
  // A core blob member is not detached.
  EXPECT_FALSE(validator.SplitImproves(engine, cluster, {blob[2]}));
}

// ----------------------------------------------------------------- kmeans

TEST(KMeansLloyd, SeparatesGaussianBlobs) {
  Rng rng(5);
  Dataset dataset;
  EuclideanSimilarity measure(2.0);
  SimilarityGraph graph(&dataset, &measure, std::make_unique<GridBlocker>(5.0),
                        0.05);
  std::vector<std::vector<double>> centers = {{0, 0}, {30, 0}, {0, 30}};
  std::vector<ObjectId> ids;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      Record record;
      record.entity = static_cast<uint32_t>(c + 1);
      record.numeric = {centers[c][0] + rng.Gaussian(0, 1.0),
                        centers[c][1] + rng.Gaussian(0, 1.0)};
      ObjectId id = dataset.Add(record);
      graph.AddObject(id);
      ids.push_back(id);
    }
  }
  KMeansLloyd::Options options;
  options.k = 3;
  options.seed = 9;
  KMeansLloyd kmeans(options);
  ClusteringEngine engine(&graph);
  kmeans.Run(&engine);
  EXPECT_EQ(engine.clustering().num_clusters(), 3u);
  // Objects of the same blob share a cluster.
  for (int c = 0; c < 3; ++c) {
    ClusterId cluster = engine.clustering().ClusterOf(ids[c * 20]);
    for (int i = 1; i < 20; ++i) {
      EXPECT_EQ(engine.clustering().ClusterOf(ids[c * 20 + i]), cluster);
    }
  }
  KMeansObjective objective(&dataset, 3);
  // SSE should be near 2 * 60 (unit-variance blobs, d = 2).
  EXPECT_LT(objective.Sse(engine), 200.0);
}

TEST(KMeansLloyd, DeterministicForSeed) {
  Rng rng(6);
  Dataset dataset;
  EuclideanSimilarity measure(2.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  for (int i = 0; i < 30; ++i) {
    Record record;
    record.numeric = {rng.Uniform(0, 50), rng.Uniform(0, 50)};
    graph.AddObject(dataset.Add(record));
  }
  KMeansLloyd::Options options;
  options.k = 4;
  options.seed = 3;
  ClusteringEngine e1(&graph), e2(&graph);
  KMeansLloyd(options).Run(&e1);
  KMeansLloyd(options).Run(&e2);
  EXPECT_EQ(e1.clustering().CanonicalClusters(),
            e2.clustering().CanonicalClusters());
}

// -------------------------------------------------------------- composite

TEST_F(Figure2Fixture, CompositeRunsStagesInOrder) {
  CorrelationObjective objective;
  GreedyAgglomerative stage1(&objective);
  HillClimbing::Options refine_options;
  refine_options.from_current = true;
  HillClimbing stage2(&objective, refine_options);
  CompositeBatch composite({&stage1, &stage2}, "agglo+hc");
  ClusteringEngine engine(&graph_);
  composite.Run(&engine);
  EXPECT_EQ(engine.clustering().CanonicalClusters(), PaperClustering());
}

}  // namespace
}  // namespace dynamicc
