#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/operation_log.h"
#include "data/operations.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

DataOperation Add(ObjectId handle, std::string token) {
  DataOperation op;
  op.kind = DataOperation::Kind::kAdd;
  op.target = handle;  // the id this add will materialize as
  op.record.tokens = {std::move(token)};
  return op;
}

DataOperation Update(ObjectId target, std::string token) {
  DataOperation op;
  op.kind = DataOperation::Kind::kUpdate;
  op.target = target;
  op.record.tokens = {std::move(token)};
  return op;
}

DataOperation Remove(ObjectId target) {
  DataOperation op;
  op.kind = DataOperation::Kind::kRemove;
  op.target = target;
  return op;
}

TEST(OperationLog, SequencesAreDenseAndOrderIsPreserved) {
  OperationLog log;
  EXPECT_EQ(log.Append(Add(0, "a")), 0u);
  EXPECT_EQ(log.Append(Add(1, "b")), 1u);
  EXPECT_EQ(log.Append(Remove(7)), 2u);  // remove of an applied object
  EXPECT_EQ(log.pending(), 3u);
  EXPECT_EQ(log.appended(), 3u);

  OperationLog::Drained drained = log.Take();
  ASSERT_EQ(drained.ops.size(), 3u);
  EXPECT_EQ(drained.logical_ops, 3u);
  EXPECT_EQ(drained.end_sequence, 3u);
  EXPECT_EQ(drained.ops[0].kind, DataOperation::Kind::kAdd);
  EXPECT_EQ(drained.ops[0].record.tokens[0], "a");
  EXPECT_EQ(drained.ops[1].record.tokens[0], "b");
  EXPECT_EQ(drained.ops[2].kind, DataOperation::Kind::kRemove);
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.pending_logical(), 0u);
  // Sequences keep counting across drains.
  EXPECT_EQ(log.Append(Add(2, "c")), 3u);
}

TEST(OperationLog, FirstPendingSequenceTracksTheReflectedPrefix) {
  OperationLog log;
  EXPECT_EQ(log.first_pending_sequence(), 0u);  // empty: everything done
  log.Append(Add(0, "a"));                      // seq 0
  log.Append(Add(1, "b"));                      // seq 1
  EXPECT_EQ(log.first_pending_sequence(), 0u);

  OperationLog::Drained drained = log.Take(1);  // drains seq 0
  ASSERT_EQ(drained.ops.size(), 1u);
  EXPECT_EQ(log.first_pending_sequence(), 1u);

  // A fold into a pending host keeps the host's earlier sequence as the
  // floor — the fold's own effect is pending until the host drains.
  log.Append(Update(1, "b2"));  // seq 2, folds into seq 1
  EXPECT_EQ(log.first_pending_sequence(), 1u);

  // Annihilated entries do not hold the watermark back.
  log.Take(0);
  log.Append(Add(5, "x"));  // seq 3
  log.Append(Remove(5));    // seq 4: annihilates seq 3 in place
  log.Append(Add(6, "y"));  // seq 5
  EXPECT_EQ(log.first_pending_sequence(), 5u);
  log.Take(0);
  EXPECT_EQ(log.first_pending_sequence(), log.appended());
}

TEST(OperationLog, AddThenUpdateFoldsIntoTheAdd) {
  OperationLog log;
  log.Append(Add(0, "old"));
  log.Append(Add(1, "other"));
  log.Append(Update(0, "new"));
  // The fold keeps the add's position, so id-assignment order holds.
  EXPECT_EQ(log.pending(), 2u);
  EXPECT_EQ(log.coalesced(), 1u);
  EXPECT_EQ(log.pending_logical(), 3u);

  OperationLog::Drained drained = log.Take();
  ASSERT_EQ(drained.ops.size(), 2u);
  EXPECT_EQ(drained.logical_ops, 3u);
  EXPECT_EQ(drained.ops[0].kind, DataOperation::Kind::kAdd);
  EXPECT_EQ(drained.ops[0].target, 0u);
  EXPECT_EQ(drained.ops[0].record.tokens[0], "new");
  EXPECT_EQ(drained.ops[1].target, 1u);
}

TEST(OperationLog, UpdateChainsKeepOnlyTheLastContent) {
  OperationLog log;
  log.Append(Update(5, "v1"));
  log.Append(Update(5, "v2"));
  log.Append(Update(5, "v3"));
  EXPECT_EQ(log.pending(), 1u);
  EXPECT_EQ(log.coalesced(), 2u);
  OperationLog::Drained drained = log.Take();
  ASSERT_EQ(drained.ops.size(), 1u);
  EXPECT_EQ(drained.logical_ops, 3u);
  EXPECT_EQ(drained.ops[0].kind, DataOperation::Kind::kUpdate);
  EXPECT_EQ(drained.ops[0].record.tokens[0], "v3");
}

TEST(OperationLog, AddThenRemoveAnnihilates) {
  OperationLog log;
  log.Append(Add(0, "a"));
  log.Append(Add(1, "doomed"));
  log.Append(Update(1, "still doomed"));
  log.Append(Remove(1));
  // Object 1 never materializes: the add (with its folded update) and
  // the remove all vanish.
  EXPECT_EQ(log.pending(), 1u);
  EXPECT_EQ(log.pending_logical(), 1u);
  EXPECT_EQ(log.coalesced(), 3u);

  OperationLog::Drained drained = log.Take();
  ASSERT_EQ(drained.ops.size(), 1u);
  EXPECT_EQ(drained.ops[0].target, 0u);
  EXPECT_TRUE(log.empty());
}

TEST(OperationLog, UpdateThenRemoveBecomesRemove) {
  OperationLog log;
  log.Append(Update(3, "overwritten"));
  log.Append(Remove(3));
  EXPECT_EQ(log.pending(), 1u);
  EXPECT_EQ(log.coalesced(), 1u);
  OperationLog::Drained drained = log.Take();
  ASSERT_EQ(drained.ops.size(), 1u);
  EXPECT_EQ(drained.ops[0].kind, DataOperation::Kind::kRemove);
  EXPECT_EQ(drained.ops[0].target, 3u);
  EXPECT_EQ(drained.logical_ops, 2u);
}

TEST(OperationLog, DrainedTargetsNoLongerCoalesce) {
  OperationLog log;
  log.Append(Add(0, "a"));
  OperationLog::Drained first = log.Take();
  ASSERT_EQ(first.ops.size(), 1u);
  // The add has been paid for; a later remove must survive on its own.
  log.Append(Remove(0));
  EXPECT_EQ(log.pending(), 1u);
  OperationLog::Drained second = log.Take();
  ASSERT_EQ(second.ops.size(), 1u);
  EXPECT_EQ(second.ops[0].kind, DataOperation::Kind::kRemove);
}

TEST(OperationLog, BoundedTakeRespectsArrivalOrderAndPurgesHandles) {
  OperationLog log;
  for (ObjectId i = 0; i < 6; ++i) {
    log.Append(Add(i, "t" + std::to_string(i)));
  }
  OperationLog::Drained first = log.Take(2);
  ASSERT_EQ(first.ops.size(), 2u);
  EXPECT_EQ(first.ops[0].target, 0u);
  EXPECT_EQ(first.ops[1].target, 1u);
  EXPECT_EQ(log.pending(), 4u);
  // Updates to a drained target append standalone; updates to a still
  // queued target fold.
  log.Append(Update(0, "late"));
  log.Append(Update(4, "folded"));
  EXPECT_EQ(log.pending(), 5u);
  EXPECT_EQ(log.coalesced(), 1u);
  OperationLog::Drained rest = log.Take();
  ASSERT_EQ(rest.ops.size(), 5u);
  EXPECT_EQ(rest.ops[2].target, 4u);
  EXPECT_EQ(rest.ops[2].record.tokens[0], "folded");
  EXPECT_EQ(rest.ops[4].kind, DataOperation::Kind::kUpdate);
  EXPECT_EQ(rest.ops[4].target, 0u);
}

TEST(OperationLog, ExtractIfRemovesMatchesAndKeepsTheRestCoalescing) {
  // Interleave two "groups" of targets; extracting one group by target
  // must preserve arrival order on both sides, carry sequence numbers,
  // and leave the kept entries still able to coalesce.
  OperationLog log;
  log.Append(Add(0, "g0"));
  log.Append(Add(1, "g1"));
  log.Append(Add(2, "g0"));
  log.Append(Update(1, "g1b"));  // folds into add(1)
  log.Append(Add(3, "g1"));
  EXPECT_EQ(log.pending(), 4u);

  auto moved = log.ExtractIf([](const DataOperation& op) {
    return op.target == 1 || op.target == 3;
  });
  ASSERT_EQ(moved.ops.size(), 2u);
  EXPECT_EQ(moved.ops[0].target, 1u);
  EXPECT_EQ(moved.ops[0].record.tokens[0], "g1b");  // kept its fold
  EXPECT_EQ(moved.ops[1].target, 3u);
  EXPECT_EQ(moved.logical_ops, 3u);  // add(1) + folded update + add(3)
  EXPECT_EQ(moved.sequences, (std::vector<uint64_t>{1u, 4u}));
  EXPECT_EQ(log.pending(), 2u);

  // The kept entries still coalesce; the extracted target no longer
  // does (its add lives elsewhere now).
  log.Append(Update(0, "g0b"));
  EXPECT_EQ(log.pending(), 2u);
  log.Append(Update(1, "stray"));
  EXPECT_EQ(log.pending(), 3u);

  // Replay onto a second log: per-object composition keeps working.
  OperationLog destination;
  for (DataOperation& op : moved.ops) destination.Append(std::move(op));
  destination.Append(Remove(3));  // annihilates the replayed add(3)
  EXPECT_EQ(destination.pending(), 1u);
  auto drained = destination.Take();
  ASSERT_EQ(drained.ops.size(), 1u);
  EXPECT_EQ(drained.ops[0].target, 1u);
}

TEST(OperationLog, ExtractIfSkipsAnnihilatedEntries) {
  OperationLog log;
  log.Append(Add(0, "a"));
  log.Append(Remove(0));  // annihilates in place
  log.Append(Add(1, "b"));
  auto moved = log.ExtractIf([](const DataOperation&) { return true; });
  ASSERT_EQ(moved.ops.size(), 1u);
  EXPECT_EQ(moved.ops[0].target, 1u);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_TRUE(log.empty());
}

TEST(OperationLog, ExportRangeCopiesTheSealedTailNonDestructively) {
  OperationLog log;
  log.Append(Add(0, "a"));   // seq 0
  log.Append(Add(1, "b"));   // seq 1
  log.Append(Update(0, "a2"));  // folds into seq 0's add
  log.Append(Add(2, "c"));   // seq 3
  log.Append(Remove(2));     // annihilates seq 3
  log.Append(Add(3, "d"));   // seq 5

  // The epoch-range export: survivors in [0, 4), arrival order, with
  // their sequences; the fold counts toward its host's logical total
  // and the annihilated pair is invisible.
  OperationLog::Extracted exported = log.ExportRange(0, 4);
  ASSERT_EQ(exported.ops.size(), 2u);
  EXPECT_EQ(exported.sequences, (std::vector<uint64_t>{0, 1}));
  EXPECT_EQ(exported.logical_ops, 3u);
  EXPECT_EQ(exported.ops[0].record.tokens[0], "a2");  // the folded content

  // Non-destructive: the log still drains everything, and the exported
  // entries kept coalescing afterwards.
  EXPECT_EQ(log.pending(), 3u);
  log.Append(Update(1, "b2"));
  OperationLog::Drained drained = log.Take();
  ASSERT_EQ(drained.ops.size(), 3u);
  EXPECT_EQ(drained.ops[1].record.tokens[0], "b2");

  // An empty window, and a window past the tail, both come back empty.
  EXPECT_TRUE(log.ExportRange(0, 0).ops.empty());
  EXPECT_TRUE(log.ExportRange(100, 200).ops.empty());
}

TEST(OperationLog, ExportRangeBoundsMatchEpochBoundaries) {
  OperationLog log;
  log.Append(Add(0, "a"));  // epoch 1: seq 0
  log.Append(Add(1, "b"));  // epoch 1: seq 1
  const uint64_t boundary = log.appended();
  log.Append(Add(2, "c"));  // epoch 2: seq 2

  // Everything below the seal boundary is the sealed epochs' pending
  // tail — what the service reports to the replication feed at a seal
  // (via the count-only LogicalInRange; ExportRange agrees).
  EXPECT_EQ(log.ExportRange(0, boundary).logical_ops, 2u);
  EXPECT_EQ(log.LogicalInRange(0, boundary), 2u);
  EXPECT_EQ(log.ExportRange(boundary, log.appended()).logical_ops, 1u);
  EXPECT_EQ(log.LogicalInRange(boundary, log.appended()), 1u);

  // Draining the first entry shrinks the exported tail accordingly.
  log.Take(1);
  EXPECT_EQ(log.ExportRange(0, boundary).sequences,
            (std::vector<uint64_t>{1}));
  EXPECT_EQ(log.LogicalInRange(0, boundary), 1u);
}

TEST(OperationLog, AddsWithoutHandlesNeverCoalesce) {
  OperationLog log;
  log.Append(Add(kInvalidObject, "opaque"));
  log.Append(Remove(kInvalidObject));  // remove of some other object
  EXPECT_EQ(log.pending(), 2u);
  EXPECT_EQ(log.coalesced(), 0u);
}

/// Ground truth: applying the coalesced drain to a Dataset must leave
/// exactly the state the raw operation stream would have. Handles are
/// the ids the dataset will assign (dense add order), so the fold rules
/// are exercised against real id assignment.
TEST(OperationLog, CoalescedDrainPreservesFinalDatasetState) {
  Rng rng(29);
  for (int trial = 0; trial < 20; ++trial) {
    // Build a random stream over future ids 0..N-1.
    OperationBatch raw;
    std::vector<ObjectId> added;   // handles of adds so far
    std::vector<bool> removed;     // per handle
    int next_handle = 0;
    for (int step = 0; step < 60; ++step) {
      double dice = rng.Uniform();
      if (dice < 0.5 || added.empty()) {
        ObjectId handle = static_cast<ObjectId>(next_handle++);
        raw.push_back(Add(handle, "v" + std::to_string(rng.Index(1000))));
        added.push_back(handle);
        removed.push_back(false);
      } else {
        ObjectId handle = added[rng.Index(added.size())];
        if (removed[handle]) continue;
        if (dice < 0.8) {
          raw.push_back(Update(handle, "u" + std::to_string(rng.Index(1000))));
        } else {
          raw.push_back(Remove(handle));
          removed[handle] = true;
        }
      }
    }

    // Reference: apply the raw stream directly (handle == dataset id
    // because adds arrive in handle order).
    Dataset reference;
    for (const DataOperation& op : raw) {
      switch (op.kind) {
        case DataOperation::Kind::kAdd: {
          Record record = op.record;
          ObjectId id = reference.Add(record);
          ASSERT_EQ(id, op.target);
          break;
        }
        case DataOperation::Kind::kUpdate:
          reference.Update(op.target, op.record);
          break;
        case DataOperation::Kind::kRemove:
          reference.Remove(op.target);
          break;
      }
    }

    // Candidate: run the stream through the log in random-size chunks,
    // draining between chunks, and apply the drains. Annihilated adds
    // never reach the dataset, so dataset ids diverge from handles —
    // track the mapping like the service does.
    Dataset candidate;
    std::unordered_map<ObjectId, ObjectId> local_of_handle;
    OperationLog log;
    size_t cursor = 0;
    uint64_t reflected = 0;
    while (cursor < raw.size() || !log.empty()) {
      size_t chunk = 1 + rng.Index(8);
      for (size_t i = 0; i < chunk && cursor < raw.size(); ++i) {
        log.Append(raw[cursor++]);
      }
      OperationLog::Drained drained = log.Take(1 + rng.Index(6));
      reflected += drained.logical_ops;
      for (const DataOperation& op : drained.ops) {
        switch (op.kind) {
          case DataOperation::Kind::kAdd: {
            Record record = op.record;
            local_of_handle[op.target] = candidate.Add(record);
            break;
          }
          case DataOperation::Kind::kUpdate:
            candidate.Update(local_of_handle.at(op.target), op.record);
            break;
          case DataOperation::Kind::kRemove:
            candidate.Remove(local_of_handle.at(op.target));
            break;
        }
      }
    }
    // The books balance: every appended operation is either represented
    // by a drained batch or vanished through annihilation.
    EXPECT_EQ(reflected + log.vanished(), log.appended());

    // Alive handles carry identical content on both sides.
    EXPECT_EQ(candidate.alive_count(), reference.alive_count());
    for (ObjectId handle = 0;
         handle < static_cast<ObjectId>(reference.total_count()); ++handle) {
      if (!reference.IsAlive(handle)) continue;
      auto it = local_of_handle.find(handle);
      ASSERT_NE(it, local_of_handle.end()) << "handle " << handle;
      ASSERT_TRUE(candidate.IsAlive(it->second));
      EXPECT_EQ(candidate.Get(it->second).tokens,
                reference.Get(handle).tokens);
    }
  }
}

}  // namespace
}  // namespace dynamicc
