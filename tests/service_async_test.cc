// Async pipelined ingestion: bounded per-shard queues + background round
// workers. The anchor is the flush-barrier contract — after Flush(), the
// async N-shard service must be byte-identical to the synchronous
// single-engine run on blocking-disjoint streams, for any interleaving
// of enqueues the pipeline chose to coalesce or round differently.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "batch/agglomerative.h"
#include "core/session.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/operations.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "eval/pair_metrics.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "service/service_report.h"
#include "service/sharded_service.h"
#include "service/thread_pool.h"
#include "service_test_util.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

// ------------------------------------------------------- pinned submission

TEST(ThreadPool, SubmitToRunsFifoPerWorker) {
  ThreadPool pool(3);
  std::vector<int> order;
  std::mutex mutex;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.SubmitTo(1, [i, &order, &mutex] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
  }
  for (auto& future : futures) future.get();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, PinnedAndForkJoinShareWorkers) {
  ThreadPool pool(2);
  std::atomic<int> pinned{0};
  auto future = pool.SubmitTo(0, [&pinned] { pinned.fetch_add(1); });
  std::atomic<int> total{0};
  pool.ParallelFor(16, [&total](size_t) { total.fetch_add(1); });
  future.get();
  EXPECT_EQ(pinned.load(), 1);
  EXPECT_EQ(total.load(), 16);
}

// ------------------------------------- service fixtures: service_test_util.h

ShardedDynamicCService::Options AsyncOptions(uint32_t shards,
                                             size_t queue_depth = 4096) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = true;
  options.async.queue_depth = queue_depth;
  return options;
}

// ------------------------------------------------ async-vs-sync equivalence

TEST(AsyncService, MatchesSingleEngineAtFlushBarriers) {
  // The PR-1 acceptance scenario, served through the async pipeline:
  // same training barriers, serving traffic enqueued instead of applied,
  // one Flush() at the end. For N in {1, 2, 4} the flushed state must
  // be byte-identical to the synchronous single-engine run.
  const int kGroups = 12;
  std::vector<OperationBatch> batches;
  batches.push_back(GroupAdds(kGroups, 4));
  batches.push_back(GroupAdds(kGroups, 2));
  OperationBatch mixed = GroupAdds(kGroups, 1);
  DataOperation update;
  update.kind = DataOperation::Kind::kUpdate;
  update.target = 0;
  update.record.entity = 0;
  update.record.tokens = {"grp0", "tag0"};
  mixed.push_back(update);
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = 1;
  mixed.push_back(remove);
  batches.push_back(mixed);

  std::vector<std::vector<ObjectId>> reference =
      SingleEngineRun(batches, /*training=*/2);
  ASSERT_EQ(reference.size(), static_cast<size_t>(kGroups));

  for (uint32_t shards : {1u, 2u, 4u}) {
    ShardedDynamicCService service(AsyncOptions(shards), nullptr,
                                   MakeFactory());
    ASSERT_TRUE(service.async());

    auto changed = service.ApplyOperations(batches[0]);
    EXPECT_EQ(changed.size(), batches[0].size());
    service.ObserveBatchRound(changed);
    changed = service.ApplyOperations(batches[1]);
    service.ObserveBatchRound(changed);
    EXPECT_TRUE(service.is_trained());

    service.ApplyOperations(batches[2]);
    ServiceReport report = service.Flush();

    std::vector<std::vector<ObjectId>> clusters = service.GlobalClusters();
    EXPECT_EQ(clusters.size(), reference.size()) << "N=" << shards;
    EXPECT_DOUBLE_EQ(PairF1(clusters, reference), 1.0) << "N=" << shards;
    EXPECT_EQ(clusters, reference) << "N=" << shards;

    // The flush report carries the pipeline's cumulative counters.
    EXPECT_EQ(report.ingest.accepted_ops,
              batches[0].size() + batches[1].size() + batches[2].size());
    EXPECT_EQ(report.ingest.pending_ops, 0u);
    EXPECT_GT(report.ingest.applied_batches, 0u);
  }
}

TEST(AsyncService, ExtraTrainingBarriersStayByteIdenticalToSync) {
  // Models typically fit at the *first* observe; the service must not
  // start background rounds just because it is trained, or the second
  // and third training barriers would see a pre-rounded engine and
  // derive different models than the synchronous run. Observes keep
  // the pipeline in barrier-driven mode, so any training length
  // matches sync exactly.
  const int kGroups = 10;
  std::vector<OperationBatch> batches;
  batches.push_back(GroupAdds(kGroups, 4));
  batches.push_back(GroupAdds(kGroups, 2));
  batches.push_back(GroupAdds(kGroups, 2));  // third training barrier
  batches.push_back(GroupAdds(kGroups, 1));  // served dynamically

  std::vector<std::vector<ObjectId>> reference =
      SingleEngineRun(batches, /*training=*/3);

  for (uint32_t shards : {1u, 4u}) {
    ShardedDynamicCService service(AsyncOptions(shards), nullptr,
                                   MakeFactory());
    for (int round = 0; round < 3; ++round) {
      auto changed = service.ApplyOperations(batches[round]);
      service.ObserveBatchRound(changed);
    }
    service.ApplyOperations(batches[3]);
    service.Flush();
    EXPECT_EQ(service.GlobalClusters(), reference) << "N=" << shards;
  }
}

TEST(AsyncService, BackgroundWorkersRoundOnceTrained) {
  // After training, serving traffic must be rounded by the background
  // workers themselves — a Flush() afterwards finds nothing left to do.
  ShardedDynamicCService service(AsyncOptions(4), nullptr, MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(8, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(8, 2));
  service.ObserveBatchRound(changed);
  ASSERT_TRUE(service.is_trained());
  service.Flush();  // transition into the serving phase

  for (int burst = 0; burst < 4; ++burst) {
    service.ApplyOperations(GroupAdds(8, 1));
  }
  service.Drain();
  IngestStats stats = service.ingest_stats();
  EXPECT_GT(stats.worker_rounds, 0u);

  ServiceReport flush = service.Flush();
  for (const auto& shard_stats : flush.dynamic_shards) {
    EXPECT_FALSE(shard_stats.participated)
        << "background workers should have left nothing dirty";
  }
  EXPECT_EQ(service.GlobalClusters().size(), 8u);
}

TEST(AsyncService, SnapshotIsSequenceNumberedAndConsistent) {
  ShardedDynamicCService service(AsyncOptions(2), nullptr, MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(6, 4));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(6, 2));
  service.ObserveBatchRound(changed);

  service.ApplyOperations(GroupAdds(6, 1));
  service.Flush();
  ServiceSnapshot snap = service.Snapshot();
  // Quiescent after Flush: the cut reflects every admitted operation.
  EXPECT_EQ(snap.sequence, 6u * 7u);
  EXPECT_EQ(snap.report.ingest.pending_ops, 0u);
  EXPECT_EQ(snap.clusters, service.GlobalClusters());
  EXPECT_EQ(snap.total_objects, service.total_objects());
  EXPECT_EQ(snap.total_clusters, snap.clusters.size());
  EXPECT_EQ(snap.report.dynamic_shards.size(), service.num_shards());
}

TEST(AsyncService, SnapshotDuringIngestionIsSafe) {
  // Concurrent snapshots while a producer streams bursts: each cut must
  // be internally consistent (clusters cover exactly the alive objects
  // it reports) without stopping the pipeline.
  ShardedDynamicCService service(AsyncOptions(4, /*queue_depth=*/64), nullptr,
                                 MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(8, 3));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(8, 2));
  service.ObserveBatchRound(changed);

  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int burst = 0; burst < 30; ++burst) {
      service.ApplyOperations(GroupAdds(8, 1));
    }
    done.store(true);
  });
  size_t cuts = 0;
  while (!done.load()) {
    ServiceSnapshot snap = service.Snapshot();
    size_t members = 0;
    for (const auto& cluster : snap.clusters) members += cluster.size();
    EXPECT_EQ(members, snap.total_objects);
    EXPECT_LE(snap.sequence, snap.report.ingest.accepted_ops);
    ++cuts;
  }
  producer.join();
  EXPECT_GT(cuts, 0u);
  service.Flush();
  EXPECT_EQ(service.Snapshot().sequence, 8u * (3u + 2u + 30u));
}

// ------------------------------------------------------------ backpressure

TEST(AsyncService, BlockBackpressureNeverDropsOperations) {
  // A queue far smaller than the stream: producers must stall, never
  // lose work. 1 shard + depth 4 forces the wait path constantly.
  ShardedDynamicCService::Options options = AsyncOptions(1, /*depth=*/4);
  options.async.backpressure = BackpressurePolicy::kBlock;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  const int kOps = 400;
  OperationBatch adds = GroupAdds(1, kOps);
  auto changed = service.ApplyOperations(adds);
  EXPECT_EQ(changed.size(), static_cast<size_t>(kOps));
  service.Flush();
  EXPECT_EQ(service.total_objects(), static_cast<size_t>(kOps));
  IngestStats stats = service.ingest_stats();
  EXPECT_EQ(stats.accepted_ops, static_cast<uint64_t>(kOps));
  EXPECT_LE(stats.queue_high_water, 4u);
}

TEST(AsyncService, RejectAdmitsAnyBatchOnIdleShardsAndShedsOnBacklog) {
  // The depth bounds *backlog*, not batch size: an idle shard admits a
  // slice far larger than the queue depth (otherwise an oversized batch
  // would be rejected forever — a producer livelock), and once drained
  // the next batch is admitted again. Rejection happens only against
  // existing backlog, and a rejected batch must not consume ids.
  ShardedDynamicCService::Options options = AsyncOptions(1, /*depth=*/8);
  options.async.backpressure = BackpressurePolicy::kReject;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto oversized = service.Ingest(GroupAdds(1, 32));
  EXPECT_TRUE(oversized.accepted) << "idle shard must admit any batch";
  ASSERT_EQ(oversized.changed.size(), 32u);

  service.Drain();
  auto after_drain = service.Ingest(GroupAdds(1, 8));
  EXPECT_TRUE(after_drain.accepted);
  ASSERT_EQ(after_drain.changed.size(), 8u);
  EXPECT_EQ(after_drain.changed.front(), static_cast<ObjectId>(32));

  // Train so that every drained batch costs the worker a dynamic round:
  // backlog now builds much faster than the producer's loop turnaround,
  // making shedding reliable below.
  auto changed = service.ApplyOperations(GroupAdds(1, 4));  // kBlock path
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(1, 2));
  service.ObserveBatchRound(changed);
  ASSERT_TRUE(service.is_trained());
  service.Flush();  // serving phase: drained batches now cost rounds

  // Shed against backlog: hammer without draining until a batch is
  // turned away, then verify it assigned no ids (the next accepted
  // batch continues the dense sequence) and nothing admitted was lost.
  uint64_t accepted_ops = 40 + 6;
  bool saw_reject = false;
  for (int i = 0; i < 1000 && !saw_reject; ++i) {
    auto result = service.Ingest(GroupAdds(1, 6));
    if (result.accepted) {
      ASSERT_EQ(result.changed.front(),
                static_cast<ObjectId>(accepted_ops));
      accepted_ops += 6;
    } else {
      EXPECT_TRUE(result.changed.empty());
      saw_reject = true;
    }
  }
  EXPECT_TRUE(saw_reject) << "sustained ingest into depth 8 never shed";

  auto retry = service.Ingest(GroupAdds(1, 6));
  if (retry.accepted) {
    EXPECT_EQ(retry.changed.front(), static_cast<ObjectId>(accepted_ops));
    accepted_ops += 6;
  }

  service.Flush();
  IngestStats stats = service.ingest_stats();
  EXPECT_EQ(stats.accepted_ops, accepted_ops);
  EXPECT_GE(stats.rejected_batches, 1u);
  EXPECT_EQ(service.total_objects(), static_cast<size_t>(accepted_ops));
}

TEST(AsyncService, RejectStressKeepsAcceptedStateExact) {
  // Hammer a tiny queue with small batches; some are shed under load,
  // but everything accepted must be present and correctly clustered at
  // the flush barrier, and the id space must stay dense over accepted
  // adds only.
  ShardedDynamicCService::Options options = AsyncOptions(2, /*depth=*/16);
  options.async.backpressure = BackpressurePolicy::kReject;
  ShardedDynamicCService service(options, nullptr, MakeFactory());

  auto changed = service.ApplyOperations(GroupAdds(4, 4));  // block: always in
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(4, 2));
  service.ObserveBatchRound(changed);

  uint64_t accepted_ops = 4 * 6;
  uint64_t rejected = 0;
  ObjectId next_id = static_cast<ObjectId>(accepted_ops);
  for (int burst = 0; burst < 200; ++burst) {
    OperationBatch batch = GroupAdds(4, 2);
    auto result = service.Ingest(batch);
    if (!result.accepted) {
      ++rejected;
      continue;
    }
    ASSERT_EQ(result.changed.size(), batch.size());
    for (ObjectId id : result.changed) {
      EXPECT_EQ(id, next_id++) << "ids must stay dense over accepted ops";
    }
    accepted_ops += batch.size();
  }
  service.Flush();
  IngestStats stats = service.ingest_stats();
  EXPECT_EQ(stats.accepted_ops, accepted_ops);
  EXPECT_EQ(stats.rejected_batches, rejected);
  EXPECT_EQ(service.total_objects(), static_cast<size_t>(accepted_ops));
  // Group structure survives the shedding: everything accepted clusters
  // into the 4 disjoint groups.
  EXPECT_EQ(service.GlobalClusters().size(), 4u);
}

// ------------------------------------------------------------- coalescing

TEST(AsyncService, QueuedChurnCoalescesAndPreservesFinalState) {
  // Add/update/remove churn against ids that are still queued: the
  // pipeline may fold or annihilate any of it, but the flushed state
  // must match the synchronous service fed the identical stream.
  auto run = [](bool async) {
    ShardedDynamicCService::Options options;
    options.num_shards = 2;
    options.async.enabled = async;
    options.async.queue_depth = 1024;
    auto service = std::make_unique<ShardedDynamicCService>(options, nullptr,
                                                            MakeFactory());
    auto changed = service->ApplyOperations(GroupAdds(6, 4));
    service->ObserveBatchRound(changed);
    changed = service->ApplyOperations(GroupAdds(6, 2));
    service->ObserveBatchRound(changed);

    Rng rng(17);
    for (int burst = 0; burst < 10; ++burst) {
      OperationBatch adds = GroupAdds(6, 2);
      auto ids = service->ApplyOperations(adds);
      // Immediately mutate what we just admitted — in async mode these
      // race the worker: they either fold into the queued adds or apply
      // individually, and both must converge to the same state.
      OperationBatch churn;
      for (size_t i = 0; i < ids.size(); ++i) {
        if (rng.Chance(0.4)) {
          DataOperation update;
          update.kind = DataOperation::Kind::kUpdate;
          update.target = ids[i];
          int group = static_cast<int>(adds[i].record.entity);
          update.record.entity = adds[i].record.entity;
          update.record.tokens = {"grp" + std::to_string(group),
                                  "tag" + std::to_string(group)};
          churn.push_back(update);
        } else if (rng.Chance(0.3)) {
          DataOperation remove;
          remove.kind = DataOperation::Kind::kRemove;
          remove.target = ids[i];
          churn.push_back(remove);
        }
      }
      service->ApplyOperations(churn);
    }
    service->Flush();
    return std::make_pair(service->GlobalClusters(),
                          service->ingest_stats());
  };

  auto async_run = run(true);
  auto sync_run = run(false);
  EXPECT_EQ(async_run.first, sync_run.first);
  EXPECT_EQ(async_run.second.accepted_ops, sync_run.second.accepted_ops);
  EXPECT_EQ(async_run.first.size(), 6u);
}

TEST(AsyncService, IntraBatchTargetsResolveInBothModes) {
  // A batch may remove or update an object added earlier in the same
  // batch (real workload streams do this): routing must resolve the
  // prospective id against the batch's own adds, in sync and async
  // mode alike.
  for (bool async : {false, true}) {
    ShardedDynamicCService::Options options;
    options.num_shards = 4;
    options.async.enabled = async;
    ShardedDynamicCService service(options, nullptr, MakeFactory());
    auto changed = service.ApplyOperations(GroupAdds(6, 3));
    service.ObserveBatchRound(changed);
    size_t admitted = 6 * 3;

    OperationBatch batch = GroupAdds(6, 1);  // prospective ids 18..23
    DataOperation update;
    update.kind = DataOperation::Kind::kUpdate;
    update.target = static_cast<ObjectId>(admitted);  // this batch's 1st add
    update.record.entity = 0;
    update.record.tokens = {"grp0", "tag0"};
    batch.push_back(update);
    DataOperation remove;
    remove.kind = DataOperation::Kind::kRemove;
    remove.target = static_cast<ObjectId>(admitted + 1);  // 2nd add
    batch.push_back(remove);
    auto ids = service.ApplyOperations(batch);
    EXPECT_EQ(ids.size(), 7u);  // 6 adds + 1 update

    service.Flush();
    EXPECT_EQ(service.total_objects(), admitted + 6 - 1);
    EXPECT_EQ(service.GlobalClusters().size(), 6u);
  }
}

// ----------------------------------------------------- lifecycle + fallback

TEST(AsyncService, LateArrivingGroupsServedAtFlush) {
  // Groups that first arrive after training land on never-trained
  // shards; the background workers cannot round them, so Flush() must
  // serve them with the batch fallback (their training opportunity).
  ShardedDynamicCService service(AsyncOptions(8), nullptr, MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(1, 6));
  service.ObserveBatchRound(changed);
  changed = service.ApplyOperations(GroupAdds(1, 3));
  service.ObserveBatchRound(changed);

  service.ApplyOperations(GroupAdds(8, 4));
  ServiceReport report = service.Flush();

  bool saw_batch_fallback = false;
  for (const auto& stats : report.dynamic_shards) {
    if (stats.participated && stats.report.used_batch) {
      saw_batch_fallback = true;
    }
  }
  EXPECT_TRUE(saw_batch_fallback);
  EXPECT_EQ(service.GlobalClusters().size(), 8u);
}

TEST(AsyncService, DestructionWithQueuedWorkIsClean) {
  // Dropping the service with operations still queued must not hang or
  // crash: the pool drains its workers before the shards go away.
  for (int trial = 0; trial < 3; ++trial) {
    ShardedDynamicCService service(AsyncOptions(4, /*depth=*/256), nullptr,
                                   MakeFactory());
    service.ApplyOperations(GroupAdds(12, 6));
    // No Drain/Flush: destructor handles the in-flight work.
  }
}

}  // namespace
}  // namespace dynamicc
