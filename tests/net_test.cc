// Wire layer (src/net/): varint and frame codec edge cases, codec
// block round-trips plus mutilation/truncation fuzz (malformed input
// must return an error, never crash — this suite runs under
// ASan/UBSan in CI), RPC message round-trips and payload fuzz,
// PollBackoff schedule units, and byte-at-a-time partial-write /
// slow-reader behaviour against a live NetServer.

#include <chrono>
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include "net/codec.h"
#include "net/event_loop.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "net/wire_format.h"
#include "replication/backoff.h"
#include "util/status.h"

namespace dynamicc {
namespace net {
namespace {

// ---- Varints ----------------------------------------------------------

TEST(VarintTest, RoundTripEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             129,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             UINT64_MAX - 1,
                             UINT64_MAX};
  for (uint64_t value : values) {
    std::string buf;
    PutVarint(&buf, value);
    ASSERT_LE(buf.size(), 10u);
    uint64_t decoded = 0;
    int consumed = GetVarint(buf.data(), buf.size(), &decoded);
    EXPECT_EQ(consumed, static_cast<int>(buf.size())) << value;
    EXPECT_EQ(decoded, value);
  }
}

TEST(VarintTest, EncodedLengthBoundaries) {
  std::string buf;
  PutVarint(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint(&buf, UINT64_MAX);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(VarintTest, TruncatedNeedsMoreBytes) {
  std::string buf;
  PutVarint(&buf, 300);  // two bytes
  uint64_t value = 0;
  EXPECT_EQ(GetVarint(buf.data(), 1, &value), 0);
  EXPECT_EQ(GetVarint(buf.data(), 0, &value), 0);
}

TEST(VarintTest, OverlongEncodingRejected) {
  // Eleven continuation bytes can never be a valid uint64_t varint.
  std::string buf(11, '\x80');
  uint64_t value = 0;
  EXPECT_EQ(GetVarint(buf.data(), buf.size(), &value), -1);
}

TEST(VarintTest, TenthByteExcessBitsRejected) {
  // Nine continuation bytes + a 10th byte with more than the single
  // bit a uint64_t has left encodes > 64 bits of payload.
  std::string buf(9, '\x80');
  buf.push_back('\x02');
  uint64_t value = 0;
  EXPECT_EQ(GetVarint(buf.data(), buf.size(), &value), -1);
}

// ---- Frames -----------------------------------------------------------

TEST(FrameTest, RoundTrip) {
  std::string wire;
  AppendFrame(&wire, "hello");
  AppendFrame(&wire, "world!");
  std::string payload;
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(wire, kMaxFrameBytes, &payload, &consumed), 1);
  EXPECT_EQ(payload, "hello");
  wire.erase(0, consumed);
  ASSERT_EQ(TryParseFrame(wire, kMaxFrameBytes, &payload, &consumed), 1);
  EXPECT_EQ(payload, "world!");
  wire.erase(0, consumed);
  EXPECT_EQ(TryParseFrame(wire, kMaxFrameBytes, &payload, &consumed), 0);
}

TEST(FrameTest, ZeroLengthPayload) {
  std::string wire;
  AppendFrame(&wire, "");
  ASSERT_EQ(wire.size(), 1u);  // just varint(0)
  std::string payload = "sentinel";
  size_t consumed = 0;
  ASSERT_EQ(TryParseFrame(wire, kMaxFrameBytes, &payload, &consumed), 1);
  EXPECT_TRUE(payload.empty());
  EXPECT_EQ(consumed, 1u);
}

TEST(FrameTest, PartialFrameNeedsMore) {
  std::string wire;
  AppendFrame(&wire, std::string(1000, 'x'));
  for (size_t cut = 0; cut + 1 < wire.size(); cut += 97) {
    std::string prefix = wire.substr(0, cut);
    std::string payload;
    size_t consumed = 0;
    EXPECT_EQ(TryParseFrame(prefix, kMaxFrameBytes, &payload, &consumed), 0)
        << "cut=" << cut;
  }
}

TEST(FrameTest, MaxSizeFrameBoundary) {
  const uint64_t limit = 4096;
  std::string at_limit;
  AppendFrame(&at_limit, std::string(limit, 'a'));
  std::string payload;
  size_t consumed = 0;
  EXPECT_EQ(TryParseFrame(at_limit, limit, &payload, &consumed), 1);
  EXPECT_EQ(payload.size(), limit);

  std::string over_limit;
  AppendFrame(&over_limit, std::string(limit + 1, 'a'));
  EXPECT_EQ(TryParseFrame(over_limit, limit, &payload, &consumed), -1);
}

TEST(FrameTest, MalformedLengthPrefixRejected) {
  std::string wire(11, '\x80');  // invalid varint
  std::string payload;
  size_t consumed = 0;
  EXPECT_EQ(TryParseFrame(wire, kMaxFrameBytes, &payload, &consumed), -1);
}

// ---- BinaryReader bounds ----------------------------------------------

TEST(BinaryIoTest, RoundTrip) {
  std::string buf;
  BinaryWriter writer(&buf);
  writer.PutU8(7);
  writer.PutVar(1234567);
  writer.PutDouble(3.14159);
  writer.PutBytes("payload");

  BinaryReader reader(buf);
  uint8_t u8 = 0;
  uint64_t var = 0;
  double d = 0;
  std::string bytes;
  ASSERT_TRUE(reader.GetU8(&u8));
  ASSERT_TRUE(reader.GetVar(&var));
  ASSERT_TRUE(reader.GetDouble(&d));
  ASSERT_TRUE(reader.GetBytes(&bytes));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(var, 1234567u);
  EXPECT_EQ(d, 3.14159);
  EXPECT_EQ(bytes, "payload");
  EXPECT_TRUE(reader.done());
}

TEST(BinaryIoTest, ReadsPastEndFail) {
  std::string buf;
  BinaryWriter writer(&buf);
  writer.PutVar(100000);  // bytes length far beyond the buffer
  BinaryReader reader(buf);
  std::string bytes;
  EXPECT_FALSE(reader.GetBytes(&bytes));

  BinaryReader short_reader("abc", 3);
  double d = 0;
  EXPECT_FALSE(short_reader.GetDouble(&d));
  uint8_t u8 = 0;
  BinaryReader empty_reader("", 0);
  EXPECT_FALSE(empty_reader.GetU8(&u8));
}

// ---- Codec blocks -----------------------------------------------------

std::string CompressibleBytes(size_t size) {
  std::string raw;
  raw.reserve(size);
  int i = 0;
  while (raw.size() < size) {
    raw += "add 4200 entity=17 tokens=grp" + std::to_string(i % 13) + ",tag" +
           std::to_string(i % 13) + "\n";
    ++i;
  }
  raw.resize(size);
  return raw;
}

std::string RandomBytes(size_t size, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::string raw(size, '\0');
  for (char& c : raw) c = static_cast<char>(rng() & 0xff);
  return raw;
}

TEST(CodecTest, NegotiatePicksBestCommon) {
  EXPECT_EQ(NegotiateCodec(kSupportedCodecs, kSupportedCodecs), Codec::kLzb);
  EXPECT_EQ(NegotiateCodec(kSupportedCodecs, 1u), Codec::kRaw);
  EXPECT_EQ(NegotiateCodec(1u, kSupportedCodecs), Codec::kRaw);
  // Unknown high bits from a future peer are ignored.
  EXPECT_EQ(NegotiateCodec(kSupportedCodecs, kSupportedCodecs | (1u << 17)),
            Codec::kLzb);
}

TEST(CodecTest, RawBlockRoundTrip) {
  const std::string raw = CompressibleBytes(4096);
  std::string block;
  EncodeBlock(Codec::kRaw, raw, &block);
  std::string decoded;
  ASSERT_TRUE(DecodeBlock(block, kMaxFrameBytes, &decoded));
  EXPECT_EQ(decoded, raw);
}

TEST(CodecTest, LzbBlockCompressesRepetitiveInput) {
  const std::string raw = CompressibleBytes(64 * 1024);
  std::string block;
  EncodeBlock(Codec::kLzb, raw, &block);
  EXPECT_LT(block.size(), raw.size() / 2);
  std::string decoded;
  ASSERT_TRUE(DecodeBlock(block, kMaxFrameBytes, &decoded));
  EXPECT_EQ(decoded, raw);
}

TEST(CodecTest, LzbFallsBackToRawOnIncompressible) {
  const std::string raw = RandomBytes(16 * 1024, 42);
  std::string block;
  EncodeBlock(Codec::kLzb, raw, &block);
  // Header adds a few bytes, but the body must not have blown up.
  EXPECT_LE(block.size(), raw.size() + 32);
  std::string decoded;
  ASSERT_TRUE(DecodeBlock(block, kMaxFrameBytes, &decoded));
  EXPECT_EQ(decoded, raw);
}

TEST(CodecTest, EmptyInputRoundTrip) {
  for (Codec codec : {Codec::kRaw, Codec::kLzb}) {
    std::string block;
    EncodeBlock(codec, "", &block);
    std::string decoded = "sentinel";
    ASSERT_TRUE(DecodeBlock(block, kMaxFrameBytes, &decoded));
    EXPECT_TRUE(decoded.empty());
  }
}

TEST(CodecTest, DeclaredSizeOverLimitRejected) {
  const std::string raw = CompressibleBytes(4096);
  std::string block;
  EncodeBlock(Codec::kLzb, raw, &block);
  std::string decoded;
  EXPECT_FALSE(DecodeBlock(block, /*max_raw_bytes=*/1024, &decoded));
}

TEST(CodecTest, CorruptChecksumRejected) {
  const std::string raw = CompressibleBytes(4096);
  for (Codec codec : {Codec::kRaw, Codec::kLzb}) {
    std::string block;
    EncodeBlock(codec, raw, &block);
    // Flip one body byte (past the ~11-byte header): the FNV checksum
    // over the raw bytes must catch it.
    std::string bad = block;
    bad[bad.size() - 1] ^= 0x01;
    std::string decoded;
    EXPECT_FALSE(DecodeBlock(bad, kMaxFrameBytes, &decoded));
  }
}

TEST(CodecTest, MutilationFuzzNeverCrashes) {
  const std::string raw = CompressibleBytes(8 * 1024);
  std::string block;
  EncodeBlock(Codec::kLzb, raw, &block);
  std::mt19937_64 rng(0xC0DEC);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bad = block;
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      bad[rng() % bad.size()] ^= static_cast<char>(1 + (rng() % 255));
    }
    std::string decoded;
    if (DecodeBlock(bad, kMaxFrameBytes, &decoded)) {
      // Passing the checksum while corrupt is effectively impossible;
      // if decode "succeeds" the flips must have cancelled out.
      EXPECT_EQ(decoded, raw);
    }
  }
}

TEST(CodecTest, TruncationFuzzNeverCrashes) {
  const std::string raw = CompressibleBytes(8 * 1024);
  for (Codec codec : {Codec::kRaw, Codec::kLzb}) {
    std::string block;
    EncodeBlock(codec, raw, &block);
    for (size_t cut = 0; cut < block.size(); cut += 7) {
      std::string truncated = block.substr(0, cut);
      std::string decoded;
      EXPECT_FALSE(DecodeBlock(truncated, kMaxFrameBytes, &decoded))
          << "cut=" << cut;
    }
  }
}

TEST(CodecTest, RandomGarbageNeverCrashes) {
  std::mt19937_64 rng(0xBADB10C);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string garbage = RandomBytes(1 + (rng() % 512), rng());
    std::string decoded;
    DecodeBlock(garbage, kMaxFrameBytes, &decoded);  // must not crash
  }
}

// ---- RPC messages -----------------------------------------------------

OperationBatch SampleOps() {
  OperationBatch ops;
  DataOperation add;
  add.kind = DataOperation::Kind::kAdd;
  add.record.entity = 7;
  add.record.tokens = {"alpha", "beta", "gamma"};
  ops.push_back(add);
  DataOperation remove;
  remove.kind = DataOperation::Kind::kRemove;
  remove.target = 3;
  ops.push_back(remove);
  return ops;
}

TEST(RpcTest, HelloRoundTrip) {
  HelloRequest request;
  request.codec_mask = kSupportedCodecs;
  std::string wire;
  Encode(request, &wire);
  MsgType type;
  ASSERT_TRUE(PeekType(wire, &type));
  EXPECT_EQ(type, MsgType::kHello);
  HelloRequest decoded;
  ASSERT_TRUE(Decode(wire, &decoded));
  EXPECT_EQ(decoded.protocol_version, kProtocolVersion);
  EXPECT_EQ(decoded.codec_mask, kSupportedCodecs);

  HelloResponse response;
  response.codec = Codec::kLzb;
  wire.clear();
  Encode(response, &wire);
  HelloResponse response_decoded;
  ASSERT_TRUE(Decode(wire, &response_decoded));
  EXPECT_EQ(response_decoded.codec, Codec::kLzb);
}

TEST(RpcTest, IngestRoundTrip) {
  IngestRequest request;
  request.ops = SampleOps();
  std::string wire;
  Encode(request, &wire);
  IngestRequest decoded;
  ASSERT_TRUE(Decode(wire, &decoded));
  ASSERT_EQ(decoded.ops.size(), 2u);
  EXPECT_EQ(decoded.ops[0].record.tokens, request.ops[0].record.tokens);
  EXPECT_EQ(decoded.ops[1].target, 3u);

  IngestResponse response;
  response.accepted = true;
  response.ids = {10, 11, 12};
  wire.clear();
  Encode(response, &wire);
  IngestResponse response_decoded;
  ASSERT_TRUE(Decode(wire, &response_decoded));
  EXPECT_TRUE(response_decoded.accepted);
  EXPECT_EQ(response_decoded.ids, response.ids);
}

TEST(RpcTest, EmptyIngestBatchRoundTrip) {
  IngestRequest request;  // zero ops
  std::string wire;
  Encode(request, &wire);
  IngestRequest decoded;
  decoded.ops = SampleOps();
  ASSERT_TRUE(Decode(wire, &decoded));
  EXPECT_TRUE(decoded.ops.empty());
}

TEST(RpcTest, StalenessUnboundedSurvivesTrip) {
  // UINT64_MAX (ReadRouter::kUnbounded) is packed as staleness+1 = 0.
  StatsRequest request;
  request.max_staleness = UINT64_MAX;
  std::string wire;
  Encode(request, &wire);
  StatsRequest decoded;
  decoded.max_staleness = 0;
  ASSERT_TRUE(Decode(wire, &decoded));
  EXPECT_EQ(decoded.max_staleness, UINT64_MAX);

  request.max_staleness = 0;
  wire.clear();
  Encode(request, &wire);
  decoded.max_staleness = 99;
  ASSERT_TRUE(Decode(wire, &decoded));
  EXPECT_EQ(decoded.max_staleness, 0u);
}

TEST(RpcTest, QueryResponsesRoundTrip) {
  ClusterOfResponse cluster;
  cluster.info = {12, 2, true};
  cluster.members = {4, 8, 15};
  cluster.avg_intra = 0.75;
  std::string wire;
  Encode(cluster, &wire);
  ClusterOfResponse cluster_decoded;
  ASSERT_TRUE(Decode(wire, &cluster_decoded));
  EXPECT_EQ(cluster_decoded.members, cluster.members);
  EXPECT_EQ(cluster_decoded.info.epoch, 12u);
  EXPECT_EQ(cluster_decoded.avg_intra, 0.75);

  KNearestResponse knn;
  knn.info = {3, 0, true};
  knn.hits.push_back({{1, 2}, 0.9, 0.8});
  knn.hits.push_back({{5}, 0.5, 1.0});
  wire.clear();
  Encode(knn, &wire);
  KNearestResponse knn_decoded;
  ASSERT_TRUE(Decode(wire, &knn_decoded));
  ASSERT_EQ(knn_decoded.hits.size(), 2u);
  EXPECT_EQ(knn_decoded.hits[0].members, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(knn_decoded.hits[1].similarity, 0.5);
}

TEST(RpcTest, ReplStateRoundTrip) {
  ReplStateResponse response;
  response.stream_done = true;
  response.base_epochs = {2, 6};
  response.delta_epochs = {3, 4, 5, 6, 7};
  std::string wire;
  Encode(response, &wire);
  ReplStateResponse decoded;
  ASSERT_TRUE(Decode(wire, &decoded));
  EXPECT_TRUE(decoded.stream_done);
  EXPECT_EQ(decoded.base_epochs, response.base_epochs);
  EXPECT_EQ(decoded.delta_epochs, response.delta_epochs);
}

TEST(RpcTest, ErrorRoundTrip) {
  std::string wire;
  EncodeError(Status::NotFound("no such epoch"), &wire);
  MsgType type;
  ASSERT_TRUE(PeekType(wire, &type));
  EXPECT_EQ(type, MsgType::kError);
  // The code collapses to IoError on the client side (a remote failure
  // is an I/O failure to the caller); the rendered code survives in the
  // message text.
  Status status = DecodeError(wire);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("NotFound"), std::string::npos);
  EXPECT_NE(status.message().find("no such epoch"), std::string::npos);
}

TEST(RpcTest, PayloadFuzzNeverCrashes) {
  // Mutate/truncate every message kind's valid encoding plus pure
  // garbage; decoders must return false or decode something, never
  // crash or overread (ASan job enforces the latter).
  std::vector<std::string> seeds;
  {
    std::string wire;
    HelloRequest hello;
    Encode(hello, &wire);
    seeds.push_back(wire);
    wire.clear();
    IngestRequest ingest;
    ingest.ops = SampleOps();
    Encode(ingest, &wire);
    seeds.push_back(wire);
    wire.clear();
    IngestResponse ingest_ok;
    ingest_ok.ids = {1, 2, 3};
    Encode(ingest_ok, &wire);
    seeds.push_back(wire);
    wire.clear();
    KNearestRequest knn;
    knn.probe.entity = 4;
    knn.probe.tokens = {"x", "y"};
    Encode(knn, &wire);
    seeds.push_back(wire);
    wire.clear();
    KNearestResponse knn_ok;
    knn_ok.hits.push_back({{9}, 0.1, 0.2});
    Encode(knn_ok, &wire);
    seeds.push_back(wire);
    wire.clear();
    ReplStateResponse repl;
    repl.delta_epochs = {1, 2, 3};
    Encode(repl, &wire);
    seeds.push_back(wire);
    wire.clear();
    FetchBaseManifestResponse manifest;
    manifest.files = {"clusters.dat", "models.dat"};
    Encode(manifest, &wire);
    seeds.push_back(wire);
    wire.clear();
    BlockResponse block_response;
    EncodeBlock(Codec::kLzb, CompressibleBytes(512), &block_response.block);
    Encode(MsgType::kFetchDeltaOk, block_response, &wire);
    seeds.push_back(wire);
  }
  std::mt19937_64 rng(0xF422);
  auto decode_all = [](const std::string& payload) {
    HelloRequest hello;
    Decode(payload, &hello);
    HelloResponse hello_ok;
    Decode(payload, &hello_ok);
    IngestRequest ingest;
    Decode(payload, &ingest);
    IngestResponse ingest_ok;
    Decode(payload, &ingest_ok);
    ClusterOfRequest cluster_of;
    Decode(payload, &cluster_of);
    ClusterOfResponse cluster_ok;
    Decode(payload, &cluster_ok);
    KNearestRequest knn;
    Decode(payload, &knn);
    KNearestResponse knn_ok;
    Decode(payload, &knn_ok);
    StatsRequest stats;
    Decode(payload, &stats);
    StatsResponse stats_ok;
    Decode(payload, &stats_ok);
    ReplStateResponse repl_ok;
    Decode(payload, &repl_ok);
    FetchDeltaRequest fetch_delta;
    Decode(payload, &fetch_delta);
    FetchBaseManifestResponse manifest;
    Decode(payload, &manifest);
    BlockResponse block_response;
    Decode(payload, &block_response);
    DecodeError(payload);
  };
  for (const std::string& seed : seeds) {
    for (int iter = 0; iter < 300; ++iter) {
      std::string bad = seed;
      int flips = 1 + static_cast<int>(rng() % 6);
      for (int f = 0; f < flips && !bad.empty(); ++f) {
        bad[rng() % bad.size()] ^= static_cast<char>(1 + (rng() % 255));
      }
      if (rng() % 3 == 0) bad.resize(rng() % (bad.size() + 1));
      decode_all(bad);
    }
    for (size_t cut = 0; cut < seed.size(); ++cut) {
      decode_all(seed.substr(0, cut));
    }
  }
  for (int iter = 0; iter < 500; ++iter) {
    decode_all(RandomBytes(rng() % 256, rng()));
  }
}

// ---- PollBackoff ------------------------------------------------------

TEST(PollBackoffTest, EscalatesGeometricallyToCap) {
  PollBackoff backoff;  // 1 -> 256 ms, x2
  std::vector<uint64_t> delays;
  for (int i = 0; i < 11; ++i) delays.push_back(backoff.NextDelayMs());
  EXPECT_EQ(delays, (std::vector<uint64_t>{1, 2, 4, 8, 16, 32, 64, 128, 256,
                                           256, 256}));
  EXPECT_EQ(backoff.misses(), 11u);
}

TEST(PollBackoffTest, ResetDropsToFloor) {
  PollBackoff backoff;
  for (int i = 0; i < 6; ++i) backoff.NextDelayMs();
  EXPECT_GT(backoff.current_ms(), 1u);
  backoff.Reset();
  EXPECT_EQ(backoff.current_ms(), 1u);
  EXPECT_EQ(backoff.misses(), 0u);
  EXPECT_EQ(backoff.NextDelayMs(), 1u);
}

TEST(PollBackoffTest, OptionsClampedToSane) {
  PollBackoff::Options options;
  options.initial_ms = 0;   // clamped to 1
  options.max_ms = 0;       // clamped to initial
  options.multiplier = 0;   // clamped to 2
  PollBackoff backoff(options);
  EXPECT_EQ(backoff.NextDelayMs(), 1u);
  EXPECT_EQ(backoff.NextDelayMs(), 1u);  // capped at max_ms == initial

  PollBackoff::Options wide;
  wide.initial_ms = 10;
  wide.max_ms = 50;  // not a power-of-multiplier multiple of initial
  PollBackoff capped(wide);
  EXPECT_EQ(capped.NextDelayMs(), 10u);
  EXPECT_EQ(capped.NextDelayMs(), 20u);
  EXPECT_EQ(capped.NextDelayMs(), 40u);
  EXPECT_EQ(capped.NextDelayMs(), 50u);  // clamps to cap, never over
  EXPECT_EQ(capped.NextDelayMs(), 50u);
}

// ---- NetServer: partial writes, slow readers, malformed frames --------

class EchoServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NetServer::Options options;
    options.port = 0;
    server_ = std::make_unique<NetServer>(
        options,
        [](uint64_t, const std::string& request, std::string* response) {
          *response = request;
          return NetServer::HandleResult::kReply;
        });
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override { server_->Stop(); }

  std::unique_ptr<NetServer> server_;
};

TEST_F(EchoServerTest, ByteAtATimePartialWrites) {
  // Dribble a frame one byte per send: the server must buffer partial
  // frames across epoll wakeups and reply only once it is complete.
  int fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server_->port(), &fd).ok());
  const std::string payload = "partial-write-probe";
  std::string wire;
  AppendFrame(&wire, payload);
  for (char c : wire) {
    ASSERT_EQ(send(fd, &c, 1, 0), 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Read the echoed frame back with a plain blocking recv loop.
  SetIoTimeout(fd, 5000);
  std::string in;
  std::string echoed;
  size_t consumed = 0;
  int parsed = 0;
  char buf[256];
  while ((parsed = TryParseFrame(in, kMaxFrameBytes, &echoed, &consumed)) ==
         0) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "server never completed the reply";
    in.append(buf, static_cast<size_t>(n));
  }
  ASSERT_EQ(parsed, 1);
  EXPECT_EQ(echoed, payload);
  close(fd);
}

TEST_F(EchoServerTest, SlowReaderDoesNotBlockOthers) {
  // A client that requests a large echo but reads nothing for a while
  // forces the server's reply into its write buffer (EPOLLOUT path).
  // A second, prompt client must still get served meanwhile, and the
  // slow reader must eventually receive every byte.
  int slow_fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server_->port(), &slow_fd).ok());
  const std::string big(2 * 1024 * 1024, 'z');
  std::string wire;
  AppendFrame(&wire, big);
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n =
        send(slow_fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<size_t>(n);
  }

  // While the 2 MiB reply sits (partially) in the slow connection's
  // buffer, a second client round-trips fine.
  {
    FramedSocket prompt;
    ASSERT_TRUE(prompt.Connect("127.0.0.1", server_->port(), 5000).ok());
    ASSERT_TRUE(prompt.SendFrame("quick").ok());
    std::string reply;
    ASSERT_TRUE(prompt.RecvFrame(kMaxFrameBytes, &reply).ok());
    EXPECT_EQ(reply, "quick");
  }

  // Now drain the big echo in small sips.
  SetIoTimeout(slow_fd, 5000);
  std::string in;
  std::string echoed;
  size_t consumed = 0;
  char buf[4096];
  int parsed = 0;
  while ((parsed = TryParseFrame(in, kMaxFrameBytes, &echoed, &consumed)) ==
         0) {
    ssize_t n = recv(slow_fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "slow reader starved";
    in.append(buf, static_cast<size_t>(n));
    if (in.size() % (64 * 1024) < sizeof(buf)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  ASSERT_EQ(parsed, 1);
  EXPECT_EQ(echoed, big);
  close(slow_fd);
}

TEST_F(EchoServerTest, MalformedFrameClosesConnectionNotServer) {
  int fd = -1;
  ASSERT_TRUE(ConnectTcp("127.0.0.1", server_->port(), &fd).ok());
  const std::string poison(11, '\x80');  // invalid varint length prefix
  ASSERT_EQ(send(fd, poison.data(), poison.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(poison.size()));
  // The server drops this connection...
  SetIoTimeout(fd, 5000);
  char buf[16];
  ssize_t n = recv(fd, buf, sizeof(buf), 0);
  EXPECT_LE(n, 0);
  close(fd);
  EXPECT_GE(server_->decode_errors(), 1u);

  // ...but keeps serving everyone else.
  FramedSocket ok_client;
  ASSERT_TRUE(ok_client.Connect("127.0.0.1", server_->port(), 5000).ok());
  ASSERT_TRUE(ok_client.SendFrame("still-alive").ok());
  std::string reply;
  ASSERT_TRUE(ok_client.RecvFrame(kMaxFrameBytes, &reply).ok());
  EXPECT_EQ(reply, "still-alive");
}

TEST_F(EchoServerTest, OversizeFrameRejected) {
  NetServer::Options options;
  options.port = 0;
  options.max_frame_bytes = 1024;
  NetServer small(options,
                  [](uint64_t, const std::string& request,
                     std::string* response) {
                    *response = request;
                    return NetServer::HandleResult::kReply;
                  });
  ASSERT_TRUE(small.Start().ok());
  FramedSocket client;
  ASSERT_TRUE(client.Connect("127.0.0.1", small.port(), 5000).ok());
  ASSERT_TRUE(client.SendFrame(std::string(4096, 'x')).ok());
  std::string reply;
  EXPECT_FALSE(client.RecvFrame(kMaxFrameBytes, &reply).ok());
  EXPECT_GE(small.decode_errors(), 1u);
  small.Stop();
}

}  // namespace
}  // namespace net
}  // namespace dynamicc
