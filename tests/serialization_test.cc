#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/serialization.h"
#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/serialization.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

SampleSet TrainingData(uint64_t seed) {
  Rng rng(seed);
  SampleSet samples;
  for (int i = 0; i < 250; ++i) {
    double x = rng.Uniform(-3.0, 3.0);
    double y = rng.Uniform(-3.0, 3.0);
    samples.push_back({{x, y}, x + 0.5 * y > 0 ? 1 : 0, 1.0});
  }
  return samples;
}

template <typename Model>
void ExpectRoundTripsExactly() {
  SampleSet train = TrainingData(5);
  Model model;
  model.Fit(train);

  std::stringstream buffer;
  ASSERT_TRUE(SaveClassifier(model, buffer).ok());

  Status status;
  std::unique_ptr<BinaryClassifier> loaded =
      LoadClassifier(buffer, &status);
  ASSERT_NE(loaded, nullptr) << status.ToString();
  EXPECT_STREQ(loaded->Name(), model.Name());
  EXPECT_TRUE(loaded->is_fitted());

  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> point{rng.Uniform(-4.0, 4.0), rng.Uniform(-4.0, 4.0)};
    EXPECT_DOUBLE_EQ(loaded->PredictProbability(point),
                     model.PredictProbability(point));
  }
}

TEST(ModelSerialization, LogisticRegressionRoundTrip) {
  ExpectRoundTripsExactly<LogisticRegression>();
}

TEST(ModelSerialization, LinearSvmRoundTrip) {
  ExpectRoundTripsExactly<LinearSvm>();
}

TEST(ModelSerialization, DecisionTreeRoundTrip) {
  ExpectRoundTripsExactly<DecisionTree>();
}

TEST(ModelSerialization, RefusesUnfittedModel) {
  LogisticRegression model;
  std::stringstream buffer;
  EXPECT_FALSE(SaveClassifier(model, buffer).ok());
}

TEST(ModelSerialization, RejectsUnknownModelName) {
  std::stringstream buffer("frobnicator 1 2 3");
  Status status;
  EXPECT_EQ(LoadClassifier(buffer, &status), nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(ModelSerialization, RejectsTruncatedData) {
  SampleSet train = TrainingData(6);
  LogisticRegression model;
  model.Fit(train);
  std::stringstream buffer;
  ASSERT_TRUE(SaveClassifier(model, buffer).ok());
  std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  Status status;
  EXPECT_EQ(LoadClassifier(truncated, &status), nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(ModelSerialization, RejectsOutOfRangeTreeChildren) {
  std::stringstream buffer("decision-tree\n1\n0 0.5 5 6 0.5\n");
  Status status;
  EXPECT_EQ(LoadClassifier(buffer, &status), nullptr);
  EXPECT_FALSE(status.ok());
}

// ------------------------------------------------------------- clustering

TEST(ClusteringSerialization, RoundTrip) {
  Clustering clustering;
  ClusterId a = clustering.CreateCluster();
  ClusterId b = clustering.CreateCluster();
  clustering.Assign(3, a);
  clustering.Assign(1, a);
  clustering.Assign(7, b);

  std::stringstream buffer;
  ASSERT_TRUE(SaveClustering(clustering, buffer).ok());

  Clustering loaded;
  ASSERT_TRUE(LoadClustering(buffer, &loaded).ok());
  EXPECT_EQ(loaded.CanonicalClusters(), clustering.CanonicalClusters());
}

TEST(ClusteringSerialization, CanonicalTextIsStable) {
  Clustering first, second;
  ClusterId f = first.CreateCluster();
  first.Assign(2, f);
  first.Assign(1, f);
  ClusterId s = second.CreateCluster();
  second.Assign(1, s);
  second.Assign(2, s);
  std::stringstream buffer_a, buffer_b;
  ASSERT_TRUE(SaveClustering(first, buffer_a).ok());
  ASSERT_TRUE(SaveClustering(second, buffer_b).ok());
  EXPECT_EQ(buffer_a.str(), buffer_b.str());
}

TEST(ClusteringSerialization, RejectsDuplicateMembership) {
  std::stringstream buffer("1 2\n2 3\n");
  Clustering clustering;
  EXPECT_FALSE(LoadClustering(buffer, &clustering).ok());
}

TEST(ClusteringSerialization, EmptyStreamGivesEmptyClustering) {
  std::stringstream buffer("");
  Clustering clustering;
  clustering.CreateSingleton(9);  // pre-existing content is replaced
  ASSERT_TRUE(LoadClustering(buffer, &clustering).ok());
  EXPECT_EQ(clustering.num_clusters(), 0u);
}

}  // namespace
}  // namespace dynamicc
