// End-to-end networked serving (src/net/ over a real localhost TCP
// socket): ingest through the front end matches direct ApplyOperations
// byte for byte, queries serve epoch-pinned views over the wire,
// reject backpressure surfaces as `accepted=false` responses, the
// DeltaStream transport mirrors a replication directory byte-
// identically and the Follower replays the mirror into a replica, a
// follower doubles as a network read replica behind its own front
// end, and chained replication (promote + Resume) keeps a standby
// byte-identical across the failover cut.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/delta_stream.h"
#include "net/front_end.h"
#include "net/rpc.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "replication/delta_log.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/sharded_service.h"
#include "service_test_util.h"
#include "util/status.h"
#include "util/wire.h"

namespace dynamicc {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_net_e2e_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardedDynamicCService::Options ServiceOptions(uint32_t shards, bool async,
                                               bool serve_reads = false) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = async;
  options.read.serve = serve_reads;
  return options;
}

void TrainService(ShardedDynamicCService* service, int groups) {
  auto changed = service->ApplyOperations(GroupAdds(groups, 3));
  service->ObserveBatchRound(changed);
  service->Flush();
}

/// The replica bar this suite cares about: identical clusterings and
/// admission state (full model/placement identity is replication_test's
/// job — here the transport must simply not perturb anything).
void ExpectSameState(ShardedDynamicCService& a, ShardedDynamicCService& b) {
  EXPECT_EQ(a.GlobalClusters(), b.GlobalClusters());
  EXPECT_EQ(a.total_objects(), b.total_objects());
  EXPECT_EQ(a.total_clusters(), b.total_clusters());
  EXPECT_EQ(a.open_epoch(), b.open_epoch());
  EXPECT_EQ(a.ingest_stats().accepted_ops, b.ingest_stats().accepted_ops);
}

bool TreesIdentical(const std::string& a, const std::string& b) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_a, rel_b;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(a, ec)) {
    if (entry.is_regular_file()) {
      rel_a.push_back(fs::relative(entry.path(), a, ec).string());
    }
  }
  for (const auto& entry : fs::recursive_directory_iterator(b, ec)) {
    if (entry.is_regular_file()) {
      rel_b.push_back(fs::relative(entry.path(), b, ec).string());
    }
  }
  std::sort(rel_a.begin(), rel_a.end());
  std::sort(rel_b.begin(), rel_b.end());
  if (rel_a != rel_b) return false;
  for (const std::string& rel : rel_a) {
    std::string bytes_a, bytes_b;
    if (!ReadFileBytes(a + "/" + rel, &bytes_a).ok()) return false;
    if (!ReadFileBytes(b + "/" + rel, &bytes_b).ok()) return false;
    if (bytes_a != bytes_b) return false;
  }
  return true;
}

net::NetClient MakeClient(uint16_t port) {
  net::NetClient::Options options;
  options.port = port;
  return net::NetClient(options);
}

TEST(NetE2E, IngestOverTcpMatchesDirectApply) {
  // Twin services consume the same batches — one directly, one through
  // the socket front end. Assigned ids and resulting state must match.
  ShardedDynamicCService direct(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  ShardedDynamicCService served(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  TrainService(&direct, 6);
  TrainService(&served, 6);

  net::ServerFrontEnd front_end(&served, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  for (int round = 0; round < 3; ++round) {
    OperationBatch batch = GroupAdds(6, 1);
    DataOperation update;
    update.kind = DataOperation::Kind::kUpdate;
    update.target = static_cast<ObjectId>(round);
    int g = static_cast<int>(update.target % 6);
    update.record.entity = static_cast<uint32_t>(g);
    update.record.tokens = {"grp" + std::to_string(g),
                            "tag" + std::to_string(g), "over-tcp"};
    batch.push_back(update);

    std::vector<ObjectId> direct_ids = direct.ApplyOperations(batch);
    net::IngestResponse response;
    ASSERT_TRUE(client.Ingest(batch, &response).ok());
    EXPECT_TRUE(response.accepted);
    ASSERT_EQ(response.ids.size(), direct_ids.size());
    for (size_t i = 0; i < direct_ids.size(); ++i) {
      EXPECT_EQ(response.ids[i], direct_ids[i]) << "op " << i;
    }
    direct.DynamicRound(direct_ids);
    std::vector<ObjectId> served_ids(response.ids.begin(),
                                     response.ids.end());
    served.DynamicRound(served_ids);
    ExpectSameState(direct, served);
  }
  front_end.Stop();
}

TEST(NetE2E, ClientCoalescingPreservesIdsAndState) {
  // QueueOp/FlushOps batches ops client-side; the flushed batch must
  // behave exactly like one Ingest of the same ops.
  ShardedDynamicCService direct(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  ShardedDynamicCService served(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  TrainService(&direct, 5);
  TrainService(&served, 5);

  net::ServerFrontEnd front_end(&served, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient::Options client_options;
  client_options.port = front_end.port();
  client_options.coalesce_ops = 4;  // force several auto-flushes
  net::NetClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());

  OperationBatch batch = GroupAdds(5, 2);
  std::vector<ObjectId> direct_ids = direct.ApplyOperations(batch);

  std::vector<uint64_t> net_ids;
  for (const DataOperation& op : batch) {
    net::IngestResponse flushed;
    bool did_flush = false;
    ASSERT_TRUE(client.QueueOp(op, &flushed, &did_flush).ok());
    if (did_flush) {
      ASSERT_TRUE(flushed.accepted);
      net_ids.insert(net_ids.end(), flushed.ids.begin(), flushed.ids.end());
    }
  }
  net::IngestResponse tail;
  ASSERT_TRUE(client.FlushOps(&tail).ok());
  net_ids.insert(net_ids.end(), tail.ids.begin(), tail.ids.end());

  ASSERT_EQ(net_ids.size(), direct_ids.size());
  for (size_t i = 0; i < direct_ids.size(); ++i) {
    EXPECT_EQ(net_ids[i], direct_ids[i]);
  }
  direct.DynamicRound(direct_ids);
  std::vector<ObjectId> served_ids(net_ids.begin(), net_ids.end());
  served.DynamicRound(served_ids);
  ExpectSameState(direct, served);
  front_end.Stop();
}

TEST(NetE2E, RejectBackpressureSurfacesOnTheWire) {
  // A kReject service with a tiny queue and backlog must answer
  // accepted=false (assigning no ids) instead of blocking the loop.
  ShardedDynamicCService::Options options = ServiceOptions(1, true);
  options.async.queue_depth = 1;
  options.async.backpressure = BackpressurePolicy::kReject;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  TrainService(&service, 4);

  net::ServerFrontEnd front_end(&service, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  bool saw_reject = false;
  for (int i = 0; i < 50 && !saw_reject; ++i) {
    net::IngestResponse response;
    ASSERT_TRUE(client.Ingest(GroupAdds(4, 8), &response).ok());
    if (!response.accepted) {
      EXPECT_TRUE(response.ids.empty());
      saw_reject = true;
    }
  }
  EXPECT_TRUE(saw_reject) << "queue_depth=1 never pushed back";
  service.Flush();
  front_end.Stop();
}

TEST(NetE2E, QueriesServeEpochPinnedViewsOverTcp) {
  ShardedDynamicCService service(ServiceOptions(2, false, /*serve=*/true),
                                 nullptr, MakeFactory());
  TrainService(&service, 6);
  service.CloseEpoch();  // publish a read view

  net::ServerFrontEnd front_end(&service, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  net::StatsResponse stats;
  ASSERT_TRUE(client.Stats(UINT64_MAX, &stats).ok());
  EXPECT_TRUE(stats.info.served);
  EXPECT_EQ(stats.objects, service.total_objects());
  EXPECT_EQ(stats.clusters, service.total_clusters());

  // Group 0's objects cluster together; ClusterOf(0) returns them all.
  net::ClusterOfResponse cluster;
  ASSERT_TRUE(client.ClusterOf(0, UINT64_MAX, &cluster).ok());
  EXPECT_TRUE(cluster.info.served);
  EXPECT_EQ(cluster.members.size(), 3u);

  // A probe with group 2's tokens ranks that cluster first.
  Record probe;
  probe.entity = 2;
  probe.tokens = {"grp2", "tag2"};
  net::KNearestResponse knn;
  ASSERT_TRUE(client.KNearest(probe, 2, UINT64_MAX, &knn).ok());
  ASSERT_FALSE(knn.hits.empty());
  EXPECT_EQ(knn.hits[0].similarity, 1.0);

  // An impossible staleness bound must refuse service, not lie.
  ShardedDynamicCService no_reads(ServiceOptions(1, false, /*serve=*/false),
                                  nullptr, MakeFactory());
  net::ServerFrontEnd dark(&no_reads, nullptr, {});
  ASSERT_TRUE(dark.Start().ok());
  net::NetClient dark_client = MakeClient(dark.port());
  ASSERT_TRUE(dark_client.Connect().ok());
  net::StatsResponse dark_stats;
  Status status = dark_client.Stats(UINT64_MAX, &dark_stats);
  EXPECT_TRUE(!status.ok() || !dark_stats.info.served);
  dark.Stop();
  front_end.Stop();
}

TEST(NetE2E, DeltaStreamMirrorsByteIdenticallyAndFollowerReplays) {
  ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  TrainService(&primary, 8);

  std::string dir = TempDir("stream_src");
  std::string mirror = TempDir("stream_mirror");
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());
  for (int round = 0; round < 4; ++round) {
    auto ids = primary.ApplyOperations(GroupAdds(8, 1));
    primary.DynamicRound(ids);
    repl.SealEpoch();
  }
  ASSERT_TRUE(repl.status().ok());

  net::ServerFrontEnd::Options fe_options;
  fe_options.replication_dir = dir;
  net::ServerFrontEnd front_end(&primary, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());
  front_end.SetStreamDone(true);

  net::DeltaStreamClient::Options stream_options;
  stream_options.port = front_end.port();
  stream_options.mirror_dir = mirror;
  net::DeltaStreamClient stream(stream_options);
  ASSERT_TRUE(stream.TailUntilDone(nullptr).ok());
  EXPECT_TRUE(TreesIdentical(dir, mirror));

  Follower follower(mirror, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUp().ok());
  follower.Flush();
  ExpectSameState(primary, follower.service());
  front_end.Stop();
}

TEST(NetE2E, FollowerServesReadsBehindItsOwnFrontEnd) {
  // Primary -> TCP mirror -> follower whose service serves reads
  // behind a second front end: a network read replica. Its stats must
  // equal the primary's at the sealed epoch.
  ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  TrainService(&primary, 6);

  std::string dir = TempDir("replica_src");
  std::string mirror = TempDir("replica_mirror");
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());
  auto ids = primary.ApplyOperations(GroupAdds(6, 1));
  primary.DynamicRound(ids);
  repl.SealEpoch();

  net::ServerFrontEnd::Options fe_options;
  fe_options.replication_dir = dir;
  net::ServerFrontEnd front_end(&primary, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());
  front_end.SetStreamDone(true);

  net::DeltaStreamClient::Options stream_options;
  stream_options.port = front_end.port();
  stream_options.mirror_dir = mirror;
  net::DeltaStreamClient stream(stream_options);
  ASSERT_TRUE(stream.TailUntilDone(nullptr).ok());

  Follower follower(mirror, ServiceOptions(2, false, /*serve=*/true),
                    MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUp().ok());
  follower.Flush();
  follower.service().CloseEpoch();

  net::ServerFrontEnd replica_fe(&follower.service(), nullptr, {});
  ASSERT_TRUE(replica_fe.Start().ok());
  net::NetClient client = MakeClient(replica_fe.port());
  ASSERT_TRUE(client.Connect().ok());
  net::StatsResponse stats;
  ASSERT_TRUE(client.Stats(UINT64_MAX, &stats).ok());
  EXPECT_TRUE(stats.info.served);
  EXPECT_EQ(stats.objects, primary.total_objects());
  EXPECT_EQ(stats.clusters, primary.total_clusters());
  replica_fe.Stop();
  front_end.Stop();
}

TEST(NetE2E, ChainedReplicationKeepsStandbyIdenticalAcrossTheCut) {
  // Old primary seals epochs 0..N; a follower promotes at N-1 (the
  // failover cut), truncates the dead primary's unacknowledged suffix,
  // and Resume()s the same log. A standby replaying the whole log —
  // old primary's epochs below the cut, promoted service's above —
  // must land byte-identical to the promoted service.
  ShardedDynamicCService old_primary(ServiceOptions(2, false), nullptr,
                                     MakeFactory());
  TrainService(&old_primary, 8);

  std::string dir = TempDir("chained");
  ReplicationSession repl(&old_primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());
  const uint64_t first_sealed = old_primary.open_epoch() - 1;
  for (int round = 0; round < 4; ++round) {
    auto ids = old_primary.ApplyOperations(GroupAdds(8, 1));
    old_primary.DynamicRound(ids);
    repl.SealEpoch();
  }
  ASSERT_TRUE(repl.status().ok());
  const uint64_t cut = first_sealed + 3;  // promote one epoch early

  Follower follower(dir, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUpTo(cut).ok());
  follower.Flush();
  std::unique_ptr<ShardedDynamicCService> promoted = follower.Promote();

  // Failover log truncation: drop artifacts past the cut (the dead
  // primary's unacknowledged epoch), then resume the log in place.
  DeltaLog log(dir);
  DeltaLog::State state;
  ASSERT_TRUE(log.List(&state).ok());
  for (uint64_t delta : state.deltas) {
    if (delta > cut) {
      ASSERT_TRUE(std::filesystem::remove(log.DeltaPathFor(delta)));
    }
  }
  for (uint64_t base : state.bases) {
    if (base > cut) std::filesystem::remove_all(log.BaseDirFor(base));
  }

  ReplicationSession resumed(promoted.get(), dir, {});
  ASSERT_TRUE(resumed.Resume().ok());

  // The new primary serves fresh rounds; deltas continue the numbering.
  for (int round = 0; round < 3; ++round) {
    auto ids = promoted->ApplyOperations(GroupAdds(8, 1));
    promoted->DynamicRound(ids);
    resumed.SealEpoch();
  }
  ASSERT_TRUE(resumed.status().ok());

  DeltaLog::State after;
  ASSERT_TRUE(log.List(&after).ok());
  ASSERT_FALSE(after.deltas.empty());
  EXPECT_EQ(after.deltas.back(), cut + 3);  // contiguous across the cut
  for (size_t i = 1; i < after.deltas.size(); ++i) {
    EXPECT_EQ(after.deltas[i], after.deltas[i - 1] + 1);
  }

  // The standby replays one log spanning both primaries' writes.
  Follower standby(dir, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(standby.Restore().ok());
  ASSERT_TRUE(standby.CatchUp().ok());
  standby.Flush();
  ExpectSameState(*promoted, standby.service());
}

TEST(NetE2E, RemoteScrapeIsByteIdenticalToLocalRender) {
  // The service books into its own registry; the front end's serving
  // telemetry goes to a *different* one, and MetricsScrape renders the
  // service registry (scrape_registry) — which no RPC mutates. The
  // remote Prometheus text must equal the local render byte for byte.
  obs::MetricsRegistry service_book, serving_book;
  ShardedDynamicCService::Options options = ServiceOptions(2, false);
  options.obs.metrics = &service_book;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  TrainService(&service, 6);
  service.ingest_stats();  // settle the mirror gauges

  net::ServerFrontEnd::Options fe_options;
  fe_options.metrics = &serving_book;
  fe_options.scrape_registry = &service_book;
  net::ServerFrontEnd front_end(&service, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  const std::string local =
      obs::RenderMetricsPrometheus(service_book.Snapshot());
  std::string remote;
  ASSERT_TRUE(client.MetricsScrape(&remote).ok());
  EXPECT_EQ(remote, local);
  ASSERT_TRUE(client.MetricsScrape(&remote).ok());
  EXPECT_EQ(remote, local) << "scraping must not perturb the registry";

  // The serving book carries the per-RPC telemetry: the full key set is
  // registered eagerly, and the scrapes we just did were timed.
  obs::MetricsSnapshot serving = serving_book.Snapshot();
  const auto scrape_ms =
      std::find_if(serving.histograms.begin(), serving.histograms.end(),
                   [](const obs::MetricsSnapshot::HistogramView& h) {
                     return h.name == "net.rpc_ms{type=MetricsScrape}";
                   });
  ASSERT_NE(scrape_ms, serving.histograms.end());
  EXPECT_GE(scrape_ms->count, 1u);  // the second scrape saw the first
  bool ingest_registered = false;
  for (const auto& h : serving.histograms) {
    if (h.name == "net.rpc_ms{type=Ingest}") ingest_registered = true;
  }
  EXPECT_TRUE(ingest_registered) << "key set must exist before traffic";
  front_end.Stop();
}

TEST(NetE2E, TraceContextPropagatesClientToServerToShardDrain) {
  // One trace id, three hops: the client's rpc.client span, the
  // server's rpc.Ingest handler span, and the drain worker's
  // drain.apply span on the shard that applied the batch — all
  // stitched through the wire envelope and the queued batch.
  obs::MetricsRegistry server_book, client_book;
  obs::Tracer server_tracer(2);
  obs::Tracer client_tracer(1);
  ShardedDynamicCService::Options options = ServiceOptions(2, true);
  options.obs.metrics = &server_book;
  options.obs.tracer = &server_tracer;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  TrainService(&service, 6);

  net::ServerFrontEnd::Options fe_options;
  fe_options.metrics = &server_book;
  fe_options.tracer = &server_tracer;
  net::ServerFrontEnd front_end(&service, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());

  net::NetClient::Options client_options;
  client_options.port = front_end.port();
  client_options.metrics = &client_book;
  client_options.tracer = &client_tracer;
  net::NetClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());
  ASSERT_EQ(client.server_features() & net::kFeatureTraceContext,
            net::kFeatureTraceContext);

  net::IngestResponse response;
  ASSERT_TRUE(client.Ingest(GroupAdds(6, 1), &response).ok());
  ASSERT_TRUE(response.accepted);
  const uint64_t trace_id = client.last_trace_id();
  ASSERT_NE(trace_id, 0u);
  service.Flush();  // the drain worker has applied the traced batch

  char hex[32];
  std::snprintf(hex, sizeof(hex), "\"%016" PRIx64 "\"", trace_id);

  // Client side: the rpc.client span originated the trace.
  bool client_span = false;
  for (const obs::TraceSpan& span : client_tracer.Spans()) {
    if (span.trace_id == trace_id &&
        std::strcmp(span.name, obs::kSpanRpcClient) == 0) {
      client_span = true;
    }
  }
  EXPECT_TRUE(client_span);

  // Server side, fetched over the wire: the handler span and the
  // cross-thread drain span carry the same trace id.
  std::string dump;
  ASSERT_TRUE(client.TraceDump(&dump).ok());
  bool rpc_span = false, drain_span = false;
  for (const obs::TraceSpan& span : server_tracer.Spans()) {
    if (span.trace_id != trace_id) continue;
    if (std::strcmp(span.name, "rpc.Ingest") == 0) rpc_span = true;
    if (std::strcmp(span.name, obs::kSpanDrainApply) == 0) {
      drain_span = true;
      EXPECT_NE(span.parent_span_id, 0u);
    }
  }
  EXPECT_TRUE(rpc_span);
  EXPECT_TRUE(drain_span);
  EXPECT_NE(dump.find(hex), std::string::npos)
      << "remote Chrome-trace dump must carry the client's trace id";

  // The client booked its round trips per type.
  obs::MetricsSnapshot snap = client_book.Snapshot();
  bool ingest_ms = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "net.client.rpc_ms{type=Ingest}" && h.count == 1) {
      ingest_ms = true;
    }
  }
  EXPECT_TRUE(ingest_ms);
  front_end.Stop();
}

TEST(NetE2E, NonTracingClientStaysOnTheOldWireFormat) {
  // No tracer: Hello carries no feature field, the server echoes no
  // features, and requests go out unwrapped — old-peer compatible.
  ShardedDynamicCService service(ServiceOptions(1, false), nullptr,
                                 MakeFactory());
  TrainService(&service, 4);
  obs::Tracer tracer(1);
  net::ServerFrontEnd::Options fe_options;
  fe_options.tracer = &tracer;
  net::ServerFrontEnd front_end(&service, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.server_features(), 0u);
  net::IngestResponse response;
  ASSERT_TRUE(client.Ingest(GroupAdds(4, 1), &response).ok());
  EXPECT_TRUE(response.accepted);
  EXPECT_EQ(client.last_trace_id(), 0u);
  for (const obs::TraceSpan& span : tracer.Spans()) {
    EXPECT_EQ(span.trace_id, 0u);
  }
  front_end.Stop();
}

TEST(NetE2E, HealthRpcReportsWatchdogAlertsOverTcp) {
  obs::MetricsRegistry reg;
  obs::Gauge* behind = reg.GetGauge("follower.epochs_behind");
  obs::Watchdog watchdog(&reg);
  obs::Watchdog::Rule rule;
  rule.name = "follower-staleness";
  rule.metric = "follower.epochs_behind";
  rule.fire_above = 5.0;
  rule.clear_below = 2.0;
  watchdog.AddRule(rule);

  ShardedDynamicCService service(ServiceOptions(1, false), nullptr,
                                 MakeFactory());
  net::ServerFrontEnd::Options fe_options;
  fe_options.metrics = &reg;
  fe_options.watchdog = &watchdog;
  net::ServerFrontEnd front_end(&service, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  net::HealthResponse health;
  ASSERT_TRUE(client.Health(&health).ok());
  EXPECT_TRUE(health.ok);
  EXPECT_EQ(health.alerts_active, 0u);

  behind->Set(10.0);  // inject the staleness breach
  watchdog.Tick();
  ASSERT_TRUE(client.Health(&health).ok());
  EXPECT_FALSE(health.ok);
  EXPECT_EQ(health.alerts_active, 1u);
  ASSERT_EQ(health.alerts.size(), 1u);
  EXPECT_EQ(health.alerts[0], "follower-staleness");

  behind->Set(0.0);  // recover
  watchdog.Tick();
  ASSERT_TRUE(client.Health(&health).ok());
  EXPECT_TRUE(health.ok);
  EXPECT_TRUE(health.alerts.empty());
  front_end.Stop();
}

TEST(NetE2E, ResumeRefusesAServiceThatDidNotReplayTheLog) {
  ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  TrainService(&primary, 4);
  std::string dir = TempDir("resume_guard");
  {
    ReplicationSession repl(&primary, dir, {});
    ASSERT_TRUE(repl.Start().ok());
    auto ids = primary.ApplyOperations(GroupAdds(4, 1));
    primary.DynamicRound(ids);
    repl.SealEpoch();
  }
  // A fresh, unrelated service is not at the log's frontier.
  ShardedDynamicCService stranger(ServiceOptions(2, false), nullptr,
                                  MakeFactory());
  ReplicationSession bogus(&stranger, dir, {});
  EXPECT_FALSE(bogus.Resume().ok());

  // An empty directory cannot be resumed either (nothing to continue).
  ShardedDynamicCService fresh(ServiceOptions(2, false), nullptr,
                               MakeFactory());
  ReplicationSession no_log(&fresh, TempDir("resume_empty"), {});
  EXPECT_FALSE(no_log.Resume().ok());
}

}  // namespace
}  // namespace dynamicc
