// End-to-end networked serving (src/net/ over a real localhost TCP
// socket): ingest through the front end matches direct ApplyOperations
// byte for byte, queries serve epoch-pinned views over the wire,
// reject backpressure surfaces as `accepted=false` responses, the
// DeltaStream transport mirrors a replication directory byte-
// identically and the Follower replays the mirror into a replica, a
// follower doubles as a network read replica behind its own front
// end, and chained replication (promote + Resume) keeps a standby
// byte-identical across the failover cut.

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/client.h"
#include "net/delta_stream.h"
#include "net/front_end.h"
#include "net/rpc.h"
#include "replication/delta_log.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/sharded_service.h"
#include "service_test_util.h"
#include "util/status.h"
#include "util/wire.h"

namespace dynamicc {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_net_e2e_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardedDynamicCService::Options ServiceOptions(uint32_t shards, bool async,
                                               bool serve_reads = false) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = async;
  options.read.serve = serve_reads;
  return options;
}

void TrainService(ShardedDynamicCService* service, int groups) {
  auto changed = service->ApplyOperations(GroupAdds(groups, 3));
  service->ObserveBatchRound(changed);
  service->Flush();
}

/// The replica bar this suite cares about: identical clusterings and
/// admission state (full model/placement identity is replication_test's
/// job — here the transport must simply not perturb anything).
void ExpectSameState(ShardedDynamicCService& a, ShardedDynamicCService& b) {
  EXPECT_EQ(a.GlobalClusters(), b.GlobalClusters());
  EXPECT_EQ(a.total_objects(), b.total_objects());
  EXPECT_EQ(a.total_clusters(), b.total_clusters());
  EXPECT_EQ(a.open_epoch(), b.open_epoch());
  EXPECT_EQ(a.ingest_stats().accepted_ops, b.ingest_stats().accepted_ops);
}

bool TreesIdentical(const std::string& a, const std::string& b) {
  namespace fs = std::filesystem;
  std::vector<std::string> rel_a, rel_b;
  std::error_code ec;
  for (const auto& entry : fs::recursive_directory_iterator(a, ec)) {
    if (entry.is_regular_file()) {
      rel_a.push_back(fs::relative(entry.path(), a, ec).string());
    }
  }
  for (const auto& entry : fs::recursive_directory_iterator(b, ec)) {
    if (entry.is_regular_file()) {
      rel_b.push_back(fs::relative(entry.path(), b, ec).string());
    }
  }
  std::sort(rel_a.begin(), rel_a.end());
  std::sort(rel_b.begin(), rel_b.end());
  if (rel_a != rel_b) return false;
  for (const std::string& rel : rel_a) {
    std::string bytes_a, bytes_b;
    if (!ReadFileBytes(a + "/" + rel, &bytes_a).ok()) return false;
    if (!ReadFileBytes(b + "/" + rel, &bytes_b).ok()) return false;
    if (bytes_a != bytes_b) return false;
  }
  return true;
}

net::NetClient MakeClient(uint16_t port) {
  net::NetClient::Options options;
  options.port = port;
  return net::NetClient(options);
}

TEST(NetE2E, IngestOverTcpMatchesDirectApply) {
  // Twin services consume the same batches — one directly, one through
  // the socket front end. Assigned ids and resulting state must match.
  ShardedDynamicCService direct(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  ShardedDynamicCService served(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  TrainService(&direct, 6);
  TrainService(&served, 6);

  net::ServerFrontEnd front_end(&served, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  for (int round = 0; round < 3; ++round) {
    OperationBatch batch = GroupAdds(6, 1);
    DataOperation update;
    update.kind = DataOperation::Kind::kUpdate;
    update.target = static_cast<ObjectId>(round);
    int g = static_cast<int>(update.target % 6);
    update.record.entity = static_cast<uint32_t>(g);
    update.record.tokens = {"grp" + std::to_string(g),
                            "tag" + std::to_string(g), "over-tcp"};
    batch.push_back(update);

    std::vector<ObjectId> direct_ids = direct.ApplyOperations(batch);
    net::IngestResponse response;
    ASSERT_TRUE(client.Ingest(batch, &response).ok());
    EXPECT_TRUE(response.accepted);
    ASSERT_EQ(response.ids.size(), direct_ids.size());
    for (size_t i = 0; i < direct_ids.size(); ++i) {
      EXPECT_EQ(response.ids[i], direct_ids[i]) << "op " << i;
    }
    direct.DynamicRound(direct_ids);
    std::vector<ObjectId> served_ids(response.ids.begin(),
                                     response.ids.end());
    served.DynamicRound(served_ids);
    ExpectSameState(direct, served);
  }
  front_end.Stop();
}

TEST(NetE2E, ClientCoalescingPreservesIdsAndState) {
  // QueueOp/FlushOps batches ops client-side; the flushed batch must
  // behave exactly like one Ingest of the same ops.
  ShardedDynamicCService direct(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  ShardedDynamicCService served(ServiceOptions(2, false), nullptr,
                                MakeFactory());
  TrainService(&direct, 5);
  TrainService(&served, 5);

  net::ServerFrontEnd front_end(&served, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient::Options client_options;
  client_options.port = front_end.port();
  client_options.coalesce_ops = 4;  // force several auto-flushes
  net::NetClient client(client_options);
  ASSERT_TRUE(client.Connect().ok());

  OperationBatch batch = GroupAdds(5, 2);
  std::vector<ObjectId> direct_ids = direct.ApplyOperations(batch);

  std::vector<uint64_t> net_ids;
  for (const DataOperation& op : batch) {
    net::IngestResponse flushed;
    bool did_flush = false;
    ASSERT_TRUE(client.QueueOp(op, &flushed, &did_flush).ok());
    if (did_flush) {
      ASSERT_TRUE(flushed.accepted);
      net_ids.insert(net_ids.end(), flushed.ids.begin(), flushed.ids.end());
    }
  }
  net::IngestResponse tail;
  ASSERT_TRUE(client.FlushOps(&tail).ok());
  net_ids.insert(net_ids.end(), tail.ids.begin(), tail.ids.end());

  ASSERT_EQ(net_ids.size(), direct_ids.size());
  for (size_t i = 0; i < direct_ids.size(); ++i) {
    EXPECT_EQ(net_ids[i], direct_ids[i]);
  }
  direct.DynamicRound(direct_ids);
  std::vector<ObjectId> served_ids(net_ids.begin(), net_ids.end());
  served.DynamicRound(served_ids);
  ExpectSameState(direct, served);
  front_end.Stop();
}

TEST(NetE2E, RejectBackpressureSurfacesOnTheWire) {
  // A kReject service with a tiny queue and backlog must answer
  // accepted=false (assigning no ids) instead of blocking the loop.
  ShardedDynamicCService::Options options = ServiceOptions(1, true);
  options.async.queue_depth = 1;
  options.async.backpressure = BackpressurePolicy::kReject;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  TrainService(&service, 4);

  net::ServerFrontEnd front_end(&service, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  bool saw_reject = false;
  for (int i = 0; i < 50 && !saw_reject; ++i) {
    net::IngestResponse response;
    ASSERT_TRUE(client.Ingest(GroupAdds(4, 8), &response).ok());
    if (!response.accepted) {
      EXPECT_TRUE(response.ids.empty());
      saw_reject = true;
    }
  }
  EXPECT_TRUE(saw_reject) << "queue_depth=1 never pushed back";
  service.Flush();
  front_end.Stop();
}

TEST(NetE2E, QueriesServeEpochPinnedViewsOverTcp) {
  ShardedDynamicCService service(ServiceOptions(2, false, /*serve=*/true),
                                 nullptr, MakeFactory());
  TrainService(&service, 6);
  service.CloseEpoch();  // publish a read view

  net::ServerFrontEnd front_end(&service, nullptr, {});
  ASSERT_TRUE(front_end.Start().ok());
  net::NetClient client = MakeClient(front_end.port());
  ASSERT_TRUE(client.Connect().ok());

  net::StatsResponse stats;
  ASSERT_TRUE(client.Stats(UINT64_MAX, &stats).ok());
  EXPECT_TRUE(stats.info.served);
  EXPECT_EQ(stats.objects, service.total_objects());
  EXPECT_EQ(stats.clusters, service.total_clusters());

  // Group 0's objects cluster together; ClusterOf(0) returns them all.
  net::ClusterOfResponse cluster;
  ASSERT_TRUE(client.ClusterOf(0, UINT64_MAX, &cluster).ok());
  EXPECT_TRUE(cluster.info.served);
  EXPECT_EQ(cluster.members.size(), 3u);

  // A probe with group 2's tokens ranks that cluster first.
  Record probe;
  probe.entity = 2;
  probe.tokens = {"grp2", "tag2"};
  net::KNearestResponse knn;
  ASSERT_TRUE(client.KNearest(probe, 2, UINT64_MAX, &knn).ok());
  ASSERT_FALSE(knn.hits.empty());
  EXPECT_EQ(knn.hits[0].similarity, 1.0);

  // An impossible staleness bound must refuse service, not lie.
  ShardedDynamicCService no_reads(ServiceOptions(1, false, /*serve=*/false),
                                  nullptr, MakeFactory());
  net::ServerFrontEnd dark(&no_reads, nullptr, {});
  ASSERT_TRUE(dark.Start().ok());
  net::NetClient dark_client = MakeClient(dark.port());
  ASSERT_TRUE(dark_client.Connect().ok());
  net::StatsResponse dark_stats;
  Status status = dark_client.Stats(UINT64_MAX, &dark_stats);
  EXPECT_TRUE(!status.ok() || !dark_stats.info.served);
  dark.Stop();
  front_end.Stop();
}

TEST(NetE2E, DeltaStreamMirrorsByteIdenticallyAndFollowerReplays) {
  ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  TrainService(&primary, 8);

  std::string dir = TempDir("stream_src");
  std::string mirror = TempDir("stream_mirror");
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());
  for (int round = 0; round < 4; ++round) {
    auto ids = primary.ApplyOperations(GroupAdds(8, 1));
    primary.DynamicRound(ids);
    repl.SealEpoch();
  }
  ASSERT_TRUE(repl.status().ok());

  net::ServerFrontEnd::Options fe_options;
  fe_options.replication_dir = dir;
  net::ServerFrontEnd front_end(&primary, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());
  front_end.SetStreamDone(true);

  net::DeltaStreamClient::Options stream_options;
  stream_options.port = front_end.port();
  stream_options.mirror_dir = mirror;
  net::DeltaStreamClient stream(stream_options);
  ASSERT_TRUE(stream.TailUntilDone(nullptr).ok());
  EXPECT_TRUE(TreesIdentical(dir, mirror));

  Follower follower(mirror, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUp().ok());
  follower.Flush();
  ExpectSameState(primary, follower.service());
  front_end.Stop();
}

TEST(NetE2E, FollowerServesReadsBehindItsOwnFrontEnd) {
  // Primary -> TCP mirror -> follower whose service serves reads
  // behind a second front end: a network read replica. Its stats must
  // equal the primary's at the sealed epoch.
  ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  TrainService(&primary, 6);

  std::string dir = TempDir("replica_src");
  std::string mirror = TempDir("replica_mirror");
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());
  auto ids = primary.ApplyOperations(GroupAdds(6, 1));
  primary.DynamicRound(ids);
  repl.SealEpoch();

  net::ServerFrontEnd::Options fe_options;
  fe_options.replication_dir = dir;
  net::ServerFrontEnd front_end(&primary, nullptr, fe_options);
  ASSERT_TRUE(front_end.Start().ok());
  front_end.SetStreamDone(true);

  net::DeltaStreamClient::Options stream_options;
  stream_options.port = front_end.port();
  stream_options.mirror_dir = mirror;
  net::DeltaStreamClient stream(stream_options);
  ASSERT_TRUE(stream.TailUntilDone(nullptr).ok());

  Follower follower(mirror, ServiceOptions(2, false, /*serve=*/true),
                    MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUp().ok());
  follower.Flush();
  follower.service().CloseEpoch();

  net::ServerFrontEnd replica_fe(&follower.service(), nullptr, {});
  ASSERT_TRUE(replica_fe.Start().ok());
  net::NetClient client = MakeClient(replica_fe.port());
  ASSERT_TRUE(client.Connect().ok());
  net::StatsResponse stats;
  ASSERT_TRUE(client.Stats(UINT64_MAX, &stats).ok());
  EXPECT_TRUE(stats.info.served);
  EXPECT_EQ(stats.objects, primary.total_objects());
  EXPECT_EQ(stats.clusters, primary.total_clusters());
  replica_fe.Stop();
  front_end.Stop();
}

TEST(NetE2E, ChainedReplicationKeepsStandbyIdenticalAcrossTheCut) {
  // Old primary seals epochs 0..N; a follower promotes at N-1 (the
  // failover cut), truncates the dead primary's unacknowledged suffix,
  // and Resume()s the same log. A standby replaying the whole log —
  // old primary's epochs below the cut, promoted service's above —
  // must land byte-identical to the promoted service.
  ShardedDynamicCService old_primary(ServiceOptions(2, false), nullptr,
                                     MakeFactory());
  TrainService(&old_primary, 8);

  std::string dir = TempDir("chained");
  ReplicationSession repl(&old_primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());
  const uint64_t first_sealed = old_primary.open_epoch() - 1;
  for (int round = 0; round < 4; ++round) {
    auto ids = old_primary.ApplyOperations(GroupAdds(8, 1));
    old_primary.DynamicRound(ids);
    repl.SealEpoch();
  }
  ASSERT_TRUE(repl.status().ok());
  const uint64_t cut = first_sealed + 3;  // promote one epoch early

  Follower follower(dir, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUpTo(cut).ok());
  follower.Flush();
  std::unique_ptr<ShardedDynamicCService> promoted = follower.Promote();

  // Failover log truncation: drop artifacts past the cut (the dead
  // primary's unacknowledged epoch), then resume the log in place.
  DeltaLog log(dir);
  DeltaLog::State state;
  ASSERT_TRUE(log.List(&state).ok());
  for (uint64_t delta : state.deltas) {
    if (delta > cut) {
      ASSERT_TRUE(std::filesystem::remove(log.DeltaPathFor(delta)));
    }
  }
  for (uint64_t base : state.bases) {
    if (base > cut) std::filesystem::remove_all(log.BaseDirFor(base));
  }

  ReplicationSession resumed(promoted.get(), dir, {});
  ASSERT_TRUE(resumed.Resume().ok());

  // The new primary serves fresh rounds; deltas continue the numbering.
  for (int round = 0; round < 3; ++round) {
    auto ids = promoted->ApplyOperations(GroupAdds(8, 1));
    promoted->DynamicRound(ids);
    resumed.SealEpoch();
  }
  ASSERT_TRUE(resumed.status().ok());

  DeltaLog::State after;
  ASSERT_TRUE(log.List(&after).ok());
  ASSERT_FALSE(after.deltas.empty());
  EXPECT_EQ(after.deltas.back(), cut + 3);  // contiguous across the cut
  for (size_t i = 1; i < after.deltas.size(); ++i) {
    EXPECT_EQ(after.deltas[i], after.deltas[i - 1] + 1);
  }

  // The standby replays one log spanning both primaries' writes.
  Follower standby(dir, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(standby.Restore().ok());
  ASSERT_TRUE(standby.CatchUp().ok());
  standby.Flush();
  ExpectSameState(*promoted, standby.service());
}

TEST(NetE2E, ResumeRefusesAServiceThatDidNotReplayTheLog) {
  ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  TrainService(&primary, 4);
  std::string dir = TempDir("resume_guard");
  {
    ReplicationSession repl(&primary, dir, {});
    ASSERT_TRUE(repl.Start().ok());
    auto ids = primary.ApplyOperations(GroupAdds(4, 1));
    primary.DynamicRound(ids);
    repl.SealEpoch();
  }
  // A fresh, unrelated service is not at the log's frontier.
  ShardedDynamicCService stranger(ServiceOptions(2, false), nullptr,
                                  MakeFactory());
  ReplicationSession bogus(&stranger, dir, {});
  EXPECT_FALSE(bogus.Resume().ok());

  // An empty directory cannot be resumed either (nothing to continue).
  ShardedDynamicCService fresh(ServiceOptions(2, false), nullptr,
                               MakeFactory());
  ReplicationSession no_log(&fresh, TempDir("resume_empty"), {});
  EXPECT_FALSE(no_log.Resume().ok());
}

}  // namespace
}  // namespace dynamicc
