#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_utils.h"
#include "util/timer.h"

namespace dynamicc {
namespace {

// ---------------------------------------------------------------- strings

TEST(SplitTokens, SplitsOnDefaultDelimiters) {
  EXPECT_EQ(SplitTokens("a b,c;d"),
            (std::vector<std::string>{"a", "b", "c", "d"}));
}

TEST(SplitTokens, DropsEmptyPieces) {
  EXPECT_EQ(SplitTokens("  a   b  "), (std::vector<std::string>{"a", "b"}));
}

TEST(SplitTokens, EmptyInputGivesNoTokens) {
  EXPECT_TRUE(SplitTokens("").empty());
  EXPECT_TRUE(SplitTokens("   ").empty());
}

TEST(ToLowerAscii, LowersOnlyLetters) {
  EXPECT_EQ(ToLowerAscii("AbC 12-Z"), "abc 12-z");
}

TEST(TrigramCounts, PadsWithHashes) {
  auto grams = TrigramCounts("ab");
  // "##ab##" -> ##a, #ab, ab#, b##
  EXPECT_EQ(grams.size(), 4u);
  EXPECT_EQ(grams.at("##a"), 1);
  EXPECT_EQ(grams.at("#ab"), 1);
  EXPECT_EQ(grams.at("ab#"), 1);
  EXPECT_EQ(grams.at("b##"), 1);
}

TEST(TrigramCounts, CountsRepeats) {
  auto grams = TrigramCounts("aaaa");  // ##aaaa## has "aaa" e.g. twice
  EXPECT_GE(grams.at("aaa"), 2);
}

TEST(Levenshtein, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0);
}

TEST(Levenshtein, SymmetricOnRandomStrings) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::string a, b;
    for (int k = 0; k < 12; ++k) {
      if (rng.Chance(0.8)) a += static_cast<char>('a' + rng.Index(4));
      if (rng.Chance(0.8)) b += static_cast<char>('a' + rng.Index(4));
    }
    EXPECT_EQ(LevenshteinDistance(a, b), LevenshteinDistance(b, a));
    EXPECT_LE(LevenshteinDistance(a, b),
              static_cast<int>(std::max(a.size(), b.size())));
  }
}

TEST(JoinStrings, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, IndexCoversRange) {
  Rng rng(2);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.Index(5)];
  for (int count : seen) EXPECT_GT(count, 100);
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(3);
  auto sample = rng.SampleIndices(20, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  for (size_t index : sample) EXPECT_LT(index, 20u);
}

TEST(Rng, PoissonMeanApproximatelyCorrect) {
  Rng rng(4);
  double total = 0.0;
  constexpr int kDraws = 5000;
  for (int i = 0; i < kDraws; ++i) total += rng.Poisson(3.0);
  EXPECT_NEAR(total / kDraws, 3.0, 0.15);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, ForkedGeneratorsDiffer) {
  Rng parent(6);
  Rng child1 = parent.Fork();
  Rng child2 = parent.Fork();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (child1.Uniform() != child2.Uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------------ table

TEST(TableWriter, CsvRendering) {
  TableWriter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"x", "y"});
  EXPECT_EQ(table.ToCsv(), "a,b\n1,2\nx,y\n");
}

TEST(TableWriter, AsciiAlignsColumns) {
  TableWriter table({"name", "v"});
  table.AddRow({"long-name", "1"});
  std::string ascii = table.ToAscii();
  EXPECT_NE(ascii.find("| name      | v |"), std::string::npos);
  EXPECT_NE(ascii.find("| long-name | 1 |"), std::string::npos);
}

TEST(TableWriter, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::Num(1.23456, 2), "1.23");
  EXPECT_EQ(TableWriter::Num(2.0, 3), "2.000");
}

// ----------------------------------------------------------------- status

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, CarriesMessage) {
  Status status = Status::InvalidArgument("bad k");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad k");
}

// ------------------------------------------------------------------ timer

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
}

}  // namespace
}  // namespace dynamicc
