// Epoch-tagged flushes: CloseEpoch seals an ingest prefix, Flush(epoch)
// waits for exactly that prefix on every shard — no full quiescence.
// The anchors: (1) under *sustained* ingest an epoch flush returns while
// the old global barrier could never, (2) the state after an epoch
// flush contains at least the sealed prefix, (3) epoch numbering and
// watermarks are deterministic and survive migrations (obligations
// follow a moved group to the destination shard's queue).

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/operations.h"
#include "service/service_report.h"
#include "service/sharded_service.h"
#include "service_test_util.h"

namespace dynamicc {
namespace {

ShardedDynamicCService::Options AsyncOptions(uint32_t shards,
                                             size_t depth = 4096) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = true;
  options.async.queue_depth = depth;
  return options;
}

void Train(ShardedDynamicCService* service, int groups, int per_group) {
  auto changed = service->ApplyOperations(GroupAdds(groups, per_group));
  service->ObserveBatchRound(changed);
  service->Flush();  // enter the serving phase
}

// --------------------------------------------------------- basic contract

TEST(EpochFlush, EpochNumbersAreDenseAndDeterministic) {
  ShardedDynamicCService service(AsyncOptions(2), nullptr, MakeFactory());
  EXPECT_EQ(service.open_epoch(), 1u);
  EXPECT_EQ(service.CloseEpoch(), 1u);
  EXPECT_EQ(service.CloseEpoch(), 2u);
  EXPECT_EQ(service.open_epoch(), 3u);
  // Idle epochs are applied instantly: nothing was admitted in them.
  service.WaitEpoch(1);
  service.WaitEpoch(2);
  IngestStats stats = service.ingest_stats();
  EXPECT_EQ(stats.open_epoch, 3u);
  EXPECT_EQ(stats.applied_epoch, 2u);
}

TEST(EpochFlush, SyncModeEpochsAreImmediate) {
  ShardedDynamicCService::Options options;
  options.num_shards = 2;
  ShardedDynamicCService service(options, nullptr, MakeFactory());
  service.ApplyOperations(GroupAdds(6, 2));
  uint64_t sealed = service.CloseEpoch();
  // Synchronous application means the epoch is applied the moment it is
  // sealed; the epoch flush is just a (possibly serving) barrier.
  ServiceReport report = service.Flush(sealed);
  EXPECT_EQ(report.flush_epoch, sealed);
  EXPECT_EQ(service.ingest_stats().applied_epoch, sealed);
}

TEST(EpochFlush, FlushEpochCoversSealedPrefix) {
  for (uint32_t shards : {1u, 2u, 4u}) {
    SCOPED_TRACE(shards);
    ShardedDynamicCService service(AsyncOptions(shards), nullptr,
                                   MakeFactory());
    Train(&service, 8, 3);

    auto first = service.Ingest(GroupAdds(8, 2));
    ASSERT_TRUE(first.accepted);
    uint64_t sealed = service.CloseEpoch();
    auto second = service.Ingest(GroupAdds(8, 1));
    ASSERT_TRUE(second.accepted);

    ServiceReport report = service.Flush(sealed);
    EXPECT_EQ(report.flush_epoch, sealed);
    EXPECT_GE(report.ingest.applied_epoch, sealed);
    // Everything sealed is in the readable state. (Later-epoch ops may
    // or may not have been applied too — the barrier only promises the
    // prefix.)
    size_t applied_after_epoch_flush = service.total_objects();
    EXPECT_GE(applied_after_epoch_flush, 8u * 3u + 8u * 2u);

    service.Flush();
    EXPECT_EQ(service.total_objects(), 8u * 3u + 8u * 2u + 8u);
  }
}

// A blocked producer thread keeps one shard's queue permanently
// non-empty; the old global barrier could not return while that is so,
// but an epoch flush for a sealed earlier prefix must. This is the
// "no draining of later-epoch queue contents" guarantee made
// observable: the test would deadlock (and time out) if Flush(epoch)
// waited for queue emptiness.
TEST(EpochFlush, ReturnsUnderSustainedIngest) {
  ShardedDynamicCService service(AsyncOptions(4), nullptr, MakeFactory());
  Train(&service, 12, 2);

  auto burst = service.Ingest(GroupAdds(12, 2));
  ASSERT_TRUE(burst.accepted);
  uint64_t sealed = service.CloseEpoch();

  std::atomic<bool> stop{false};
  std::thread producer([&service, &stop] {
    while (!stop.load()) {
      service.Ingest(GroupAdds(12, 1));
    }
  });

  // Must return while the producer hammers later epochs. If it ever
  // waited for empty queues this would hang until the test timeout.
  ServiceReport report = service.Flush(sealed);
  EXPECT_EQ(report.flush_epoch, sealed);
  EXPECT_GE(report.ingest.applied_epoch, sealed);

  stop.store(true);
  producer.join();
  service.Flush();
  EXPECT_EQ(service.ingest_stats().pending_ops, 0u);
}

// SaveSnapshot excludes producers for its epoch seal + drain: calling
// it while other threads hammer Ingest must neither deadlock nor tear
// state — the saved snapshot restores to a valid service.
TEST(EpochFlush, SaveSnapshotUnderSustainedIngestIsSafe) {
  ShardedDynamicCService service(AsyncOptions(2, /*depth=*/64), nullptr,
                                 MakeFactory());
  Train(&service, 8, 2);

  std::atomic<bool> stop{false};
  std::thread producer([&service, &stop] {
    while (!stop.load()) {
      service.Ingest(GroupAdds(8, 1));
    }
  });

  const std::string dir =
      ::testing::TempDir() + "dynamicc_epoch_save_under_ingest";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(service.SaveSnapshot(dir).ok());
  stop.store(true);
  producer.join();
  service.Flush();

  ShardedDynamicCService::Options options = AsyncOptions(2, /*depth=*/64);
  ShardedDynamicCService restored(options, nullptr, MakeFactory());
  ASSERT_TRUE(restored.LoadSnapshot(dir).ok());
  // The snapshot is some consistent prefix of the stream: fully
  // clustered, fully applied, nothing pending.
  IngestStats stats = restored.ingest_stats();
  EXPECT_EQ(stats.pending_ops, 0u);
  size_t clustered = 0;
  for (const auto& cluster : restored.GlobalClusters()) {
    clustered += cluster.size();
  }
  EXPECT_EQ(clustered, restored.total_objects());
  EXPECT_GE(restored.total_objects(), 8u * 2u);
}

TEST(EpochFlush, WaitEpochAloneRunsNoRounds) {
  ShardedDynamicCService service(AsyncOptions(2), nullptr, MakeFactory());
  auto changed = service.ApplyOperations(GroupAdds(6, 2));
  service.ObserveBatchRound(changed);
  // Not yet serving: workers defer rounds. WaitEpoch still completes —
  // application alone advances watermarks; rounds are not part of the
  // epoch contract.
  service.Ingest(GroupAdds(6, 1));
  uint64_t sealed = service.CloseEpoch();
  service.WaitEpoch(sealed);
  EXPECT_GE(service.ingest_stats().applied_epoch, sealed);
}

// ----------------------------------------------- equivalence at barriers

// Interleaving epoch flushes between ingests must not perturb the final
// clustering: the stream still ends byte-identical to the synchronous
// single-engine run.
TEST(EpochFlush, EpochBarriersPreserveFlushEquivalence) {
  std::vector<OperationBatch> batches;
  batches.push_back(GroupAdds(10, 3));
  for (int i = 0; i < 4; ++i) batches.push_back(GroupAdds(10, 1));
  auto reference = SingleEngineRun(batches, /*training=*/1);

  for (uint32_t shards : {2u, 4u}) {
    SCOPED_TRACE(shards);
    ShardedDynamicCService service(AsyncOptions(shards), nullptr,
                                   MakeFactory());
    auto changed = service.ApplyOperations(batches[0]);
    service.ObserveBatchRound(changed);
    service.Flush();
    for (size_t i = 1; i < batches.size(); ++i) {
      service.Ingest(batches[i]);
      service.Flush(service.CloseEpoch());
    }
    service.Flush();
    EXPECT_EQ(service.GlobalClusters(), reference);
  }
}

// ------------------------------------------------------------- migrations

// Sealed obligations follow a migrated group: operations of epoch E
// that raced the move replay onto the destination's queue, and
// Flush(E) must wait for them *there*.
TEST(EpochFlush, MigrationCarriesEpochObligations) {
  ShardedDynamicCService service(AsyncOptions(2), nullptr, MakeFactory());
  Train(&service, 6, 2);

  // Queue a large burst for group 0 and seal it, then immediately
  // migrate the group; part of the burst is typically still queued on
  // the source and replays onto the destination — whose own queue was
  // empty, so it had already reported the sealed epoch applied. The
  // epoch flush below must nonetheless cover the replayed tail.
  service.Ingest(AddsForGroups({0}, 256));
  uint64_t sealed = service.CloseEpoch();

  uint64_t group = GroupKeyOf(0);
  uint32_t target = 1 - service.ShardOfObject(0) % 2;
  auto migration = service.MigrateGroup(group, target);
  EXPECT_EQ(migration.to, target);

  ServiceReport report = service.Flush(sealed);
  EXPECT_GE(report.ingest.applied_epoch, sealed);
  // Nothing was admitted after the seal, so "epoch applied everywhere"
  // means *everything* is applied — replayed operations included; an
  // epoch flush that skipped the re-homed tail would come up short.
  EXPECT_EQ(service.total_objects(), 6u * 2u + 256u);
  // Every one of the group's records now lives on the migration target.
  service.Flush();
  EXPECT_EQ(service.ShardOfObject(0), target);
  ServiceSnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.report.placement_version, migration.placement_version);
}

}  // namespace
}  // namespace dynamicc
