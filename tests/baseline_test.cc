#include <map>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/greedy.h"
#include "baseline/naive.h"
#include "batch/agglomerative.h"
#include "cluster/engine.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "objective/correlation.h"
#include "util/rng.h"

namespace dynamicc {
namespace {

class NumericLineFixture : public ::testing::Test {
 protected:
  NumericLineFixture()
      : measure_(1.0),
        graph_(&dataset_, &measure_, std::make_unique<AllPairsBlocker>(),
               0.05) {}

  ObjectId AddPoint(double x) {
    Record record;
    record.numeric = {x};
    ObjectId id = dataset_.Add(record);
    graph_.AddObject(id);
    return id;
  }

  Dataset dataset_;
  EuclideanSimilarity measure_;
  SimilarityGraph graph_;
};

// ------------------------------------------------------------------ naive

TEST_F(NumericLineFixture, NaiveJoinsClosestCluster) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ObjectId c = AddPoint(10.0);
  ObjectId d = AddPoint(10.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId ab = engine.Merge(engine.clustering().ClusterOf(a),
                              engine.clustering().ClusterOf(b));
  ClusterId cd = engine.Merge(engine.clustering().ClusterOf(c),
                              engine.clustering().ClusterOf(d));

  // New object near the second pair.
  ObjectId fresh = AddPoint(10.05);
  engine.AddObjectAsSingleton(fresh);
  NaiveIncremental naive;
  naive.Process(&engine, {fresh});
  EXPECT_EQ(engine.clustering().ClusterOf(fresh), cd);
  EXPECT_NE(engine.clustering().ClusterOf(fresh), ab);
}

TEST_F(NumericLineFixture, NaiveLeavesOutliersAlone) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  engine.Merge(engine.clustering().ClusterOf(a),
               engine.clustering().ClusterOf(b));
  ObjectId outlier = AddPoint(50.0);
  engine.AddObjectAsSingleton(outlier);
  NaiveIncremental naive;
  naive.Process(&engine, {outlier});
  EXPECT_EQ(engine.clustering().ClusterSize(
                engine.clustering().ClusterOf(outlier)),
            1u);
}

TEST_F(NumericLineFixture, NaiveNeverRestructuresExistingClusters) {
  // A cluster that *should* split is left intact: Naive is merge-only.
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(8.0);  // far apart but forced together
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId forced = engine.Merge(engine.clustering().ClusterOf(a),
                                  engine.clustering().ClusterOf(b));
  ObjectId fresh = AddPoint(20.0);
  engine.AddObjectAsSingleton(fresh);
  NaiveIncremental naive;
  naive.Process(&engine, {fresh});
  EXPECT_EQ(engine.clustering().ClusterSize(forced), 2u);
}

// ----------------------------------------------------------------- greedy

TEST_F(NumericLineFixture, GreedyMergesNewObjectIn) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  engine.Merge(engine.clustering().ClusterOf(a),
               engine.clustering().ClusterOf(b));
  ObjectId fresh = AddPoint(0.05);
  engine.AddObjectAsSingleton(fresh);

  CorrelationObjective objective;
  GreedyIncremental greedy(&objective);
  double before = objective.Evaluate(engine);
  auto report = greedy.Process(&engine, {fresh});
  EXPECT_LE(objective.Evaluate(engine), before);
  EXPECT_GE(report.merges, 1u);
  EXPECT_EQ(engine.clustering().ClusterOf(fresh),
            engine.clustering().ClusterOf(a));
}

TEST_F(NumericLineFixture, GreedySplitsWhenBeneficial) {
  // Force a bad cluster {near, near, far}; greedy should split `far` out
  // once the far object's cluster is dirty.
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ObjectId far = AddPoint(6.0);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  ClusterId bad = engine.Merge(engine.clustering().ClusterOf(a),
                               engine.clustering().ClusterOf(b));
  bad = engine.Merge(bad, engine.clustering().ClusterOf(far));

  CorrelationObjective objective;
  GreedyIncremental greedy(&objective);
  double before = objective.Evaluate(engine);
  greedy.Process(&engine, {a});
  EXPECT_LT(objective.Evaluate(engine), before);
  EXPECT_NE(engine.clustering().ClusterOf(far),
            engine.clustering().ClusterOf(a));
}

TEST(Greedy, ConvergesToBatchQualityOnRandomData) {
  // Incrementally processing a stream with Greedy should land close to the
  // batch agglomerative objective on well-separated data.
  Rng rng(23);
  Dataset dataset;
  EuclideanSimilarity measure(1.0);
  SimilarityGraph graph(&dataset, &measure,
                        std::make_unique<AllPairsBlocker>(), 0.05);
  CorrelationObjective objective;
  ClusteringEngine incremental(&graph);

  std::vector<double> centers = {0.0, 10.0, 20.0, 30.0};
  GreedyIncremental greedy(&objective);
  std::vector<ObjectId> all;
  for (int i = 0; i < 60; ++i) {
    Record record;
    record.numeric = {centers[rng.Index(centers.size())] +
                      rng.Gaussian(0.0, 0.3)};
    ObjectId id = dataset.Add(record);
    graph.AddObject(id);
    incremental.AddObjectAsSingleton(id);
    greedy.Process(&incremental, {id});
    all.push_back(id);
  }

  ClusteringEngine batch_engine(&graph);
  GreedyAgglomerative batch(&objective);
  batch.Run(&batch_engine);

  double batch_score = objective.Evaluate(batch_engine);
  double greedy_score = objective.Evaluate(incremental);
  EXPECT_LE(greedy_score, batch_score * 1.25 + 1.0);
}

TEST_F(NumericLineFixture, GreedyReportsDeltaEvaluations) {
  ObjectId a = AddPoint(0.0);
  ObjectId b = AddPoint(0.1);
  ClusteringEngine engine(&graph_);
  engine.InitSingletons();
  CorrelationObjective objective;
  GreedyIncremental greedy(&objective);
  auto report = greedy.Process(&engine, {a, b});
  EXPECT_GT(report.delta_evaluations, 0u);
}

}  // namespace
}  // namespace dynamicc
