// Replication edge cases: follower replay across live-migration epochs
// (placement decisions interleaved with queued traffic), delta-log
// corruption surfacing through the follower instead of being skipped,
// compaction preserving byte-identity for both fresh followers and
// live tailers that fell behind the compaction horizon, and hook-side
// failure containment.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ml/serialization.h"
#include "replication/delta_log.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/sharded_service.h"
#include "service_test_util.h"
#include "util/status.h"
#include "util/wire.h"

namespace dynamicc {
namespace {

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_repl_edge_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardedDynamicCService::Options ServiceOptions(uint32_t shards, bool async) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = async;
  return options;
}

void ExpectSameState(ShardedDynamicCService& a, ShardedDynamicCService& b) {
  EXPECT_EQ(a.GlobalClusters(), b.GlobalClusters());
  EXPECT_EQ(a.total_objects(), b.total_objects());
  EXPECT_EQ(a.open_epoch(), b.open_epoch());
  EXPECT_EQ(a.placement().version(), b.placement().version());
  EXPECT_EQ(a.placement().Current()->overrides,
            b.placement().Current()->overrides);
}

// A follower replaying an epoch that contained live MigrateGroup calls —
// including moves racing queued (async) traffic on the primary, where
// the primary re-homes the raced tail between shard logs — reproduces
// the placement versions, group ownership and clustering exactly.
TEST(ReplicationEdge, FollowerReplaysAcrossLiveMigrationEpochs) {
  for (bool async : {false, true}) {
    SCOPED_TRACE(async);
    ShardedDynamicCService primary(ServiceOptions(4, async), nullptr,
                                   MakeFactory());
    auto changed = primary.ApplyOperations(GroupAdds(12, 3));
    primary.ObserveBatchRound(changed);
    primary.Flush();

    std::string dir = TempDir(std::string("migrate_") +
                              (async ? "async" : "sync"));
    ReplicationSession repl(&primary, dir, {});
    ASSERT_TRUE(repl.Start().ok());

    // Epoch with traffic *around* the moves: ingest, migrate two groups
    // (the async primary still has the batch queued — the raced-tail
    // path), ingest again into the moved group, then barrier + seal.
    primary.Ingest(AddsForGroups({0, 1, 5}, 2));
    for (int g : {0, 1}) {
      uint64_t group = GroupKeyOf(g);
      uint32_t from = primary.ShardOfObject(static_cast<ObjectId>(g));
      primary.MigrateGroup(group, (from + 1) % 4);
    }
    primary.Ingest(AddsForGroups({0, 7}, 2));
    primary.Flush();
    repl.SealEpoch();
    ASSERT_TRUE(repl.status().ok());

    // And one epoch where the migration is the *only* event.
    uint64_t group2 = GroupKeyOf(2);
    uint32_t from2 = primary.ShardOfObject(2);
    primary.MigrateGroup(group2, (from2 + 2) % 4);
    repl.SealEpoch();

    Follower follower(dir, ServiceOptions(4, false), MakeFactory());
    ASSERT_TRUE(follower.Restore().ok());
    ASSERT_TRUE(follower.CatchUp().ok());
    follower.Flush();
    primary.Flush();
    ExpectSameState(primary, follower.service());
    for (ObjectId id : {0u, 1u, 2u, 5u}) {
      EXPECT_EQ(primary.ShardOfObject(id), follower.service().ShardOfObject(id))
          << "object " << id;
    }

    // The moved groups keep taking traffic through the replicated
    // stream: another round into them replays cleanly, both for the
    // live tailer and for a fresh follower reading the whole log.
    primary.ApplyOperations(AddsForGroups({0, 1, 2}, 2));
    primary.Flush();
    repl.SealEpoch();
    ASSERT_TRUE(follower.CatchUp().ok());
    follower.Flush();
    ExpectSameState(primary, follower.service());
    Follower fresh(dir, ServiceOptions(4, false), MakeFactory());
    ASSERT_TRUE(fresh.Restore().ok());
    ASSERT_TRUE(fresh.CatchUp().ok());
    fresh.Flush();
    ExpectSameState(primary, fresh.service());
  }
}

// Corruption in the middle of the shipped log surfaces as an error from
// CatchUp — the follower neither skips the epoch nor trusts the bytes.
TEST(ReplicationEdge, FollowerRejectsTruncatedAndCorruptDeltas) {
  ShardedDynamicCService primary(ServiceOptions(2, false), nullptr,
                                 MakeFactory());
  auto changed = primary.ApplyOperations(GroupAdds(6, 2));
  primary.ObserveBatchRound(changed);
  primary.Flush();
  std::string dir = TempDir("corrupt_tail");
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());
  for (int round = 0; round < 2; ++round) {
    auto ids = primary.ApplyOperations(GroupAdds(6, 1));
    primary.DynamicRound(ids);
    repl.SealEpoch();
  }

  const uint64_t first_delta = repl.last_base_epoch() + 1;
  DeltaLog log(dir);
  std::string bytes;
  ASSERT_TRUE(ReadFileBytes(log.DeltaPathFor(first_delta), &bytes).ok());

  {
    // Truncated mid-payload.
    ASSERT_TRUE(WriteFileBytes(log.DeltaPathFor(first_delta),
                               bytes.substr(0, bytes.size() - 40))
                    .ok());
    Follower follower(dir, ServiceOptions(2, false), MakeFactory());
    ASSERT_TRUE(follower.Restore().ok());
    size_t replayed = 99;
    Status status = follower.CatchUp(&replayed);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(replayed, 0u);
  }
  {
    // One flipped byte in a record payload.
    std::string flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x01;
    ASSERT_TRUE(
        WriteFileBytes(log.DeltaPathFor(first_delta), flipped).ok());
    Follower follower(dir, ServiceOptions(2, false), MakeFactory());
    ASSERT_TRUE(follower.Restore().ok());
    EXPECT_FALSE(follower.CatchUp().ok());
  }
  {
    // Restored bytes replay cleanly end to end.
    ASSERT_TRUE(WriteFileBytes(log.DeltaPathFor(first_delta), bytes).ok());
    Follower follower(dir, ServiceOptions(2, false), MakeFactory());
    ASSERT_TRUE(follower.Restore().ok());
    size_t replayed = 0;
    ASSERT_TRUE(follower.CatchUp(&replayed).ok());
    EXPECT_EQ(replayed, 2u);
    follower.Flush();
    ExpectSameState(primary, follower.service());
  }
}

// Compaction: periodic bases bound the log, fresh followers start from
// the newest base, and a live tailer that fell behind the horizon
// rebuilds itself — all byte-identical to the primary.
TEST(ReplicationEdge, CompactionPreservesByteIdentity) {
  ShardedDynamicCService primary(ServiceOptions(2, true), nullptr,
                                 MakeFactory());
  auto changed = primary.ApplyOperations(GroupAdds(8, 3));
  primary.ObserveBatchRound(changed);
  primary.Flush();

  std::string dir = TempDir("compaction");
  ReplicationSession::Options repl_options;
  repl_options.snapshot_every = 2;
  ReplicationSession repl(&primary, dir, repl_options);
  ASSERT_TRUE(repl.Start().ok());

  // A tailer that keeps up from the very first epoch.
  Follower tailer(dir, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(tailer.Restore().ok());

  for (int round = 0; round < 7; ++round) {
    primary.Ingest(GroupAdds(8, 1));
    primary.Flush();
    repl.SealEpoch();
    ASSERT_TRUE(repl.status().ok());
    ASSERT_TRUE(tailer.CatchUp().ok());
  }
  // Several bases were cut (snapshot_every=2 over 7 rounds, and each
  // base's own save seals an extra epoch the tailer also replays).
  EXPECT_GT(repl.last_base_epoch(), tailer.base_epoch());
  tailer.Flush();
  primary.Flush();
  ExpectSameState(primary, tailer.service());
  EXPECT_EQ(tailer.restores(), 1u);  // never had to rebuild

  // The log is bounded: exactly one base, one compaction interval of
  // deltas at most.
  DeltaLog::State state;
  ASSERT_TRUE(DeltaLog(dir).List(&state).ok());
  EXPECT_EQ(state.bases.size(), 1u);
  EXPECT_EQ(state.bases.back(), repl.last_base_epoch());

  // Fresh follower: newest base + retained deltas only.
  Follower fresh(dir, ServiceOptions(2, false), MakeFactory());
  ASSERT_TRUE(fresh.Restore().ok());
  EXPECT_EQ(fresh.base_epoch(), repl.last_base_epoch());
  ASSERT_TRUE(fresh.CatchUp().ok());
  fresh.Flush();
  ExpectSameState(primary, fresh.service());

  // A stalled tailer whose next delta was compacted away rebuilds from
  // the newest base and continues.
  Follower stalled(dir, ServiceOptions(2, false), MakeFactory());
  {
    // Pin it to the (still listed) newest base, then advance the
    // primary far enough that compaction passes the stalled position.
    ASSERT_TRUE(stalled.Restore().ok());
    uint64_t stalled_at = stalled.epoch();
    for (int round = 0; round < 5; ++round) {
      primary.Ingest(GroupAdds(8, 1));
      primary.Flush();
      repl.SealEpoch();
    }
    ASSERT_GT(repl.last_base_epoch(), stalled_at);
    ASSERT_FALSE(
        std::filesystem::exists(DeltaLog(dir).DeltaPathFor(stalled_at + 1)));
    ASSERT_TRUE(stalled.CatchUp().ok());
    EXPECT_GE(stalled.restores(), 2u);  // rebuilt across the horizon
    stalled.Flush();
    primary.Flush();
    ExpectSameState(primary, stalled.service());
  }
}

TEST(ReplicationEdge, StartFailsCleanlyWhenTheDirectoryIsUnusable) {
  ShardedDynamicCService primary(ServiceOptions(1, false), nullptr,
                                 MakeFactory());
  auto changed = primary.ApplyOperations(GroupAdds(3, 2));
  primary.ObserveBatchRound(changed);
  primary.Flush();

  // Parent is a file: Init cannot create the directory.
  std::string parent = TempDir("unusable");
  ASSERT_TRUE(WriteFileBytes(parent, "not a directory").ok());
  ReplicationSession repl(&primary, parent + "/log", {});
  EXPECT_FALSE(repl.Start().ok());
  // The service is untouched and still serves.
  EXPECT_EQ(primary.stream_observer(), nullptr);
  primary.ApplyOperations(GroupAdds(3, 1));
  primary.Flush();
}

}  // namespace
}  // namespace dynamicc
