#ifndef DYNAMICC_TESTS_SERVICE_TEST_UTIL_H_
#define DYNAMICC_TESTS_SERVICE_TEST_UTIL_H_

// Shared fixtures for the service-layer suites (service_test,
// service_async_test, the service fuzz in session_fuzz_test): the
// canonical per-shard environment, the partition-disjoint group
// workload, and the single-engine reference run the equivalence
// claims are pinned against. One definition keeps every suite testing
// the *same* configuration.

#include <memory>
#include <string>
#include <vector>

#include "batch/agglomerative.h"
#include "core/session.h"
#include "data/blocking.h"
#include "data/dataset.h"
#include "data/operations.h"
#include "data/similarity_graph.h"
#include "data/similarity_measures.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "service/sharded_service.h"

namespace dynamicc {

/// Per-shard environment: Jaccard + token blocking + correlation
/// objective, the Cora-style profile.
inline ShardEnvironmentFactory MakeFactory() {
  return [] {
    ShardEnvironment env;
    env.measure = std::make_unique<JaccardSimilarity>();
    env.blocker = std::make_unique<TokenBlocker>();
    env.min_similarity = 0.1;
    auto objective = std::make_unique<CorrelationObjective>();
    env.validator = std::make_unique<ObjectiveValidator>(objective.get());
    env.batch = std::make_unique<GreedyAgglomerative>(objective.get());
    env.objective = std::move(objective);
    env.merge_model = std::make_unique<LogisticRegression>();
    env.split_model = std::make_unique<LogisticRegression>();
    return env;
  };
}

/// Partition-disjoint stream: members of group g share their token set
/// (intra-group Jaccard 1) and share nothing across groups (inter 0), so
/// no similarity edge can cross groups and hash-of-blocking-key routing
/// is provably partition-preserving.
inline OperationBatch GroupAdds(int groups, int per_group) {
  OperationBatch ops;
  for (int i = 0; i < per_group; ++i) {
    for (int g = 0; g < groups; ++g) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      op.record.entity = static_cast<uint32_t>(g);
      op.record.tokens = {"grp" + std::to_string(g),
                          "tag" + std::to_string(g)};
      ops.push_back(op);
    }
  }
  return ops;
}

/// Adds for an explicit set of group ids (same token scheme as
/// GroupAdds), interleaved.
inline OperationBatch AddsForGroups(const std::vector<int>& groups,
                                    int per_group) {
  OperationBatch ops;
  for (int i = 0; i < per_group; ++i) {
    for (int g : groups) {
      DataOperation op;
      op.kind = DataOperation::Kind::kAdd;
      op.record.entity = static_cast<uint32_t>(g);
      op.record.tokens = {"grp" + std::to_string(g),
                          "tag" + std::to_string(g)};
      ops.push_back(op);
    }
  }
  return ops;
}

/// Group key hash of GroupAdds records for group `g` (their smallest
/// lowercase token is "grp<g>"), i.e. what MigrateGroup takes.
inline uint64_t GroupKeyOf(int g) {
  return BlockingKeyHash("grp" + std::to_string(g));
}

/// Group ids (from [0, universe)) whose hash placement collides on
/// `shard` at `num_shards` — an adversarial hot set: every one of them
/// lands on the same shard under static routing.
inline std::vector<int> CollidingGroups(int count, uint32_t shard,
                                        uint32_t num_shards, int universe) {
  std::vector<int> colliding;
  for (int g = 0; g < universe && static_cast<int>(colliding.size()) < count;
       ++g) {
    if (GroupKeyOf(g) % num_shards == shard) colliding.push_back(g);
  }
  return colliding;
}

/// Single shared-engine reference for the same stream of batches:
/// observe the first `training` batches, then serve the rest dynamically.
inline std::vector<std::vector<ObjectId>> SingleEngineRun(
    const std::vector<OperationBatch>& batches, int training) {
  Dataset dataset;
  JaccardSimilarity measure;
  SimilarityGraph graph(&dataset, &measure, std::make_unique<TokenBlocker>(),
                        0.1);
  CorrelationObjective objective;
  ObjectiveValidator validator(&objective);
  GreedyAgglomerative batch(&objective);
  DynamicCSession session(&dataset, &graph, &batch, &validator,
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          DynamicCSession::Options{});
  for (size_t i = 0; i < batches.size(); ++i) {
    auto changed = session.ApplyOperations(batches[i]);
    if (static_cast<int>(i) < training) {
      session.ObserveBatchRound(changed);
    } else {
      session.DynamicRound(changed);
    }
  }
  return session.clustering().CanonicalClusters();
}

}  // namespace dynamicc

#endif  // DYNAMICC_TESTS_SERVICE_TEST_UTIL_H_
