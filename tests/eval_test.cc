#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "eval/confusion.h"
#include "eval/pair_metrics.h"
#include "eval/purity.h"
#include "eval/report.h"
#include "ml/model.h"

namespace dynamicc {
namespace {

using Partition = std::vector<std::vector<ObjectId>>;

// ------------------------------------------------------------ pair metrics

TEST(PairMetrics, IdenticalClusteringsArePerfect) {
  Partition clusters = {{1, 2, 3}, {4, 5}};
  PairMetrics metrics = ComparePairs(clusters, clusters);
  EXPECT_DOUBLE_EQ(metrics.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.F1(), 1.0);
}

TEST(PairMetrics, AllSingletonsAgainstOneCluster) {
  Partition singletons = {{1}, {2}, {3}};
  Partition together = {{1, 2, 3}};
  PairMetrics metrics = ComparePairs(singletons, together);
  EXPECT_DOUBLE_EQ(metrics.true_positives, 0.0);
  EXPECT_DOUBLE_EQ(metrics.false_negatives, 3.0);  // all 3 pairs missed
  EXPECT_DOUBLE_EQ(metrics.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.Precision(), 1.0);  // no pairs predicted
  EXPECT_DOUBLE_EQ(metrics.F1(), 0.0);
}

TEST(PairMetrics, KnownPartialOverlap) {
  // result {1,2},{3,4}; truth {1,2,3},{4}:
  // result pairs: (1,2),(3,4). truth pairs: (1,2),(1,3),(2,3).
  // tp = 1 ((1,2)); fp = 1 ((3,4)); fn = 2.
  Partition result = {{1, 2}, {3, 4}};
  Partition truth = {{1, 2, 3}, {4}};
  PairMetrics metrics = ComparePairs(result, truth);
  EXPECT_DOUBLE_EQ(metrics.true_positives, 1.0);
  EXPECT_DOUBLE_EQ(metrics.false_positives, 1.0);
  EXPECT_DOUBLE_EQ(metrics.false_negatives, 2.0);
  EXPECT_DOUBLE_EQ(metrics.Precision(), 0.5);
  EXPECT_NEAR(metrics.Recall(), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(metrics.F1(), 2 * 0.5 * (1.0 / 3) / (0.5 + 1.0 / 3), 1e-12);
}

TEST(PairMetrics, SymmetricSwapExchangesPrecisionRecall) {
  Partition a = {{1, 2}, {3, 4}, {5}};
  Partition b = {{1, 2, 3}, {4, 5}};
  PairMetrics ab = ComparePairs(a, b);
  PairMetrics ba = ComparePairs(b, a);
  EXPECT_DOUBLE_EQ(ab.Precision(), ba.Recall());
  EXPECT_DOUBLE_EQ(ab.Recall(), ba.Precision());
  EXPECT_DOUBLE_EQ(ab.F1(), ba.F1());
}

// ----------------------------------------------------------------- purity

TEST(Purity, PerfectForIdenticalClusterings) {
  Partition clusters = {{1, 2}, {3}};
  EXPECT_DOUBLE_EQ(Purity(clusters, clusters), 1.0);
  EXPECT_DOUBLE_EQ(InversePurity(clusters, clusters), 1.0);
}

TEST(Purity, SingletonsAreAlwaysPure) {
  Partition singletons = {{1}, {2}, {3}};
  Partition truth = {{1, 2, 3}};
  EXPECT_DOUBLE_EQ(Purity(singletons, truth), 1.0);
  // But inverse purity suffers: the one truth cluster is covered 1/3.
  EXPECT_NEAR(InversePurity(singletons, truth), 1.0 / 3.0, 1e-12);
}

TEST(Purity, KnownMixedValue) {
  // Cluster {1,2,3} where truth has {1,2} and {3,4}: best overlap 2 of 3.
  Partition result = {{1, 2, 3}, {4}};
  Partition truth = {{1, 2}, {3, 4}};
  EXPECT_NEAR(Purity(result, truth), (2.0 + 1.0) / 4.0, 1e-12);
}

// -------------------------------------------------------------- confusion

TEST(ConfusionMatrix, PaperFigure3Arithmetic) {
  // Figure 3's heat map: tn = 8, fp = 15, fn = 1, tp = 120 over 144
  // clusters. The paper computes accuracy 128/144 = 0.889, precision
  // 120/135 = 0.89, recall 120/121 = 0.992.
  ConfusionMatrix matrix;
  matrix.true_negatives = 8;
  matrix.false_positives = 15;
  matrix.false_negatives = 1;
  matrix.true_positives = 120;
  EXPECT_EQ(matrix.Total(), 144u);
  EXPECT_NEAR(matrix.Accuracy(), 0.889, 0.001);
  EXPECT_NEAR(matrix.Precision(), 0.889, 0.001);
  EXPECT_NEAR(matrix.Recall(), 0.992, 0.001);
}

TEST(ConfusionMatrix, EvaluateModelCountsOutcomes) {
  class FixedModel final : public BinaryClassifier {
   public:
    const char* Name() const override { return "fixed"; }
    void Fit(const SampleSet&) override {}
    bool is_fitted() const override { return true; }
    std::unique_ptr<BinaryClassifier> Clone() const override {
      return std::make_unique<FixedModel>();
    }
    double PredictProbability(
        const std::vector<double>& features) const override {
      return features[0];  // probability is the feature itself
    }
  };

  SampleSet samples = {
      {{0.9}, 1, 1.0},  // tp
      {{0.2}, 1, 1.0},  // fn
      {{0.8}, 0, 1.0},  // fp
      {{0.1}, 0, 1.0},  // tn
  };
  FixedModel model;
  ConfusionMatrix matrix = EvaluateModel(model, samples, 0.5);
  EXPECT_EQ(matrix.true_positives, 1u);
  EXPECT_EQ(matrix.false_negatives, 1u);
  EXPECT_EQ(matrix.false_positives, 1u);
  EXPECT_EQ(matrix.true_negatives, 1u);
  EXPECT_NE(matrix.ToString().find("predicted=1"), std::string::npos);
}

// ----------------------------------------------------------------- report

TEST(QualityReport, BundlesAllMetrics) {
  Partition result = {{1, 2}, {3, 4}};
  Partition truth = {{1, 2, 3}, {4}};
  QualityReport report = EvaluateQuality(result, truth);
  EXPECT_DOUBLE_EQ(report.precision, 0.5);
  EXPECT_NEAR(report.recall, 1.0 / 3.0, 1e-12);
  EXPECT_GT(report.purity, 0.0);
  EXPECT_GT(report.inverse_purity, 0.0);
  EXPECT_GT(report.f1, 0.0);
}

}  // namespace
}  // namespace dynamicc
