#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace dynamicc {
namespace {

// The experiment harness is itself part of the public surface (benches and
// downstream users drive experiments through it), so its contracts get
// their own coverage.

TEST(Harness, MakeStreamHonorsScaleOverride) {
  WorkloadStream stream = MakeStream(WorkloadKind::kCora, 77, 0);
  EXPECT_EQ(stream.initial.size(), 77u);
  WorkloadStream defaulted = MakeStream(WorkloadKind::kCora, 0, 0);
  EXPECT_EQ(defaulted.initial.size(), 280u);  // generator default
}

TEST(Harness, MakeStreamSeedChangesContent) {
  WorkloadStream a = MakeStream(WorkloadKind::kMusic, 50, 1);
  WorkloadStream b = MakeStream(WorkloadKind::kMusic, 50, 2);
  bool any_diff = false;
  for (size_t i = 0; i < a.initial.size(); ++i) {
    if (a.initial[i].record.text != b.initial[i].record.text) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Harness, ProfilesExistForAllWorkloads) {
  for (WorkloadKind workload :
       {WorkloadKind::kCora, WorkloadKind::kMusic, WorkloadKind::kSynthetic,
        WorkloadKind::kAccess, WorkloadKind::kRoad}) {
    DatasetProfile profile = MakeProfile(workload);
    EXPECT_NE(profile.measure, nullptr) << WorkloadName(workload);
    EXPECT_NE(profile.blocker, nullptr) << WorkloadName(workload);
  }
}

TEST(Harness, WorkloadAndTaskNames) {
  EXPECT_STREQ(WorkloadName(WorkloadKind::kSynthetic), "synthetic");
  EXPECT_STREQ(TaskName(TaskKind::kDbIndex), "db-index");
  EXPECT_STREQ(TaskName(TaskKind::kDbscan), "dbscan");
}

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.workload = WorkloadKind::kCora;
  config.task = TaskKind::kCorrelation;
  config.scale = 60;
  config.training_rounds = 1;
  return config;
}

TEST(Harness, BatchBuildsOneReferencePerSnapshot) {
  ExperimentHarness harness(TinyConfig());
  Series batch = harness.RunBatch();
  EXPECT_EQ(batch.points.size(), harness.stream().snapshots.size());
  EXPECT_EQ(harness.references().size(), batch.points.size());
  for (size_t i = 0; i < batch.points.size(); ++i) {
    size_t objects = 0;
    for (const auto& cluster : harness.references()[i]) {
      objects += cluster.size();
    }
    EXPECT_EQ(objects, batch.points[i].num_objects);
    EXPECT_EQ(batch.points[i].num_clusters, harness.references()[i].size());
  }
}

TEST(Harness, GreedySetRequiresGreedyRunFirst) {
  ExperimentHarness harness(TinyConfig());
  harness.RunBatch();
  EXPECT_DEATH(harness.RunDynamicC(/*greedy_set=*/true), "RunGreedy");
}

TEST(Harness, QualityAgainstSelfIsPerfectForBatch) {
  ExperimentHarness harness(TinyConfig());
  Series batch = harness.RunBatch();
  for (const auto& point : batch.points) {
    EXPECT_DOUBLE_EQ(point.quality.f1, 1.0);
  }
}

TEST(Harness, ComputeQualityOffLeavesDefaults) {
  ExperimentConfig config = TinyConfig();
  config.compute_quality = false;
  ExperimentHarness harness(config);
  Series naive = harness.RunNaive();
  for (const auto& point : naive.points) {
    EXPECT_DOUBLE_EQ(point.quality.f1, 0.0);  // untouched default
  }
}

TEST(Harness, HarvestSamplesProducesLabelledFeatures) {
  ExperimentHarness harness(TinyConfig());
  auto harvest = harness.HarvestSamples(3);
  EXPECT_GT(harvest.merge.size(), 10u);
  size_t positives = 0;
  for (const auto& sample : harvest.merge) {
    EXPECT_EQ(sample.features.size(), 4u);
    EXPECT_TRUE(sample.label == 0 || sample.label == 1);
    positives += sample.label;
  }
  // The trainer balances positives and negatives 1:1 (§5.3); feedback can
  // skew it slightly but the harvest is observation-only.
  EXPECT_GT(positives, harvest.merge.size() / 3);
  EXPECT_LT(positives, harvest.merge.size() * 2 / 3 + 2);
}

TEST(Harness, ThetaOverrideChangesEffort) {
  // Very high theta => almost nothing flagged; low theta => plenty.
  ExperimentConfig config = TinyConfig();
  config.theta_override = 0.99;
  config.retrain_every = 0;
  ExperimentHarness strict(config);
  strict.RunBatch();
  Series high = strict.RunDynamicC(false);

  config.theta_override = 0.02;
  ExperimentHarness lax(config);
  lax.RunBatch();
  Series low = lax.RunDynamicC(false);

  size_t high_pred = 0, low_pred = 0;
  for (const auto& point : high.points) {
    high_pred += point.dynamicc.merge_predicted;
  }
  for (const auto& point : low.points) {
    low_pred += point.dynamicc.merge_predicted;
  }
  EXPECT_LT(high_pred, low_pred);
}

TEST(Harness, TotalLatencyIsSumOfPoints) {
  ExperimentHarness harness(TinyConfig());
  Series naive = harness.RunNaive();
  double sum = 0.0;
  for (const auto& point : naive.points) sum += point.latency_ms;
  EXPECT_NEAR(naive.total_latency_ms, sum, 1e-6);
}

}  // namespace
}  // namespace dynamicc
