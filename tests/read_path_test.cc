// Epoch-pinned read path (src/service/read_view.h, query_api.h):
// byte-consistency of published views against the flushed service at
// the same epoch, epoch-granularity linearizability under concurrent
// ingest (a pinned view never mixes epochs), reads riding across
// migrations and follower promotion, per-query staleness-bound
// admission in ReadRouter, and hazard/refcount view reclamation under
// reader/publisher stress (run under TSan/ASan in CI).

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/delta_stream.h"
#include "net/front_end.h"
#include "replication/follower.h"
#include "replication/replication_session.h"
#include "service/query_api.h"
#include "service/read_view.h"
#include "service/sharded_service.h"
#include "service_test_util.h"

namespace dynamicc {
namespace {

constexpr int kGroupSize = 3;

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "dynamicc_read_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardedDynamicCService::Options ReadServiceOptions(uint32_t shards,
                                                   bool async = false) {
  ShardedDynamicCService::Options options;
  options.num_shards = shards;
  options.async.enabled = async;
  options.read.serve = true;
  return options;
}

/// One whole group per epoch: every sealed state holds a multiple of
/// kGroupSize objects, and every cluster (groups are token-disjoint, so
/// clusters never span groups) holds members of exactly one entity.
/// Both facts are per-epoch atomic, which is what makes them torn-view
/// detectors.
void IngestGroupEpoch(ShardedDynamicCService* service, int group,
                      bool round) {
  std::vector<ObjectId> changed =
      service->ApplyOperations(AddsForGroups({group}, kGroupSize));
  if (round) service->ObserveBatchRound(changed);
  service->CloseEpoch();
}

/// Self-consistency of one pinned view: member counts add up across
/// slices, the id map agrees with the membership lists, and no cluster
/// mixes entities. A view assembled from slices of different epochs
/// fails the count or the id-map check.
void CheckViewInvariants(const ReadView& view) {
  ASSERT_EQ(view.num_objects() % kGroupSize, 0u)
      << "torn view: partial group visible at epoch " << view.epoch();
  size_t objects = 0;
  for (size_t i = 0; i < view.num_clusters(); ++i) {
    const ReadClusterInfo& cluster = view.cluster(i);
    ASSERT_FALSE(cluster.members.empty());
    objects += cluster.members.size();
    for (ObjectId member : cluster.members) {
      ASSERT_EQ(view.ClusterOf(member), &cluster)
          << "id map and membership disagree for " << member;
    }
  }
  ASSERT_EQ(objects, view.num_objects());
}

// ----------------------------------------------------- byte consistency

TEST(ReadView, ByteConsistentWithFlushedServiceAtEveryEpoch) {
  ShardedDynamicCService service(ReadServiceOptions(2), nullptr,
                                 MakeFactory());
  ASSERT_TRUE(service.serves_reads());
  EXPECT_FALSE(service.AcquireReadView());  // nothing published yet

  for (int e = 0; e < 6; ++e) {
    IngestGroupEpoch(&service, e, /*round=*/true);
    ReadPin pin = service.AcquireReadView();
    ASSERT_TRUE(pin);
    // Quiescent between epochs, so the newest view reflects exactly the
    // flushed state — the canonical forms must be byte-equal.
    EXPECT_EQ(pin->CanonicalClusters(), service.GlobalClusters());
    EXPECT_EQ(pin->num_objects(), service.total_objects());
    EXPECT_EQ(pin->num_clusters(), service.total_clusters());
    CheckViewInvariants(*pin);
  }
}

TEST(ReadView, PinnedViewIsImmutableWhileIngestAdvances) {
  ShardedDynamicCService service(ReadServiceOptions(2), nullptr,
                                 MakeFactory());
  IngestGroupEpoch(&service, 0, /*round=*/true);

  ReadPin old_pin = service.AcquireReadView();
  ASSERT_TRUE(old_pin);
  const auto frozen = old_pin->CanonicalClusters();
  const uint64_t frozen_epoch = old_pin->epoch();

  for (int e = 1; e < 5; ++e) IngestGroupEpoch(&service, e, /*round=*/true);

  // The service moved on; the pinned view did not.
  EXPECT_EQ(old_pin->CanonicalClusters(), frozen);
  EXPECT_EQ(old_pin->epoch(), frozen_epoch);
  ReadPin fresh = service.AcquireReadView();
  ASSERT_TRUE(fresh);
  EXPECT_GT(fresh->epoch(), frozen_epoch);
  EXPECT_NE(fresh->CanonicalClusters(), frozen);
}

TEST(ReadView, IncrementalBuildReusesUntouchedShardSlices) {
  ShardedDynamicCService service(ReadServiceOptions(4), nullptr,
                                 MakeFactory());
  // Seed every shard, then keep feeding one group only: shards that saw
  // no operation republish the same slice object (pointer-equal).
  std::vector<ObjectId> changed = service.ApplyOperations(GroupAdds(8, 2));
  service.ObserveBatchRound(changed);
  service.CloseEpoch();
  ReadPin before = service.AcquireReadView();
  ASSERT_TRUE(before);

  IngestGroupEpoch(&service, 0, /*round=*/false);
  ReadPin after = service.AcquireReadView();
  ASSERT_TRUE(after);
  ASSERT_GT(after->sequence(), before->sequence());

  size_t reused = 0;
  for (uint32_t s = 0; s < before->num_shards(); ++s) {
    if (&before->Slice(s) == &after->Slice(s)) ++reused;
  }
  // Group 0 lands on exactly one shard; the other slices are grafted.
  EXPECT_EQ(reused, before->num_shards() - 1);
}

TEST(ReadView, KNearestClustersRanksTheProbesOwnGroupFirst) {
  ShardedDynamicCService service(ReadServiceOptions(2), nullptr,
                                 MakeFactory());
  std::vector<ObjectId> changed = service.ApplyOperations(GroupAdds(6, 3));
  service.ObserveBatchRound(changed);
  service.CloseEpoch();

  QueryClient client(&service);
  Record probe;
  probe.tokens = {"grp2", "tag2"};  // exact content of group 2
  QueryClient::NearestResult nearest = client.KNearestClusters(probe, 3);
  ASSERT_TRUE(nearest.info.served);
  ASSERT_FALSE(nearest.hits.empty());
  EXPECT_DOUBLE_EQ(nearest.hits[0].similarity, 1.0);
  // Best hit is a cluster of group 2: consult the membership answer.
  QueryClient::ClusterOfResult membership =
      client.ClusterOfRecord(nearest.hits[0].members.front());
  EXPECT_EQ(membership.members, nearest.hits[0].members);
  for (size_t i = 1; i < nearest.hits.size(); ++i) {
    EXPECT_LE(nearest.hits[i].similarity, nearest.hits[0].similarity);
  }
}

// ------------------------------------- concurrent ingest, pinned reads

TEST(ReadPath, ConcurrentReadersNeverObserveMixedEpochs) {
  ShardedDynamicCService service(ReadServiceOptions(2, /*async=*/true),
                                 nullptr, MakeFactory());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      uint64_t last_sequence = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ReadPin pin = service.AcquireReadView();
        if (!pin) continue;
        CheckViewInvariants(*pin);
        // Publication order is monotone per reader.
        ASSERT_GE(pin->sequence(), last_sequence);
        last_sequence = pin->sequence();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int e = 0; e < 40; ++e) {
    IngestGroupEpoch(&service, e, /*round=*/false);
    if (e % 8 == 7) service.Flush();
  }
  service.Flush();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);

  ReadPin final_pin = service.AcquireReadView();
  ASSERT_TRUE(final_pin);
  EXPECT_EQ(final_pin->CanonicalClusters(), service.GlobalClusters());
}

TEST(ReadPath, ReadsStayConsistentAcrossMigrations) {
  ShardedDynamicCService service(ReadServiceOptions(2), nullptr,
                                 MakeFactory());
  std::vector<ObjectId> changed = service.ApplyOperations(GroupAdds(6, 3));
  service.ObserveBatchRound(changed);
  service.CloseEpoch();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ReadPin pin = service.AcquireReadView();
        if (!pin) continue;
        CheckViewInvariants(*pin);
      }
    });
  }

  // Shuttle group 0 between the shards while readers hammer the views.
  const uint64_t group = GroupKeyOf(0);
  for (int i = 0; i < 10; ++i) {
    service.MigrateGroup(group, static_cast<uint32_t>(i % 2));
    service.CloseEpoch();
  }
  service.Flush();
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  ReadPin pin = service.AcquireReadView();
  ASSERT_TRUE(pin);
  EXPECT_EQ(pin->CanonicalClusters(), service.GlobalClusters());
}

// --------------------------------------- followers, staleness, failover

TEST(ReadPath, FollowerServesEpochPinnedViewsWithStalenessBound) {
  const std::string dir = TempDir("follower_reads");
  ShardedDynamicCService primary(ReadServiceOptions(2), nullptr,
                                 MakeFactory());
  ReplicationSession repl(&primary, dir, {});
  ASSERT_TRUE(repl.Start().ok());

  for (int e = 0; e < 4; ++e) {
    std::vector<ObjectId> changed =
        primary.ApplyOperations(AddsForGroups({e}, kGroupSize));
    primary.ObserveBatchRound(changed);
    repl.SealEpoch();
  }

  Follower follower(dir, ReadServiceOptions(2), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUp().ok());
  ASSERT_TRUE(follower.service().serves_reads());

  // Caught up: the follower's view is byte-equal to the primary's.
  QueryClient follower_client(&follower.service(), "follower-0");
  ReadPin follower_pin = follower_client.Pin();
  ASSERT_TRUE(follower_pin);
  EXPECT_EQ(follower_pin->CanonicalClusters(), primary.GlobalClusters());

  // The primary advances two epochs the follower has not replayed.
  for (int e = 4; e < 6; ++e) {
    std::vector<ObjectId> changed =
        primary.ApplyOperations(AddsForGroups({e}, kGroupSize));
    primary.ObserveBatchRound(changed);
    repl.SealEpoch();
  }

  ReadRouter::Options router_options;
  router_options.max_staleness_epochs = 0;
  ReadRouter router(&primary, router_options);
  router.AddFollower(&follower.service(), "follower-0");
  const uint64_t frontier = router.Frontier();
  const uint64_t follower_epoch = follower_client.view_epoch();
  ASSERT_GT(frontier, follower_epoch);
  const uint64_t lag = frontier - follower_epoch;

  // Bound 0: every query must come back frontier-fresh (primary only).
  for (int q = 0; q < 8; ++q) {
    QueryClient::StatsResult result = router.Stats(/*max_staleness=*/0);
    ASSERT_TRUE(result.info.served);
    EXPECT_EQ(result.info.staleness, 0u);
    EXPECT_EQ(result.info.epoch, frontier);
  }
  EXPECT_EQ(router.rejected_stale(), 0u);

  // Bound >= lag: the follower is admissible; every answer still lands
  // inside its caller's bound, and round-robin reaches both targets.
  bool saw_follower = false;
  for (int q = 0; q < 8; ++q) {
    QueryClient::StatsResult result = router.Stats(lag);
    ASSERT_TRUE(result.info.served);
    EXPECT_LE(result.info.staleness, lag);
    if (result.info.epoch == follower_epoch) saw_follower = true;
  }
  EXPECT_TRUE(saw_follower);

  // Bound just under the lag: the follower must never serve.
  if (lag > 0) {
    for (int q = 0; q < 8; ++q) {
      QueryClient::StatsResult result = router.Stats(lag - 1);
      ASSERT_TRUE(result.info.served);
      EXPECT_EQ(result.info.epoch, frontier);
    }
  }
}

TEST(ReadPath, FollowerReadsIdenticalOverEitherTransport) {
  // Transport-parameterized leg: the read replica either tails the
  // primary's replication directory directly or a TCP mirror kept by
  // DeltaStreamClient. The pinned view it serves must be byte-equal to
  // the primary's clustering either way — the transport is invisible
  // to the read path.
  for (const char* transport : {"shared", "tcp"}) {
    SCOPED_TRACE(transport);
    const bool over_tcp = std::string(transport) == "tcp";
    const std::string dir =
        TempDir(std::string("transport_reads_") + transport);
    ShardedDynamicCService primary(ReadServiceOptions(2), nullptr,
                                   MakeFactory());
    ReplicationSession repl(&primary, dir, {});
    ASSERT_TRUE(repl.Start().ok());
    for (int e = 0; e < 4; ++e) {
      std::vector<ObjectId> changed =
          primary.ApplyOperations(AddsForGroups({e}, kGroupSize));
      primary.ObserveBatchRound(changed);
      repl.SealEpoch();
    }

    std::string follow_dir = dir;
    std::unique_ptr<net::ServerFrontEnd> front_end;
    if (over_tcp) {
      follow_dir = TempDir("transport_reads_mirror");
      net::ServerFrontEnd::Options fe_options;
      fe_options.replication_dir = dir;
      front_end = std::make_unique<net::ServerFrontEnd>(&primary, nullptr,
                                                        fe_options);
      ASSERT_TRUE(front_end->Start().ok());
      front_end->SetStreamDone(true);
      net::DeltaStreamClient::Options stream_options;
      stream_options.port = front_end->port();
      stream_options.mirror_dir = follow_dir;
      net::DeltaStreamClient stream(std::move(stream_options));
      ASSERT_TRUE(stream.TailUntilDone(nullptr).ok());
    }

    Follower follower(follow_dir, ReadServiceOptions(2), MakeFactory());
    ASSERT_TRUE(follower.Restore().ok());
    ASSERT_TRUE(follower.CatchUp().ok());
    ASSERT_TRUE(follower.service().serves_reads());

    QueryClient follower_client(&follower.service(), "replica");
    ReadPin pin = follower_client.Pin();
    ASSERT_TRUE(pin);
    EXPECT_EQ(pin->CanonicalClusters(), primary.GlobalClusters());
    EXPECT_EQ(follower.epoch(), primary.open_epoch() - 1);
    if (front_end != nullptr) front_end->Stop();
  }
}

TEST(ReadPath, PromotionHandsOffReadsDeterministically) {
  const std::string dir = TempDir("promotion_reads");
  auto primary = std::make_unique<ShardedDynamicCService>(
      ReadServiceOptions(2), nullptr, MakeFactory());
  auto repl =
      std::make_unique<ReplicationSession>(primary.get(), dir,
                                           ReplicationSession::Options{});
  ASSERT_TRUE(repl->Start().ok());
  for (int e = 0; e < 3; ++e) {
    std::vector<ObjectId> changed =
        primary->ApplyOperations(AddsForGroups({e}, kGroupSize));
    primary->ObserveBatchRound(changed);
    repl->SealEpoch();
  }

  Follower follower(dir, ReadServiceOptions(2), MakeFactory());
  ASSERT_TRUE(follower.Restore().ok());
  ASSERT_TRUE(follower.CatchUp().ok());

  ReadRouter router(&*primary, {});
  router.AddFollower(&follower.service(), "follower-0");

  // An in-flight read pins a replica-era view before the failover...
  ReadPin in_flight = follower.service().AcquireReadView();
  ASSERT_TRUE(in_flight);
  const auto replica_era = in_flight->CanonicalClusters();

  // ...then the primary dies and the follower is promoted.
  repl->Stop();
  primary.reset();
  std::unique_ptr<ShardedDynamicCService> promoted = follower.Promote();
  EXPECT_EQ(follower.last_read_epoch(), in_flight->epoch());
  router.DrainFence(follower.last_read_epoch(), promoted.get());
  EXPECT_EQ(router.drain_fence(), in_flight->epoch());
  EXPECT_EQ(router.num_targets(), 1u);

  // The drained read finishes against its pinned replica-era view, and
  // its epoch classifies it as replica-era against the fence.
  EXPECT_LE(in_flight->epoch(), router.drain_fence());
  EXPECT_EQ(in_flight->CanonicalClusters(), replica_era);
  // The read is done: release the pin. A pin must never outlive the
  // service whose registry issued it (`promoted` now owns that
  // registry, and it is destroyed before `in_flight` at scope exit).
  in_flight = ReadPin();

  // New queries hit the promoted primary, which keeps serving writes
  // and publishing fresh views.
  std::vector<ObjectId> changed =
      promoted->ApplyOperations(AddsForGroups({7}, kGroupSize));
  promoted->ObserveBatchRound(changed);
  promoted->CloseEpoch();
  QueryClient::StatsResult result = router.Stats();
  ASSERT_TRUE(result.info.served);
  EXPECT_GT(result.info.epoch, router.drain_fence());
  EXPECT_EQ(result.stats.objects, promoted->total_objects());
}

// ------------------------------------------------- reclamation stress

TEST(ReadPath, ViewReclamationUnderReaderPublisherStress) {
  ShardedDynamicCService service(ReadServiceOptions(2), nullptr,
                                 MakeFactory());
  IngestGroupEpoch(&service, 0, /*round=*/false);
  ReadViewRegistry* registry = service.read_views();
  ASSERT_NE(registry, nullptr);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 6; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        // Nested pins exercise every hazard entry of this thread's slot
        // plus the mutex-guarded fallback beyond kPinsPerSlot.
        std::vector<ReadPin> pins;
        for (int p = 0; p < ReadViewRegistry::kPinsPerSlot + 2; ++p) {
          pins.push_back(service.AcquireReadView());
        }
        for (const ReadPin& pin : pins) {
          if (pin) CheckViewInvariants(*pin);
        }
      }
    });
  }

  for (int e = 1; e < 60; ++e) IngestGroupEpoch(&service, e, /*round=*/false);
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // All pins dropped: one pass frees everything but the current view.
  registry->Reclaim();
  EXPECT_EQ(registry->retired_count(), 0u);
  EXPECT_EQ(registry->live_pins(), 0u);
  EXPECT_GT(registry->views_published(), 0u);
  EXPECT_EQ(registry->views_reclaimed() + 1, registry->views_published());
}

}  // namespace
}  // namespace dynamicc
