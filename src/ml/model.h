#ifndef DYNAMICC_ML_MODEL_H_
#define DYNAMICC_ML_MODEL_H_

#include <memory>
#include <vector>

#include "ml/sample.h"

namespace dynamicc {

/// Binary classifier with calibrated-ish probability output. DynamicC's
/// Merge and Split models implement this interface (§5); probabilities are
/// compared against the recall-first threshold θ (§5.4) and drive the merge
/// partner selection in Algorithm 1 (minimize P(C_new = 1)).
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;

  virtual const char* Name() const = 0;

  /// Trains the model on weighted samples; may be called repeatedly
  /// (retraining replaces the previous fit).
  virtual void Fit(const SampleSet& samples) = 0;

  /// P(label = 1 | features) in [0, 1]. Requires a prior Fit.
  virtual double PredictProbability(
      const std::vector<double>& features) const = 0;

  virtual bool is_fitted() const = 0;

  /// Fresh unfitted model of the same configuration.
  virtual std::unique_ptr<BinaryClassifier> Clone() const = 0;

  /// Hard prediction with decision threshold `theta` (Eq. 2).
  int Predict(const std::vector<double>& features, double theta = 0.5) const {
    return PredictProbability(features) >= theta ? 1 : 0;
  }
};

}  // namespace dynamicc

#endif  // DYNAMICC_ML_MODEL_H_
