#include "ml/scaler.h"

#include <cmath>

#include "util/logging.h"

namespace dynamicc {

void StandardScaler::Fit(const SampleSet& samples) {
  DYNAMICC_CHECK(!samples.empty());
  size_t dims = samples.front().features.size();
  means_.assign(dims, 0.0);
  stddevs_.assign(dims, 0.0);
  double n = static_cast<double>(samples.size());
  for (const Sample& sample : samples) {
    DYNAMICC_CHECK_EQ(sample.features.size(), dims);
    for (size_t d = 0; d < dims; ++d) means_[d] += sample.features[d];
  }
  for (size_t d = 0; d < dims; ++d) means_[d] /= n;
  for (const Sample& sample : samples) {
    for (size_t d = 0; d < dims; ++d) {
      double diff = sample.features[d] - means_[d];
      stddevs_[d] += diff * diff;
    }
  }
  for (size_t d = 0; d < dims; ++d) {
    stddevs_[d] = std::sqrt(stddevs_[d] / n);
    if (stddevs_[d] < 1e-12) stddevs_[d] = 1.0;  // constant feature
  }
}

void StandardScaler::Restore(std::vector<double> means,
                             std::vector<double> stddevs) {
  DYNAMICC_CHECK_EQ(means.size(), stddevs.size());
  means_ = std::move(means);
  stddevs_ = std::move(stddevs);
}

std::vector<double> StandardScaler::Transform(
    const std::vector<double>& features) const {
  DYNAMICC_CHECK(is_fitted());
  DYNAMICC_CHECK_EQ(features.size(), means_.size());
  std::vector<double> out(features.size());
  for (size_t d = 0; d < features.size(); ++d) {
    out[d] = (features[d] - means_[d]) / stddevs_[d];
  }
  return out;
}

}  // namespace dynamicc
