#include "ml/threshold.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.h"

namespace dynamicc {

double SelectRecallFirstThreshold(const BinaryClassifier& model,
                                  const SampleSet& training,
                                  const ThresholdPolicy& policy) {
  std::vector<double> positive_probs;
  for (const Sample& sample : training) {
    if (sample.label == 1) {
      positive_probs.push_back(model.PredictProbability(sample.features));
    }
  }
  if (positive_probs.empty()) return policy.floor;
  std::sort(positive_probs.begin(), positive_probs.end());
  double q = std::clamp(policy.positive_quantile, 0.0, 1.0);
  size_t index = static_cast<size_t>(
      q * static_cast<double>(positive_probs.size() - 1));
  double theta = positive_probs[index];
  return std::clamp(theta, policy.floor, policy.ceiling);
}

double RecallAtThreshold(const BinaryClassifier& model,
                         const SampleSet& samples, double theta) {
  double captured = 0.0, positives = 0.0;
  for (const Sample& sample : samples) {
    if (sample.label != 1) continue;
    positives += 1.0;
    if (model.Predict(sample.features, theta) == 1) captured += 1.0;
  }
  return positives == 0.0 ? 1.0 : captured / positives;
}

double AccuracyAtThreshold(const BinaryClassifier& model,
                           const SampleSet& samples, double theta) {
  if (samples.empty()) return 1.0;
  double correct = 0.0;
  for (const Sample& sample : samples) {
    if (model.Predict(sample.features, theta) == sample.label) correct += 1.0;
  }
  return correct / static_cast<double>(samples.size());
}

}  // namespace dynamicc
