#ifndef DYNAMICC_ML_DECISION_TREE_H_
#define DYNAMICC_ML_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "ml/model.h"

namespace dynamicc {

/// CART-style binary decision tree (Gini impurity, axis-aligned midpoint
/// splits, weighted samples). Leaf probability = weighted positive
/// fraction, smoothed with one pseudo-count per class so that θ-based
/// thresholding stays meaningful.
class DecisionTree final : public BinaryClassifier {
 public:
  struct Options {
    int max_depth = 6;
    int min_samples_leaf = 2;
  };

  /// Tree node (public for serialization; the vector layout is an
  /// implementation detail otherwise).
  struct Node {
    int feature = -1;        // -1 for leaf
    double threshold = 0.0;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    double probability = 0.5;  // leaf posterior
  };

  DecisionTree();
  explicit DecisionTree(Options options);

  const char* Name() const override { return "decision-tree"; }
  void Fit(const SampleSet& samples) override;
  double PredictProbability(
      const std::vector<double>& features) const override;
  bool is_fitted() const override { return !nodes_.empty(); }
  std::unique_ptr<BinaryClassifier> Clone() const override;

  size_t node_count() const { return nodes_.size(); }
  const std::vector<Node>& nodes() const { return nodes_; }

  /// Restores a fitted state directly (deserialization).
  void Restore(std::vector<Node> nodes);

 private:
  int Build(const SampleSet& samples, std::vector<size_t> indices, int depth);

  Options options_;
  std::vector<Node> nodes_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_ML_DECISION_TREE_H_
