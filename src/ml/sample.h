#ifndef DYNAMICC_ML_SAMPLE_H_
#define DYNAMICC_ML_SAMPLE_H_

#include <vector>

namespace dynamicc {

/// One training/evaluation sample for the Merge/Split models. Features are
/// the paper's §5.2 vectors (f1..f4 for Merge, f1..f3 for Split); `label`
/// is 1 when the cluster evolved (merged/split) and 0 otherwise; `weight`
/// carries the negative-sampling importance (§5.3).
struct Sample {
  std::vector<double> features;
  int label = 0;
  double weight = 1.0;
};

using SampleSet = std::vector<Sample>;

}  // namespace dynamicc

#endif  // DYNAMICC_ML_SAMPLE_H_
