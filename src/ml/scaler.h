#ifndef DYNAMICC_ML_SCALER_H_
#define DYNAMICC_ML_SCALER_H_

#include <vector>

#include "ml/sample.h"

namespace dynamicc {

/// Per-feature standardization (zero mean, unit variance). Linear models
/// fit it internally so that raw features (cluster sizes are unbounded)
/// don't dominate the gradient.
class StandardScaler {
 public:
  StandardScaler() = default;

  /// Computes means and standard deviations from `samples`.
  void Fit(const SampleSet& samples);

  /// Standardizes one feature vector (constant features pass through).
  std::vector<double> Transform(const std::vector<double>& features) const;

  bool is_fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

  /// Restores a fitted state directly (deserialization).
  void Restore(std::vector<double> means, std::vector<double> stddevs);

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_ML_SCALER_H_
