#ifndef DYNAMICC_ML_LOGISTIC_REGRESSION_H_
#define DYNAMICC_ML_LOGISTIC_REGRESSION_H_

#include <memory>
#include <vector>

#include "ml/model.h"
#include "ml/scaler.h"

namespace dynamicc {

/// L2-regularized logistic regression trained with full-batch gradient
/// descent on standardized features. The paper's default model (§7.1).
class LogisticRegression final : public BinaryClassifier {
 public:
  struct Options {
    int epochs = 300;
    double learning_rate = 0.5;
    double l2 = 1e-4;
  };

  LogisticRegression();
  explicit LogisticRegression(Options options);

  const char* Name() const override { return "logistic-regression"; }
  void Fit(const SampleSet& samples) override;
  double PredictProbability(
      const std::vector<double>& features) const override;
  bool is_fitted() const override { return fitted_; }
  std::unique_ptr<BinaryClassifier> Clone() const override;

  /// Learned weights on the *standardized* features (for the paper's remark
  /// about inspecting coefficient magnitudes, §6.2).
  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  const StandardScaler& scaler() const { return scaler_; }
  const Options& options() const { return options_; }

  /// Restores a fitted state directly (deserialization).
  void Restore(StandardScaler scaler, std::vector<double> weights,
               double bias);

 private:
  Options options_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  bool fitted_ = false;
};

}  // namespace dynamicc

#endif  // DYNAMICC_ML_LOGISTIC_REGRESSION_H_
