#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace dynamicc {

namespace {

struct WeightTotals {
  double positive = 0.0;
  double total = 0.0;
};

double Gini(const WeightTotals& t) {
  if (t.total <= 0.0) return 0.0;
  double p = t.positive / t.total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree::DecisionTree() : DecisionTree(Options{}) {}

DecisionTree::DecisionTree(Options options) : options_(options) {
  DYNAMICC_CHECK_GT(options.max_depth, 0);
  DYNAMICC_CHECK_GT(options.min_samples_leaf, 0);
}

void DecisionTree::Fit(const SampleSet& samples) {
  DYNAMICC_CHECK(!samples.empty());
  nodes_.clear();
  std::vector<size_t> indices(samples.size());
  for (size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  Build(samples, std::move(indices), 0);
}

int DecisionTree::Build(const SampleSet& samples, std::vector<size_t> indices,
                        int depth) {
  WeightTotals totals;
  for (size_t i : indices) {
    totals.total += samples[i].weight;
    if (samples[i].label == 1) totals.positive += samples[i].weight;
  }

  int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  // Laplace-smoothed leaf posterior (also used as fallback below).
  nodes_[node_index].probability =
      (totals.positive + 1.0) / (totals.total + 2.0);

  bool pure = totals.positive <= 0.0 || totals.positive >= totals.total;
  if (depth >= options_.max_depth || pure ||
      indices.size() < 2 * static_cast<size_t>(options_.min_samples_leaf)) {
    return node_index;
  }

  size_t dims = samples[indices.front()].features.size();
  double parent_gini = Gini(totals);
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<size_t> sorted = indices;
  for (size_t d = 0; d < dims; ++d) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return samples[a].features[d] < samples[b].features[d];
    });
    WeightTotals left;
    for (size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
      const Sample& sample = samples[sorted[pos]];
      left.total += sample.weight;
      if (sample.label == 1) left.positive += sample.weight;
      double here = sample.features[d];
      double next = samples[sorted[pos + 1]].features[d];
      if (next <= here) continue;  // no boundary between equal values
      if (pos + 1 < static_cast<size_t>(options_.min_samples_leaf) ||
          sorted.size() - pos - 1 <
              static_cast<size_t>(options_.min_samples_leaf)) {
        continue;
      }
      double midpoint = 0.5 * (here + next);
      // With nearly-equal values the midpoint can round onto a neighbor,
      // which would produce an empty split side.
      if (!(here < midpoint && midpoint < next)) continue;
      WeightTotals right{totals.positive - left.positive,
                         totals.total - left.total};
      double weighted = (left.total * Gini(left) + right.total * Gini(right)) /
                        totals.total;
      double gain = parent_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(d);
        best_threshold = midpoint;
      }
    }
  }

  if (best_feature < 0) return node_index;  // no useful split

  std::vector<size_t> left_indices, right_indices;
  for (size_t i : indices) {
    if (samples[i].features[best_feature] <= best_threshold) {
      left_indices.push_back(i);
    } else {
      right_indices.push_back(i);
    }
  }
  DYNAMICC_CHECK(!left_indices.empty() && !right_indices.empty());

  int left = Build(samples, std::move(left_indices), depth + 1);
  int right = Build(samples, std::move(right_indices), depth + 1);
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::PredictProbability(
    const std::vector<double>& features) const {
  DYNAMICC_CHECK(is_fitted());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& n = nodes_[node];
    DYNAMICC_CHECK_LT(static_cast<size_t>(n.feature), features.size());
    node = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[node].probability;
}

void DecisionTree::Restore(std::vector<Node> nodes) {
  DYNAMICC_CHECK(!nodes.empty());
  for (const Node& node : nodes) {
    if (node.feature >= 0) {
      DYNAMICC_CHECK_GE(node.left, 0);
      DYNAMICC_CHECK_LT(static_cast<size_t>(node.left), nodes.size());
      DYNAMICC_CHECK_GE(node.right, 0);
      DYNAMICC_CHECK_LT(static_cast<size_t>(node.right), nodes.size());
    }
  }
  nodes_ = std::move(nodes);
}

std::unique_ptr<BinaryClassifier> DecisionTree::Clone() const {
  return std::make_unique<DecisionTree>(options_);
}

}  // namespace dynamicc
