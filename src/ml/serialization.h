#ifndef DYNAMICC_ML_SERIALIZATION_H_
#define DYNAMICC_ML_SERIALIZATION_H_

#include <istream>
#include <memory>
#include <ostream>

#include "ml/model.h"
#include "util/status.h"

namespace dynamicc {

/// Persists a fitted classifier in a line-oriented text format (the first
/// line is the model name, e.g. "logistic-regression"). Supported models:
/// LogisticRegression, LinearSvm, DecisionTree. A deployment can train
/// DynamicC's models once, save them, and warm-start later sessions
/// without re-observing batch rounds.
Status SaveClassifier(const BinaryClassifier& model, std::ostream& os);

/// Restores a classifier saved by SaveClassifier. On failure returns null
/// and fills `status` (when non-null) with the reason.
std::unique_ptr<BinaryClassifier> LoadClassifier(std::istream& is,
                                                 Status* status = nullptr);

}  // namespace dynamicc

#endif  // DYNAMICC_ML_SERIALIZATION_H_
