#ifndef DYNAMICC_ML_SERIALIZATION_H_
#define DYNAMICC_ML_SERIALIZATION_H_

#include <istream>
#include <memory>
#include <ostream>

#include "ml/model.h"
#include "util/status.h"

namespace dynamicc {

/// Persists a fitted classifier in a line-oriented text format (the first
/// line is the model name, e.g. "logistic-regression"). Supported models:
/// LogisticRegression, LinearSvm, DecisionTree. A deployment can train
/// DynamicC's models once, save them, and warm-start later sessions
/// without re-observing batch rounds.
Status SaveClassifier(const BinaryClassifier& model, std::ostream& os);

/// Restores a classifier saved by SaveClassifier. On failure returns null
/// and fills `status` (when non-null) with the reason.
std::unique_ptr<BinaryClassifier> LoadClassifier(std::istream& is,
                                                 Status* status = nullptr);

/// Restores saved parameters *into* an existing model object, which must
/// be of the same concrete type the stream was saved from. Warm restart
/// needs this form: a session's models are referenced by raw pointer
/// from deep inside DynamicC, so restoring state in place keeps every
/// pointer valid where LoadClassifier's fresh object would not.
Status LoadClassifierInto(std::istream& is, BinaryClassifier* model);

/// Persists a training-sample set exactly (labels, weights and features
/// round-trip bit-for-bit), so a restored trainer refits the same models
/// the never-restarted one would.
Status SaveSampleSet(const SampleSet& samples, std::ostream& os);

/// Restores a sample set saved by SaveSampleSet (replacing `samples`).
Status LoadSampleSet(std::istream& is, SampleSet* samples);

}  // namespace dynamicc

#endif  // DYNAMICC_ML_SERIALIZATION_H_
