#ifndef DYNAMICC_ML_LINEAR_SVM_H_
#define DYNAMICC_ML_LINEAR_SVM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/model.h"
#include "ml/scaler.h"

namespace dynamicc {

/// Soft-margin linear SVM trained with the Pegasos stochastic subgradient
/// method, with a Platt-style sigmoid fitted over the margins so that
/// PredictProbability is usable by DynamicC's θ mechanism.
class LinearSvm final : public BinaryClassifier {
 public:
  struct Options {
    int epochs = 40;
    double lambda = 1e-3;
    uint64_t seed = 7;
    /// Gradient steps for the Platt sigmoid calibration.
    int calibration_steps = 200;
  };

  LinearSvm();
  explicit LinearSvm(Options options);

  const char* Name() const override { return "linear-svm"; }
  void Fit(const SampleSet& samples) override;
  double PredictProbability(
      const std::vector<double>& features) const override;
  bool is_fitted() const override { return fitted_; }
  std::unique_ptr<BinaryClassifier> Clone() const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }
  double platt_a() const { return platt_a_; }
  double platt_b() const { return platt_b_; }
  const StandardScaler& scaler() const { return scaler_; }

  /// Restores a fitted state directly (deserialization).
  void Restore(StandardScaler scaler, std::vector<double> weights,
               double bias, double platt_a, double platt_b);

 private:
  double Margin(const std::vector<double>& standardized) const;

  Options options_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
  // Platt calibration: P(y=1 | margin m) = sigmoid(platt_a_ * m + platt_b_).
  double platt_a_ = 1.0;
  double platt_b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace dynamicc

#endif  // DYNAMICC_ML_LINEAR_SVM_H_
