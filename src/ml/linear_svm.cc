#include "ml/linear_svm.h"

#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace dynamicc {

namespace {
double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

LinearSvm::LinearSvm() : LinearSvm(Options{}) {}

LinearSvm::LinearSvm(Options options) : options_(options) {
  DYNAMICC_CHECK_GT(options.epochs, 0);
  DYNAMICC_CHECK_GT(options.lambda, 0.0);
}

double LinearSvm::Margin(const std::vector<double>& standardized) const {
  double m = bias_;
  for (size_t d = 0; d < standardized.size(); ++d) {
    m += weights_[d] * standardized[d];
  }
  return m;
}

void LinearSvm::Fit(const SampleSet& samples) {
  DYNAMICC_CHECK(!samples.empty());
  scaler_.Fit(samples);
  size_t dims = samples.front().features.size();
  weights_.assign(dims, 0.0);
  bias_ = 0.0;

  std::vector<std::vector<double>> x;
  x.reserve(samples.size());
  for (const Sample& sample : samples) {
    x.push_back(scaler_.Transform(sample.features));
  }

  // Pegasos: at step t, eta = 1 / (lambda * t); hinge subgradient updates.
  Rng rng(options_.seed);
  size_t t = 0;
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::vector<size_t> order = rng.SampleIndices(samples.size(),
                                                  samples.size());
    for (size_t i : order) {
      ++t;
      double eta = 1.0 / (options_.lambda * static_cast<double>(t));
      double y = samples[i].label == 1 ? 1.0 : -1.0;
      double margin = Margin(x[i]);
      double scale = 1.0 - eta * options_.lambda;
      for (double& w : weights_) w *= scale;
      if (y * margin < 1.0) {
        double step = eta * y * samples[i].weight;
        for (size_t d = 0; d < dims; ++d) weights_[d] += step * x[i][d];
        bias_ += step;
      }
    }
  }

  // Platt-style calibration of margins -> probabilities (1-D logistic fit).
  platt_a_ = 1.0;
  platt_b_ = 0.0;
  for (int step = 0; step < options_.calibration_steps; ++step) {
    double grad_a = 0.0, grad_b = 0.0, total_weight = 0.0;
    for (size_t i = 0; i < samples.size(); ++i) {
      double m = Margin(x[i]);
      double p = Sigmoid(platt_a_ * m + platt_b_);
      double error = (p - static_cast<double>(samples[i].label)) *
                     samples[i].weight;
      grad_a += error * m;
      grad_b += error;
      total_weight += samples[i].weight;
    }
    platt_a_ -= 0.1 * grad_a / total_weight;
    platt_b_ -= 0.1 * grad_b / total_weight;
  }
  fitted_ = true;
}

double LinearSvm::PredictProbability(
    const std::vector<double>& features) const {
  DYNAMICC_CHECK(fitted_);
  double m = Margin(scaler_.Transform(features));
  return Sigmoid(platt_a_ * m + platt_b_);
}

void LinearSvm::Restore(StandardScaler scaler, std::vector<double> weights,
                        double bias, double platt_a, double platt_b) {
  DYNAMICC_CHECK(scaler.is_fitted());
  DYNAMICC_CHECK_EQ(scaler.means().size(), weights.size());
  scaler_ = std::move(scaler);
  weights_ = std::move(weights);
  bias_ = bias;
  platt_a_ = platt_a;
  platt_b_ = platt_b;
  fitted_ = true;
}

std::unique_ptr<BinaryClassifier> LinearSvm::Clone() const {
  return std::make_unique<LinearSvm>(options_);
}

}  // namespace dynamicc
