#include "ml/serialization.h"

#include <algorithm>
#include <iomanip>
#include <string>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/linear_svm.h"
#include "ml/logistic_regression.h"
#include "ml/scaler.h"

namespace dynamicc {

namespace {

constexpr int kPrecision = 17;  // round-trips doubles exactly

void WriteVector(std::ostream& os, const std::vector<double>& values) {
  os << values.size();
  for (double v : values) os << " " << v;
  os << "\n";
}

/// Declared counts come from (possibly hand-edited) streams, so growth
/// is capped at what was actually parsed: a bogus huge count fails on
/// the first missing element instead of aborting in a giant resize.
constexpr size_t kReserveCap = 4096;

bool ReadVector(std::istream& is, std::vector<double>* values) {
  size_t count = 0;
  if (!(is >> count)) return false;
  values->clear();
  values->reserve(std::min(count, kReserveCap));
  for (size_t i = 0; i < count; ++i) {
    double value = 0.0;
    if (!(is >> value)) return false;
    values->push_back(value);
  }
  return true;
}

bool ReadScaler(std::istream& is, StandardScaler* scaler) {
  std::vector<double> means, stddevs;
  if (!ReadVector(is, &means) || !ReadVector(is, &stddevs)) return false;
  if (means.size() != stddevs.size()) return false;
  scaler->Restore(std::move(means), std::move(stddevs));
  return true;
}

void SaveLogisticRegression(const LogisticRegression& model,
                            std::ostream& os) {
  os << model.Name() << "\n";
  WriteVector(os, model.scaler().means());
  WriteVector(os, model.scaler().stddevs());
  WriteVector(os, model.weights());
  os << model.bias() << "\n";
}

void SaveLinearSvm(const LinearSvm& model, std::ostream& os) {
  os << model.Name() << "\n";
  WriteVector(os, model.scaler().means());
  WriteVector(os, model.scaler().stddevs());
  WriteVector(os, model.weights());
  os << model.bias() << " " << model.platt_a() << " " << model.platt_b()
     << "\n";
}

void SaveDecisionTree(const DecisionTree& model, std::ostream& os) {
  os << model.Name() << "\n";
  os << model.nodes().size() << "\n";
  for (const DecisionTree::Node& node : model.nodes()) {
    os << node.feature << " " << node.threshold << " " << node.left << " "
       << node.right << " " << node.probability << "\n";
  }
}

std::unique_ptr<BinaryClassifier> LoadLogisticRegression(std::istream& is,
                                                         Status* status) {
  StandardScaler scaler;
  std::vector<double> weights;
  double bias = 0.0;
  if (!ReadScaler(is, &scaler) || !ReadVector(is, &weights) ||
      !(is >> bias) || scaler.means().size() != weights.size()) {
    if (status != nullptr) {
      *status = Status::InvalidArgument("malformed logistic-regression data");
    }
    return nullptr;
  }
  auto model = std::make_unique<LogisticRegression>();
  model->Restore(std::move(scaler), std::move(weights), bias);
  return model;
}

std::unique_ptr<BinaryClassifier> LoadLinearSvm(std::istream& is,
                                                Status* status) {
  StandardScaler scaler;
  std::vector<double> weights;
  double bias = 0.0, platt_a = 1.0, platt_b = 0.0;
  if (!ReadScaler(is, &scaler) || !ReadVector(is, &weights) ||
      !(is >> bias >> platt_a >> platt_b) ||
      scaler.means().size() != weights.size()) {
    if (status != nullptr) {
      *status = Status::InvalidArgument("malformed linear-svm data");
    }
    return nullptr;
  }
  auto model = std::make_unique<LinearSvm>();
  model->Restore(std::move(scaler), std::move(weights), bias, platt_a,
                 platt_b);
  return model;
}

std::unique_ptr<BinaryClassifier> LoadDecisionTree(std::istream& is,
                                                   Status* status) {
  size_t count = 0;
  if (!(is >> count) || count == 0) {
    if (status != nullptr) {
      *status = Status::InvalidArgument("malformed decision-tree data");
    }
    return nullptr;
  }
  std::vector<DecisionTree::Node> nodes;
  nodes.reserve(std::min(count, kReserveCap));
  for (size_t i = 0; i < count; ++i) {
    DecisionTree::Node node;
    if (!(is >> node.feature >> node.threshold >> node.left >> node.right >>
          node.probability)) {
      if (status != nullptr) {
        *status = Status::InvalidArgument("truncated decision-tree nodes");
      }
      return nullptr;
    }
    int limit = static_cast<int>(count);
    if (node.feature >= 0 &&
        (node.left < 0 || node.left >= limit || node.right < 0 ||
         node.right >= limit)) {
      if (status != nullptr) {
        *status = Status::InvalidArgument("decision-tree child out of range");
      }
      return nullptr;
    }
    nodes.push_back(node);
  }
  auto model = std::make_unique<DecisionTree>();
  model->Restore(std::move(nodes));
  return model;
}

}  // namespace

Status SaveClassifier(const BinaryClassifier& model, std::ostream& os) {
  if (!model.is_fitted()) {
    return Status::InvalidArgument("cannot save an unfitted model");
  }
  os << std::setprecision(kPrecision);
  if (const auto* lr = dynamic_cast<const LogisticRegression*>(&model)) {
    SaveLogisticRegression(*lr, os);
  } else if (const auto* svm = dynamic_cast<const LinearSvm*>(&model)) {
    SaveLinearSvm(*svm, os);
  } else if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
    SaveDecisionTree(*tree, os);
  } else {
    return Status::InvalidArgument(std::string("unsupported model type: ") +
                                   model.Name());
  }
  if (!os.good()) return Status::IoError("write failed");
  return Status::Ok();
}

std::unique_ptr<BinaryClassifier> LoadClassifier(std::istream& is,
                                                 Status* status) {
  if (status != nullptr) *status = Status::Ok();
  std::string name;
  if (!(is >> name)) {
    if (status != nullptr) {
      *status = Status::InvalidArgument("empty model stream");
    }
    return nullptr;
  }
  if (name == "logistic-regression") return LoadLogisticRegression(is, status);
  if (name == "linear-svm") return LoadLinearSvm(is, status);
  if (name == "decision-tree") return LoadDecisionTree(is, status);
  if (status != nullptr) {
    *status = Status::InvalidArgument("unknown model type: " + name);
  }
  return nullptr;
}

Status LoadClassifierInto(std::istream& is, BinaryClassifier* model) {
  Status status;
  std::unique_ptr<BinaryClassifier> loaded = LoadClassifier(is, &status);
  if (loaded == nullptr) return status;
  if (std::string(loaded->Name()) != model->Name()) {
    return Status::InvalidArgument(
        std::string("model type mismatch: stream holds ") + loaded->Name() +
        ", target is " + model->Name());
  }
  if (auto* lr = dynamic_cast<LogisticRegression*>(model)) {
    auto& src = static_cast<LogisticRegression&>(*loaded);
    lr->Restore(src.scaler(), src.weights(), src.bias());
  } else if (auto* svm = dynamic_cast<LinearSvm*>(model)) {
    auto& src = static_cast<LinearSvm&>(*loaded);
    svm->Restore(src.scaler(), src.weights(), src.bias(), src.platt_a(),
                 src.platt_b());
  } else if (auto* tree = dynamic_cast<DecisionTree*>(model)) {
    auto& src = static_cast<DecisionTree&>(*loaded);
    tree->Restore(src.nodes());
  } else {
    return Status::InvalidArgument(
        std::string("unsupported target model type: ") + model->Name());
  }
  return Status::Ok();
}

Status SaveSampleSet(const SampleSet& samples, std::ostream& os) {
  os << std::setprecision(kPrecision);
  os << "samples " << samples.size() << "\n";
  for (const Sample& sample : samples) {
    os << sample.label << " " << sample.weight << " "
       << sample.features.size();
    for (double feature : sample.features) os << " " << feature;
    os << "\n";
  }
  if (!os.good()) return Status::IoError("write failed");
  return Status::Ok();
}

Status LoadSampleSet(std::istream& is, SampleSet* samples) {
  std::string tag;
  size_t count = 0;
  if (!(is >> tag >> count) || tag != "samples") {
    return Status::InvalidArgument("malformed sample-set header");
  }
  SampleSet fresh;
  fresh.reserve(std::min(count, kReserveCap));
  for (size_t i = 0; i < count; ++i) {
    Sample sample;
    size_t features = 0;
    if (!(is >> sample.label >> sample.weight >> features)) {
      return Status::InvalidArgument("truncated sample entry");
    }
    sample.features.reserve(std::min(features, kReserveCap));
    for (size_t f = 0; f < features; ++f) {
      double value = 0.0;
      if (!(is >> value)) {
        return Status::InvalidArgument("truncated sample features");
      }
      sample.features.push_back(value);
    }
    fresh.push_back(std::move(sample));
  }
  *samples = std::move(fresh);
  return Status::Ok();
}

}  // namespace dynamicc
