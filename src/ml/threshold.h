#ifndef DYNAMICC_ML_THRESHOLD_H_
#define DYNAMICC_ML_THRESHOLD_H_

#include "ml/model.h"
#include "ml/sample.h"

namespace dynamicc {

/// Recall-first decision-threshold selection (§5.4): θ is set to the
/// minimum predicted probability over the *positive training samples*, so
/// that every positive sample is recovered (100% training recall) while θ
/// stays as large as possible (fewest extra clusters to verify).
struct ThresholdPolicy {
  /// Quantile of positive-sample probabilities to use as θ. 0 = strict
  /// minimum (the paper's rule); a small value (e.g. 0.05) tolerates a few
  /// outlier positives in exchange for fewer false positives.
  double positive_quantile = 0.0;
  /// θ is clamped into [floor, ceiling]. The floor keeps the predictor from
  /// degenerating into "predict everything positive" when one positive
  /// sample scored near zero.
  double floor = 0.02;
  double ceiling = 0.95;
};

/// Computes θ for a fitted model over the training set. Returns `floor`
/// when there are no positive samples (everything will be re-checked only
/// if the model is confident).
double SelectRecallFirstThreshold(const BinaryClassifier& model,
                                  const SampleSet& training,
                                  const ThresholdPolicy& policy);

/// Training-set recall of hard predictions at threshold theta.
double RecallAtThreshold(const BinaryClassifier& model,
                         const SampleSet& samples, double theta);

/// Training-set accuracy of hard predictions at threshold theta.
double AccuracyAtThreshold(const BinaryClassifier& model,
                           const SampleSet& samples, double theta);

}  // namespace dynamicc

#endif  // DYNAMICC_ML_THRESHOLD_H_
