#include "ml/logistic_regression.h"

#include <cmath>

#include "util/logging.h"

namespace dynamicc {

namespace {
double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

LogisticRegression::LogisticRegression()
    : LogisticRegression(Options{}) {}

LogisticRegression::LogisticRegression(Options options) : options_(options) {
  DYNAMICC_CHECK_GT(options.epochs, 0);
  DYNAMICC_CHECK_GT(options.learning_rate, 0.0);
}

void LogisticRegression::Fit(const SampleSet& samples) {
  DYNAMICC_CHECK(!samples.empty());
  scaler_.Fit(samples);
  size_t dims = samples.front().features.size();
  weights_.assign(dims, 0.0);
  bias_ = 0.0;

  std::vector<std::vector<double>> x;
  x.reserve(samples.size());
  double total_weight = 0.0;
  for (const Sample& sample : samples) {
    x.push_back(scaler_.Transform(sample.features));
    total_weight += sample.weight;
  }
  DYNAMICC_CHECK_GT(total_weight, 0.0);

  std::vector<double> gradient(dims);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    std::fill(gradient.begin(), gradient.end(), 0.0);
    double bias_gradient = 0.0;
    for (size_t i = 0; i < samples.size(); ++i) {
      double z = bias_;
      for (size_t d = 0; d < dims; ++d) z += weights_[d] * x[i][d];
      double error =
          (Sigmoid(z) - static_cast<double>(samples[i].label)) *
          samples[i].weight;
      for (size_t d = 0; d < dims; ++d) gradient[d] += error * x[i][d];
      bias_gradient += error;
    }
    for (size_t d = 0; d < dims; ++d) {
      gradient[d] = gradient[d] / total_weight + options_.l2 * weights_[d];
      weights_[d] -= options_.learning_rate * gradient[d];
    }
    bias_ -= options_.learning_rate * bias_gradient / total_weight;
  }
  fitted_ = true;
}

double LogisticRegression::PredictProbability(
    const std::vector<double>& features) const {
  DYNAMICC_CHECK(fitted_);
  std::vector<double> x = scaler_.Transform(features);
  double z = bias_;
  for (size_t d = 0; d < x.size(); ++d) z += weights_[d] * x[d];
  return Sigmoid(z);
}

void LogisticRegression::Restore(StandardScaler scaler,
                                 std::vector<double> weights, double bias) {
  DYNAMICC_CHECK(scaler.is_fitted());
  DYNAMICC_CHECK_EQ(scaler.means().size(), weights.size());
  scaler_ = std::move(scaler);
  weights_ = std::move(weights);
  bias_ = bias;
  fitted_ = true;
}

std::unique_ptr<BinaryClassifier> LogisticRegression::Clone() const {
  return std::make_unique<LogisticRegression>(options_);
}

}  // namespace dynamicc
