#ifndef DYNAMICC_CLUSTER_ENGINE_H_
#define DYNAMICC_CLUSTER_ENGINE_H_

#include <vector>

#include "cluster/cluster_stats.h"
#include "cluster/clustering.h"
#include "data/similarity_graph.h"
#include "data/types.h"

namespace dynamicc {

/// Owns a Clustering plus its ClusterStatsTracker and keeps the two
/// consistent across every mutation. All clustering algorithms (batch,
/// baselines, DynamicC) mutate the partition exclusively through this
/// engine, so similarity aggregates are always valid.
class ClusteringEngine {
 public:
  /// The graph must outlive the engine.
  explicit ClusteringEngine(const SimilarityGraph* graph);

  ClusteringEngine(const ClusteringEngine&) = delete;
  ClusteringEngine& operator=(const ClusteringEngine&) = delete;

  // ------------------------------------------------------ object lifecycle

  /// Places a (graph-registered) object into a fresh singleton cluster.
  /// This is the initial processing for Add operations (§6.1).
  ClusterId AddObjectAsSingleton(ObjectId object);

  /// Removes the object from its cluster (Remove operation, §6.1). The
  /// object must still be present in the similarity graph when this is
  /// called so that aggregates can be decremented.
  void RemoveObject(ObjectId object);

  // ------------------------------------------------------- structural ops

  /// Merges cluster `b` into cluster `a` (or the other way around when `b`
  /// is larger; the smaller side is moved). Returns the surviving cluster.
  ClusterId Merge(ClusterId a, ClusterId b);

  /// Moves `part` (a strict, non-empty subset of `cluster`'s members) into
  /// a new cluster; returns the new cluster's id.
  ClusterId SplitOut(ClusterId cluster, const std::vector<ObjectId>& part);

  /// Moves one object into an existing target cluster.
  void Move(ObjectId object, ClusterId to);

  // --------------------------------------------------------- bulk control

  /// Clears the partition and puts every graph object in its own cluster
  /// (the initial clustering for batch runs from scratch, §4.2).
  void InitSingletons();

  /// Replaces the partition with a copy of `clustering` and rebuilds the
  /// aggregates. Used to adopt a previous round's result (GreedySet /
  /// DynamicSet scenarios, §7.1).
  void SetClustering(const Clustering& clustering);

  /// Removes everything.
  void Reset();

  // ------------------------------------------------------- group surgery

  /// Result of ExtractGroupState: the detached sub-partition of the
  /// extracted objects, grouped by the cluster they came from.
  struct GroupExtract {
    /// One entry per source cluster that lost members, members ascending,
    /// entries ordered by source cluster id — a deterministic, id-free
    /// form that AdoptGroupState on another engine can re-attach.
    std::vector<std::vector<ObjectId>> clusters;
    /// Source clusters that also kept members outside the extracted set
    /// (the extraction cut through a cluster, which only happens when
    /// similarity edges cross blocking groups). The survivors may no
    /// longer be a fixpoint and should be re-validated by a round.
    size_t split_sources = 0;
  };

  /// Detaches `objects` (all currently assigned) from the partition and
  /// returns their induced sub-partition. Aggregates are maintained
  /// incrementally, so the objects must still carry their edges in the
  /// similarity graph when this runs — extract *before* removing them
  /// from the graph. The state-surgery half of live group migration: a
  /// blocking group leaves one shard engine with its cluster memberships
  /// intact instead of being re-clustered from scratch.
  GroupExtract ExtractGroupState(const std::vector<ObjectId>& objects);

  /// Re-attaches a previously extracted sub-partition: every inner list
  /// becomes one fresh cluster. Objects must be unassigned and already
  /// registered in this engine's similarity graph (aggregates are
  /// derived from its edges) — adopt *after* the graph knows them.
  void AdoptGroupState(const std::vector<std::vector<ObjectId>>& clusters);

  // -------------------------------------------------------------- access

  const Clustering& clustering() const { return clustering_; }
  const ClusterStatsTracker& stats() const { return stats_; }
  const SimilarityGraph& graph() const { return *graph_; }

  /// Copy of the current partition (cheap snapshot for scenario replays).
  Clustering Snapshot() const { return clustering_; }

 private:
  void AssignTracked(ObjectId object, ClusterId cluster);
  void UnassignTracked(ObjectId object);

  const SimilarityGraph* graph_;
  Clustering clustering_;
  ClusterStatsTracker stats_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CLUSTER_ENGINE_H_
