#ifndef DYNAMICC_CLUSTER_CLUSTERING_H_
#define DYNAMICC_CLUSTER_CLUSTERING_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/types.h"

namespace dynamicc {

/// Partition of a set of objects into clusters. Pure membership structure:
/// no similarity knowledge lives here (see ClusterStatsTracker for that).
/// Cluster ids are assigned monotonically and never reused within one
/// instance. Copyable so callers can snapshot clusterings cheaply.
class Clustering {
 public:
  Clustering();
  Clustering(const Clustering& other);
  Clustering& operator=(const Clustering& other);

  /// Creates an empty cluster and returns its id.
  ClusterId CreateCluster();

  /// Creates a cluster holding exactly `object` (object must be unassigned).
  ClusterId CreateSingleton(ObjectId object);

  /// Creates an empty cluster with a *caller-chosen* id, advancing the
  /// id counter past it. Ids must be presented in strictly increasing
  /// order (`id >= next id`), which is exactly what replaying a saved
  /// clustering in ascending cluster-id order provides. Restoring exact
  /// ids (gaps included) matters for warm restart: merge/split candidate
  /// enumeration walks clusters in id order, so a restored engine only
  /// behaves byte-identically to the never-restarted one if its cluster
  /// ids — not just its member sets — survive the round trip.
  ClusterId CreateClusterWithId(ClusterId id);

  /// Advances the id counter to `next` (which must not go backwards)
  /// without creating a cluster — restores the counter position left by
  /// clusters that were created and later deleted past the largest
  /// surviving id.
  void ReserveClusterIds(ClusterId next);

  /// Assigns an unassigned object to an existing cluster.
  void Assign(ObjectId object, ClusterId cluster);

  /// Unassigns the object from its cluster; if the cluster becomes empty it
  /// is deleted. Returns the cluster the object was in.
  ClusterId Unassign(ObjectId object);

  /// Cluster of `object`, or kInvalidCluster if unassigned.
  ClusterId ClusterOf(ObjectId object) const;

  bool HasCluster(ClusterId cluster) const;

  /// Members of a cluster; the cluster must exist.
  const std::unordered_set<ObjectId>& Members(ClusterId cluster) const;

  size_t ClusterSize(ClusterId cluster) const;

  /// All cluster ids, ascending.
  std::vector<ClusterId> ClusterIds() const;

  /// All assigned objects, ascending.
  std::vector<ObjectId> AssignedObjects() const;

  size_t num_clusters() const { return clusters_.size(); }
  size_t num_objects() const { return assignment_.size(); }

  /// The id the next CreateCluster call would return. Persisted by the
  /// id-exact serialization so restored engines keep assigning the same
  /// ids the never-restarted run would (deleted-tail clusters leave the
  /// counter past the largest live id).
  ClusterId next_cluster_id() const { return next_cluster_id_; }

  /// Monotonic per-cluster membership version: bumped every time an object
  /// enters or leaves the cluster. Lets callers cache derived per-cluster
  /// values (e.g. centroids) and detect staleness cheaply.
  uint64_t ClusterVersion(ClusterId cluster) const;

  /// Process-unique instance tag, refreshed on copy construction and copy
  /// assignment. Caches keyed by (epoch, cluster, version) can never read
  /// stale values across distinct clusterings, whose ids and versions
  /// would otherwise collide.
  uint64_t epoch() const { return epoch_; }

  /// Clusters as sorted member lists, sorted by first member — a canonical
  /// form independent of cluster ids, used by evaluation and evolution
  /// diffing.
  std::vector<std::vector<ObjectId>> CanonicalClusters() const;

 private:
  ClusterId next_cluster_id_ = 0;
  uint64_t epoch_ = 0;
  uint64_t version_counter_ = 0;
  std::unordered_map<ClusterId, std::unordered_set<ObjectId>> clusters_;
  std::unordered_map<ClusterId, uint64_t> versions_;
  std::unordered_map<ObjectId, ClusterId> assignment_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CLUSTER_CLUSTERING_H_
