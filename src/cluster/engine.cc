#include "cluster/engine.h"

#include "util/logging.h"

namespace dynamicc {

ClusteringEngine::ClusteringEngine(const SimilarityGraph* graph)
    : graph_(graph), stats_(&clustering_, graph) {
  DYNAMICC_CHECK(graph != nullptr);
}

void ClusteringEngine::AssignTracked(ObjectId object, ClusterId cluster) {
  clustering_.Assign(object, cluster);
  stats_.OnAssign(object, cluster);
}

void ClusteringEngine::UnassignTracked(ObjectId object) {
  ClusterId cluster = clustering_.ClusterOf(object);
  DYNAMICC_CHECK_NE(cluster, kInvalidCluster);
  stats_.OnBeforeUnassign(object, cluster);
  clustering_.Unassign(object);
}

ClusterId ClusteringEngine::AddObjectAsSingleton(ObjectId object) {
  DYNAMICC_CHECK(graph_->Contains(object))
      << "object " << object << " must be in the similarity graph";
  ClusterId cluster = clustering_.CreateCluster();
  AssignTracked(object, cluster);
  return cluster;
}

void ClusteringEngine::RemoveObject(ObjectId object) {
  UnassignTracked(object);
}

ClusterId ClusteringEngine::Merge(ClusterId a, ClusterId b) {
  DYNAMICC_CHECK_NE(a, b);
  DYNAMICC_CHECK(clustering_.HasCluster(a));
  DYNAMICC_CHECK(clustering_.HasCluster(b));
  // Move the smaller side to bound the relinking cost.
  ClusterId keep = a, absorb = b;
  if (clustering_.ClusterSize(absorb) > clustering_.ClusterSize(keep)) {
    std::swap(keep, absorb);
  }
  std::vector<ObjectId> moved(clustering_.Members(absorb).begin(),
                              clustering_.Members(absorb).end());
  for (ObjectId object : moved) {
    UnassignTracked(object);
    AssignTracked(object, keep);
  }
  return keep;
}

ClusterId ClusteringEngine::SplitOut(ClusterId cluster,
                                     const std::vector<ObjectId>& part) {
  DYNAMICC_CHECK(!part.empty());
  DYNAMICC_CHECK_LT(part.size(), clustering_.ClusterSize(cluster))
      << "split must leave the original cluster non-empty";
  ClusterId fresh = clustering_.CreateCluster();
  for (ObjectId object : part) {
    DYNAMICC_CHECK_EQ(clustering_.ClusterOf(object), cluster);
    UnassignTracked(object);
    AssignTracked(object, fresh);
  }
  return fresh;
}

void ClusteringEngine::Move(ObjectId object, ClusterId to) {
  DYNAMICC_CHECK(clustering_.HasCluster(to));
  DYNAMICC_CHECK_NE(clustering_.ClusterOf(object), to);
  UnassignTracked(object);
  AssignTracked(object, to);
}

void ClusteringEngine::InitSingletons() {
  Reset();
  for (ObjectId object : graph_->Objects()) {
    AddObjectAsSingleton(object);
  }
}

void ClusteringEngine::SetClustering(const Clustering& clustering) {
  clustering_ = clustering;
  stats_.Rebuild();
}

void ClusteringEngine::Reset() {
  clustering_ = Clustering();
  stats_.Rebuild();
}

}  // namespace dynamicc
