#include "cluster/engine.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/logging.h"

namespace dynamicc {

ClusteringEngine::ClusteringEngine(const SimilarityGraph* graph)
    : graph_(graph), stats_(&clustering_, graph) {
  DYNAMICC_CHECK(graph != nullptr);
}

void ClusteringEngine::AssignTracked(ObjectId object, ClusterId cluster) {
  clustering_.Assign(object, cluster);
  stats_.OnAssign(object, cluster);
}

void ClusteringEngine::UnassignTracked(ObjectId object) {
  ClusterId cluster = clustering_.ClusterOf(object);
  DYNAMICC_CHECK_NE(cluster, kInvalidCluster);
  stats_.OnBeforeUnassign(object, cluster);
  clustering_.Unassign(object);
}

ClusterId ClusteringEngine::AddObjectAsSingleton(ObjectId object) {
  DYNAMICC_CHECK(graph_->Contains(object))
      << "object " << object << " must be in the similarity graph";
  ClusterId cluster = clustering_.CreateCluster();
  AssignTracked(object, cluster);
  return cluster;
}

void ClusteringEngine::RemoveObject(ObjectId object) {
  UnassignTracked(object);
}

ClusterId ClusteringEngine::Merge(ClusterId a, ClusterId b) {
  DYNAMICC_CHECK_NE(a, b);
  DYNAMICC_CHECK(clustering_.HasCluster(a));
  DYNAMICC_CHECK(clustering_.HasCluster(b));
  // Move the smaller side to bound the relinking cost.
  ClusterId keep = a, absorb = b;
  if (clustering_.ClusterSize(absorb) > clustering_.ClusterSize(keep)) {
    std::swap(keep, absorb);
  }
  std::vector<ObjectId> moved(clustering_.Members(absorb).begin(),
                              clustering_.Members(absorb).end());
  for (ObjectId object : moved) {
    UnassignTracked(object);
    AssignTracked(object, keep);
  }
  return keep;
}

ClusterId ClusteringEngine::SplitOut(ClusterId cluster,
                                     const std::vector<ObjectId>& part) {
  DYNAMICC_CHECK(!part.empty());
  DYNAMICC_CHECK_LT(part.size(), clustering_.ClusterSize(cluster))
      << "split must leave the original cluster non-empty";
  ClusterId fresh = clustering_.CreateCluster();
  for (ObjectId object : part) {
    DYNAMICC_CHECK_EQ(clustering_.ClusterOf(object), cluster);
    UnassignTracked(object);
    AssignTracked(object, fresh);
  }
  return fresh;
}

void ClusteringEngine::Move(ObjectId object, ClusterId to) {
  DYNAMICC_CHECK(clustering_.HasCluster(to));
  DYNAMICC_CHECK_NE(clustering_.ClusterOf(object), to);
  UnassignTracked(object);
  AssignTracked(object, to);
}

void ClusteringEngine::InitSingletons() {
  Reset();
  for (ObjectId object : graph_->Objects()) {
    AddObjectAsSingleton(object);
  }
}

ClusteringEngine::GroupExtract ClusteringEngine::ExtractGroupState(
    const std::vector<ObjectId>& objects) {
  GroupExtract extract;
  // Group by source cluster first: ids are assigned monotonically, so a
  // std::map yields a deterministic cluster order independent of the
  // input order of `objects`.
  std::map<ClusterId, std::vector<ObjectId>> by_cluster;
  for (ObjectId object : objects) {
    ClusterId cluster = clustering_.ClusterOf(object);
    DYNAMICC_CHECK_NE(cluster, kInvalidCluster)
        << "extracting unassigned object " << object;
    by_cluster[cluster].push_back(object);
  }
  extract.clusters.reserve(by_cluster.size());
  for (auto& [cluster, members] : by_cluster) {
    for (ObjectId object : members) {
      UnassignTracked(object);
    }
    // Unassigning the last member deleted the cluster; a survivor means
    // the extraction cut through it (cross-group edges inside a shard).
    if (clustering_.HasCluster(cluster)) ++extract.split_sources;
    std::sort(members.begin(), members.end());
    extract.clusters.push_back(std::move(members));
  }
  return extract;
}

void ClusteringEngine::AdoptGroupState(
    const std::vector<std::vector<ObjectId>>& clusters) {
  for (const auto& members : clusters) {
    DYNAMICC_CHECK(!members.empty()) << "adopting an empty cluster";
    ClusterId fresh = clustering_.CreateCluster();
    for (ObjectId object : members) {
      DYNAMICC_CHECK(graph_->Contains(object))
          << "adopted object " << object << " must be in the similarity graph";
      DYNAMICC_CHECK_EQ(clustering_.ClusterOf(object), kInvalidCluster)
          << "adopted object " << object << " is already assigned";
      AssignTracked(object, fresh);
    }
  }
}

void ClusteringEngine::SetClustering(const Clustering& clustering) {
  clustering_ = clustering;
  stats_.Rebuild();
}

void ClusteringEngine::Reset() {
  clustering_ = Clustering();
  stats_.Rebuild();
}

}  // namespace dynamicc
