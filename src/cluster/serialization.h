#ifndef DYNAMICC_CLUSTER_SERIALIZATION_H_
#define DYNAMICC_CLUSTER_SERIALIZATION_H_

#include <istream>
#include <ostream>

#include "cluster/clustering.h"
#include "util/status.h"

namespace dynamicc {

/// Writes the partition in a line-oriented text format: one cluster per
/// line, members as space-separated object ids. Canonical (sorted), so
/// equal clusterings serialize identically.
Status SaveClustering(const Clustering& clustering, std::ostream& os);

/// Reads a partition saved by SaveClustering into `clustering` (which is
/// replaced). Objects may not repeat across lines.
Status LoadClustering(std::istream& is, Clustering* clustering);

/// Id-exact form for warm restart: unlike SaveClustering (canonical,
/// id-free) this persists each cluster's *id* and the next-id counter,
/// so the restored engine keeps enumerating and assigning cluster ids
/// exactly like the never-restarted one. Format:
///
///   clusters <count> next <next_id>
///   <cluster_id> <size> <member...>      (one line per cluster, ids
///                                         ascending, members ascending)
Status SaveClusteringWithIds(const Clustering& clustering, std::ostream& os);

/// Restores a partition saved by SaveClusteringWithIds (replacing
/// `clustering`), validating ids, sizes and member uniqueness.
Status LoadClusteringWithIds(std::istream& is, Clustering* clustering);

}  // namespace dynamicc

#endif  // DYNAMICC_CLUSTER_SERIALIZATION_H_
