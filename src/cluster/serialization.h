#ifndef DYNAMICC_CLUSTER_SERIALIZATION_H_
#define DYNAMICC_CLUSTER_SERIALIZATION_H_

#include <istream>
#include <ostream>

#include "cluster/clustering.h"
#include "util/status.h"

namespace dynamicc {

/// Writes the partition in a line-oriented text format: one cluster per
/// line, members as space-separated object ids. Canonical (sorted), so
/// equal clusterings serialize identically.
Status SaveClustering(const Clustering& clustering, std::ostream& os);

/// Reads a partition saved by SaveClustering into `clustering` (which is
/// replaced). Objects may not repeat across lines.
Status LoadClustering(std::istream& is, Clustering* clustering);

}  // namespace dynamicc

#endif  // DYNAMICC_CLUSTER_SERIALIZATION_H_
