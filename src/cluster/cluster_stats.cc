#include "cluster/cluster_stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dynamicc {

namespace {
// Aggregates below this magnitude are treated as zero when cleaning up
// sparse entries (floating-point residue from incremental +/-).
constexpr double kEpsilon = 1e-9;
}  // namespace

ClusterStatsTracker::ClusterStatsTracker(const Clustering* clustering,
                                         const SimilarityGraph* graph)
    : clustering_(clustering), graph_(graph) {
  DYNAMICC_CHECK(clustering_ != nullptr);
  DYNAMICC_CHECK(graph_ != nullptr);
}

void ClusterStatsTracker::AddInter(ClusterId a, ClusterId b, double delta) {
  total_inter_ += delta;
  // Symmetric storage: both rows carry the pair sum.
  for (int direction = 0; direction < 2; ++direction) {
    double& slot = inter_[a][b];
    slot += delta;
    if (std::abs(slot) < kEpsilon) {
      inter_[a].erase(b);
      if (inter_[a].empty()) inter_.erase(a);
    }
    std::swap(a, b);
  }
}

void ClusterStatsTracker::OnAssign(ObjectId object, ClusterId cluster) {
  for (const auto& [other, sim] : graph_->Neighbors(object)) {
    ClusterId other_cluster = clustering_->ClusterOf(other);
    if (other_cluster == kInvalidCluster) continue;
    if (other_cluster == cluster) {
      intra_[cluster] += sim;
      total_intra_ += sim;
    } else {
      AddInter(cluster, other_cluster, sim);
    }
  }
}

void ClusterStatsTracker::OnBeforeUnassign(ObjectId object,
                                           ClusterId cluster) {
  DYNAMICC_CHECK_EQ(clustering_->ClusterOf(object), cluster);
  for (const auto& [other, sim] : graph_->Neighbors(object)) {
    if (other == object) continue;
    ClusterId other_cluster = clustering_->ClusterOf(other);
    if (other_cluster == kInvalidCluster) continue;
    if (other_cluster == cluster && other != object) {
      double& slot = intra_[cluster];
      slot -= sim;
      total_intra_ -= sim;
      if (std::abs(slot) < kEpsilon) intra_.erase(cluster);
    } else if (other_cluster != cluster) {
      AddInter(cluster, other_cluster, -sim);
    }
  }
}

double ClusterStatsTracker::IntraSum(ClusterId cluster) const {
  auto it = intra_.find(cluster);
  return it == intra_.end() ? 0.0 : it->second;
}

double ClusterStatsTracker::InterSum(ClusterId a, ClusterId b) const {
  auto it = inter_.find(a);
  if (it == inter_.end()) return 0.0;
  auto jt = it->second.find(b);
  return jt == it->second.end() ? 0.0 : jt->second;
}

double ClusterStatsTracker::AverageIntraSimilarity(ClusterId cluster) const {
  size_t size = clustering_->ClusterSize(cluster);
  if (size <= 1) return 1.0;
  double pairs = 0.5 * static_cast<double>(size) * (size - 1);
  return IntraSum(cluster) / pairs;
}

double ClusterStatsTracker::AverageInterSimilarity(ClusterId a,
                                                   ClusterId b) const {
  double pairs = static_cast<double>(clustering_->ClusterSize(a)) *
                 static_cast<double>(clustering_->ClusterSize(b));
  if (pairs == 0.0) return 0.0;
  return InterSum(a, b) / pairs;
}

ClusterStatsTracker::MaxInter ClusterStatsTracker::MaxAverageInter(
    ClusterId cluster) const {
  MaxInter best;
  auto it = inter_.find(cluster);
  if (it == inter_.end()) return best;
  // Single pass over the row: the per-pair sums are already in hand, so
  // the InterSum() lookup AverageInterSimilarity would redo per neighbor
  // is skipped. Sorted by id first, so equal averages resolve to the
  // same winner as the InterNeighbors()-ordered loop this replaces.
  std::vector<std::pair<ClusterId, double>> row;
  row.reserve(it->second.size());
  for (const auto& [other, sum] : it->second) {
    if (sum > kEpsilon) row.emplace_back(other, sum);
  }
  std::sort(row.begin(), row.end());
  double size_a = static_cast<double>(clustering_->ClusterSize(cluster));
  for (const auto& [other, sum] : row) {
    double pairs = size_a * static_cast<double>(clustering_->ClusterSize(other));
    double avg = pairs == 0.0 ? 0.0 : sum / pairs;
    if (avg > best.average) {
      best.average = avg;
      best.cluster = other;
    }
  }
  return best;
}

std::vector<ClusterId> ClusterStatsTracker::InterNeighbors(
    ClusterId cluster) const {
  std::vector<ClusterId> neighbors;
  auto it = inter_.find(cluster);
  if (it != inter_.end()) {
    neighbors.reserve(it->second.size());
    for (const auto& [other, sum] : it->second) {
      if (sum > kEpsilon) neighbors.push_back(other);
    }
  }
  std::sort(neighbors.begin(), neighbors.end());
  return neighbors;
}

double ClusterStatsTracker::SumToCluster(ObjectId object,
                                         ClusterId cluster) const {
  const auto& members = clustering_->Members(cluster);
  const auto& neighbors = graph_->Neighbors(object);
  double sum = 0.0;
  if (neighbors.size() < members.size()) {
    for (const auto& [other, sim] : neighbors) {
      if (other != object && members.count(other) > 0) sum += sim;
    }
  } else {
    for (ObjectId member : members) {
      if (member == object) continue;
      auto it = neighbors.find(member);
      if (it != neighbors.end()) sum += it->second;
    }
  }
  return sum;
}

void ClusterStatsTracker::Rebuild() {
  intra_.clear();
  inter_.clear();
  total_intra_ = 0.0;
  total_inter_ = 0.0;
  for (ObjectId object : clustering_->AssignedObjects()) {
    ClusterId cluster = clustering_->ClusterOf(object);
    for (const auto& [other, sim] : graph_->Neighbors(object)) {
      if (other <= object) continue;  // count each pair once
      ClusterId other_cluster = clustering_->ClusterOf(other);
      if (other_cluster == kInvalidCluster) continue;
      if (other_cluster == cluster) {
        intra_[cluster] += sim;
        total_intra_ += sim;
      } else {
        AddInter(cluster, other_cluster, sim);
      }
    }
  }
}

}  // namespace dynamicc
