#include "cluster/serialization.h"

#include <sstream>
#include <string>

namespace dynamicc {

Status SaveClustering(const Clustering& clustering, std::ostream& os) {
  for (const auto& members : clustering.CanonicalClusters()) {
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) os << " ";
      os << members[i];
    }
    os << "\n";
  }
  if (!os.good()) return Status::IoError("write failed");
  return Status::Ok();
}

Status LoadClustering(std::istream& is, Clustering* clustering) {
  Clustering fresh;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    ClusterId cluster = fresh.CreateCluster();
    ObjectId object = 0;
    size_t members = 0;
    while (fields >> object) {
      if (fresh.ClusterOf(object) != kInvalidCluster) {
        return Status::InvalidArgument("object " + std::to_string(object) +
                                       " appears in two clusters");
      }
      fresh.Assign(object, cluster);
      ++members;
    }
    if (members == 0) {
      return Status::InvalidArgument("malformed cluster line: " + line);
    }
  }
  *clustering = std::move(fresh);
  return Status::Ok();
}

}  // namespace dynamicc
