#include "cluster/serialization.h"

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

namespace dynamicc {

Status SaveClustering(const Clustering& clustering, std::ostream& os) {
  for (const auto& members : clustering.CanonicalClusters()) {
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0) os << " ";
      os << members[i];
    }
    os << "\n";
  }
  if (!os.good()) return Status::IoError("write failed");
  return Status::Ok();
}

Status LoadClustering(std::istream& is, Clustering* clustering) {
  Clustering fresh;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    ClusterId cluster = fresh.CreateCluster();
    ObjectId object = 0;
    size_t members = 0;
    while (fields >> object) {
      if (fresh.ClusterOf(object) != kInvalidCluster) {
        return Status::InvalidArgument("object " + std::to_string(object) +
                                       " appears in two clusters");
      }
      fresh.Assign(object, cluster);
      ++members;
    }
    if (members == 0) {
      return Status::InvalidArgument("malformed cluster line: " + line);
    }
  }
  *clustering = std::move(fresh);
  return Status::Ok();
}

Status SaveClusteringWithIds(const Clustering& clustering, std::ostream& os) {
  os << "clusters " << clustering.num_clusters() << " next "
     << clustering.next_cluster_id() << "\n";
  for (ClusterId cluster : clustering.ClusterIds()) {
    const auto& members = clustering.Members(cluster);
    std::vector<ObjectId> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end());
    os << cluster << " " << sorted.size();
    for (ObjectId member : sorted) os << " " << member;
    os << "\n";
  }
  if (!os.good()) return Status::IoError("write failed");
  return Status::Ok();
}

Status LoadClusteringWithIds(std::istream& is, Clustering* clustering) {
  std::string tag, next_tag;
  size_t count = 0;
  ClusterId next_id = 0;
  if (!(is >> tag >> count >> next_tag >> next_id) || tag != "clusters" ||
      next_tag != "next") {
    return Status::InvalidArgument("malformed clustering header");
  }
  Clustering fresh;
  for (size_t i = 0; i < count; ++i) {
    ClusterId id = 0;
    size_t size = 0;
    if (!(is >> id >> size) || size == 0) {
      return Status::InvalidArgument("malformed cluster entry");
    }
    if (id >= next_id) {
      return Status::InvalidArgument("cluster id " + std::to_string(id) +
                                     " not below the next-id counter");
    }
    // Strictly increasing, as written by SaveClusteringWithIds — checked
    // here (not just by CreateClusterWithId's fatal assertion) so a
    // hand-edited stream is rejected instead of aborting the process.
    if (id < fresh.next_cluster_id()) {
      return Status::InvalidArgument("cluster ids out of order at " +
                                     std::to_string(id));
    }
    fresh.CreateClusterWithId(id);
    for (size_t m = 0; m < size; ++m) {
      ObjectId object = 0;
      if (!(is >> object)) {
        return Status::InvalidArgument("truncated cluster members");
      }
      if (fresh.ClusterOf(object) != kInvalidCluster) {
        return Status::InvalidArgument("object " + std::to_string(object) +
                                       " appears in two clusters");
      }
      fresh.Assign(object, id);
    }
  }
  // Deleted-tail clusters can leave the counter past the largest live id;
  // replaying the clusters alone only advanced it to largest + 1.
  fresh.ReserveClusterIds(next_id);
  *clustering = std::move(fresh);
  return Status::Ok();
}

}  // namespace dynamicc
