#include "cluster/evolution.h"

#include <algorithm>
#include <sstream>

#include "cluster/engine.h"

namespace dynamicc {

namespace {
std::string MemberList(const std::vector<ObjectId>& members) {
  std::ostringstream os;
  os << "{";
  for (size_t i = 0; i < members.size(); ++i) {
    if (i > 0) os << ",";
    os << members[i];
  }
  os << "}";
  return os.str();
}
}  // namespace

std::string EvolutionStep::ToString() const {
  std::ostringstream os;
  os << (kind == Kind::kMerge ? "merge " : "split ") << MemberList(left)
     << " | " << MemberList(right);
  return os.str();
}

void RecordingObserver::OnMerge(const ClusteringEngine& engine, ClusterId a,
                                ClusterId b) {
  EvolutionStep step;
  step.kind = EvolutionStep::Kind::kMerge;
  const auto& ma = engine.clustering().Members(a);
  const auto& mb = engine.clustering().Members(b);
  step.left.assign(ma.begin(), ma.end());
  step.right.assign(mb.begin(), mb.end());
  std::sort(step.left.begin(), step.left.end());
  std::sort(step.right.begin(), step.right.end());
  steps_.push_back(std::move(step));
}

void RecordingObserver::OnSplit(const ClusteringEngine& engine,
                                ClusterId cluster,
                                const std::vector<ObjectId>& part) {
  EvolutionStep step;
  step.kind = EvolutionStep::Kind::kSplit;
  step.left = part;
  std::sort(step.left.begin(), step.left.end());
  std::vector<ObjectId> rest;
  for (ObjectId member : engine.clustering().Members(cluster)) {
    if (std::find(step.left.begin(), step.left.end(), member) ==
        step.left.end()) {
      rest.push_back(member);
    }
  }
  std::sort(rest.begin(), rest.end());
  step.right = std::move(rest);
  steps_.push_back(std::move(step));
}

}  // namespace dynamicc
