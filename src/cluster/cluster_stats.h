#ifndef DYNAMICC_CLUSTER_CLUSTER_STATS_H_
#define DYNAMICC_CLUSTER_CLUSTER_STATS_H_

#include <unordered_map>
#include <vector>

#include "cluster/clustering.h"
#include "data/similarity_graph.h"
#include "data/types.h"

namespace dynamicc {

/// Incrementally maintained similarity aggregates per cluster and per
/// cluster pair:
///   - intra_sum(C)     = Σ sim(r, r') over unordered pairs inside C,
///   - inter_sum(C, C') = Σ sim(r, r') over pairs across C and C'.
/// Only edges present in the SimilarityGraph contribute (non-edges have
/// similarity 0). These aggregates power both the objective functions
/// (§3.2) and DynamicC's features (§5.1) in O(1) lookups.
///
/// The tracker is informed of membership changes through OnAssign/OnUnassign
/// (ClusteringEngine wires this up); each notification costs O(degree of the
/// object in the similarity graph).
class ClusterStatsTracker {
 public:
  /// Both referents must outlive the tracker.
  ClusterStatsTracker(const Clustering* clustering,
                      const SimilarityGraph* graph);

  /// Must be called immediately after `object` was assigned to `cluster`.
  void OnAssign(ObjectId object, ClusterId cluster);

  /// Must be called immediately *before* `object` is unassigned from
  /// `cluster` (the membership is still in place when this runs).
  void OnBeforeUnassign(ObjectId object, ClusterId cluster);

  /// Sum of intra-cluster pair similarities of `cluster`.
  double IntraSum(ClusterId cluster) const;

  /// Sum of cross-pair similarities between two distinct clusters.
  double InterSum(ClusterId a, ClusterId b) const;

  /// Average pairwise similarity inside the cluster; 1.0 for singletons
  /// (a lone object is perfectly cohesive). Feature f1 of the paper.
  double AverageIntraSimilarity(ClusterId cluster) const;

  /// Average cross-pair similarity between two clusters
  /// (inter_sum / (|a| * |b|)).
  double AverageInterSimilarity(ClusterId a, ClusterId b) const;

  /// The neighbor cluster with maximal average inter similarity, with that
  /// value. Returns {kInvalidCluster, 0} when the cluster has no inter
  /// edges. Features f2/f4 of the paper.
  struct MaxInter {
    ClusterId cluster = kInvalidCluster;
    double average = 0.0;
  };
  MaxInter MaxAverageInter(ClusterId cluster) const;

  /// Clusters with nonzero inter similarity to `cluster`.
  std::vector<ClusterId> InterNeighbors(ClusterId cluster) const;

  /// Invokes `fn(a, b, sum)` once per cluster pair with nonzero inter sum
  /// (a < b). O(number of such pairs); used to export the full sparse
  /// inter structure (e.g. for DB-index evaluation).
  template <typename Fn>
  void ForEachInter(Fn&& fn) const {
    // Rows are stored symmetrically; emit each pair once.
    for (const auto& [a, row] : inter_) {
      for (const auto& [b, sum] : row) {
        if (a < b && sum > 1e-9) fn(a, b, sum);
      }
    }
  }

  /// Total sums over the whole clustering (for objective functions):
  /// Σ_C intra_sum(C) and Σ_{C<C'} inter_sum(C, C').
  double TotalIntraSum() const { return total_intra_; }
  double TotalInterSum() const { return total_inter_; }

  /// Sum of similarities between `object` and members of `cluster`
  /// (computed on the fly in O(min(degree, |cluster|))).
  double SumToCluster(ObjectId object, ClusterId cluster) const;

  /// Drops all aggregates and recomputes from the current clustering.
  /// O(edges). Used by tests to validate incremental maintenance and by
  /// engines after bulk rebuilds.
  void Rebuild();

  const Clustering& clustering() const { return *clustering_; }
  const SimilarityGraph& graph() const { return *graph_; }

 private:
  void AddInter(ClusterId a, ClusterId b, double delta);

  const Clustering* clustering_;
  const SimilarityGraph* graph_;

  std::unordered_map<ClusterId, double> intra_;
  /// Inter sums stored symmetrically (inter_[a][b] == inter_[b][a]) so that
  /// InterNeighbors is O(row size) instead of a scan over all rows.
  std::unordered_map<ClusterId, std::unordered_map<ClusterId, double>> inter_;
  double total_intra_ = 0.0;
  double total_inter_ = 0.0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CLUSTER_CLUSTER_STATS_H_
