#include "cluster/clustering.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace dynamicc {

namespace {
uint64_t NextEpoch() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}
}  // namespace

Clustering::Clustering() : epoch_(NextEpoch()) {}

Clustering::Clustering(const Clustering& other)
    : next_cluster_id_(other.next_cluster_id_),
      epoch_(NextEpoch()),
      version_counter_(other.version_counter_),
      clusters_(other.clusters_),
      versions_(other.versions_),
      assignment_(other.assignment_) {}

Clustering& Clustering::operator=(const Clustering& other) {
  if (this == &other) return *this;
  next_cluster_id_ = other.next_cluster_id_;
  epoch_ = NextEpoch();
  version_counter_ = other.version_counter_;
  clusters_ = other.clusters_;
  versions_ = other.versions_;
  assignment_ = other.assignment_;
  return *this;
}

ClusterId Clustering::CreateCluster() {
  ClusterId id = next_cluster_id_++;
  clusters_[id];
  return id;
}

ClusterId Clustering::CreateSingleton(ObjectId object) {
  ClusterId id = CreateCluster();
  Assign(object, id);
  return id;
}

ClusterId Clustering::CreateClusterWithId(ClusterId id) {
  DYNAMICC_CHECK_GE(id, next_cluster_id_)
      << "restored cluster ids must arrive in increasing order";
  next_cluster_id_ = id + 1;
  clusters_[id];
  return id;
}

void Clustering::ReserveClusterIds(ClusterId next) {
  DYNAMICC_CHECK_GE(next, next_cluster_id_)
      << "cluster id counter may not move backwards";
  next_cluster_id_ = next;
}

void Clustering::Assign(ObjectId object, ClusterId cluster) {
  DYNAMICC_CHECK(assignment_.find(object) == assignment_.end())
      << "object " << object << " already assigned";
  auto it = clusters_.find(cluster);
  DYNAMICC_CHECK(it != clusters_.end()) << "no cluster " << cluster;
  it->second.insert(object);
  assignment_[object] = cluster;
  versions_[cluster] = ++version_counter_;
}

ClusterId Clustering::Unassign(ObjectId object) {
  auto it = assignment_.find(object);
  DYNAMICC_CHECK(it != assignment_.end())
      << "object " << object << " not assigned";
  ClusterId cluster = it->second;
  assignment_.erase(it);
  auto cluster_it = clusters_.find(cluster);
  cluster_it->second.erase(object);
  if (cluster_it->second.empty()) {
    clusters_.erase(cluster_it);
    versions_.erase(cluster);
  } else {
    versions_[cluster] = ++version_counter_;
  }
  return cluster;
}

uint64_t Clustering::ClusterVersion(ClusterId cluster) const {
  auto it = versions_.find(cluster);
  return it == versions_.end() ? 0 : it->second;
}

ClusterId Clustering::ClusterOf(ObjectId object) const {
  auto it = assignment_.find(object);
  return it == assignment_.end() ? kInvalidCluster : it->second;
}

bool Clustering::HasCluster(ClusterId cluster) const {
  return clusters_.count(cluster) > 0;
}

const std::unordered_set<ObjectId>& Clustering::Members(
    ClusterId cluster) const {
  auto it = clusters_.find(cluster);
  DYNAMICC_CHECK(it != clusters_.end()) << "no cluster " << cluster;
  return it->second;
}

size_t Clustering::ClusterSize(ClusterId cluster) const {
  return Members(cluster).size();
}

std::vector<ClusterId> Clustering::ClusterIds() const {
  std::vector<ClusterId> ids;
  ids.reserve(clusters_.size());
  for (const auto& [id, members] : clusters_) {
    (void)members;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<ObjectId> Clustering::AssignedObjects() const {
  std::vector<ObjectId> ids;
  ids.reserve(assignment_.size());
  for (const auto& [id, cluster] : assignment_) {
    (void)cluster;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::vector<ObjectId>> Clustering::CanonicalClusters() const {
  std::vector<std::vector<ObjectId>> out;
  out.reserve(clusters_.size());
  for (const auto& [id, members] : clusters_) {
    (void)id;
    std::vector<ObjectId> sorted(members.begin(), members.end());
    std::sort(sorted.begin(), sorted.end());
    out.push_back(std::move(sorted));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dynamicc
