#ifndef DYNAMICC_CLUSTER_EVOLUTION_H_
#define DYNAMICC_CLUSTER_EVOLUTION_H_

#include <string>
#include <vector>

#include "data/types.h"

namespace dynamicc {

class ClusteringEngine;

/// One cluster-evolution operation (§4.1). Merge and split involving exactly
/// two clusters are sufficient to express every evolution: n-way merges are
/// chains of 2-way merges, and moves decompose into a split plus a merge.
struct EvolutionStep {
  enum class Kind { kMerge, kSplit };

  Kind kind = Kind::kMerge;

  /// kMerge: `left` and `right` are the member lists of the two clusters
  /// that merge (result = union).
  /// kSplit: `left` and `right` are the member lists of the two parts the
  /// source cluster (their union) splits into.
  std::vector<ObjectId> left;
  std::vector<ObjectId> right;

  /// Human-readable description ("merge {1,2} + {3}" / "split ...").
  std::string ToString() const;
};

/// An ordered list of evolution steps (one batch round's history, §4.2, or
/// one cross-round transformation, §4.3).
using EvolutionList = std::vector<EvolutionStep>;

/// Observer through which a batch algorithm exposes its clustering
/// decisions while running (§4.2 "monitoring"). Callbacks fire *before* the
/// change is applied, so implementations can read pre-change cluster state
/// (feature extraction needs exactly that).
class EvolutionObserver {
 public:
  virtual ~EvolutionObserver() = default;

  /// Clusters `a` and `b` are about to merge.
  virtual void OnMerge(const ClusteringEngine& engine, ClusterId a,
                       ClusterId b) = 0;

  /// `part` is about to be split out of `cluster` into a new cluster.
  virtual void OnSplit(const ClusteringEngine& engine, ClusterId cluster,
                       const std::vector<ObjectId>& part) = 0;
};

/// Observer that records the raw steps (member lists) as they happen.
/// Useful in tests and for §4.2 from-scratch histories.
class RecordingObserver final : public EvolutionObserver {
 public:
  void OnMerge(const ClusteringEngine& engine, ClusterId a,
               ClusterId b) override;
  void OnSplit(const ClusteringEngine& engine, ClusterId cluster,
               const std::vector<ObjectId>& part) override;

  const EvolutionList& steps() const { return steps_; }
  void Clear() { steps_.clear(); }

 private:
  EvolutionList steps_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CLUSTER_EVOLUTION_H_
