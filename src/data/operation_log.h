#ifndef DYNAMICC_DATA_OPERATION_LOG_H_
#define DYNAMICC_DATA_OPERATION_LOG_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "data/operations.h"
#include "data/types.h"

namespace dynamicc {

/// Append-only, sequence-numbered operation buffer with per-key
/// coalescing: operations queued behind an ingestion boundary shrink
/// before they are paid for. The folds mirror §6.1 composition on a
/// single object, so draining the log and applying the survivors leaves
/// a dataset in exactly the state the raw stream would have:
///
///   add(x)    then update(x)  ->  add(x) with the updated record
///   update(x) then update(x)  ->  the later update wins
///   update(x) then remove(x)  ->  remove(x)
///   add(x)    then remove(x)  ->  both vanish (x never materializes)
///
/// Identity: removes and updates name their target via `op.target`. An
/// add has no id yet, so the *producer* stamps `op.target` with the id
/// the add will materialize as (the service uses its pre-assigned
/// global id); later operations on that id then fold into the pending
/// add. Adds appended with `target == kInvalidObject` are opaque and
/// never coalesce.
///
/// Ordering: surviving entries drain in arrival order, and a fold keeps
/// its host entry's position. Reordering an operation relative to
/// operations on *other* objects is safe — within a batch, operations
/// on distinct objects commute except for add-id assignment, and folds
/// never reorder adds.
///
/// Not thread-safe; callers (the service's per-shard queues) hold their
/// own lock.
class OperationLog {
 public:
  /// One drained batch: the surviving operations plus how many appended
  /// (logical) operations they represent — a fold counts toward the
  /// batch that drains its host entry. Operations annihilated in place
  /// (add+remove pairs and the add's riders) belong to no drain; they
  /// are tracked by vanished(). The books always balance:
  ///   appended() == Σ logical_ops + vanished() + pending_logical().
  struct Drained {
    OperationBatch ops;
    uint64_t logical_ops = 0;
    /// Value of `appended()` when the drain happened: everything with a
    /// sequence number below this is reflected once the batch applies.
    uint64_t end_sequence = 0;
  };

  /// Appends one operation, coalescing against pending entries on the
  /// same target. Returns the operation's sequence number (the arrival
  /// index, dense from 0 even for operations that fold away).
  uint64_t Append(DataOperation op);

  /// Drains up to `max_ops` surviving operations (0 = all) in arrival
  /// order. Pending operations on drained targets no longer coalesce.
  Drained Take(size_t max_ops = 0);

  /// Pending operations selected by ExtractIf, in arrival order, with
  /// their sequence numbers (parallel to `ops`) — the audit trail of a
  /// migration replay.
  struct Extracted {
    OperationBatch ops;
    std::vector<uint64_t> sequences;
    uint64_t logical_ops = 0;
  };

  /// Removes every pending operation matching `pred` and returns them in
  /// arrival order; non-matching entries keep their queue positions and
  /// keep coalescing. Powers live shard migration: operations that raced
  /// a group move sit in the source shard's log, are extracted by
  /// target, and replay (Append) onto the destination shard's log with
  /// their relative order — and therefore their per-object composition —
  /// intact. Annihilated entries are garbage-collected along the way.
  template <typename Pred>
  Extracted ExtractIf(Pred&& pred) {
    Extracted extracted;
    std::deque<Entry> kept;
    for (Entry& entry : entries_) {
      if (entry.dead) continue;  // annihilated: already accounted
      if (pred(static_cast<const DataOperation&>(entry.op))) {
        pending_ -= 1;
        pending_logical_ -= entry.logical;
        extracted.logical_ops += entry.logical;
        extracted.sequences.push_back(entry.sequence);
        extracted.ops.push_back(std::move(entry.op));
      } else {
        kept.push_back(std::move(entry));
      }
    }
    entries_.swap(kept);
    // Entry indices changed wholesale; rebuild the coalescing map.
    open_.clear();
    for (size_t offset = 0; offset < entries_.size(); ++offset) {
      const Entry& entry = entries_[offset];
      if (entry.op.kind != DataOperation::Kind::kRemove &&
          entry.op.target != kInvalidObject) {
        open_[entry.op.target] = base_ + offset;
      }
    }
    return extracted;
  }

  /// Epoch-range export: copies (without removing) every surviving
  /// pending operation whose sequence number lies in [begin, end), in
  /// arrival order, with sequences and logical counts — the primitive
  /// for shipping or inspecting a sealed epoch's still-queued tail (the
  /// operations a follower is guaranteed to receive once the epoch
  /// applies). Entries keep their queue positions and keep coalescing
  /// afterwards. Folds are attributed to their host entry's sequence,
  /// consistent with first_pending_sequence().
  Extracted ExportRange(uint64_t begin_sequence, uint64_t end_sequence) const;

  /// Count-only sibling of ExportRange: the logical operations carried
  /// by surviving entries with sequence in [begin, end), with no
  /// copying. What the service's epoch-seal hook reports as the sealed
  /// epochs' pending tail (replication lag) — cheap enough to sit under
  /// the seal path's locks.
  uint64_t LogicalInRange(uint64_t begin_sequence,
                          uint64_t end_sequence) const {
    uint64_t logical = 0;
    for (const Entry& entry : entries_) {
      if (entry.dead || entry.sequence < begin_sequence) continue;
      if (entry.sequence >= end_sequence) break;  // entries are in order
      logical += entry.logical;
    }
    return logical;
  }

  /// Sequence number of the oldest surviving pending entry, or
  /// `appended()` when nothing is pending. Every appended operation with
  /// a sequence number below this is *reflected*: drained (its effect is
  /// applied once the drained batch is), folded into a later-drained
  /// host, or annihilated in place. The epoch watermark the service's
  /// flush-epoch machinery advances on — conservative for folds (a fold
  /// into a still-pending host keeps the host's earlier sequence as the
  /// floor, never the fold's own).
  uint64_t first_pending_sequence() const {
    for (const Entry& entry : entries_) {
      if (!entry.dead) return entry.sequence;
    }
    return appended_;
  }

  /// Surviving entries waiting to be drained (what a bounded queue
  /// meters) — annihilated pairs do not count.
  size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }
  /// Appended operations whose effect is still in the log (surviving
  /// entries plus everything folded into them).
  uint64_t pending_logical() const { return pending_logical_; }
  /// Total Append() calls — the next sequence number.
  uint64_t appended() const { return appended_; }
  /// Operations absorbed before application (folded or annihilated),
  /// cumulative over the log's lifetime.
  uint64_t coalesced() const { return coalesced_; }
  /// Operations that vanished through add+remove annihilation (the add,
  /// its folded riders, and the remove), cumulative. Their effect is a
  /// no-op, reflected the moment they annihilate.
  uint64_t vanished() const { return vanished_; }

 private:
  struct Entry {
    uint64_t sequence = 0;
    DataOperation op;
    /// Appended operations this entry carries (1 + folds into it).
    uint64_t logical = 1;
    /// Set when an add was cancelled by a remove; skipped on drain.
    bool dead = false;
  };

  Entry& EntryAt(size_t index) { return entries_[index - base_]; }

  std::deque<Entry> entries_;
  /// Target id -> absolute index (base_ + offset) of the pending add or
  /// update a later operation on that id folds into.
  std::unordered_map<ObjectId, size_t> open_;
  size_t base_ = 0;
  size_t pending_ = 0;
  uint64_t pending_logical_ = 0;
  uint64_t appended_ = 0;
  uint64_t coalesced_ = 0;
  uint64_t vanished_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_OPERATION_LOG_H_
