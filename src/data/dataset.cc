#include "data/dataset.h"

#include "util/logging.h"

namespace dynamicc {

ObjectId Dataset::Add(Record record) {
  ObjectId id = static_cast<ObjectId>(records_.size());
  record.id = id;
  records_.push_back(std::move(record));
  alive_.push_back(true);
  ++alive_count_;
  return id;
}

void Dataset::Remove(ObjectId id) {
  DYNAMICC_CHECK_LT(id, records_.size());
  DYNAMICC_CHECK(alive_[id]) << "removing dead object " << id;
  alive_[id] = false;
  --alive_count_;
}

void Dataset::Update(ObjectId id, Record record) {
  DYNAMICC_CHECK_LT(id, records_.size());
  DYNAMICC_CHECK(alive_[id]) << "updating dead object " << id;
  record.id = id;
  // Preserve the entity label unless the update supplies one explicitly.
  if (record.entity == 0) record.entity = records_[id].entity;
  records_[id] = std::move(record);
}

const Record& Dataset::Get(ObjectId id) const {
  DYNAMICC_CHECK_LT(id, records_.size());
  return records_[id];
}

bool Dataset::IsAlive(ObjectId id) const {
  return id < alive_.size() && alive_[id];
}

std::vector<ObjectId> Dataset::AliveIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(alive_count_);
  for (ObjectId id = 0; id < records_.size(); ++id) {
    if (alive_[id]) ids.push_back(id);
  }
  return ids;
}

}  // namespace dynamicc
