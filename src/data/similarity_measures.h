#ifndef DYNAMICC_DATA_SIMILARITY_MEASURES_H_
#define DYNAMICC_DATA_SIMILARITY_MEASURES_H_

#include <memory>
#include <vector>

#include "data/similarity.h"

namespace dynamicc {

/// Jaccard similarity over the records' token sets [40]
/// (|A ∩ B| / |A ∪ B|; duplicates within one record count once).
/// Both records empty => 0 (no content, no evidence).
class JaccardSimilarity final : public SimilarityMeasure {
 public:
  double Similarity(const Record& a, const Record& b) const override;
  size_t SimilarityBatch(const Record& probe,
                         const RecordFeatures* probe_features,
                         const SimCandidate* candidates, size_t count,
                         double min_similarity, double* out) const override;
  uint32_t FeatureNeeds() const override;
  const char* Name() const override { return "jaccard"; }
};

/// Cosine similarity of character-trigram count vectors of `text` [39].
/// Either text empty => 0, even when both are empty.
class TrigramCosineSimilarity final : public SimilarityMeasure {
 public:
  double Similarity(const Record& a, const Record& b) const override;
  size_t SimilarityBatch(const Record& probe,
                         const RecordFeatures* probe_features,
                         const SimCandidate* candidates, size_t count,
                         double min_similarity, double* out) const override;
  uint32_t FeatureNeeds() const override;
  const char* Name() const override { return "trigram-cosine"; }
};

/// Normalized Levenshtein similarity over `text` [49]:
/// 1 - dist(a, b) / max(|a|, |b|). Both texts empty => 0.
class LevenshteinSimilarity final : public SimilarityMeasure {
 public:
  double Similarity(const Record& a, const Record& b) const override;
  size_t SimilarityBatch(const Record& probe,
                         const RecordFeatures* probe_features,
                         const SimCandidate* candidates, size_t count,
                         double min_similarity, double* out) const override;
  uint32_t FeatureNeeds() const override;
  const char* Name() const override { return "levenshtein"; }
};

/// Similarity derived from Euclidean distance over `numeric` via a Gaussian
/// kernel: exp(-d² / (2·scale²)). `scale` sets the distance at which
/// similarity decays to ~0.61. Either vector empty => 0.
class EuclideanSimilarity final : public SimilarityMeasure {
 public:
  explicit EuclideanSimilarity(double scale);
  double Similarity(const Record& a, const Record& b) const override;
  size_t SimilarityBatch(const Record& probe,
                         const RecordFeatures* probe_features,
                         const SimCandidate* candidates, size_t count,
                         double min_similarity, double* out) const override;
  uint32_t FeatureNeeds() const override;
  const char* Name() const override { return "euclidean-gaussian"; }

  /// Plain Euclidean distance helper (used by DBSCAN and k-means directly).
  static double Distance(const Record& a, const Record& b);

 private:
  double scale_;
};

/// Weighted combination of other measures (the synthetic Febrl dataset uses
/// Levenshtein + Jaccard, Table 1). Weights are normalized to sum to 1.
class CombinedSimilarity final : public SimilarityMeasure {
 public:
  CombinedSimilarity(std::vector<std::unique_ptr<SimilarityMeasure>> parts,
                     std::vector<double> weights);
  double Similarity(const Record& a, const Record& b) const override;
  /// Batches through the parts' kernels (each part scored exactly — a
  /// weighted sum admits no per-part threshold) and combines in part
  /// order, so scores stay bit-identical to the scalar path.
  size_t SimilarityBatch(const Record& probe,
                         const RecordFeatures* probe_features,
                         const SimCandidate* candidates, size_t count,
                         double min_similarity, double* out) const override;
  uint32_t FeatureNeeds() const override;
  const char* Name() const override { return "combined"; }

 private:
  std::vector<std::unique_ptr<SimilarityMeasure>> parts_;
  std::vector<double> weights_;
};

/// Exact trigram dot product Σ aᵍ·bᵍ over two sorted-unique (id, count)
/// feature vectors. Every addend is an integer product accumulated in
/// uint64, so the sum is exact in ANY evaluation order — which is what
/// lets the dispatching form pick a vectorized kernel while keeping the
/// bit-identical-admitted-scores contract (the quotient fed to the
/// cosine is the same integer either way). The dispatcher probes the
/// smaller vector against 8-wide AVX2 blocks of the larger when the
/// sizes warrant it and the CPU has AVX2; the scalar twin is the sorted
/// merge, exposed for the micro-bench ratio and differential tests.
uint64_t TrigramDotProduct(const RecordFeatures& a, const RecordFeatures& b);
uint64_t TrigramDotProductScalar(const RecordFeatures& a,
                                 const RecordFeatures& b);

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_SIMILARITY_MEASURES_H_
