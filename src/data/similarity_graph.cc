#include "data/similarity_graph.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <numeric>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dynamicc {

SimilarityGraph::SimilarityGraph(
    const Dataset* dataset, const SimilarityMeasure* measure,
    std::unique_ptr<CandidateProvider> candidates, double min_similarity)
    : SimilarityGraph(dataset, measure, std::move(candidates), min_similarity,
                      Options{}) {}

SimilarityGraph::SimilarityGraph(
    const Dataset* dataset, const SimilarityMeasure* measure,
    std::unique_ptr<CandidateProvider> candidates, double min_similarity,
    const Options& options)
    : dataset_(dataset),
      measure_(measure),
      candidates_(std::move(candidates)),
      min_similarity_(min_similarity),
      options_(options) {
  DYNAMICC_CHECK(dataset_ != nullptr);
  DYNAMICC_CHECK(measure_ != nullptr);
  DYNAMICC_CHECK(candidates_ != nullptr);
  if (options_.use_feature_index) {
    uint32_t needs = measure_->FeatureNeeds();
    if (needs != 0) {
      features_ = std::make_unique<FeatureIndex>(needs);
    }
    if (options_.history != HistoryMode::kOff) {
      history_ = std::make_unique<CandidateHistory>(options_.history_options);
    }
  }
  if (options_.metrics != nullptr) {
    sim_calls_ = options_.metrics->GetCounter("sim.calls");
    sim_full_ = options_.metrics->GetCounter("sim.full");
    sim_pruned_ = options_.metrics->GetCounter("sim.pruned");
    sim_batch_ns_ = options_.metrics->GetHistogram("sim.batch_ns");
  }
}

void SimilarityGraph::AddObject(ObjectId id) {
  DYNAMICC_CHECK(!Contains(id)) << "object " << id << " already in graph";
  const Record& record = dataset_->Get(id);
  adjacency_[id];  // ensure node exists even with no edges
  if (features_ != nullptr) features_->Insert(id, record);
  ScoreAgainstCandidates(id);
  candidates_->Add(record);
}

void SimilarityGraph::ScoreAgainstCandidatesScalar(ObjectId id) {
  // The seed path, kept verbatim: one virtual Similarity call per pair,
  // edges inserted in candidate-enumeration order. The batch core below
  // is bit-compatible with this loop; equivalence tests diff the two.
  const Record& record = dataset_->Get(id);
  size_t calls = 0;
  for (ObjectId other : candidates_->Candidates(record)) {
    auto it = adjacency_.find(other);
    if (it == adjacency_.end()) continue;  // candidate no longer in graph
    ++calls;
    double s = measure_->Similarity(record, dataset_->Get(other));
    if (s >= min_similarity_) {
      adjacency_[id][other] = s;
      it->second[id] = s;
      ++num_edges_;
    }
  }
  if (sim_calls_ != nullptr) sim_calls_->Add(calls);
  if (sim_full_ != nullptr) sim_full_->Add(calls);
}

void SimilarityGraph::ScoreAgainstCandidates(ObjectId id) {
  if (!options_.use_feature_index) {
    ScoreAgainstCandidatesScalar(id);
    return;
  }
  const bool timed = sim_batch_ns_ != nullptr;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};

  const Record& record = dataset_->Get(id);
  const RecordFeatures* probe_features =
      features_ != nullptr ? features_->Find(id) : nullptr;

  // Gather candidates (keyed only when history wants the keys), then
  // filter to graph members preserving the enumeration order — the
  // order the seed path would have inserted edges in.
  struct Gathered {
    ObjectId other;
    uint64_t key;
    std::unordered_map<ObjectId, double>* row;
  };
  std::vector<Gathered> cands;
  size_t pruned = 0;
  if (history_ != nullptr) {
    KeyedCandidates keyed = candidates_->CandidatesWithKeys(record);
    cands.reserve(keyed.ids.size());
    const bool prune = options_.history == HistoryMode::kPrune;
    for (size_t i = 0; i < keyed.ids.size(); ++i) {
      auto it = adjacency_.find(keyed.ids[i]);
      if (it == adjacency_.end()) continue;  // candidate no longer in graph
      uint64_t key = keyed.keys[i];
      if (prune && key != 0 &&
          history_->Trials(key) >= options_.prune_min_trials &&
          history_->HitRate(key) < options_.prune_below_hit_rate) {
        ++pruned;  // approximate mode: historically cold key, skip
        continue;
      }
      cands.push_back({keyed.ids[i], key, &it->second});
    }
  } else {
    std::vector<ObjectId> ids = candidates_->Candidates(record);
    cands.reserve(ids.size());
    for (ObjectId other : ids) {
      auto it = adjacency_.find(other);
      if (it == adjacency_.end()) continue;
      cands.push_back({other, 0, &it->second});
    }
  }

  const size_t n = cands.size();
  // Scoring permutation: by descending historical hit rate (stable, so
  // equal rates keep enumeration order). Only the *scoring* order moves;
  // edges are inserted through the original order below.
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (history_ != nullptr && n > 1) {
    std::vector<double> rate(n);
    for (size_t i = 0; i < n; ++i) {
      rate[i] = cands[i].key == 0 ? history_->options().prior_hits /
                                        history_->options().prior_trials
                                  : history_->HitRate(cands[i].key);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&rate](uint32_t a, uint32_t b) {
                       return rate[a] > rate[b];
                     });
  }

  // One batched call scores the whole candidate list.
  std::vector<SimCandidate> batch(n);
  for (size_t k = 0; k < n; ++k) {
    const Gathered& c = cands[order[k]];
    batch[k].record = &dataset_->Get(c.other);
    batch[k].features =
        features_ != nullptr ? features_->Find(c.other) : nullptr;
  }
  std::vector<double> permuted_scores(n);
  size_t full = measure_->SimilarityBatch(record, probe_features, batch.data(),
                                          n, min_similarity_,
                                          permuted_scores.data());
  std::vector<double> scores(n);
  for (size_t k = 0; k < n; ++k) scores[order[k]] = permuted_scores[k];

  // Edge insertion in original enumeration order — this is what keeps
  // Neighbors() iteration (and with it every downstream FP accumulation)
  // byte-identical to the scalar path.
  for (size_t i = 0; i < n; ++i) {
    double s = scores[i];
    if (s >= min_similarity_) {
      adjacency_[id][cands[i].other] = s;
      (*cands[i].row)[id] = s;
      ++num_edges_;
    }
  }

  if (history_ != nullptr) {
    // Fold this probe's outcomes into the per-key history, aggregated
    // per key first so each key costs one map touch.
    std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> agg;
    for (size_t i = 0; i < n; ++i) {
      if (cands[i].key == 0) continue;
      auto& entry = agg[cands[i].key];
      ++entry.first;
      if (scores[i] >= min_similarity_) ++entry.second;
    }
    for (const auto& [key, stats] : agg) {
      history_->RecordOutcome(key, stats.first, stats.second);
    }
  }

  if (sim_calls_ != nullptr) sim_calls_->Add(n);
  if (sim_full_ != nullptr) sim_full_->Add(full);
  if (sim_pruned_ != nullptr && pruned > 0) sim_pruned_->Add(pruned);
  if (timed) {
    auto dt = std::chrono::steady_clock::now() - t0;
    sim_batch_ns_->Record(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
  }
}

void SimilarityGraph::DropEdges(ObjectId id) {
  auto it = adjacency_.find(id);
  DYNAMICC_CHECK(it != adjacency_.end());
  for (const auto& [other, sim] : it->second) {
    (void)sim;
    auto other_it = adjacency_.find(other);
    if (other_it != adjacency_.end()) other_it->second.erase(id);
    --num_edges_;
  }
  it->second.clear();
}

void SimilarityGraph::RemoveObject(ObjectId id) {
  DYNAMICC_CHECK(Contains(id)) << "object " << id << " not in graph";
  DropEdges(id);
  adjacency_.erase(id);
  if (features_ != nullptr) features_->Remove(id);
  // The dataset record may already be tombstoned but remains readable, so
  // we can still derive the blocking keys to unindex.
  candidates_->Remove(dataset_->Get(id));
}

void SimilarityGraph::UpdateObject(ObjectId id, const Record& old_record) {
  DYNAMICC_CHECK(Contains(id)) << "object " << id << " not in graph";
  DropEdges(id);
  candidates_->Update(old_record, dataset_->Get(id));
  // Unindex ourselves while scoring to avoid a self-edge, then re-add.
  candidates_->Remove(dataset_->Get(id));
  if (features_ != nullptr) features_->Insert(id, dataset_->Get(id));
  ScoreAgainstCandidates(id);
  candidates_->Add(dataset_->Get(id));
}

double SimilarityGraph::Similarity(ObjectId a, ObjectId b) const {
  if (a == b) return 1.0;
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return 0.0;
  auto edge = it->second.find(b);
  return edge == it->second.end() ? 0.0 : edge->second;
}

bool SimilarityGraph::Contains(ObjectId id) const {
  return adjacency_.count(id) > 0;
}

const std::unordered_map<ObjectId, double>& SimilarityGraph::Neighbors(
    ObjectId id) const {
  auto it = adjacency_.find(id);
  DYNAMICC_CHECK(it != adjacency_.end()) << "object " << id << " not in graph";
  return it->second;
}

double SimilarityGraph::SumSimilarityTo(
    ObjectId id, const std::vector<ObjectId>& others) const {
  const auto& neighbors = Neighbors(id);
  double sum = 0.0;
  for (ObjectId other : others) {
    auto it = neighbors.find(other);
    if (it != neighbors.end()) sum += it->second;
  }
  return sum;
}

std::vector<ObjectId> SimilarityGraph::Objects() const {
  std::vector<ObjectId> ids;
  ids.reserve(adjacency_.size());
  for (const auto& [id, neighbors] : adjacency_) {
    (void)neighbors;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::vector<ObjectId>> SimilarityGraph::ConnectedComponents()
    const {
  std::vector<std::vector<ObjectId>> components;
  std::unordered_map<ObjectId, bool> visited;
  visited.reserve(adjacency_.size());
  for (ObjectId start : Objects()) {
    if (visited[start]) continue;
    std::vector<ObjectId> component;
    std::deque<ObjectId> frontier{start};
    visited[start] = true;
    while (!frontier.empty()) {
      ObjectId id = frontier.front();
      frontier.pop_front();
      component.push_back(id);
      for (const auto& [other, sim] : adjacency_.at(id)) {
        (void)sim;
        if (!visited[other]) {
          visited[other] = true;
          frontier.push_back(other);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

}  // namespace dynamicc
