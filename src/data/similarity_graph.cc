#include "data/similarity_graph.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"

namespace dynamicc {

SimilarityGraph::SimilarityGraph(
    const Dataset* dataset, const SimilarityMeasure* measure,
    std::unique_ptr<CandidateProvider> candidates, double min_similarity)
    : dataset_(dataset),
      measure_(measure),
      candidates_(std::move(candidates)),
      min_similarity_(min_similarity) {
  DYNAMICC_CHECK(dataset_ != nullptr);
  DYNAMICC_CHECK(measure_ != nullptr);
  DYNAMICC_CHECK(candidates_ != nullptr);
}

void SimilarityGraph::AddObject(ObjectId id) {
  DYNAMICC_CHECK(!Contains(id)) << "object " << id << " already in graph";
  const Record& record = dataset_->Get(id);
  adjacency_[id];  // ensure node exists even with no edges
  ScoreAgainstCandidates(id);
  candidates_->Add(record);
}

void SimilarityGraph::ScoreAgainstCandidates(ObjectId id) {
  const Record& record = dataset_->Get(id);
  for (ObjectId other : candidates_->Candidates(record)) {
    auto it = adjacency_.find(other);
    if (it == adjacency_.end()) continue;  // candidate no longer in graph
    double s = measure_->Similarity(record, dataset_->Get(other));
    if (s >= min_similarity_) {
      adjacency_[id][other] = s;
      it->second[id] = s;
      ++num_edges_;
    }
  }
}

void SimilarityGraph::DropEdges(ObjectId id) {
  auto it = adjacency_.find(id);
  DYNAMICC_CHECK(it != adjacency_.end());
  for (const auto& [other, sim] : it->second) {
    (void)sim;
    auto other_it = adjacency_.find(other);
    if (other_it != adjacency_.end()) other_it->second.erase(id);
    --num_edges_;
  }
  it->second.clear();
}

void SimilarityGraph::RemoveObject(ObjectId id) {
  DYNAMICC_CHECK(Contains(id)) << "object " << id << " not in graph";
  DropEdges(id);
  adjacency_.erase(id);
  // The dataset record may already be tombstoned but remains readable, so
  // we can still derive the blocking keys to unindex.
  candidates_->Remove(dataset_->Get(id));
}

void SimilarityGraph::UpdateObject(ObjectId id, const Record& old_record) {
  DYNAMICC_CHECK(Contains(id)) << "object " << id << " not in graph";
  DropEdges(id);
  candidates_->Update(old_record, dataset_->Get(id));
  // Unindex ourselves while scoring to avoid a self-edge, then re-add.
  candidates_->Remove(dataset_->Get(id));
  ScoreAgainstCandidates(id);
  candidates_->Add(dataset_->Get(id));
}

double SimilarityGraph::Similarity(ObjectId a, ObjectId b) const {
  if (a == b) return 1.0;
  auto it = adjacency_.find(a);
  if (it == adjacency_.end()) return 0.0;
  auto edge = it->second.find(b);
  return edge == it->second.end() ? 0.0 : edge->second;
}

bool SimilarityGraph::Contains(ObjectId id) const {
  return adjacency_.count(id) > 0;
}

const std::unordered_map<ObjectId, double>& SimilarityGraph::Neighbors(
    ObjectId id) const {
  auto it = adjacency_.find(id);
  DYNAMICC_CHECK(it != adjacency_.end()) << "object " << id << " not in graph";
  return it->second;
}

double SimilarityGraph::SumSimilarityTo(
    ObjectId id, const std::vector<ObjectId>& others) const {
  const auto& neighbors = Neighbors(id);
  double sum = 0.0;
  for (ObjectId other : others) {
    auto it = neighbors.find(other);
    if (it != neighbors.end()) sum += it->second;
  }
  return sum;
}

std::vector<ObjectId> SimilarityGraph::Objects() const {
  std::vector<ObjectId> ids;
  ids.reserve(adjacency_.size());
  for (const auto& [id, neighbors] : adjacency_) {
    (void)neighbors;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<std::vector<ObjectId>> SimilarityGraph::ConnectedComponents()
    const {
  std::vector<std::vector<ObjectId>> components;
  std::unordered_map<ObjectId, bool> visited;
  visited.reserve(adjacency_.size());
  for (ObjectId start : Objects()) {
    if (visited[start]) continue;
    std::vector<ObjectId> component;
    std::deque<ObjectId> frontier{start};
    visited[start] = true;
    while (!frontier.empty()) {
      ObjectId id = frontier.front();
      frontier.pop_front();
      component.push_back(id);
      for (const auto& [other, sim] : adjacency_.at(id)) {
        (void)sim;
        if (!visited[other]) {
          visited[other] = true;
          frontier.push_back(other);
        }
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

}  // namespace dynamicc
