#ifndef DYNAMICC_DATA_SIMILARITY_GRAPH_H_
#define DYNAMICC_DATA_SIMILARITY_GRAPH_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/blocking.h"
#include "data/candidate_history.h"
#include "data/dataset.h"
#include "data/feature_index.h"
#include "data/similarity.h"
#include "data/types.h"

namespace dynamicc {

namespace obs {
class MetricsRegistry;
class Counter;
class Histogram;
}  // namespace obs

/// Sparse pairwise-similarity structure over the alive objects of a Dataset.
/// An edge (a, b, s) exists iff b was a blocking candidate of a and
/// s = Similarity(a, b) >= min_similarity. Pairs without an edge have
/// similarity 0 by convention ("the absence of an edge between two objects
/// represents non-similarity", §2.1).
///
/// The graph is incremental: Add/Remove/Update maintain the adjacency in
/// O(candidates) per operation, which is what allows dynamic re-clustering
/// to avoid quadratic work.
///
/// Scoring runs through a two-phase core (see docs/similarity.md): a
/// per-record FeatureIndex built once at Add/Update, and one batched
/// threshold-aware SimilarityBatch call per probe. The default
/// configuration is bit-identical to scoring each pair with the scalar
/// Similarity() in candidate-enumeration order — the batch kernels'
/// threshold contract plus original-order edge insertion guarantee it —
/// so clustering output does not depend on which core is active.
class SimilarityGraph {
 public:
  /// How candidate-history statistics (data/candidate_history.h) shape
  /// the scoring of a probe's candidate list.
  enum class HistoryMode {
    /// No history is kept.
    kOff,
    /// Candidates are *scored* in descending historical hit-rate order
    /// (warms the early-exit bounds with likely edges first), but edges
    /// are still inserted in the original enumeration order, so the
    /// clustering output stays byte-identical. The default.
    kOrder,
    /// Additionally skips candidates whose blocking key's smoothed
    /// hit rate fell below `prune_below_hit_rate` after at least
    /// `prune_min_trials` scored pairs. Approximate: may miss edges.
    /// Opt-in only.
    kPrune,
  };

  struct Options {
    /// Use the indexed batch core. When false, scoring is the seed
    /// scalar loop (per-pair virtual Similarity call); the feature
    /// index and history are not built at all.
    bool use_feature_index = true;

    HistoryMode history = HistoryMode::kOrder;

    /// kPrune knobs: skip a key's candidates when its smoothed hit rate
    /// is below the floor and it has at least `prune_min_trials`
    /// historical scored pairs.
    double prune_below_hit_rate = 0.02;
    uint64_t prune_min_trials = 32;
    CandidateHistory::Options history_options;

    /// When set, the graph reports sim.calls / sim.full / sim.pruned
    /// counters and the sim.batch_ns histogram here (docs/metrics.md).
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// The graph keeps (non-owning) references to `dataset` and `measure`,
  /// and owns the candidate provider. Both referents must outlive the graph.
  SimilarityGraph(const Dataset* dataset, const SimilarityMeasure* measure,
                  std::unique_ptr<CandidateProvider> candidates,
                  double min_similarity);

  SimilarityGraph(const Dataset* dataset, const SimilarityMeasure* measure,
                  std::unique_ptr<CandidateProvider> candidates,
                  double min_similarity, const Options& options);

  SimilarityGraph(const SimilarityGraph&) = delete;
  SimilarityGraph& operator=(const SimilarityGraph&) = delete;

  /// Registers an alive object and scores its candidate pairs.
  void AddObject(ObjectId id);

  /// Drops the object and all its edges. Call before/after Dataset::Remove;
  /// the graph keeps its own copy of blocking state so ordering is free.
  void RemoveObject(ObjectId id);

  /// Re-derives the object's edges after its record content changed.
  /// `old_record` is the content that was previously indexed.
  void UpdateObject(ObjectId id, const Record& old_record);

  /// Similarity of an existing edge, or 0 if no edge.
  double Similarity(ObjectId a, ObjectId b) const;

  /// True if the object is present in the graph.
  bool Contains(ObjectId id) const;

  /// Neighbor map (object -> similarity) of `id`. Must be present.
  const std::unordered_map<ObjectId, double>& Neighbors(ObjectId id) const;

  /// Sum of similarities between `id` and the given set of objects
  /// (only edges count). Convenience for objective deltas.
  double SumSimilarityTo(ObjectId id,
                         const std::vector<ObjectId>& others) const;

  /// Ids of all objects currently in the graph, ascending.
  std::vector<ObjectId> Objects() const;

  size_t num_objects() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  double min_similarity() const { return min_similarity_; }
  const Dataset& dataset() const { return *dataset_; }
  const SimilarityMeasure& measure() const { return *measure_; }
  const Options& options() const { return options_; }

  /// The feature index, or nullptr when running the seed scalar core.
  const FeatureIndex* feature_index() const { return features_.get(); }

  /// The candidate history, or nullptr when history is off (or the
  /// scalar core is active).
  const CandidateHistory* candidate_history() const { return history_.get(); }

  /// Connected components induced by the edges (singletons included).
  /// Used for "active cluster" detection in negative sampling (§5.3).
  std::vector<std::vector<ObjectId>> ConnectedComponents() const;

 private:
  void ScoreAgainstCandidates(ObjectId id);
  void ScoreAgainstCandidatesScalar(ObjectId id);
  void DropEdges(ObjectId id);

  const Dataset* dataset_;
  const SimilarityMeasure* measure_;
  std::unique_ptr<CandidateProvider> candidates_;
  double min_similarity_;
  Options options_;

  std::unique_ptr<FeatureIndex> features_;    // null in scalar mode
  std::unique_ptr<CandidateHistory> history_;  // null when history off

  // Metric handles resolved once at construction (null when unmetered).
  obs::Counter* sim_calls_ = nullptr;
  obs::Counter* sim_full_ = nullptr;
  obs::Counter* sim_pruned_ = nullptr;
  obs::Histogram* sim_batch_ns_ = nullptr;

  std::unordered_map<ObjectId, std::unordered_map<ObjectId, double>>
      adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_SIMILARITY_GRAPH_H_
