#ifndef DYNAMICC_DATA_SIMILARITY_GRAPH_H_
#define DYNAMICC_DATA_SIMILARITY_GRAPH_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "data/blocking.h"
#include "data/dataset.h"
#include "data/similarity.h"
#include "data/types.h"

namespace dynamicc {

/// Sparse pairwise-similarity structure over the alive objects of a Dataset.
/// An edge (a, b, s) exists iff b was a blocking candidate of a and
/// s = Similarity(a, b) >= min_similarity. Pairs without an edge have
/// similarity 0 by convention ("the absence of an edge between two objects
/// represents non-similarity", §2.1).
///
/// The graph is incremental: Add/Remove/Update maintain the adjacency in
/// O(candidates) per operation, which is what allows dynamic re-clustering
/// to avoid quadratic work.
class SimilarityGraph {
 public:
  /// The graph keeps (non-owning) references to `dataset` and `measure`,
  /// and owns the candidate provider. Both referents must outlive the graph.
  SimilarityGraph(const Dataset* dataset, const SimilarityMeasure* measure,
                  std::unique_ptr<CandidateProvider> candidates,
                  double min_similarity);

  SimilarityGraph(const SimilarityGraph&) = delete;
  SimilarityGraph& operator=(const SimilarityGraph&) = delete;

  /// Registers an alive object and scores its candidate pairs.
  void AddObject(ObjectId id);

  /// Drops the object and all its edges. Call before/after Dataset::Remove;
  /// the graph keeps its own copy of blocking state so ordering is free.
  void RemoveObject(ObjectId id);

  /// Re-derives the object's edges after its record content changed.
  /// `old_record` is the content that was previously indexed.
  void UpdateObject(ObjectId id, const Record& old_record);

  /// Similarity of an existing edge, or 0 if no edge.
  double Similarity(ObjectId a, ObjectId b) const;

  /// True if the object is present in the graph.
  bool Contains(ObjectId id) const;

  /// Neighbor map (object -> similarity) of `id`. Must be present.
  const std::unordered_map<ObjectId, double>& Neighbors(ObjectId id) const;

  /// Sum of similarities between `id` and the given set of objects
  /// (only edges count). Convenience for objective deltas.
  double SumSimilarityTo(ObjectId id,
                         const std::vector<ObjectId>& others) const;

  /// Ids of all objects currently in the graph, ascending.
  std::vector<ObjectId> Objects() const;

  size_t num_objects() const { return adjacency_.size(); }
  size_t num_edges() const { return num_edges_; }
  double min_similarity() const { return min_similarity_; }
  const Dataset& dataset() const { return *dataset_; }
  const SimilarityMeasure& measure() const { return *measure_; }

  /// Connected components induced by the edges (singletons included).
  /// Used for "active cluster" detection in negative sampling (§5.3).
  std::vector<std::vector<ObjectId>> ConnectedComponents() const;

 private:
  void ScoreAgainstCandidates(ObjectId id);
  void DropEdges(ObjectId id);

  const Dataset* dataset_;
  const SimilarityMeasure* measure_;
  std::unique_ptr<CandidateProvider> candidates_;
  double min_similarity_;

  std::unordered_map<ObjectId, std::unordered_map<ObjectId, double>>
      adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_SIMILARITY_GRAPH_H_
