#ifndef DYNAMICC_DATA_CANDIDATE_HISTORY_H_
#define DYNAMICC_DATA_CANDIDATE_HISTORY_H_

#include <cstdint>
#include <unordered_map>

namespace dynamicc {

/// Per-blocking-key outcome history of candidate scoring: how often a
/// candidate pair contributed by this key historically cleared the
/// similarity graph's edge threshold. This is the paper's own thesis —
/// learn from cluster-evolution history — applied to the hot path:
/// keys whose pairs almost never form edges (stop-word-like tokens,
/// sparse grid cells) are scored last, and in the explicitly-flagged
/// approximate mode not at all.
///
/// Rates are smoothed with a Beta-style prior so cold keys rank
/// neutrally instead of at the extremes.
class CandidateHistory {
 public:
  struct Options {
    /// Smoothing prior: a key with no history reads as
    /// prior_hits / prior_trials.
    double prior_hits = 1.0;
    double prior_trials = 2.0;
  };

  struct KeyStats {
    uint64_t trials = 0;  // candidate pairs this key contributed
    uint64_t hits = 0;    // of those, pairs that cleared the threshold
  };

  CandidateHistory() = default;
  explicit CandidateHistory(const Options& options) : options_(options) {}

  /// Folds `trials` scored pairs (`hits` of them admitted as edges)
  /// into the key's history.
  void RecordOutcome(uint64_t key_hash, uint64_t trials, uint64_t hits) {
    if (trials == 0) return;
    KeyStats& stats = stats_[key_hash];
    stats.trials += trials;
    stats.hits += hits;
  }

  /// Smoothed historical edge rate of the key, in (0, 1).
  double HitRate(uint64_t key_hash) const {
    const KeyStats* stats = Find(key_hash);
    double trials = options_.prior_trials;
    double hits = options_.prior_hits;
    if (stats != nullptr) {
      trials += static_cast<double>(stats->trials);
      hits += static_cast<double>(stats->hits);
    }
    return hits / trials;
  }

  /// Raw trial count of the key (0 when unseen) — pruning only engages
  /// past a minimum sample size.
  uint64_t Trials(uint64_t key_hash) const {
    const KeyStats* stats = Find(key_hash);
    return stats == nullptr ? 0 : stats->trials;
  }

  const KeyStats* Find(uint64_t key_hash) const {
    auto it = stats_.find(key_hash);
    return it == stats_.end() ? nullptr : &it->second;
  }

  size_t size() const { return stats_.size(); }
  const Options& options() const { return options_; }

 private:
  Options options_;
  std::unordered_map<uint64_t, KeyStats> stats_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_CANDIDATE_HISTORY_H_
