#ifndef DYNAMICC_DATA_SIMILARITY_H_
#define DYNAMICC_DATA_SIMILARITY_H_

#include <cstddef>

#include "data/record.h"

namespace dynamicc {

struct RecordFeatures;  // data/feature_index.h

/// One candidate of a batched scoring call: the record plus (optionally)
/// its precomputed features. `features` may be null — implementations
/// then fall back to the scalar path for that candidate. Both pointers
/// are only required to stay valid for the duration of the call.
struct SimCandidate {
  const Record* record = nullptr;
  const RecordFeatures* features = nullptr;
};

/// Pairwise similarity in [0, 1]; 1 means identical, 0 means unrelated.
/// Implementations must be symmetric and give Similarity(r, r) == 1 for any
/// record with non-empty content (content the measure reads: tokens for
/// Jaccard, text for the string measures, numeric for Euclidean).
/// Records that are empty under the measure score 0 against everything,
/// including an identical empty record — "no content" means "no
/// evidence of similarity", not "equal".
class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;

  /// Similarity score between two records.
  virtual double Similarity(const Record& a, const Record& b) const = 0;

  /// Scores `probe` against `count` candidates into out[0..count), one
  /// virtual dispatch for the whole batch.
  ///
  /// Threshold contract: out[i] is bit-identical to
  /// Similarity(probe, *candidates[i].record) whenever that exact score
  /// is >= min_similarity; when it is below, out[i] may be any value
  /// < min_similarity (threshold-aware kernels bail out early on pairs
  /// that provably cannot clear the bound). Pass min_similarity <= 0 to
  /// force exact scores for every pair.
  ///
  /// Returns the number of candidates fully evaluated — pairs that were
  /// not short-circuited by an upper bound (the "distance call" count
  /// the benches track).
  ///
  /// The base implementation loops over Similarity(); kernels override
  /// it with indexed merge-intersection / dot-product / banded-DP /
  /// running-sum loops over the precomputed features.
  virtual size_t SimilarityBatch(const Record& probe,
                                 const RecordFeatures* probe_features,
                                 const SimCandidate* candidates, size_t count,
                                 double min_similarity, double* out) const;

  /// RecordFeatureKind mask (data/feature_index.h) of the features this
  /// measure's batch kernel reads. The graph's feature index only
  /// builds what the configured measure asks for. Default: everything.
  virtual uint32_t FeatureNeeds() const;

  /// Short name for reports ("jaccard", "trigram-cosine", ...).
  virtual const char* Name() const = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_SIMILARITY_H_
