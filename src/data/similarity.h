#ifndef DYNAMICC_DATA_SIMILARITY_H_
#define DYNAMICC_DATA_SIMILARITY_H_

#include "data/record.h"

namespace dynamicc {

/// Pairwise similarity in [0, 1]; 1 means identical, 0 means unrelated.
/// Implementations must be symmetric and give Similarity(r, r) == 1 for any
/// record with non-empty content.
class SimilarityMeasure {
 public:
  virtual ~SimilarityMeasure() = default;

  /// Similarity score between two records.
  virtual double Similarity(const Record& a, const Record& b) const = 0;

  /// Short name for reports ("jaccard", "trigram-cosine", ...).
  virtual const char* Name() const = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_SIMILARITY_H_
