#include "data/blocking.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_utils.h"

namespace dynamicc {

// ------------------------------------------------------- CandidateProvider

KeyedCandidates CandidateProvider::CandidatesWithKeys(
    const Record& record) const {
  KeyedCandidates out;
  out.ids = Candidates(record);
  out.keys.assign(out.ids.size(), 0);
  return out;
}

// ---------------------------------------------------------------- AllPairs

std::vector<ObjectId> AllPairsBlocker::Candidates(const Record& record) const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (ObjectId id : objects_) {
    if (id != record.id) out.push_back(id);
  }
  return out;
}

void AllPairsBlocker::Add(const Record& record) { objects_.insert(record.id); }

void AllPairsBlocker::Remove(const Record& record) {
  objects_.erase(record.id);
}

void AllPairsBlocker::Update(const Record& old_record,
                             const Record& new_record) {
  (void)old_record;
  objects_.insert(new_record.id);
}

// ------------------------------------------------------------ TokenBlocker

TokenBlocker::TokenBlocker(int prefix_len, size_t max_bucket)
    : prefix_len_(prefix_len), max_bucket_(max_bucket) {}

std::vector<std::string> TokenBlocker::KeysFor(const Record& record) const {
  std::vector<std::string> keys;
  auto add_token = [&keys, this](const std::string& raw) {
    std::string token = ToLowerAscii(raw);
    if (token.size() < 2) return;
    keys.push_back(token);
    if (prefix_len_ > 0 && static_cast<int>(token.size()) > prefix_len_) {
      keys.push_back("p:" + token.substr(0, prefix_len_));
    }
  };
  for (const auto& token : record.tokens) add_token(token);
  if (record.tokens.empty() && !record.text.empty()) {
    for (const auto& token : SplitTokens(record.text)) add_token(token);
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<ObjectId> TokenBlocker::Candidates(const Record& record) const {
  std::unordered_set<ObjectId> seen;
  for (const auto& key : KeysFor(record)) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    if (it->second.size() > max_bucket_) continue;  // stop-word-like key
    for (ObjectId id : it->second) {
      if (id != record.id) seen.insert(id);
    }
  }
  return {seen.begin(), seen.end()};
}

KeyedCandidates TokenBlocker::CandidatesWithKeys(const Record& record) const {
  // Mirrors Candidates() insertion-for-insertion: the same sequence of
  // unordered_set inserts yields the same iteration order, so the id
  // sequence is identical and callers can toggle keyed enumeration
  // without perturbing downstream edge-insertion order.
  std::unordered_set<ObjectId> seen;
  std::unordered_map<ObjectId, uint64_t> key_of;
  for (const auto& key : KeysFor(record)) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    if (it->second.size() > max_bucket_) continue;  // stop-word-like key
    uint64_t key_hash = 0;
    for (ObjectId id : it->second) {
      if (id == record.id) continue;
      if (seen.insert(id).second) {
        if (key_hash == 0) key_hash = BlockingKeyHash(key);
        key_of.emplace(id, key_hash);
      }
    }
  }
  KeyedCandidates out;
  out.ids.assign(seen.begin(), seen.end());
  out.keys.reserve(out.ids.size());
  for (ObjectId id : out.ids) out.keys.push_back(key_of[id]);
  return out;
}

void TokenBlocker::Add(const Record& record) {
  for (const auto& key : KeysFor(record)) index_[key].insert(record.id);
}

void TokenBlocker::Remove(const Record& record) {
  for (const auto& key : KeysFor(record)) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    it->second.erase(record.id);
    if (it->second.empty()) index_.erase(it);
  }
}

void TokenBlocker::Update(const Record& old_record, const Record& new_record) {
  Remove(old_record);
  Add(new_record);
}

// ---------------------------------------------------------- StableShardKey

std::string StableShardKey(const Record& record, double numeric_cell) {
  auto smallest_lowercase = [](const std::vector<std::string>& tokens) {
    std::string best;
    for (const auto& raw : tokens) {
      std::string token = ToLowerAscii(raw);
      // Same filter as TokenBlocker::KeysFor: 1-character tokens are not
      // blocking keys, so they must not influence routing either (two
      // records with identical blocking keys have to co-locate).
      if (token.size() < 2) continue;
      if (best.empty() || token < best) best = token;
    }
    return best;
  };
  if (!record.tokens.empty()) {
    std::string key = smallest_lowercase(record.tokens);
    if (!key.empty()) return key;
  }
  if (!record.text.empty()) {
    std::string key = smallest_lowercase(SplitTokens(record.text));
    if (!key.empty()) return key;
  }
  if (!record.numeric.empty()) {
    DYNAMICC_CHECK_GT(numeric_cell, 0.0);
    int64_t cell =
        static_cast<int64_t>(std::floor(record.numeric[0] / numeric_cell));
    return "n:" + std::to_string(cell);
  }
  return "";
}

uint64_t BlockingKeyHash(const std::string& key) {
  // FNV-1a, 64-bit. Chosen over std::hash for a stable value across
  // standard libraries and process runs (HashShardRouter::HashKey pins
  // the same constants in its tests).
  uint64_t hash = 14695981039346656037ull;
  for (unsigned char c : key) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

uint64_t StableShardKeyHash(const Record& record, double numeric_cell) {
  return BlockingKeyHash(StableShardKey(record, numeric_cell));
}

// ------------------------------------------------------------- GridBlocker

GridBlocker::GridBlocker(double cell_size) : cell_size_(cell_size) {
  DYNAMICC_CHECK_GT(cell_size, 0.0);
}

void GridBlocker::CellCoords(const Record& record, int64_t coords[3]) const {
  for (int d = 0; d < 3; ++d) {
    double v = d < static_cast<int>(record.numeric.size()) ? record.numeric[d]
                                                           : 0.0;
    coords[d] = static_cast<int64_t>(std::floor(v / cell_size_));
  }
}

GridBlocker::CellKey GridBlocker::PackCoords(const int64_t coords[3]) {
  // 21 bits per signed coordinate; plenty for our synthetic extents.
  auto pack = [](int64_t c) -> uint64_t {
    return static_cast<uint64_t>(c + (1 << 20)) & ((1 << 21) - 1);
  };
  return (pack(coords[0]) << 42) | (pack(coords[1]) << 21) | pack(coords[2]);
}

GridBlocker::CellKey GridBlocker::KeyFor(const Record& record) const {
  int64_t coords[3];
  CellCoords(record, coords);
  return PackCoords(coords);
}

std::vector<ObjectId> GridBlocker::Candidates(const Record& record) const {
  int64_t base[3];
  CellCoords(record, base);
  std::vector<ObjectId> out;
  int dims = std::min<int>(3, static_cast<int>(record.numeric.size()));
  int64_t probe[3];
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dims < 2 && dy != 0) continue;
        if (dims < 3 && dz != 0) continue;
        probe[0] = base[0] + dx;
        probe[1] = base[1] + dy;
        probe[2] = base[2] + dz;
        auto it = cells_.find(PackCoords(probe));
        if (it == cells_.end()) continue;
        for (ObjectId id : it->second) {
          if (id != record.id) out.push_back(id);
        }
      }
    }
  }
  return out;
}

KeyedCandidates GridBlocker::CandidatesWithKeys(const Record& record) const {
  int64_t base[3];
  CellCoords(record, base);
  KeyedCandidates out;
  int dims = std::min<int>(3, static_cast<int>(record.numeric.size()));
  int64_t probe[3];
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dims < 2 && dy != 0) continue;
        if (dims < 3 && dz != 0) continue;
        probe[0] = base[0] + dx;
        probe[1] = base[1] + dy;
        probe[2] = base[2] + dz;
        CellKey cell = PackCoords(probe);
        auto it = cells_.find(cell);
        if (it == cells_.end()) continue;
        for (ObjectId id : it->second) {
          if (id != record.id) {
            out.ids.push_back(id);
            out.keys.push_back(cell);
          }
        }
      }
    }
  }
  return out;
}

void GridBlocker::Add(const Record& record) {
  cells_[KeyFor(record)].insert(record.id);
}

void GridBlocker::Remove(const Record& record) {
  auto it = cells_.find(KeyFor(record));
  if (it == cells_.end()) return;
  it->second.erase(record.id);
  if (it->second.empty()) cells_.erase(it);
}

void GridBlocker::Update(const Record& old_record, const Record& new_record) {
  Remove(old_record);
  Add(new_record);
}

}  // namespace dynamicc
