#ifndef DYNAMICC_DATA_TYPES_H_
#define DYNAMICC_DATA_TYPES_H_

#include <cstdint>
#include <limits>

namespace dynamicc {

/// Identifier of a database object (record). Ids are assigned by Dataset and
/// are never reused, so they remain stable across add/remove/update streams.
using ObjectId = uint32_t;

/// Identifier of a cluster inside a Clustering. Cluster ids are also never
/// reused within one Clustering instance.
using ClusterId = uint32_t;

inline constexpr ObjectId kInvalidObject =
    std::numeric_limits<ObjectId>::max();
inline constexpr ClusterId kInvalidCluster =
    std::numeric_limits<ClusterId>::max();

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_TYPES_H_
