#include "data/similarity.h"

#include "data/feature_index.h"

namespace dynamicc {

size_t SimilarityMeasure::SimilarityBatch(const Record& probe,
                                          const RecordFeatures* probe_features,
                                          const SimCandidate* candidates,
                                          size_t count, double min_similarity,
                                          double* out) const {
  (void)probe_features;
  (void)min_similarity;
  for (size_t i = 0; i < count; ++i) {
    out[i] = Similarity(probe, *candidates[i].record);
  }
  return count;
}

uint32_t SimilarityMeasure::FeatureNeeds() const { return kFeatureAll; }

}  // namespace dynamicc
