#ifndef DYNAMICC_DATA_RECORD_H_
#define DYNAMICC_DATA_RECORD_H_

#include <string>
#include <vector>

#include "data/types.h"

namespace dynamicc {

/// A database object. A record carries up to three representations so that
/// one type serves every workload in the paper:
///  - `tokens`  : token set for Jaccard similarity (Cora-like, Febrl),
///  - `text`    : raw string for trigram-cosine / Levenshtein similarity
///                (MusicBrainz-like, Febrl),
///  - `numeric` : feature vector for Euclidean-derived similarity
///                (Access-like, Road-like).
/// Unused representations are simply left empty.
struct Record {
  /// Stable id; kInvalidObject until the record is added to a Dataset.
  ObjectId id = kInvalidObject;

  /// Ground-truth entity id from the generator (used by evaluation and by
  /// workload replay; the algorithms themselves never read it).
  uint32_t entity = 0;

  std::vector<std::string> tokens;
  std::string text;
  std::vector<double> numeric;
};

/// Returns a short human-readable description (for logs and examples).
std::string DescribeRecord(const Record& record);

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_RECORD_H_
