#ifndef DYNAMICC_DATA_RECORD_H_
#define DYNAMICC_DATA_RECORD_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "data/types.h"
#include "util/status.h"

namespace dynamicc {

/// A database object. A record carries up to three representations so that
/// one type serves every workload in the paper:
///  - `tokens`  : token set for Jaccard similarity (Cora-like, Febrl),
///  - `text`    : raw string for trigram-cosine / Levenshtein similarity
///                (MusicBrainz-like, Febrl),
///  - `numeric` : feature vector for Euclidean-derived similarity
///                (Access-like, Road-like).
/// Unused representations are simply left empty.
struct Record {
  /// Stable id; kInvalidObject until the record is added to a Dataset.
  ObjectId id = kInvalidObject;

  /// Ground-truth entity id from the generator (used by evaluation and by
  /// workload replay; the algorithms themselves never read it).
  uint32_t entity = 0;

  std::vector<std::string> tokens;
  std::string text;
  std::vector<double> numeric;
};

/// Returns a short human-readable description (for logs and examples).
std::string DescribeRecord(const Record& record);

/// Line-oriented wire form of a record's content — the ONE dialect
/// every durable format speaks (service snapshots, replication deltas):
/// "entity token_count numeric_count\n", length-prefixed tokens and
/// text (util/wire.h), then the numerics line. Callers set the stream's
/// double precision (both formats use 17 significant digits, exact
/// round trip) and may prepend their own fields to the header line
/// (the snapshot's alive flag). The id is not written: it is assigned
/// by the consuming Dataset.
void WriteRecordWire(std::ostream& os, const Record& record);

/// Reads one WriteRecordWire block. `max_bytes` bounds the declared
/// counts (callers pass the enclosing file's size) so corrupted counts
/// are rejected instead of honored with giant allocations.
Status ReadRecordWire(std::istream& is, size_t max_bytes, Record* record);

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_RECORD_H_
