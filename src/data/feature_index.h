#ifndef DYNAMICC_DATA_FEATURE_INDEX_H_
#define DYNAMICC_DATA_FEATURE_INDEX_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/record.h"
#include "data/types.h"

namespace dynamicc {

/// Which per-record similarity features a measure consumes (bitmask).
/// The index only builds what the graph's measure asks for, so e.g. a
/// Jaccard-only workload never pays for trigram extraction at Add time.
enum RecordFeatureKind : uint32_t {
  kFeatureTokens = 1u << 0,    // interned sorted token ids (Jaccard)
  kFeatureTrigrams = 1u << 1,  // sorted trigram id/count vectors (cosine)
  kFeatureNumeric = 1u << 2,   // contiguous numeric view (Euclidean)
  kFeatureAll = kFeatureTokens | kFeatureTrigrams | kFeatureNumeric,
};

/// Precomputed similarity inputs of one record. Built once when the
/// record enters the similarity graph (Add/Update) and reused by every
/// subsequent pairwise scoring, replacing the per-call
/// unordered_set<std::string> / TrigramCounts hash-map construction the
/// seed kernels paid per pair. Everything here is self-contained (no
/// pointers into the Dataset, whose record storage reallocates on Add).
struct RecordFeatures {
  /// Sorted unique interned ids of `tokens` (identity-preserving: two
  /// equal token strings get the same id), for merge-intersection
  /// Jaccard. Sorted by id, which is a total order consistent across
  /// both sides of any pair from the same index.
  std::vector<uint32_t> token_ids;

  /// Character trigrams of the '#'-padded `text`, packed 3 bytes into a
  /// 24-bit id (byte-wise, so non-ASCII bytes are fine), sorted
  /// ascending with parallel multiplicities. Replaces TrigramCounts.
  std::vector<uint32_t> trigram_ids;
  std::vector<uint32_t> trigram_counts;
  /// Σ count² — integer-valued, so it is exact in a double and equal to
  /// the seed's norm accumulation regardless of summation order.
  double trigram_norm2 = 0.0;
  /// Σ count (L1 mass) and max count (L∞): the cosine upper bound
  /// dot ≤ min(L1(a)·L∞(b), L1(b)·L∞(a)) drives threshold skipping.
  uint64_t trigram_l1 = 0;
  uint32_t trigram_max = 0;

  /// Contiguous copy of `numeric` owned by the index (stable storage,
  /// vectorization-friendly; Dataset's own vector moves on growth).
  std::vector<double> numeric;

  /// Byte length of `text` (banded-Levenshtein length prefilter).
  uint32_t text_size = 0;
};

/// Per-object feature store owned by a SimilarityGraph. Object ids are
/// dense per dataset, so storage is a flat vector indexed by id.
/// Token interning is append-only: ids are never reused, matching the
/// dataset's own id discipline (the intern table grows with the
/// vocabulary, not with the stream).
class FeatureIndex {
 public:
  /// `wanted` is a RecordFeatureKind mask; omitted kinds stay empty.
  explicit FeatureIndex(uint32_t wanted = kFeatureAll);

  FeatureIndex(const FeatureIndex&) = delete;
  FeatureIndex& operator=(const FeatureIndex&) = delete;

  /// Builds (or rebuilds, for updates) the features of `record` under
  /// `id`. Returns the stored entry.
  const RecordFeatures& Insert(ObjectId id, const Record& record);

  /// Drops the entry (storage is retained for id reuse-free datasets).
  void Remove(ObjectId id);

  /// The entry for `id`, or nullptr when none is indexed.
  const RecordFeatures* Find(ObjectId id) const;

  size_t size() const { return live_; }
  size_t vocabulary_size() const { return token_intern_.size(); }
  uint32_t wanted() const { return wanted_; }

  /// Builds features standalone (benches/tests) using this index's
  /// intern table without storing the result.
  void Build(const Record& record, RecordFeatures* out);

  /// Builds features for a query probe WITHOUT mutating the intern
  /// table: tokens already interned get their ids; unseen tokens get
  /// synthetic ids >= vocabulary_size() (deduplicated within the probe)
  /// that match nothing indexed. Scores against indexed records are
  /// exactly what Insert-then-score would give, because an unseen probe
  /// token can intersect nothing. Safe to call concurrently with other
  /// const methods — this is the read-path entry point.
  void BuildQuery(const Record& record, RecordFeatures* out) const;

 private:
  uint32_t InternToken(const std::string& token);
  /// The token-independent half of Build/BuildQuery (trigrams, numeric,
  /// text_size); clears `out` first.
  void BuildContent(const Record& record, RecordFeatures* out) const;

  uint32_t wanted_;
  std::unordered_map<std::string, uint32_t> token_intern_;
  std::vector<RecordFeatures> features_;
  std::vector<char> present_;
  size_t live_ = 0;
};

/// |a ∩ b| of two ascending unique uint32 arrays (merge-intersection;
/// dispatches to an AVX2 block-scan on large inputs when the CPU has
/// it — the count is integer-exact either way).
size_t CountSortedIntersection(const uint32_t* a, size_t a_size,
                               const uint32_t* b, size_t b_size);

/// True when the runtime CPU supports AVX2 (cached after first call).
bool CpuHasAvx2();

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_FEATURE_INDEX_H_
