#ifndef DYNAMICC_DATA_DATASET_H_
#define DYNAMICC_DATA_DATASET_H_

#include <vector>

#include "data/record.h"
#include "data/types.h"

namespace dynamicc {

/// Dynamic collection of records. Objects are added, removed, and updated
/// continuously (the paper's §3.1 operation model); ids are assigned on Add
/// and never reused, so removed slots stay tombstoned.
class Dataset {
 public:
  Dataset() = default;

  /// Adds a record and returns its assigned id.
  ObjectId Add(Record record);

  /// Removes the record; it must currently be alive.
  void Remove(ObjectId id);

  /// Replaces the record's content in place (same id). The record must be
  /// alive. Per §6.1 an update behaves like remove+add for clustering, but
  /// the dataset keeps the identity stable.
  void Update(ObjectId id, Record record);

  /// Accessor; the record must be alive (or have been alive: tombstoned
  /// records remain readable for evaluation until overwritten).
  const Record& Get(ObjectId id) const;

  bool IsAlive(ObjectId id) const;

  /// All currently alive ids, ascending.
  std::vector<ObjectId> AliveIds() const;

  size_t alive_count() const { return alive_count_; }
  /// Total ids ever assigned (== one past the largest id).
  size_t total_count() const { return records_.size(); }

 private:
  std::vector<Record> records_;
  std::vector<bool> alive_;
  size_t alive_count_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_DATASET_H_
