#include "data/feature_index.h"

#include <algorithm>

#include "util/logging.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define DYNAMICC_HAVE_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

namespace dynamicc {

FeatureIndex::FeatureIndex(uint32_t wanted) : wanted_(wanted) {}

uint32_t FeatureIndex::InternToken(const std::string& token) {
  auto [it, inserted] =
      token_intern_.emplace(token, static_cast<uint32_t>(token_intern_.size()));
  (void)inserted;
  return it->second;
}

void FeatureIndex::Build(const Record& record, RecordFeatures* out) {
  BuildContent(record, out);
  if ((wanted_ & kFeatureTokens) != 0 && !record.tokens.empty()) {
    out->token_ids.reserve(record.tokens.size());
    for (const std::string& token : record.tokens) {
      out->token_ids.push_back(InternToken(token));
    }
    std::sort(out->token_ids.begin(), out->token_ids.end());
    out->token_ids.erase(
        std::unique(out->token_ids.begin(), out->token_ids.end()),
        out->token_ids.end());
  }
}

void FeatureIndex::BuildQuery(const Record& record,
                              RecordFeatures* out) const {
  BuildContent(record, out);
  if ((wanted_ & kFeatureTokens) != 0 && !record.tokens.empty()) {
    // Unseen tokens get synthetic ids past the intern table: they can
    // intersect nothing indexed, but still count toward the probe's set
    // size (the Jaccard denominator), so the score equals the scalar
    // path's. Duplicate unseen strings must share one synthetic id or
    // the probe's set size would inflate.
    std::unordered_map<std::string, uint32_t> unseen;
    out->token_ids.reserve(record.tokens.size());
    for (const std::string& token : record.tokens) {
      auto it = token_intern_.find(token);
      if (it != token_intern_.end()) {
        out->token_ids.push_back(it->second);
      } else {
        uint32_t next =
            static_cast<uint32_t>(token_intern_.size() + unseen.size());
        auto [slot, inserted] = unseen.emplace(token, next);
        (void)inserted;
        out->token_ids.push_back(slot->second);
      }
    }
    std::sort(out->token_ids.begin(), out->token_ids.end());
    out->token_ids.erase(
        std::unique(out->token_ids.begin(), out->token_ids.end()),
        out->token_ids.end());
  }
}

void FeatureIndex::BuildContent(const Record& record,
                                RecordFeatures* out) const {
  out->token_ids.clear();
  out->trigram_ids.clear();
  out->trigram_counts.clear();
  out->trigram_norm2 = 0.0;
  out->trigram_l1 = 0;
  out->trigram_max = 0;
  out->numeric.clear();
  out->text_size = static_cast<uint32_t>(record.text.size());

  if ((wanted_ & kFeatureTrigrams) != 0 && !record.text.empty()) {
    // Same padding convention as TrigramCounts: "##" + text + "##",
    // one trigram per window. Bytes are taken unsigned so non-ASCII
    // content packs cleanly into the 24-bit id.
    std::string padded;
    padded.reserve(record.text.size() + 4);
    padded.append("##").append(record.text).append("##");
    out->trigram_ids.reserve(padded.size() - 2);
    for (size_t i = 0; i + 3 <= padded.size(); ++i) {
      uint32_t id = (static_cast<uint32_t>(static_cast<unsigned char>(
                         padded[i]))
                     << 16) |
                    (static_cast<uint32_t>(static_cast<unsigned char>(
                         padded[i + 1]))
                     << 8) |
                    static_cast<uint32_t>(static_cast<unsigned char>(
                        padded[i + 2]));
      out->trigram_ids.push_back(id);
    }
    std::sort(out->trigram_ids.begin(), out->trigram_ids.end());
    // Run-length collapse into (id, count); the aggregates are all
    // integer-valued, so the doubles below are exact.
    size_t write = 0;
    for (size_t read = 0; read < out->trigram_ids.size();) {
      uint32_t id = out->trigram_ids[read];
      size_t run = read;
      while (run < out->trigram_ids.size() && out->trigram_ids[run] == id) {
        ++run;
      }
      uint32_t count = static_cast<uint32_t>(run - read);
      out->trigram_ids[write++] = id;
      out->trigram_counts.push_back(count);
      out->trigram_norm2 +=
          static_cast<double>(count) * static_cast<double>(count);
      out->trigram_l1 += count;
      out->trigram_max = std::max(out->trigram_max, count);
      read = run;
    }
    out->trigram_ids.resize(write);
  }

  if ((wanted_ & kFeatureNumeric) != 0 && !record.numeric.empty()) {
    out->numeric = record.numeric;
  }
}

const RecordFeatures& FeatureIndex::Insert(ObjectId id, const Record& record) {
  size_t slot = static_cast<size_t>(id);
  if (slot >= features_.size()) {
    features_.resize(slot + 1);
    present_.resize(slot + 1, 0);
  }
  if (!present_[slot]) {
    present_[slot] = 1;
    ++live_;
  }
  Build(record, &features_[slot]);
  return features_[slot];
}

void FeatureIndex::Remove(ObjectId id) {
  size_t slot = static_cast<size_t>(id);
  DYNAMICC_CHECK(slot < present_.size() && present_[slot])
      << "object " << id << " not indexed";
  present_[slot] = 0;
  features_[slot] = RecordFeatures{};
  --live_;
}

const RecordFeatures* FeatureIndex::Find(ObjectId id) const {
  size_t slot = static_cast<size_t>(id);
  if (slot >= present_.size() || !present_[slot]) return nullptr;
  return &features_[slot];
}

namespace {

size_t CountSortedIntersectionScalar(const uint32_t* a, size_t a_size,
                                     const uint32_t* b, size_t b_size) {
  size_t i = 0, j = 0, count = 0;
  while (i < a_size && j < b_size) {
    uint32_t x = a[i];
    uint32_t y = b[j];
    count += (x == y);
    i += (x <= y);
    j += (y <= x);
  }
  return count;
}

#ifdef DYNAMICC_HAVE_AVX2_DISPATCH
/// Probe each element of the smaller array against 8-wide blocks of the
/// larger one. Blocks whose maximum is below the needle are skipped
/// whole; anything before the current block is known to be smaller than
/// the needle, so a present needle is always inside the current block.
__attribute__((target("avx2"))) size_t CountSortedIntersectionAvx2(
    const uint32_t* small, size_t small_size, const uint32_t* large,
    size_t large_size) {
  size_t j = 0, count = 0;
  for (size_t i = 0; i < small_size; ++i) {
    uint32_t v = small[i];
    while (j + 8 <= large_size && large[j + 7] < v) j += 8;
    if (j + 8 <= large_size) {
      __m256i needle = _mm256_set1_epi32(static_cast<int>(v));
      __m256i block =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(large + j));
      __m256i eq = _mm256_cmpeq_epi32(block, needle);
      count += _mm256_movemask_epi8(eq) != 0;
    } else {
      while (j < large_size && large[j] < v) ++j;
      if (j == large_size) break;
      count += (large[j] == v);
    }
  }
  return count;
}
#endif  // DYNAMICC_HAVE_AVX2_DISPATCH

}  // namespace

bool CpuHasAvx2() {
#ifdef DYNAMICC_HAVE_AVX2_DISPATCH
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

size_t CountSortedIntersection(const uint32_t* a, size_t a_size,
                               const uint32_t* b, size_t b_size) {
  if (a_size > b_size) {
    std::swap(a, b);
    std::swap(a_size, b_size);
  }
#ifdef DYNAMICC_HAVE_AVX2_DISPATCH
  // The block scan costs O(small · large/8): it pays when the larger
  // side is long enough to amortize block skipping, not on the 8-token
  // sets typical of blocking keys.
  if (b_size >= 64 && b_size >= 4 * a_size && CpuHasAvx2()) {
    return CountSortedIntersectionAvx2(a, a_size, b, b_size);
  }
#endif
  return CountSortedIntersectionScalar(a, a_size, b, b_size);
}

}  // namespace dynamicc
