#ifndef DYNAMICC_DATA_BLOCKING_H_
#define DYNAMICC_DATA_BLOCKING_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/dataset.h"
#include "data/record.h"
#include "data/types.h"

namespace dynamicc {

/// Candidate list annotated with the blocking key that contributed each
/// candidate (keys[i] is a BlockingKeyHash-style 64-bit key identity for
/// ids[i]; 0 when the provider has no key notion). The similarity graph
/// feeds these keys into its candidate history (data/candidate_history.h)
/// to order and — in approximate mode — prune scoring work.
struct KeyedCandidates {
  std::vector<ObjectId> ids;
  std::vector<uint64_t> keys;
};

/// Produces, for a given record, the set of existing objects that could be
/// similar to it (candidate pairs). The similarity graph only scores
/// candidate pairs, which is what makes the system scale past quadratic
/// pair enumeration — the standard blocking technique from record linkage.
///
/// Implementations maintain their own index and are informed of object
/// lifecycle through Add/Remove/Update.
class CandidateProvider {
 public:
  virtual ~CandidateProvider() = default;

  /// Candidates among currently indexed objects for `record` (which may or
  /// may not itself be indexed; it is excluded from the result if it is).
  virtual std::vector<ObjectId> Candidates(const Record& record) const = 0;

  /// Candidates plus the contributing blocking key of each. The id
  /// sequence MUST be identical to Candidates(record) — callers rely on
  /// that to keep edge-insertion order (and therefore clustering output)
  /// byte-identical whether or not they ask for keys. The base
  /// implementation wraps Candidates() with key 0 for every id.
  virtual KeyedCandidates CandidatesWithKeys(const Record& record) const;

  virtual void Add(const Record& record) = 0;
  virtual void Remove(const Record& record) = 0;

  /// Replaces the indexed representation of record.id.
  virtual void Update(const Record& old_record, const Record& new_record) = 0;
};

/// Trivial quadratic blocker: every indexed object is a candidate. Intended
/// for small datasets and for tests that need exhaustive pair coverage.
class AllPairsBlocker final : public CandidateProvider {
 public:
  std::vector<ObjectId> Candidates(const Record& record) const override;
  void Add(const Record& record) override;
  void Remove(const Record& record) override;
  void Update(const Record& old_record, const Record& new_record) override;

 private:
  std::unordered_set<ObjectId> objects_;
};

/// Inverted-index blocker over textual keys. The key set of a record is its
/// lowercase tokens plus (optionally) the first `prefix_len` characters of
/// each token — two records are candidates if they share at least one key.
class TokenBlocker final : public CandidateProvider {
 public:
  /// `prefix_len` == 0 disables prefix keys. `max_bucket` bounds the size of
  /// one posting list; oversized buckets (stop-word-like keys) are skipped
  /// during candidate lookup to bound cost.
  explicit TokenBlocker(int prefix_len = 0, size_t max_bucket = 512);

  std::vector<ObjectId> Candidates(const Record& record) const override;
  /// Same id sequence as Candidates(); keys[i] is the BlockingKeyHash of
  /// the first key (in sorted key order) whose posting list contributed
  /// ids[i].
  KeyedCandidates CandidatesWithKeys(const Record& record) const override;
  void Add(const Record& record) override;
  void Remove(const Record& record) override;
  void Update(const Record& old_record, const Record& new_record) override;

 private:
  std::vector<std::string> KeysFor(const Record& record) const;

  int prefix_len_;
  size_t max_bucket_;
  std::unordered_map<std::string, std::unordered_set<ObjectId>> index_;
};

/// Stable shard key of a record — the content-derived key that
/// hash-of-blocking-key routing (see service/shard_router.h) partitions
/// on. Deterministic across processes and ingest order (no std::hash):
///  - token records : the lexicographically smallest lowercase token of
///    length >= 2 (the same filter TokenBlocker applies to its keys, so
///    routing never disagrees with blocking),
///  - text records  : likewise over the whitespace tokens of `text`,
///  - numeric records: the floor cell of numeric[0] with side
///    `numeric_cell`. Unlike the token branch this does NOT mirror the
///    blocker: GridBlocker treats adjacent cells as candidates, so a
///    similar pair straddling a cell boundary can land on different
///    shards. Numeric routing is an approximation — align the cell
///    with the workload's cluster separation to bound the error, or
///    supply a custom KeyExtractor for exactness.
///  - empty records : "".
/// Two records that can be similar end up on the same shard exactly when
/// they share this key, so the guarantee is workload-dependent: it holds
/// for blocking-disjoint streams (each entity's records share their first
/// key and no key crosses entities), which is the partitioning regime the
/// sharded service is designed for.
std::string StableShardKey(const Record& record, double numeric_cell = 8.0);

/// Stable 64-bit FNV-1a hash of a blocking-group key. This is the
/// *identity of a blocking group* throughout the serving stack: the hash
/// router reduces it modulo the shard count, the placement table keys
/// its overrides on it, and migrations name the group they move by it.
/// Deterministic across processes and standard libraries (no std::hash),
/// so persisted placements never reshuffle.
uint64_t BlockingKeyHash(const std::string& key);

/// BlockingKeyHash of a record's StableShardKey — the group a record
/// belongs to under default content-addressed routing.
uint64_t StableShardKeyHash(const Record& record, double numeric_cell = 8.0);

/// Spatial grid blocker for numeric records. Cells have side `cell_size`;
/// candidates are all objects in the record's cell and the 3^d adjacent
/// cells (d capped at 3 dimensions; extra dimensions are ignored for
/// blocking but still participate in similarity).
class GridBlocker final : public CandidateProvider {
 public:
  explicit GridBlocker(double cell_size);

  std::vector<ObjectId> Candidates(const Record& record) const override;
  /// Same id sequence as Candidates(); keys[i] is the packed cell key of
  /// the grid cell ids[i] was found in.
  KeyedCandidates CandidatesWithKeys(const Record& record) const override;
  void Add(const Record& record) override;
  void Remove(const Record& record) override;
  void Update(const Record& old_record, const Record& new_record) override;

 private:
  using CellKey = uint64_t;
  CellKey KeyFor(const Record& record) const;
  void CellCoords(const Record& record, int64_t coords[3]) const;
  static CellKey PackCoords(const int64_t coords[3]);

  double cell_size_;
  std::unordered_map<CellKey, std::unordered_set<ObjectId>> cells_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_BLOCKING_H_
