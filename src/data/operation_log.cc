#include "data/operation_log.h"

#include <utility>

namespace dynamicc {

uint64_t OperationLog::Append(DataOperation op) {
  uint64_t sequence = appended_++;
  ++pending_logical_;
  switch (op.kind) {
    case DataOperation::Kind::kAdd: {
      size_t index = base_ + entries_.size();
      if (op.target != kInvalidObject) open_[op.target] = index;
      entries_.push_back(Entry{sequence, std::move(op), 1, false});
      ++pending_;
      break;
    }
    case DataOperation::Kind::kUpdate: {
      auto it = open_.find(op.target);
      if (it != open_.end()) {
        // add+update -> add with the new record; update+update -> the
        // later update wins. The host entry keeps its position, so add
        // order (and with it id assignment) is preserved.
        Entry& entry = EntryAt(it->second);
        entry.op.record = std::move(op.record);
        entry.logical += 1;
        ++coalesced_;
      } else {
        size_t index = base_ + entries_.size();
        open_[op.target] = index;
        entries_.push_back(Entry{sequence, std::move(op), 1, false});
        ++pending_;
      }
      break;
    }
    case DataOperation::Kind::kRemove: {
      auto it = open_.find(op.target);
      if (it != open_.end()) {
        Entry& entry = EntryAt(it->second);
        if (entry.op.kind == DataOperation::Kind::kAdd) {
          // add+remove annihilate: the object never materializes. The
          // add's folded riders were already counted as coalesced when
          // they folded; the add and this remove vanish now.
          entry.dead = true;
          pending_ -= 1;
          pending_logical_ -= entry.logical + 1;
          vanished_ += entry.logical + 1;
          coalesced_ += 2;
        } else {
          // update+remove -> remove; whatever content the update wrote
          // dies with the object.
          entry.op = std::move(op);
          entry.logical += 1;
          ++coalesced_;
        }
        open_.erase(it);
      } else {
        entries_.push_back(Entry{sequence, std::move(op), 1, false});
        ++pending_;
      }
      break;
    }
  }
  return sequence;
}

OperationLog::Drained OperationLog::Take(size_t max_ops) {
  Drained drained;
  drained.end_sequence = appended_;
  size_t budget = max_ops == 0 ? pending_ : max_ops;
  while (!entries_.empty() && (entries_.front().dead || budget > 0)) {
    Entry entry = std::move(entries_.front());
    entries_.pop_front();
    ++base_;
    if (entry.dead) continue;  // annihilated add: already accounted
    // The drained target no longer coalesces: its effect is being paid
    // for, so later operations must apply individually. Each target has
    // at most one open entry (later ops fold into it), so erasing by
    // the popped key is exact and keeps a partial drain O(taken), not
    // O(pending).
    if (entry.op.kind != DataOperation::Kind::kRemove &&
        entry.op.target != kInvalidObject) {
      open_.erase(entry.op.target);
    }
    drained.ops.push_back(std::move(entry.op));
    drained.logical_ops += entry.logical;
    pending_ -= 1;
    pending_logical_ -= entry.logical;
    budget -= 1;
  }
  if (entries_.empty()) open_.clear();
  return drained;
}

OperationLog::Extracted OperationLog::ExportRange(
    uint64_t begin_sequence, uint64_t end_sequence) const {
  Extracted exported;
  for (const Entry& entry : entries_) {
    if (entry.dead) continue;
    if (entry.sequence < begin_sequence) continue;
    if (entry.sequence >= end_sequence) break;  // entries are in order
    exported.ops.push_back(entry.op);
    exported.sequences.push_back(entry.sequence);
    exported.logical_ops += entry.logical;
  }
  return exported;
}

}  // namespace dynamicc
