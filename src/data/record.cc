#include "data/record.h"

#include <sstream>

#include "util/string_utils.h"
#include "util/wire.h"

namespace dynamicc {

std::string DescribeRecord(const Record& record) {
  std::ostringstream os;
  os << "Record{id=" << record.id << ", entity=" << record.entity;
  if (!record.text.empty()) os << ", text=\"" << record.text << "\"";
  if (!record.tokens.empty())
    os << ", tokens=[" << JoinStrings(record.tokens, " ") << "]";
  if (!record.numeric.empty()) {
    os << ", numeric=(";
    for (size_t i = 0; i < record.numeric.size(); ++i) {
      if (i > 0) os << ", ";
      os << record.numeric[i];
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

void WriteRecordWire(std::ostream& os, const Record& record) {
  os << record.entity << " " << record.tokens.size() << " "
     << record.numeric.size() << "\n";
  for (const std::string& token : record.tokens) {
    WriteLengthPrefixed(os, token);
  }
  WriteLengthPrefixed(os, record.text);
  for (size_t d = 0; d < record.numeric.size(); ++d) {
    os << (d > 0 ? " " : "") << record.numeric[d];
  }
  os << "\n";
}

Status ReadRecordWire(std::istream& is, size_t max_bytes, Record* record) {
  size_t token_count = 0, numeric_count = 0;
  if (!(is >> record->entity >> token_count >> numeric_count) ||
      token_count > max_bytes || numeric_count > max_bytes) {
    return Status::InvalidArgument("malformed record wire header");
  }
  record->tokens.resize(token_count);
  for (std::string& token : record->tokens) {
    Status status = ReadLengthPrefixed(is, max_bytes, &token);
    if (!status.ok()) return status;
  }
  Status status = ReadLengthPrefixed(is, max_bytes, &record->text);
  if (!status.ok()) return status;
  record->numeric.resize(numeric_count);
  for (size_t d = 0; d < numeric_count; ++d) {
    if (!(is >> record->numeric[d])) {
      return Status::InvalidArgument("malformed record wire numerics");
    }
  }
  return Status::Ok();
}

}  // namespace dynamicc
