#include "data/record.h"

#include <sstream>

#include "util/string_utils.h"

namespace dynamicc {

std::string DescribeRecord(const Record& record) {
  std::ostringstream os;
  os << "Record{id=" << record.id << ", entity=" << record.entity;
  if (!record.text.empty()) os << ", text=\"" << record.text << "\"";
  if (!record.tokens.empty())
    os << ", tokens=[" << JoinStrings(record.tokens, " ") << "]";
  if (!record.numeric.empty()) {
    os << ", numeric=(";
    for (size_t i = 0; i < record.numeric.size(); ++i) {
      if (i > 0) os << ", ";
      os << record.numeric[i];
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

}  // namespace dynamicc
