#include "data/similarity_measures.h"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <vector>

#include "data/feature_index.h"
#include "util/logging.h"
#include "util/string_utils.h"

#if defined(__x86_64__) && defined(__GNUC__)
#define DYNAMICC_HAVE_AVX2_DISPATCH 1
#include <immintrin.h>
#endif

namespace dynamicc {

namespace {

/// Absolute slack on threshold upper bounds: a candidate is skipped only
/// when its bound sits below min_similarity by more than this, so the
/// few-ulp rounding of the bound arithmetic can never skip a pair whose
/// exact score clears the threshold (the byte-identical contract).
constexpr double kBoundSlack = 1e-9;

/// Sorted unique views of a token list (the scalar path's merge input).
std::vector<std::string_view> SortedUniqueTokens(
    const std::vector<std::string>& tokens) {
  std::vector<std::string_view> views(tokens.begin(), tokens.end());
  std::sort(views.begin(), views.end());
  views.erase(std::unique(views.begin(), views.end()), views.end());
  return views;
}

/// Banded Levenshtein distance: exact when the distance is <= band,
/// otherwise any value > band. Cells outside the |i-j| <= band diagonal
/// stripe cannot lie on an edit path of cost <= band, so they are held
/// at INF and never computed.
int BandedLevenshtein(std::string_view a, std::string_view b, int band) {
  if (a.size() > b.size()) std::swap(a, b);
  const int la = static_cast<int>(a.size());
  const int lb = static_cast<int>(b.size());
  const int kInf = band + 1;
  if (lb - la > band) return kInf;
  std::vector<int> prev(la + 1, kInf), cur(la + 1, kInf);
  for (int i = 0; i <= std::min(la, band); ++i) prev[i] = i;
  for (int j = 1; j <= lb; ++j) {
    const int lo = std::max(1, j - band);
    const int hi = std::min(la, j + band);
    std::fill(cur.begin(), cur.end(), kInf);
    if (lo == 1) cur[0] = j <= band ? j : kInf;
    for (int i = lo; i <= hi; ++i) {
      int best = std::min(prev[i], cur[i - 1]) + 1;
      int replace = prev[i - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[i] = std::min(best, replace);
    }
    std::swap(prev, cur);
  }
  return std::min(prev[la], kInf);
}

#ifdef DYNAMICC_HAVE_AVX2_DISPATCH
/// Probe each (id, count) of the smaller vector against 8-wide blocks
/// of the larger one's id array (same skip structure as the sorted
/// intersection in feature_index.cc). Ids are unique within a vector,
/// so at most one lane matches: movemask -> ctz locates it and the
/// counts multiply as exact uint64 addends.
__attribute__((target("avx2"))) uint64_t TrigramDotAvx2(
    const uint32_t* small_ids, const uint32_t* small_counts,
    size_t small_size, const uint32_t* large_ids,
    const uint32_t* large_counts, size_t large_size) {
  size_t j = 0;
  uint64_t dot = 0;
  for (size_t i = 0; i < small_size; ++i) {
    const uint32_t v = small_ids[i];
    while (j + 8 <= large_size && large_ids[j + 7] < v) j += 8;
    if (j + 8 <= large_size) {
      __m256i needle = _mm256_set1_epi32(static_cast<int>(v));
      __m256i block = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(large_ids + j));
      __m256i eq = _mm256_cmpeq_epi32(block, needle);
      const int mask = _mm256_movemask_epi8(eq);
      if (mask != 0) {
        const int lane = __builtin_ctz(static_cast<unsigned>(mask)) / 4;
        dot += static_cast<uint64_t>(small_counts[i]) *
               large_counts[j + static_cast<size_t>(lane)];
      }
    } else {
      while (j < large_size && large_ids[j] < v) ++j;
      if (j == large_size) break;
      if (large_ids[j] == v) {
        dot += static_cast<uint64_t>(small_counts[i]) * large_counts[j];
      }
    }
  }
  return dot;
}
#endif  // DYNAMICC_HAVE_AVX2_DISPATCH

}  // namespace

uint64_t TrigramDotProductScalar(const RecordFeatures& a,
                                 const RecordFeatures& b) {
  // Sorted merge; all addends are integer products, so the accumulated
  // sum is exact (and therefore equal to the seed's hash-map
  // accumulation in any order).
  uint64_t dot = 0;
  size_t i = 0, j = 0;
  const size_t na = a.trigram_ids.size(), nb = b.trigram_ids.size();
  while (i < na && j < nb) {
    uint32_t x = a.trigram_ids[i];
    uint32_t y = b.trigram_ids[j];
    if (x == y) {
      dot += static_cast<uint64_t>(a.trigram_counts[i]) * b.trigram_counts[j];
      ++i;
      ++j;
    } else if (x < y) {
      ++i;
    } else {
      ++j;
    }
  }
  return dot;
}

uint64_t TrigramDotProduct(const RecordFeatures& a, const RecordFeatures& b) {
  const RecordFeatures* sm = &a;
  const RecordFeatures* lg = &b;
  if (sm->trigram_ids.size() > lg->trigram_ids.size()) std::swap(sm, lg);
#ifdef DYNAMICC_HAVE_AVX2_DISPATCH
  // The block probe touches the large side once (8 ids per skip) plus
  // one compare per small id — O(small + large/8) vs the merge's
  // O(small + large) — so it pays whenever the large side is long
  // enough to amortize the vector setup, regardless of the ratio.
  if (lg->trigram_ids.size() >= 64 && CpuHasAvx2()) {
    return TrigramDotAvx2(sm->trigram_ids.data(), sm->trigram_counts.data(),
                          sm->trigram_ids.size(), lg->trigram_ids.data(),
                          lg->trigram_counts.data(), lg->trigram_ids.size());
  }
#endif
  return TrigramDotProductScalar(*sm, *lg);
}

// ----------------------------------------------------------------- Jaccard

double JaccardSimilarity::Similarity(const Record& a, const Record& b) const {
  if (a.tokens.empty() && b.tokens.empty()) return 0.0;
  // Sorted-vector merge intersection: same counts as the historical
  // two-unordered_set construction, without the per-call hashing.
  std::vector<std::string_view> set_a = SortedUniqueTokens(a.tokens);
  std::vector<std::string_view> set_b = SortedUniqueTokens(b.tokens);
  size_t intersection = 0;
  size_t i = 0, j = 0;
  while (i < set_a.size() && j < set_b.size()) {
    if (set_a[i] == set_b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (set_a[i] < set_b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t union_size = set_a.size() + set_b.size() - intersection;
  if (union_size == 0) return 0.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

size_t JaccardSimilarity::SimilarityBatch(const Record& probe,
                                          const RecordFeatures* probe_features,
                                          const SimCandidate* candidates,
                                          size_t count, double min_similarity,
                                          double* out) const {
  size_t full = 0;
  for (size_t c = 0; c < count; ++c) {
    const RecordFeatures* cf = candidates[c].features;
    if (probe_features == nullptr || cf == nullptr) {
      out[c] = Similarity(probe, *candidates[c].record);
      ++full;
      continue;
    }
    const size_t na = probe_features->token_ids.size();
    const size_t nb = cf->token_ids.size();
    if (na == 0 || nb == 0) {
      out[c] = 0.0;  // empty set: intersection 0 (and 0/0 reads as 0)
      ++full;
      continue;
    }
    if (min_similarity > 0.0) {
      // |A∩B| <= min, |A∪B| >= max, so J <= min/max.
      double bound = static_cast<double>(std::min(na, nb)) /
                     static_cast<double>(std::max(na, nb));
      if (bound < min_similarity - kBoundSlack) {
        out[c] = 0.0;
        continue;
      }
    }
    size_t intersection =
        CountSortedIntersection(probe_features->token_ids.data(), na,
                                cf->token_ids.data(), nb);
    size_t union_size = na + nb - intersection;
    out[c] = static_cast<double>(intersection) /
             static_cast<double>(union_size);
    ++full;
  }
  return full;
}

uint32_t JaccardSimilarity::FeatureNeeds() const { return kFeatureTokens; }

// ---------------------------------------------------------- TrigramCosine

double TrigramCosineSimilarity::Similarity(const Record& a,
                                           const Record& b) const {
  // Empty-content convention, stated plainly (this used to be the dead
  // ternary `a.text == b.text ? 0.0 : 0.0`): a record without text has
  // no trigram vector, so it is non-similar to everything — including
  // an identical empty record.
  if (a.text.empty() || b.text.empty()) return 0.0;
  auto grams_a = TrigramCounts(a.text);
  auto grams_b = TrigramCounts(b.text);
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (const auto& [gram, count] : grams_a) {
    norm_a += static_cast<double>(count) * count;
    auto it = grams_b.find(gram);
    if (it != grams_b.end()) dot += static_cast<double>(count) * it->second;
  }
  for (const auto& [gram, count] : grams_b) {
    norm_b += static_cast<double>(count) * count;
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

size_t TrigramCosineSimilarity::SimilarityBatch(
    const Record& probe, const RecordFeatures* probe_features,
    const SimCandidate* candidates, size_t count, double min_similarity,
    double* out) const {
  size_t full = 0;
  for (size_t c = 0; c < count; ++c) {
    const RecordFeatures* cf = candidates[c].features;
    if (probe_features == nullptr || cf == nullptr) {
      out[c] = Similarity(probe, *candidates[c].record);
      ++full;
      continue;
    }
    if (probe.text.empty() || candidates[c].record->text.empty()) {
      out[c] = 0.0;
      ++full;
      continue;
    }
    const double norm2_a = probe_features->trigram_norm2;
    const double norm2_b = cf->trigram_norm2;
    if (norm2_a == 0.0 || norm2_b == 0.0) {
      out[c] = 0.0;
      ++full;
      continue;
    }
    const double denom = std::sqrt(norm2_a) * std::sqrt(norm2_b);
    if (min_similarity > 0.0) {
      // dot = Σ aᵍ·bᵍ <= min(‖a‖₁·‖b‖∞, ‖b‖₁·‖a‖∞): every unit of a's
      // trigram mass meets at most ‖b‖∞ units of b's, and vice versa.
      // All factors are integer-exact in doubles.
      uint64_t dot_bound =
          std::min(probe_features->trigram_l1 *
                       static_cast<uint64_t>(cf->trigram_max),
                   cf->trigram_l1 *
                       static_cast<uint64_t>(probe_features->trigram_max));
      double bound = static_cast<double>(dot_bound) / denom;
      if (bound < min_similarity - kBoundSlack) {
        out[c] = 0.0;
        continue;
      }
    }
    uint64_t dot = TrigramDotProduct(*probe_features, *cf);
    out[c] = static_cast<double>(dot) / denom;
    ++full;
  }
  return full;
}

uint32_t TrigramCosineSimilarity::FeatureNeeds() const {
  return kFeatureTrigrams;
}

// ------------------------------------------------------------ Levenshtein

double LevenshteinSimilarity::Similarity(const Record& a,
                                         const Record& b) const {
  size_t longest = std::max(a.text.size(), b.text.size());
  if (longest == 0) return 0.0;
  int dist = LevenshteinDistance(a.text, b.text);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

size_t LevenshteinSimilarity::SimilarityBatch(
    const Record& probe, const RecordFeatures* probe_features,
    const SimCandidate* candidates, size_t count, double min_similarity,
    double* out) const {
  (void)probe_features;
  size_t full = 0;
  const size_t la = probe.text.size();
  for (size_t c = 0; c < count; ++c) {
    const Record& other = *candidates[c].record;
    const size_t lb = other.text.size();
    const size_t longest = std::max(la, lb);
    if (longest == 0) {
      out[c] = 0.0;
      ++full;
      continue;
    }
    if (min_similarity > 0.0) {
      // sim >= θ needs dist <= (1-θ)·longest; +2 absorbs the rounding
      // of the float budget so the band is never too narrow.
      const size_t budget = static_cast<size_t>(
                                (1.0 - min_similarity) *
                                static_cast<double>(longest)) +
                            2;
      const size_t diff = la > lb ? la - lb : lb - la;
      if (diff > budget) {
        out[c] = 0.0;  // dist >= |la-lb| > budget, so sim < θ
        continue;
      }
      int dist = BandedLevenshtein(probe.text, other.text,
                                   static_cast<int>(budget));
      ++full;
      if (static_cast<size_t>(dist) > budget) {
        out[c] = 0.0;  // true distance exceeds the band, sim < θ
        continue;
      }
      out[c] =
          1.0 - static_cast<double>(dist) / static_cast<double>(longest);
      continue;
    }
    int dist = LevenshteinDistance(probe.text, other.text);
    ++full;
    out[c] = 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
  }
  return full;
}

uint32_t LevenshteinSimilarity::FeatureNeeds() const {
  // The banded DP reads raw text from the candidate records; only the
  // length prefilter uses the index, and lengths ride along for free.
  return 0;
}

// -------------------------------------------------------------- Euclidean

EuclideanSimilarity::EuclideanSimilarity(double scale) : scale_(scale) {
  DYNAMICC_CHECK_GT(scale, 0.0);
}

double EuclideanSimilarity::Distance(const Record& a, const Record& b) {
  DYNAMICC_CHECK_EQ(a.numeric.size(), b.numeric.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.numeric.size(); ++i) {
    double diff = a.numeric[i] - b.numeric[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double EuclideanSimilarity::Similarity(const Record& a,
                                       const Record& b) const {
  if (a.numeric.empty() || b.numeric.empty()) return 0.0;
  double d = Distance(a, b);
  return std::exp(-(d * d) / (2.0 * scale_ * scale_));
}

size_t EuclideanSimilarity::SimilarityBatch(
    const Record& probe, const RecordFeatures* probe_features,
    const SimCandidate* candidates, size_t count, double min_similarity,
    double* out) const {
  const std::vector<double>& va =
      (probe_features != nullptr && !probe_features->numeric.empty())
          ? probe_features->numeric
          : probe.numeric;
  // exp(-d²/(2s²)) >= θ ⟺ d² <= -2s²·ln θ. The 1e-9 relative margin
  // keeps the bail-out sound under rounding; thresholds within a
  // whisker of 1 get no early exit (the margin would not cover them).
  double cutoff = -1.0;
  if (min_similarity > 0.0 && min_similarity < 0.999) {
    cutoff = -2.0 * scale_ * scale_ * std::log(min_similarity);
    cutoff = cutoff * (1.0 + 1e-9) + 1e-12;
  }
  size_t full = 0;
  for (size_t c = 0; c < count; ++c) {
    const Record& other = *candidates[c].record;
    const RecordFeatures* cf = candidates[c].features;
    const std::vector<double>& vb =
        (cf != nullptr && !cf->numeric.empty()) ? cf->numeric : other.numeric;
    if (va.empty() || other.numeric.empty()) {
      out[c] = 0.0;
      ++full;
      continue;
    }
    DYNAMICC_CHECK_EQ(va.size(), vb.size());
    // Seed-order accumulation with a running-sum bail-out every 8
    // dimensions: partial sums are bit-equal to the seed's prefix sums,
    // so a pair that survives to the end scores identically.
    double sum = 0.0;
    bool bailed = false;
    const size_t n = va.size();
    size_t i = 0;
    while (i < n) {
      const size_t stop = std::min(n, i + 8);
      for (; i < stop; ++i) {
        double diff = va[i] - vb[i];
        sum += diff * diff;
      }
      if (cutoff >= 0.0 && sum > cutoff) {
        out[c] = 0.0;
        bailed = true;
        break;
      }
    }
    if (bailed) continue;
    double d = std::sqrt(sum);
    out[c] = std::exp(-(d * d) / (2.0 * scale_ * scale_));
    ++full;
  }
  return full;
}

uint32_t EuclideanSimilarity::FeatureNeeds() const { return kFeatureNumeric; }

// --------------------------------------------------------------- Combined

CombinedSimilarity::CombinedSimilarity(
    std::vector<std::unique_ptr<SimilarityMeasure>> parts,
    std::vector<double> weights)
    : parts_(std::move(parts)), weights_(std::move(weights)) {
  DYNAMICC_CHECK_EQ(parts_.size(), weights_.size());
  DYNAMICC_CHECK_GT(parts_.size(), 0u);
  double total = 0.0;
  for (double w : weights_) {
    DYNAMICC_CHECK_GE(w, 0.0);
    total += w;
  }
  DYNAMICC_CHECK_GT(total, 0.0);
  for (double& w : weights_) w /= total;
}

double CombinedSimilarity::Similarity(const Record& a, const Record& b) const {
  double score = 0.0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    score += weights_[i] * parts_[i]->Similarity(a, b);
  }
  return score;
}

size_t CombinedSimilarity::SimilarityBatch(
    const Record& probe, const RecordFeatures* probe_features,
    const SimCandidate* candidates, size_t count, double min_similarity,
    double* out) const {
  (void)min_similarity;  // a weighted sum admits no per-part threshold
  std::vector<double> part_scores(count);
  std::fill(out, out + count, 0.0);
  for (size_t p = 0; p < parts_.size(); ++p) {
    parts_[p]->SimilarityBatch(probe, probe_features, candidates, count,
                               /*min_similarity=*/0.0, part_scores.data());
    // Accumulate in part order, matching the scalar path's summation.
    for (size_t c = 0; c < count; ++c) {
      out[c] += weights_[p] * part_scores[c];
    }
  }
  return count;
}

uint32_t CombinedSimilarity::FeatureNeeds() const {
  uint32_t needs = 0;
  for (const auto& part : parts_) needs |= part->FeatureNeeds();
  return needs;
}

}  // namespace dynamicc
