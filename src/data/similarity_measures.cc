#include "data/similarity_measures.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_utils.h"

namespace dynamicc {

double JaccardSimilarity::Similarity(const Record& a, const Record& b) const {
  if (a.tokens.empty() && b.tokens.empty()) return 0.0;
  std::unordered_set<std::string> set_a(a.tokens.begin(), a.tokens.end());
  std::unordered_set<std::string> set_b(b.tokens.begin(), b.tokens.end());
  size_t intersection = 0;
  for (const auto& token : set_a) {
    if (set_b.count(token) > 0) ++intersection;
  }
  size_t union_size = set_a.size() + set_b.size() - intersection;
  if (union_size == 0) return 0.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

double TrigramCosineSimilarity::Similarity(const Record& a,
                                           const Record& b) const {
  if (a.text.empty() || b.text.empty()) return a.text == b.text ? 0.0 : 0.0;
  auto grams_a = TrigramCounts(a.text);
  auto grams_b = TrigramCounts(b.text);
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (const auto& [gram, count] : grams_a) {
    norm_a += static_cast<double>(count) * count;
    auto it = grams_b.find(gram);
    if (it != grams_b.end()) dot += static_cast<double>(count) * it->second;
  }
  for (const auto& [gram, count] : grams_b) {
    norm_b += static_cast<double>(count) * count;
  }
  if (norm_a == 0.0 || norm_b == 0.0) return 0.0;
  return dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
}

double LevenshteinSimilarity::Similarity(const Record& a,
                                         const Record& b) const {
  size_t longest = std::max(a.text.size(), b.text.size());
  if (longest == 0) return 0.0;
  int dist = LevenshteinDistance(a.text, b.text);
  return 1.0 - static_cast<double>(dist) / static_cast<double>(longest);
}

EuclideanSimilarity::EuclideanSimilarity(double scale) : scale_(scale) {
  DYNAMICC_CHECK_GT(scale, 0.0);
}

double EuclideanSimilarity::Distance(const Record& a, const Record& b) {
  DYNAMICC_CHECK_EQ(a.numeric.size(), b.numeric.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.numeric.size(); ++i) {
    double diff = a.numeric[i] - b.numeric[i];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

double EuclideanSimilarity::Similarity(const Record& a,
                                       const Record& b) const {
  if (a.numeric.empty() || b.numeric.empty()) return 0.0;
  double d = Distance(a, b);
  return std::exp(-(d * d) / (2.0 * scale_ * scale_));
}

CombinedSimilarity::CombinedSimilarity(
    std::vector<std::unique_ptr<SimilarityMeasure>> parts,
    std::vector<double> weights)
    : parts_(std::move(parts)), weights_(std::move(weights)) {
  DYNAMICC_CHECK_EQ(parts_.size(), weights_.size());
  DYNAMICC_CHECK_GT(parts_.size(), 0u);
  double total = 0.0;
  for (double w : weights_) {
    DYNAMICC_CHECK_GE(w, 0.0);
    total += w;
  }
  DYNAMICC_CHECK_GT(total, 0.0);
  for (double& w : weights_) w /= total;
}

double CombinedSimilarity::Similarity(const Record& a, const Record& b) const {
  double score = 0.0;
  for (size_t i = 0; i < parts_.size(); ++i) {
    score += weights_[i] * parts_[i]->Similarity(a, b);
  }
  return score;
}

}  // namespace dynamicc
