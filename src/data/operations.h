#ifndef DYNAMICC_DATA_OPERATIONS_H_
#define DYNAMICC_DATA_OPERATIONS_H_

#include <vector>

#include "data/record.h"
#include "data/types.h"

namespace dynamicc {

/// One database operation of the dynamic workload (§3.1).
struct DataOperation {
  enum class Kind { kAdd, kRemove, kUpdate };

  Kind kind = Kind::kAdd;

  /// kAdd / kUpdate: the (new) record content. For kAdd the id is assigned
  /// by the Dataset on application.
  Record record;

  /// kRemove / kUpdate: the target object. For kAdd the field is unused
  /// by application, but queueing layers (OperationLog) may stamp it
  /// with the id the add will materialize as so that later operations
  /// on that id can coalesce into the pending add.
  ObjectId target = kInvalidObject;
};

/// A batch of operations applied between two re-clustering rounds
/// ("snapshot" in the paper's evaluation, §7.2).
using OperationBatch = std::vector<DataOperation>;

}  // namespace dynamicc

#endif  // DYNAMICC_DATA_OPERATIONS_H_
