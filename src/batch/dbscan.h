#ifndef DYNAMICC_BATCH_DBSCAN_H_
#define DYNAMICC_BATCH_DBSCAN_H_

#include <cstddef>
#include <vector>

#include "batch/batch_algorithm.h"
#include "objective/objective.h"

namespace dynamicc {

/// DBSCAN [20] over the similarity graph. The distance threshold ε maps to
/// a similarity threshold: with any similarity that decreases monotonically
/// in distance (e.g. the Gaussian Euclidean kernel), `dist ≤ ε` is
/// equivalent to `sim ≥ eps_similarity`, so ε-neighborhood queries are
/// similarity-graph neighbor scans. Noise points end up as singleton
/// clusters (the partition must cover all objects for downstream metrics).
class Dbscan final : public BatchAlgorithm {
 public:
  struct Options {
    /// Minimum number of ε-neighbors (excluding self) for a core point.
    int min_pts = 4;
    /// Similarity threshold equivalent of ε.
    double eps_similarity = 0.6;
  };

  explicit Dbscan(Options options);

  const char* Name() const override { return "dbscan"; }

  using BatchAlgorithm::Run;
  void Run(ClusteringEngine* engine, EvolutionObserver* observer) override;

  /// True if the object has at least min_pts neighbors with
  /// sim ≥ eps_similarity in the graph.
  bool IsCore(const SimilarityGraph& graph, ObjectId object) const;

  /// The object's ε-neighbors (sim ≥ eps_similarity).
  std::vector<ObjectId> EpsNeighbors(const SimilarityGraph& graph,
                                     ObjectId object) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// Change validator for DynamicC-over-DBSCAN (§7.2.1): DBSCAN has no
/// objective function, so predicted changes are validated against
/// core-point stability instead:
///  - a merge is valid if some core point of one cluster has an ε-neighbor
///    in the other (direct density reachability across the boundary);
///  - a split of `part` is valid if no object in `part` is an ε-neighbor of
///    a core point in the remainder;
///  - a move combines the two conditions.
class DbscanValidator final : public ChangeValidator {
 public:
  DbscanValidator(const Dbscan* dbscan, const SimilarityGraph* graph);

  bool MergeImproves(const ClusteringEngine& engine, ClusterId a,
                     ClusterId b) const override;
  bool SplitImproves(const ClusteringEngine& engine, ClusterId cluster,
                     const std::vector<ObjectId>& part) const override;
  bool MoveImproves(const ClusteringEngine& engine, ObjectId object,
                    ClusterId to) const override;

 private:
  /// True if `object` is within ε of some core point in `cluster`,
  /// optionally ignoring the objects in `excluded`.
  bool ReachableFromCore(const ClusteringEngine& engine, ObjectId object,
                         ClusterId cluster,
                         const std::vector<ObjectId>& excluded) const;

  const Dbscan* dbscan_;
  const SimilarityGraph* graph_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_BATCH_DBSCAN_H_
