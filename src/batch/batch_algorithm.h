#ifndef DYNAMICC_BATCH_BATCH_ALGORITHM_H_
#define DYNAMICC_BATCH_BATCH_ALGORITHM_H_

#include <memory>
#include <vector>

#include "cluster/engine.h"
#include "cluster/evolution.h"

namespace dynamicc {

/// A batch clustering algorithm: clusters *all* objects currently present in
/// the engine's similarity graph from scratch (§3.1 B(·)). Implementations
/// reset the engine to singletons first unless documented otherwise.
///
/// `observer` (optional, may be null) receives every merge/split decision
/// before it is applied — the §4.2 monitoring hook.
class BatchAlgorithm {
 public:
  virtual ~BatchAlgorithm() = default;

  virtual const char* Name() const = 0;

  virtual void Run(ClusteringEngine* engine, EvolutionObserver* observer) = 0;

  /// Convenience overload without monitoring.
  void Run(ClusteringEngine* engine) { Run(engine, nullptr); }
};

/// Runs a sequence of stages as one batch algorithm. The first stage runs
/// from scratch; later stages refine the current partition (they must
/// support refinement, e.g. HillClimbing with `from_current`). Used to
/// implement the paper's Hill-climbing batch at tractable cost: a cheap
/// agglomerative bootstrap followed by hill-climbing refinement.
class CompositeBatch final : public BatchAlgorithm {
 public:
  explicit CompositeBatch(std::vector<BatchAlgorithm*> stages,
                          const char* name = "composite")
      : stages_(std::move(stages)), name_(name) {}

  const char* Name() const override { return name_; }

  using BatchAlgorithm::Run;
  void Run(ClusteringEngine* engine, EvolutionObserver* observer) override {
    for (BatchAlgorithm* stage : stages_) stage->Run(engine, observer);
  }

 private:
  std::vector<BatchAlgorithm*> stages_;
  const char* name_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_BATCH_BATCH_ALGORITHM_H_
