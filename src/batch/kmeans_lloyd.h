#ifndef DYNAMICC_BATCH_KMEANS_LLOYD_H_
#define DYNAMICC_BATCH_KMEANS_LLOYD_H_

#include <cstdint>

#include "batch/batch_algorithm.h"

namespace dynamicc {

/// Lloyd's algorithm with k-means++ seeding [33, 34] over the numeric
/// records in the engine's graph. Used as the from-scratch stage of the
/// k-means batch (optionally refined by HillClimbing on KMeansObjective,
/// mirroring the paper's "more robust batch algorithm" remark).
class KMeansLloyd final : public BatchAlgorithm {
 public:
  struct Options {
    int k = 8;
    int max_iterations = 50;
    uint64_t seed = 1;
    /// Independent k-means++ restarts; the lowest-SSE run wins. Lloyd's
    /// local optima vary a lot on non-spherical data (road curves).
    int restarts = 3;
  };

  explicit KMeansLloyd(Options options);

  const char* Name() const override { return "kmeans-lloyd"; }

  using BatchAlgorithm::Run;
  void Run(ClusteringEngine* engine, EvolutionObserver* observer) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_BATCH_KMEANS_LLOYD_H_
