#include "batch/agglomerative.h"

#include <cstdint>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace dynamicc {

namespace {

struct Candidate {
  double delta;
  ClusterId a;
  ClusterId b;
  uint64_t version_a;
  uint64_t version_b;
};

struct WorstFirst {
  bool operator()(const Candidate& x, const Candidate& y) const {
    return x.delta > y.delta;  // min-heap on delta
  }
};

}  // namespace

GreedyAgglomerative::GreedyAgglomerative(const ObjectiveFunction* objective)
    : GreedyAgglomerative(objective, Options{}) {}

GreedyAgglomerative::GreedyAgglomerative(const ObjectiveFunction* objective,
                                         Options options)
    : objective_(objective), options_(options) {
  DYNAMICC_CHECK(objective != nullptr);
}

void GreedyAgglomerative::Run(ClusteringEngine* engine,
                              EvolutionObserver* observer) {
  if (options_.from_scratch) engine->InitSingletons();

  std::priority_queue<Candidate, std::vector<Candidate>, WorstFirst> heap;
  auto push_candidate = [&](ClusterId a, ClusterId b) {
    if (!engine->clustering().HasCluster(a) ||
        !engine->clustering().HasCluster(b)) {
      return;
    }
    double delta = objective_->MergeDelta(*engine, a, b);
    if (delta < -options_.tolerance) {
      heap.push({delta, a, b, engine->clustering().ClusterVersion(a),
                 engine->clustering().ClusterVersion(b)});
    }
  };

  engine->stats().ForEachInter([&](ClusterId a, ClusterId b, double sum) {
    (void)sum;
    push_candidate(a, b);
  });

  size_t merges = 0;
  while (!heap.empty() && merges < options_.max_merges) {
    Candidate top = heap.top();
    heap.pop();
    const auto& clustering = engine->clustering();
    if (!clustering.HasCluster(top.a) || !clustering.HasCluster(top.b)) {
      continue;
    }
    // Stale candidate: membership changed since the delta was computed.
    if (clustering.ClusterVersion(top.a) != top.version_a ||
        clustering.ClusterVersion(top.b) != top.version_b) {
      push_candidate(top.a, top.b);
      continue;
    }
    if (observer != nullptr) observer->OnMerge(*engine, top.a, top.b);
    ClusterId merged = engine->Merge(top.a, top.b);
    ++merges;
    for (ClusterId neighbor : engine->stats().InterNeighbors(merged)) {
      push_candidate(merged, neighbor);
    }
  }
}

}  // namespace dynamicc
