#ifndef DYNAMICC_BATCH_HILL_CLIMBING_H_
#define DYNAMICC_BATCH_HILL_CLIMBING_H_

#include <cstddef>

#include "batch/batch_algorithm.h"
#include "objective/objective.h"

namespace dynamicc {

/// Steepest-descent local search over clusterings — the paper's general
/// batch algorithm for objective-based clustering (§7.1): "examines all
/// immediate neighbors (potential migrations) and selects the clustering
/// update providing the highest improvement".
///
/// The neighborhood consists of merge (cluster pairs with nonzero inter
/// similarity), split (worst-fitting single object per cluster), and move
/// (object to its strongest external neighbor's cluster) operations.
///
/// For objectives with expensive deltas (DB-index is O(k+E) per delta) the
/// full neighborhood is intractable from scratch, so `prune_top` limits the
/// number of exact delta evaluations per operation family per iteration;
/// candidates are pre-ranked with O(1) similarity heuristics. Setting
/// prune_top = 0 evaluates everything (exact steepest descent; fine for
/// tests and small data).
class HillClimbing final : public BatchAlgorithm {
 public:
  struct Options {
    /// Refine the engine's current partition instead of restarting from
    /// singletons. Used as the second stage of CompositeBatch.
    bool from_current = false;
    /// Maximum number of applied operations.
    size_t max_steps = 100000;
    double tolerance = 1e-9;
    /// Per-iteration cap on exact delta evaluations per op family
    /// (0 = no pruning).
    size_t prune_top = 0;
    bool allow_merge = true;
    bool allow_split = true;
    bool allow_move = true;
  };

  explicit HillClimbing(const ObjectiveFunction* objective);
  HillClimbing(const ObjectiveFunction* objective, Options options);

  const char* Name() const override { return "hill-climbing"; }

  using BatchAlgorithm::Run;
  void Run(ClusteringEngine* engine, EvolutionObserver* observer) override;

  /// Number of operations applied by the last Run (for reports).
  size_t last_step_count() const { return last_step_count_; }

 private:
  const ObjectiveFunction* objective_;
  Options options_;
  size_t last_step_count_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_BATCH_HILL_CLIMBING_H_
