#include "batch/dbscan.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace dynamicc {

Dbscan::Dbscan(Options options) : options_(options) {
  DYNAMICC_CHECK_GT(options.min_pts, 0);
  DYNAMICC_CHECK_GT(options.eps_similarity, 0.0);
}

bool Dbscan::IsCore(const SimilarityGraph& graph, ObjectId object) const {
  int count = 0;
  for (const auto& [other, sim] : graph.Neighbors(object)) {
    (void)other;
    if (sim >= options_.eps_similarity) {
      if (++count >= options_.min_pts) return true;
    }
  }
  return false;
}

std::vector<ObjectId> Dbscan::EpsNeighbors(const SimilarityGraph& graph,
                                           ObjectId object) const {
  std::vector<ObjectId> neighbors;
  for (const auto& [other, sim] : graph.Neighbors(object)) {
    if (sim >= options_.eps_similarity) neighbors.push_back(other);
  }
  return neighbors;
}

void Dbscan::Run(ClusteringEngine* engine, EvolutionObserver* observer) {
  (void)observer;  // evolution is derived by diffing rounds (§4.3)
  const SimilarityGraph& graph = engine->graph();

  Clustering result;
  std::unordered_set<ObjectId> visited;
  for (ObjectId seed : graph.Objects()) {
    if (visited.count(seed) > 0) continue;
    if (!IsCore(graph, seed)) continue;
    // Expand a new density-connected cluster from this core point.
    ClusterId cluster = result.CreateCluster();
    std::deque<ObjectId> frontier{seed};
    visited.insert(seed);
    result.Assign(seed, cluster);
    while (!frontier.empty()) {
      ObjectId current = frontier.front();
      frontier.pop_front();
      if (!IsCore(graph, current)) continue;  // border: absorbed, no growth
      for (ObjectId neighbor : EpsNeighbors(graph, current)) {
        if (visited.count(neighbor) > 0) continue;
        visited.insert(neighbor);
        result.Assign(neighbor, cluster);
        frontier.push_back(neighbor);
      }
    }
  }
  // Noise and unreached objects become singletons.
  for (ObjectId object : graph.Objects()) {
    if (visited.count(object) == 0) result.CreateSingleton(object);
  }
  engine->SetClustering(result);
}

DbscanValidator::DbscanValidator(const Dbscan* dbscan,
                                 const SimilarityGraph* graph)
    : dbscan_(dbscan), graph_(graph) {
  DYNAMICC_CHECK(dbscan != nullptr);
  DYNAMICC_CHECK(graph != nullptr);
}

bool DbscanValidator::ReachableFromCore(
    const ClusteringEngine& engine, ObjectId object, ClusterId cluster,
    const std::vector<ObjectId>& excluded) const {
  const auto& members = engine.clustering().Members(cluster);
  for (const auto& [other, sim] : graph_->Neighbors(object)) {
    if (sim < dbscan_->options().eps_similarity) continue;
    if (members.count(other) == 0) continue;
    if (std::find(excluded.begin(), excluded.end(), other) != excluded.end()) {
      continue;
    }
    if (dbscan_->IsCore(*graph_, other)) return true;
  }
  return false;
}

bool DbscanValidator::MergeImproves(const ClusteringEngine& engine,
                                    ClusterId a, ClusterId b) const {
  // Direct density reachability across the boundary: some object of one
  // side lies within ε of a core point of the other side.
  const auto& members_a = engine.clustering().Members(a);
  const auto& members_b = engine.clustering().Members(b);
  const auto& smaller = members_a.size() <= members_b.size() ? members_a
                                                             : members_b;
  ClusterId other_cluster = members_a.size() <= members_b.size() ? b : a;
  for (ObjectId object : smaller) {
    if (ReachableFromCore(engine, object, other_cluster, {})) return true;
    // Also accept the symmetric direction: `object` itself is core and has
    // an ε-neighbor in the other cluster.
    if (dbscan_->IsCore(*graph_, object)) {
      const auto& other_members = engine.clustering().Members(other_cluster);
      for (ObjectId neighbor : dbscan_->EpsNeighbors(*graph_, object)) {
        if (other_members.count(neighbor) > 0) return true;
      }
    }
  }
  return false;
}

bool DbscanValidator::SplitImproves(const ClusteringEngine& engine,
                                    ClusterId cluster,
                                    const std::vector<ObjectId>& part) const {
  // Valid when the part is detached: nothing in it remains within ε of a
  // core point of the remainder.
  for (ObjectId object : part) {
    if (ReachableFromCore(engine, object, cluster, part)) return false;
  }
  return true;
}

bool DbscanValidator::MoveImproves(const ClusteringEngine& engine,
                                   ObjectId object, ClusterId to) const {
  ClusterId from = engine.clustering().ClusterOf(object);
  DYNAMICC_CHECK_NE(from, kInvalidCluster);
  return !ReachableFromCore(engine, object, from, {object}) &&
         ReachableFromCore(engine, object, to, {});
}

}  // namespace dynamicc
