#include "batch/kmeans_lloyd.h"

#include <cmath>
#include <limits>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace dynamicc {

namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

KMeansLloyd::KMeansLloyd(Options options) : options_(options) {
  DYNAMICC_CHECK_GT(options.k, 0);
  DYNAMICC_CHECK_GT(options.max_iterations, 0);
}

namespace {

/// One seeded k-means++ + Lloyd run; returns the assignment and its SSE.
struct LloydResult {
  std::vector<size_t> assignment;
  double sse = 0.0;
};

LloydResult RunLloydOnce(const Dataset& dataset,
                         const std::vector<ObjectId>& objects, size_t k,
                         size_t dims, int max_iterations, uint64_t seed) {
  Rng rng(seed);
  // --- k-means++ seeding.
  std::vector<std::vector<double>> centroids;
  centroids.reserve(k);
  centroids.push_back(dataset.Get(objects[rng.Index(objects.size())]).numeric);
  std::vector<double> min_dist(objects.size(),
                               std::numeric_limits<double>::infinity());
  while (centroids.size() < k) {
    double total = 0.0;
    for (size_t i = 0; i < objects.size(); ++i) {
      double d = SquaredDistance(dataset.Get(objects[i]).numeric,
                                 centroids.back());
      min_dist[i] = std::min(min_dist[i], d);
      total += min_dist[i];
    }
    size_t chosen = 0;
    if (total > 0.0) {
      double target = rng.Uniform() * total;
      double cumulative = 0.0;
      for (size_t i = 0; i < objects.size(); ++i) {
        cumulative += min_dist[i];
        if (cumulative >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.Index(objects.size());
    }
    centroids.push_back(dataset.Get(objects[chosen]).numeric);
  }

  // --- Lloyd iterations.
  std::vector<size_t> assignment(objects.size(), 0);
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < objects.size(); ++i) {
      const auto& point = dataset.Get(objects[i]).numeric;
      size_t best = 0;
      double best_dist = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < centroids.size(); ++c) {
        double d = SquaredDistance(point, centroids[c]);
        if (d < best_dist) {
          best_dist = d;
          best = c;
        }
      }
      if (assignment[i] != best) {
        assignment[i] = best;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids; empty clusters re-seed from the farthest point.
    std::vector<std::vector<double>> sums(centroids.size(),
                                          std::vector<double>(dims, 0.0));
    std::vector<size_t> counts(centroids.size(), 0);
    for (size_t i = 0; i < objects.size(); ++i) {
      const auto& point = dataset.Get(objects[i]).numeric;
      for (size_t d = 0; d < dims; ++d) sums[assignment[i]][d] += point[d];
      ++counts[assignment[i]];
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (counts[c] == 0) {
        centroids[c] = dataset.Get(objects[rng.Index(objects.size())]).numeric;
        continue;
      }
      for (size_t d = 0; d < dims; ++d) {
        centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
      }
    }
  }

  // --- Final SSE of this run.
  LloydResult run;
  run.assignment = std::move(assignment);
  std::vector<std::vector<double>> sums(centroids.size(),
                                        std::vector<double>(dims, 0.0));
  std::vector<size_t> counts(centroids.size(), 0);
  for (size_t i = 0; i < objects.size(); ++i) {
    const auto& point = dataset.Get(objects[i]).numeric;
    for (size_t d = 0; d < dims; ++d) sums[run.assignment[i]][d] += point[d];
    ++counts[run.assignment[i]];
  }
  for (size_t c = 0; c < centroids.size(); ++c) {
    if (counts[c] == 0) continue;
    for (size_t d = 0; d < dims; ++d) {
      centroids[c][d] = sums[c][d] / static_cast<double>(counts[c]);
    }
  }
  for (size_t i = 0; i < objects.size(); ++i) {
    run.sse += SquaredDistance(dataset.Get(objects[i]).numeric,
                               centroids[run.assignment[i]]);
  }
  return run;
}

}  // namespace

void KMeansLloyd::Run(ClusteringEngine* engine, EvolutionObserver* observer) {
  (void)observer;  // evolution is derived by diffing rounds (§4.3)
  const Dataset& dataset = engine->graph().dataset();
  std::vector<ObjectId> objects = engine->graph().Objects();
  DYNAMICC_CHECK(!objects.empty());
  size_t k = std::min<size_t>(static_cast<size_t>(options_.k),
                              objects.size());
  size_t dims = dataset.Get(objects.front()).numeric.size();
  DYNAMICC_CHECK_GT(dims, 0u) << "k-means requires numeric records";

  LloydResult best;
  best.sse = std::numeric_limits<double>::infinity();
  int restarts = std::max(options_.restarts, 1);
  for (int attempt = 0; attempt < restarts; ++attempt) {
    LloydResult run =
        RunLloydOnce(dataset, objects, k, dims, options_.max_iterations,
                     options_.seed + static_cast<uint64_t>(attempt) * 7919);
    if (run.sse < best.sse) best = std::move(run);
  }

  // --- Materialize the best run into the engine.
  Clustering result;
  std::vector<ClusterId> ids(k, kInvalidCluster);
  for (size_t i = 0; i < objects.size(); ++i) {
    size_t c = best.assignment[i];
    if (ids[c] == kInvalidCluster) ids[c] = result.CreateCluster();
    result.Assign(objects[i], ids[c]);
  }
  engine->SetClustering(result);
}

}  // namespace dynamicc
