#ifndef DYNAMICC_BATCH_AGGLOMERATIVE_H_
#define DYNAMICC_BATCH_AGGLOMERATIVE_H_

#include "batch/batch_algorithm.h"
#include "objective/objective.h"

namespace dynamicc {

/// Greedy agglomerative clustering: starting from singletons, repeatedly
/// applies the objective-improving merge with the best (most negative)
/// delta until no merge improves. Implemented with a lazy priority queue
/// validated against cluster versions, so each applied merge costs
/// O(degree · log E) amortized. With the O(1)-delta correlation objective
/// this is the fast from-scratch batch stage.
class GreedyAgglomerative final : public BatchAlgorithm {
 public:
  struct Options {
    /// Stop after this many merges (safety cap).
    size_t max_merges = 10'000'000;
    /// Only deltas below -tolerance are applied.
    double tolerance = 1e-9;
    /// When false, the engine's current partition is kept as the start
    /// state instead of resetting to singletons.
    bool from_scratch = true;
  };

  explicit GreedyAgglomerative(const ObjectiveFunction* objective);
  GreedyAgglomerative(const ObjectiveFunction* objective, Options options);

  const char* Name() const override { return "greedy-agglomerative"; }

  using BatchAlgorithm::Run;
  void Run(ClusteringEngine* engine, EvolutionObserver* observer) override;

 private:
  const ObjectiveFunction* objective_;
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_BATCH_AGGLOMERATIVE_H_
