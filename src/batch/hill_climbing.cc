#include "batch/hill_climbing.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace dynamicc {

namespace {

enum class OpKind { kNone, kMerge, kSplit, kMove };

struct BestOp {
  OpKind kind = OpKind::kNone;
  double delta = 0.0;
  ClusterId a = kInvalidCluster;  // merge: first cluster; split: cluster
  ClusterId b = kInvalidCluster;  // merge: second cluster; move: target
  ObjectId object = kInvalidObject;  // split/move: the object
};

/// Ranked pre-candidate with a cheap score; only the top slice gets an
/// exact delta evaluation.
template <typename T>
struct Scored {
  double score;
  T payload;
};

template <typename T>
void KeepTop(std::vector<Scored<T>>* items, size_t top) {
  if (top == 0 || items->size() <= top) return;
  std::partial_sort(items->begin(), items->begin() + top, items->end(),
                    [](const Scored<T>& x, const Scored<T>& y) {
                      return x.score > y.score;
                    });
  items->resize(top);
}

/// The member of `cluster` with the lowest similarity sum to the rest — the
/// split candidate per the paper's weight heuristic (§6.3).
ObjectId WorstFittingMember(const ClusteringEngine& engine,
                            ClusterId cluster) {
  ObjectId worst = kInvalidObject;
  double worst_weight = std::numeric_limits<double>::infinity();
  for (ObjectId member : engine.clustering().Members(cluster)) {
    double weight = engine.stats().SumToCluster(member, cluster);
    if (weight < worst_weight) {
      worst_weight = weight;
      worst = member;
    }
  }
  return worst;
}

}  // namespace

HillClimbing::HillClimbing(const ObjectiveFunction* objective)
    : HillClimbing(objective, Options{}) {}

HillClimbing::HillClimbing(const ObjectiveFunction* objective, Options options)
    : objective_(objective), options_(options) {
  DYNAMICC_CHECK(objective != nullptr);
}

void HillClimbing::Run(ClusteringEngine* engine, EvolutionObserver* observer) {
  if (!options_.from_current) engine->InitSingletons();
  last_step_count_ = 0;

  for (size_t step = 0; step < options_.max_steps; ++step) {
    const auto& clustering = engine->clustering();
    const auto& stats = engine->stats();
    BestOp best;

    if (options_.allow_merge) {
      std::vector<Scored<std::pair<ClusterId, ClusterId>>> merge_candidates;
      stats.ForEachInter([&](ClusterId a, ClusterId b, double sum) {
        double avg = sum / (static_cast<double>(clustering.ClusterSize(a)) *
                            static_cast<double>(clustering.ClusterSize(b)));
        merge_candidates.push_back({avg, {a, b}});
      });
      KeepTop(&merge_candidates, options_.prune_top);
      for (const auto& candidate : merge_candidates) {
        auto [a, b] = candidate.payload;
        double delta = objective_->MergeDelta(*engine, a, b);
        if (delta < best.delta) {
          best = {OpKind::kMerge, delta, a, b, kInvalidObject};
        }
      }
    }

    if (options_.allow_split) {
      std::vector<Scored<ClusterId>> split_candidates;
      for (ClusterId cluster : clustering.ClusterIds()) {
        if (clustering.ClusterSize(cluster) < 2) continue;
        // Less cohesive clusters first.
        split_candidates.push_back(
            {1.0 - stats.AverageIntraSimilarity(cluster), cluster});
      }
      KeepTop(&split_candidates, options_.prune_top);
      for (const auto& candidate : split_candidates) {
        ClusterId cluster = candidate.payload;
        ObjectId object = WorstFittingMember(*engine, cluster);
        if (object == kInvalidObject) continue;
        double delta = objective_->SplitDelta(*engine, cluster, {object});
        if (delta < best.delta) {
          best = {OpKind::kSplit, delta, cluster, kInvalidCluster, object};
        }
      }
    }

    if (options_.allow_move) {
      std::vector<Scored<std::pair<ObjectId, ClusterId>>> move_candidates;
      for (ObjectId object : engine->graph().Objects()) {
        ClusterId from = clustering.ClusterOf(object);
        if (from == kInvalidCluster) continue;
        // Strongest external edge decides the candidate target cluster.
        ClusterId target = kInvalidCluster;
        double target_sim = 0.0;
        for (const auto& [other, sim] : engine->graph().Neighbors(object)) {
          ClusterId other_cluster = clustering.ClusterOf(other);
          if (other_cluster == kInvalidCluster || other_cluster == from) {
            continue;
          }
          if (sim > target_sim) {
            target_sim = sim;
            target = other_cluster;
          }
        }
        if (target == kInvalidCluster) continue;
        move_candidates.push_back({target_sim, {object, target}});
      }
      KeepTop(&move_candidates, options_.prune_top);
      for (const auto& candidate : move_candidates) {
        auto [object, target] = candidate.payload;
        double delta = objective_->MoveDelta(*engine, object, target);
        if (delta < best.delta) {
          best = {OpKind::kMove, delta, kInvalidCluster, target, object};
        }
      }
    }

    if (best.kind == OpKind::kNone || best.delta >= -options_.tolerance) {
      break;  // local optimum
    }

    switch (best.kind) {
      case OpKind::kMerge:
        if (observer != nullptr) observer->OnMerge(*engine, best.a, best.b);
        engine->Merge(best.a, best.b);
        break;
      case OpKind::kSplit:
        if (observer != nullptr) {
          observer->OnSplit(*engine, best.a, {best.object});
        }
        engine->SplitOut(best.a, {best.object});
        break;
      case OpKind::kMove: {
        // A move is a split followed by a merge (§4.1); performing it that
        // way keeps observer callbacks consistent with engine state.
        ClusterId from = clustering.ClusterOf(best.object);
        if (clustering.ClusterSize(from) == 1) {
          if (observer != nullptr) observer->OnMerge(*engine, from, best.b);
          engine->Merge(from, best.b);
        } else {
          if (observer != nullptr) {
            observer->OnSplit(*engine, from, {best.object});
          }
          ClusterId fresh = engine->SplitOut(from, {best.object});
          if (observer != nullptr) observer->OnMerge(*engine, fresh, best.b);
          engine->Merge(fresh, best.b);
        }
        break;
      }
      case OpKind::kNone:
        break;
    }
    ++last_step_count_;
  }
}

}  // namespace dynamicc
