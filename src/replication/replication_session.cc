#include "replication/replication_session.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "service/snapshot.h"
#include "util/timer.h"

namespace dynamicc {

ReplicationSession::ReplicationSession(ShardedDynamicCService* service,
                                       std::string dir, Options options)
    : service_(service), log_(std::move(dir)), options_(options) {}

ReplicationSession::~ReplicationSession() { Stop(); }

Status ReplicationSession::Start() {
  Status status = log_.Init();
  if (!status.ok()) return status;
  // A session bootstraps a *fresh* log: artifacts left by an earlier
  // primary in the same directory would shadow the new base for
  // followers (Restore picks the highest base epoch, and a dead run's
  // epochs may be higher than this service's). Resuming an existing
  // log instead of sweeping it is the chained-replication ROADMAP item.
  {
    DeltaLog::State stale;
    status = log_.List(&stale);
    if (!status.ok()) return status;
    std::error_code ec;
    for (uint64_t base : stale.bases) {
      std::filesystem::remove_all(log_.BaseDirFor(base), ec);
      if (ec) {
        return Status::IoError("cannot sweep stale base " +
                               log_.BaseDirFor(base) + ": " + ec.message());
      }
    }
    for (uint64_t delta : stale.deltas) {
      std::filesystem::remove(log_.DeltaPathFor(delta), ec);
      if (ec) {
        return Status::IoError("cannot sweep stale delta " +
                               log_.DeltaPathFor(delta) + ": " +
                               ec.message());
      }
    }
  }
  if (service_->metrics_registry() != nullptr) {
    obs::MetricsRegistry& reg = *service_->metrics_registry();
    delta_bytes_metric_ = reg.GetCounter("replication.delta_bytes");
    compact_ms_metric_ = reg.GetHistogram("replication.compact_ms");
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    status_ = Status::Ok();
    attached_ = true;
  }
  service_->SetStreamObserver(this);

  // The initial base: SaveSnapshot seals the epoch currently open (its
  // delta — events between attach and seal, normally none — ships
  // through the hook and is compacted right away). The caller is
  // quiescent per the contract, so the epoch read here is the one the
  // save seals; the manifest read-back pins it.
  const uint64_t base_epoch = service_->open_epoch();
  const std::string base_dir = log_.BaseDirFor(base_epoch);
  status = service_->SaveSnapshot(base_dir);
  if (!status.ok()) {
    Stop();
    return status;
  }
  SnapshotInfo info;
  status = ReadSnapshotInfo(base_dir, &info);
  if (!status.ok() || info.epoch != base_epoch) {
    Stop();
    return status.ok()
               ? Status::InvalidArgument(
                     "base snapshot sealed epoch " +
                     std::to_string(info.epoch) + ", expected " +
                     std::to_string(base_epoch) +
                     " (epochs sealed concurrently with Start?)")
               : status;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_base_epoch_ = base_epoch;
    epochs_since_base_ = 0;
  }
  ScopedTimer compact_timer;
  compact_timer.Record(compact_ms_metric_);
  return log_.Compact(base_epoch);
}

void ReplicationSession::Stop() {
  bool detach = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    detach = attached_;
    attached_ = false;
  }
  if (detach) service_->SetStreamObserver(nullptr);
}

uint64_t ReplicationSession::SealEpoch() {
  double ship_before = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ship_before = delta_ship_ms_total_;
  }
  Timer timer;
  const uint64_t epoch = service_->CloseEpoch();  // hook ships the delta
  const double close_ms = timer.ElapsedMillis();
  bool want_base = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The hook accounted its WriteDelta time while CloseEpoch ran; the
    // remainder of the close is the seal proper (service bookkeeping).
    seal_ms_total_ +=
        std::max(0.0, close_ms - (delta_ship_ms_total_ - ship_before));
    want_base = options_.snapshot_every > 0 &&
                epochs_since_base_ >= options_.snapshot_every;
  }
  if (want_base) {
    // Base publication seals one extra epoch (the save's own); its delta
    // ships first, so live tailers replay straight across the cut while
    // fresh followers start from the base.
    const uint64_t base_epoch = service_->open_epoch();
    const std::string base_dir = log_.BaseDirFor(base_epoch);
    Status status = service_->SaveSnapshot(base_dir);
    if (status.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last_base_epoch_ = base_epoch;
        epochs_since_base_ = 0;
      }
      ScopedTimer compact_timer;
      compact_timer.Record(compact_ms_metric_);
      status = log_.Compact(base_epoch);
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status_.ok()) status_ = status;
    }
  }
  return epoch;
}

Status ReplicationSession::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

uint64_t ReplicationSession::last_base_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_base_epoch_;
}

uint64_t ReplicationSession::deltas_shipped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deltas_shipped_;
}

uint64_t ReplicationSession::pending_at_seals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_at_seals_;
}

double ReplicationSession::seal_ms_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seal_ms_total_;
}

double ReplicationSession::delta_ship_ms_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_ship_ms_total_;
}

uint64_t ReplicationSession::delta_bytes_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_bytes_total_;
}

void ReplicationSession::OnAdmitted(OperationBatch operations) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicationEvent event;
  event.kind = ReplicationEvent::Kind::kBatch;
  event.ops = std::move(operations);
  events_.push_back(std::move(event));
}

void ReplicationSession::OnEpochSealed(uint64_t epoch,
                                       uint64_t pending_tail_ops) {
  // Called from the service's seal path (ingest lock held): buffer out,
  // file written, sticky error latched on failure — the primary keeps
  // serving either way.
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ReplicationEvent> sealed;
  sealed.swap(events_);
  Timer timer;
  uint64_t bytes = 0;
  Status status = log_.WriteDelta(epoch, pending_tail_ops, sealed, &bytes);
  delta_ship_ms_total_ += timer.ElapsedMillis();
  if (!status.ok()) {
    if (status_.ok()) status_ = status;
    return;
  }
  deltas_shipped_ += 1;
  pending_at_seals_ += pending_tail_ops;
  epochs_since_base_ += 1;
  delta_bytes_total_ += bytes;
  if (delta_bytes_metric_ != nullptr) delta_bytes_metric_->Add(bytes);
}

void ReplicationSession::OnMigration(uint64_t group, uint32_t to_shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicationEvent event;
  event.kind = ReplicationEvent::Kind::kMigration;
  event.group = group;
  event.to_shard = to_shard;
  events_.push_back(std::move(event));
}

void ReplicationSession::OnBarrier(Barrier kind,
                                   const std::vector<ObjectId>& hints) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicationEvent event;
  event.kind = ReplicationEvent::Kind::kBarrier;
  event.barrier = kind;
  event.hints = hints;
  events_.push_back(std::move(event));
}

}  // namespace dynamicc
