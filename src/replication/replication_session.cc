#include "replication/replication_session.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "obs/trace.h"
#include "service/snapshot.h"
#include "util/timer.h"

namespace dynamicc {

ReplicationSession::ReplicationSession(ShardedDynamicCService* service,
                                       std::string dir, Options options)
    : service_(service), log_(std::move(dir)), options_(options) {}

ReplicationSession::~ReplicationSession() { Stop(); }

Status ReplicationSession::Start() {
  Status status = log_.Init();
  if (!status.ok()) return status;
  // A session bootstraps a *fresh* log: artifacts left by an earlier
  // primary in the same directory would shadow the new base for
  // followers (Restore picks the highest base epoch, and a dead run's
  // epochs may be higher than this service's). A promoted follower
  // that wants to continue its old primary's log uses Resume() instead.
  {
    DeltaLog::State stale;
    status = log_.List(&stale);
    if (!status.ok()) return status;
    std::error_code ec;
    for (uint64_t base : stale.bases) {
      std::filesystem::remove_all(log_.BaseDirFor(base), ec);
      if (ec) {
        return Status::IoError("cannot sweep stale base " +
                               log_.BaseDirFor(base) + ": " + ec.message());
      }
    }
    for (uint64_t delta : stale.deltas) {
      std::filesystem::remove(log_.DeltaPathFor(delta), ec);
      if (ec) {
        return Status::IoError("cannot sweep stale delta " +
                               log_.DeltaPathFor(delta) + ": " +
                               ec.message());
      }
    }
  }
  if (service_->metrics_registry() != nullptr) {
    obs::MetricsRegistry& reg = *service_->metrics_registry();
    delta_bytes_metric_ = reg.GetCounter("replication.delta_bytes");
    compact_ms_metric_ = reg.GetHistogram("replication.compact_ms");
    delta_ship_ms_metric_ = reg.GetHistogram("epoch.delta_ship_ms");
  }
  tracer_ = service_->tracer();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    status_ = Status::Ok();
    attached_ = true;
  }
  service_->SetStreamObserver(this);

  // The initial base: SaveSnapshot seals the epoch currently open (its
  // delta — events between attach and seal, normally none — ships
  // through the hook and is compacted right away). The caller is
  // quiescent per the contract, so the epoch read here is the one the
  // save seals; the manifest read-back pins it.
  const uint64_t base_epoch = service_->open_epoch();
  const std::string base_dir = log_.BaseDirFor(base_epoch);
  status = service_->SaveSnapshot(base_dir);
  ShipPending();  // the save's seal queued one delta; write it pre-compact
  if (!status.ok()) {
    Stop();
    return status;
  }
  SnapshotInfo info;
  status = ReadSnapshotInfo(base_dir, &info);
  if (!status.ok() || info.epoch != base_epoch) {
    Stop();
    return status.ok()
               ? Status::InvalidArgument(
                     "base snapshot sealed epoch " +
                     std::to_string(info.epoch) + ", expected " +
                     std::to_string(base_epoch) +
                     " (epochs sealed concurrently with Start?)")
               : status;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    last_base_epoch_ = base_epoch;
    epochs_since_base_ = 0;
  }
  ScopedTimer compact_timer;
  compact_timer.Record(compact_ms_metric_);
  return log_.Compact(base_epoch);
}

Status ReplicationSession::Resume() {
  Status status = log_.Init();
  if (!status.ok()) return status;
  DeltaLog::State state;
  status = log_.List(&state);
  if (!status.ok()) return status;
  if (state.bases.empty()) {
    return Status::InvalidArgument(
        "nothing to resume in " + log_.dir() + ": no base snapshot (a fresh "
        "log starts with Start())");
  }
  const uint64_t newest_base = state.bases.back();
  uint64_t newest = newest_base;
  if (!state.deltas.empty()) {
    newest = std::max(newest, state.deltas.back());
  }
  if (service_->open_epoch() == 0 || service_->open_epoch() - 1 != newest) {
    return Status::InvalidArgument(
        "service sealed frontier " +
        std::to_string(service_->open_epoch() - 1) +
        " does not match log tail " + std::to_string(newest) +
        " — resume only from the service that replayed this log");
  }
  if (service_->metrics_registry() != nullptr) {
    obs::MetricsRegistry& reg = *service_->metrics_registry();
    delta_bytes_metric_ = reg.GetCounter("replication.delta_bytes");
    compact_ms_metric_ = reg.GetHistogram("replication.compact_ms");
    delta_ship_ms_metric_ = reg.GetHistogram("epoch.delta_ship_ms");
  }
  tracer_ = service_->tracer();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    status_ = Status::Ok();
    attached_ = true;
    last_base_epoch_ = newest_base;
    // Keeps the snapshot_every cadence honest across the cut: the
    // distance already travelled since the last base counts.
    epochs_since_base_ = newest - newest_base;
  }
  service_->SetStreamObserver(this);
  return Status::Ok();
}

void ReplicationSession::Stop() {
  bool detach = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    detach = attached_;
    attached_ = false;
  }
  if (detach) {
    service_->SetStreamObserver(nullptr);
    ShipPending();  // nothing new queues after detach; drain the tail
  }
}

uint64_t ReplicationSession::SealEpoch() {
  Timer timer;
  const uint64_t epoch = service_->CloseEpoch();  // hook queues the delta
  const double close_ms = timer.ElapsedMillis();
  bool want_base = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // The hook is swap-only now, so the whole close is the seal proper
    // (service bookkeeping); the delta write is timed in ShipPending.
    seal_ms_total_ += close_ms;
  }
  ShipPending();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    want_base = options_.snapshot_every > 0 &&
                epochs_since_base_ >= options_.snapshot_every;
  }
  if (want_base) {
    // Base publication seals one extra epoch (the save's own); its delta
    // ships first, so live tailers replay straight across the cut while
    // fresh followers start from the base.
    const uint64_t base_epoch = service_->open_epoch();
    const std::string base_dir = log_.BaseDirFor(base_epoch);
    Status status = service_->SaveSnapshot(base_dir);
    ShipPending();
    if (status.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last_base_epoch_ = base_epoch;
        epochs_since_base_ = 0;
      }
      ScopedTimer compact_timer;
      compact_timer.Record(compact_ms_metric_);
      status = log_.Compact(base_epoch);
    }
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (status_.ok()) status_ = status;
    }
  }
  return epoch;
}

Status ReplicationSession::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

uint64_t ReplicationSession::last_base_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_base_epoch_;
}

uint64_t ReplicationSession::deltas_shipped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return deltas_shipped_;
}

uint64_t ReplicationSession::pending_at_seals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_at_seals_;
}

double ReplicationSession::seal_ms_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seal_ms_total_;
}

double ReplicationSession::delta_ship_ms_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_ship_ms_total_;
}

uint64_t ReplicationSession::delta_bytes_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return delta_bytes_total_;
}

size_t ReplicationSession::pending_ship_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

void ReplicationSession::OnAdmitted(OperationBatch operations) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicationEvent event;
  event.kind = ReplicationEvent::Kind::kBatch;
  event.ops = std::move(operations);
  events_.push_back(std::move(event));
}

void ReplicationSession::OnEpochSealed(uint64_t epoch,
                                       uint64_t pending_tail_ops) {
  // Called from the service's seal path (ingest lock held): swap-only.
  // The buffer-to-epoch cut happens here — still inside the critical
  // section, so ordering against admissions is pinned — but the file
  // write waits for ShipPending(), off the admission path.
  std::lock_guard<std::mutex> lock(mutex_);
  PendingDelta delta;
  delta.epoch = epoch;
  delta.pending_tail_ops = pending_tail_ops;
  delta.events.swap(events_);
  pending_.push_back(std::move(delta));
}

size_t ReplicationSession::ShipPending() {
  // ship_mutex_ serializes writers FIFO; each delta is popped under
  // mutex_ *before* its write, so a failed write drops the delta (the
  // sticky-status contract) instead of wedging the queue.
  std::lock_guard<std::mutex> ship_lock(ship_mutex_);
  size_t shipped = 0;
  for (;;) {
    PendingDelta delta;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (pending_.empty()) break;
      delta = std::move(pending_.front());
      pending_.pop_front();
    }
    obs::ScopedSpan span(tracer_, obs::kSpanDeltaShip, obs::kServiceShard,
                         delta.epoch);
    Timer timer;
    uint64_t bytes = 0;
    Status status =
        log_.WriteDelta(delta.epoch, delta.pending_tail_ops, delta.events,
                        &bytes);
    const double ship_ms = timer.ElapsedMillis();
    if (delta_ship_ms_metric_ != nullptr) {
      delta_ship_ms_metric_->Record(ship_ms);
    }
    std::lock_guard<std::mutex> lock(mutex_);
    delta_ship_ms_total_ += ship_ms;
    if (!status.ok()) {
      if (status_.ok()) status_ = status;
      continue;
    }
    deltas_shipped_ += 1;
    pending_at_seals_ += delta.pending_tail_ops;
    epochs_since_base_ += 1;
    delta_bytes_total_ += bytes;
    if (delta_bytes_metric_ != nullptr) delta_bytes_metric_->Add(bytes);
    shipped += 1;
  }
  return shipped;
}

void ReplicationSession::OnMigration(uint64_t group, uint32_t to_shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicationEvent event;
  event.kind = ReplicationEvent::Kind::kMigration;
  event.group = group;
  event.to_shard = to_shard;
  events_.push_back(std::move(event));
}

void ReplicationSession::OnBarrier(Barrier kind,
                                   const std::vector<ObjectId>& hints) {
  std::lock_guard<std::mutex> lock(mutex_);
  ReplicationEvent event;
  event.kind = ReplicationEvent::Kind::kBarrier;
  event.barrier = kind;
  event.hints = hints;
  events_.push_back(std::move(event));
}

}  // namespace dynamicc
