#ifndef DYNAMICC_REPLICATION_REPLICATION_SESSION_H_
#define DYNAMICC_REPLICATION_REPLICATION_SESSION_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "replication/delta_log.h"
#include "service/sharded_service.h"
#include "util/status.h"

namespace dynamicc {

/// Primary-side replication: attaches to a live ShardedDynamicCService
/// as its StreamObserver, buffers every admitted batch, migration and
/// barrier, and ships the buffer as one checksummed delta per sealed
/// epoch. Shipping is double-buffered: the seal hook (which runs under
/// the service's ingest lock) only swaps the event buffer onto a
/// pending queue — O(1), no file IO — and the delta file is written by
/// ShipPending() *after* CloseEpoch returns, off the admission path.
/// SealEpoch() does both back to back, so a primary that seals an epoch
/// per serving round still streams its state change by change with no
/// extra barriers, but admissions never stall behind the disk. Every
/// `snapshot_every` sealed epochs the session also cuts a full base
/// snapshot into the replication directory and compacts the delta log
/// behind it, keeping the directory bounded by one base plus one
/// compaction interval.
///
/// Lifecycle:
///
///   ReplicationSession repl(&service, "replica_dir", options);
///   Status s = repl.Start();      // attach + initial base snapshot
///   ...
///   per serving round: ingest / barrier as usual, then
///   uint64_t epoch = repl.SealEpoch();   // ships delta-<epoch>.dat
///   ...
///   repl.Stop();                  // detach (also done by ~)
///
/// Hook-side failures (disk full mid-seal) cannot be returned through
/// the service's seal path, so they latch into status(): the primary
/// keeps serving — replication degrades, the service does not — and the
/// operator checks status() at the cadence they check any replica lag.
class ReplicationSession : public StreamObserver {
 public:
  struct Options {
    /// Cut a full base snapshot and compact shipped deltas every K
    /// sealed epochs (0 = only the initial base at Start()).
    uint32_t snapshot_every = 0;
  };

  /// `service` must outlive the session or Stop() must run first.
  ReplicationSession(ShardedDynamicCService* service, std::string dir,
                     Options options);
  ~ReplicationSession() override;

  ReplicationSession(const ReplicationSession&) = delete;
  ReplicationSession& operator=(const ReplicationSession&) = delete;

  /// Attaches to the service and publishes the initial base snapshot
  /// (sealing one epoch; its delta — events between attach and seal,
  /// normally none — is shipped and immediately compacted away). Call
  /// at a quiescent point: after training barriers, no in-flight
  /// producers.
  Status Start();

  /// Chained replication: attaches to a service that is *already* the
  /// tail of this log — a promoted follower taking over its old
  /// primary's directory — and continues the existing numbering
  /// instead of sweeping the log and cutting a fresh base. The
  /// service's sealed frontier (open_epoch() - 1) must equal the
  /// newest artifact in the log; the next sealed epoch then ships as
  /// delta-<E+1>.dat, so standbys tailing the directory replay
  /// straight across the promotion cut with no re-bootstrap. No
  /// snapshot is written and nothing is deleted.
  Status Resume();

  /// Detaches from the service. Idempotent.
  void Stop();

  /// Seals the current epoch through the service (the OnEpochSealed
  /// hook queues its delta), writes every queued delta via
  /// ShipPending(), and, at the snapshot_every cadence, cuts a base
  /// snapshot + compacts. Returns the sealed epoch.
  uint64_t SealEpoch();

  /// Writes every queued (sealed-but-unshipped) delta to the log, FIFO.
  /// Called by SealEpoch()/Stop() already; exposed so an operator loop
  /// that seals through the service directly can drain the queue
  /// without an extra seal. Returns the number of deltas written.
  size_t ShipPending();

  /// First hook-side error, sticky (Ok while healthy).
  Status status() const;

  const DeltaLog& log() const { return log_; }
  uint64_t last_base_epoch() const;
  uint64_t deltas_shipped() const;
  /// Sum of DeltaInfo::pending_at_seal over shipped deltas: how much
  /// sealed-but-unapplied backlog the primary carried at its seals.
  uint64_t pending_at_seals() const;
  /// Split of SealEpoch's wall time: `seal_ms_total` is CloseEpoch
  /// itself — service bookkeeping (watermarks, epoch marks) plus the
  /// swap-only hook — and `delta_ship_ms` the delta serialization +
  /// write that ShipPending() runs afterwards, outside the ingest lock.
  /// A slow seal is attributable to the service or the replication sink
  /// at a glance, and only the former can stall admissions.
  double seal_ms_total() const;
  double delta_ship_ms_total() const;
  /// Deltas sealed but not yet written (nonzero only between a direct
  /// service CloseEpoch and the next ShipPending).
  size_t pending_ship_count() const;
  /// Bytes of every delta file shipped since Start().
  uint64_t delta_bytes_total() const;

  // StreamObserver hooks (called by the service; not for direct use).
  void OnAdmitted(OperationBatch operations) override;
  void OnEpochSealed(uint64_t epoch, uint64_t pending_tail_ops) override;
  void OnMigration(uint64_t group, uint32_t to_shard) override;
  void OnBarrier(Barrier kind, const std::vector<ObjectId>& hints) override;

 private:
  ShardedDynamicCService* service_;
  DeltaLog log_;
  Options options_;

  /// One sealed epoch's worth of events, swapped out by OnEpochSealed
  /// and written by ShipPending().
  struct PendingDelta {
    uint64_t epoch = 0;
    uint64_t pending_tail_ops = 0;
    std::vector<ReplicationEvent> events;
  };

  /// Guards everything below (buffer, queue, counters, status).
  /// OnEpochSealed only swaps under it — the file write happens in
  /// ShipPending() under ship_mutex_, which serializes writers FIFO
  /// without ever being held inside the service's seal path. Order:
  /// ship_mutex_ before mutex_ (ShipPending pops under both; hooks take
  /// mutex_ alone).
  mutable std::mutex mutex_;
  std::mutex ship_mutex_;
  bool attached_ = false;
  std::vector<ReplicationEvent> events_;
  std::deque<PendingDelta> pending_;
  uint64_t last_base_epoch_ = 0;
  uint64_t deltas_shipped_ = 0;
  uint64_t pending_at_seals_ = 0;
  uint64_t epochs_since_base_ = 0;
  double seal_ms_total_ = 0.0;
  double delta_ship_ms_total_ = 0.0;
  uint64_t delta_bytes_total_ = 0;
  Status status_;

  /// Resolved from the service's registry at Start() (null when the
  /// service runs without metrics). Not under mutex_: written once
  /// before the observer attaches, read-only afterwards.
  obs::Counter* delta_bytes_metric_ = nullptr;
  obs::Histogram* compact_ms_metric_ = nullptr;
  obs::Histogram* delta_ship_ms_metric_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace dynamicc

#endif  // DYNAMICC_REPLICATION_REPLICATION_SESSION_H_
