#ifndef DYNAMICC_REPLICATION_REPLICATION_SESSION_H_
#define DYNAMICC_REPLICATION_REPLICATION_SESSION_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "replication/delta_log.h"
#include "service/sharded_service.h"
#include "util/status.h"

namespace dynamicc {

/// Primary-side replication: attaches to a live ShardedDynamicCService
/// as its StreamObserver, buffers every admitted batch, migration and
/// barrier, and ships the buffer as one checksummed delta whenever an
/// epoch seals — the epoch-seal path *is* the shipping path, so a
/// primary that seals an epoch per serving round streams its state
/// change by change with no extra barriers. Every `snapshot_every`
/// sealed epochs the session also cuts a full base snapshot into the
/// replication directory and compacts the delta log behind it, keeping
/// the directory bounded by one base plus one compaction interval.
///
/// Lifecycle:
///
///   ReplicationSession repl(&service, "replica_dir", options);
///   Status s = repl.Start();      // attach + initial base snapshot
///   ...
///   per serving round: ingest / barrier as usual, then
///   uint64_t epoch = repl.SealEpoch();   // ships delta-<epoch>.dat
///   ...
///   repl.Stop();                  // detach (also done by ~)
///
/// Hook-side failures (disk full mid-seal) cannot be returned through
/// the service's seal path, so they latch into status(): the primary
/// keeps serving — replication degrades, the service does not — and the
/// operator checks status() at the cadence they check any replica lag.
class ReplicationSession : public StreamObserver {
 public:
  struct Options {
    /// Cut a full base snapshot and compact shipped deltas every K
    /// sealed epochs (0 = only the initial base at Start()).
    uint32_t snapshot_every = 0;
  };

  /// `service` must outlive the session or Stop() must run first.
  ReplicationSession(ShardedDynamicCService* service, std::string dir,
                     Options options);
  ~ReplicationSession() override;

  ReplicationSession(const ReplicationSession&) = delete;
  ReplicationSession& operator=(const ReplicationSession&) = delete;

  /// Attaches to the service and publishes the initial base snapshot
  /// (sealing one epoch; its delta — events between attach and seal,
  /// normally none — is shipped and immediately compacted away). Call
  /// at a quiescent point: after training barriers, no in-flight
  /// producers.
  Status Start();

  /// Detaches from the service. Idempotent.
  void Stop();

  /// Seals the current epoch through the service (which ships its delta
  /// via the OnEpochSealed hook) and, at the snapshot_every cadence,
  /// cuts a base snapshot + compacts. Returns the sealed epoch.
  uint64_t SealEpoch();

  /// First hook-side error, sticky (Ok while healthy).
  Status status() const;

  const DeltaLog& log() const { return log_; }
  uint64_t last_base_epoch() const;
  uint64_t deltas_shipped() const;
  /// Sum of DeltaInfo::pending_at_seal over shipped deltas: how much
  /// sealed-but-unapplied backlog the primary carried at its seals.
  uint64_t pending_at_seals() const;
  /// Split of SealEpoch's CloseEpoch time: `seal_ms_total` is the
  /// service-side bookkeeping (watermarks, epoch marks), `delta_ship_ms`
  /// the delta serialization + write inside the OnEpochSealed hook.
  /// Together they account for the epoch-seal wall time, so a slow seal
  /// is attributable to the service or the replication sink at a glance.
  double seal_ms_total() const;
  double delta_ship_ms_total() const;
  /// Bytes of every delta file shipped since Start().
  uint64_t delta_bytes_total() const;

  // StreamObserver hooks (called by the service; not for direct use).
  void OnAdmitted(OperationBatch operations) override;
  void OnEpochSealed(uint64_t epoch, uint64_t pending_tail_ops) override;
  void OnMigration(uint64_t group, uint32_t to_shard) override;
  void OnBarrier(Barrier kind, const std::vector<ObjectId>& hints) override;

 private:
  ShardedDynamicCService* service_;
  DeltaLog log_;
  Options options_;

  /// Guards everything below. OnEpochSealed writes the delta file while
  /// holding it: seals are already serialized by the service's ingest
  /// lock, and keeping the write inside the critical section pins the
  /// buffer-to-file ordering without a second handshake.
  mutable std::mutex mutex_;
  bool attached_ = false;
  std::vector<ReplicationEvent> events_;
  uint64_t last_base_epoch_ = 0;
  uint64_t deltas_shipped_ = 0;
  uint64_t pending_at_seals_ = 0;
  uint64_t epochs_since_base_ = 0;
  double seal_ms_total_ = 0.0;
  double delta_ship_ms_total_ = 0.0;
  uint64_t delta_bytes_total_ = 0;
  Status status_;

  /// Resolved from the service's registry at Start() (null when the
  /// service runs without metrics). Not under mutex_: written once
  /// before the observer attaches, read-only afterwards.
  obs::Counter* delta_bytes_metric_ = nullptr;
  obs::Histogram* compact_ms_metric_ = nullptr;
};

}  // namespace dynamicc

#endif  // DYNAMICC_REPLICATION_REPLICATION_SESSION_H_
