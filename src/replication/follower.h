#ifndef DYNAMICC_REPLICATION_FOLLOWER_H_
#define DYNAMICC_REPLICATION_FOLLOWER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/watchdog.h"
#include "replication/delta_log.h"
#include "service/sharded_service.h"
#include "util/status.h"

namespace dynamicc {

/// Replica of a replicated ShardedDynamicCService: restores the newest
/// base snapshot from the replication directory, then replays shipped
/// delta epochs — admitted batches through its own ingest boundary,
/// migrations through MigrateGroup, barriers with the primary's own
/// hints — so its clusterings, models, placement versions and dense id
/// assignment stay byte-identical to the primary at every sealed epoch,
/// with zero retraining. When compaction has advanced past the next
/// delta (the follower fell more than one base interval behind), the
/// follower rebuilds itself from the newest base and keeps tailing.
///
/// Failover is Promote(): the follower hands over its service, which is
/// a full primary — same placement version, same id maps, same models —
/// and stays in lockstep when fed the stream the old primary would have
/// received next.
///
/// The service replays in whatever mode `service_options` configures
/// (sync is the natural choice: replay is already batched); automatic
/// rebalancing must be off — migrations arrive through the stream, and
/// a follower-side rebalancer would double-apply placement decisions.
/// With `service_options.read.serve` on, every replayed epoch publishes
/// an epoch-pinned ReadView on the replica too (service().read_views()),
/// so queries scale out across followers; the follower.epochs_behind
/// gauge is the per-replica staleness bound routers admit against.
class Follower {
 public:
  /// `router_factory` (optional) must build the same router type the
  /// primary uses (null = the service default); `factory` the same
  /// per-shard environments. Both are retained: a compaction-triggered
  /// rebuild constructs a fresh service from them.
  Follower(std::string replication_dir,
           ShardedDynamicCService::Options service_options,
           ShardEnvironmentFactory factory,
           std::function<std::unique_ptr<ShardRouter>()> router_factory =
               nullptr);

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Restores the newest base snapshot into a fresh service.
  Status Restore();

  /// Replays every shipped delta in epoch order until none is left
  /// (then returns Ok — a live tail simply calls this again later).
  Status CatchUp(size_t* replayed = nullptr);

  /// Replays until the follower has applied sealed epoch `target`;
  /// fails if the log cannot reach it yet.
  Status CatchUpTo(uint64_t target, size_t* replayed = nullptr);

  /// Highest sealed epoch fully replayed (= the base epoch right after
  /// Restore); 0 before Restore.
  uint64_t epoch() const;
  /// Epoch of the base snapshot the current service was restored from.
  uint64_t base_epoch() const { return base_epoch_; }
  /// Base restores performed (1 after Restore; +1 per compaction-forced
  /// rebuild).
  uint64_t restores() const { return restores_; }

  /// Read barrier: flushes the replica so reads reflect every replayed
  /// epoch (equivalent to the primary's state at epoch()).
  ServiceReport Flush();

  /// Failover: detaches and returns the service. The follower is spent
  /// afterwards (service() must not be called). Before handing over,
  /// Promote() latches last_read_epoch() — the read-serving handoff
  /// fence.
  std::unique_ptr<ShardedDynamicCService> Promote();

  /// The newest read-view epoch this follower had published when
  /// Promote() latched it (its replayed epoch when read serving is
  /// off); 0 before promotion. Routers drain in-flight failover reads
  /// against this fence: a pinned view at an epoch <= this value is
  /// replica-era (bounded-stale under the old primary's frontier, per
  /// contract), anything the promoted primary publishes afterwards is
  /// fresh — a deterministic cut, no wall-clock grace period.
  uint64_t last_read_epoch() const { return last_read_epoch_; }

  ShardedDynamicCService& service() { return *service_; }
  const ShardedDynamicCService& service() const { return *service_; }
  const DeltaLog& log() const { return log_; }

  /// Optional SLO watchdog ticked at the end of every catch-up pass —
  /// exactly when follower.epochs_behind / replay_lag_ms move, so
  /// staleness breaches are evaluated against fresh gauge values
  /// instead of a wall-clock poll racing the replay loop. Not owned.
  void set_watchdog(obs::Watchdog* watchdog) { watchdog_ = watchdog; }

 private:
  std::unique_ptr<ShardedDynamicCService> MakeService() const;
  Status LoadBase(uint64_t base);
  /// Replays one delta and seals the matching epoch on the replica.
  Status ReplayDelta(uint64_t epoch,
                     const std::vector<ReplicationEvent>& events);
  /// Refreshes follower.epochs_behind from a directory listing: newest
  /// shipped epoch (delta or base) minus the epoch replayed so far.
  void UpdateLagGauge();

  DeltaLog log_;
  ShardedDynamicCService::Options options_;
  ShardEnvironmentFactory factory_;
  std::function<std::unique_ptr<ShardRouter>()> router_factory_;
  std::unique_ptr<ShardedDynamicCService> service_;
  uint64_t base_epoch_ = 0;
  uint64_t restores_ = 0;
  uint64_t last_read_epoch_ = 0;

  /// Follower-side staleness instruments, resolved from
  /// `service_options.obs.metrics` at construction (null = off). An
  /// in-process primary+follower pair should carry *separate*
  /// registries, or their service-level metrics pool into one book.
  obs::Gauge* epochs_behind_ = nullptr;
  obs::Gauge* replay_lag_ms_ = nullptr;
  obs::Histogram* replay_ms_ = nullptr;
  obs::Watchdog* watchdog_ = nullptr;
};

}  // namespace dynamicc

#endif  // DYNAMICC_REPLICATION_FOLLOWER_H_
