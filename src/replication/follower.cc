#include "replication/follower.h"

#include <algorithm>
#include <filesystem>
#include <limits>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace dynamicc {

Follower::Follower(
    std::string replication_dir,
    ShardedDynamicCService::Options service_options,
    ShardEnvironmentFactory factory,
    std::function<std::unique_ptr<ShardRouter>()> router_factory)
    : log_(std::move(replication_dir)),
      options_(service_options),
      factory_(std::move(factory)),
      router_factory_(std::move(router_factory)) {
  // Placement decisions arrive through the replicated stream; a
  // follower-side rebalancer would publish its own on top and the
  // version numbering would fork.
  DYNAMICC_CHECK_EQ(options_.rebalance.every_rounds, 0u)
      << "followers must not rebalance on their own";
  if (options_.obs.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.obs.metrics;
    epochs_behind_ = reg.GetGauge("follower.epochs_behind");
    replay_lag_ms_ = reg.GetGauge("follower.replay_lag_ms");
    replay_ms_ = reg.GetHistogram("follower.replay_ms");
  }
}

void Follower::UpdateLagGauge() {
  if (epochs_behind_ == nullptr) return;
  DeltaLog::State state;
  if (!log_.List(&state).ok()) return;
  uint64_t newest = state.deltas.empty() ? 0 : state.deltas.back();
  if (!state.bases.empty()) newest = std::max(newest, state.bases.back());
  const uint64_t applied = epoch();
  epochs_behind_->Set(
      newest > applied ? static_cast<double>(newest - applied) : 0.0);
}

std::unique_ptr<ShardedDynamicCService> Follower::MakeService() const {
  return std::make_unique<ShardedDynamicCService>(
      options_, router_factory_ ? router_factory_() : nullptr, factory_);
}

Status Follower::LoadBase(uint64_t base) {
  auto fresh = MakeService();
  Status status = fresh->LoadSnapshot(log_.BaseDirFor(base));
  if (!status.ok()) return status;
  service_ = std::move(fresh);
  base_epoch_ = base;
  restores_ += 1;
  return Status::Ok();
}

Status Follower::Restore() {
  Status status;
  for (int attempt = 0; attempt < 3; ++attempt) {
    DeltaLog::State state;
    status = log_.List(&state);
    if (!status.ok()) return status;
    if (state.bases.empty()) {
      return Status::NotFound("no base snapshot in " + log_.dir());
    }
    status = LoadBase(state.bases.back());
    if (status.ok()) return status;
    // The primary's compaction may have retired this base between the
    // listing and the load — in which case a newer one exists: rescan
    // and retry. A load failure with the base still present is real.
    if (std::filesystem::exists(log_.BaseDirFor(state.bases.back()))) {
      return status;
    }
  }
  return status;
}

uint64_t Follower::epoch() const {
  return service_ ? service_->open_epoch() - 1 : 0;
}

Status Follower::CatchUp(size_t* replayed) {
  return CatchUpTo(std::numeric_limits<uint64_t>::max(), replayed);
}

Status Follower::CatchUpTo(uint64_t target, size_t* replayed) {
  if (replayed != nullptr) *replayed = 0;
  if (service_ == nullptr) {
    return Status::InvalidArgument("CatchUp before Restore");
  }
  const bool bounded = target != std::numeric_limits<uint64_t>::max();
  Timer wall;
  while (epoch() < target) {
    const uint64_t next = epoch() + 1;
    const std::string next_path = log_.DeltaPathFor(next);
    if (std::filesystem::exists(next_path)) {
      std::vector<ReplicationEvent> events;
      Status status = log_.ReadDelta(next, &events);
      if (status.ok()) {
        status = ReplayDelta(next, events);
        if (!status.ok()) return status;
        if (replayed != nullptr) *replayed += 1;
        continue;
      }
      // A read failure with the file still present is corruption —
      // fatal, never skipped. If the file vanished between the exists
      // check and the read, compaction raced us: fall through to the
      // rebuild scan below like any other missing delta.
      if (std::filesystem::exists(next_path)) return status;
    }
    // The next delta is not (or no longer) there. If compaction moved
    // the log past us, a newer base exists: rebuild from it and keep
    // tailing. Otherwise we are simply caught up with what shipped.
    DeltaLog::State state;
    Status status = log_.List(&state);
    if (!status.ok()) return status;
    if (!state.bases.empty() && state.bases.back() > epoch() &&
        state.bases.back() <= target) {
      status = LoadBase(state.bases.back());
      if (!status.ok()) {
        // Same compaction race as Restore: a base retired mid-load
        // means a newer one exists — loop back and rescan.
        if (std::filesystem::exists(log_.BaseDirFor(state.bases.back()))) {
          return status;
        }
      }
      continue;
    }
    break;
  }
  // Staleness gauges refresh on every catch-up pass: how long this pass
  // spent clearing backlog, and how far behind the shipped stream the
  // replica still is (0 when fully caught up).
  if (replay_lag_ms_ != nullptr) replay_lag_ms_->Set(wall.ElapsedMillis());
  UpdateLagGauge();
  // Evaluate SLO rules right after the staleness gauges moved.
  if (watchdog_ != nullptr) watchdog_->Tick();
  if (bounded && epoch() < target) {
    return Status::NotFound("epoch " + std::to_string(target) +
                            " has not shipped yet (replica at " +
                            std::to_string(epoch()) + ")");
  }
  return Status::Ok();
}

Status Follower::ReplayDelta(uint64_t epoch,
                             const std::vector<ReplicationEvent>& events) {
  obs::ScopedSpan span(options_.obs.tracer, obs::kSpanFollowerReplay,
                       obs::kServiceShard, epoch);
  ScopedTimer timer;
  timer.Record(replay_ms_);
  for (const ReplicationEvent& event : events) {
    switch (event.kind) {
      case ReplicationEvent::Kind::kBatch: {
        // The journaled targets double as a lockstep proof: the adds'
        // stamped ids must be exactly what this replica's own dense
        // admission assigns.
        std::vector<ObjectId> expected;
        for (const DataOperation& op : event.ops) {
          if (op.kind != DataOperation::Kind::kRemove) {
            expected.push_back(op.target);
          }
        }
        std::vector<ObjectId> changed = service_->ApplyOperations(event.ops);
        if (changed != expected) {
          return Status::InvalidArgument(
              "replication stream diverged at epoch " +
              std::to_string(epoch) +
              ": replica assigned different global ids");
        }
        break;
      }
      case ReplicationEvent::Kind::kMigration:
        service_->MigrateGroup(event.group, event.to_shard);
        break;
      case ReplicationEvent::Kind::kBarrier:
        if (event.barrier == StreamObserver::Barrier::kObserve) {
          service_->ObserveBatchRound(event.hints);
        } else {
          service_->DynamicRound(event.hints);
        }
        break;
    }
  }
  const uint64_t sealed = service_->CloseEpoch();
  if (sealed != epoch) {
    return Status::InvalidArgument(
        "replica sealed epoch " + std::to_string(sealed) + ", delta is " +
        std::to_string(epoch) + " — log is missing an epoch");
  }
  return Status::Ok();
}

ServiceReport Follower::Flush() {
  DYNAMICC_CHECK(service_ != nullptr) << "Flush before Restore";
  return service_->Flush();
}

std::unique_ptr<ShardedDynamicCService> Follower::Promote() {
  DYNAMICC_CHECK(service_ != nullptr) << "Promote before Restore";
  // Latch the read handoff fence before the service changes hands: the
  // last view epoch this follower served as a replica (see
  // last_read_epoch()). Views already pinned stay valid — pins outlive
  // the handoff, the registry moves with the service — so in-flight
  // reads finish against replica-era state while the router reroutes
  // everything newer to the promoted primary.
  last_read_epoch_ = service_->serves_reads()
                         ? service_->read_views()->current_epoch()
                         : epoch();
  return std::move(service_);
}

}  // namespace dynamicc
